package peer

import (
	"encoding/binary"
	"fmt"
	"sync"

	"makalu/internal/bloom"
)

// This file implements §4.6 on the wire: each node maintains an
// attenuated Bloom filter hierarchy over its neighborhood's content,
// pushes it to neighbors in the management round, and routes
// exact-identifier queries greedily along the filter gradient with a
// per-query visited list for loop avoidance.

// Filter geometry for live nodes: uniform level sizes so hierarchies
// shift and union across peers (the gossip construction).
const (
	abfLevels    = 4 // own content + 3 hops, the paper's depth 3
	abfLevelBits = 2048
	abfHashes    = 4
	abfDecay     = 0.5
)

// Additional wire message kinds for identifier search.
const (
	msgFilterPush    = byte(9)  // attenuated hierarchy push
	msgDirectedQuery = byte(10) // greedy identifier query
)

// abfState is a node's identifier-routing state.
type abfState struct {
	mu       sync.Mutex
	own      *bloom.Attenuated            // published hierarchy
	received map[string]*bloom.Attenuated // neighbor addr -> their last push
}

func newABFState() *abfState {
	return &abfState{
		own:      bloom.NewAttenuated(uniformLevels(), abfHashes),
		received: make(map[string]*bloom.Attenuated),
	}
}

func uniformLevels() []int {
	levels := make([]int, abfLevels)
	for i := range levels {
		levels[i] = abfLevelBits
	}
	return levels
}

// rebuildOwn recomputes the published hierarchy: level 0 from the
// local store; level i is the union of each neighbor's level i-1 as
// last received — content i-1 hops from a neighbor is i hops from us.
func (n *Node) rebuildOwn() {
	n.mu.Lock()
	objs := make([]uint64, 0, len(n.store))
	for o := range n.store {
		objs = append(objs, o)
	}
	neighborFilters := make([]*bloom.Attenuated, 0, len(n.conns))
	n.abf.mu.Lock()
	for addr := range n.conns {
		if f := n.abf.received[addr]; f != nil {
			neighborFilters = append(neighborFilters, f)
		}
	}
	n.abf.mu.Unlock()
	n.mu.Unlock()

	fresh := bloom.NewAttenuated(uniformLevels(), abfHashes)
	for _, o := range objs {
		fresh.Add(0, o)
	}
	for _, nf := range neighborFilters {
		for lvl := 1; lvl < abfLevels; lvl++ {
			fresh.UnionLevel(lvl, nf.Levels[lvl-1])
		}
	}
	n.abf.mu.Lock()
	n.abf.own = fresh
	n.abf.mu.Unlock()
}

// pushFilters sends the published hierarchy to every neighbor.
func (n *Node) pushFilters() {
	n.abf.mu.Lock()
	blob, err := n.abf.own.MarshalBinary()
	n.abf.mu.Unlock()
	if err != nil {
		return
	}
	n.mu.Lock()
	links := make([]*link, 0, len(n.conns))
	for _, l := range n.conns {
		links = append(links, l)
	}
	n.mu.Unlock()
	for _, l := range links {
		l.send(msgFilterPush, blob)
	}
}

// handleFilterPush stores a neighbor's hierarchy. The registration
// check (under the node lock, same order as rebuildOwn) keeps a push
// racing the link's eviction from resurrecting an entry dropLink just
// cleaned.
func (n *Node) handleFilterPush(l *link, payload []byte) {
	var f bloom.Attenuated
	if err := f.UnmarshalBinary(payload); err != nil {
		return
	}
	if f.Depth() != abfLevels {
		return
	}
	n.mu.Lock()
	if cur, ok := n.conns[l.addr]; ok && cur == l {
		n.abf.mu.Lock()
		n.abf.received[l.addr] = &f
		n.abf.mu.Unlock()
	}
	n.mu.Unlock()
}

// directedQueryPayload is the greedy identifier query: object, hop
// budget, originator, and the visited list for loop avoidance.
type directedQueryPayload struct {
	QueryID    uint64
	TTL        uint8
	Object     uint64
	Originator string
	Visited    []string
}

func encodeDirectedQuery(q directedQueryPayload) []byte {
	out := make([]byte, 17)
	binary.LittleEndian.PutUint64(out, q.QueryID)
	out[8] = q.TTL
	binary.LittleEndian.PutUint64(out[9:], q.Object)
	out = append(out, encodeString(q.Originator)...)
	var cnt [2]byte
	binary.LittleEndian.PutUint16(cnt[:], uint16(len(q.Visited)))
	out = append(out, cnt[:]...)
	for _, v := range q.Visited {
		out = append(out, encodeString(v)...)
	}
	return out
}

func decodeDirectedQuery(b []byte) (directedQueryPayload, error) {
	if len(b) < 17 {
		return directedQueryPayload{}, fmt.Errorf("peer: short directed query")
	}
	q := directedQueryPayload{
		QueryID: binary.LittleEndian.Uint64(b),
		TTL:     b[8],
		Object:  binary.LittleEndian.Uint64(b[9:]),
	}
	var err error
	var rest []byte
	q.Originator, rest, err = decodeString(b[17:])
	if err != nil {
		return directedQueryPayload{}, err
	}
	if len(rest) < 2 {
		return directedQueryPayload{}, fmt.Errorf("peer: truncated visited list")
	}
	cnt := binary.LittleEndian.Uint16(rest)
	if cnt > 512 {
		return directedQueryPayload{}, fmt.Errorf("peer: implausible visited count %d", cnt)
	}
	rest = rest[2:]
	for i := 0; i < int(cnt); i++ {
		var v string
		v, rest, err = decodeString(rest)
		if err != nil {
			return directedQueryPayload{}, err
		}
		q.Visited = append(q.Visited, v)
	}
	if len(rest) != 0 {
		return directedQueryPayload{}, fmt.Errorf("peer: trailing bytes in directed query")
	}
	return q, nil
}

// IdentifierLookup routes a query for obj along the Bloom-filter
// gradient with the given hop budget. The hit (if any) arrives on
// Hits(). Returns the query id.
func (n *Node) IdentifierLookup(obj uint64, ttl int) uint64 {
	ttl = clampTTL(ttl)
	n.mu.Lock()
	id := n.rng.Uint64()
	hasLocal := n.store[obj]
	n.mu.Unlock()
	if hasLocal {
		select {
		case n.hits <- Hit{QueryID: id, Object: obj, Holder: n.Addr()}:
		default:
		}
		return id
	}
	if ttl <= 0 {
		return id
	}
	n.forwardDirected(directedQueryPayload{
		QueryID:    id,
		TTL:        uint8(ttl),
		Object:     obj,
		Originator: n.Addr(),
		Visited:    []string{n.Addr()},
	})
	return id
}

// handleDirectedQuery processes a greedy identifier query: local
// store check, then forward along the gradient.
func (n *Node) handleDirectedQuery(q directedQueryPayload) {
	n.mu.Lock()
	hasIt := n.store[q.Object]
	n.mu.Unlock()
	if hasIt {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.deliverHit(q.Originator, hitPayload{
				QueryID: q.QueryID, Object: q.Object, Holder: n.Addr(),
			})
		}()
		return
	}
	if q.TTL <= 1 {
		return
	}
	q.TTL--
	q.Visited = append(q.Visited, n.Addr())
	n.forwardDirected(q)
}

// forwardDirected sends the query to the unvisited neighbor whose
// received hierarchy scores highest for the object; with no filter
// signal it falls back to an arbitrary unvisited neighbor.
func (n *Node) forwardDirected(q directedQueryPayload) {
	visited := make(map[string]bool, len(q.Visited))
	for _, v := range q.Visited {
		visited[v] = true
	}
	n.mu.Lock()
	var best *link
	bestScore := -1.0
	n.abf.mu.Lock()
	for addr, l := range n.conns {
		if visited[addr] {
			continue
		}
		score := 0.0
		if f := n.abf.received[addr]; f != nil {
			score = f.Score(q.Object, abfDecay)
		}
		if score > bestScore {
			bestScore = score
			best = l
		}
	}
	n.abf.mu.Unlock()
	n.mu.Unlock()
	if best == nil {
		return // dead end: all neighbors visited
	}
	best.send(msgDirectedQuery, encodeDirectedQuery(q))
}
