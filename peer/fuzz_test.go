package peer

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"

	"makalu/internal/bloom"
)

// Native fuzz harnesses for the wire layer and the seen-cache
// accounting. Without -fuzz these run their seed corpora as ordinary
// tests, so `go test -run='^Fuzz'` is a cheap CI gate; with
// `go test -fuzz=FuzzReadFrame ./peer` they explore for real.

func fuzzFrame(kind byte, payload []byte) []byte {
	b := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	b[4] = kind
	copy(b[5:], payload)
	return b
}

func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzFrame(msgQuery, []byte{1, 2, 3}))
	f.Add(fuzzFrame(msgHello, encodeHello(helloPayload{Addr: "127.0.0.1:9"})))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})       // oversized length
	f.Add([]byte{64, 0, 0, 0, msgNeighbors, 1, 2}) // truncated frame
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 8; i++ {
			f, err := readFrame(r)
			if err != nil {
				return
			}
			if len(f.payload) > maxFrame {
				t.Fatalf("readFrame returned oversized payload: %d", len(f.payload))
			}
		}
	})
}

func FuzzDecoders(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeHello(helloPayload{Addr: "a:1"}))
	f.Add(encodeNeighbors(neighborsPayload{Addrs: []string{"a:1", "b:2"}}))
	f.Add(encodeQuery(queryPayload{QueryID: 1, TTL: 4, Object: 9, Originator: "a:1"}))
	f.Add(encodeHit(hitPayload{QueryID: 1, Object: 9, Holder: "b:2"}))
	f.Add(encodePing(pingPayload{Nonce: 77}))
	f.Fuzz(func(t *testing.T, junk []byte) {
		// No decoder may panic on arbitrary bytes (a malicious peer
		// controls every frame), and whatever decodes must survive a
		// re-encode/re-decode round trip.
		decodeHello(junk)
		decodeNeighbors(junk)
		decodeHit(junk)
		decodeDirectedQuery(junk)
		decodePing(junk)
		var fl bloom.Filter
		fl.UnmarshalBinary(junk)
		var at bloom.Attenuated
		at.UnmarshalBinary(junk)
		if q, err := decodeQuery(junk); err == nil {
			q2, err := decodeQuery(encodeQuery(q))
			if err != nil || q2 != q {
				t.Fatalf("query round trip diverged: %+v -> %+v (%v)", q, q2, err)
			}
		}
	})
}

func FuzzSeenAccounting(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 1, 1, 2, 2, 3}) // duplicate-heavy
	f.Add(bytes.Repeat([]byte{9}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Interpret the input as a stream of (possibly repeating) query
		// ids drawn from a small space so collisions are common.
		n := &Node{seen: make(map[uint64]bool)}
		for i, b := range data {
			n.markSeenLocked(uint64(b) % 97)
			if len(n.seen) != len(n.seenQ) {
				t.Fatalf("after %d marks: len(seen)=%d len(seenQ)=%d", i+1, len(n.seen), len(n.seenQ))
			}
			if len(n.seenQ) > seenCap {
				t.Fatalf("seen queue overflow: %d", len(n.seenQ))
			}
		}
		for _, id := range n.seenQ {
			if !n.seen[id] {
				t.Fatalf("id %d queued but missing from map", id)
			}
		}
	})
}
