package peer

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"makalu/internal/content"
)

// streamTestNet starts a client plus replicas hosting blob copies and
// connects the client to every replica.
func streamTestNet(t *testing.T, obj uint64, size int64, chunk int, replicas int) (*Node, []*Node, content.Manifest, []byte) {
	t.Helper()
	man, err := content.BuildManifest(obj, size, chunk)
	if err != nil {
		t.Fatal(err)
	}
	payload := content.ObjectPayload(obj, size, chunk)
	client, err := Start("127.0.0.1:0", DefaultNodeConfig(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	var reps []*Node
	for i := 0; i < replicas; i++ {
		r, err := Start("127.0.0.1:0", DefaultNodeConfig(8, int64(i+2)))
		if err != nil {
			t.Fatal(err)
		}
		r.AddBlob(obj, payload)
		if err := client.Connect(r.Addr()); err != nil {
			t.Fatal(err)
		}
		reps = append(reps, r)
	}
	return client, reps, man, payload
}

func TestDownloadBlobSingleSource(t *testing.T) {
	client, reps, man, payload := streamTestNet(t, 0xabc, 10_000, 1024, 1)
	defer client.Close()
	defer reps[0].Close()

	got, stats, err := client.DownloadBlob(man, []string{reps[0].Addr()}, DownloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("downloaded payload differs from original")
	}
	if stats.Bytes != 10_000 || stats.TTFB < 0 || stats.Elapsed <= 0 {
		t.Fatalf("bad stats: %+v", stats)
	}
	if stats.ReRequests != 0 || stats.SourcesDropped != 0 {
		t.Fatalf("healthy source penalized: %+v", stats)
	}
}

func TestDownloadBlobMissingBlobFailsOver(t *testing.T) {
	client, reps, man, payload := streamTestNet(t, 0xdef, 8_000, 1000, 2)
	defer client.Close()
	defer reps[0].Close()
	defer reps[1].Close()

	// First source never got the blob: it answers chunkMissing and is
	// dropped; the second serves everything.
	bare, err := Start("127.0.0.1:0", DefaultNodeConfig(8, 99))
	if err != nil {
		t.Fatal(err)
	}
	defer bare.Close()
	if err := client.Connect(bare.Addr()); err != nil {
		t.Fatal(err)
	}

	got, stats, err := client.DownloadBlob(man, []string{bare.Addr(), reps[0].Addr()}, DownloadConfig{Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch after failover")
	}
	if stats.SourcesDropped < 1 || stats.ReRequests < 1 {
		t.Fatalf("blobless source not dropped: %+v", stats)
	}
}

// TestDownloadSurvivesReplicaKill is the acceptance test: a replica
// actively serving chunks is killed (crash semantics — no FIN, its
// socket left dangling) mid-download, and the transfer must complete
// via timeout, source drop and re-request from the survivor.
func TestDownloadSurvivesReplicaKill(t *testing.T) {
	const obj = uint64(0x5eed)
	client, reps, man, payload := streamTestNet(t, obj, 64_000, 1000, 2)
	defer client.Close()
	defer reps[1].Close()
	victim := reps[0]
	defer victim.Close() // after Kill, Close reaps dangling conns

	var killOnce sync.Once
	served := make(map[string]bool)
	cfg := DownloadConfig{
		ChunkTimeout: 300 * time.Millisecond,
		Window:       2,
		MaxAttempts:  64,
		OnChunk: func(c int, from string) {
			served[from] = true
			// Kill the victim once it has verifiably served a chunk —
			// it is an active source mid-transfer, not an idle one.
			if from == victim.Addr() {
				killOnce.Do(victim.Kill)
			}
		},
	}
	got, stats, err := client.DownloadBlob(man, []string{victim.Addr(), reps[1].Addr()}, cfg)
	if err != nil {
		t.Fatalf("download did not survive the kill: %v (stats %+v)", err, stats)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupt after failover")
	}
	if !served[victim.Addr()] {
		t.Fatal("victim never served a chunk; kill was not mid-transfer")
	}
	if stats.SourcesDropped < 1 {
		t.Fatalf("killed source was never dropped: %+v", stats)
	}
	if stats.ReRequests < 1 {
		t.Fatalf("no chunk was re-requested from the survivor: %+v", stats)
	}
}

func TestDownloadBlobAllSourcesDead(t *testing.T) {
	client, reps, man, _ := streamTestNet(t, 0xfee, 5_000, 500, 1)
	defer client.Close()
	victim := reps[0]
	defer victim.Close()
	victim.Kill()

	_, stats, err := client.DownloadBlob(man, []string{victim.Addr()}, DownloadConfig{
		ChunkTimeout: 200 * time.Millisecond,
		MaxAttempts:  4,
	})
	if err == nil {
		t.Fatal("download from a dead-only source list succeeded")
	}
	if stats.SourcesDropped < 1 {
		t.Fatalf("dead source never dropped: %+v", stats)
	}
}

func TestChunkCodecRoundTrip(t *testing.T) {
	q := chunkReqPayload{Object: 0x0102030405060708, Chunk: 9, Offset: 4096, Length: 1024}
	got, err := decodeChunkReq(encodeChunkReq(q))
	if err != nil || got != q {
		t.Fatalf("request round trip: %+v %v", got, err)
	}
	if _, err := decodeChunkReq([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request accepted")
	}
	p := chunkRespPayload{Object: 7, Chunk: 3, Status: chunkOK, Data: []byte("hello chunk")}
	rp, err := decodeChunkResp(encodeChunkResp(p))
	if err != nil || rp.Object != 7 || rp.Chunk != 3 || rp.Status != chunkOK || !bytes.Equal(rp.Data, p.Data) {
		t.Fatalf("response round trip: %+v %v", rp, err)
	}
	if _, err := decodeChunkResp(make([]byte, 12)); err == nil {
		t.Fatal("short response accepted")
	}
	if _, err := decodeChunkResp(make([]byte, 13+maxChunkData+1)); err == nil {
		t.Fatal("oversized response accepted")
	}
	// Miss responses carry no data.
	miss := chunkRespPayload{Object: 1, Chunk: 0, Status: chunkMissing}
	rm, err := decodeChunkResp(encodeChunkResp(miss))
	if err != nil || rm.Status != chunkMissing || rm.Data != nil {
		t.Fatalf("miss round trip: %+v %v", rm, err)
	}
}
