package peer

import (
	"makalu/internal/obs"
)

// This file binds a node to the observability layer. All handles are
// resolved once at Start; with Config.Metrics/Trace nil every handle
// is nil and each instrumentation point reduces to one branch, so an
// uninstrumented node pays nothing measurable (the <5% regression
// budget on the flood benchmarks is pinned in BENCH_core.json).
//
// Metric names are stable identifiers — the -metrics-json consumers
// key on them. Several nodes may share one Registry (peer.Cluster
// does): counters and histograms then aggregate cluster-wide, while
// the event log keeps per-node attribution through Event.Node.
const (
	mFramesIn     = "peer.frames_in"
	mFramesOut    = "peer.frames_out"
	mBytesIn      = "peer.bytes_in"
	mBytesOut     = "peer.bytes_out"
	mPingRTT      = "peer.ping_rtt_ns"
	mSuspects     = "peer.suspect_transitions"
	mEvictions    = "peer.evictions"
	mPrunes       = "peer.prunes"
	mJoins        = "peer.joins"
	mDialFailures = "peer.dial_failures"
	mLinks        = "peer.links"
	mBackoff      = "peer.backoff_entries"
	mQueryStarts  = "peer.queries_started"
	mQueryFwd     = "peer.queries_forwarded"
	mQueryHits    = "peer.query_hits"
)

// nodeMetrics is one node's resolved instrument handles plus its event
// log. The zero value (all nil) is fully functional and free.
type nodeMetrics struct {
	framesIn, framesOut *obs.Counter
	bytesIn, bytesOut   *obs.Counter
	pingRTT             *obs.Histogram
	suspects            *obs.Counter
	evictions           *obs.Counter
	prunes              *obs.Counter
	joins               *obs.Counter
	dialFailures        *obs.Counter
	links               *obs.Gauge
	backoffEntries      *obs.Gauge
	queriesStarted      *obs.Counter
	queriesForwarded    *obs.Counter
	queryHits           *obs.Counter
	trace               *obs.EventLog
}

// newNodeMetrics resolves every handle from the registry (nil registry
// and/or nil trace yield no-op handles).
func newNodeMetrics(reg *obs.Registry, trace *obs.EventLog) nodeMetrics {
	return nodeMetrics{
		framesIn:         reg.Counter(mFramesIn),
		framesOut:        reg.Counter(mFramesOut),
		bytesIn:          reg.Counter(mBytesIn),
		bytesOut:         reg.Counter(mBytesOut),
		pingRTT:          reg.Histogram(mPingRTT),
		suspects:         reg.Counter(mSuspects),
		evictions:        reg.Counter(mEvictions),
		prunes:           reg.Counter(mPrunes),
		joins:            reg.Counter(mJoins),
		dialFailures:     reg.Counter(mDialFailures),
		links:            reg.Gauge(mLinks),
		backoffEntries:   reg.Gauge(mBackoff),
		queriesStarted:   reg.Counter(mQueryStarts),
		queriesForwarded: reg.Counter(mQueryFwd),
		queryHits:        reg.Counter(mQueryHits),
		trace:            trace,
	}
}

// frameIn/frameOut account one frame of the given payload length on
// the in-/out-counters (5 header bytes + payload, matching the wire
// format in wire.go).
func (m *nodeMetrics) frameIn(payloadLen int) {
	m.framesIn.Inc()
	m.bytesIn.Add(int64(5 + payloadLen))
}

func (m *nodeMetrics) frameOut(payloadLen int) {
	m.framesOut.Inc()
	m.bytesOut.Add(int64(5 + payloadLen))
}
