package peer

import (
	"math/rand"
	"testing"
	"time"

	"makalu/internal/obs"
	"makalu/peer/faultnet"
)

// waitCluster polls the cluster snapshot until cond holds or the
// deadline passes (then fails with the last snapshot).
func waitCluster(t *testing.T, c *Cluster, d time.Duration, cond func(ClusterSnapshot) bool) ClusterSnapshot {
	t.Helper()
	deadline := time.Now().Add(d)
	var s ClusterSnapshot
	for {
		s = c.Snapshot()
		if cond(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not converge within %v: %+v", d, s)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestClusterFormsConnectedOverlay(t *testing.T) {
	cfg := Config{Capacity: 3, ManageInterval: 150 * time.Millisecond, Seed: 7}
	c, err := StartCluster(6, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseAll()
	s := waitCluster(t, c, 15*time.Second, func(s ClusterSnapshot) bool {
		return s.GiantFraction == 1.0 && s.MeanDegree >= 2
	})
	if s.Live != 6 || s.Components != 1 {
		t.Fatalf("snapshot off: %+v", s)
	}
	if s.SearchSuccess != -1 {
		t.Fatalf("probing is off, SearchSuccess must be the -1 sentinel, got %v", s.SearchSuccess)
	}
}

// TestClusterSurvivesMassFailure is the acceptance test from the
// failure-detection work: in a 20-node live network, hard-kill 30% of
// the nodes (no Bye, no FIN — their traffic is black-holed by the
// fault injector, so survivors get no EOF/RST either) and black-hole
// 10% of the surviving links. Every survivor must evict its dead
// neighbors within 5 management intervals, the surviving overlay must
// re-form a giant component spanning 100% of live nodes, and flood
// query success must return to its pre-failure level.
func TestClusterSurvivesMassFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-network integration test")
	}
	const (
		nNodes   = 20
		nKill    = 6 // 30%
		interval = 250 * time.Millisecond
	)
	fn := faultnet.New(faultnet.Config{Seed: 42})
	cfg := Config{
		Capacity:       4,
		ManageInterval: interval,
		Seed:           42,
		DialTimeout:    500 * time.Millisecond,
		// Tight liveness so eviction lands inside the 5-interval
		// budget: a ping unanswered for one interval is one miss, two
		// misses evict.
		PingTimeout:     interval,
		SuspectMisses:   1,
		EvictMisses:     2,
		IdleTimeout:     8 * interval,
		DialBackoffBase: interval,
		DialMaxFails:    4,
	}
	// Cluster-wide observability: every node reports into one registry
	// and one event trace, so the failure storm below is fully visible.
	reg := obs.NewRegistry()
	trace := obs.NewEventLog(1 << 16)
	cfg.Metrics = reg
	cfg.Trace = trace
	c, err := StartCluster(nNodes, cfg, func(i int) Transport { return fn.Endpoint() })
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseAll()

	waitCluster(t, c, 30*time.Second, func(s ClusterSnapshot) bool {
		return s.GiantFraction == 1.0 && s.MeanDegree >= 2.5
	})
	c.PlaceObjects(1000)
	rng := rand.New(rand.NewSource(99))

	pre := probeAvoiding(c, rng, 20, nil)
	if pre < 1.0 {
		t.Fatalf("pre-failure query success %.2f, want 1.0", pre)
	}

	// Hard-kill every third node. Isolate first so the kill's socket
	// teardown cannot leak a FIN/RST to survivors: from their point of
	// view the peers simply go silent, like a crashed kernel behind a
	// dead link.
	kill := []int{0, 3, 6, 9, 12, 15}[:nKill]
	dead := make(map[int]bool)
	var deadAddrs []string
	for _, i := range kill {
		dead[i] = true
		deadAddrs = append(deadAddrs, c.Node(i).Addr())
		fn.Isolate(c.Node(i).Addr())
	}
	for _, i := range kill {
		c.Kill(i)
	}

	// Black-hole 10% of the surviving links (undetectable at the TCP
	// layer: writes succeed, reads starve).
	links := c.LiveLinks()
	nCut := (len(links) + 9) / 10
	cut := make(map[[2]int]bool)
	for _, lk := range links[:nCut] {
		cut[lk] = true
		fn.CutLink(c.Node(lk[0]).Addr(), c.Node(lk[1]).Addr())
	}
	killedAt := time.Now()

	// Acceptance: every survivor sheds its dead neighbors within 5
	// management intervals (small grace for tick phase alignment).
	evictDeadline := killedAt.Add(5*interval + interval/4)
	for !c.CleanOf(deadAddrs) {
		if time.Now().After(evictDeadline) {
			for _, i := range c.AliveIndices() {
				t.Logf("node %d neighbors: %v stats: %+v", i, c.Node(i).Neighbors(), c.Node(i).Stats())
			}
			t.Fatalf("dead neighbors still present %v after kill (budget %v)", time.Since(killedAt), 5*interval)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("all dead neighbors evicted %v after kill", time.Since(killedAt))

	// The survivors must re-form one component spanning all of them.
	s := waitCluster(t, c, 30*time.Second, func(s ClusterSnapshot) bool {
		return s.Live == nNodes-nKill && s.GiantFraction == 1.0
	})
	t.Logf("re-converged: %+v", s)

	// Query success returns to the pre-failure level. Probes avoid
	// source/holder pairs straddling a cut link: the flood still
	// traverses the overlay, but the out-of-band hit delivery dials the
	// originator directly and a black-holed direct dial can never
	// complete — that pair is unreachable by design, not a recovery
	// failure.
	post := probeAvoiding(c, rng, 20, cut)
	if post < pre {
		t.Fatalf("query success did not recover: pre %.2f post %.2f", pre, post)
	}

	// Sanity on the detector's own accounting: survivors saw evictions,
	// and nobody still lists a suspect link long after recovery.
	var totalEvict uint64
	for _, i := range c.AliveIndices() {
		st := c.Node(i).Stats()
		totalEvict += st.Evictions
	}
	if totalEvict == 0 {
		t.Fatal("no liveness evictions recorded despite 6 hard-killed nodes")
	}

	// Observability acceptance (PR 4): the event trace must contain
	// every suspect→evict transition that LinkStats reports — for each
	// survivor, the number of EvEvict events attributed to it equals
	// its Evictions counter, and the failure detector left suspect
	// events on the way there.
	evictEvents := make(map[string]int)
	for _, e := range trace.Snapshot() {
		if e.Type == obs.EvEvict {
			evictEvents[e.Node]++
		}
	}
	for _, i := range c.AliveIndices() {
		addr := c.Node(i).Addr()
		st := c.Node(i).Stats()
		if uint64(evictEvents[addr]) != st.Evictions {
			t.Errorf("node %d: trace has %d evict events, LinkStats reports %d evictions",
				i, evictEvents[addr], st.Evictions)
		}
	}
	if trace.CountType(obs.EvSuspect) == 0 {
		t.Error("no suspect events in trace despite liveness evictions")
	}
	// The registry's cluster-wide counters agree with the trace, and
	// the wire/liveness instruments actually measured traffic.
	snap := reg.Snapshot()
	if got, want := snap.Counters["peer.evictions"], int64(trace.CountType(obs.EvEvict)); got != want {
		t.Errorf("metrics evictions %d != trace evict events %d", got, want)
	}
	if snap.Counters["peer.frames_in"] == 0 || snap.Counters["peer.frames_out"] == 0 {
		t.Error("wire counters recorded no frames")
	}
	if snap.Histograms["peer.ping_rtt_ns"].Count == 0 {
		t.Error("ping RTT histogram recorded no samples")
	}
}

// probeAvoiding floods probes from random live sources to random live
// holders, skipping (source, holder) pairs that straddle a cut link.
func probeAvoiding(c *Cluster, rng *rand.Rand, probes int, cut map[[2]int]bool) float64 {
	alive := c.AliveIndices()
	c.mu.Lock()
	var objs []uint64
	holders := make(map[uint64]int)
	for obj, h := range c.holders {
		if !c.down[h] {
			objs = append(objs, obj)
			holders[obj] = h
		}
	}
	c.mu.Unlock()
	sortUint64s(objs)
	found := 0
	for q := 0; q < probes; q++ {
		var srcIdx int
		var obj uint64
		for {
			srcIdx = alive[rng.Intn(len(alive))]
			obj = objs[rng.Intn(len(objs))]
			h := holders[obj]
			k := [2]int{srcIdx, h}
			if h < srcIdx {
				k = [2]int{h, srcIdx}
			}
			if !cut[k] {
				break
			}
		}
		if c.probeOne(c.nodes[srcIdx], obj, 6, 2*time.Second) {
			found++
		}
	}
	return float64(found) / float64(probes)
}
