package peer

import (
	"testing"
	"time"
)

func denyTestConfig(seed int64) Config {
	return Config{Capacity: 4, ManageInterval: 100 * time.Millisecond, Seed: seed}
}

// TestDenyBlocksDial: Connect to a denied address must fail without
// touching the wire, and the refill loop must never dial it.
func TestDenyBlocksDial(t *testing.T) {
	a, err := Start("127.0.0.1:0", denyTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start("127.0.0.1:0", denyTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.SetDenied([]string{b.Addr()})
	if err := a.Connect(b.Addr()); err == nil {
		t.Fatal("Connect to a denied peer succeeded")
	}
	if got := a.Degree(); got != 0 {
		t.Fatalf("degree = %d after denied Connect, want 0", got)
	}
}

// TestDenyBlocksAccept: an inbound handshake from a denied address is
// dropped after the Hello.
func TestDenyBlocksAccept(t *testing.T) {
	a, err := Start("127.0.0.1:0", denyTestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start("127.0.0.1:0", denyTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	a.SetDenied([]string{b.Addr()})
	// b's dial either errors at handshake or registers a link that a
	// never reciprocates; a must end with no neighbors either way.
	b.Connect(a.Addr())
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.Degree() == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := a.Degree(); got != 0 {
		t.Fatalf("denied inbound registered: degree = %d, want 0", got)
	}
}

// TestSetDeniedCutsExistingLink: denying a connected peer severs the
// link on both ends without a Bye — the remote side must go through
// its failure path (the link just disappears), not the clean-departure
// path.
func TestSetDeniedCutsExistingLink(t *testing.T) {
	a, err := Start("127.0.0.1:0", denyTestConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start("127.0.0.1:0", denyTestConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	if a.Degree() != 1 {
		t.Fatalf("degree = %d before deny, want 1", a.Degree())
	}
	a.SetDenied([]string{b.Addr()})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if a.Degree() == 0 && b.Degree() == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if a.Degree() != 0 || b.Degree() != 0 {
		t.Fatalf("link survived deny: a=%d b=%d neighbors", a.Degree(), b.Degree())
	}
	// b keeps retrying (failure semantics put a on backoff, not out of
	// the cache immediately) but a refuses; the cut must hold.
	time.Sleep(300 * time.Millisecond)
	if a.Degree() != 0 {
		t.Fatalf("denied peer reconnected: degree = %d", a.Degree())
	}

	got := a.Denied()
	if len(got) != 1 || got[0] != b.Addr() {
		t.Fatalf("Denied() = %v, want [%s]", got, b.Addr())
	}

	// Clearing the deny list lets refill re-learn the address; the two
	// should eventually re-link (b still caches a's address).
	a.SetDenied(nil)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.Degree() == 1 && b.Degree() == 1 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("link did not heal after deny cleared: a=%d b=%d", a.Degree(), b.Degree())
}
