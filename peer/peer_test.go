package peer

import (
	"bufio"
	"bytes"
	"testing"
	"time"
)

// startNodes launches n live nodes on loopback and bootstraps nodes
// 1..n-1 off node 0. Cleanup closes everything.
func startNodes(t *testing.T, n, capacity int) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nd, err := Start("127.0.0.1:0", DefaultNodeConfig(capacity, int64(i+1)))
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.Close()
		}
	})
	seed := nodes[0].Addr()
	for i := 1; i < n; i++ {
		if err := nodes[i].Bootstrap(seed, 2*time.Second); err != nil {
			t.Fatalf("node %d bootstrap: %v", i, err)
		}
	}
	return nodes
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	payload := []byte{1, 2, 3, 4, 5}
	if err := writeFrame(w, msgQuery, payload); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if f.kind != msgQuery || !bytes.Equal(f.payload, payload) {
		t.Fatalf("frame mangled: %+v", f)
	}
}

func TestWireOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := writeFrame(w, msgQuery, make([]byte, maxFrame+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
	// Forged oversized header on the read path.
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f, msgQuery})
	if _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized read accepted")
	}
}

func TestPayloadCodecs(t *testing.T) {
	h, err := decodeHello(encodeHello(helloPayload{Addr: "1.2.3.4:5"}))
	if err != nil || h.Addr != "1.2.3.4:5" {
		t.Fatalf("hello: %+v %v", h, err)
	}
	nb, err := decodeNeighbors(encodeNeighbors(neighborsPayload{Addrs: []string{"a:1", "b:2"}}))
	if err != nil || len(nb.Addrs) != 2 || nb.Addrs[1] != "b:2" {
		t.Fatalf("neighbors: %+v %v", nb, err)
	}
	q, err := decodeQuery(encodeQuery(queryPayload{QueryID: 7, TTL: 3, Object: 99, Originator: "x:1"}))
	if err != nil || q.QueryID != 7 || q.TTL != 3 || q.Object != 99 || q.Originator != "x:1" {
		t.Fatalf("query: %+v %v", q, err)
	}
	hit, err := decodeHit(encodeHit(hitPayload{QueryID: 7, Object: 99, Holder: "y:2"}))
	if err != nil || hit.Holder != "y:2" {
		t.Fatalf("hit: %+v %v", hit, err)
	}
	p, err := decodePing(encodePing(pingPayload{Nonce: 42}))
	if err != nil || p.Nonce != 42 {
		t.Fatalf("ping: %+v %v", p, err)
	}
	// Corrupt frames must be rejected, not misread.
	if _, err := decodeHello(nil); err == nil {
		t.Fatal("nil hello accepted")
	}
	if _, err := decodeNeighbors([]byte{1}); err == nil {
		t.Fatal("short neighbors accepted")
	}
	if _, err := decodeQuery([]byte{1, 2}); err == nil {
		t.Fatal("short query accepted")
	}
	if _, err := decodeHit([]byte{1}); err == nil {
		t.Fatal("short hit accepted")
	}
	if _, err := decodePing([]byte{1, 2, 3}); err == nil {
		t.Fatal("bad ping accepted")
	}
}

func TestStartValidation(t *testing.T) {
	if _, err := Start("127.0.0.1:0", Config{Capacity: 0}); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestHandshakeAndNeighborExchange(t *testing.T) {
	a, err := Start("127.0.0.1:0", DefaultNodeConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start("127.0.0.1:0", DefaultNodeConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return a.Degree() == 1 && b.Degree() == 1
	}, "handshake did not register on both sides")
	// Duplicate and self connects are no-ops/errors.
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatalf("re-connect should be a no-op: %v", err)
	}
	if err := a.Connect(a.Addr()); err == nil {
		t.Fatal("self-connect accepted")
	}
	if a.Degree() != 1 {
		t.Fatalf("degree grew on duplicate connect: %d", a.Degree())
	}
}

func TestBootstrapFillsCapacity(t *testing.T) {
	nodes := startNodes(t, 8, 3)
	waitFor(t, 3*time.Second, func() bool {
		for _, nd := range nodes[1:] {
			if nd.Degree() < 2 {
				return false
			}
		}
		return true
	}, "bootstrap left nodes under-connected")
}

func TestCapacityPruning(t *testing.T) {
	// A 1-capacity hub dialed by several peers must prune down.
	hub, err := Start("127.0.0.1:0", DefaultNodeConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	var others []*Node
	for i := 0; i < 4; i++ {
		nd, err := Start("127.0.0.1:0", DefaultNodeConfig(3, int64(i+2)))
		if err != nil {
			t.Fatal(err)
		}
		defer nd.Close()
		others = append(others, nd)
		nd.Connect(hub.Addr())
	}
	waitFor(t, 3*time.Second, func() bool { return hub.Degree() <= 1 }, "hub never pruned to capacity")
}

func TestQueryFloodFindsRemoteObject(t *testing.T) {
	nodes := startNodes(t, 10, 4)
	// Give the network a moment to settle and exchange views.
	time.Sleep(300 * time.Millisecond)
	const obj = uint64(0xabcdef)
	nodes[9].AddObject(obj)
	id := nodes[1].Query(obj, 6)
	select {
	case hit := <-nodes[1].Hits():
		if hit.QueryID != id || hit.Object != obj {
			t.Fatalf("wrong hit: %+v", hit)
		}
		if hit.Holder != nodes[9].Addr() {
			t.Fatalf("hit from %s, want %s", hit.Holder, nodes[9].Addr())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no hit within 5s")
	}
}

func TestQueryLocalHitImmediate(t *testing.T) {
	nd, err := Start("127.0.0.1:0", DefaultNodeConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	nd.AddObject(5)
	id := nd.Query(5, 0)
	select {
	case hit := <-nd.Hits():
		if hit.QueryID != id || hit.Holder != nd.Addr() {
			t.Fatalf("bad local hit: %+v", hit)
		}
	case <-time.After(time.Second):
		t.Fatal("local hit not delivered")
	}
}

func TestQueryMissingObjectNoHit(t *testing.T) {
	nodes := startNodes(t, 5, 3)
	time.Sleep(200 * time.Millisecond)
	nodes[0].Query(0xdead, 5)
	select {
	case hit := <-nodes[0].Hits():
		t.Fatalf("phantom hit: %+v", hit)
	case <-time.After(700 * time.Millisecond):
	}
}

func TestDuplicateSuppressionBoundsLoad(t *testing.T) {
	nodes := startNodes(t, 6, 5)
	time.Sleep(300 * time.Millisecond)
	nodes[0].Query(1, 10) // generous TTL on a tiny, cyclic network
	time.Sleep(500 * time.Millisecond)
	// Each node processes a query at most once; with 1 query issued,
	// QueriesForwarded must be <= 1 everywhere.
	for i, nd := range nodes {
		if nd.QueriesForwarded() > 1 {
			t.Fatalf("node %d processed the query %d times", i, nd.QueriesForwarded())
		}
	}
}

func TestByeRemovesNeighbor(t *testing.T) {
	a, err := Start("127.0.0.1:0", DefaultNodeConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start("127.0.0.1:0", DefaultNodeConfig(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return a.Degree() == 1 }, "connect failed")
	b.Close()
	waitFor(t, 3*time.Second, func() bool { return a.Degree() == 0 }, "bye/close not observed")
}

func TestViewsPropagate(t *testing.T) {
	nodes := startNodes(t, 5, 4)
	waitFor(t, 3*time.Second, func() bool {
		// Node 1 should eventually know peers beyond its direct
		// neighbors or have everyone as a neighbor.
		return len(nodes[1].KnownPeers())+nodes[1].Degree() >= 3
	}, "neighbor views never propagated")
}

func TestSeenCacheEviction(t *testing.T) {
	nd, err := Start("127.0.0.1:0", DefaultNodeConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	nd.mu.Lock()
	for i := 0; i < seenCap+100; i++ {
		nd.markSeenLocked(uint64(i))
	}
	size := len(nd.seen)
	nd.mu.Unlock()
	if size > seenCap {
		t.Fatalf("seen cache grew to %d (cap %d)", size, seenCap)
	}
}
