package faultnet

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// frame builds one wire frame (4-byte LE length + kind + payload).
func frame(kind byte, payload []byte) []byte {
	b := make([]byte, 5+len(payload))
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	b[4] = kind
	copy(b[5:], payload)
	return b
}

// pipePair dials an endpoint-to-endpoint TCP connection through the
// network and returns the dial-side conn plus the raw accepted conn.
func pipePair(t *testing.T, n *Network) (client net.Conn, server net.Conn) {
	t.Helper()
	ep := n.Endpoint()
	ln, err := ep.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer := n.Endpoint()
	c, err := dialer.DialTimeout("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	s := <-accepted
	t.Cleanup(func() { s.Close() })
	return c, s
}

func readAll(t *testing.T, c net.Conn, n int, timeout time.Duration) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	return buf
}

func TestPassThroughWithoutFaults(t *testing.T) {
	client, server := pipePair(t, New(Config{Seed: 1}))
	f := frame(3, []byte("hello"))
	if _, err := client.Write(f); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, server, len(f), time.Second)
	if !bytes.Equal(got, f) {
		t.Fatalf("frame mangled: %x != %x", got, f)
	}
}

func TestDropProbabilityDropsFrames(t *testing.T) {
	n := New(Config{Seed: 7, DropProb: 0.5})
	client, server := pipePair(t, n)
	const frames = 200
	for i := 0; i < frames; i++ {
		if _, err := client.Write(frame(4, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	dropped, _, _ := n.Stats()
	if dropped == 0 || dropped == frames {
		t.Fatalf("DropProb=0.5 dropped %d of %d frames", dropped, frames)
	}
	// Whatever arrives must still be whole frames of the right shape.
	server.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, frames*6)
	total := 0
	for {
		k, err := server.Read(buf[total:])
		total += k
		if err != nil || total == (frames-int(dropped))*6 {
			break
		}
	}
	if total != (frames-int(dropped))*6 {
		t.Fatalf("got %d bytes, want %d (=%d surviving frames)", total, (frames-int(dropped))*6, frames-int(dropped))
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	n := New(Config{Seed: 3, DupProb: 1.0})
	client, server := pipePair(t, n)
	f := frame(7, []byte{0xaa})
	if _, err := client.Write(f); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, server, 2*len(f), time.Second)
	if !bytes.Equal(got, append(append([]byte{}, f...), f...)) {
		t.Fatalf("expected frame twice, got %x", got)
	}
}

func TestDelayHoldsFrames(t *testing.T) {
	n := New(Config{Seed: 5, Delay: 150 * time.Millisecond})
	client, server := pipePair(t, n)
	f := frame(8, []byte{1, 2, 3})
	start := time.Now()
	if _, err := client.Write(f); err != nil {
		t.Fatal(err)
	}
	readAll(t, server, len(f), 2*time.Second)
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= ~150ms", elapsed)
	}
}

func TestDelayPreservesOrder(t *testing.T) {
	n := New(Config{Seed: 11, Delay: 20 * time.Millisecond, Jitter: 50 * time.Millisecond})
	client, server := pipePair(t, n)
	const frames = 20
	for i := 0; i < frames; i++ {
		if _, err := client.Write(frame(4, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	got := readAll(t, server, frames*6, 5*time.Second)
	for i := 0; i < frames; i++ {
		if got[i*6+5] != byte(i) {
			t.Fatalf("frame %d out of order: payload %d", i, got[i*6+5])
		}
	}
}

func TestCutLinkBlackHolesBothDirections(t *testing.T) {
	n := New(Config{Seed: 13})
	ep := n.Endpoint()
	ln, err := ep.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serverAddr := ln.Addr().String()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialEP := n.Endpoint()
	dialLn, err := dialEP.Listen("tcp", "127.0.0.1:0") // gives the dialer an identity
	if err != nil {
		t.Fatal(err)
	}
	defer dialLn.Close()
	clientAddr := dialLn.Addr().String()
	client, err := dialEP.DialTimeout("tcp", serverAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()
	// The accept side learns the peer identity from the protocol; here
	// we stand in for the handshake.
	server.(*Conn).SetPeer(clientAddr)

	// Sanity: traffic flows before the cut.
	f := frame(1, []byte("pre"))
	client.Write(f)
	readAll(t, server, len(f), time.Second)

	n.CutLink(clientAddr, serverAddr)

	// Client -> server swallowed: the write "succeeds" silently.
	if _, err := client.Write(frame(1, []byte("lost"))); err != nil {
		t.Fatalf("black-holed write should not error: %v", err)
	}
	server.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	buf := make([]byte, 16)
	if _, err := server.Read(buf); err == nil {
		t.Fatal("black-holed frame was delivered")
	}
	// Server -> client swallowed too.
	if _, err := server.Write(frame(1, []byte("lost2"))); err != nil {
		t.Fatalf("black-holed write should not error: %v", err)
	}
	client.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := client.Read(buf); err == nil {
		t.Fatal("black-holed frame was delivered upstream")
	}

	// Healing restores the link.
	n.HealLink(clientAddr, serverAddr)
	f = frame(1, []byte("post"))
	client.Write(f)
	readAll(t, server, len(f), time.Second)
}

func TestIsolateSwallowsEOF(t *testing.T) {
	// A black-holed peer must not observe the other side's close: the
	// failure signal (EOF/RST) stays inside the partition, so only the
	// reader's own deadline can fire.
	n := New(Config{Seed: 17})
	client, server := pipePair(t, n)
	dialed := client.(*Conn)
	dialed.SetPeer("dead:1")
	n.Isolate("dead:1")
	server.Close()
	time.Sleep(50 * time.Millisecond) // let the FIN arrive
	client.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	start := time.Now()
	_, err := client.Read(make([]byte, 8))
	if err == nil {
		t.Fatal("read succeeded through a black hole")
	}
	if ne, ok := err.(net.Error); (!ok || !ne.Timeout()) && err != os.ErrDeadlineExceeded {
		t.Fatalf("want timeout error, got %v", err)
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Fatalf("EOF leaked through the black hole after %v", time.Since(start))
	}
}

func TestDialToIsolatedTimesOut(t *testing.T) {
	n := New(Config{Seed: 19})
	ep := n.Endpoint()
	ln, err := ep.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	n.Isolate(ln.Addr().String())
	start := time.Now()
	_, err = n.Endpoint().DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
	if err == nil {
		t.Fatal("dial to isolated node succeeded")
	}
	if time.Since(start) < 80*time.Millisecond {
		t.Fatal("dial failed fast; a lost SYN should consume the timeout")
	}
}

func TestDeterministicFaultsAcrossRuns(t *testing.T) {
	run := func() uint64 {
		n := New(Config{Seed: 23, DropProb: 0.3})
		client, _ := pipePair(t, n)
		for i := 0; i < 100; i++ {
			if _, err := client.Write(frame(4, []byte{byte(i)})); err != nil {
				t.Fatal(err)
			}
		}
		d, _, _ := n.Stats()
		return d
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different drop counts: %d vs %d", a, b)
	}
}

func TestNonFrameTrafficPassesThrough(t *testing.T) {
	// Bytes that do not parse as a frame (implausible length) must be
	// flushed as-is so faultnet never wedges foreign protocols.
	n := New(Config{Seed: 29, DropProb: 0.99})
	client, server := pipePair(t, n)
	blob := []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3} // length 0xffffffff >> maxFrame
	if _, err := client.Write(blob); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, server, len(blob), time.Second)
	if !bytes.Equal(got, blob) {
		t.Fatalf("blob mangled: %x", got)
	}
}
