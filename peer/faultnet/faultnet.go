// Package faultnet is a fault-injecting network transport for testing
// the live peer layer. It wraps real net.Conn/net.Listener pairs and
// can, under a seeded RNG, drop, duplicate and delay individual
// protocol frames, and black-hole whole links or nodes: traffic is
// silently swallowed while both TCP endpoints stay open, which is what
// a crashed kernel, a mid-frame stall or an asymmetric partition look
// like from the application. Connection-level failure signals (EOF,
// RST) never cross a black hole — the peer under test must detect the
// death itself, via its own deadlines and liveness probes.
//
// A Network holds the global fault rules; each node gets its own
// Endpoint (its view of the network), which satisfies the peer
// package's Transport interface. Links are identified by the pair of
// listen addresses; outbound connections are labeled at dial time and
// inbound ones as soon as the protocol handshake reveals the dialer's
// listen address (via the SetPeer hook).
package faultnet

import (
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// maxFrame mirrors the peer wire format's payload bound; frame
// segmentation falls back to pass-through for anything implausible.
const maxFrame = 1 << 20

// Config sets the probabilistic per-frame faults applied to every
// non-black-holed connection. The zero value injects nothing.
type Config struct {
	// Seed drives all randomness (each connection derives its own
	// stream, so one connection's traffic does not perturb another's).
	Seed int64
	// DropProb is the probability that a frame is silently dropped.
	DropProb float64
	// DupProb is the probability that a frame is delivered twice.
	DupProb float64
	// Delay is a fixed latency added to every frame; Jitter adds a
	// uniform random extra in [0, Jitter). Ordering is preserved.
	Delay  time.Duration
	Jitter time.Duration
}

// Network is the shared fault state for a set of endpoints.
type Network struct {
	cfg Config

	mu       sync.Mutex
	seq      int64              // connection counter, for per-conn RNG derivation
	isolated map[string]bool    // node listen addr -> all its traffic black-holed
	cut      map[[2]string]bool // link (addr pair) -> black-holed

	dropped    atomic.Uint64
	duplicated atomic.Uint64
	delayed    atomic.Uint64
}

// New creates a network with the given fault configuration.
func New(cfg Config) *Network {
	return &Network{
		cfg:      cfg,
		isolated: make(map[string]bool),
		cut:      make(map[[2]string]bool),
	}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Isolate black-holes every connection touching the node with the
// given listen address — the live-network analogue of a silent crash
// or a full partition of one host.
func (n *Network) Isolate(addr string) {
	n.mu.Lock()
	n.isolated[addr] = true
	n.mu.Unlock()
}

// Restore lifts an Isolate.
func (n *Network) Restore(addr string) {
	n.mu.Lock()
	delete(n.isolated, addr)
	n.mu.Unlock()
}

// CutLink black-holes the link between two listen addresses in both
// directions while leaving both nodes otherwise reachable.
func (n *Network) CutLink(a, b string) {
	n.mu.Lock()
	n.cut[pairKey(a, b)] = true
	n.mu.Unlock()
}

// HealLink lifts a CutLink.
func (n *Network) HealLink(a, b string) {
	n.mu.Lock()
	delete(n.cut, pairKey(a, b))
	n.mu.Unlock()
}

// Stats reports how many frames have been dropped, duplicated and
// delayed so far.
func (n *Network) Stats() (dropped, duplicated, delayed uint64) {
	return n.dropped.Load(), n.duplicated.Load(), n.delayed.Load()
}

func (n *Network) blackholed(local, peer string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.isolated[local] || (peer != "" && n.isolated[peer]) {
		return true
	}
	return peer != "" && n.cut[pairKey(local, peer)]
}

func (n *Network) nextSeq() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq++
	return n.seq
}

// Endpoint returns a node's view of the network. It implements the
// peer package's Transport interface.
func (n *Network) Endpoint() *Endpoint {
	return &Endpoint{net: n}
}

// Endpoint is one node's transport. Its identity (listen address) is
// recorded at Listen time and stamps every connection it creates.
type Endpoint struct {
	net *Network

	mu    sync.Mutex
	local string
}

func (e *Endpoint) localAddr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.local
}

// Listen opens a real listener and remembers its address as this
// endpoint's identity.
func (e *Endpoint) Listen(network, address string) (net.Listener, error) {
	ln, err := net.Listen(network, address)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.local = ln.Addr().String()
	e.mu.Unlock()
	return &listener{Listener: ln, ep: e}, nil
}

// DialTimeout dials through the network. A dial to an isolated node or
// across a cut link behaves like a lost SYN: it blocks for the full
// timeout and fails, without touching the real socket.
func (e *Endpoint) DialTimeout(network, address string, timeout time.Duration) (net.Conn, error) {
	if e.net.blackholed(e.localAddr(), address) {
		if timeout > 0 {
			time.Sleep(timeout)
		}
		return nil, &net.OpError{Op: "dial", Net: network, Err: os.ErrDeadlineExceeded}
	}
	c, err := net.DialTimeout(network, address, timeout)
	if err != nil {
		return nil, err
	}
	return e.wrap(c, address), nil
}

type listener struct {
	net.Listener
	ep *Endpoint
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	// The dialer's listen address is unknown until the protocol labels
	// the connection via SetPeer.
	return l.ep.wrap(c, ""), nil
}

func (e *Endpoint) wrap(c net.Conn, peer string) *Conn {
	seq := e.net.nextSeq()
	return &Conn{
		c:         c,
		ep:        e,
		peer:      peer,
		rng:       rand.New(rand.NewSource(e.net.cfg.Seed*1000003 + seq)),
		closed:    make(chan struct{}),
		dlChanged: make(chan struct{}),
	}
}

// Conn is a fault-injecting connection. The write path segments the
// byte stream into protocol frames (4-byte little-endian length + kind
// byte) so drop/duplicate act on whole messages; anything that does
// not look like a frame passes through untouched.
type Conn struct {
	c  net.Conn
	ep *Endpoint

	mu           sync.Mutex // guards peer, readDeadline, dlChanged
	peer         string
	readDeadline time.Time
	dlChanged    chan struct{}

	wmu     sync.Mutex // guards the write path
	rng     *rand.Rand
	pending []byte
	sendq   chan delayedFrame
	lastDue time.Time

	closeOnce sync.Once
	closed    chan struct{}
}

type delayedFrame struct {
	due time.Time
	b   []byte
}

// SetPeer labels the connection with the remote peer's listen address
// so per-link rules apply. The peer protocol calls this as soon as the
// handshake reveals the dialer's identity.
func (c *Conn) SetPeer(addr string) {
	c.mu.Lock()
	c.peer = addr
	c.mu.Unlock()
}

func (c *Conn) blackholed() bool {
	c.mu.Lock()
	peer := c.peer
	c.mu.Unlock()
	return c.ep.net.blackholed(c.ep.localAddr(), peer)
}

func (c *Conn) Write(b []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	default:
	}
	if c.blackholed() {
		// Swallow silently: the sender sees success, nothing arrives.
		return len(b), nil
	}
	cfg := c.ep.net.cfg
	if cfg.DropProb == 0 && cfg.DupProb == 0 && cfg.Delay == 0 && cfg.Jitter == 0 {
		return c.c.Write(b)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.pending = append(c.pending, b...)
	for {
		frame, isFrame, ok := c.nextFrame()
		if !ok {
			return len(b), nil
		}
		if !isFrame {
			// Not our framing: pass through without fault rolls.
			if err := c.deliver(frame); err != nil {
				return len(b), err
			}
			continue
		}
		if c.rng.Float64() < cfg.DropProb {
			c.ep.net.dropped.Add(1)
			continue
		}
		copies := 1
		if c.rng.Float64() < cfg.DupProb {
			copies = 2
			c.ep.net.duplicated.Add(1)
		}
		for i := 0; i < copies; i++ {
			if err := c.deliver(frame); err != nil {
				return len(b), err
			}
		}
	}
}

// nextFrame extracts one complete frame from the pending buffer,
// reporting whether it parsed as protocol framing. When the buffer
// does not start with a plausible frame header, everything buffered
// is flushed as a single pass-through blob (isFrame=false) so
// non-framed traffic is never wedged.
func (c *Conn) nextFrame() (b []byte, isFrame, ok bool) {
	if len(c.pending) < 5 {
		return nil, false, false // wait for the rest of the header
	}
	n := int(uint32(c.pending[0]) | uint32(c.pending[1])<<8 | uint32(c.pending[2])<<16 | uint32(c.pending[3])<<24)
	if n > maxFrame {
		blob := c.pending
		c.pending = nil
		return blob, false, true
	}
	size := 5 + n
	if len(c.pending) < size {
		return nil, false, false
	}
	frame := make([]byte, size)
	copy(frame, c.pending[:size])
	c.pending = c.pending[size:]
	if len(c.pending) == 0 {
		c.pending = nil
	}
	return frame, true, true
}

// deliver writes a frame now, or queues it on the ordered delayed
// writer when latency injection is on.
func (c *Conn) deliver(frame []byte) error {
	cfg := c.ep.net.cfg
	if cfg.Delay == 0 && cfg.Jitter == 0 {
		_, err := c.c.Write(frame)
		return err
	}
	extra := cfg.Delay
	if cfg.Jitter > 0 {
		extra += time.Duration(c.rng.Int63n(int64(cfg.Jitter)))
	}
	due := time.Now().Add(extra)
	if due.Before(c.lastDue) {
		due = c.lastDue // never reorder within a connection
	}
	c.lastDue = due
	if c.sendq == nil {
		c.sendq = make(chan delayedFrame, 1024)
		go c.delayedWriter()
	}
	c.ep.net.delayed.Add(1)
	select {
	case c.sendq <- delayedFrame{due: due, b: frame}:
	case <-c.closed:
		return net.ErrClosed
	}
	return nil
}

func (c *Conn) delayedWriter() {
	for {
		select {
		case df := <-c.sendq:
			if wait := time.Until(df.due); wait > 0 {
				select {
				case <-time.After(wait):
				case <-c.closed:
					return
				}
			}
			if c.blackholed() {
				continue // the hole opened while the frame was in flight
			}
			if _, err := c.c.Write(df.b); err != nil {
				return
			}
		case <-c.closed:
			return
		}
	}
}

func (c *Conn) Read(b []byte) (int, error) {
	scratch := b
	for {
		if !c.blackholed() {
			return c.c.Read(b)
		}
		// Black-holed: swallow everything that arrives — including
		// EOF/RST, which must not leak failure signals through the
		// partition — until our own read deadline fires.
		n, err := c.c.Read(scratch)
		_ = n // discarded
		if err == nil {
			continue
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			return 0, err // the caller's deadline: surface it
		}
		return 0, c.waitReadDeadline()
	}
}

// waitReadDeadline blocks until the current read deadline passes (it
// re-checks whenever SetReadDeadline changes it), then returns a
// timeout error — the only failure a black-holed peer may observe.
func (c *Conn) waitReadDeadline() error {
	for {
		c.mu.Lock()
		dl := c.readDeadline
		changed := c.dlChanged
		c.mu.Unlock()
		if dl.IsZero() {
			select {
			case <-changed:
				continue
			case <-c.closed:
				return net.ErrClosed
			}
		}
		wait := time.Until(dl)
		if wait <= 0 {
			return os.ErrDeadlineExceeded
		}
		select {
		case <-time.After(wait):
			return os.ErrDeadlineExceeded
		case <-changed:
		case <-c.closed:
			return net.ErrClosed
		}
	}
}

func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.c.Close()
}

func (c *Conn) LocalAddr() net.Addr  { return c.c.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

func (c *Conn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	return c.c.SetWriteDeadline(t)
}

func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	ch := c.dlChanged
	c.dlChanged = make(chan struct{})
	c.mu.Unlock()
	close(ch)
	return c.c.SetReadDeadline(t)
}

func (c *Conn) SetWriteDeadline(t time.Time) error {
	return c.c.SetWriteDeadline(t)
}
