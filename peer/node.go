package peer

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"makalu/internal/obs"
)

// Config parameterizes a live node.
type Config struct {
	// Capacity is the maximum neighbor count; the rating function
	// prunes beyond it.
	Capacity int
	// Alpha and Beta weight connectivity and proximity, as in the
	// simulator. Defaults 1 and 1.
	Alpha, Beta float64
	// ManageInterval is the period of the management loop (neighbor
	// pushes, pings, liveness sweep, pruning). Default 200ms — fast,
	// suited to tests; a deployment would use tens of seconds.
	ManageInterval time.Duration
	// Seed drives the node's local randomness.
	Seed int64

	// Transport abstracts the network; nil means plain TCP. Tests
	// inject peer/faultnet here.
	Transport Transport
	// DialTimeout bounds connection dials, handshake reads and frame
	// writes. Default 3s.
	DialTimeout time.Duration

	// PingTimeout is how long an outstanding ping nonce may wait for
	// its pong before counting as a missed probe. Default
	// 2×ManageInterval.
	PingTimeout time.Duration
	// SuspectMisses consecutive missed pongs mark a link suspect;
	// EvictMisses evict it (the peer is presumed dead — no Bye is
	// sent) and trigger an immediate refill. Defaults 1 and 3.
	SuspectMisses, EvictMisses int
	// IdleTimeout is the per-read deadline: a link with no inbound
	// traffic at all for this long is considered stalled mid-frame and
	// evicted. Healthy links carry management traffic every interval,
	// so the default of 10×ManageInterval only fires on real stalls.
	IdleTimeout time.Duration

	// Re-dial backoff: a failed dial to addr is retried no sooner than
	// base<<(fails-1) later (capped at DialBackoffMax, jittered), and
	// after DialMaxFails consecutive failures the address is dropped
	// from the host cache. Defaults: ManageInterval, 16×base, 6.
	DialBackoffBase time.Duration
	DialBackoffMax  time.Duration
	DialMaxFails    int
	// HostCacheCap bounds the host cache; beyond it a random
	// non-neighbor entry is evicted per insertion. Default 512.
	HostCacheCap int

	// DenyPeers lists peer listen addresses this node refuses to dial
	// or accept. The testnet harness uses deny lists to create
	// partitions without firewall rules; SetDenied updates the set at
	// runtime (and cuts existing links to newly denied peers).
	DenyPeers []string

	// Metrics, when non-nil, receives the node's runtime instruments:
	// frames/bytes in and out, the ping RTT histogram, suspect/evict
	// transition counters, dial-backoff state and query activity.
	// Several nodes may share one registry (peer.Cluster does); the
	// counters then aggregate cluster-wide. Nil disables metrics at
	// the cost of one branch per instrumentation point.
	Metrics *obs.Registry
	// Trace, when non-nil, receives typed overlay lifecycle events
	// (join, prune, suspect, evict, dial-backoff, query-start/hit)
	// with per-node attribution. Nil disables tracing.
	Trace *obs.EventLog
}

// withDefaults fills the zero-valued knobs.
func (cfg Config) withDefaults() Config {
	if cfg.Alpha == 0 && cfg.Beta == 0 {
		cfg.Alpha, cfg.Beta = 1, 1
	}
	if cfg.ManageInterval <= 0 {
		cfg.ManageInterval = 200 * time.Millisecond
	}
	if cfg.Transport == nil {
		cfg.Transport = tcpTransport{}
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.PingTimeout <= 0 {
		cfg.PingTimeout = 2 * cfg.ManageInterval
	}
	if cfg.SuspectMisses <= 0 {
		cfg.SuspectMisses = 1
	}
	if cfg.EvictMisses <= 0 {
		cfg.EvictMisses = 3
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 10 * cfg.ManageInterval
	}
	if cfg.DialBackoffBase <= 0 {
		cfg.DialBackoffBase = cfg.ManageInterval
	}
	if cfg.DialBackoffMax <= 0 {
		cfg.DialBackoffMax = 16 * cfg.DialBackoffBase
	}
	if cfg.DialMaxFails <= 0 {
		cfg.DialMaxFails = 6
	}
	if cfg.HostCacheCap <= 0 {
		cfg.HostCacheCap = 512
	}
	return cfg
}

// DefaultNodeConfig returns a small-capacity test-friendly config.
func DefaultNodeConfig(capacity int, seed int64) Config {
	return Config{Capacity: capacity, Alpha: 1, Beta: 1, ManageInterval: 200 * time.Millisecond, Seed: seed}
}

// Hit is one query result delivered to the originator.
type Hit struct {
	QueryID uint64
	Object  uint64
	Holder  string // listen address of the node hosting the object
}

// Node is a live Makalu peer speaking the wire protocol over TCP.
type Node struct {
	cfg Config
	tr  Transport
	ln  net.Listener

	mu        sync.Mutex
	conns     map[string]*link        // by remote listen address
	cache     map[string]bool         // host cache: bounded sample of learned addresses
	views     map[string][]string     // last neighbor list pushed by each peer
	rtt       map[string]float64      // measured RTT seconds
	pingT     map[uint64]pingRef      // outstanding ping nonces
	backoff   map[string]*dialBackoff // per-address re-dial state
	dialing   map[string]bool         // dials in flight (refill dedup)
	denied    map[string]bool         // peers we refuse to dial or accept
	store     map[uint64]bool         // hosted objects
	blobs     map[uint64][]byte       // hosted blob payloads for chunk serving
	seen      map[uint64]bool         // query-id duplicate suppression
	seenQ     []uint64                // FIFO for seen eviction
	queries   uint64                  // queries forwarded (stats)
	evictions uint64                  // links dropped for liveness (stats)
	closed    bool
	killed    bool       // Kill() was called: crash semantics, no FIN
	deadConns []net.Conn // connections left dangling by Kill, reaped by Close

	hits   chan Hit
	chunks chan ChunkReply // inbound chunk responses for DownloadBlob
	abf    *abfState       // attenuated-filter routing state (§4.6)
	met    nodeMetrics     // resolved observability handles (all nil when disabled)
	rng    *rand.Rand
	wg     sync.WaitGroup
	stop   chan struct{}
	kick   chan struct{} // eviction happened: run a management round now
}

type pingRef struct {
	addr string
	at   time.Time
}

// dialBackoff tracks consecutive dial failures to one address.
type dialBackoff struct {
	fails int
	until time.Time
}

// link is one established neighbor connection.
type link struct {
	addr     string // remote listen address (its identity)
	c        net.Conn
	w        *bufio.Writer
	wmu      sync.Mutex
	wtimeout time.Duration
	met      *nodeMetrics // owning node's instruments (never nil; handles may be)
	born     time.Time    // registration time, for the pruning grace period

	// Liveness state, guarded by the owning Node's mu.
	missed    int  // consecutive expired ping nonces
	suspect   bool // missed >= SuspectMisses
	byManager bool // dropped by prune/sweep; readLoop must not re-account it
	dying     bool // Kill() fired: the readLoop must exit, not re-arm its deadline
}

func (l *link) send(kind byte, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.c.SetWriteDeadline(time.Now().Add(l.wtimeout))
	err := writeFrame(l.w, kind, payload)
	if err == nil {
		l.met.frameOut(len(payload))
	}
	return err
}

// newLink wraps an established connection.
func (n *Node) newLink(addr string, c net.Conn) *link {
	return &link{addr: addr, c: c, w: bufio.NewWriter(c), wtimeout: n.cfg.DialTimeout, met: &n.met}
}

// Start launches a node listening on addr (use "127.0.0.1:0" for an
// ephemeral test port).
func Start(addr string, cfg Config) (*Node, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("peer: capacity must be >= 1")
	}
	cfg = cfg.withDefaults()
	ln, err := cfg.Transport.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:     cfg,
		tr:      cfg.Transport,
		ln:      ln,
		conns:   make(map[string]*link),
		cache:   make(map[string]bool),
		views:   make(map[string][]string),
		rtt:     make(map[string]float64),
		pingT:   make(map[uint64]pingRef),
		backoff: make(map[string]*dialBackoff),
		dialing: make(map[string]bool),
		denied:  make(map[string]bool),
		store:   make(map[uint64]bool),
		blobs:   make(map[uint64][]byte),
		seen:    make(map[uint64]bool),
		hits:    make(chan Hit, 256),
		chunks:  make(chan ChunkReply, 1024),
		abf:     newABFState(),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stop:    make(chan struct{}),
		kick:    make(chan struct{}, 1),
	}
	for _, a := range cfg.DenyPeers {
		if a != "" {
			n.denied[a] = true
		}
	}
	n.met = newNodeMetrics(cfg.Metrics, cfg.Trace)
	n.wg.Add(2)
	go n.acceptLoop()
	go n.manageLoop()
	return n, nil
}

// Addr returns the node's listen address (its identity on the wire).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Hits returns the channel on which query results arrive.
func (n *Node) Hits() <-chan Hit { return n.hits }

// AddObject stores an object locally.
func (n *Node) AddObject(obj uint64) {
	n.mu.Lock()
	n.store[obj] = true
	n.mu.Unlock()
}

// Neighbors returns the current neighbor addresses, sorted.
func (n *Node) Neighbors() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.conns))
	for a := range n.conns {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Degree returns the current neighbor count.
func (n *Node) Degree() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

// Close shuts the node down, sending Bye to every neighbor. Calling
// Close after Kill reaps the connections Kill left dangling.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		dead := n.deadConns
		n.deadConns = nil
		n.mu.Unlock()
		for _, c := range dead {
			c.Close()
		}
		return
	}
	n.closed = true
	links := make([]*link, 0, len(n.conns))
	for _, l := range n.conns {
		links = append(links, l)
	}
	n.mu.Unlock()
	close(n.stop)
	for _, l := range links {
		l.send(msgBye, nil)
		l.c.Close()
	}
	n.ln.Close()
	n.wg.Wait()
}

// acceptLoop handles inbound connections.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleInbound(c)
		}()
	}
}

// handleInbound performs the accept side of the handshake, then reads
// frames until the connection dies.
func (n *Node) handleInbound(c net.Conn) {
	r := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(n.cfg.DialTimeout))
	f, err := readFrame(r)
	if err != nil || f.kind != msgHello {
		c.Close()
		return
	}
	hello, err := decodeHello(f.payload)
	if err != nil || hello.Addr == "" {
		c.Close()
		return
	}
	if n.isDenied(hello.Addr) {
		c.Close()
		return
	}
	if hello.Addr == transientAddr {
		// One-shot hit delivery: read the single hit frame, surface
		// it, and close without registering a neighbor.
		if hf, err := readFrame(r); err == nil && hf.kind == msgQueryHit {
			if h, err := decodeHit(hf.payload); err == nil {
				n.met.frameIn(len(hf.payload))
				n.met.queryHits.Inc()
				n.met.trace.Record(obs.EvQueryHit, n.Addr(), h.Holder, int64(h.QueryID))
				select {
				case n.hits <- Hit{QueryID: h.QueryID, Object: h.Object, Holder: h.Holder}:
				default:
				}
			}
		}
		c.Close()
		return
	}
	// Label the transport connection with the dialer's identity so
	// per-link fault rules (and future per-peer policies) apply.
	tagConn(c, hello.Addr)
	l := n.newLink(hello.Addr, c)
	if err := l.send(msgHelloAck, nil); err != nil {
		c.Close()
		return
	}
	if !n.register(l) {
		c.Close()
		return
	}
	n.afterConnect(l)
	n.readLoop(l, r)
}

// Connect dials a peer at addr, performs the handshake and registers
// the link. Connecting to a known neighbor or to ourselves is a no-op.
// Failures feed the re-dial backoff so the management loop retries
// with capped exponential delays instead of hammering or forgetting
// the address.
func (n *Node) Connect(addr string) error {
	if addr == n.Addr() {
		return fmt.Errorf("peer: refusing self-connection")
	}
	n.mu.Lock()
	_, known := n.conns[addr]
	denied := n.denied[addr]
	n.mu.Unlock()
	if denied {
		return fmt.Errorf("peer: %s is denied", addr)
	}
	if known {
		return nil
	}
	c, err := n.tr.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		n.noteDialFailure(addr)
		return err
	}
	tagConn(c, addr)
	l := n.newLink(addr, c)
	if err := l.send(msgHello, encodeHello(helloPayload{Addr: n.Addr()})); err != nil {
		c.Close()
		n.noteDialFailure(addr)
		return err
	}
	r := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(n.cfg.DialTimeout))
	f, err := readFrame(r)
	if err != nil || f.kind != msgHelloAck {
		c.Close()
		n.noteDialFailure(addr)
		return fmt.Errorf("peer: handshake with %s failed", addr)
	}
	if !n.register(l) {
		c.Close()
		return nil
	}
	n.noteDialSuccess(addr)
	n.afterConnect(l)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readLoop(l, r)
	}()
	return nil
}

// register adds the link to the neighbor table. It returns false when
// the node is closed or the peer is already connected (simultaneous
// dials race; the loser is dropped).
func (n *Node) register(l *link) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	if _, dup := n.conns[l.addr]; dup {
		return false
	}
	l.born = time.Now()
	n.conns[l.addr] = l
	n.addToCacheLocked(l.addr)
	n.met.joins.Inc()
	n.met.links.Add(1)
	n.met.trace.Record(obs.EvJoin, n.Addrlocked(), l.addr, 0)
	return true
}

// afterConnect pushes our neighbor list and a ping on the fresh link,
// then prunes if we are over capacity.
func (n *Node) afterConnect(l *link) {
	l.send(msgNeighbors, encodeNeighbors(neighborsPayload{Addrs: n.Neighbors()}))
	n.sendPing(l)
	n.pruneIfNeeded()
}

// readLoop dispatches inbound frames for one link until it dies. A
// link that ends without a Bye — read error, stall past IdleTimeout —
// is treated as a peer failure: the address is put on dial backoff
// and an immediate management round re-fills the neighborhood.
func (n *Node) readLoop(l *link, r *bufio.Reader) {
	clean := false
	defer func() {
		n.dropLink(l)
		n.mu.Lock()
		skip := clean || n.closed || l.byManager
		n.mu.Unlock()
		if !skip {
			n.noteDialFailure(l.addr)
			n.bumpEvictions(l.addr)
			n.kickManage()
		}
	}()
	for {
		// Arm the idle deadline under the lock: Kill sets l.dying and an
		// immediate deadline in one critical section, so we either see
		// dying here or our fresh deadline is the one Kill overwrites —
		// re-arming after Kill's poke would leave this loop reading (and
		// ponging!) forever on a link whose peer is still alive.
		n.mu.Lock()
		dying := l.dying
		if !dying {
			l.c.SetReadDeadline(time.Now().Add(n.cfg.IdleTimeout))
		}
		n.mu.Unlock()
		if dying {
			return
		}
		f, err := readFrame(r)
		if err != nil {
			return
		}
		n.met.frameIn(len(f.payload))
		switch f.kind {
		case msgNeighbors:
			if p, err := decodeNeighbors(f.payload); err == nil {
				n.mu.Lock()
				// Only account registered links: a frame processed
				// after the link was pruned must not resurrect state
				// that dropLink already cleaned (the views/rtt leak).
				if cur, ok := n.conns[l.addr]; ok && cur == l {
					n.views[l.addr] = p.Addrs
					for _, a := range p.Addrs {
						n.addToCacheLocked(a)
					}
				}
				n.mu.Unlock()
			}
		case msgQuery:
			if q, err := decodeQuery(f.payload); err == nil {
				n.handleQuery(q, l.addr)
			}
		case msgQueryHit:
			if h, err := decodeHit(f.payload); err == nil {
				n.met.queryHits.Inc()
				n.met.trace.Record(obs.EvQueryHit, n.Addr(), h.Holder, int64(h.QueryID))
				select {
				case n.hits <- Hit{QueryID: h.QueryID, Object: h.Object, Holder: h.Holder}:
				default: // originator not draining; drop
				}
			}
		case msgPing:
			if p, err := decodePing(f.payload); err == nil {
				l.send(msgPong, encodePing(p))
			}
		case msgPong:
			if p, err := decodePing(f.payload); err == nil {
				n.mu.Lock()
				if ref, ok := n.pingT[p.Nonce]; ok && ref.addr == l.addr {
					delete(n.pingT, p.Nonce)
					// Same guard as above: a pong racing the link's
					// eviction must not resurrect a stale RTT entry.
					if cur, ok := n.conns[l.addr]; ok && cur == l {
						rtt := time.Since(ref.at)
						n.rtt[l.addr] = rtt.Seconds()
						n.met.pingRTT.ObserveDuration(rtt)
						l.missed = 0
						l.suspect = false
					}
				}
				n.mu.Unlock()
			}
		case msgChunkRequest:
			if q, err := decodeChunkReq(f.payload); err == nil {
				n.handleChunkRequest(l, q)
			}
		case msgChunkResponse:
			if p, err := decodeChunkResp(f.payload); err == nil {
				select {
				case n.chunks <- ChunkReply{From: l.addr, Object: p.Object, Chunk: p.Chunk, OK: p.Status == chunkOK, Data: p.Data}:
				default: // downloader not draining; the chunk timeout recovers
				}
			}
		case msgFilterPush:
			n.handleFilterPush(l, f.payload)
		case msgDirectedQuery:
			if q, err := decodeDirectedQuery(f.payload); err == nil {
				n.handleDirectedQuery(q)
			}
		case msgBye:
			clean = true
			return
		}
	}
}

// dropLink removes a dead or pruned link and every piece of per-peer
// state tied to it: neighbor view, RTT, outstanding ping nonces and
// the received filter hierarchy. After Kill the raw connection is left
// open (crash semantics — no FIN) and reaped by Close.
func (n *Node) dropLink(l *link) {
	n.mu.Lock()
	if cur, ok := n.conns[l.addr]; ok && cur == l {
		delete(n.conns, l.addr)
		delete(n.views, l.addr)
		delete(n.rtt, l.addr)
		for nonce, ref := range n.pingT {
			if ref.addr == l.addr {
				delete(n.pingT, nonce)
			}
		}
		n.met.links.Add(-1)
	}
	killed := n.killed
	if killed {
		n.deadConns = append(n.deadConns, l.c)
	}
	n.mu.Unlock()
	n.abf.mu.Lock()
	delete(n.abf.received, l.addr)
	n.abf.mu.Unlock()
	if !killed {
		l.c.Close()
	}
}

// sendPing issues a latency/liveness probe on the link.
func (n *Node) sendPing(l *link) {
	n.mu.Lock()
	nonce := n.rng.Uint64()
	n.pingT[nonce] = pingRef{addr: l.addr, at: time.Now()}
	n.mu.Unlock()
	l.send(msgPing, encodePing(pingPayload{Nonce: nonce}))
}

// manageLoop is the periodic management round: sweep liveness, push
// neighbor lists, refresh pings, refill, prune. An eviction elsewhere
// kicks an immediate extra round so recovery does not wait a full
// interval.
func (n *Node) manageLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ManageInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		case <-n.kick:
		}
		n.manageRound()
	}
}

// manageRound runs one management round.
func (n *Node) manageRound() {
	n.sweepLiveness()
	nb := encodeNeighbors(neighborsPayload{Addrs: n.Neighbors()})
	n.mu.Lock()
	links := make([]*link, 0, len(n.conns))
	for _, l := range n.conns {
		links = append(links, l)
	}
	n.mu.Unlock()
	for _, l := range links {
		l.send(msgNeighbors, nb)
		n.sendPing(l)
	}
	n.refillFromCache()
	n.pruneIfNeeded()
	// §4.6 maintenance: refresh and push the attenuated filter
	// hierarchy after the topology settles this round.
	n.rebuildOwn()
	n.pushFilters()
}

// refillFromCache dials host-cache candidates while the node is under
// capacity — the self-healing a pruned or orphaned peer relies on.
// Dials run asynchronously (the management loop must not block on a
// partitioned address) and respect the per-address backoff.
func (n *Node) refillFromCache() {
	n.mu.Lock()
	want := n.cfg.Capacity - len(n.conns)
	var cands []string
	if want > 0 {
		now := time.Now()
		for a := range n.cache {
			if n.canDialLocked(a, now) {
				cands = append(cands, a)
			}
		}
		n.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		if len(cands) > want {
			cands = cands[:want]
		}
		for _, a := range cands {
			n.dialing[a] = true
		}
	}
	n.mu.Unlock()
	for _, a := range cands {
		addr := a
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.Connect(addr) // success/failure bookkeeping inside
			n.mu.Lock()
			delete(n.dialing, addr)
			n.mu.Unlock()
		}()
	}
}

// canDialLocked reports whether addr is a refill candidate right now:
// not us, not connected, no dial in flight, not inside its backoff
// window. Callers hold n.mu.
func (n *Node) canDialLocked(addr string, now time.Time) bool {
	if addr == n.Addrlocked() {
		return false
	}
	if _, connected := n.conns[addr]; connected {
		return false
	}
	if n.denied[addr] {
		return false
	}
	if n.dialing[addr] {
		return false
	}
	if b, ok := n.backoff[addr]; ok && now.Before(b.until) {
		return false
	}
	return true
}

// addToCacheLocked inserts a learned address into the bounded host
// cache, evicting a random non-neighbor entry when full. Callers hold
// n.mu.
func (n *Node) addToCacheLocked(addr string) {
	if addr == "" || addr == n.Addrlocked() || n.cache[addr] {
		return
	}
	if len(n.cache) >= n.cfg.HostCacheCap {
		for a := range n.cache {
			if _, connected := n.conns[a]; connected {
				continue
			}
			delete(n.cache, a)
			delete(n.backoff, a)
			break
		}
		if len(n.cache) >= n.cfg.HostCacheCap {
			return // cache full of live neighbors; skip
		}
	}
	n.cache[addr] = true
}

// pruneIfNeeded applies the Makalu rating function and disconnects
// the lowest-rated neighbors while over capacity.
func (n *Node) pruneIfNeeded() {
	for {
		victim := n.selectPruneVictim()
		if victim == nil {
			return
		}
		n.mu.Lock()
		victim.byManager = true
		n.mu.Unlock()
		n.met.prunes.Inc()
		n.met.trace.Record(obs.EvPrune, n.Addr(), victim.addr, 0)
		victim.send(msgBye, nil)
		n.dropLink(victim)
	}
}

// selectPruneVictim returns the lowest-rated link when over capacity.
// Fresh links (younger than two management intervals) are protected:
// they have not exchanged views or measured RTT yet, so their rating
// would be spuriously zero and newcomers could never join a network
// of full nodes. The grace is waived when the node is far over
// capacity (a dial storm).
func (n *Node) selectPruneVictim() *link {
	n.mu.Lock()
	defer n.mu.Unlock()
	over := len(n.conns) - n.cfg.Capacity
	if over <= 0 {
		return nil
	}
	grace := 2 * n.cfg.ManageInterval
	now := time.Now()
	scores := n.rateLocked()
	pick := func(includeYoung bool) *link {
		var worst *link
		worstScore := 0.0
		for addr, s := range scores {
			l := n.conns[addr]
			if !includeYoung && now.Sub(l.born) < grace {
				continue
			}
			if worst == nil || s < worstScore {
				worst = l
				worstScore = s
			}
		}
		return worst
	}
	if v := pick(false); v != nil {
		return v
	}
	if over > 2 {
		return pick(true) // dial storm: shed someone regardless
	}
	return nil // everyone is in grace; tolerate transient overrun
}

// rateLocked computes the rating of every neighbor from the exchanged
// views and measured RTTs — exactly the simulator's F(u,v) with
// normalized proximity. Callers hold n.mu.
func (n *Node) rateLocked() map[string]float64 {
	self := n.Addrlocked()
	// Count, over all views, how many neighbors can reach each node.
	reach := make(map[string]int)
	for _, view := range n.views {
		for _, a := range view {
			if a == self {
				continue
			}
			if _, isNeighbor := n.conns[a]; isNeighbor {
				continue
			}
			reach[a]++
		}
	}
	boundary := len(reach)
	dmin := 0.0
	for _, l := range n.conns {
		if r, ok := n.rtt[l.addr]; ok && (dmin == 0 || r < dmin) {
			dmin = r
		}
	}
	scores := make(map[string]float64, len(n.conns))
	for addr := range n.conns {
		unique := 0
		for _, a := range n.views[addr] {
			if a == self {
				continue
			}
			if _, isNeighbor := n.conns[a]; isNeighbor {
				continue
			}
			if reach[a] == 1 {
				unique++
			}
		}
		score := 0.0
		if boundary > 0 {
			score += n.cfg.Alpha * float64(unique) / float64(boundary)
		}
		if r, ok := n.rtt[addr]; ok && r > 0 && dmin > 0 {
			score += n.cfg.Beta * dmin / r
		}
		scores[addr] = score
	}
	return scores
}

// Addrlocked returns the listen address without locking (safe: the
// listener address is immutable after Start).
func (n *Node) Addrlocked() string { return n.ln.Addr().String() }

// KnownPeers returns addresses learned from neighbor views that we
// are not connected to — the host-cache candidates for Bootstrap.
func (n *Node) KnownPeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	self := n.Addrlocked()
	seen := map[string]bool{}
	var out []string
	for _, view := range n.views {
		for _, a := range view {
			if a == self || seen[a] {
				continue
			}
			if _, isNeighbor := n.conns[a]; isNeighbor {
				continue
			}
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Bootstrap joins the network through a seed peer: connect to the
// seed, wait for its neighbor push, then dial learned candidates
// until the node reaches its capacity or runs out.
func (n *Node) Bootstrap(seed string, settle time.Duration) error {
	if err := n.Connect(seed); err != nil {
		return err
	}
	deadline := time.Now().Add(settle)
	for time.Now().Before(deadline) {
		if n.Degree() >= n.cfg.Capacity {
			return nil
		}
		for _, cand := range n.KnownPeers() {
			if n.Degree() >= n.cfg.Capacity {
				break
			}
			n.Connect(cand)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}
