package peer

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// Config parameterizes a live node.
type Config struct {
	// Capacity is the maximum neighbor count; the rating function
	// prunes beyond it.
	Capacity int
	// Alpha and Beta weight connectivity and proximity, as in the
	// simulator. Defaults 1 and 1.
	Alpha, Beta float64
	// ManageInterval is the period of the management loop (neighbor
	// pushes, pings, pruning). Default 200ms — fast, suited to tests;
	// a deployment would use tens of seconds.
	ManageInterval time.Duration
	// Seed drives the node's local randomness.
	Seed int64
}

// DefaultNodeConfig returns a small-capacity test-friendly config.
func DefaultNodeConfig(capacity int, seed int64) Config {
	return Config{Capacity: capacity, Alpha: 1, Beta: 1, ManageInterval: 200 * time.Millisecond, Seed: seed}
}

// Hit is one query result delivered to the originator.
type Hit struct {
	QueryID uint64
	Object  uint64
	Holder  string // listen address of the node hosting the object
}

// Node is a live Makalu peer speaking the wire protocol over TCP.
type Node struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	conns   map[string]*link    // by remote listen address
	cache   map[string]bool     // host cache: every peer address ever learned
	views   map[string][]string // last neighbor list pushed by each peer
	rtt     map[string]float64  // measured RTT seconds
	pingT   map[uint64]pingRef  // outstanding ping nonces
	store   map[uint64]bool     // hosted objects
	seen    map[uint64]bool     // query-id duplicate suppression
	seenQ   []uint64            // FIFO for seen eviction
	queries uint64              // queries forwarded (stats)
	closed  bool

	hits chan Hit
	abf  *abfState // attenuated-filter routing state (§4.6)
	rng  *rand.Rand
	wg   sync.WaitGroup
	stop chan struct{}
}

type pingRef struct {
	addr string
	at   time.Time
}

// link is one established neighbor connection.
type link struct {
	addr string // remote listen address (its identity)
	c    net.Conn
	w    *bufio.Writer
	wmu  sync.Mutex
	born time.Time // registration time, for the pruning grace period
}

func (l *link) send(kind byte, payload []byte) error {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	l.c.SetWriteDeadline(time.Now().Add(5 * time.Second))
	return writeFrame(l.w, kind, payload)
}

// Start launches a node listening on addr (use "127.0.0.1:0" for an
// ephemeral test port).
func Start(addr string, cfg Config) (*Node, error) {
	if cfg.Capacity < 1 {
		return nil, fmt.Errorf("peer: capacity must be >= 1")
	}
	if cfg.Alpha == 0 && cfg.Beta == 0 {
		cfg.Alpha, cfg.Beta = 1, 1
	}
	if cfg.ManageInterval <= 0 {
		cfg.ManageInterval = 200 * time.Millisecond
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:   cfg,
		ln:    ln,
		conns: make(map[string]*link),
		cache: make(map[string]bool),
		views: make(map[string][]string),
		rtt:   make(map[string]float64),
		pingT: make(map[uint64]pingRef),
		store: make(map[uint64]bool),
		seen:  make(map[uint64]bool),
		hits:  make(chan Hit, 256),
		abf:   newABFState(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		stop:  make(chan struct{}),
	}
	n.wg.Add(2)
	go n.acceptLoop()
	go n.manageLoop()
	return n, nil
}

// Addr returns the node's listen address (its identity on the wire).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Hits returns the channel on which query results arrive.
func (n *Node) Hits() <-chan Hit { return n.hits }

// AddObject stores an object locally.
func (n *Node) AddObject(obj uint64) {
	n.mu.Lock()
	n.store[obj] = true
	n.mu.Unlock()
}

// Neighbors returns the current neighbor addresses, sorted.
func (n *Node) Neighbors() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.conns))
	for a := range n.conns {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Degree returns the current neighbor count.
func (n *Node) Degree() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

// Close shuts the node down, sending Bye to every neighbor.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	links := make([]*link, 0, len(n.conns))
	for _, l := range n.conns {
		links = append(links, l)
	}
	n.mu.Unlock()
	close(n.stop)
	for _, l := range links {
		l.send(msgBye, nil)
		l.c.Close()
	}
	n.ln.Close()
	n.wg.Wait()
}

// acceptLoop handles inbound connections.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleInbound(c)
		}()
	}
}

// handleInbound performs the accept side of the handshake, then reads
// frames until the connection dies.
func (n *Node) handleInbound(c net.Conn) {
	r := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := readFrame(r)
	if err != nil || f.kind != msgHello {
		c.Close()
		return
	}
	hello, err := decodeHello(f.payload)
	if err != nil || hello.Addr == "" {
		c.Close()
		return
	}
	if hello.Addr == transientAddr {
		// One-shot hit delivery: read the single hit frame, surface
		// it, and close without registering a neighbor.
		if hf, err := readFrame(r); err == nil && hf.kind == msgQueryHit {
			if h, err := decodeHit(hf.payload); err == nil {
				select {
				case n.hits <- Hit{QueryID: h.QueryID, Object: h.Object, Holder: h.Holder}:
				default:
				}
			}
		}
		c.Close()
		return
	}
	l := &link{addr: hello.Addr, c: c, w: bufio.NewWriter(c)}
	if err := l.send(msgHelloAck, nil); err != nil {
		c.Close()
		return
	}
	if !n.register(l) {
		c.Close()
		return
	}
	n.afterConnect(l)
	n.readLoop(l, r)
}

// Connect dials a peer at addr, performs the handshake and registers
// the link. Connecting to a known neighbor or to ourselves is a no-op.
func (n *Node) Connect(addr string) error {
	if addr == n.Addr() {
		return fmt.Errorf("peer: refusing self-connection")
	}
	n.mu.Lock()
	_, known := n.conns[addr]
	n.mu.Unlock()
	if known {
		return nil
	}
	c, err := net.DialTimeout("tcp", addr, 3*time.Second)
	if err != nil {
		return err
	}
	l := &link{addr: addr, c: c, w: bufio.NewWriter(c)}
	if err := l.send(msgHello, encodeHello(helloPayload{Addr: n.Addr()})); err != nil {
		c.Close()
		return err
	}
	r := bufio.NewReader(c)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := readFrame(r)
	if err != nil || f.kind != msgHelloAck {
		c.Close()
		return fmt.Errorf("peer: handshake with %s failed", addr)
	}
	if !n.register(l) {
		c.Close()
		return nil
	}
	n.afterConnect(l)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readLoop(l, r)
	}()
	return nil
}

// register adds the link to the neighbor table. It returns false when
// the node is closed or the peer is already connected (simultaneous
// dials race; the loser is dropped).
func (n *Node) register(l *link) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	if _, dup := n.conns[l.addr]; dup {
		return false
	}
	l.born = time.Now()
	n.conns[l.addr] = l
	n.cache[l.addr] = true
	return true
}

// afterConnect pushes our neighbor list and a ping on the fresh link,
// then prunes if we are over capacity.
func (n *Node) afterConnect(l *link) {
	l.send(msgNeighbors, encodeNeighbors(neighborsPayload{Addrs: n.Neighbors()}))
	n.sendPing(l)
	n.pruneIfNeeded()
}

// readLoop dispatches inbound frames for one link until it dies.
func (n *Node) readLoop(l *link, r *bufio.Reader) {
	defer n.dropLink(l)
	for {
		l.c.SetReadDeadline(time.Now().Add(30 * time.Second))
		f, err := readFrame(r)
		if err != nil {
			return
		}
		switch f.kind {
		case msgNeighbors:
			if p, err := decodeNeighbors(f.payload); err == nil {
				n.mu.Lock()
				n.views[l.addr] = p.Addrs
				for _, a := range p.Addrs {
					if a != n.Addrlocked() {
						n.cache[a] = true
					}
				}
				n.mu.Unlock()
			}
		case msgQuery:
			if q, err := decodeQuery(f.payload); err == nil {
				n.handleQuery(q, l.addr)
			}
		case msgQueryHit:
			if h, err := decodeHit(f.payload); err == nil {
				select {
				case n.hits <- Hit{QueryID: h.QueryID, Object: h.Object, Holder: h.Holder}:
				default: // originator not draining; drop
				}
			}
		case msgPing:
			if p, err := decodePing(f.payload); err == nil {
				l.send(msgPong, encodePing(p))
			}
		case msgPong:
			if p, err := decodePing(f.payload); err == nil {
				n.mu.Lock()
				if ref, ok := n.pingT[p.Nonce]; ok && ref.addr == l.addr {
					n.rtt[l.addr] = time.Since(ref.at).Seconds()
					delete(n.pingT, p.Nonce)
				}
				n.mu.Unlock()
			}
		case msgFilterPush:
			n.handleFilterPush(l.addr, f.payload)
		case msgDirectedQuery:
			if q, err := decodeDirectedQuery(f.payload); err == nil {
				n.handleDirectedQuery(q)
			}
		case msgBye:
			return
		}
	}
}

// dropLink removes a dead or pruned link from the tables.
func (n *Node) dropLink(l *link) {
	l.c.Close()
	n.mu.Lock()
	if cur, ok := n.conns[l.addr]; ok && cur == l {
		delete(n.conns, l.addr)
		delete(n.views, l.addr)
		delete(n.rtt, l.addr)
	}
	n.mu.Unlock()
}

// sendPing issues a latency probe on the link.
func (n *Node) sendPing(l *link) {
	n.mu.Lock()
	nonce := n.rng.Uint64()
	n.pingT[nonce] = pingRef{addr: l.addr, at: time.Now()}
	n.mu.Unlock()
	l.send(msgPing, encodePing(pingPayload{Nonce: nonce}))
}

// manageLoop is the periodic management round: push neighbor lists,
// refresh pings, prune over capacity.
func (n *Node) manageLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.ManageInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			nb := encodeNeighbors(neighborsPayload{Addrs: n.Neighbors()})
			n.mu.Lock()
			links := make([]*link, 0, len(n.conns))
			for _, l := range n.conns {
				links = append(links, l)
			}
			n.mu.Unlock()
			for _, l := range links {
				l.send(msgNeighbors, nb)
				n.sendPing(l)
			}
			n.refillFromCache()
			n.pruneIfNeeded()
			// §4.6 maintenance: refresh and push the attenuated
			// filter hierarchy after the topology settles this round.
			n.rebuildOwn()
			n.pushFilters()
		}
	}
}

// refillFromCache dials host-cache candidates while the node is under
// capacity — the self-healing a pruned or orphaned peer relies on.
func (n *Node) refillFromCache() {
	n.mu.Lock()
	want := n.cfg.Capacity - len(n.conns)
	var cands []string
	if want > 0 {
		for a := range n.cache {
			if _, connected := n.conns[a]; !connected && a != n.Addrlocked() {
				cands = append(cands, a)
			}
		}
		n.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}
	n.mu.Unlock()
	for _, a := range cands {
		if want <= 0 {
			return
		}
		if err := n.Connect(a); err == nil {
			want--
		} else {
			// Unreachable: forget it so the cache stays live.
			n.mu.Lock()
			delete(n.cache, a)
			n.mu.Unlock()
		}
	}
}

// pruneIfNeeded applies the Makalu rating function and disconnects
// the lowest-rated neighbors while over capacity.
func (n *Node) pruneIfNeeded() {
	for {
		victim := n.selectPruneVictim()
		if victim == nil {
			return
		}
		victim.send(msgBye, nil)
		n.dropLink(victim)
	}
}

// selectPruneVictim returns the lowest-rated link when over capacity.
// Fresh links (younger than two management intervals) are protected:
// they have not exchanged views or measured RTT yet, so their rating
// would be spuriously zero and newcomers could never join a network
// of full nodes. The grace is waived when the node is far over
// capacity (a dial storm).
func (n *Node) selectPruneVictim() *link {
	n.mu.Lock()
	defer n.mu.Unlock()
	over := len(n.conns) - n.cfg.Capacity
	if over <= 0 {
		return nil
	}
	grace := 2 * n.cfg.ManageInterval
	now := time.Now()
	scores := n.rateLocked()
	pick := func(includeYoung bool) *link {
		var worst *link
		worstScore := 0.0
		for addr, s := range scores {
			l := n.conns[addr]
			if !includeYoung && now.Sub(l.born) < grace {
				continue
			}
			if worst == nil || s < worstScore {
				worst = l
				worstScore = s
			}
		}
		return worst
	}
	if v := pick(false); v != nil {
		return v
	}
	if over > 2 {
		return pick(true) // dial storm: shed someone regardless
	}
	return nil // everyone is in grace; tolerate transient overrun
}

// rateLocked computes the rating of every neighbor from the exchanged
// views and measured RTTs — exactly the simulator's F(u,v) with
// normalized proximity. Callers hold n.mu.
func (n *Node) rateLocked() map[string]float64 {
	self := n.Addrlocked()
	// Count, over all views, how many neighbors can reach each node.
	reach := make(map[string]int)
	for _, view := range n.views {
		for _, a := range view {
			if a == self {
				continue
			}
			if _, isNeighbor := n.conns[a]; isNeighbor {
				continue
			}
			reach[a]++
		}
	}
	boundary := len(reach)
	dmin := 0.0
	for _, l := range n.conns {
		if r, ok := n.rtt[l.addr]; ok && (dmin == 0 || r < dmin) {
			dmin = r
		}
	}
	scores := make(map[string]float64, len(n.conns))
	for addr := range n.conns {
		unique := 0
		for _, a := range n.views[addr] {
			if a == self {
				continue
			}
			if _, isNeighbor := n.conns[a]; isNeighbor {
				continue
			}
			if reach[a] == 1 {
				unique++
			}
		}
		score := 0.0
		if boundary > 0 {
			score += n.cfg.Alpha * float64(unique) / float64(boundary)
		}
		if r, ok := n.rtt[addr]; ok && r > 0 && dmin > 0 {
			score += n.cfg.Beta * dmin / r
		}
		scores[addr] = score
	}
	return scores
}

// Addrlocked returns the listen address without locking (safe: the
// listener address is immutable after Start).
func (n *Node) Addrlocked() string { return n.ln.Addr().String() }

// KnownPeers returns addresses learned from neighbor views that we
// are not connected to — the host-cache candidates for Bootstrap.
func (n *Node) KnownPeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	self := n.Addrlocked()
	seen := map[string]bool{}
	var out []string
	for _, view := range n.views {
		for _, a := range view {
			if a == self || seen[a] {
				continue
			}
			if _, isNeighbor := n.conns[a]; isNeighbor {
				continue
			}
			seen[a] = true
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Bootstrap joins the network through a seed peer: connect to the
// seed, wait for its neighbor push, then dial learned candidates
// until the node reaches its capacity or runs out.
func (n *Node) Bootstrap(seed string, settle time.Duration) error {
	if err := n.Connect(seed); err != nil {
		return err
	}
	deadline := time.Now().Add(settle)
	for time.Now().Before(deadline) {
		if n.Degree() >= n.cfg.Capacity {
			return nil
		}
		for _, cand := range n.KnownPeers() {
			if n.Degree() >= n.cfg.Capacity {
				break
			}
			n.Connect(cand)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}
