package peer

import "sort"

// This file implements runtime peer deny lists. A denied address is
// never dialed (Connect, refill) and its inbound handshakes are
// dropped right after the Hello reveals the dialer's listen address.
// The multi-process testnet harness uses symmetric deny lists to
// partition a live network without firewall rules: both sides of the
// cut stop dialing each other and refuse each other's dials, and
// existing links are severed without a Bye — to the remote peer the
// cut is indistinguishable from a network failure, so its liveness
// machinery (backoff, refill) runs exactly as it would for a real
// partition.

// isDenied reports whether addr is on the deny list.
func (n *Node) isDenied(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.denied[addr]
}

// Denied returns the current deny list, sorted.
func (n *Node) Denied() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.denied))
	for a := range n.denied {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// SetDenied replaces the deny list. Links to newly denied peers are
// cut immediately — without a Bye, so the remote side sees a network
// failure, not a clean departure. Clearing an address from the list
// does not redial it; the management loop's refill will rediscover it
// through neighbor views (its backoff state, if any, still applies).
func (n *Node) SetDenied(addrs []string) {
	next := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if a != "" {
			next[a] = true
		}
	}
	n.mu.Lock()
	n.denied = next
	var victims []*link
	for addr, l := range n.conns {
		if next[addr] && !l.byManager {
			l.byManager = true
			victims = append(victims, l)
		}
	}
	n.mu.Unlock()
	for _, l := range victims {
		n.dropLink(l)
	}
	if len(victims) > 0 {
		n.kickManage()
	}
}
