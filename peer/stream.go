package peer

import (
	"encoding/binary"
	"fmt"
	"time"

	"makalu/internal/content"
)

// Chunk transfer message kinds: the streaming workload's frame pair on
// the existing wire protocol.
const (
	msgChunkRequest  = byte(11) // fetch one chunk of a hosted blob
	msgChunkResponse = byte(12) // the chunk payload, or a miss notice
)

// maxChunkData caps the payload a single chunk response may carry,
// comfortably under the frame cap so the 17-byte response header
// always fits.
const maxChunkData = 256 << 10

// Chunk response status codes.
const (
	chunkOK      = byte(0)
	chunkMissing = byte(1) // blob absent or range out of bounds
)

// chunkReqPayload asks for Length bytes at Offset of Object's blob —
// the requester computes the range from its manifest, so the server
// needs no chunk-geometry knowledge, just the raw blob.
type chunkReqPayload struct {
	Object uint64
	Chunk  uint32
	Offset uint64
	Length uint32
}

func encodeChunkReq(q chunkReqPayload) []byte {
	out := make([]byte, 24)
	binary.LittleEndian.PutUint64(out, q.Object)
	binary.LittleEndian.PutUint32(out[8:], q.Chunk)
	binary.LittleEndian.PutUint64(out[12:], q.Offset)
	binary.LittleEndian.PutUint32(out[20:], q.Length)
	return out
}

func decodeChunkReq(b []byte) (chunkReqPayload, error) {
	if len(b) != 24 {
		return chunkReqPayload{}, fmt.Errorf("peer: bad chunk request payload")
	}
	return chunkReqPayload{
		Object: binary.LittleEndian.Uint64(b),
		Chunk:  binary.LittleEndian.Uint32(b[8:]),
		Offset: binary.LittleEndian.Uint64(b[12:]),
		Length: binary.LittleEndian.Uint32(b[20:]),
	}, nil
}

// chunkRespPayload returns the requested bytes (Status chunkOK) or a
// miss notice (chunkMissing, empty Data).
type chunkRespPayload struct {
	Object uint64
	Chunk  uint32
	Status byte
	Data   []byte
}

func encodeChunkResp(p chunkRespPayload) []byte {
	out := make([]byte, 13, 13+len(p.Data))
	binary.LittleEndian.PutUint64(out, p.Object)
	binary.LittleEndian.PutUint32(out[8:], p.Chunk)
	out[12] = p.Status
	return append(out, p.Data...)
}

func decodeChunkResp(b []byte) (chunkRespPayload, error) {
	if len(b) < 13 {
		return chunkRespPayload{}, fmt.Errorf("peer: short chunk response payload")
	}
	if len(b)-13 > maxChunkData {
		return chunkRespPayload{}, fmt.Errorf("peer: oversized chunk response (%d bytes)", len(b)-13)
	}
	p := chunkRespPayload{
		Object: binary.LittleEndian.Uint64(b),
		Chunk:  binary.LittleEndian.Uint32(b[8:]),
		Status: b[12],
	}
	if len(b) > 13 {
		p.Data = append([]byte(nil), b[13:]...)
	}
	return p, nil
}

// ChunkReply is one chunk response surfaced to a downloader.
type ChunkReply struct {
	From   string // sender's listen address
	Object uint64
	Chunk  uint32
	OK     bool
	Data   []byte
}

// AddBlob hosts a blob for chunk serving and announces the object in
// the node's store (so floods and identifier routing find it, exactly
// like AddObject).
func (n *Node) AddBlob(obj uint64, data []byte) {
	n.mu.Lock()
	n.blobs[obj] = data
	n.store[obj] = true
	n.mu.Unlock()
}

// handleChunkRequest answers one chunk fetch from the hosted blob.
func (n *Node) handleChunkRequest(l *link, q chunkReqPayload) {
	n.mu.Lock()
	blob, ok := n.blobs[q.Object]
	n.mu.Unlock()
	resp := chunkRespPayload{Object: q.Object, Chunk: q.Chunk, Status: chunkMissing}
	if ok && q.Length > 0 && q.Length <= maxChunkData {
		end := q.Offset + uint64(q.Length)
		if end <= uint64(len(blob)) && q.Offset <= end {
			resp.Status = chunkOK
			resp.Data = blob[q.Offset:end]
		}
	}
	l.send(msgChunkResponse, encodeChunkResp(resp))
}

// sendChunkRequest issues a chunk fetch to the neighbor at addr,
// dialing it first if no link exists.
func (n *Node) sendChunkRequest(addr string, q chunkReqPayload) error {
	n.mu.Lock()
	l := n.conns[addr]
	n.mu.Unlock()
	if l == nil {
		if err := n.Connect(addr); err != nil {
			return err
		}
		n.mu.Lock()
		l = n.conns[addr]
		n.mu.Unlock()
		if l == nil {
			return fmt.Errorf("peer: no link to %s", addr)
		}
	}
	return l.send(msgChunkRequest, encodeChunkReq(q))
}

// DownloadConfig parameterizes DownloadBlob.
type DownloadConfig struct {
	// ChunkTimeout is the per-chunk deadline; a source that misses it
	// is dropped and its in-flight chunks are re-requested elsewhere.
	// Default 2s.
	ChunkTimeout time.Duration
	// Window caps concurrently outstanding chunk requests (spread
	// round-robin over the sources). Default 4.
	Window int
	// MaxAttempts bounds request attempts per chunk before the
	// download fails. Default 3 × len(sources), at least 6.
	MaxAttempts int
	// OnChunk, when non-nil, runs synchronously after each verified
	// chunk with its index and serving address — tests use it to kill
	// a replica at a precise point mid-transfer.
	OnChunk func(chunk int, from string)
}

func (cfg DownloadConfig) withDefaults(sources int) DownloadConfig {
	if cfg.ChunkTimeout <= 0 {
		cfg.ChunkTimeout = 2 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3 * sources
		if cfg.MaxAttempts < 6 {
			cfg.MaxAttempts = 6
		}
	}
	return cfg
}

// DownloadStats reports how a download went.
type DownloadStats struct {
	Bytes          int64
	Elapsed        time.Duration
	TTFB           time.Duration // -1 when no chunk ever arrived
	ReRequests     int           // chunks re-requested after a source was dropped
	SourcesDropped int
}

// inflightReq tracks one outstanding chunk request.
type inflightReq struct {
	src      string
	deadline time.Time
}

// DownloadBlob fetches the object described by man from the given
// replica addresses, pulling chunks round-robin with a bounded window,
// verifying each against the manifest, dropping sources that miss
// their per-chunk deadline and re-requesting their chunks from the
// survivors. It returns the assembled, fully verified payload.
//
// Chunk data is content-verified, so a late reply from a dropped
// source still counts. One DownloadBlob runs per node at a time: the
// node's chunk-reply stream is a single channel.
func (n *Node) DownloadBlob(man content.Manifest, sources []string, cfg DownloadConfig) ([]byte, DownloadStats, error) {
	start := time.Now()
	stats := DownloadStats{TTFB: -1}
	if man.Size <= 0 || man.NumChunks() == 0 {
		return nil, stats, fmt.Errorf("peer: empty manifest")
	}
	if len(sources) == 0 {
		return nil, stats, fmt.Errorf("peer: no sources")
	}
	cfg = cfg.withDefaults(len(sources))

	// Drop leftovers from a previous download; hash verification makes
	// stale replies harmless, this just keeps the buffer free.
	for {
		select {
		case <-n.chunks:
			continue
		default:
		}
		break
	}

	nc := man.NumChunks()
	out := make([]byte, man.Size)
	done := make([]bool, nc)
	attempts := make([]int, nc)
	pending := make([]int, nc)
	for i := range pending {
		pending[i] = i
	}
	remaining := nc
	inflight := make(map[int]inflightReq)
	live := append([]string(nil), sources...)
	next := 0 // round-robin cursor over live

	dropSource := func(addr string) {
		found := false
		for i, a := range live {
			if a == addr {
				live = append(live[:i], live[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			return
		}
		stats.SourcesDropped++
		if next >= len(live) {
			next = 0
		}
		for c, req := range inflight {
			if req.src == addr {
				delete(inflight, c)
				pending = append(pending, c)
				stats.ReRequests++
			}
		}
	}

	timer := time.NewTimer(cfg.ChunkTimeout)
	defer timer.Stop()

	for remaining > 0 {
		// Fill the window.
		for len(inflight) < cfg.Window && len(pending) > 0 {
			if len(live) == 0 {
				return nil, stats, fmt.Errorf("peer: all %d sources dropped with %d chunks missing", len(sources), remaining)
			}
			c := pending[0]
			pending = pending[1:]
			if done[c] {
				continue
			}
			attempts[c]++
			if attempts[c] > cfg.MaxAttempts {
				return nil, stats, fmt.Errorf("peer: chunk %d failed after %d attempts", c, cfg.MaxAttempts)
			}
			src := live[next%len(live)]
			next++
			err := n.sendChunkRequest(src, chunkReqPayload{
				Object: man.Object,
				Chunk:  uint32(c),
				Offset: uint64(man.ChunkOffset(c)),
				Length: uint32(man.ChunkLen(c)),
			})
			if err != nil {
				pending = append(pending, c)
				attempts[c]-- // a failed send is not a lost request
				dropSource(src)
				continue
			}
			inflight[c] = inflightReq{src: src, deadline: time.Now().Add(cfg.ChunkTimeout)}
		}
		if len(inflight) == 0 {
			if len(live) == 0 || len(pending) == 0 {
				return nil, stats, fmt.Errorf("peer: download stalled with %d chunks missing", remaining)
			}
			continue
		}

		// Wait for the next reply or the earliest deadline.
		earliest := time.Time{}
		for _, req := range inflight {
			if earliest.IsZero() || req.deadline.Before(earliest) {
				earliest = req.deadline
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(time.Until(earliest))

		select {
		case rep := <-n.chunks:
			c := int(rep.Chunk)
			if rep.Object != man.Object || c < 0 || c >= nc || done[c] {
				continue
			}
			if !rep.OK || !man.VerifyChunk(c, rep.Data) {
				// The source answered but cannot (or corruptly) serve:
				// re-request elsewhere.
				if req, ok := inflight[c]; ok && req.src == rep.From {
					delete(inflight, c)
					pending = append(pending, c)
					stats.ReRequests++
					dropSource(rep.From)
				}
				continue
			}
			copy(out[man.ChunkOffset(c):], rep.Data)
			done[c] = true
			delete(inflight, c)
			remaining--
			stats.Bytes += int64(len(rep.Data))
			if stats.TTFB < 0 {
				stats.TTFB = time.Since(start)
			}
			if cfg.OnChunk != nil {
				cfg.OnChunk(c, rep.From)
			}
		case <-timer.C:
			now := time.Now()
			for _, req := range inflight {
				if !req.deadline.After(now) {
					dropSource(req.src)
				}
			}
		case <-n.stop:
			return nil, stats, fmt.Errorf("peer: node closed mid-download")
		}
	}
	stats.Elapsed = time.Since(start)
	return out, stats, nil
}
