package peer

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file is the live-network twin of internal/sim's churn harness:
// a Cluster of in-process nodes over real (or fault-injected) sockets,
// with the same health metrics the simulator snapshots — live count,
// connected components, giant-component fraction, mean degree and
// flood search success — so live-churn experiments emit a timeline
// directly comparable to the simulated one.

// ClusterSnapshot is one sample of live-overlay health. Fields mirror
// internal/sim.Snapshot; SearchSuccess is -1 when probing is off.
type ClusterSnapshot struct {
	Time          float64 // seconds since cluster start
	Live          int
	Components    int
	GiantFraction float64
	MeanDegree    float64
	SearchSuccess float64
}

// Cluster is a set of live in-process nodes plus bookkeeping for
// fault-injection experiments.
type Cluster struct {
	start time.Time

	mu      sync.Mutex
	nodes   []*Node
	down    map[int]bool   // killed or closed
	holders map[uint64]int // object -> hosting node index
}

// StartCluster launches n live nodes. transport(i) supplies each
// node's Transport (nil means plain TCP — pass a faultnet Endpoint to
// inject faults); cfg seeds are varied per node. Every node past the
// first connects to two earlier nodes; the management loop's refill
// then grows the overlay to capacity, so the caller should wait for
// convergence via Snapshot.
func StartCluster(n int, cfg Config, transport func(i int) Transport) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("peer: cluster needs at least 2 nodes")
	}
	c := &Cluster{
		start:   time.Now(),
		down:    make(map[int]bool),
		holders: make(map[uint64]int),
	}
	rng := rand.New(rand.NewSource(cfg.Seed*7919 + 1))
	for i := 0; i < n; i++ {
		nodeCfg := cfg
		nodeCfg.Seed = cfg.Seed + int64(i)*1000003
		if transport != nil {
			nodeCfg.Transport = transport(i)
		}
		nd, err := Start("127.0.0.1:0", nodeCfg)
		if err != nil {
			c.CloseAll()
			return nil, err
		}
		c.nodes = append(c.nodes, nd)
		if i > 0 {
			nd.Connect(c.nodes[rng.Intn(i)].Addr())
			if i > 1 {
				nd.Connect(c.nodes[rng.Intn(i)].Addr())
			}
		}
	}
	return c, nil
}

// Len returns the cluster size (including dead nodes).
func (c *Cluster) Len() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Kill hard-crashes node i: no Bye, no FIN — survivors must detect
// the death through their liveness machinery.
func (c *Cluster) Kill(i int) {
	c.mu.Lock()
	c.down[i] = true
	c.mu.Unlock()
	c.nodes[i].Kill()
}

// Shutdown closes node i gracefully (Bye to every neighbor).
func (c *Cluster) Shutdown(i int) {
	c.mu.Lock()
	c.down[i] = true
	c.mu.Unlock()
	c.nodes[i].Close()
}

// CloseAll tears the whole cluster down.
func (c *Cluster) CloseAll() {
	for i, nd := range c.nodes {
		c.mu.Lock()
		c.down[i] = true
		c.mu.Unlock()
		nd.Close() // after Kill this reaps dangling sockets
	}
}

// Alive reports whether node i has not been killed or shut down.
func (c *Cluster) Alive(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.down[i]
}

// AliveIndices returns the indices of nodes still running.
func (c *Cluster) AliveIndices() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i := range c.nodes {
		if !c.down[i] {
			out = append(out, i)
		}
	}
	return out
}

// PlaceObjects gives every node one distinct object (base+i) so flood
// probes have known targets.
func (c *Cluster) PlaceObjects(base uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, nd := range c.nodes {
		obj := base + uint64(i)
		nd.AddObject(obj)
		c.holders[obj] = i
	}
}

// Snapshot samples the live overlay's health. Probing is off:
// SearchSuccess is the simulator's -1 sentinel.
func (c *Cluster) Snapshot() ClusterSnapshot {
	alive := c.AliveIndices()
	snap := ClusterSnapshot{
		Time:          time.Since(c.start).Seconds(),
		Live:          len(alive),
		SearchSuccess: -1,
	}
	if len(alive) == 0 {
		return snap
	}
	addrIdx := make(map[string]int, len(alive))
	for _, i := range alive {
		addrIdx[c.nodes[i].Addr()] = i
	}
	// Union-find over live-live edges from the current neighbor sets.
	parent := make(map[int]int, len(alive))
	for _, i := range alive {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	degSum := 0
	for _, i := range alive {
		nbs := c.nodes[i].Neighbors()
		degSum += len(nbs)
		for _, a := range nbs {
			if j, ok := addrIdx[a]; ok {
				parent[find(i)] = find(j)
			}
		}
	}
	sizes := make(map[int]int)
	giant := 0
	for _, i := range alive {
		r := find(i)
		sizes[r]++
		if sizes[r] > giant {
			giant = sizes[r]
		}
	}
	snap.Components = len(sizes)
	snap.GiantFraction = float64(giant) / float64(len(alive))
	snap.MeanDegree = float64(degSum) / float64(len(alive))
	return snap
}

// ProbeQueries floods `probes` queries from random live sources for
// random objects hosted on live nodes, and returns the success rate.
// Each probe waits up to timeout for a hit with the matching query id.
func (c *Cluster) ProbeQueries(probes, ttl int, timeout time.Duration, rng *rand.Rand) float64 {
	alive := c.AliveIndices()
	if len(alive) == 0 || probes <= 0 {
		return 0
	}
	c.mu.Lock()
	var liveObjs []uint64
	for obj, holder := range c.holders {
		if !c.down[holder] {
			liveObjs = append(liveObjs, obj)
		}
	}
	c.mu.Unlock()
	if len(liveObjs) == 0 {
		return 0
	}
	// Deterministic object order for the seeded rng (map iteration is
	// randomized).
	sortUint64s(liveObjs)
	found := 0
	for q := 0; q < probes; q++ {
		src := c.nodes[alive[rng.Intn(len(alive))]]
		obj := liveObjs[rng.Intn(len(liveObjs))]
		if c.probeOne(src, obj, ttl, timeout) {
			found++
		}
	}
	return float64(found) / float64(probes)
}

// probeOne issues one flood query and waits for its hit.
func (c *Cluster) probeOne(src *Node, obj uint64, ttl int, timeout time.Duration) bool {
	// Drain stale hits from earlier probes.
	for {
		select {
		case <-src.Hits():
			continue
		default:
		}
		break
	}
	id := src.Query(obj, ttl)
	deadline := time.After(timeout)
	for {
		select {
		case h := <-src.Hits():
			if h.QueryID == id && h.Object == obj {
				return true
			}
		case <-deadline:
			return false
		}
	}
}

// CleanOf reports whether every live node's neighbor set is free of
// the given addresses — i.e. the dead peers have been evicted
// everywhere.
func (c *Cluster) CleanOf(addrs []string) bool {
	bad := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		bad[a] = true
	}
	for _, i := range c.AliveIndices() {
		for _, nb := range c.nodes[i].Neighbors() {
			if bad[nb] {
				return false
			}
		}
	}
	return true
}

// LiveLinks enumerates the distinct live-live links as index pairs.
func (c *Cluster) LiveLinks() [][2]int {
	alive := c.AliveIndices()
	addrIdx := make(map[string]int, len(alive))
	for _, i := range alive {
		addrIdx[c.nodes[i].Addr()] = i
	}
	seen := make(map[[2]int]bool)
	var out [][2]int
	for _, i := range alive {
		for _, a := range c.nodes[i].Neighbors() {
			j, ok := addrIdx[a]
			if !ok {
				continue
			}
			k := [2]int{i, j}
			if j < i {
				k = [2]int{j, i}
			}
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	return out
}

func sortUint64s(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
