package peer

import (
	"net"
	"time"
)

// Transport abstracts the network a Node runs over. The default is
// plain TCP; tests inject peer/faultnet to simulate partitions,
// latency, frame loss and silent node death without touching the
// protocol code.
type Transport interface {
	// Listen opens the node's accept socket.
	Listen(network, address string) (net.Listener, error)
	// DialTimeout opens an outbound connection, failing after timeout.
	DialTimeout(network, address string, timeout time.Duration) (net.Conn, error)
}

// tcpTransport is the production transport: the plain net package.
type tcpTransport struct{}

func (tcpTransport) Listen(network, address string) (net.Listener, error) {
	return net.Listen(network, address)
}

func (tcpTransport) DialTimeout(network, address string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout(network, address, timeout)
}

// peerTagger is implemented by transport connections that want to know
// which peer identity (listen address) a connection belongs to. The
// node labels inbound connections as soon as the Hello reveals the
// dialer's listen address; outbound connections are labeled by the
// transport itself at dial time. faultnet uses the label to apply
// per-link fault rules symmetrically.
type peerTagger interface {
	SetPeer(addr string)
}

// tagConn labels c with the remote peer's listen address when the
// transport supports it.
func tagConn(c net.Conn, addr string) {
	if t, ok := c.(peerTagger); ok {
		t.SetPeer(addr)
	}
}
