package peer

import (
	"bufio"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakePeer is a raw-wire test double: it completes the handshake with
// a node under test and then misbehaves on command (stays silent,
// stalls mid-frame, floods neighbor lists) without running any of the
// real node machinery.
type fakePeer struct {
	t    *testing.T
	ln   net.Listener // its claimed listen address (identity)
	c    net.Conn
	r    *bufio.Reader
	wmu  sync.Mutex // the test and the pong loop share the writer
	w    *bufio.Writer
	pong atomic.Bool // answer pings
	done chan struct{}
}

// dialFakePeer handshakes with nd and starts a background reader that
// discards frames (ponging only if pong is set).
func dialFakePeer(t *testing.T, nd *Node, pong bool) *fakePeer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("tcp", nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fp := &fakePeer{t: t, ln: ln, c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c), done: make(chan struct{})}
	fp.pong.Store(pong)
	t.Cleanup(fp.close)
	if err := writeFrame(fp.w, msgHello, encodeHello(helloPayload{Addr: fp.addr()})); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	f, err := readFrame(fp.r)
	if err != nil || f.kind != msgHelloAck {
		t.Fatalf("handshake: kind=%v err=%v", f.kind, err)
	}
	c.SetReadDeadline(time.Time{})
	go fp.readAndMaybePong()
	return fp
}

func (fp *fakePeer) addr() string { return fp.ln.Addr().String() }

func (fp *fakePeer) close() {
	fp.c.Close()
	fp.ln.Close()
}

// goSilent stops answering pings (the reader keeps draining so TCP
// backpressure never masks the silence — the peer is alive at the
// transport layer but dead at the protocol layer).
func (fp *fakePeer) goSilent() { fp.pong.Store(false) }

// speakAgain resumes answering pings.
func (fp *fakePeer) speakAgain() { fp.pong.Store(true) }

func (fp *fakePeer) readAndMaybePong() {
	defer close(fp.done)
	for {
		f, err := readFrame(fp.r)
		if err != nil {
			return
		}
		if f.kind == msgPing && fp.pong.Load() {
			if p, err := decodePing(f.payload); err == nil {
				fp.wmu.Lock()
				writeFrame(fp.w, msgPong, encodePing(p))
				fp.wmu.Unlock()
			}
		}
	}
}

func (fp *fakePeer) send(kind byte, payload []byte) {
	fp.t.Helper()
	fp.wmu.Lock()
	err := writeFrame(fp.w, kind, payload)
	fp.wmu.Unlock()
	if err != nil {
		fp.t.Fatal(err)
	}
}

// tightConfig returns a liveness-aggressive config for fast tests.
func tightConfig(seed int64) Config {
	return Config{
		Capacity:       4,
		ManageInterval: 100 * time.Millisecond,
		Seed:           seed,
		DialTimeout:    500 * time.Millisecond,
		PingTimeout:    100 * time.Millisecond,
		SuspectMisses:  1,
		EvictMisses:    2,
		IdleTimeout:    5 * time.Second,
	}
}

// Regression for the ping-nonce leak: every nonce either comes back as
// a pong or expires; a healthy long-lived link must not accumulate
// outstanding entries.
func TestPingNoncesDoNotAccumulate(t *testing.T) {
	nd, err := Start("127.0.0.1:0", tightConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	dialFakePeer(t, nd, true) // answers pings
	waitFor(t, 2*time.Second, func() bool { return nd.Stats().RTTs == 1 }, "no RTT sample from a ponging peer")
	// Let a dozen ping rounds pass; outstanding nonces must stay
	// bounded (pre-fix they leaked one per round once a pong was lost).
	time.Sleep(12 * 100 * time.Millisecond)
	if st := nd.Stats(); st.OutstandingPings > 3 {
		t.Fatalf("ping nonces accumulating: %+v", st)
	}
	if st := nd.Stats(); st.Suspects != 0 || st.Evictions != 0 {
		t.Fatalf("healthy link marked unhealthy: %+v", st)
	}
}

// Regression for the silent-peer hang and the per-peer state leak: a
// peer that stops answering pings is marked suspect, then evicted, and
// eviction purges its view, RTT sample and outstanding nonces — and
// none of that state is resurrected by stale frames afterwards.
func TestSilentPeerSuspectedEvictedAndPurged(t *testing.T) {
	nd, err := Start("127.0.0.1:0", tightConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	fp := dialFakePeer(t, nd, true)
	fp.send(msgNeighbors, encodeNeighbors(neighborsPayload{Addrs: []string{"10.0.0.1:1"}}))
	waitFor(t, 2*time.Second, func() bool {
		st := nd.Stats()
		return nd.Degree() == 1 && st.RTTs == 1 && st.Views == 1
	}, "link never became healthy")

	fp.goSilent()
	waitFor(t, 3*time.Second, func() bool { return nd.Degree() == 0 }, "silent peer never evicted")
	st := nd.Stats()
	if st.Evictions != 1 {
		t.Fatalf("eviction not accounted: %+v", st)
	}
	if st.OutstandingPings != 0 || st.Views != 0 || st.RTTs != 0 {
		t.Fatalf("per-peer state leaked past eviction: %+v", st)
	}
	if st.BackoffEntries == 0 {
		t.Fatalf("evicted peer not placed on dial backoff: %+v", st)
	}
	// The fake peer's reader is still draining: give any in-flight
	// frames time to land, then confirm nothing resurrected the state
	// (pre-fix, a late pong or neighbors push re-created rtt/views for
	// the dropped link).
	time.Sleep(300 * time.Millisecond)
	if st := nd.Stats(); st.Views != 0 || st.RTTs != 0 {
		t.Fatalf("stale frames resurrected per-peer state: %+v", st)
	}
}

// A suspect link that recovers (pong arrives before EvictMisses) must
// be rehabilitated, not evicted.
func TestSuspectLinkRecoversOnPong(t *testing.T) {
	cfg := tightConfig(3)
	cfg.EvictMisses = 50 // suspect fires, eviction effectively never
	nd, err := Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	fp := dialFakePeer(t, nd, true)
	waitFor(t, 2*time.Second, func() bool { return nd.Degree() == 1 }, "link never registered")
	fp.goSilent()
	waitFor(t, 3*time.Second, func() bool { return nd.Stats().Suspects == 1 }, "missed pongs never marked the link suspect")
	fp.speakAgain()
	waitFor(t, 3*time.Second, func() bool {
		st := nd.Stats()
		return st.Suspects == 0 && st.Links == 1
	}, "recovered link stayed suspect")
}

// Regression for the reader-goroutine hang: a peer that stalls
// mid-frame (header promising bytes that never come) used to wedge the
// reader forever because reads had no deadline. The IdleTimeout
// backstop must detect the stall and evict. Ping-based eviction is
// disabled so only the read deadline can fire.
func TestMidFrameStallEvictedByReadDeadline(t *testing.T) {
	cfg := tightConfig(4)
	cfg.PingTimeout = time.Hour // nonces never expire
	cfg.IdleTimeout = 400 * time.Millisecond
	nd, err := Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	// pong=false: nothing else may write after the partial frame, or the
	// stray bytes would complete the stalled frame by accident.
	fp := dialFakePeer(t, nd, false)
	waitFor(t, 2*time.Second, func() bool { return nd.Degree() == 1 }, "link never registered")
	// Header claims a 64-byte frame; send 3 bytes and stall. The node's
	// reader is now blocked mid-frame — only its read deadline can save it.
	fp.wmu.Lock()
	fp.w.Write([]byte{64, 0, 0, 0, msgQuery, 1, 2, 3})
	fp.w.Flush()
	fp.wmu.Unlock()
	waitFor(t, 3*time.Second, func() bool { return nd.Degree() == 0 }, "mid-frame stall never evicted (reader hung)")
	if st := nd.Stats(); st.Evictions != 1 {
		t.Fatalf("stall eviction not accounted: %+v", st)
	}
}

// Regression for unbounded host-cache growth: a peer flooding neighbor
// lists full of fresh addresses must not grow the cache past
// HostCacheCap.
func TestHostCacheBounded(t *testing.T) {
	cfg := tightConfig(5)
	cfg.HostCacheCap = 8
	// Keep the node from dialing the junk addresses during the test.
	cfg.DialTimeout = 50 * time.Millisecond
	nd, err := Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	fp := dialFakePeer(t, nd, true)
	for batch := 0; batch < 10; batch++ {
		addrs := make([]string, 20)
		for i := range addrs {
			addrs[i] = net.JoinHostPort("203.0.113.1", strconv.Itoa(1000+batch*20+i))
		}
		fp.send(msgNeighbors, encodeNeighbors(neighborsPayload{Addrs: addrs}))
	}
	// The pushes above race the management loop; poll until quiescent.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st := nd.Stats(); st.HostCache > cfg.HostCacheCap {
			t.Fatalf("host cache exceeded cap: %+v", st)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Regression for the seen/seenQ accounting drift: marking a duplicate
// id must not append a second FIFO entry. The map and queue stay the
// same size under any interleaving of fresh and duplicate ids.
func TestSeenAccountingInvariant(t *testing.T) {
	nd, err := Start("127.0.0.1:0", DefaultNodeConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	rng := rand.New(rand.NewSource(7))
	nd.mu.Lock()
	defer nd.mu.Unlock()
	for i := 0; i < 3*seenCap; i++ {
		// ~50% duplicates drawn from a small id space.
		nd.markSeenLocked(uint64(rng.Intn(seenCap)))
		if len(nd.seen) != len(nd.seenQ) {
			t.Fatalf("after %d marks: len(seen)=%d len(seenQ)=%d", i+1, len(nd.seen), len(nd.seenQ))
		}
		if len(nd.seenQ) > seenCap {
			t.Fatalf("queue overflow: %d", len(nd.seenQ))
		}
	}
	// Every queued id must still be present in the map (no eviction of
	// an id that remains queued).
	for _, id := range nd.seenQ {
		if !nd.seen[id] {
			t.Fatalf("id %d queued but not in map", id)
		}
	}
}

// Regression for the uint8 TTL wrap: a TTL above 255 used to truncate
// (300 -> 44) when packed into the wire byte; it must clamp instead.
func TestTTLClampNoWrap(t *testing.T) {
	if got := clampTTL(300); got != maxTTL {
		t.Fatalf("clampTTL(300) = %d, want %d", got, maxTTL)
	}
	if got := clampTTL(7); got != 7 {
		t.Fatalf("clampTTL(7) = %d", got)
	}
	// End to end: the encoded frame carries the clamped value.
	q, err := decodeQuery(encodeQuery(queryPayload{QueryID: 1, TTL: uint8(clampTTL(300)), Object: 2, Originator: "x:1"}))
	if err != nil || q.TTL != maxTTL {
		t.Fatalf("wire TTL = %d err=%v, want %d", q.TTL, err, maxTTL)
	}
}

// Dial backoff: failures space out retries exponentially and
// DialMaxFails consecutive failures drop the address from the cache.
func TestDialBackoffDropsDeadAddress(t *testing.T) {
	cfg := tightConfig(6)
	cfg.DialBackoffBase = 100 * time.Millisecond
	cfg.DialMaxFails = 3
	nd, err := Start("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	const dead = "203.0.113.9:444"
	nd.mu.Lock()
	nd.addToCacheLocked(dead)
	nd.mu.Unlock()

	nd.noteDialFailure(dead)
	nd.mu.Lock()
	b := nd.backoff[dead]
	inCache := nd.cache[dead]
	canNow := nd.canDialLocked(dead, time.Now())
	canLater := nd.canDialLocked(dead, time.Now().Add(time.Second))
	nd.mu.Unlock()
	if b == nil || b.fails != 1 || !inCache {
		t.Fatalf("first failure: backoff=%+v inCache=%v", b, inCache)
	}
	if canNow {
		t.Fatal("address dialable while inside its backoff window")
	}
	if !canLater {
		t.Fatal("backoff window never expires")
	}

	nd.noteDialFailure(dead)
	nd.noteDialFailure(dead) // third strike: drop entirely
	nd.mu.Lock()
	_, stillBackoff := nd.backoff[dead]
	stillCached := nd.cache[dead]
	nd.mu.Unlock()
	if stillBackoff || stillCached {
		t.Fatalf("dead address not dropped after %d failures (backoff=%v cached=%v)",
			cfg.DialMaxFails, stillBackoff, stillCached)
	}

	// A success wipes the slate.
	nd.noteDialFailure(dead)
	nd.noteDialSuccess(dead)
	nd.mu.Lock()
	_, hasBackoff := nd.backoff[dead]
	nd.mu.Unlock()
	if hasBackoff {
		t.Fatal("successful dial did not clear backoff state")
	}
}

// Kill leaves sockets dangling (crash semantics) and a later Close
// must reap them without panicking or double-closing.
func TestKillThenCloseReapsConnections(t *testing.T) {
	a, err := Start("127.0.0.1:0", tightConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Start("127.0.0.1:0", tightConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return a.Degree() == 1 && b.Degree() == 1 }, "connect failed")
	a.Kill()
	a.Kill() // idempotent
	// b eventually notices the silent death (over plain TCP the socket
	// is still open — only liveness can detect it).
	waitFor(t, 3*time.Second, func() bool { return b.Degree() == 0 }, "survivor never evicted the killed peer")
	a.Close() // reaps the dangling conns
	a.Close() // idempotent
}
