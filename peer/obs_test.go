package peer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"makalu/internal/obs"
	"makalu/peer/faultnet"
)

// TestStatsConsistentDuringEvictions hammers Node.Stats() from several
// goroutines while liveness evictions rip links out of the overlay.
// Every snapshot must be internally consistent — the bookkeeping maps
// (views, rtt, suspects) never outgrow the link set — and the run must
// be clean under -race (CI runs the package with -race).
func TestStatsConsistentDuringEvictions(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-network integration test")
	}
	const (
		nNodes   = 8
		nKill    = 3
		interval = 150 * time.Millisecond
	)
	fn := faultnet.New(faultnet.Config{Seed: 11})
	cfg := Config{
		Capacity:        4,
		ManageInterval:  interval,
		Seed:            11,
		DialTimeout:     500 * time.Millisecond,
		PingTimeout:     interval,
		SuspectMisses:   1,
		EvictMisses:     2,
		IdleTimeout:     8 * interval,
		DialBackoffBase: interval,
		DialMaxFails:    4,
		Metrics:         obs.NewRegistry(),
		Trace:           obs.NewEventLog(1 << 12),
	}
	c, err := StartCluster(nNodes, cfg, func(i int) Transport { return fn.Endpoint() })
	if err != nil {
		t.Fatal(err)
	}
	defer c.CloseAll()
	waitCluster(t, c, 20*time.Second, func(s ClusterSnapshot) bool {
		return s.GiantFraction == 1.0 && s.MeanDegree >= 2
	})

	var stop atomic.Bool
	var wg sync.WaitGroup
	var snapshots atomic.Int64
	survivors := []int{1, 2, 4, 5, 7}
	for _, idx := range survivors {
		n := c.Node(idx)
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			for !stop.Load() {
				s := n.Stats()
				if s.Suspects > s.Links {
					t.Errorf("node %d: %d suspects > %d links", i, s.Suspects, s.Links)
					return
				}
				if s.Views > s.Links {
					t.Errorf("node %d: %d views > %d links", i, s.Views, s.Links)
					return
				}
				if s.RTTs > s.Links {
					t.Errorf("node %d: %d RTT samples > %d links", i, s.RTTs, s.Links)
					return
				}
				snapshots.Add(1)
			}
		}(idx, n)
	}

	// Silent crashes staggered across the observation window so
	// suspect→evict transitions keep happening while Stats() runs.
	for _, i := range []int{0, 3, 6}[:nKill] {
		fn.Isolate(c.Node(i).Addr())
		c.Kill(i)
		time.Sleep(2 * interval)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var evictions uint64
		for _, i := range survivors {
			evictions += c.Node(i).Stats().Evictions
		}
		if evictions > 0 && c.Node(survivors[0]).Stats().Suspects == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	var evictions uint64
	for _, i := range survivors {
		evictions += c.Node(i).Stats().Evictions
	}
	if evictions == 0 {
		t.Fatal("no evictions happened; the test observed nothing")
	}
	if snapshots.Load() == 0 {
		t.Fatal("no Stats() snapshots taken during the churn window")
	}
	t.Logf("%d consistent snapshots across %d evictions", snapshots.Load(), evictions)
}
