package peer

import (
	"testing"
	"time"
)

func TestDirectedQueryCodec(t *testing.T) {
	q := directedQueryPayload{
		QueryID:    0xdeadbeef,
		TTL:        7,
		Object:     0x1234,
		Originator: "1.2.3.4:99",
		Visited:    []string{"a:1", "b:2", "c:3"},
	}
	got, err := decodeDirectedQuery(encodeDirectedQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got.QueryID != q.QueryID || got.TTL != q.TTL || got.Object != q.Object ||
		got.Originator != q.Originator || len(got.Visited) != 3 || got.Visited[2] != "c:3" {
		t.Fatalf("round trip mangled: %+v", got)
	}
	// Empty visited list.
	q2 := directedQueryPayload{QueryID: 1, TTL: 1, Object: 2, Originator: "x:1"}
	got2, err := decodeDirectedQuery(encodeDirectedQuery(q2))
	if err != nil || len(got2.Visited) != 0 {
		t.Fatalf("empty visited: %+v %v", got2, err)
	}
	// Corruption.
	if _, err := decodeDirectedQuery([]byte{1, 2, 3}); err == nil {
		t.Fatal("short frame accepted")
	}
	blob := encodeDirectedQuery(q)
	if _, err := decodeDirectedQuery(blob[:len(blob)-2]); err == nil {
		t.Fatal("truncated frame accepted")
	}
	if _, err := decodeDirectedQuery(append(blob, 9)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestFilterPushAndRebuild(t *testing.T) {
	a, err := Start("127.0.0.1:0", DefaultNodeConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start("127.0.0.1:0", DefaultNodeConfig(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const obj = uint64(0x777)
	b.AddObject(obj)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	// After a couple of management rounds, a must hold b's hierarchy
	// showing the object at level 0.
	waitFor(t, 3*time.Second, func() bool {
		a.abf.mu.Lock()
		defer a.abf.mu.Unlock()
		f := a.abf.received[b.Addr()]
		return f != nil && f.MatchLevel(obj) == 0
	}, "filter push never arrived or lost the object")
	// And a's own published hierarchy must advertise it at level 1.
	waitFor(t, 3*time.Second, func() bool {
		a.abf.mu.Lock()
		defer a.abf.mu.Unlock()
		return a.abf.own.MatchLevel(obj) == 1
	}, "rebuild did not shift neighbor content to level 1")
}

func TestIdentifierLookupLocal(t *testing.T) {
	nd, err := Start("127.0.0.1:0", DefaultNodeConfig(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	nd.AddObject(5)
	id := nd.IdentifierLookup(5, 0)
	select {
	case h := <-nd.Hits():
		if h.QueryID != id || h.Holder != nd.Addr() {
			t.Fatalf("bad local hit: %+v", h)
		}
	case <-time.After(time.Second):
		t.Fatal("local identifier hit not delivered")
	}
}

func TestIdentifierLookupRoutesAcrossNetwork(t *testing.T) {
	nodes := startNodes(t, 8, 4)
	// Let filters propagate depth-3 information: a few manage rounds.
	time.Sleep(1200 * time.Millisecond)
	const obj = uint64(0xabc123)
	nodes[7].AddObject(obj)
	// Wait until the object is visible somewhere in node 1's received
	// hierarchies (propagation needs one push round per hop).
	time.Sleep(1200 * time.Millisecond)
	id := nodes[1].IdentifierLookup(obj, 10)
	select {
	case h := <-nodes[1].Hits():
		if h.QueryID != id || h.Object != obj || h.Holder != nodes[7].Addr() {
			t.Fatalf("wrong hit: %+v", h)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("identifier lookup found nothing")
	}
}

func TestIdentifierLookupMissingObject(t *testing.T) {
	nodes := startNodes(t, 4, 3)
	time.Sleep(600 * time.Millisecond)
	nodes[0].IdentifierLookup(0xdead0000, 5)
	select {
	case h := <-nodes[0].Hits():
		t.Fatalf("phantom hit: %+v", h)
	case <-time.After(800 * time.Millisecond):
	}
}
