// Package peer implements the Makalu protocol over real TCP
// connections: length-prefixed binary framing, the dial/accept
// handshake, neighbor-list exchange (the local information the rating
// function needs), rating-based pruning, and TTL query flooding with
// duplicate suppression. It is the deployable counterpart of the
// simulation in internal/core — small networks of live nodes run
// in-process in the integration tests.
package peer

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Message type identifiers on the wire.
const (
	msgHello     = byte(1) // dial side introduces itself
	msgHelloAck  = byte(2) // accept side confirms (or the connection is closed)
	msgNeighbors = byte(3) // neighbor-list push (addresses)
	msgQuery     = byte(4) // flooded query
	msgQueryHit  = byte(5) // result, delivered directly to the originator
	msgBye       = byte(6) // graceful disconnect notice
	msgPing      = byte(7) // latency probe
	msgPong      = byte(8) // latency probe reply
)

// maxFrame bounds a frame's payload so a malicious or corrupt peer
// cannot make us allocate unbounded memory.
const maxFrame = 1 << 20

// maxTTL is the largest hop budget the wire format can carry (the TTL
// field is one byte). Query APIs clamp to it: passing e.g. 300 used
// to wrap to 44 through the uint8 conversion, silently crippling the
// flood radius.
const maxTTL = 255

// clampTTL bounds a caller-supplied hop budget to the wire range.
func clampTTL(ttl int) int {
	if ttl > maxTTL {
		return maxTTL
	}
	return ttl
}

// frame is one decoded wire message.
type frame struct {
	kind    byte
	payload []byte
}

// writeFrame encodes kind+payload with a 4-byte length prefix.
func writeFrame(w *bufio.Writer, kind byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("peer: frame too large (%d bytes)", len(payload))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame decodes the next frame from r.
func readFrame(r *bufio.Reader) (frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return frame{}, fmt.Errorf("peer: oversized frame (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frame{}, err
	}
	return frame{kind: hdr[4], payload: payload}, nil
}

// ---- payload codecs ----

// helloPayload carries the dialer's listen address so the acceptor
// can gossip it onward (and dial back after a prune, if it wants to).
type helloPayload struct {
	Addr string
}

func encodeHello(h helloPayload) []byte {
	return encodeString(h.Addr)
}

func decodeHello(b []byte) (helloPayload, error) {
	s, rest, err := decodeString(b)
	if err != nil || len(rest) != 0 {
		return helloPayload{}, fmt.Errorf("peer: bad hello payload")
	}
	return helloPayload{Addr: s}, nil
}

// neighborsPayload is the routing-table push: the sender's current
// neighbor listen addresses.
type neighborsPayload struct {
	Addrs []string
}

func encodeNeighbors(p neighborsPayload) []byte {
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, uint32(len(p.Addrs)))
	for _, a := range p.Addrs {
		out = append(out, encodeString(a)...)
	}
	return out
}

func decodeNeighbors(b []byte) (neighborsPayload, error) {
	if len(b) < 4 {
		return neighborsPayload{}, fmt.Errorf("peer: short neighbors payload")
	}
	n := binary.LittleEndian.Uint32(b)
	if n > 4096 {
		return neighborsPayload{}, fmt.Errorf("peer: implausible neighbor count %d", n)
	}
	b = b[4:]
	p := neighborsPayload{Addrs: make([]string, 0, n)}
	for i := uint32(0); i < n; i++ {
		s, rest, err := decodeString(b)
		if err != nil {
			return neighborsPayload{}, err
		}
		p.Addrs = append(p.Addrs, s)
		b = rest
	}
	if len(b) != 0 {
		return neighborsPayload{}, fmt.Errorf("peer: trailing bytes in neighbors payload")
	}
	return p, nil
}

// queryPayload is a flooded query: a unique id for duplicate
// suppression, the remaining TTL, the wanted object, and the
// originator's listen address for direct hit delivery.
type queryPayload struct {
	QueryID    uint64
	TTL        uint8
	Object     uint64
	Originator string
}

func encodeQuery(q queryPayload) []byte {
	out := make([]byte, 17)
	binary.LittleEndian.PutUint64(out, q.QueryID)
	out[8] = q.TTL
	binary.LittleEndian.PutUint64(out[9:], q.Object)
	return append(out, encodeString(q.Originator)...)
}

func decodeQuery(b []byte) (queryPayload, error) {
	if len(b) < 17 {
		return queryPayload{}, fmt.Errorf("peer: short query payload")
	}
	q := queryPayload{
		QueryID: binary.LittleEndian.Uint64(b),
		TTL:     b[8],
		Object:  binary.LittleEndian.Uint64(b[9:]),
	}
	s, rest, err := decodeString(b[17:])
	if err != nil || len(rest) != 0 {
		return queryPayload{}, fmt.Errorf("peer: bad query originator")
	}
	q.Originator = s
	return q, nil
}

// hitPayload reports a match directly to the query originator.
type hitPayload struct {
	QueryID uint64
	Object  uint64
	Holder  string
}

func encodeHit(h hitPayload) []byte {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint64(out, h.QueryID)
	binary.LittleEndian.PutUint64(out[8:], h.Object)
	return append(out, encodeString(h.Holder)...)
}

func decodeHit(b []byte) (hitPayload, error) {
	if len(b) < 16 {
		return hitPayload{}, fmt.Errorf("peer: short hit payload")
	}
	h := hitPayload{
		QueryID: binary.LittleEndian.Uint64(b),
		Object:  binary.LittleEndian.Uint64(b[8:]),
	}
	s, rest, err := decodeString(b[16:])
	if err != nil || len(rest) != 0 {
		return hitPayload{}, fmt.Errorf("peer: bad hit holder")
	}
	h.Holder = s
	return h, nil
}

// pingPayload carries an opaque nonce echoed by the pong.
type pingPayload struct {
	Nonce uint64
}

func encodePing(p pingPayload) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, p.Nonce)
	return out
}

func decodePing(b []byte) (pingPayload, error) {
	if len(b) != 8 {
		return pingPayload{}, fmt.Errorf("peer: bad ping payload")
	}
	return pingPayload{Nonce: binary.LittleEndian.Uint64(b)}, nil
}

// encodeString writes a 2-byte length prefix plus bytes.
func encodeString(s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	out := make([]byte, 2, 2+len(s))
	binary.LittleEndian.PutUint16(out, uint16(len(s)))
	return append(out, s...)
}

// decodeString reads one length-prefixed string, returning the rest.
func decodeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("peer: short string")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("peer: truncated string")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}
