package peer

import (
	"bufio"
	"net"
	"time"

	"makalu/internal/obs"
)

// seenCap bounds the query-ID cache; the oldest entries are evicted
// FIFO, matching deployed Gnutella clients' bounded routing tables.
const seenCap = 4096

// Query floods a search for obj with the given TTL and returns the
// query id. Results arrive asynchronously on Hits(); local store hits
// are delivered immediately.
func (n *Node) Query(obj uint64, ttl int) uint64 {
	ttl = clampTTL(ttl)
	n.mu.Lock()
	id := n.rng.Uint64()
	n.markSeenLocked(id)
	hasLocal := n.store[obj]
	links := make([]*link, 0, len(n.conns))
	for _, l := range n.conns {
		links = append(links, l)
	}
	n.mu.Unlock()
	n.met.queriesStarted.Inc()
	n.met.trace.Record(obs.EvQueryStart, n.Addr(), "", int64(ttl))
	if hasLocal {
		n.met.queryHits.Inc()
		n.met.trace.Record(obs.EvQueryHit, n.Addr(), n.Addr(), int64(id))
		select {
		case n.hits <- Hit{QueryID: id, Object: obj, Holder: n.Addr()}:
		default:
		}
	}
	if ttl <= 0 {
		return id
	}
	payload := encodeQuery(queryPayload{
		QueryID:    id,
		TTL:        uint8(ttl),
		Object:     obj,
		Originator: n.Addr(),
	})
	for _, l := range links {
		l.send(msgQuery, payload)
	}
	return id
}

// handleQuery processes a query received from neighbor `from`:
// duplicate-suppress, check the local store (hit goes straight to the
// originator), and forward to every other neighbor while TTL remains.
func (n *Node) handleQuery(q queryPayload, from string) {
	n.mu.Lock()
	if n.seen[q.QueryID] {
		n.mu.Unlock()
		return
	}
	n.markSeenLocked(q.QueryID)
	n.queries++
	n.met.queriesForwarded.Inc()
	hasIt := n.store[q.Object]
	var links []*link
	if q.TTL > 1 {
		links = make([]*link, 0, len(n.conns))
		for addr, l := range n.conns {
			if addr != from && addr != q.Originator {
				links = append(links, l)
			}
		}
	}
	n.mu.Unlock()

	if hasIt {
		// Deliver the hit straight to the originator on a transient
		// connection, as Gnutella's out-of-band hit delivery does.
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.deliverHit(q.Originator, hitPayload{
				QueryID: q.QueryID, Object: q.Object, Holder: n.Addr(),
			})
		}()
	}
	if q.TTL <= 1 {
		return
	}
	fwd := encodeQuery(queryPayload{
		QueryID:    q.QueryID,
		TTL:        q.TTL - 1,
		Object:     q.Object,
		Originator: q.Originator,
	})
	for _, l := range links {
		l.send(msgQuery, fwd)
	}
}

// deliverHit opens a short-lived connection to the originator and
// sends the hit frame. Failures are dropped silently (the originator
// may have left).
func (n *Node) deliverHit(addr string, h hitPayload) {
	if addr == n.Addr() {
		n.met.queryHits.Inc()
		n.met.trace.Record(obs.EvQueryHit, n.Addr(), h.Holder, int64(h.QueryID))
		select {
		case n.hits <- Hit{QueryID: h.QueryID, Object: h.Object, Holder: h.Holder}:
		default:
		}
		return
	}
	// Prefer an existing link.
	n.mu.Lock()
	l, ok := n.conns[addr]
	n.mu.Unlock()
	if ok {
		l.send(msgQueryHit, encodeHit(h))
		return
	}
	// Dial through the node's transport so fault injection applies to
	// out-of-band hit delivery too.
	c, err := n.tr.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return
	}
	defer c.Close()
	tagConn(c, addr)
	n.oneShotHit(c, h)
}

// oneShotHit writes the hit on a raw connection using the transient
// framing the accept path understands: a Hello carrying the reserved
// transient address, followed by the hit frame, then close. No ack is
// awaited.
func (n *Node) oneShotHit(c net.Conn, h hitPayload) {
	w := bufio.NewWriter(c)
	c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	hello := encodeHello(helloPayload{Addr: transientAddr})
	hit := encodeHit(h)
	if writeFrame(w, msgHello, hello) == nil {
		n.met.frameOut(len(hello))
	}
	if writeFrame(w, msgQueryHit, hit) == nil {
		n.met.frameOut(len(hit))
	}
}

// transientAddr marks a connection that only delivers a hit and
// closes; the accept path must not register it as a neighbor.
const transientAddr = "!transient"

// markSeenLocked records a query id with FIFO eviction. It is
// idempotent: marking an id already in the cache must not append a
// second FIFO entry, or len(seenQ) drifts past len(seen) and a later
// eviction of the duplicate deletes the map entry while the id still
// sits in the queue — the accounting skew the seen/seenQ invariant
// test guards against. Callers hold n.mu.
func (n *Node) markSeenLocked(id uint64) {
	if n.seen[id] {
		return
	}
	if len(n.seenQ) >= seenCap {
		old := n.seenQ[0]
		n.seenQ = n.seenQ[1:]
		delete(n.seen, old)
	}
	n.seen[id] = true
	n.seenQ = append(n.seenQ, id)
}

// QueriesForwarded reports how many distinct queries this node has
// processed (the per-node load metric of Table 2).
func (n *Node) QueriesForwarded() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.queries
}
