package peer

import (
	"bufio"
	"bytes"
	"testing"
	"testing/quick"

	"makalu/internal/bloom"
)

// Robustness property: no decoder may panic on arbitrary bytes — a
// malicious peer controls every frame we read — and whatever decodes
// successfully must re-encode to something that decodes identically.

func TestDecodersNeverPanicProperty(t *testing.T) {
	prop := func(junk []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		decodeHello(junk)
		decodeNeighbors(junk)
		decodeQuery(junk)
		decodeHit(junk)
		decodePing(junk)
		decodeDirectedQuery(junk)
		var f bloom.Filter
		f.UnmarshalBinary(junk)
		var a bloom.Attenuated
		a.UnmarshalBinary(junk)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameNeverPanicsProperty(t *testing.T) {
	prop := func(junk []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := bufio.NewReader(bytes.NewReader(junk))
		for i := 0; i < 4; i++ {
			if _, err := readFrame(r); err != nil {
				break
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryCodecRoundTripProperty(t *testing.T) {
	prop := func(id, obj uint64, ttl uint8, orig string) bool {
		if len(orig) > 200 {
			orig = orig[:200]
		}
		q := queryPayload{QueryID: id, TTL: ttl, Object: obj, Originator: orig}
		got, err := decodeQuery(encodeQuery(q))
		if err != nil {
			return false
		}
		return got == q
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedQueryCodecRoundTripProperty(t *testing.T) {
	prop := func(id, obj uint64, ttl uint8, visitedRaw []string) bool {
		visited := visitedRaw
		if len(visited) > 64 {
			visited = visited[:64]
		}
		for i, v := range visited {
			if len(v) > 100 {
				visited[i] = v[:100]
			}
		}
		q := directedQueryPayload{
			QueryID: id, TTL: ttl, Object: obj,
			Originator: "o:1", Visited: visited,
		}
		got, err := decodeDirectedQuery(encodeDirectedQuery(q))
		if err != nil {
			return false
		}
		if got.QueryID != q.QueryID || got.TTL != q.TTL || got.Object != q.Object {
			return false
		}
		if len(got.Visited) != len(visited) {
			return false
		}
		for i := range visited {
			if got.Visited[i] != visited[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsCodecRoundTripProperty(t *testing.T) {
	prop := func(addrsRaw []string) bool {
		addrs := addrsRaw
		if len(addrs) > 100 {
			addrs = addrs[:100]
		}
		for i, a := range addrs {
			if len(a) > 100 {
				addrs[i] = a[:100]
			}
		}
		got, err := decodeNeighbors(encodeNeighbors(neighborsPayload{Addrs: addrs}))
		if err != nil {
			return false
		}
		if len(got.Addrs) != len(addrs) {
			return false
		}
		for i := range addrs {
			if got.Addrs[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
