package peer

import (
	"time"

	"makalu/internal/obs"
)

// This file implements failure detection and recovery for live links:
// ping nonces get deadlines, consecutive missed pongs mark a link
// suspect and then evict it (suspect -> evict lifecycle), evictions
// feed the dial backoff and kick an immediate management round, and
// Kill simulates a silent crash for fault-injection tests. The clean
// departure path (msgBye) never enters this machinery — it exists for
// the peers that die without saying goodbye.

// sweepLiveness expires outstanding ping nonces past PingTimeout,
// advances the per-link missed counters, and evicts links that reached
// EvictMisses. Evicted addresses go on dial backoff: the peer is
// presumed dead, so immediate re-dial would only burn a timeout.
func (n *Node) sweepLiveness() {
	now := time.Now()
	var victims []*link
	n.mu.Lock()
	for nonce, ref := range n.pingT {
		if now.Sub(ref.at) <= n.cfg.PingTimeout {
			continue
		}
		delete(n.pingT, nonce)
		l, ok := n.conns[ref.addr]
		if !ok {
			continue // link already gone; the nonce was the leak
		}
		l.missed++
		if l.missed >= n.cfg.SuspectMisses && !l.suspect {
			l.suspect = true
			n.met.suspects.Inc()
			n.met.trace.Record(obs.EvSuspect, n.Addrlocked(), l.addr, int64(l.missed))
		}
		// >= with the byManager latch: several nonces can expire in
		// one sweep, stepping missed past the threshold.
		if l.missed >= n.cfg.EvictMisses && !l.byManager {
			l.byManager = true
			victims = append(victims, l)
		}
	}
	n.mu.Unlock()
	for _, l := range victims {
		// No Bye: the peer is presumed dead. Closing our side frees
		// the socket; if the peer is actually alive it will observe
		// the loss and both ends re-enter the overlay via refill.
		n.dropLink(l)
		n.noteDialFailure(l.addr)
		n.bumpEvictions(l.addr)
	}
	if len(victims) > 0 {
		n.kickManage()
	}
}

// noteDialFailure records one more consecutive failure for addr and
// schedules the next retry with capped exponential backoff plus
// jitter. After DialMaxFails consecutive failures the address is
// dropped from the host cache entirely.
func (n *Node) noteDialFailure(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	b := n.backoff[addr]
	if b == nil {
		b = &dialBackoff{}
		n.backoff[addr] = b
	}
	b.fails++
	n.met.dialFailures.Inc()
	n.met.trace.Record(obs.EvDialBackoff, n.Addrlocked(), addr, int64(b.fails))
	if b.fails >= n.cfg.DialMaxFails {
		delete(n.cache, addr)
		delete(n.backoff, addr)
		n.met.backoffEntries.Set(int64(len(n.backoff)))
		return
	}
	delay := n.cfg.DialBackoffBase << uint(b.fails-1)
	if delay > n.cfg.DialBackoffMax || delay <= 0 {
		delay = n.cfg.DialBackoffMax
	}
	// Jitter in [delay/2, delay): de-synchronizes a cohort of
	// survivors all retrying the same dead peer.
	jittered := delay/2 + time.Duration(n.rng.Int63n(int64(delay/2)+1))
	b.until = time.Now().Add(jittered)
	n.met.backoffEntries.Set(int64(len(n.backoff)))
}

// noteDialSuccess clears the backoff state for addr.
func (n *Node) noteDialSuccess(addr string) {
	n.mu.Lock()
	delete(n.backoff, addr)
	n.met.backoffEntries.Set(int64(len(n.backoff)))
	n.mu.Unlock()
}

// bumpEvictions counts a liveness-triggered loss of the link to addr,
// in both the LinkStats counter and the event trace — every eviction
// LinkStats reports has a matching EvEvict event, which the
// mass-failure acceptance test pins.
func (n *Node) bumpEvictions(addr string) {
	n.mu.Lock()
	n.evictions++
	n.mu.Unlock()
	n.met.evictions.Inc()
	n.met.trace.Record(obs.EvEvict, n.Addr(), addr, 0)
}

// kickManage requests an immediate management round (refill, prune)
// without waiting for the next tick. Non-blocking; extra kicks while
// one is pending coalesce.
func (n *Node) kickManage() {
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// Kill simulates a crash for fault-injection tests: all loops stop,
// no Bye is sent, and the TCP connections are left dangling without a
// FIN from our side — peers must detect the death through their own
// liveness machinery, exactly as with a dead kernel. Call Close
// afterwards to reap the leaked sockets once assertions are done.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.killed = true
	for _, l := range n.conns {
		// Unwedge the reader goroutine without closing the socket
		// (dropLink sees killed and leaves the connection dangling).
		// Flag and deadline go together under mu: the readLoop arms its
		// idle deadline in the same critical section, so it either sees
		// dying and exits or its deadline is the one we overwrite here
		// — otherwise a reader between frames could re-arm after our
		// poke and, fed by a still-alive peer's pings, read forever.
		l.dying = true
		l.c.SetReadDeadline(time.Now())
	}
	n.mu.Unlock()
	close(n.stop)
	n.ln.Close()
	n.wg.Wait()
}

// LinkStats is a point-in-time view of the liveness and recovery
// machinery, for tests and operational introspection.
type LinkStats struct {
	Links            int    // current neighbor count
	Suspects         int    // links with >= SuspectMisses missed pongs
	OutstandingPings int    // ping nonces awaiting a pong
	Evictions        uint64 // links dropped for liveness since start
	HostCache        int    // host cache size (bounded by HostCacheCap)
	BackoffEntries   int    // addresses in a dial-backoff window
	Views            int    // stored neighbor views (== Links when healthy)
	RTTs             int    // stored RTT samples (<= Links when healthy)
}

// Stats snapshots the liveness state.
func (n *Node) Stats() LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := LinkStats{
		Links:            len(n.conns),
		OutstandingPings: len(n.pingT),
		Evictions:        n.evictions,
		HostCache:        len(n.cache),
		BackoffEntries:   len(n.backoff),
		Views:            len(n.views),
		RTTs:             len(n.rtt),
	}
	for _, l := range n.conns {
		if l.suspect {
			s.Suspects++
		}
	}
	return s
}
