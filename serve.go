package makalu

import (
	"fmt"

	"makalu/internal/serve"
)

// ServeEngine builds a query-serving engine (internal/serve) over the
// current overlay snapshot and content placement — the bridge the
// makalu-node service mode uses. cfg.Graph/Store/ABF are filled from
// the overlay; pass ix (a BuildIdentifierIndex result over the same
// snapshot) to enable mech=abf lookups, or nil to serve flood/walk
// only.
//
// The engine captures the snapshot at call time. After overlay
// mutations, push the new state with UpdateServeSnapshot so cached
// results from the old epoch can never be served.
func (ov *Overlay) ServeEngine(c *Content, ix *IdentifierIndex, cfg serve.Config) (*serve.Engine, error) {
	if c == nil {
		return nil, fmt.Errorf("makalu: nil content")
	}
	g := ov.graphSnapshot()
	cfg.Graph = g
	cfg.Store = c.store
	if ix != nil {
		if ix.g != g {
			return nil, fmt.Errorf("makalu: identifier index was built over a different overlay snapshot; rebuild it")
		}
		cfg.ABF = ix.net
	}
	if cfg.Seed == 0 {
		cfg.Seed = ov.cfg.Seed + 29
	}
	return serve.New(cfg)
}

// UpdateServeSnapshot re-snapshots the overlay into a running serving
// engine, bumping its epoch (which invalidates the result cache). Pass
// a fresh IdentifierIndex built over the current snapshot to keep
// mech=abf servable, or nil to drop it.
func (ov *Overlay) UpdateServeSnapshot(eng *serve.Engine, c *Content, ix *IdentifierIndex) error {
	if c == nil {
		return fmt.Errorf("makalu: nil content")
	}
	g := ov.graphSnapshot()
	if ix != nil {
		if ix.g != g {
			return fmt.Errorf("makalu: identifier index was built over a different overlay snapshot; rebuild it")
		}
		return eng.UpdateSnapshot(g, c.store, ix.net)
	}
	return eng.UpdateSnapshot(g, c.store, nil)
}
