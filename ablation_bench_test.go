package makalu

// Ablation benchmarks for the design choices DESIGN.md calls out:
// rating-function weights, neighbor-view freshness, QRP gating in the
// v0.6 comparison, and attenuated-Bloom-filter depth. Each reports
// the quality metric the choice trades against via b.ReportMetric.

import (
	"math/rand"
	"testing"

	"makalu/internal/content"
	"makalu/internal/core"
	"makalu/internal/experiments"
	"makalu/internal/netmodel"
	"makalu/internal/search"
	"makalu/internal/spectral"
	"makalu/internal/topology"
)

// BenchmarkAblationRatingWeights compares connectivity-only (β=0),
// proximity-only (α=0) and balanced (α=β=1) overlays on the two
// quantities the weights trade: algebraic connectivity and mean edge
// latency.
func BenchmarkAblationRatingWeights(b *testing.B) {
	const n = 800
	cases := []struct {
		name        string
		alpha, beta float64
		rawProx     bool
	}{
		{"balanced", 1, 1, false},
		{"connectivity-only", 1, 0, false},
		{"proximity-only", 0, 1, false},
		// The paper's literal unbounded d_max/d ratio (see DESIGN.md
		// "Proximity normalization").
		{"raw-proximity", 1, 1, true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			net := netmodel.NewEuclidean(n, 1000, 1)
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(net, 1)
				cfg.Alpha, cfg.Beta = tc.alpha, tc.beta
				cfg.RawProximity = tc.rawProx
				o, err := core.Build(n, cfg)
				if err != nil {
					b.Fatal(err)
				}
				g := o.Freeze()
				l1, err := spectral.AlgebraicConnectivity(g, 200, 3)
				if err != nil {
					b.Fatal(err)
				}
				sum, cnt := 0.0, 0
				for u := 0; u < g.N(); u++ {
					for j := g.Offsets[u]; j < g.Offsets[u+1]; j++ {
						sum += g.Weights[j]
						cnt++
					}
				}
				b.ReportMetric(l1, "lambda1")
				b.ReportMetric(sum/float64(cnt), "mean-edge-latency")
			}
		})
	}
}

// BenchmarkAblationViews compares oracle neighbor views (the paper's
// simulator assumption) against protocol views (neighbor lists as
// last exchanged), measuring the connectivity cost of staleness.
func BenchmarkAblationViews(b *testing.B) {
	const n = 800
	for _, tc := range []struct {
		name string
		mode core.ViewMode
	}{
		{"oracle", core.OracleViews},
		{"protocol", core.ProtocolViews},
	} {
		b.Run(tc.name, func(b *testing.B) {
			net := netmodel.NewEuclidean(n, 1000, 1)
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(net, 1)
				cfg.Views = tc.mode
				o, err := core.Build(n, cfg)
				if err != nil {
					b.Fatal(err)
				}
				l1, err := spectral.AlgebraicConnectivity(o.Freeze(), 200, 3)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(l1, "lambda1")
			}
		})
	}
}

// BenchmarkAblationQRP measures what QRP gating would save the v0.6
// topology: the same two-tier flood with and without leaf tables.
func BenchmarkAblationQRP(b *testing.B) {
	const n = 3000
	ttCfg := topology.DefaultTwoTier()
	tt := topology.NewTwoTier(n, ttCfg)
	g := tt.Graph.Freeze(nil)
	store, err := content.Place(n, content.PlacementConfig{Objects: 20, Replication: 0.01, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		useQRP bool
	}{
		{"ungated", false},
		{"qrp-gated", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				agg, err := experiments.TwoTierFloodBatch(g, tt.IsUltra, store, 3, 100, 0, tc.useQRP, 7, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(agg.MeanMessages(), "msgs/query")
				b.ReportMetric(agg.SuccessRate(), "success")
			}
		})
	}
}

// BenchmarkAblationABFDepth sweeps the attenuated-filter depth: deeper
// hierarchies see farther (fewer blind hops) but cost more memory and
// suffer noisier deep levels.
func BenchmarkAblationABFDepth(b *testing.B) {
	const n = 3000
	net := netmodel.NewEuclidean(n, 1000, 1)
	o, err := core.Build(n, core.DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := o.Freeze()
	store, err := content.Place(n, content.PlacementConfig{Objects: 20, Replication: 0.005, MinReplicas: 1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, depth := range []int{1, 2, 3, 4} {
		b.Run(map[int]string{1: "depth-1", 2: "depth-2", 3: "depth-3", 4: "depth-4"}[depth], func(b *testing.B) {
			cfg := search.DefaultABFConfig()
			cfg.Depth = depth
			abf, err := search.BuildABFNetwork(g, store, cfg)
			if err != nil {
				b.Fatal(err)
			}
			router := search.NewABFRouter(abf)
			rng := rand.New(rand.NewSource(9))
			b.ResetTimer()
			succ, msgs, total := 0, 0, 0
			for i := 0; i < b.N; i++ {
				for q := 0; q < 50; q++ {
					obj := store.RandomObject(rng)
					r := router.Lookup(rng.Intn(n), obj, 25, rng)
					total++
					if r.Success {
						succ++
						msgs += r.Messages
					}
				}
			}
			b.ReportMetric(float64(succ)/float64(total), "success")
			if succ > 0 {
				b.ReportMetric(float64(msgs)/float64(succ), "msgs/hit")
			}
			b.ReportMetric(float64(abf.MemoryBytes())/float64(n), "filter-bytes/node")
		})
	}
}

// BenchmarkAblationSearchMechanisms compares the four search
// mechanisms on identical workloads: flooding, expanding ring,
// 16-walker random walk and ABF identifier routing.
func BenchmarkAblationSearchMechanisms(b *testing.B) {
	const n = 3000
	net := netmodel.NewEuclidean(n, 1000, 1)
	o, err := core.Build(n, core.DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	g := o.Freeze()
	store, err := content.Place(n, content.PlacementConfig{Objects: 20, Replication: 0.01, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	abf, err := search.BuildABFNetwork(g, store, search.DefaultABFConfig())
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, exec func(src int, obj uint64, rng *rand.Rand) search.Result) {
		rng := rand.New(rand.NewSource(11))
		succ, msgs, total := 0, 0, 0
		for i := 0; i < b.N; i++ {
			for q := 0; q < 50; q++ {
				obj := store.RandomObject(rng)
				r := exec(rng.Intn(n), obj, rng)
				total++
				if r.Success {
					succ++
				}
				msgs += r.Messages
			}
		}
		b.ReportMetric(float64(succ)/float64(total), "success")
		b.ReportMetric(float64(msgs)/float64(total), "msgs/query")
	}
	b.Run("flood-ttl4", func(b *testing.B) {
		fl := search.NewFlooder(g)
		run(b, func(src int, obj uint64, _ *rand.Rand) search.Result {
			return fl.Flood(src, 4, func(u int) bool { return store.Has(u, obj) })
		})
	})
	b.Run("expanding-ring", func(b *testing.B) {
		fl := search.NewFlooder(g)
		cfg := search.RingConfig{StartTTL: 1, Step: 1, MaxTTL: 4}
		run(b, func(src int, obj uint64, rng *rand.Rand) search.Result {
			return search.ExpandingRing(fl, src, cfg, func(u int) bool { return store.Has(u, obj) }, rng)
		})
	})
	b.Run("random-walk", func(b *testing.B) {
		cfg := search.DefaultWalkConfig()
		run(b, func(src int, obj uint64, rng *rand.Rand) search.Result {
			return search.RandomWalk(g, src, cfg, func(u int) bool { return store.Has(u, obj) }, rng)
		})
	})
	b.Run("abf-identifier", func(b *testing.B) {
		router := search.NewABFRouter(abf)
		run(b, func(src int, obj uint64, rng *rand.Rand) search.Result {
			return router.Lookup(src, obj, 25, rng)
		})
	})
}
