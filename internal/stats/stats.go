// Package stats provides the summary statistics used by every Makalu
// experiment: means, variances, percentiles, confidence intervals,
// histograms and least-squares fits. All functions are deterministic
// and allocation-conscious so they can run inside benchmark loops.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 in the
// denominator), or 0 when fewer than two samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or 0 for an empty slice.
// The old ±Inf sentinels broke encoding/json, which rejects
// non-finite float64 values — a Summary holding them could never be
// marshaled into an experiment report.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest element of xs, or 0 for an empty slice (see
// Min for why not -Inf).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It copies and sorts the
// input; use SortedPercentile when xs is already sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return SortedPercentile(sorted, p)
}

// SortedPercentile is Percentile for an already ascending-sorted slice.
func SortedPercentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := lo + 1
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// tCrit95 holds the two-sided 95% critical values of Student's t
// distribution, indexed by degrees of freedom (n-1) for df <= 30.
// Beyond 30 the normal approximation z = 1.96 is within ~2% and is
// used instead.
var tCrit95 = [...]float64{
	1:  12.706,
	2:  4.303,
	3:  3.182,
	4:  2.776,
	5:  2.571,
	6:  2.447,
	7:  2.365,
	8:  2.306,
	9:  2.262,
	10: 2.228,
	11: 2.201,
	12: 2.179,
	13: 2.160,
	14: 2.145,
	15: 2.131,
	16: 2.120,
	17: 2.110,
	18: 2.101,
	19: 2.093,
	20: 2.086,
	21: 2.080,
	22: 2.074,
	23: 2.069,
	24: 2.064,
	25: 2.060,
	26: 2.056,
	27: 2.052,
	28: 2.048,
	29: 2.045,
	30: 2.042,
}

// MeanCI returns the mean of xs together with the half-width of a 95%
// confidence interval. The critical value is Student's t with n-1
// degrees of freedom for n <= 31 and the normal z = 1.96 beyond — the
// experiments average over 5–30 runs, where the normal approximation
// understates the interval by up to a factor of 6.5 (n=2). For fewer
// than two samples the half-width is 0.
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	crit := 1.96
	if df := len(xs) - 1; df < len(tCrit95) {
		crit = tCrit95[df]
	}
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, crit * se
}

// Summary bundles the descriptive statistics of one metric.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P95    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		P25:    SortedPercentile(sorted, 25),
		Median: SortedPercentile(sorted, 50),
		P75:    SortedPercentile(sorted, 75),
		P95:    SortedPercentile(sorted, 95),
		P99:    SortedPercentile(sorted, 99),
		Max:    sorted[len(sorted)-1],
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p95=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P95, s.Max)
}

// LinearFit returns the least-squares slope and intercept of y on x.
// It is used to estimate scaling exponents from log-log series
// (Figure 2). Both slices must have equal, nonzero length.
func LinearFit(x, y []float64) (slope, intercept float64) {
	n := float64(len(x))
	if len(x) == 0 || len(x) != len(y) {
		return math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// LogLogSlope fits log(y) against log(x) and returns the slope: the
// scaling exponent. Points with non-positive coordinates are skipped.
func LogLogSlope(x, y []float64) float64 {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if i < len(y) && x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	slope, _ := LinearFit(lx, ly)
	return slope
}
