package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestMeanSimple(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1: sum of squared deviations = 32, / 7.
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestVarianceFewSamples(t *testing.T) {
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance of one sample = %v, want 0", got)
	}
}

func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		return StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v, want -1/7", Min(xs), Max(xs))
	}
}

func TestMinMaxEmpty(t *testing.T) {
	// Regression: empty inputs used to return ±Inf, which
	// encoding/json rejects — any struct carrying them could never be
	// marshaled into an experiment report.
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatalf("Min/Max of empty slice = %v/%v, want 0/0", Min(nil), Max(nil))
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("P0 = %v, want 10", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("P100 = %v, want 40", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Fatalf("P50 = %v, want 5", got)
	}
	if got := Percentile(xs, 25); got != 2.5 {
		t.Fatalf("P25 = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 9}); got != 5 {
		t.Fatalf("odd median = %v, want 5", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		v := Percentile(xs, p)
		return v >= Min(xs) && v <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{1, 1, 1, 1})
	if mean != 1 || hw != 0 {
		t.Fatalf("constant samples: mean=%v hw=%v, want 1, 0", mean, hw)
	}
	_, hw = MeanCI([]float64{0, 10, 0, 10})
	if hw <= 0 {
		t.Fatal("varying samples should have positive CI half-width")
	}
}

func TestMeanCIStudentT(t *testing.T) {
	// Regression for the z=1.96 bug: at experiment-scale sample counts
	// (5–30 runs) the normal approximation understates the 95%
	// interval. Pin the n=5 case exactly: xs has mean 3, sample
	// variance 2.5, so hw = t(4) * sqrt(2.5/5) = 2.776 * sqrt(0.5).
	xs := []float64{1, 2, 3, 4, 5}
	mean, hw := MeanCI(xs)
	want := 2.776 * math.Sqrt(2.5/5)
	if mean != 3 || !almostEq(hw, want, 1e-12) {
		t.Fatalf("MeanCI(n=5) = %v ± %v, want 3 ± %v", mean, hw, want)
	}
	// n=2 is the most extreme case: t(1) = 12.706, 6.5x the normal z.
	_, hw2 := MeanCI([]float64{0, 1})
	want2 := 12.706 * math.Sqrt(0.5/2)
	if !almostEq(hw2, want2, 1e-12) {
		t.Fatalf("MeanCI(n=2) hw = %v, want %v", hw2, want2)
	}
	// Large samples fall back to z = 1.96.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 10)
	}
	_, hwBig := MeanCI(big)
	wantBig := 1.96 * StdDev(big) / 10
	if !almostEq(hwBig, wantBig, 1e-12) {
		t.Fatalf("MeanCI(n=100) hw = %v, want z-based %v", hwBig, wantBig)
	}
}

func TestSummaryEmptyJSONRoundTrip(t *testing.T) {
	// An empty Summary must marshal (no ±Inf fields) and round-trip.
	s := Summarize(nil)
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("empty Summary did not marshal: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != s {
		t.Fatalf("round trip changed the summary: %+v vs %+v", back, s)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("Summary n/min/max = %d/%v/%v", s.N, s.Min, s.Max)
	}
	if !almostEq(s.Median, 50, 1e-9) || !almostEq(s.P95, 95, 1e-9) {
		t.Fatalf("Summary median/p95 = %v/%v", s.Median, s.P95)
	}
	if s.String() == "" {
		t.Fatal("Summary.String should not be empty")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N = %d", s.N)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(x, y)
	if !almostEq(slope, 2, 1e-12) || !almostEq(intercept, 1, 1e-12) {
		t.Fatalf("fit = %v, %v; want 2, 1", slope, intercept)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	slope, _ := LinearFit([]float64{1, 1}, []float64{2, 3})
	if !math.IsNaN(slope) {
		t.Fatalf("vertical data should give NaN slope, got %v", slope)
	}
	slope, _ = LinearFit(nil, nil)
	if !math.IsNaN(slope) {
		t.Fatal("empty fit should give NaN slope")
	}
}

func TestLogLogSlopePowerLaw(t *testing.T) {
	// y = 4 * x^0.8
	var x, y []float64
	for _, v := range []float64{10, 100, 1000, 10000} {
		x = append(x, v)
		y = append(y, 4*math.Pow(v, 0.8))
	}
	if got := LogLogSlope(x, y); !almostEq(got, 0.8, 1e-9) {
		t.Fatalf("LogLogSlope = %v, want 0.8", got)
	}
}

func TestLogLogSlopeSkipsNonPositive(t *testing.T) {
	x := []float64{-1, 10, 100}
	y := []float64{5, 10, 100}
	if got := LogLogSlope(x, y); !almostEq(got, 1, 1e-9) {
		t.Fatalf("LogLogSlope = %v, want 1", got)
	}
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count = %d, want 1", i, c)
		}
	}
	if h.Total() != 10 {
		t.Fatalf("Total = %d, want 10", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("clamping failed: %v", h.Counts)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(2.5)
	h.Add(3.5)
	cdf := h.CDF()
	want := []float64{0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEq(cdf[i], want[i], 1e-12) {
			t.Fatalf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestHistogramCDFEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	for _, v := range h.CDF() {
		if v != 0 {
			t.Fatal("empty histogram CDF should be all zero")
		}
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.25)
	if h.String() == "" {
		t.Fatal("String should render bins")
	}
}

func TestCounterBasic(t *testing.T) {
	c := NewCounter()
	c.Add(3)
	c.Add(3)
	c.Add(5)
	if c.Total() != 3 || c.Count(3) != 2 || c.Count(5) != 1 || c.Count(7) != 0 {
		t.Fatalf("counter state wrong: total=%d", c.Total())
	}
	if got := c.Mean(); !almostEq(got, 11.0/3.0, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
	vs := c.Values()
	if len(vs) != 2 || vs[0] != 3 || vs[1] != 5 {
		t.Fatalf("Values = %v", vs)
	}
}

func TestCounterAddN(t *testing.T) {
	c := NewCounter()
	c.AddN(2, 10)
	if c.Total() != 10 || c.Count(2) != 10 {
		t.Fatal("AddN miscounted")
	}
}

func TestCounterQuantile(t *testing.T) {
	c := NewCounter()
	for i := 1; i <= 100; i++ {
		c.Add(i)
	}
	if got := c.Quantile(0.5); got != 50 {
		t.Fatalf("Q50 = %d, want 50", got)
	}
	if got := c.Quantile(0.95); got != 95 {
		t.Fatalf("Q95 = %d, want 95", got)
	}
	if got := c.Quantile(1.0); got != 100 {
		t.Fatalf("Q100 = %d, want 100", got)
	}
}

func TestCounterQuantileEmpty(t *testing.T) {
	if got := NewCounter().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d, want 0", got)
	}
}

func TestCounterMeanEmpty(t *testing.T) {
	if got := NewCounter().Mean(); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
}

func TestMeanCIShrinksWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	small := make([]float64, 10)
	large := make([]float64, 1000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	_, hwSmall := MeanCI(small)
	_, hwLarge := MeanCI(large)
	if hwLarge >= hwSmall {
		t.Fatalf("CI should shrink with more samples: %v vs %v", hwSmall, hwLarge)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		c := NewCounter()
		for _, v := range vals {
			c.Add(int(v))
		}
		if c.Total() == 0 {
			return true
		}
		prev := c.Quantile(0.01)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			cur := c.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
