package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over a closed interval. Samples
// outside [Lo, Hi] are clamped into the first or last bin so that
// total counts are preserved.
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	total  uint64
}

// NewHistogram returns a histogram with bins equal-width bins over
// [lo, hi]. It panics when bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram needs hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// CDF returns, for each bin boundary, the fraction of samples at or
// below it. The returned slice has len(Counts) entries and is
// monotonically nondecreasing, ending at 1 when any samples exist.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		out[i] = float64(cum) / float64(h.total)
	}
	return out
}

// String renders a compact ASCII bar chart, one bin per line.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := uint64(1)
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		bar := strings.Repeat("#", int(40*float64(c)/float64(maxC)))
		fmt.Fprintf(&b, "%10.3f %8d %s\n", h.BinCenter(i), c, bar)
	}
	return b.String()
}

// Counter tallies integer-valued observations (hop counts, message
// counts) without pre-declared bins.
type Counter struct {
	counts map[int]uint64
	total  uint64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return &Counter{counts: make(map[int]uint64)} }

// Add records one observation of value v.
func (c *Counter) Add(v int) { c.counts[v]++; c.total++ }

// AddN records n observations of value v.
func (c *Counter) AddN(v int, n uint64) { c.counts[v] += n; c.total += n }

// Total returns the number of observations.
func (c *Counter) Total() uint64 { return c.total }

// Count returns the tally of value v.
func (c *Counter) Count(v int) uint64 { return c.counts[v] }

// Mean returns the mean observation value.
func (c *Counter) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	var sum float64
	for v, n := range c.counts {
		sum += float64(v) * float64(n)
	}
	return sum / float64(c.total)
}

// Values returns the distinct observed values in ascending order.
func (c *Counter) Values() []int {
	vs := make([]int, 0, len(c.counts))
	for v := range c.counts {
		vs = append(vs, v)
	}
	sort.Ints(vs)
	return vs
}

// Quantile returns the smallest value v such that at least fraction q
// of the observations are <= v. It returns 0 for an empty counter.
func (c *Counter) Quantile(q float64) int {
	if c.total == 0 {
		return 0
	}
	need := uint64(math.Ceil(q * float64(c.total)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for _, v := range c.Values() {
		cum += c.counts[v]
		if cum >= need {
			return v
		}
	}
	vs := c.Values()
	return vs[len(vs)-1]
}
