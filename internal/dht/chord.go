// Package dht implements a Chord distributed hash table at simulation
// level: consistent hashing on a 64-bit ring with per-node finger
// tables and iterative lookup routing. The paper positions Makalu's
// attenuated-Bloom-filter identifier search as "comparable to that of
// structured P2P systems"; this package is the structured reference
// point (expected lookup cost ≈ ½·log₂ n hops).
package dht

import (
	"fmt"
	"sort"
)

const ringBits = 64

// Chord is a fully converged Chord overlay over n simulation nodes.
// Node i owns ring position ids[i]; fingers are exact (the simulation
// equivalent of a stabilized network).
type Chord struct {
	n       int
	ids     []uint64 // ring id of each node, by node index
	sorted  []uint64 // ring ids ascending
	ownerOf []int32  // node index owning sorted[i]
	fingers [][]int32
}

// mix64 is the splitmix64 finalizer used to place nodes and keys on
// the ring.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New builds a converged Chord ring over n nodes. Ring positions are
// derived from (seed, node index) and are unique with overwhelming
// probability; a collision returns an error rather than silently
// corrupting ownership.
func New(n int, seed int64) (*Chord, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dht: need positive node count, got %d", n)
	}
	c := &Chord{
		n:       n,
		ids:     make([]uint64, n),
		sorted:  make([]uint64, n),
		ownerOf: make([]int32, n),
		fingers: make([][]int32, n),
	}
	for i := 0; i < n; i++ {
		c.ids[i] = mix64(uint64(seed)<<32 ^ uint64(i))
		c.sorted[i] = c.ids[i]
	}
	sort.Slice(c.sorted, func(a, b int) bool { return c.sorted[a] < c.sorted[b] })
	for i := 1; i < n; i++ {
		if c.sorted[i] == c.sorted[i-1] {
			return nil, fmt.Errorf("dht: ring id collision; change the seed")
		}
	}
	pos := make(map[uint64]int32, n)
	for i, id := range c.ids {
		pos[id] = int32(i)
	}
	for i, id := range c.sorted {
		c.ownerOf[i] = pos[id]
	}
	// Exact finger tables: finger k of node u is successor(id + 2^k).
	for u := 0; u < n; u++ {
		f := make([]int32, 0, ringBits)
		id := c.ids[u]
		var prev int32 = -1
		for k := 0; k < ringBits; k++ {
			target := id + (uint64(1) << uint(k)) // wraparound is free
			s := c.successorNode(target)
			if s != prev {
				f = append(f, s)
				prev = s
			}
		}
		c.fingers[u] = f
	}
	return c, nil
}

// N returns the node count.
func (c *Chord) N() int { return c.n }

// ID returns node u's ring position.
func (c *Chord) ID(u int) uint64 { return c.ids[u] }

// successorNode returns the node owning the first ring id >= target
// (wrapping past the top of the ring).
func (c *Chord) successorNode(target uint64) int32 {
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] >= target })
	if i == len(c.sorted) {
		i = 0
	}
	return c.ownerOf[i]
}

// Owner returns the node responsible for a key: the successor of the
// key's ring position.
func (c *Chord) Owner(key uint64) int {
	return int(c.successorNode(mix64(key)))
}

// inOpenInterval reports whether x lies in the open ring interval
// (a, b), handling wraparound.
func inOpenInterval(x, a, b uint64) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a // full circle minus the point
}

// Lookup routes a query for key from node src using iterative
// closest-preceding-finger routing and returns the responsible node
// plus the number of routing hops. A converged ring always succeeds.
func (c *Chord) Lookup(src int, key uint64) (owner, hops int) {
	target := mix64(key)
	ownerNode := int(c.successorNode(target))
	cur := src
	for cur != ownerNode {
		next := c.closestPreceding(cur, target)
		if next == cur {
			// No finger strictly precedes the target: the owner is our
			// direct successor; one final hop.
			next = int(c.successorNode(c.ids[cur] + 1))
		}
		cur = next
		hops++
		if hops > c.n {
			// Cannot happen on a converged ring; guard against bugs.
			panic("dht: lookup failed to converge")
		}
	}
	return ownerNode, hops
}

// closestPreceding returns the finger of u whose id most closely
// precedes target on the ring, or u itself when none does.
func (c *Chord) closestPreceding(u int, target uint64) int {
	f := c.fingers[u]
	uid := c.ids[u]
	for i := len(f) - 1; i >= 0; i-- {
		fid := c.ids[f[i]]
		if inOpenInterval(fid, uid, target) {
			return int(f[i])
		}
	}
	return u
}

// MeanFingerCount returns the average deduplicated finger-table size,
// the DHT's state-per-node metric (≈ log₂ n).
func (c *Chord) MeanFingerCount() float64 {
	total := 0
	for _, f := range c.fingers {
		total += len(f)
	}
	return float64(total) / float64(c.n)
}
