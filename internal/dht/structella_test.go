package dht

import (
	"math/rand"
	"testing"
)

func TestOverlayGraphStructure(t *testing.T) {
	c, err := New(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := c.OverlayGraph(nil)
	if g.N() != 500 {
		t.Fatalf("graph has %d nodes", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("chord finger graph must be connected (successors form a ring)")
	}
	// Every node holds ~log2(n) fingers; the undirected degree also
	// counts nodes that point AT us, so allow a wide band.
	if g.MeanDegree() < 5 || g.MeanDegree() > 40 {
		t.Fatalf("mean degree %.1f implausible", g.MeanDegree())
	}
	// Structella's selling point: guaranteed logarithmic diameter.
	if d := g.HopDiameter(); d > 12 {
		t.Fatalf("diameter %d not logarithmic for n=500", d)
	}
}

func TestOverlayGraphWeights(t *testing.T) {
	c, err := New(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := c.OverlayGraph(func(u, v int) float64 { return float64(u + v) })
	if g.Weights == nil || len(g.Weights) != len(g.Edges) {
		t.Fatal("weights missing")
	}
}

func TestOverlayGraphFloodCoverage(t *testing.T) {
	// A TTL-equal-to-diameter flood over the Chord graph reaches every
	// node — the Structella property for needle-in-haystack queries.
	c, err := New(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	g := c.OverlayGraph(nil)
	dist := make([]int32, g.N())
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		src := rng.Intn(g.N())
		g.BFS(src, dist, nil)
		for v, d := range dist {
			if d < 0 {
				t.Fatalf("node %d unreachable from %d", v, src)
			}
		}
	}
}
