package dht

import (
	"fmt"
	"sort"
)

// Kademlia is a converged Kademlia overlay at simulation level: the
// paper's related work (§6) credits Overnet/eDonkey's fast keyword
// lookups to this DHT, so it joins Chord as a structured reference
// point. Node ids live on a 64-bit XOR metric space; each node keeps
// exact k-buckets (one per shared-prefix length, up to K entries of
// the closest nodes in that bucket range), and lookups route greedily
// to the closest known node, converging in O(log n) hops.
type Kademlia struct {
	n       int
	k       int
	ids     []uint64 // ring id per node index
	byID    []int32  // node indexes sorted by id
	sorted  []uint64 // ids ascending (parallel to byID)
	buckets [][][]int32
}

// DefaultBucketSize is Kademlia's classic k = 20.
const DefaultBucketSize = 20

// NewKademlia builds a converged Kademlia network of n nodes with the
// given bucket size (0 means DefaultBucketSize).
func NewKademlia(n int, bucketSize int, seed int64) (*Kademlia, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dht: need positive node count, got %d", n)
	}
	if bucketSize <= 0 {
		bucketSize = DefaultBucketSize
	}
	k := &Kademlia{
		n:      n,
		k:      bucketSize,
		ids:    make([]uint64, n),
		sorted: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		k.ids[i] = mix64(uint64(seed)<<32 ^ uint64(i) ^ 0x9e37)
		k.sorted[i] = k.ids[i]
	}
	sort.Slice(k.sorted, func(a, b int) bool { return k.sorted[a] < k.sorted[b] })
	for i := 1; i < n; i++ {
		if k.sorted[i] == k.sorted[i-1] {
			return nil, fmt.Errorf("dht: kademlia id collision; change the seed")
		}
	}
	pos := make(map[uint64]int32, n)
	for i, id := range k.ids {
		pos[id] = int32(i)
	}
	k.byID = make([]int32, n)
	for i, id := range k.sorted {
		k.byID[i] = pos[id]
	}
	k.fillBuckets()
	return k, nil
}

// fillBuckets populates every node's 64 k-buckets. Bucket b of node u
// covers exactly the ids agreeing with u's id above bit b and
// differing at bit b — a contiguous numeric interval
// [prefix|flipped-bit|0…0, prefix|flipped-bit|1…1] — so each bucket
// fills with one binary search over the sorted id list: O(64·log n)
// per node instead of the naive O(n). Buckets hold up to K members of
// their range (Kademlia does not require the closest K; any K live
// contacts in the range are valid).
func (k *Kademlia) fillBuckets() {
	k.buckets = make([][][]int32, k.n)
	for u := 0; u < k.n; u++ {
		k.buckets[u] = make([][]int32, 64)
		uid := k.ids[u]
		for b := 0; b < 64; b++ {
			var lo uint64
			if b < 63 {
				lo = uid >> (b + 1) << (b + 1)
			}
			lo |= (^uid) & (1 << b) // flip bit b, zero the rest below
			hi := lo | ((uint64(1) << b) - 1)
			start := sort.Search(k.n, func(i int) bool { return k.sorted[i] >= lo })
			count := 0
			for i := start; i < k.n && k.sorted[i] <= hi && count < k.k; i++ {
				k.buckets[u][b] = append(k.buckets[u][b], k.byID[i])
				count++
			}
		}
	}
}

// N returns the node count.
func (k *Kademlia) N() int { return k.n }

// ID returns node u's id.
func (k *Kademlia) ID(u int) uint64 { return k.ids[u] }

// Owner returns the node whose id is XOR-closest to the key.
func (k *Kademlia) Owner(key uint64) int {
	target := mix64(key)
	best, bestD := 0, k.ids[0]^target
	// Binary search the sorted ids for the numeric neighborhood, then
	// scan outwards: the XOR-closest id is always numerically near the
	// target or differs in a high bit — so check both search sides and
	// a window around them, falling back to a full scan only when the
	// window disagrees. Simpler and always correct: full scan (n is
	// simulation-scale).
	for v := 1; v < k.n; v++ {
		if d := k.ids[v] ^ target; d < bestD {
			best, bestD = v, d
		}
	}
	return best
}

// Lookup routes a query for key from src by iterative greedy routing:
// at each step the current node forwards to the closest node it knows
// (its bucket for the target's prefix, or any closer bucket entry).
// Returns the owner and the hop count.
func (k *Kademlia) Lookup(src int, key uint64) (owner, hops int) {
	target := mix64(key)
	ownerNode := k.Owner(key)
	cur := src
	for cur != ownerNode {
		next := k.closestKnown(cur, target)
		if next == cur {
			// No strictly closer contact: on a converged network this
			// means cur's closest known IS the owner-adjacent gap;
			// jump to owner directly costs one hop (the final contact).
			next = ownerNode
		}
		cur = next
		hops++
		if hops > k.n {
			panic("dht: kademlia lookup failed to converge")
		}
	}
	return ownerNode, hops
}

// closestKnown returns the contact of cur XOR-closest to target, or
// cur itself when no contact is closer.
func (k *Kademlia) closestKnown(cur int, target uint64) int {
	curD := k.ids[cur] ^ target
	best, bestD := cur, curD
	for _, bucket := range k.buckets[cur] {
		for _, v := range bucket {
			if d := k.ids[v] ^ target; d < bestD {
				best, bestD = int(v), d
			}
		}
	}
	return best
}

// MeanContacts returns the mean routing-table size (state per node).
func (k *Kademlia) MeanContacts() float64 {
	total := 0
	for _, bs := range k.buckets {
		for _, b := range bs {
			total += len(b)
		}
	}
	return float64(total) / float64(k.n)
}
