package dht

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("zero nodes should fail")
	}
}

func TestOwnerIsSuccessor(t *testing.T) {
	c, err := New(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		key := rng.Uint64()
		owner := c.Owner(key)
		target := mix64(key)
		oid := c.ID(owner)
		// No other node id may lie in (target, oid) — owner is the
		// first node at or after the key position.
		for u := 0; u < c.N(); u++ {
			if u == owner {
				continue
			}
			if inHalfOpen(c.ID(u), target, oid) {
				t.Fatalf("node %d (id %x) lies between key %x and owner %x",
					u, c.ID(u), target, oid)
			}
		}
	}
}

// inHalfOpen reports x in [a, b) on the ring.
func inHalfOpen(x, a, b uint64) bool {
	if a == b {
		return false
	}
	if a < b {
		return x >= a && x < b
	}
	return x >= a || x < b
}

func TestLookupFindsOwnerFromEverywhere(t *testing.T) {
	c, err := New(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		key := rng.Uint64()
		want := c.Owner(key)
		src := rng.Intn(c.N())
		got, hops := c.Lookup(src, key)
		if got != want {
			t.Fatalf("lookup owner %d, want %d", got, want)
		}
		if src == want && hops != 0 {
			t.Fatalf("lookup from the owner should be free, took %d hops", hops)
		}
		if hops < 0 || hops > c.N() {
			t.Fatalf("absurd hop count %d", hops)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	// Expected lookup cost is ~½·log₂(n); allow generous slack but
	// catch linear behavior.
	for _, n := range []int{256, 2048} {
		c, err := New(n, 5)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		total := 0
		queries := 300
		for i := 0; i < queries; i++ {
			_, hops := c.Lookup(rng.Intn(n), rng.Uint64())
			total += hops
		}
		mean := float64(total) / float64(queries)
		log2n := math.Log2(float64(n))
		if mean > 1.5*log2n {
			t.Fatalf("n=%d: mean hops %.2f vs log2(n)=%.2f — not logarithmic", n, mean, log2n)
		}
		if mean < 0.2*log2n {
			t.Fatalf("n=%d: mean hops %.2f suspiciously low", n, mean)
		}
	}
}

func TestSingleNodeRing(t *testing.T) {
	c, err := New(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	owner, hops := c.Lookup(0, 12345)
	if owner != 0 || hops != 0 {
		t.Fatalf("single-node lookup: owner=%d hops=%d", owner, hops)
	}
}

func TestMeanFingerCount(t *testing.T) {
	c, err := New(1024, 9)
	if err != nil {
		t.Fatal(err)
	}
	mf := c.MeanFingerCount()
	// Deduplicated fingers ≈ log2(n) = 10; allow wide band.
	if mf < 5 || mf > 20 {
		t.Fatalf("mean finger count %.1f outside plausible range", mf)
	}
}

func TestOwnershipPartitionProperty(t *testing.T) {
	// Every key has exactly one owner, and lookups from random sources
	// agree with Owner.
	c, err := New(50, 11)
	if err != nil {
		t.Fatal(err)
	}
	f := func(key uint64, srcRaw uint8) bool {
		src := int(srcRaw) % c.N()
		got, _ := c.Lookup(src, key)
		return got == c.Owner(key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInOpenInterval(t *testing.T) {
	cases := []struct {
		x, a, b uint64
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, false},
		{0, 10, 2, true},  // wraparound
		{11, 10, 2, true}, // wraparound
		{5, 10, 2, false},
		{7, 3, 3, true},  // full circle
		{3, 3, 3, false}, // the excluded point
	}
	for _, tc := range cases {
		if got := inOpenInterval(tc.x, tc.a, tc.b); got != tc.want {
			t.Fatalf("inOpenInterval(%d,%d,%d) = %v, want %v", tc.x, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(128, 13)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(128, 13)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 128; u++ {
		if a.ID(u) != b.ID(u) {
			t.Fatal("ring ids must be deterministic")
		}
	}
	owner1, hops1 := a.Lookup(5, 999)
	owner2, hops2 := b.Lookup(5, 999)
	if owner1 != owner2 || hops1 != hops2 {
		t.Fatal("lookups must be deterministic")
	}
}
