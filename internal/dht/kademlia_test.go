package dht

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKademliaValidation(t *testing.T) {
	if _, err := NewKademlia(0, 20, 1); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestKademliaBucketsCoverCorrectRanges(t *testing.T) {
	k, err := NewKademlia(300, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every bucket entry of node u must share u's prefix above bit b
	// and differ at bit b.
	for u := 0; u < 300; u += 17 {
		uid := k.ID(u)
		for b, bucket := range k.buckets[u] {
			for _, v := range bucket {
				d := uid ^ k.ID(int(v))
				if got := 63 - bits.LeadingZeros64(d); got != b {
					t.Fatalf("node %d bucket %d holds node with top differing bit %d", u, b, got)
				}
			}
			if len(bucket) > k.k {
				t.Fatalf("bucket exceeds k: %d", len(bucket))
			}
		}
	}
}

func TestKademliaOwnerIsXORClosest(t *testing.T) {
	k, err := NewKademlia(200, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		key := rng.Uint64()
		owner := k.Owner(key)
		target := mix64(key)
		for v := 0; v < 200; v++ {
			if k.ID(v)^target < k.ID(owner)^target {
				t.Fatalf("node %d closer than owner %d", v, owner)
			}
		}
	}
}

func TestKademliaLookupCorrectFromEverywhere(t *testing.T) {
	k, err := NewKademlia(128, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(key uint64, srcRaw uint8) bool {
		src := int(srcRaw) % 128
		owner, hops := k.Lookup(src, key)
		return owner == k.Owner(key) && hops >= 0 && hops <= 128
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKademliaLookupLogarithmic(t *testing.T) {
	for _, n := range []int{512, 4096} {
		k, err := NewKademlia(n, 20, 5)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		total, queries := 0, 300
		for i := 0; i < queries; i++ {
			_, hops := k.Lookup(rng.Intn(n), rng.Uint64())
			total += hops
		}
		mean := float64(total) / float64(queries)
		if mean > math.Log2(float64(n)) {
			t.Fatalf("n=%d: mean hops %.2f above log2(n)=%.2f — Kademlia should beat Chord",
				n, mean, math.Log2(float64(n)))
		}
		if mean < 0.5 {
			t.Fatalf("n=%d: mean hops %.2f suspiciously low", n, mean)
		}
	}
}

func TestKademliaFromOwnerIsFree(t *testing.T) {
	k, err := NewKademlia(64, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		key := rng.Uint64()
		owner := k.Owner(key)
		if _, hops := k.Lookup(owner, key); hops != 0 {
			t.Fatalf("lookup from the owner took %d hops", hops)
		}
	}
}

func TestKademliaMeanContacts(t *testing.T) {
	k, err := NewKademlia(2048, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	mc := k.MeanContacts()
	// ~log2(n) non-empty buckets, mostly full at k=20 for far ranges:
	// expect a few hundred contacts, far below n.
	if mc < 20 || mc > 500 {
		t.Fatalf("mean contacts %.0f implausible", mc)
	}
}

func TestKademliaSingleNode(t *testing.T) {
	k, err := NewKademlia(1, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	owner, hops := k.Lookup(0, 999)
	if owner != 0 || hops != 0 {
		t.Fatalf("owner=%d hops=%d", owner, hops)
	}
}

func TestKademliaDefaultBucketSize(t *testing.T) {
	k, err := NewKademlia(100, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if k.k != DefaultBucketSize {
		t.Fatalf("bucket size %d, want %d", k.k, DefaultBucketSize)
	}
}
