package dht

import "makalu/internal/graph"

// OverlayGraph returns the Chord topology as an undirected overlay
// graph: each node is linked to its (deduplicated) fingers. Flooding
// over this graph is the Structella idea the paper cites for
// very-low-replication workloads (§4.4): Castro et al. observed that
// a structured topology's guaranteed expansion lets an unstructured
// flood cover the whole network with no duplicate storms, at the cost
// of DHT maintenance.
//
// The latency function, when non-nil, assigns edge weights.
func (c *Chord) OverlayGraph(latency graph.WeightFunc) *graph.Graph {
	g := graph.NewMutable(c.n)
	for u := 0; u < c.n; u++ {
		for _, f := range c.fingers[u] {
			if int(f) != u {
				g.AddEdge(u, int(f))
			}
		}
	}
	return g.Freeze(latency)
}
