package experiments

import (
	"fmt"
	"sort"
	"strings"

	"makalu/internal/stats"
)

// RatingsResult is the E16 output: the distribution of the §2.1
// rating F(u,v) over every live link of the built Makalu overlay, and
// how the connectivity and proximity terms split the score. The paper
// argues the rating function is what steers the topology toward an
// expander; this experiment makes the steering signal itself visible
// — a healthy overlay shows few zero-unique links (every neighbor
// contributes fresh reach) and a balanced term split.
//
// The whole-overlay sweep runs through the batched parallel RateAll
// pass, so paper-scale N stays practical.
type RatingsResult struct {
	N     int
	Links int // directed (u,v) ratings measured

	MeanScore        float64
	P10, P50, P90    float64
	MeanConnectivity float64
	MeanProximity    float64
	// ZeroUniqueShare is the fraction of links whose neighbor adds no
	// unique reach — redundant links the next prune would sacrifice.
	ZeroUniqueShare float64
	// WorstLinkMean is the mean over nodes of their lowest-rated link:
	// the expected victim quality when a dial forces a prune.
	WorstLinkMean float64
}

// RunRatings builds the Makalu overlay at opt.N and measures the
// rating distribution over all live links with one RateAll pass.
func RunRatings(opt Options) (*RatingsResult, error) {
	nw, err := BuildMakalu(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	o := nw.Overlay
	all := o.RateAll(nil)

	res := &RatingsResult{N: opt.N}
	var scores []float64
	var connSum, proxSum, worstSum float64
	zeroUnique := 0
	nodesWithLinks := 0
	for u := range all {
		infos := all[u]
		if len(infos) == 0 {
			continue
		}
		nodesWithLinks++
		worst := infos[0].Score
		for _, in := range infos {
			scores = append(scores, in.Score)
			connSum += in.Connectivity
			proxSum += in.Proximity
			if in.Unique == 0 {
				zeroUnique++
			}
			if in.Score < worst {
				worst = in.Score
			}
		}
		worstSum += worst
	}
	res.Links = len(scores)
	if res.Links == 0 {
		return res, nil
	}
	sort.Float64s(scores)
	res.MeanScore = stats.Mean(scores)
	res.P10 = stats.SortedPercentile(scores, 10)
	res.P50 = stats.SortedPercentile(scores, 50)
	res.P90 = stats.SortedPercentile(scores, 90)
	res.MeanConnectivity = connSum / float64(res.Links)
	res.MeanProximity = proxSum / float64(res.Links)
	res.ZeroUniqueShare = float64(zeroUnique) / float64(res.Links)
	res.WorstLinkMean = worstSum / float64(nodesWithLinks)
	return res, nil
}

// Render formats the E16 summary.
func (r *RatingsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E16 (§2.1, extra) Rating distribution over live links — %d nodes, %d links\n", r.N, r.Links)
	fmt.Fprintf(&b, "%-22s %10s\n", "statistic", "value")
	fmt.Fprintf(&b, "%-22s %10.4f\n", "mean score", r.MeanScore)
	fmt.Fprintf(&b, "%-22s %10.4f\n", "p10 score", r.P10)
	fmt.Fprintf(&b, "%-22s %10.4f\n", "median score", r.P50)
	fmt.Fprintf(&b, "%-22s %10.4f\n", "p90 score", r.P90)
	fmt.Fprintf(&b, "%-22s %10.4f\n", "mean connectivity", r.MeanConnectivity)
	fmt.Fprintf(&b, "%-22s %10.4f\n", "mean proximity", r.MeanProximity)
	fmt.Fprintf(&b, "%-22s %9.1f%%\n", "zero-unique links", 100*r.ZeroUniqueShare)
	fmt.Fprintf(&b, "%-22s %10.4f\n", "mean worst link", r.WorstLinkMean)
	return b.String()
}
