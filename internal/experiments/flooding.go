package experiments

import (
	"fmt"
	"strings"

	"makalu/internal/search"
	"makalu/internal/stats"
)

// Table1Cell is one topology's entry at one replication ratio.
type Table1Cell struct {
	MsgsPerQuery float64
	MinTTL       int
	SuccessRate  float64
}

// Table1Row groups the three topologies at one replication ratio.
type Table1Row struct {
	Replication  float64 // fraction, e.g. 0.0005 for 0.05%
	V04, V06, MK Table1Cell
}

// Table1Result is the E4 output.
type Table1Result struct {
	N       int
	Queries int
	Rows    []Table1Row
}

// RunTable1 reproduces Table 1: messages per query and the minimum TTL
// needed to resolve ≥95% of queries, for replication ratios 0.05%,
// 0.1%, 0.5% and 1% on the v0.4 power-law, v0.6 two-tier and Makalu
// topologies.
func RunTable1(opt Options) (*Table1Result, error) {
	nets, err := BuildAll(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	byName := map[TopologyName]*Network{}
	for _, nw := range nets {
		byName[nw.Name] = nw
	}
	res := &Table1Result{N: opt.N, Queries: opt.Queries}
	const target = 0.95
	const maxTTL = 12
	objects := 20
	repls := []float64{0.0005, 0.001, 0.005, 0.01}
	res.Rows = make([]Table1Row, len(repls))
	for ri, repl := range repls {
		res.Rows[ri].Replication = repl
	}

	// Every (replication, topology) pair is an independent cell: it
	// builds its own store (deterministic from the seed, cheap next to
	// the TTL sweep it feeds) and writes one Table1Cell slot, so the
	// scheduler can interleave the expensive v0.6 sweeps with the
	// cheaper flood cells. Query batches inside a cell stay sequential
	// (Workers: 1) — the grid itself is the parallelism here, and
	// nesting pools would oversubscribe the scheduler's own pool.
	const topos = 3
	err = RunCells(opt.Workers, len(repls)*topos, func(i int) error {
		ri, ti := i/topos, i%topos
		repl := repls[ri]
		store, err := PlaceObjects(opt.N, objects, repl, opt.Seed+int64(repl*1e6))
		if err != nil {
			return err
		}
		row := &res.Rows[ri]
		switch ti {
		case 0: // Makalu: plain flooding.
			ttl, agg := MinTTL(byName[TopoMakalu].Graph, store, maxTTL, opt.Queries, 1, target, opt.Seed+11, opt.Obs)
			row.MK = Table1Cell{MsgsPerQuery: agg.MeanMessages(), MinTTL: ttl, SuccessRate: agg.SuccessRate()}
		case 1: // v0.4: plain flooding.
			ttl, agg := MinTTL(byName[TopoV04].Graph, store, maxTTL, opt.Queries, 1, target, opt.Seed+13, opt.Obs)
			row.V04 = Table1Cell{MsgsPerQuery: agg.MeanMessages(), MinTTL: ttl, SuccessRate: agg.SuccessRate()}
		case 2: // v0.6: two-tier flooding; sweep the core TTL directly.
			v06 := byName[TopoV06]
			for t := 1; t <= maxTTL; t++ {
				agg, err := TwoTierFloodBatch(v06.Graph, v06.IsUltra, store, t, opt.Queries, 1, false, opt.Seed+17, opt.Obs)
				if err != nil {
					return err
				}
				if agg.SuccessRate() >= target || t == maxTTL {
					row.V06 = Table1Cell{MsgsPerQuery: agg.MeanMessages(), MinTTL: t, SuccessRate: agg.SuccessRate()}
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the E4 table in the paper's layout.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E4 (Table 1) Messages/query and min TTL (≥95%% success) — %d nodes, %d queries/cell\n", r.N, r.Queries)
	fmt.Fprintf(&b, "%-12s | %-21s | %-21s | %-21s\n", "", "Gnutella v0.4", "Gnutella v0.6", "Makalu")
	fmt.Fprintf(&b, "%-12s | %12s %8s | %12s %8s | %12s %8s\n",
		"Replication", "Msgs/Query", "MinTTL", "Msgs/Query", "MinTTL", "Msgs/Query", "MinTTL")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s | %12.2f %8d | %12.2f %8d | %12.2f %8d\n",
			fmt.Sprintf("%.2f%%", row.Replication*100),
			row.V04.MsgsPerQuery, row.V04.MinTTL,
			row.V06.MsgsPerQuery, row.V06.MinTTL,
			row.MK.MsgsPerQuery, row.MK.MinTTL)
	}
	return b.String()
}

// DuplicatesResult is the E5 (§4.3) output: flooding efficiency on the
// Makalu overlay.
type DuplicatesResult struct {
	N           int
	TTL         int
	Replication float64
	Agg         *search.Aggregate
}

// RunDuplicates reproduces §4.3: messages and duplicate ratio of
// Makalu floods at the given TTL and replication.
func RunDuplicates(opt Options, ttl int, replication float64) (*DuplicatesResult, error) {
	mk, err := BuildMakalu(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	store, err := PlaceObjects(opt.N, 20, replication, opt.Seed+5)
	if err != nil {
		return nil, err
	}
	agg := FloodBatch(mk.Graph, store, ttl, opt.Queries, opt.Workers, opt.Seed+19, opt.Obs)
	return &DuplicatesResult{N: opt.N, TTL: ttl, Replication: replication, Agg: agg}, nil
}

// Render formats the E5 summary.
func (r *DuplicatesResult) Render() string {
	return fmt.Sprintf(
		"E5 (§4.3) Makalu flooding efficiency — %d nodes, TTL %d, %.2f%% replication\n"+
			"  messages/query: %.1f  duplicates: %.2f%%  success: %.1f%%  visited/query: %.1f\n",
		r.N, r.TTL, r.Replication*100,
		r.Agg.MeanMessages(), 100*r.Agg.DuplicateRatio(), 100*r.Agg.SuccessRate(), r.Agg.MeanVisited())
}

// ScalingPoint is one point of Figure 2 (messages/query vs N).
type ScalingPoint struct {
	N            int
	MsgsPerQuery float64
	SuccessRate  float64
}

// Figure2Result is the E6 output.
type Figure2Result struct {
	TTL         int
	Replication float64
	Points      []ScalingPoint
	LogLogSlope float64 // sub-linear scaling exponent (< 1)
}

// RunFigure2 reproduces Figure 2: messages per query on Makalu
// overlays of growing size at fixed TTL 4 and 1% replication. Sizes
// sweep 100..maxN in half-decade steps.
func RunFigure2(opt Options) (*Figure2Result, error) {
	res := &Figure2Result{TTL: 4, Replication: 0.01}
	sizes := sizesUpTo(opt.N)
	res.Points = make([]ScalingPoint, len(sizes))
	// One cell per network size: each builds its own overlay and store,
	// so the small networks finish while the largest is still flooding.
	err := RunCells(opt.Workers, len(sizes), func(i int) error {
		n := sizes[i]
		mk, err := BuildMakalu(n, opt.Seed)
		if err != nil {
			return err
		}
		store, err := PlaceObjects(n, 20, res.Replication, opt.Seed+23)
		if err != nil {
			return err
		}
		agg := FloodBatch(mk.Graph, store, res.TTL, opt.Queries, 1, opt.Seed+29, opt.Obs)
		res.Points[i] = ScalingPoint{
			N: n, MsgsPerQuery: agg.MeanMessages(), SuccessRate: agg.SuccessRate(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, p := range res.Points {
		xs = append(xs, float64(p.N))
		ys = append(ys, p.MsgsPerQuery)
	}
	res.LogLogSlope = stats.LogLogSlope(xs, ys)
	return res, nil
}

// sizesUpTo filters the half-decade size sweep to at most maxN.
func sizesUpTo(maxN int) []int {
	all := []int{100, 200, 500, 1000, 2000, 5000, 10000, 100000}
	var out []int
	for _, n := range all {
		if n > maxN {
			break
		}
		out = append(out, n)
	}
	return out
}

// Render formats the E6 series.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E6 (Figure 2) Messages/query vs network size — TTL %d, %.0f%% replication\n",
		r.TTL, r.Replication*100)
	fmt.Fprintf(&b, "%10s %14s %10s\n", "N", "Msgs/Query", "Success")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10s %14.2f %9.1f%%\n", fmtInt(int64(p.N)), p.MsgsPerQuery, 100*p.SuccessRate)
	}
	fmt.Fprintf(&b, "log-log slope: %.3f (sub-linear when < 1)\n", r.LogLogSlope)
	return b.String()
}

// SuccessCurve is one network size's success-vs-TTL curve (Figure 3).
type SuccessCurve struct {
	N       int
	Success []float64 // index = TTL, 0..maxTTL
}

// Figure3Result is the E7 output.
type Figure3Result struct {
	Replication float64
	MaxTTL      int
	Curves      []SuccessCurve
}

// RunFigure3 reproduces Figure 3: success rate vs flooding TTL for
// Makalu networks of various sizes at 1% replication. Each curve is
// derived from one max-TTL batch: a query succeeds at TTL t iff its
// first match lies within t hops.
func RunFigure3(opt Options) (*Figure3Result, error) {
	res := &Figure3Result{Replication: 0.01, MaxTTL: 4}
	sizes := sizesUpTo(opt.N)
	res.Curves = make([]SuccessCurve, len(sizes))
	err := RunCells(opt.Workers, len(sizes), func(i int) error {
		n := sizes[i]
		mk, err := BuildMakalu(n, opt.Seed)
		if err != nil {
			return err
		}
		store, err := PlaceObjects(n, 20, res.Replication, opt.Seed+31)
		if err != nil {
			return err
		}
		agg := FloodBatch(mk.Graph, store, res.MaxTTL, opt.Queries, 1, opt.Seed+37, opt.Obs)
		curve := SuccessCurve{N: n, Success: make([]float64, res.MaxTTL+1)}
		for ttl := 0; ttl <= res.MaxTTL; ttl++ {
			hits := 0
			for _, h := range agg.Hops.Values() {
				if h <= ttl {
					hits += int(agg.Hops.Count(h))
				}
			}
			curve.Success[ttl] = float64(hits) / float64(agg.Queries)
		}
		res.Curves[i] = curve
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the E7 curves.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E7 (Figure 3) Success rate vs TTL — %.0f%% replication\n", r.Replication*100)
	fmt.Fprintf(&b, "%10s", "N \\ TTL")
	for ttl := 0; ttl <= r.MaxTTL; ttl++ {
		fmt.Fprintf(&b, " %7d", ttl)
	}
	b.WriteString("\n")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%10s", fmtInt(int64(c.N)))
		for _, s := range c.Success {
			fmt.Fprintf(&b, " %6.1f%%", 100*s)
		}
		b.WriteString("\n")
	}
	return b.String()
}
