// Package experiments contains one driver per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index, E1–E11).
// Every driver takes an Options value so the same code runs both the
// scaled-down defaults (minutes on a laptop core) and the paper-scale
// parameters (-n 100000).
package experiments

import (
	"fmt"
	"math/rand"

	"makalu/internal/content"
	"makalu/internal/core"
	"makalu/internal/graph"
	"makalu/internal/netmodel"
	"makalu/internal/search"
	"makalu/internal/topology"
)

// Options parameterizes an experiment run.
type Options struct {
	N       int   // network size
	Queries int   // queries per measurement point
	Seed    int64 // master seed; every derived component offsets it
	// Workers bounds the goroutines used for query batches and for the
	// cell scheduler that evaluates independent (topology, TTL,
	// replication) cells concurrently. 0 means GOMAXPROCS, 1 forces
	// fully sequential execution. Results are identical at any setting:
	// every query's randomness derives from (batch seed, query index)
	// and every cell writes only its own output slot.
	Workers int
	// Obs, when non-nil, accumulates per-query latency/hop/message
	// histograms across every batch the experiment runs. It never
	// feeds back into results — the deterministic Aggregate stays
	// bit-identical with or without it.
	Obs *search.BatchObs
}

// DefaultOptions returns sizes that keep the full experiment suite in
// the minutes range on a single core. The paper-scale run uses
// N = 100000 and Queries = 1000 × 100 runs.
func DefaultOptions() Options {
	return Options{N: 2000, Queries: 300, Seed: 1}
}

// TopologyName labels the overlays under comparison.
type TopologyName string

const (
	TopoMakalu   TopologyName = "Makalu"
	TopoKRegular TopologyName = "k-regular"
	TopoV04      TopologyName = "Gnutella v0.4"
	TopoV06      TopologyName = "Gnutella v0.6"
)

// Network bundles a frozen overlay graph with the metadata search
// engines need.
type Network struct {
	Name    TopologyName
	Graph   *graph.Graph
	IsUltra []bool        // non-nil for the two-tier topology
	Overlay *core.Overlay // non-nil for Makalu
}

// BuildMakalu constructs the Makalu overlay at size n over a Euclidean
// plane (the paper's primary network model) and returns it frozen with
// latencies.
func BuildMakalu(n int, seed int64) (*Network, error) {
	net := netmodel.NewEuclidean(n, 1000, seed)
	o, err := core.Build(n, core.DefaultConfig(net, seed))
	if err != nil {
		return nil, err
	}
	return &Network{Name: TopoMakalu, Graph: o.Freeze(), Overlay: o}, nil
}

// BuildAll constructs the four comparison topologies at size n with
// comparable mean degree, as in §3.1: Makalu and the k-regular ideal
// at mean degree ≈ 10–11, the measured Gnutella v0.4 and v0.6
// parameter sets.
func BuildAll(n int, seed int64) ([]*Network, error) {
	mk, err := BuildMakalu(n, seed)
	if err != nil {
		return nil, err
	}
	kr, err := topology.KRegular(n, 8, seed+1)
	if err != nil {
		return nil, err
	}
	plCfg := topology.DefaultPowerLaw()
	plCfg.Seed = seed + 2
	pl := topology.PowerLaw(n, plCfg)
	ttCfg := topology.DefaultTwoTier()
	ttCfg.Seed = seed + 3
	tt := topology.NewTwoTier(n, ttCfg)

	euc := netmodel.NewEuclidean(n, 1000, seed)
	w := func(u, v int) float64 { return euc.Latency(u, v) }
	return []*Network{
		mk,
		{Name: TopoKRegular, Graph: kr.Freeze(w)},
		{Name: TopoV04, Graph: pl.Freeze(w)},
		{Name: TopoV06, Graph: tt.Graph.Freeze(w), IsUltra: tt.IsUltra},
	}, nil
}

// FloodBatch runs `queries` flooding searches on g: each query picks a
// uniform random object from the store and a uniform random source,
// floods with the given TTL, and matches nodes hosting the object.
// Queries run on the search.BatchRunner engine: sharded over `workers`
// goroutines (0 = GOMAXPROCS), each owning a reusable Flooder kernel,
// with per-query seeds derived from (seed, query index) so the
// aggregate is identical at any worker count.
func FloodBatch(g *graph.Graph, store *content.Store, ttl, queries, workers int, seed int64, o *search.BatchObs) *search.Aggregate {
	br := &search.BatchRunner{Graph: g, Workers: workers, Seed: seed, Obs: o}
	return br.Run(queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(g.N())
		return k.Flooder().Flood(src, ttl, func(u int) bool { return store.Has(u, obj) })
	})
}

// TwoTierFloodBatch is FloodBatch for the v0.6 two-tier topology.
// useQRP=false reproduces the paper's measured behaviour (ultrapeers
// forward the query to every neighbor, leaves included — the source
// of the 38.4 fan-out); useQRP=true is the gated ablation, where each
// leaf uploads a QRP table and only plausible matches are bothered.
func TwoTierFloodBatch(g *graph.Graph, isUltra []bool, store *content.Store, ttl, queries, workers int, useQRP bool, seed int64, o *search.BatchObs) (*search.Aggregate, error) {
	qrp := make([]*content.QRPTable, g.N())
	if useQRP {
		for u := 0; u < g.N(); u++ {
			if !isUltra[u] {
				qrp[u] = content.BuildQRPTable(store, u, 1024, 3)
			}
		}
	}
	// Validate the layout once up front; worker kernels then wire their
	// own flooders from the same (now known-good) slices.
	if _, err := search.NewTwoTierFlooder(g, isUltra, qrp); err != nil {
		return nil, err
	}
	br := &search.BatchRunner{Graph: g, Workers: workers, Seed: seed, Obs: o}
	agg := br.Run(queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
		fl, _ := k.TwoTier(isUltra, qrp)
		obj := store.RandomObject(rng)
		src := rng.Intn(g.N())
		return fl.Flood(src, ttl, obj, func(u int) bool { return store.Has(u, obj) })
	})
	return agg, nil
}

// MinTTL finds the smallest TTL in [1, maxTTL] whose flooding success
// rate reaches target, returning it with the aggregate measured at
// that TTL. When no TTL reaches the target it returns maxTTL and its
// aggregate. The derivation uses a single max-TTL batch: a flood
// succeeds at TTL t iff its first match lies within t hops.
func MinTTL(g *graph.Graph, store *content.Store, maxTTL, queries, workers int, target float64, seed int64, o *search.BatchObs) (int, *search.Aggregate) {
	full := FloodBatch(g, store, maxTTL, queries, workers, seed, o)
	for ttl := 1; ttl < maxTTL; ttl++ {
		hits := 0
		for _, h := range full.Hops.Values() {
			if h <= ttl {
				hits += int(full.Hops.Count(h))
			}
		}
		if float64(hits)/float64(full.Queries) >= target {
			// Re-measure message cost at this exact TTL.
			return ttl, FloodBatch(g, store, ttl, queries, workers, seed, o)
		}
	}
	return maxTTL, full
}

// PlaceObjects is a convenience wrapper for the experiments' standard
// placement: `objects` distinct objects at the given replication ratio
// (with at least one copy).
func PlaceObjects(n, objects int, replication float64, seed int64) (*content.Store, error) {
	return content.Place(n, content.PlacementConfig{
		Objects:     objects,
		Replication: replication,
		MinReplicas: 1,
		Seed:        seed,
	})
}

// fmtInt renders an integer with thousands separators for the tables.
func fmtInt(v int64) string {
	s := fmt.Sprintf("%d", v)
	if v < 0 {
		return s
	}
	out := ""
	for i, c := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			out += ","
		}
		out += string(c)
	}
	return out
}
