package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"makalu/internal/content"
	"makalu/internal/core"
	"makalu/internal/netmodel"
	"makalu/internal/obs"
	"makalu/internal/search"
	"makalu/internal/sim"
	"makalu/internal/stats"
	"makalu/internal/stream"
)

// StreamOptions parameterizes the chunked-transfer sweep (-exp stream):
// a Makalu overlay with placed content and the attenuated-Bloom
// identifier index, over which a batch of chunked downloads runs twice
// — once on a quiet overlay and once under the PR 2 churn process plus
// a deterministic kill wave that removes an active source from every
// in-flight transfer. Times are simulated milliseconds (the Euclidean
// netmodel's unit).
type StreamOptions struct {
	N           int     // overlay size
	Seed        int64   // master seed; sub-processes derive from it
	Objects     int     // distinct objects placed
	Replication float64 // replica fraction per object
	MinReplicas int     // replica floor per object
	ObjectBytes int64   // size of each transferred object
	ChunkBytes  int     // chunk size (0 = content.DefaultChunkSize)
	Transfers   int     // downloads per scenario
	Stagger     float64 // gap between consecutive transfer starts

	MaxSources   int     // parallel replicas per transfer
	Window       int     // per-source in-flight chunk window
	ChunkTimeout float64 // per-chunk deadline before source eviction
	Deadline     float64 // per-transfer failure deadline
	ABFTTL       int     // hop budget per identifier lookup
	ABFTries     int     // lookup attempts per wanted replica

	Duration     float64 // churn scenario length
	MeanSession  float64 // mean node uptime
	MeanDowntime float64 // mean downtime before rejoin
	KillWaveAt   float64 // when the kill wave strikes active sources

	Obs *obs.Registry // optional metrics sink (nil = off)
}

// DefaultStreamOptions sizes the sweep for CI: a 1000-node overlay,
// 24 one-MiB downloads (16 chunks of 64 KiB each), and a churn process
// aggressive enough that transfers must survive source deaths.
//
// ChunkTimeout must exceed window·tx + RTT (here 4·52 + 2·1414 ≈ 3 s
// at the Euclidean latency tail) or healthy-but-queued sources get
// falsely evicted; 6 s leaves room for upload-queueing on shared
// replicas.
func DefaultStreamOptions(n int, seed int64) StreamOptions {
	return StreamOptions{
		N:            n,
		Seed:         seed,
		Objects:      50,
		Replication:  0.02,
		MinReplicas:  5,
		ObjectBytes:  1 << 20,
		ChunkBytes:   content.DefaultChunkSize,
		Transfers:    24,
		Stagger:      100,
		MaxSources:   3,
		Window:       4,
		ChunkTimeout: 6000,
		Deadline:     30000,
		ABFTTL:       64,
		ABFTries:     4,
		Duration:     40000,
		MeanSession:  25000,
		MeanDowntime: 8000,
		KillWaveAt:   1200,
	}
}

// StreamRow is one scenario's aggregate outcome. Goodput is payload
// bytes per simulated millisecond; multiply by 8000 for bits/s under
// the ms interpretation.
type StreamRow struct {
	Label             string  `json:"label"`
	Transfers         int     `json:"transfers"`
	Completed         int     `json:"completed"`
	Failed            int     `json:"failed"`
	CompletedFraction float64 `json:"completed_fraction"`
	GoodputMean       float64 `json:"goodput_mean_bytes_per_ms"`
	GoodputP50        float64 `json:"goodput_p50_bytes_per_ms"`
	TTFBP50           float64 `json:"ttfb_p50_ms"`
	ElapsedP50        float64 `json:"elapsed_p50_ms"`
	StallRateMean     float64 `json:"stall_rate_mean"`
	Timeouts          int     `json:"timeouts"`
	ReRequests        int     `json:"re_requests"`
	Rediscoveries     int     `json:"rediscoveries"`
	SourcesEvicted    int     `json:"sources_evicted"`
	SourcesKilled     int     `json:"sources_killed"`
	// KilledMidTransfer is the number of in-flight transfers whose
	// active source the kill wave removed (0 in the steady scenario).
	KilledMidTransfer int `json:"killed_mid_transfer"`
	Departures        int `json:"departures"`
	Rejoins           int `json:"rejoins"`
}

// StreamResult is the full -exp stream record, the shape committed as
// BENCH_stream.json.
type StreamResult struct {
	N            int         `json:"n"`
	Seed         int64       `json:"seed"`
	Objects      int         `json:"objects"`
	ObjectBytes  int64       `json:"object_bytes"`
	ChunkBytes   int         `json:"chunk_bytes"`
	Transfers    int         `json:"transfers"`
	MaxSources   int         `json:"max_sources"`
	Window       int         `json:"window"`
	ChunkTimeout float64     `json:"chunk_timeout_ms"`
	Rows         []StreamRow `json:"rows"`
}

// Render formats the sweep as the text table the CLI prints.
func (r *StreamResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chunked streaming over the overlay (n=%d, %d transfers of %d KiB in %d KiB chunks, %d sources, window %d)\n",
		r.N, r.Transfers, r.ObjectBytes>>10, r.ChunkBytes>>10, r.MaxSources, r.Window)
	fmt.Fprintf(&b, "%-8s %9s %6s %12s %11s %9s %10s %7s %6s %7s %7s %6s\n",
		"scenario", "completed", "frac", "goodput B/ms", "goodput p50", "ttfb p50", "stall rate", "timeout", "rereq", "rediscv", "evicted", "waved")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %5d/%-3d %6.3f %12.1f %11.1f %9.1f %10.4f %7d %6d %7d %7d %6d\n",
			row.Label, row.Completed, row.Transfers, row.CompletedFraction,
			row.GoodputMean, row.GoodputP50, row.TTFBP50, row.StallRateMean,
			row.Timeouts, row.ReRequests, row.Rediscoveries, row.SourcesEvicted, row.KilledMidTransfer)
	}
	if len(r.Rows) == 2 {
		fmt.Fprintf(&b, "churn: %d departures, %d rejoins; %d transfers lost an active source to the kill wave\n",
			r.Rows[1].Departures, r.Rows[1].Rejoins, r.Rows[1].KilledMidTransfer)
	}
	return strings.TrimRight(b.String(), "\n")
}

// RunStream executes the steady and churn streaming scenarios and
// aggregates their transfer results. Both scenarios are deterministic
// given opt.Seed.
func RunStream(opt StreamOptions) (*StreamResult, error) {
	if opt.ChunkBytes <= 0 {
		opt.ChunkBytes = content.DefaultChunkSize
	}
	res := &StreamResult{
		N: opt.N, Seed: opt.Seed, Objects: opt.Objects,
		ObjectBytes: opt.ObjectBytes, ChunkBytes: opt.ChunkBytes,
		Transfers: opt.Transfers, MaxSources: opt.MaxSources,
		Window: opt.Window, ChunkTimeout: opt.ChunkTimeout,
	}
	steady, err := runStreamScenario(opt, false)
	if err != nil {
		return nil, fmt.Errorf("steady scenario: %w", err)
	}
	res.Rows = append(res.Rows, steady)
	churn, err := runStreamScenario(opt, true)
	if err != nil {
		return nil, fmt.Errorf("churn scenario: %w", err)
	}
	res.Rows = append(res.Rows, churn)
	return res, nil
}

// runStreamScenario builds a fresh overlay (churn mutates it in place,
// so the scenarios cannot share one), places content, builds the ABF
// identifier index on the pre-churn graph — the index is deliberately
// stale under churn, which is why discovery can return dead replicas
// and the chunk-timeout path has to be the liveness oracle — and runs
// opt.Transfers staggered downloads on one discrete-event timeline.
func runStreamScenario(opt StreamOptions, churn bool) (StreamRow, error) {
	label := "steady"
	if churn {
		label = "churn"
	}
	row := StreamRow{Label: label, Transfers: opt.Transfers}

	net := netmodel.NewEuclidean(opt.N, 1000, opt.Seed)
	o, err := core.Build(opt.N, core.DefaultConfig(net, opt.Seed))
	if err != nil {
		return row, err
	}
	g := o.Freeze()
	store, err := content.Place(opt.N, content.PlacementConfig{
		Objects:     opt.Objects,
		Replication: opt.Replication,
		MinReplicas: opt.MinReplicas,
		Seed:        opt.Seed + 1,
	})
	if err != nil {
		return row, err
	}
	abf, err := search.BuildABFNetwork(g, store, search.DefaultABFConfig())
	if err != nil {
		return row, err
	}
	loc := stream.NewABFLocator(abf, opt.N, opt.ABFTTL, opt.ABFTries, opt.Seed+2)

	eng := &sim.Engine{}
	live := stream.Liveness(stream.AllAlive{})
	var ch *sim.Churn
	if churn {
		live = o
		ch, err = sim.StartChurn(eng, o, sim.ChurnConfig{
			Duration:         opt.Duration,
			MeanSession:      opt.MeanSession,
			MeanDowntime:     opt.MeanDowntime,
			ManageInterval:   2000,
			SnapshotInterval: 10000,
			Seed:             opt.Seed + 3,
		})
		if err != nil {
			return row, err
		}
	}
	sw := stream.NewSwarm(eng, net, live, loc, stream.Config{
		PerSourceWindow: opt.Window,
		MaxSources:      opt.MaxSources,
		ChunkTimeout:    opt.ChunkTimeout,
		Deadline:        opt.Deadline,
	}, stream.NewObs(opt.Obs))

	// Stagger the downloads from rotating clients. The client itself is
	// not subject to churn-death semantics — it models the downloading
	// user's own machine, and a user who leaves abandons the result
	// either way.
	rng := rand.New(rand.NewSource(opt.Seed + 4))
	objs := store.Objects()
	for i := 0; i < opt.Transfers; i++ {
		obj := objs[i%len(objs)]
		man, err := content.BuildManifest(obj, opt.ObjectBytes, opt.ChunkBytes)
		if err != nil {
			return row, err
		}
		client := rng.Intn(opt.N)
		eng.ScheduleAt(float64(i)*opt.Stagger, func() {
			sw.Start(client, man, nil)
		})
	}

	if churn {
		// The kill wave: at a fixed instant, fail one currently-alive
		// active source of every in-flight transfer. This is the
		// acceptance scenario — a replica dies mid-download and the
		// transfer must finish from survivors — made deterministic
		// rather than left to churn's dice.
		eng.ScheduleAt(opt.KillWaveAt, func() {
			victims := make(map[int]bool)
			waved := 0
			for _, tr := range sw.Active() {
				for _, src := range tr.ActiveSources() {
					if o.Alive(src) && !victims[src] {
						victims[src] = true
						waved++
						break
					}
				}
			}
			if len(victims) == 0 {
				return
			}
			ids := make([]int, 0, len(victims))
			for u := range victims {
				ids = append(ids, u)
			}
			sort.Ints(ids)
			o.FailNodes(ids)
			row.KilledMidTransfer = waved
		})
		eng.RunUntil(opt.Duration)
		sw.AbortActive() // stragglers record partial results
		ch.Snapshot()
		row.Departures = ch.Result.Departures
		row.Rejoins = ch.Result.Rejoins
	} else {
		eng.Run()
	}

	results := sw.Results()
	var goodputs, ttfbs, elapsed, stallRates []float64
	for _, tr := range results {
		if tr.Completed {
			row.Completed++
			goodputs = append(goodputs, tr.Goodput())
			elapsed = append(elapsed, tr.Elapsed())
			stallRates = append(stallRates, tr.StallRate())
			if tr.TTFB >= 0 {
				ttfbs = append(ttfbs, tr.TTFB)
			}
		} else {
			row.Failed++
		}
		row.Timeouts += tr.Timeouts
		row.ReRequests += tr.ReRequests
		row.Rediscoveries += tr.Rediscoveries
		row.SourcesEvicted += tr.SourcesEvicted
		row.SourcesKilled += tr.SourcesKilled
	}
	if row.Transfers > 0 {
		row.CompletedFraction = float64(row.Completed) / float64(row.Transfers)
	}
	if len(goodputs) > 0 {
		row.GoodputMean = stats.Mean(goodputs)
		row.GoodputP50 = stats.Median(goodputs)
		row.ElapsedP50 = stats.Median(elapsed)
		row.StallRateMean = stats.Mean(stallRates)
	}
	if len(ttfbs) > 0 {
		row.TTFBP50 = stats.Median(ttfbs)
	}
	return row, nil
}
