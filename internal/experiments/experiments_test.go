package experiments

import (
	"strings"
	"testing"
)

// smallOpts keeps experiment smoke tests fast.
func smallOpts() Options { return Options{N: 600, Queries: 60, Seed: 1} }

func TestBuildAllProducesFourComparableNetworks(t *testing.T) {
	nets, err := BuildAll(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 4 {
		t.Fatalf("got %d networks", len(nets))
	}
	seen := map[TopologyName]bool{}
	for _, nw := range nets {
		seen[nw.Name] = true
		if nw.Graph.N() != 500 {
			t.Fatalf("%s has %d nodes", nw.Name, nw.Graph.N())
		}
		if nw.Graph.Weights == nil {
			t.Fatalf("%s lacks latencies", nw.Name)
		}
	}
	for _, name := range []TopologyName{TopoMakalu, TopoKRegular, TopoV04, TopoV06} {
		if !seen[name] {
			t.Fatalf("missing topology %s", name)
		}
	}
}

func TestRunPathsOrdering(t *testing.T) {
	res, err := RunPaths(smallOpts(), 100)
	if err != nil {
		t.Fatal(err)
	}
	var mk, v04 PathRow
	for _, row := range res.Rows {
		switch row.Topology {
		case TopoMakalu:
			mk = row
		case TopoV04:
			v04 = row
		}
	}
	// §3.2: the power-law topology has a much larger diameter than
	// Makalu, and Makalu's path cost beats v0.4.
	if mk.HopDiameter >= v04.HopDiameter {
		t.Fatalf("Makalu diameter %d should beat v0.4 %d", mk.HopDiameter, v04.HopDiameter)
	}
	if mk.MeanCost >= v04.MeanCost {
		t.Fatalf("Makalu mean cost %.1f should beat v0.4 %.1f", mk.MeanCost, v04.MeanCost)
	}
	if !strings.Contains(res.Render(), "Makalu") {
		t.Fatal("render missing rows")
	}
}

func TestRunConnectivityOrdering(t *testing.T) {
	res, err := RunConnectivity(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	l := map[TopologyName]float64{}
	for _, row := range res.Rows {
		l[row.Topology] = row.Lambda1
	}
	// §3.3 ordering: v0.4 ≪ v0.6 < Makalu ≈ k-regular.
	if !(l[TopoV04] < l[TopoV06]) {
		t.Fatalf("v0.4 λ₁ %.3f should be below v0.6 %.3f", l[TopoV04], l[TopoV06])
	}
	if !(l[TopoV06] < l[TopoMakalu]) {
		t.Fatalf("v0.6 λ₁ %.3f should be below Makalu %.3f", l[TopoV06], l[TopoMakalu])
	}
	if l[TopoMakalu] < 0.5*l[TopoKRegular] {
		t.Fatalf("Makalu λ₁ %.3f should be near k-regular %.3f", l[TopoMakalu], l[TopoKRegular])
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestRunFigure1ConnectivitySurvives(t *testing.T) {
	opt := Options{N: 400, Queries: 10, Seed: 2}
	res, err := RunFigure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("expected 4 failure fractions, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		// The paper's Figure 1 claim: one connected component and few
		// weakly connected nodes even at 30% targeted failure.
		if s.ZeroMult != 1 {
			t.Fatalf("%s: multiplicity of 0 is %d, want 1", s.Label, s.ZeroMult)
		}
		if float64(s.OneMult) > 0.05*float64(res.N) {
			t.Fatalf("%s: eigenvalue-1 multiplicity %d too high", s.Label, s.OneMult)
		}
	}
	if !strings.Contains(res.Render(), "mult(0)") {
		t.Fatal("render malformed")
	}
}

func TestRunTable1Shape(t *testing.T) {
	opt := Options{N: 800, Queries: 80, Seed: 3}
	res, err := RunTable1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 replication rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MK.SuccessRate < 0.95 {
			t.Fatalf("repl %.2f%%: Makalu success %.2f below target", row.Replication*100, row.MK.SuccessRate)
		}
		// §4.2's scale-robust claim: Makalu halves the TTL the
		// power-law topology needs (paper: 3-4 vs 6-7). The message
		// ordering (Makalu ≪ v0.6 < v0.4) is a large-network effect —
		// it needs the required coverage to be a small fraction of
		// the graph, which a few hundred nodes cannot give; the
		// paper-scale run in EXPERIMENTS.md reproduces it.
		if row.MK.MinTTL > row.V04.MinTTL {
			t.Fatalf("repl %.2f%%: Makalu TTL %d should not exceed v0.4's %d",
				row.Replication*100, row.MK.MinTTL, row.V04.MinTTL)
		}
		if row.V04.SuccessRate >= 0.95 && row.MK.MinTTL*2 > row.V04.MinTTL+1 {
			t.Fatalf("repl %.2f%%: Makalu TTL %d is not ~half of v0.4's %d",
				row.Replication*100, row.MK.MinTTL, row.V04.MinTTL)
		}
	}
	// Higher replication needs fewer or equal messages/TTL.
	if res.Rows[0].MK.MinTTL < res.Rows[3].MK.MinTTL {
		t.Fatal("min TTL should not grow with replication")
	}
	if !strings.Contains(res.Render(), "Replication") {
		t.Fatal("render malformed")
	}
}

func TestRunDuplicatesLow(t *testing.T) {
	// §4.3/§4.4: duplicates stay low while the flood is in its
	// expanding phase (before the Convergence Boundary at ~half the
	// covered graph). At 600 nodes that means TTL 2; the paper's 2.7%
	// at TTL 4 is a 100k-node figure where TTL 4 covers only ~6% of
	// the network. Use 5% replication so TTL 2 still resolves ≥95%.
	res, err := RunDuplicates(smallOpts(), 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// At 600 nodes a TTL-2 ball is already ~20% of the graph, so some
	// convergence shows; the paper-scale run (100k, TTL 4, ~6% ball)
	// lands near its 2.7%. Require "small", not the 100k figure.
	if res.Agg.DuplicateRatio() > 0.30 {
		t.Fatalf("expanding-phase duplicate ratio %.2f too high", res.Agg.DuplicateRatio())
	}
	if res.Agg.SuccessRate() < 0.95 {
		t.Fatalf("success %.2f too low at 5%% replication TTL 2", res.Agg.SuccessRate())
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

// The convergence-boundary phenomenon itself (§4.4): pushing the
// flood past roughly half the network makes duplicates explode.
func TestDuplicatesGrowPastConvergenceBoundary(t *testing.T) {
	expanding, err := RunDuplicates(smallOpts(), 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	converging, err := RunDuplicates(smallOpts(), 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if converging.Agg.DuplicateRatio() < 2*expanding.Agg.DuplicateRatio() {
		t.Fatalf("duplicates should surge past the convergence boundary: %.3f vs %.3f",
			converging.Agg.DuplicateRatio(), expanding.Agg.DuplicateRatio())
	}
}

func TestRunFigure2SubLinear(t *testing.T) {
	opt := Options{N: 2000, Queries: 60, Seed: 4}
	res, err := RunFigure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("too few points: %d", len(res.Points))
	}
	// Figure 2's claim: message growth is sub-linear in N.
	if res.LogLogSlope >= 1 {
		t.Fatalf("log-log slope %.2f not sub-linear", res.LogLogSlope)
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].MsgsPerQuery < res.Points[i-1].MsgsPerQuery {
			// Message counts should grow with N (weakly).
			t.Fatalf("messages decreased between %d and %d nodes",
				res.Points[i-1].N, res.Points[i].N)
		}
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestRunFigure3CurvesMonotone(t *testing.T) {
	opt := Options{N: 1000, Queries: 80, Seed: 5}
	res, err := RunFigure3(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Curves {
		prev := -1.0
		for ttl, s := range c.Success {
			if s < prev {
				t.Fatalf("n=%d: success not monotone in TTL at %d", c.N, ttl)
			}
			prev = s
		}
		if c.Success[res.MaxTTL] < 0.9 {
			t.Fatalf("n=%d: TTL-4 success %.2f below 0.9 at 1%% replication", c.N, c.Success[res.MaxTTL])
		}
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestRunFigure4Shape(t *testing.T) {
	opt := Options{N: 1000, Queries: 100, Seed: 6}
	res, err := RunFigure4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 3 {
		t.Fatalf("expected 3 replication curves, got %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		if c.Success[res.MaxTTL] < 0.85 {
			t.Fatalf("repl %.1f%%: success %.2f at max TTL too low",
				c.Replication*100, c.Success[res.MaxTTL])
		}
	}
	// Higher replication should resolve in fewer messages on average.
	if res.Curves[0].MeanMessages < res.Curves[2].MeanMessages {
		t.Fatalf("0.1%% repl should cost more messages than 1%%: %.1f vs %.1f",
			res.Curves[0].MeanMessages, res.Curves[2].MeanMessages)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestRunABFvsDHT(t *testing.T) {
	opt := Options{N: 1000, Queries: 100, Seed: 7}
	res, err := RunABFvsDHT(opt, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.ABFSuccess < 0.85 {
		t.Fatalf("ABF success %.2f too low", res.ABFSuccess)
	}
	if res.ChordMeanHops <= 0 || res.ChordMeanHops > 15 {
		t.Fatalf("chord hops %.1f implausible for n=1000", res.ChordMeanHops)
	}
	if res.KadMeanHops <= 0 || res.KadMeanHops > res.ChordMeanHops {
		t.Fatalf("kademlia hops %.1f should beat chord %.1f (k=20 buckets)",
			res.KadMeanHops, res.ChordMeanHops)
	}
	// "Comparable to structured": same order of magnitude.
	if res.ABFMeanMsgs > 4*res.ChordMeanHops {
		t.Fatalf("ABF cost %.1f not comparable to Chord %.1f", res.ABFMeanMsgs, res.ChordMeanHops)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestRunTable2HeadlineClaims(t *testing.T) {
	opt := Options{N: 2000, Queries: 150, Seed: 8}
	res, err := RunTable2(opt)
	if err != nil {
		t.Fatal(err)
	}
	g, m := res.Rows[0], res.Rows[1]
	// Makalu must use far less bandwidth with far fewer neighbors.
	if m.OutgoingKbps > 0.4*g.OutgoingKbps {
		t.Fatalf("bandwidth: %.1f vs %.1f — reduction too small", m.OutgoingKbps, g.OutgoingKbps)
	}
	if m.NeighborsRequired > 0.4*g.NeighborsRequired {
		t.Fatalf("neighbors: %.1f vs %.1f", m.NeighborsRequired, g.NeighborsRequired)
	}
	// Success at TTL 5 with one replica per object must beat 6.9%. At
	// 2000 nodes a TTL-5 flood covers nearly everything, so expect a
	// high rate; the paper-scale 100k run lands at ~36%.
	if m.SuccessRate <= g.SuccessRate {
		t.Fatalf("success: %.2f vs %.2f", m.SuccessRate, g.SuccessRate)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestRunResilienceMakaluBeatsPowerLaw(t *testing.T) {
	opt := Options{N: 800, Queries: 10, Seed: 9}
	res, err := RunResilience(opt)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ResilienceRow{}
	for _, row := range res.Rows {
		byKey[string(row.Topology)+"/"+row.Mode+"@"+fmtFrac(row.FailFraction)] = row
	}
	// At 30% targeted failure Makalu keeps a giant component; the
	// power-law topology shatters.
	mk := byKey[string(TopoMakalu)+"/targeted@30"]
	pl := byKey[string(TopoV04)+"/targeted@30"]
	if mk.GiantFraction < 0.95 {
		t.Fatalf("Makalu giant fraction %.2f at 30%% failure", mk.GiantFraction)
	}
	if pl.GiantFraction > mk.GiantFraction {
		t.Fatalf("power law %.2f should not survive better than Makalu %.2f",
			pl.GiantFraction, mk.GiantFraction)
	}
	if pl.Components <= mk.Components {
		t.Fatalf("power law should fragment more: %d vs %d components", pl.Components, mk.Components)
	}
	// The classic power-law asymmetry (§6): random failures barely
	// hurt it, targeted attacks destroy it.
	plRand := byKey[string(TopoV04)+"/random@30"]
	if plRand.GiantFraction < 2*pl.GiantFraction && plRand.GiantFraction < 0.3 {
		t.Fatalf("power law random-failure giant %.2f should dwarf targeted %.2f",
			plRand.GiantFraction, pl.GiantFraction)
	}
	// Makalu is indifferent to the attack model.
	mkRand := byKey[string(TopoMakalu)+"/random@30"]
	if mkRand.GiantFraction < 0.95 {
		t.Fatalf("Makalu random-failure giant %.2f", mkRand.GiantFraction)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func fmtFrac(f float64) string {
	switch {
	case f >= 0.295 && f <= 0.305:
		return "30"
	case f >= 0.195 && f <= 0.205:
		return "20"
	case f >= 0.095 && f <= 0.105:
		return "10"
	default:
		return "5"
	}
}

func TestMinTTLMonotone(t *testing.T) {
	opt := smallOpts()
	mk, err := BuildMakalu(opt.N, opt.Seed)
	if err != nil {
		t.Fatal(err)
	}
	loRepl, _ := PlaceObjects(opt.N, 10, 0.005, 11)
	hiRepl, _ := PlaceObjects(opt.N, 10, 0.05, 11)
	ttlLo, _ := MinTTL(mk.Graph, loRepl, 10, 80, 0, 0.95, 13, nil)
	ttlHi, _ := MinTTL(mk.Graph, hiRepl, 10, 80, 0, 0.95, 13, nil)
	if ttlHi > ttlLo {
		t.Fatalf("more replication should not need a larger TTL: %d vs %d", ttlHi, ttlLo)
	}
}

func TestFmtInt(t *testing.T) {
	cases := map[int64]string{0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567"}
	for v, want := range cases {
		if got := fmtInt(v); got != want {
			t.Fatalf("fmtInt(%d) = %q, want %q", v, got, want)
		}
	}
}
