package experiments

import (
	"strings"
	"testing"
)

func TestRunStrategiesShape(t *testing.T) {
	opt := Options{N: 1500, Queries: 80, Seed: 23}
	res, err := RunStrategies(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 2 topologies × 4 strategies
		t.Fatalf("got %d rows", len(res.Rows))
	}
	byKey := map[string]StrategyRow{}
	for _, row := range res.Rows {
		byKey[string(row.Topology)+"/"+row.Strategy] = row
		if row.SuccessRate < 0 || row.SuccessRate > 1 {
			t.Fatalf("bad success rate: %+v", row)
		}
		if row.Top1PctLoadShare < 0 || row.Top1PctLoadShare > 1 {
			t.Fatalf("bad load share: %+v", row)
		}
	}
	// §6's critique, measured: on the power-law topology the
	// degree-biased walk concentrates load on hubs far more than
	// flooding on Makalu does.
	dbPL := byKey["Gnutella v0.4/degree-biased"]
	flMK := byKey["Makalu/flood-ttl4"]
	if dbPL.Top1PctLoadShare < 2*flMK.Top1PctLoadShare {
		t.Fatalf("degree-biased hub share %.2f should dwarf Makalu flooding %.2f",
			dbPL.Top1PctLoadShare, flMK.Top1PctLoadShare)
	}
	// Walks use far fewer messages than flooding, trading latency.
	rwMK := byKey["Makalu/random-walk-16"]
	if rwMK.MsgsPerQuery >= flMK.MsgsPerQuery {
		t.Fatalf("random walk %.0f msgs should undercut flooding %.0f",
			rwMK.MsgsPerQuery, flMK.MsgsPerQuery)
	}
	// Flooding on Makalu at 1% replication must be essentially
	// always-successful.
	if flMK.SuccessRate < 0.95 {
		t.Fatalf("Makalu flooding success %.2f", flMK.SuccessRate)
	}
	if !strings.Contains(res.Render(), "Top-1%") {
		t.Fatal("render malformed")
	}
}

func TestTopShare(t *testing.T) {
	// 100 nodes: one carries half the load.
	load := make([]int64, 100)
	for i := range load {
		load[i] = 1
	}
	load[7] = 100
	got := topShare(load, 0.01) // top 1 node
	want := 100.0 / 199.0
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("topShare = %v, want %v", got, want)
	}
	if topShare(make([]int64, 10), 0.01) != 0 {
		t.Fatal("zero load should give zero share")
	}
}
