package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// RunCells evaluates n independent experiment cells concurrently over
// a pool of `workers` goroutines (0 = GOMAXPROCS, 1 = sequential).
// Cells are claimed by atomic work-stealing — cell cost varies wildly
// across a (topology, TTL, replication) grid, so static sharding would
// leave workers idle — and each cell writes only its own output slot,
// so results are deterministic and independent of scheduling. The
// first error in cell order is returned.
//
// Cells must be genuinely independent: they may share read-only inputs
// (frozen graphs, content stores) but must not mutate shared state.
// Each cell's own query batches derive their randomness from the
// cell's index or parameters, never from a shared rng, so a cell
// computes the same numbers whether it runs first, last, or alone.
func RunCells(workers, n int, cell func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
