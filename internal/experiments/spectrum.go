package experiments

import (
	"fmt"
	"strings"

	"makalu/internal/spectral"
)

// ConnectivityRow is one row of the E2 (§3.3) algebraic-connectivity
// comparison.
type ConnectivityRow struct {
	Topology TopologyName
	Lambda1  float64
	MinDeg   int
}

// ConnectivityResult is the full E2 output.
type ConnectivityResult struct {
	N    int
	Rows []ConnectivityRow
}

// RunConnectivity reproduces §3.3: the algebraic connectivity λ₁ of
// each topology (Lanczos above the dense cutoff).
func RunConnectivity(opt Options) (*ConnectivityResult, error) {
	nets, err := BuildAll(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	res := &ConnectivityResult{N: opt.N}
	for _, nw := range nets {
		l1, err := spectral.AlgebraicConnectivity(nw.Graph, 250, opt.Seed+7)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", nw.Name, err)
		}
		res.Rows = append(res.Rows, ConnectivityRow{
			Topology: nw.Name,
			Lambda1:  l1,
			MinDeg:   nw.Graph.MinDegree(),
		})
	}
	return res, nil
}

// Render formats the E2 table.
func (r *ConnectivityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2 (§3.3) Algebraic connectivity λ₁ — %d nodes\n", r.N)
	fmt.Fprintf(&b, "%-15s %10s %8s\n", "Topology", "λ₁", "d_min")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %10.4f %8d\n", row.Topology, row.Lambda1, row.MinDeg)
	}
	return b.String()
}

// SpectrumSeries is one curve of Figure 1: the normalized Laplacian
// spectrum of the Makalu overlay after failing a fraction of its
// highest-degree nodes.
type SpectrumSeries struct {
	Label         string
	FailFraction  float64
	Points        []spectral.SpectrumPoint
	ZeroMult      int // multiplicity of eigenvalue 0 (components)
	OneMult       int // multiplicity of eigenvalue 1 (weak "edge" nodes)
	DistToKRegRef float64
}

// Figure1Result is the E3 output: Makalu spectra under targeted
// failure plus the k-regular reference curve.
type Figure1Result struct {
	N         int
	Series    []SpectrumSeries
	Reference SpectrumSeries // intact k-regular random graph
}

// RunFigure1 reproduces Figure 1: normalized Laplacian spectra of the
// Makalu topology after failing the top-degree 0%, 10%, 20% and 30% of
// nodes, compared with a k-regular random graph. The dense eigensolver
// bounds practical N to a few thousand; Options.N beyond 1200 is
// clamped (the paper's qualitative claim is size-independent).
func RunFigure1(opt Options) (*Figure1Result, error) {
	n := opt.N
	if n > 1200 {
		n = 1200
	}
	res := &Figure1Result{N: n}

	// k-regular reference spectrum.
	nets, err := BuildAll(n, opt.Seed)
	if err != nil {
		return nil, err
	}
	var refSpec []float64
	for _, nw := range nets {
		if nw.Name == TopoKRegular {
			refSpec, err = spectral.NormalizedSpectrum(nw.Graph)
			if err != nil {
				return nil, err
			}
		}
	}
	const eigTol = 1e-6
	res.Reference = SpectrumSeries{
		Label:    "k-regular (intact)",
		Points:   spectral.NormalizedRankPoints(refSpec),
		ZeroMult: spectral.Multiplicity(refSpec, 0, eigTol),
		OneMult:  spectral.Multiplicity(refSpec, 1, eigTol),
	}

	for _, frac := range []float64{0, 0.10, 0.20, 0.30} {
		mk, err := BuildMakalu(n, opt.Seed)
		if err != nil {
			return nil, err
		}
		if frac > 0 {
			mk.Overlay.FailTopDegree(int(frac * float64(n)))
		}
		sub, _ := mk.Overlay.FreezeAlive()
		spec, err := spectral.NormalizedSpectrum(sub)
		if err != nil {
			return nil, err
		}
		res.Series = append(res.Series, SpectrumSeries{
			Label:         fmt.Sprintf("Makalu, %.0f%% failed", frac*100),
			FailFraction:  frac,
			Points:        spectral.NormalizedRankPoints(spec),
			ZeroMult:      spectral.Multiplicity(spec, 0, eigTol),
			OneMult:       spectral.Multiplicity(spec, 1, eigTol),
			DistToKRegRef: spectral.SpectrumDistance(spec, refSpec, 200),
		})
	}
	return res, nil
}

// Render formats the Figure 1 summary (multiplicities and distance to
// the ideal spectrum) plus a coarse sampling of each curve.
func (r *Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E3 (Figure 1) Normalized Laplacian spectrum under targeted failure — %d nodes\n", r.N)
	fmt.Fprintf(&b, "%-22s %8s %8s %14s\n", "Series", "mult(0)", "mult(1)", "dist-to-kreg")
	fmt.Fprintf(&b, "%-22s %8d %8d %14s\n", r.Reference.Label, r.Reference.ZeroMult, r.Reference.OneMult, "-")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-22s %8d %8d %14.4f\n", s.Label, s.ZeroMult, s.OneMult, s.DistToKRegRef)
	}
	b.WriteString("\nSpectrum samples (x = normalized rank, y = eigenvalue):\n")
	xs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	fmt.Fprintf(&b, "%-22s", "x")
	for _, x := range xs {
		fmt.Fprintf(&b, " %7.2f", x)
	}
	b.WriteString("\n")
	sampleCurve := func(s SpectrumSeries) {
		fmt.Fprintf(&b, "%-22s", s.Label)
		for _, x := range xs {
			idx := int(x * float64(len(s.Points)-1))
			fmt.Fprintf(&b, " %7.3f", s.Points[idx].Y)
		}
		b.WriteString("\n")
	}
	sampleCurve(r.Reference)
	for _, s := range r.Series {
		sampleCurve(s)
	}
	return b.String()
}
