package experiments

import (
	"strings"
	"testing"
)

func TestRunConvergenceChurnDecays(t *testing.T) {
	opt := Options{N: 800, Queries: 10, Seed: 31}
	res, err := RunConvergence(opt, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 8 {
		t.Fatalf("got %d rounds", len(res.Rounds))
	}
	// The Manage() loop must settle: late-round churn well below the
	// first round's.
	early := res.Rounds[0].Churn()
	late := res.Rounds[len(res.Rounds)-1].Churn()
	if early == 0 {
		t.Fatal("first round produced no churn — tracer broken?")
	}
	if late*3 > early {
		t.Fatalf("churn not decaying: round1=%d, final=%d", early, late)
	}
	// Quality must not degrade as the loop runs.
	if res.Rounds[len(res.Rounds)-1].MeanDegree < res.Rounds[0].MeanDegree-0.5 {
		t.Fatal("mean degree degraded across rounds")
	}
	for _, round := range res.Rounds {
		if round.Lambda1 <= 0 {
			t.Fatalf("round %d: overlay disconnected (λ₁=%v)", round.Round, round.Lambda1)
		}
	}
	if !strings.Contains(res.Render(), "lambda1") {
		t.Fatal("render malformed")
	}
}

func TestRunConvergenceDefaultRounds(t *testing.T) {
	res, err := RunConvergence(Options{N: 300, Queries: 10, Seed: 33}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 10 {
		t.Fatalf("default rounds = %d, want 10", len(res.Rounds))
	}
}
