package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// This file exports figure data as gnuplot-ready .dat series plus a
// .gp script per figure, so the paper's plots regenerate with
// `gnuplot figN.gp` after `makalu-experiments -exp figN -plot DIR`.

// writeDat writes a whitespace-separated data file with a comment
// header. Each row must have len(header) columns.
func writeDat(path string, header []string, rows [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# %s\n", strings.Join(header, "\t"))
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("experiments: row has %d columns, header %d", len(row), len(header))
		}
		for i, v := range row {
			if i > 0 {
				w.WriteByte('\t')
			}
			fmt.Fprintf(w, "%g", v)
		}
		w.WriteByte('\n')
	}
	return w.Flush()
}

func writeScript(path, script string) error {
	return os.WriteFile(path, []byte(script), 0o644)
}

// WritePlotData exports Figure 1's spectra: one .dat per series with
// (normalized rank, eigenvalue) columns.
func (r *Figure1Result) WritePlotData(dir string) error {
	series := append([]SpectrumSeries{r.Reference}, r.Series...)
	var plotLines []string
	for i, s := range series {
		rows := make([][]float64, len(s.Points))
		for j, p := range s.Points {
			rows[j] = []float64{p.X, p.Y}
		}
		name := fmt.Sprintf("fig1_s%d.dat", i)
		if err := writeDat(filepath.Join(dir, name), []string{"rank", "eigenvalue"}, rows); err != nil {
			return err
		}
		plotLines = append(plotLines, fmt.Sprintf("%q using 1:2 with lines title %q", name, s.Label))
	}
	script := "set xlabel 'normalized rank'\nset ylabel 'eigenvalue'\nset yrange [0:2]\n" +
		"set title 'Figure 1: normalized Laplacian spectrum under targeted failure'\n" +
		"plot " + strings.Join(plotLines, ", \\\n     ") + "\npause -1\n"
	return writeScript(filepath.Join(dir, "fig1.gp"), script)
}

// WritePlotData exports Figure 2 (log-log messages vs size).
func (r *Figure2Result) WritePlotData(dir string) error {
	rows := make([][]float64, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []float64{float64(p.N), p.MsgsPerQuery, p.SuccessRate}
	}
	if err := writeDat(filepath.Join(dir, "fig2.dat"), []string{"n", "msgs_per_query", "success"}, rows); err != nil {
		return err
	}
	script := "set logscale xy\nset xlabel 'network size'\nset ylabel 'messages/query'\n" +
		"set title 'Figure 2: messages per query vs network size (TTL 4, 1% replication)'\n" +
		"plot 'fig2.dat' using 1:2 with linespoints title 'Makalu'\npause -1\n"
	return writeScript(filepath.Join(dir, "fig2.gp"), script)
}

// WritePlotData exports Figure 3 (success vs TTL per network size).
func (r *Figure3Result) WritePlotData(dir string) error {
	header := []string{"ttl"}
	for _, c := range r.Curves {
		header = append(header, fmt.Sprintf("n%d", c.N))
	}
	var rows [][]float64
	for ttl := 0; ttl <= r.MaxTTL; ttl++ {
		row := []float64{float64(ttl)}
		for _, c := range r.Curves {
			row = append(row, c.Success[ttl])
		}
		rows = append(rows, row)
	}
	if err := writeDat(filepath.Join(dir, "fig3.dat"), header, rows); err != nil {
		return err
	}
	var plotLines []string
	for i, c := range r.Curves {
		plotLines = append(plotLines, fmt.Sprintf("'fig3.dat' using 1:%d with linespoints title '%d nodes'", i+2, c.N))
	}
	script := "set xlabel 'TTL'\nset ylabel 'success rate'\nset yrange [0:1]\n" +
		"set title 'Figure 3: success rate vs TTL (1% replication)'\n" +
		"plot " + strings.Join(plotLines, ", \\\n     ") + "\npause -1\n"
	return writeScript(filepath.Join(dir, "fig3.gp"), script)
}

// WritePlotData exports Figure 4 (ABF success vs TTL per replication).
func (r *Figure4Result) WritePlotData(dir string) error {
	header := []string{"ttl"}
	for _, c := range r.Curves {
		header = append(header, fmt.Sprintf("repl%.1f%%", c.Replication*100))
	}
	var rows [][]float64
	for ttl := 0; ttl <= r.MaxTTL; ttl++ {
		row := []float64{float64(ttl)}
		for _, c := range r.Curves {
			row = append(row, c.Success[ttl])
		}
		rows = append(rows, row)
	}
	if err := writeDat(filepath.Join(dir, "fig4.dat"), header, rows); err != nil {
		return err
	}
	var plotLines []string
	for i, c := range r.Curves {
		plotLines = append(plotLines,
			fmt.Sprintf("'fig4.dat' using 1:%d with linespoints title '%.1f%% replication'", i+2, c.Replication*100))
	}
	script := "set xlabel 'TTL'\nset ylabel 'success rate'\nset yrange [0:1]\n" +
		"set title 'Figure 4: attenuated-Bloom-filter search success vs TTL (100k nodes)'\n" +
		"plot " + strings.Join(plotLines, ", \\\n     ") + "\npause -1\n"
	return writeScript(filepath.Join(dir, "fig4.gp"), script)
}

// PlotWriter is implemented by figure results that export plot data.
type PlotWriter interface {
	WritePlotData(dir string) error
}
