package experiments

import (
	"strings"
	"testing"
)

func TestRunRatings(t *testing.T) {
	res, err := RunRatings(Options{N: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Links == 0 {
		t.Fatal("settled overlay has no rated links")
	}
	if res.MeanScore <= 0 {
		t.Fatalf("mean score %v, want > 0", res.MeanScore)
	}
	if res.P10 > res.P50 || res.P50 > res.P90 {
		t.Fatalf("percentiles out of order: %v %v %v", res.P10, res.P50, res.P90)
	}
	// Score = connectivity + proximity, so the means must add up.
	if diff := res.MeanScore - (res.MeanConnectivity + res.MeanProximity); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("term means do not add up to the score mean (diff %v)", diff)
	}
	if res.ZeroUniqueShare < 0 || res.ZeroUniqueShare > 1 {
		t.Fatalf("zero-unique share %v outside [0,1]", res.ZeroUniqueShare)
	}
	if res.WorstLinkMean > res.MeanScore {
		t.Fatalf("mean worst link %v above mean score %v", res.WorstLinkMean, res.MeanScore)
	}
	out := res.Render()
	for _, want := range []string{"E16", "mean score", "zero-unique"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
}
