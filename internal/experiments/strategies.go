package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"makalu/internal/search"
)

// StrategyRow measures one search mechanism on one topology: success,
// message cost, and how concentrated the per-node query load is — the
// §6 critique of high-degree routing ("this approach placed a great
// burden on these highly connected nodes").
type StrategyRow struct {
	Topology     TopologyName
	Strategy     string
	SuccessRate  float64
	MsgsPerQuery float64
	// Top1PctLoadShare is the fraction of all node-visits absorbed by
	// the busiest 1% of nodes: ≈0.01 means perfectly spread load,
	// large values mean hub burden.
	Top1PctLoadShare float64
}

// StrategiesResult is the E14 output.
type StrategiesResult struct {
	N       int
	Queries int
	Rows    []StrategyRow
}

// RunStrategies compares the §6 search mechanisms — flooding,
// 16-walker random walk, Adamic's degree-biased walk, expanding ring
// — on the Makalu and power-law topologies, measuring both query
// performance and load concentration.
func RunStrategies(opt Options) (*StrategiesResult, error) {
	nets, err := BuildAll(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	store, err := PlaceObjects(opt.N, 20, 0.01, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	res := &StrategiesResult{N: opt.N, Queries: opt.Queries}
	for _, nw := range nets {
		if nw.Name != TopoMakalu && nw.Name != TopoV04 {
			continue
		}
		g := nw.Graph
		type strategy struct {
			name string
			run  func(src int, match search.Matcher, load []int64, rng *rand.Rand) search.Result
		}
		fl := search.NewFlooder(g)
		ring := search.NewFlooder(g)
		walkCfg := search.DefaultWalkConfig()
		walkCfg.MaxSteps = 4 * 256
		ringCfg := search.RingConfig{StartTTL: 1, Step: 1, MaxTTL: 6}
		strategies := []strategy{
			{"flood-ttl4", func(src int, match search.Matcher, load []int64, _ *rand.Rand) search.Result {
				return fl.Flood(src, 4, loadCounting(match, load))
			}},
			{"random-walk-16", func(src int, match search.Matcher, load []int64, rng *rand.Rand) search.Result {
				return search.RandomWalk(g, src, walkCfg, loadCounting(match, load), rng)
			}},
			{"degree-biased", func(src int, match search.Matcher, load []int64, rng *rand.Rand) search.Result {
				return search.DegreeBiasedWalk(g, src, 1024, loadCounting(match, load), rng)
			}},
			{"expanding-ring", func(src int, match search.Matcher, load []int64, rng *rand.Rand) search.Result {
				return search.ExpandingRing(ring, src, ringCfg, loadCounting(match, load), rng)
			}},
		}
		for _, st := range strategies {
			rng := rand.New(rand.NewSource(opt.Seed + 103))
			load := make([]int64, opt.N)
			agg := search.NewAggregate()
			for q := 0; q < opt.Queries; q++ {
				obj := store.RandomObject(rng)
				src := rng.Intn(opt.N)
				agg.Add(st.run(src, func(u int) bool { return store.Has(u, obj) }, load, rng))
			}
			res.Rows = append(res.Rows, StrategyRow{
				Topology:         nw.Name,
				Strategy:         st.name,
				SuccessRate:      agg.SuccessRate(),
				MsgsPerQuery:     agg.MeanMessages(),
				Top1PctLoadShare: topShare(load, 0.01),
			})
		}
	}
	return res, nil
}

// loadCounting wraps a matcher so every node visit is tallied —
// matchers run exactly once per distinct visited node in all search
// mechanisms.
func loadCounting(match search.Matcher, load []int64) search.Matcher {
	return func(u int) bool {
		load[u]++
		return match(u)
	}
}

// topShare returns the fraction of total load carried by the busiest
// `frac` of nodes.
func topShare(load []int64, frac float64) float64 {
	total := int64(0)
	sorted := append([]int64(nil), load...)
	for _, v := range sorted {
		total += v
	}
	if total == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	k := int(frac * float64(len(sorted)))
	if k < 1 {
		k = 1
	}
	top := int64(0)
	for _, v := range sorted[:k] {
		top += v
	}
	return float64(top) / float64(total)
}

// Render formats the E14 table.
func (r *StrategiesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14 (§6, extra) Search strategies: performance and hub burden — %d nodes, %d queries\n", r.N, r.Queries)
	fmt.Fprintf(&b, "%-15s %-16s %9s %12s %14s\n", "Topology", "Strategy", "Success", "Msgs/Query", "Top-1% load")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %-16s %8.1f%% %12.1f %13.1f%%\n",
			row.Topology, row.Strategy, 100*row.SuccessRate, row.MsgsPerQuery, 100*row.Top1PctLoadShare)
	}
	return b.String()
}
