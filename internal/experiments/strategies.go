package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"makalu/internal/search"
)

// StrategyRow measures one search mechanism on one topology: success,
// message cost, and how concentrated the per-node query load is — the
// §6 critique of high-degree routing ("this approach placed a great
// burden on these highly connected nodes").
type StrategyRow struct {
	Topology     TopologyName
	Strategy     string
	SuccessRate  float64
	MsgsPerQuery float64
	// Top1PctLoadShare is the fraction of all node-visits absorbed by
	// the busiest 1% of nodes: ≈0.01 means perfectly spread load,
	// large values mean hub burden.
	Top1PctLoadShare float64
}

// StrategiesResult is the E14 output.
type StrategiesResult struct {
	N       int
	Queries int
	Rows    []StrategyRow
}

// RunStrategies compares the §6 search mechanisms — flooding,
// 16-walker random walk, Adamic's degree-biased walk, expanding ring
// — on the Makalu and power-law topologies, measuring both query
// performance and load concentration.
func RunStrategies(opt Options) (*StrategiesResult, error) {
	nets, err := BuildAll(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	store, err := PlaceObjects(opt.N, 20, 0.01, opt.Seed+101)
	if err != nil {
		return nil, err
	}
	res := &StrategiesResult{N: opt.N, Queries: opt.Queries}
	walkCfg := search.DefaultWalkConfig()
	walkCfg.MaxSteps = 4 * 256
	ringCfg := search.RingConfig{StartTTL: 1, Step: 1, MaxTTL: 6}
	type strategy struct {
		name string
		run  func(k *search.Kernel, src int, match search.Matcher, rng *rand.Rand) search.Result
	}
	strategies := []strategy{
		{"flood-ttl4", func(k *search.Kernel, src int, match search.Matcher, _ *rand.Rand) search.Result {
			return k.Flooder().Flood(src, 4, match)
		}},
		{"random-walk-16", func(k *search.Kernel, src int, match search.Matcher, rng *rand.Rand) search.Result {
			return k.Walker().Random(src, walkCfg, match, rng)
		}},
		{"degree-biased", func(k *search.Kernel, src int, match search.Matcher, rng *rand.Rand) search.Result {
			return k.Walker().DegreeBiased(src, 1024, match, rng)
		}},
		{"expanding-ring", func(k *search.Kernel, src int, match search.Matcher, rng *rand.Rand) search.Result {
			return search.ExpandingRing(k.Flooder(), src, ringCfg, match, rng)
		}},
	}
	for _, nw := range nets {
		if nw.Name != TopoMakalu && nw.Name != TopoV04 {
			continue
		}
		for _, st := range strategies {
			st := st
			// The per-node load tally would race across workers, so each
			// worker counts into its own slab (addressed by kern.Index)
			// and the slabs are summed after the batch — addition
			// commutes, so the merged tally is worker-count invariant.
			br := &search.BatchRunner{Graph: nw.Graph, Workers: opt.Workers, Seed: opt.Seed + 103, Obs: opt.Obs}
			slabs := make([][]int64, br.WorkerCount(opt.Queries))
			for w := range slabs {
				slabs[w] = make([]int64, opt.N)
			}
			agg := br.Run(opt.Queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
				obj := store.RandomObject(rng)
				src := rng.Intn(opt.N)
				match := loadCounting(func(u int) bool { return store.Has(u, obj) }, slabs[k.Index])
				return st.run(k, src, match, rng)
			})
			load := make([]int64, opt.N)
			for _, slab := range slabs {
				for u, v := range slab {
					load[u] += v
				}
			}
			res.Rows = append(res.Rows, StrategyRow{
				Topology:         nw.Name,
				Strategy:         st.name,
				SuccessRate:      agg.SuccessRate(),
				MsgsPerQuery:     agg.MeanMessages(),
				Top1PctLoadShare: topShare(load, 0.01),
			})
		}
	}
	return res, nil
}

// loadCounting wraps a matcher so every node visit is tallied —
// matchers run exactly once per distinct visited node in all search
// mechanisms.
func loadCounting(match search.Matcher, load []int64) search.Matcher {
	return func(u int) bool {
		load[u]++
		return match(u)
	}
}

// topShare returns the fraction of total load carried by the busiest
// `frac` of nodes.
func topShare(load []int64, frac float64) float64 {
	total := int64(0)
	sorted := append([]int64(nil), load...)
	for _, v := range sorted {
		total += v
	}
	if total == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	k := int(frac * float64(len(sorted)))
	if k < 1 {
		k = 1
	}
	top := int64(0)
	for _, v := range sorted[:k] {
		top += v
	}
	return float64(top) / float64(total)
}

// Render formats the E14 table.
func (r *StrategiesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14 (§6, extra) Search strategies: performance and hub burden — %d nodes, %d queries\n", r.N, r.Queries)
	fmt.Fprintf(&b, "%-15s %-16s %9s %12s %14s\n", "Topology", "Strategy", "Success", "Msgs/Query", "Top-1% load")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %-16s %8.1f%% %12.1f %13.1f%%\n",
			row.Topology, row.Strategy, 100*row.SuccessRate, row.MsgsPerQuery, 100*row.Top1PctLoadShare)
	}
	return b.String()
}
