package experiments

import (
	"strings"
	"testing"
)

func TestRunExpansionShape(t *testing.T) {
	opt := Options{N: 800, Queries: 60, Seed: 11}
	res, err := RunExpansion(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 topologies, got %d", len(res.Rows))
	}
	byName := map[TopologyName]ExpansionRow{}
	for _, row := range res.Rows {
		byName[row.Topology] = row
		if row.MeanPerHop[0] != 1 {
			t.Fatalf("%s: hop-0 population %v, want 1 (the source)", row.Topology, row.MeanPerHop[0])
		}
	}
	mk := byName[TopoMakalu]
	pl := byName[TopoV04]
	// Expander growth: each of the first three hops multiplies the
	// frontier substantially.
	if mk.MeanPerHop[2] < 5*mk.MeanPerHop[1] {
		t.Fatalf("Makalu hop-2 frontier %v not expanding over hop-1 %v",
			mk.MeanPerHop[2], mk.MeanPerHop[1])
	}
	// Makalu is locally tree-like; the power-law has hubs and a much
	// weaker mean frontier at hop 1 (most nodes have degree 1-2).
	if mk.Clustering > 0.02 {
		t.Fatalf("Makalu clustering %v not tree-like", mk.Clustering)
	}
	if pl.MeanPerHop[1] > mk.MeanPerHop[1] {
		t.Fatalf("power-law hop-1 frontier %v should trail Makalu's %v",
			pl.MeanPerHop[1], mk.MeanPerHop[1])
	}
	// Power law is disassortative (hubs attach to leaves).
	if pl.Assortativity >= 0 {
		t.Fatalf("power-law assortativity %v, want negative", pl.Assortativity)
	}
	if !strings.Contains(res.Render(), "clustering") {
		t.Fatal("render malformed")
	}
}

func TestRunLowReplication(t *testing.T) {
	opt := Options{N: 2000, Queries: 100, Seed: 13}
	res, err := RunLowReplication(opt)
	if err != nil {
		t.Fatal(err)
	}
	// 0.01% of 2000 floors to 1 replica; a TTL-4 Makalu flood covers
	// most of a 2000-node overlay, so success should be high here and
	// the interesting partial-coverage number appears at 100k (see
	// EXPERIMENTS.md).
	if res.MakaluSuccess < 0.5 {
		t.Fatalf("Makalu success %.2f implausibly low", res.MakaluSuccess)
	}
	if res.StructellaSucc < 0.5 {
		t.Fatalf("Structella success %.2f implausibly low", res.StructellaSucc)
	}
	if res.MakaluMsgs <= 0 || res.StructellaMsgs <= 0 {
		t.Fatal("message accounting broken")
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}
