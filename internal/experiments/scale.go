package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"makalu/internal/core"
	"makalu/internal/graph"
	"makalu/internal/netmodel"
)

// The -scale experiment sweeps overlay construction and topology
// analysis up to 10⁶ nodes — two orders of magnitude past the paper's
// 10,000-node ceiling (§3.2) — and records what each scale costs: wall
// clock for build/freeze/diameter, memory high-water marks, and the
// analysis results themselves. Below scaleOracleLimit the sublinear
// estimators (iFUB diameter, landmark path sampling) are cross-checked
// in-run against the all-pairs oracle, so the committed
// BENCH_scale.json doubles as an exactness record.

// scaleOracleLimit is the largest size at which the all-pairs oracle
// is re-run for cross-checking (the paper's own analysis ceiling).
const scaleOracleLimit = 10_000

// scaleDiameterBudget caps the iFUB level-loop BFS runs above the
// oracle limit. A Makalu overlay is a near-regular expander — almost
// every node's eccentricity equals the diameter — which is the known
// worst case for every bound-based exact-diameter method: there is
// nothing to prune, and exactness costs Θ(N) traversals. Under the
// budget the diameter degrades to a certified interval (in practice
// one hop wide) instead of an open-ended exact computation.
const scaleDiameterBudget = 512

// ScaleRow is one size point of the sweep.
type ScaleRow struct {
	N          int     `json:"n"`
	Edges      int     `json:"edges"`
	MeanDegree float64 `json:"mean_degree"`

	BuildSeconds    float64 `json:"build_seconds"`
	FreezeSeconds   float64 `json:"freeze_seconds"`
	DiameterSeconds float64 `json:"diameter_seconds"`
	LandmarkSeconds float64 `json:"landmark_seconds"`

	Diameter        int  `json:"diameter"`    // exact, or certified lower bound
	DiameterUB      int  `json:"diameter_ub"` // certified upper bound (== Diameter when exact)
	DiameterExact   bool `json:"diameter_exact"`
	DiameterBFSRuns int  `json:"diameter_bfs_runs"`
	OracleChecked   bool `json:"oracle_checked"` // exact all-pairs cross-check ran

	LandmarkSources int     `json:"landmark_sources"`
	MeanHops        float64 `json:"mean_hops"`
	MeanHopsCI      float64 `json:"mean_hops_ci95"`
	Disconnected    bool    `json:"disconnected"`

	HeapAllocMB float64 `json:"heap_alloc_mb"` // live heap after the row's analysis
	HeapSysMB   float64 `json:"heap_sys_mb"`   // OS-held heap high-water mark
}

// ScaleResult is the full sweep, rendered as a table and committed as
// BENCH_scale.json.
type ScaleResult struct {
	Seed      int64      `json:"seed"`
	Landmarks int        `json:"landmarks"`
	Rows      []ScaleRow `json:"rows"`
}

// RunScale builds a Makalu overlay at each size and measures it. The
// landmark count bounds the sampled path-length BFS runs per size;
// sizes at or under scaleOracleLimit additionally run the exact
// all-pairs analysis and fail loudly on any estimator mismatch.
func RunScale(sizes []int, landmarks int, seed int64) (*ScaleResult, error) {
	if landmarks <= 0 {
		landmarks = 64
	}
	res := &ScaleResult{Seed: seed, Landmarks: landmarks}
	for _, n := range sizes {
		if n < 2 {
			return nil, fmt.Errorf("scale: size %d too small", n)
		}
		row, err := scaleOne(n, landmarks, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func scaleOne(n, landmarks int, seed int64) (ScaleRow, error) {
	row := ScaleRow{N: n}

	start := time.Now()
	nw, err := buildMakaluScale(n, seed)
	if err != nil {
		return row, err
	}
	row.BuildSeconds = time.Since(start).Seconds()

	// The overlay arrives frozen from BuildMakalu; re-freeze separately
	// so the CSR arena cost is its own line.
	start = time.Now()
	g := nw.Overlay.Freeze()
	row.FreezeSeconds = time.Since(start).Seconds()
	row.Edges = g.M()
	row.MeanDegree = g.MeanDegree()

	scratch := graph.NewBFSScratch(n)
	budget := -1 // exact (and oracle-checked) at paper scale
	if n > scaleOracleLimit {
		budget = scaleDiameterBudget
	}
	start = time.Now()
	ds := g.HopDiameterBudget(budget, scratch)
	row.DiameterSeconds = time.Since(start).Seconds()
	row.Diameter = ds.Diameter
	row.DiameterUB = ds.UB
	row.DiameterExact = ds.Exact
	row.DiameterBFSRuns = ds.BFSRuns

	start = time.Now()
	lp := g.LandmarkPathStats(landmarks, rand.New(rand.NewSource(seed+41)), scratch)
	row.LandmarkSeconds = time.Since(start).Seconds()
	row.LandmarkSources = lp.Sources
	row.MeanHops = lp.MeanHops
	row.MeanHopsCI = lp.MeanHopsCI
	row.Disconnected = lp.Disconnected

	if n <= scaleOracleLimit {
		exact := g.AllPathStats()
		row.OracleChecked = true
		if exact.HopDiameter != ds.Diameter {
			return row, fmt.Errorf("scale n=%d: iFUB diameter %d != oracle %d", n, ds.Diameter, exact.HopDiameter)
		}
		if !lp.Disconnected && lp.Sources >= 2 {
			lo, hi := lp.MeanHops-lp.MeanHopsCI, lp.MeanHops+lp.MeanHopsCI
			if exact.MeanHops < lo || exact.MeanHops > hi {
				// A 95% interval misses ~1 in 20 runs; report, don't fail.
				fmt.Printf("[scale n=%d: landmark CI (%.3f ± %.3f) missed exact mean %.3f]\n",
					n, lp.MeanHops, lp.MeanHopsCI, exact.MeanHops)
			}
		}
	}

	// Force a collection before sampling, so HeapAlloc reports the live
	// set of this row's structures instead of live set plus whatever
	// garbage the build left behind — without it the number swings with
	// GC pacing and overstates small rows that follow big ones. The
	// KeepAlive calls below pin the network and CSR graph across the
	// collection; their last real use is above, so an unpinned GC here
	// would free exactly the structures the sample is meant to weigh.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	row.HeapAllocMB = float64(ms.HeapAlloc) / (1 << 20)
	row.HeapSysMB = float64(ms.HeapSys) / (1 << 20)
	runtime.KeepAlive(nw)
	runtime.KeepAlive(g)
	return row, nil
}

// scaleWaveSize is the join-wave batch used for sizes past the paper's
// analysis ceiling. Paper-scale rows (≤ scaleOracleLimit) keep the
// sequential build so the committed record stays directly comparable
// with the all-pairs-oracle-era numbers; the large rows are where the
// sequential build's cache-miss wall lives, and the batched wave build
// is the only way 10⁷ nodes finishes at all.
const scaleWaveSize = 4096

func buildMakaluScale(n int, seed int64) (*Network, error) {
	if n <= scaleOracleLimit {
		return BuildMakalu(n, seed)
	}
	net := netmodel.NewEuclidean(n, 1000, seed)
	cfg := core.DefaultConfig(net, seed)
	cfg.JoinWave = scaleWaveSize
	o, err := core.Build(n, cfg)
	if err != nil {
		return nil, err
	}
	return &Network{Name: TopoMakalu, Graph: o.Freeze(), Overlay: o}, nil
}

// Render prints the sweep as a paper-style table.
func (r *ScaleResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale sweep: Makalu overlay build + topology analysis (seed %d, %d landmarks)\n", r.Seed, r.Landmarks)
	fmt.Fprintf(&b, "%12s %12s %6s | %9s %8s %9s | %5s %5s %7s | %8s %8s | %9s %9s\n",
		"N", "edges", "deg", "build(s)", "csr(s)", "diam(s)", "diam", "bfs", "oracle",
		"hops", "±ci95", "heap(MB)", "sys(MB)")
	for _, row := range r.Rows {
		oracle := "-"
		if row.OracleChecked {
			oracle = "match"
		}
		diam := fmt.Sprintf("%d", row.Diameter)
		if !row.DiameterExact {
			diam = fmt.Sprintf("%d–%d", row.Diameter, row.DiameterUB)
		}
		fmt.Fprintf(&b, "%12s %12s %6.2f | %9.2f %8.3f %9.2f | %5s %5d %7s | %8.3f %8.3f | %9.1f %9.1f\n",
			fmtInt(int64(row.N)), fmtInt(int64(row.Edges)), row.MeanDegree,
			row.BuildSeconds, row.FreezeSeconds, row.DiameterSeconds,
			diam, row.DiameterBFSRuns, oracle,
			row.MeanHops, row.MeanHopsCI, row.HeapAllocMB, row.HeapSysMB)
	}
	b.WriteString("\niFUB computes the exact diameter up to 10,000 nodes (cross-checked against the\n")
	b.WriteString("all-pairs oracle); above that, the diameter is a certified lb–ub interval under\n")
	b.WriteString("a BFS budget and the characteristic path length is landmark-sampled with a 95%\n")
	b.WriteString("confidence interval.\n")
	return b.String()
}
