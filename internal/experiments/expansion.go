package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"makalu/internal/dht"
	"makalu/internal/netmodel"
)

// ExpansionRow profiles one topology's neighborhood growth: the mean
// number of nodes at exactly hop h from a random node, plus the
// structural coefficients that explain it.
type ExpansionRow struct {
	Topology      TopologyName
	MeanPerHop    []float64 // index = hop, 0..MaxHop
	Clustering    float64
	Assortativity float64
}

// ExpansionResult is the E12 output: the direct measurement behind
// §3.3's "maximizes the expansion from each node's neighborhood".
type ExpansionResult struct {
	N       int
	MaxHop  int
	Samples int
	Rows    []ExpansionRow
}

// RunExpansion measures each topology's hop-by-hop expansion from
// sampled sources together with its clustering coefficient and degree
// assortativity. Expander-like overlays grow near-geometrically with
// clustering ≈ 0; the power law's hub-centric growth collapses after
// hop 2.
func RunExpansion(opt Options) (*ExpansionResult, error) {
	nets, err := BuildAll(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	const maxHop = 4
	samples := opt.Queries
	if samples > opt.N {
		samples = opt.N
	}
	res := &ExpansionResult{N: opt.N, MaxHop: maxHop, Samples: samples}
	res.Rows = make([]ExpansionRow, len(nets))
	// One cell per topology, each with its own seed-derived rng so the
	// sampled sources don't depend on which cells ran before it.
	err = RunCells(opt.Workers, len(nets), func(i int) error {
		nw := nets[i]
		rng := rand.New(rand.NewSource(opt.Seed + 71 + int64(i)))
		sums := make([]float64, maxHop+1)
		for s := 0; s < samples; s++ {
			src := rng.Intn(opt.N)
			sizes := nw.Graph.NeighborhoodSizes(src, maxHop)
			for h, c := range sizes {
				sums[h] += float64(c)
			}
		}
		for h := range sums {
			sums[h] /= float64(samples)
		}
		res.Rows[i] = ExpansionRow{
			Topology:      nw.Name,
			MeanPerHop:    sums,
			Clustering:    nw.Graph.GlobalClusteringCoefficient(),
			Assortativity: nw.Graph.DegreeAssortativity(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats the E12 table.
func (r *ExpansionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E12 (§3.3, extra) Neighborhood expansion — %d nodes, %d sources\n", r.N, r.Samples)
	fmt.Fprintf(&b, "%-15s", "Topology")
	for h := 0; h <= r.MaxHop; h++ {
		fmt.Fprintf(&b, " %9s", fmt.Sprintf("hop %d", h))
	}
	fmt.Fprintf(&b, " %10s %8s\n", "clustering", "assort")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s", row.Topology)
		for _, v := range row.MeanPerHop {
			fmt.Fprintf(&b, " %9.1f", v)
		}
		fmt.Fprintf(&b, " %10.4f %8.3f\n", row.Clustering, row.Assortativity)
	}
	return b.String()
}

// LowReplicationResult is the E13 output: the §4.4 needle-in-haystack
// scenario (0.01% replication) on Makalu flooding versus flooding
// over a Chord topology (the Structella approach the paper suggests
// for this regime).
type LowReplicationResult struct {
	N           int
	Replication float64
	TTL         int

	MakaluSuccess  float64
	MakaluMsgs     float64
	StructellaSucc float64
	StructellaMsgs float64
	StructellaDiam int
}

// RunLowReplication reproduces the §4.4 prose result — "even for a
// replication ratio such as 0.01% ... flooding on Makalu resolved 56%
// of queries within 4 hops and approximately 6,500 messages" — and
// the Structella alternative the paper points to.
func RunLowReplication(opt Options) (*LowReplicationResult, error) {
	mk, err := BuildMakalu(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	store, err := PlaceObjects(opt.N, 20, 0.0001, opt.Seed+73)
	if err != nil {
		return nil, err
	}
	const ttl = 4
	res := &LowReplicationResult{N: opt.N, Replication: 0.0001, TTL: ttl}

	agg := FloodBatch(mk.Graph, store, ttl, opt.Queries, opt.Workers, opt.Seed+79, opt.Obs)
	res.MakaluSuccess = agg.SuccessRate()
	res.MakaluMsgs = agg.MeanMessages()

	chord, err := dht.New(opt.N, opt.Seed+83)
	if err != nil {
		return nil, err
	}
	euc := netmodel.NewEuclidean(opt.N, 1000, opt.Seed)
	sg := chord.OverlayGraph(func(u, v int) float64 { return euc.Latency(u, v) })
	res.StructellaDiam = 0 // diameter only computed for small n; report hops instead
	sAgg := FloodBatch(sg, store, ttl, opt.Queries, opt.Workers, opt.Seed+89, opt.Obs)
	res.StructellaSucc = sAgg.SuccessRate()
	res.StructellaMsgs = sAgg.MeanMessages()
	return res, nil
}

// Render formats the E13 comparison.
func (r *LowReplicationResult) Render() string {
	return fmt.Sprintf(
		"E13 (§4.4) Needle-in-haystack: %.2f%% replication, TTL %d, %d nodes\n"+
			"  Makalu flooding:     success %5.1f%%, %8.0f msgs/query (paper: 56%%, ≈6,500)\n"+
			"  Structella flooding: success %5.1f%%, %8.0f msgs/query (structured-topology flood)\n",
		r.Replication*100, r.TTL, r.N,
		100*r.MakaluSuccess, r.MakaluMsgs,
		100*r.StructellaSucc, r.StructellaMsgs)
}
