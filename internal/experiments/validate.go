package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"makalu/internal/core"
	"makalu/internal/netmodel"
	"makalu/internal/topology"
	"makalu/internal/trace"
)

// Table2Result is the E10 output: the trace-driven traffic validation.
type Table2Result struct {
	N            int
	TTL          int
	Rows         []trace.BandwidthRow
	MeasuredSucc float64
	MeanDegree   float64
}

// RunTable2 reproduces Table 2 / §5: the worst-case workload (every
// object on exactly one node), flooding with TTL 5 on a Makalu overlay
// whose mean degree matches the paper's 9.5, driven by the 2006
// Gnutella query rates. The Makalu outgoing-messages figure is the
// per-node forwarding fan-out (degree − 1), the quantity the measured
// Gnutella client's 38.4 corresponds to.
func RunTable2(opt Options) (*Table2Result, error) {
	// Table 2 specifies mean node degree 9.5 (§5): capacities uniform
	// in [5, 14] instead of the general experiments' [6, 16].
	net := netmodel.NewEuclidean(opt.N, 1000, opt.Seed)
	cfg := core.DefaultConfig(net, opt.Seed)
	cfg.Capacities = topology.DegreeCapacities(opt.N, 5, 14, opt.Seed+2)
	o, err := core.Build(opt.N, cfg)
	if err != nil {
		return nil, err
	}
	mk := &Network{Name: TopoMakalu, Graph: o.Freeze(), Overlay: o}
	// Worst case: one replica per object, many objects for statistics.
	store, err := PlaceObjects(opt.N, 50, 0, opt.Seed+59)
	if err != nil {
		return nil, err
	}
	const ttl = 5
	agg := FloodBatch(mk.Graph, store, ttl, opt.Queries, opt.Workers, opt.Seed+61, opt.Obs)
	meanDeg := mk.Graph.MeanDegree()
	rows := trace.Table2(trace.Gnutella2006(), meanDeg-1, agg.SuccessRate(), meanDeg)
	return &Table2Result{
		N:            opt.N,
		TTL:          ttl,
		Rows:         rows,
		MeasuredSucc: agg.SuccessRate(),
		MeanDegree:   meanDeg,
	}, nil
}

// Render formats the E10 table in the paper's layout.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E10 (Table 2) Traffic comparison — %d nodes, worst case (1 replica/object), TTL %d\n", r.N, r.TTL)
	fmt.Fprintf(&b, "%-28s %14s %10s\n", "", r.Rows[0].System, r.Rows[1].System)
	fmt.Fprintf(&b, "%-28s %14.3f %10.2f\n", "Outgoing msgs per query", r.Rows[0].MsgsPerQuery, r.Rows[1].MsgsPerQuery)
	fmt.Fprintf(&b, "%-28s %14.2f %10.2f\n", "Outgoing msgs per second", r.Rows[0].MsgsPerSecond, r.Rows[1].MsgsPerSecond)
	fmt.Fprintf(&b, "%-28s %13.1fk %9.2fk\n", "Outgoing bandwidth (bps)", r.Rows[0].OutgoingKbps, r.Rows[1].OutgoingKbps)
	fmt.Fprintf(&b, "%-28s %13.1f%% %9.1f%%\n", "Query success rate", 100*r.Rows[0].SuccessRate, 100*r.Rows[1].SuccessRate)
	fmt.Fprintf(&b, "%-28s %14.1f %10.2f\n", "Neighbors per node", r.Rows[0].NeighborsRequired, r.Rows[1].NeighborsRequired)
	return b.String()
}

// ResilienceRow is one point of the E11 failure sweep.
type ResilienceRow struct {
	Topology      TopologyName
	Mode          string // "targeted" (top-degree) or "random"
	FailFraction  float64
	Components    int
	GiantFraction float64
}

// ResilienceResult is the E11 output.
type ResilienceResult struct {
	N    int
	Rows []ResilienceRow
}

// RunResilience reproduces the §3.4 fault-tolerance analysis: fail a
// fraction of each topology's nodes — both the most highly connected
// ones (the paper's worst case) and uniformly random ones (its
// control) — as an instantaneous snapshot with no recovery, and
// measure the surviving component structure.
func RunResilience(opt Options) (*ResilienceResult, error) {
	res := &ResilienceResult{N: opt.N}
	rng := rand.New(rand.NewSource(opt.Seed + 107))
	for _, frac := range []float64{0.05, 0.10, 0.20, 0.30} {
		nets, err := BuildAll(opt.N, opt.Seed)
		if err != nil {
			return nil, err
		}
		for _, nw := range nets {
			k := int(frac * float64(opt.N))
			targeted := nw.Graph.TopDegreeNodes(k)
			random := rng.Perm(opt.N)[:k]
			for _, mode := range []struct {
				name    string
				victims []int
			}{{"targeted", targeted}, {"random", random}} {
				keep := make([]bool, opt.N)
				for i := range keep {
					keep[i] = true
				}
				for _, v := range mode.victims {
					keep[v] = false
				}
				sub, _ := nw.Graph.InducedSubgraph(keep)
				_, sizes := sub.Components()
				giant := 0
				for _, s := range sizes {
					if s > giant {
						giant = s
					}
				}
				gf := 0.0
				if sub.N() > 0 {
					gf = float64(giant) / float64(sub.N())
				}
				res.Rows = append(res.Rows, ResilienceRow{
					Topology:      nw.Name,
					Mode:          mode.name,
					FailFraction:  frac,
					Components:    len(sizes),
					GiantFraction: gf,
				})
			}
		}
	}
	return res, nil
}

// Render formats the E11 sweep.
func (r *ResilienceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E11 (§3.4) Node failure (snapshot, no recovery) — %d nodes\n", r.N)
	fmt.Fprintf(&b, "%-15s %-9s %8s %12s %14s\n", "Topology", "Mode", "Failed", "Components", "GiantFraction")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-15s %-9s %7.0f%% %12d %13.1f%%\n",
			row.Topology, row.Mode, row.FailFraction*100, row.Components, 100*row.GiantFraction)
	}
	return b.String()
}
