package experiments

import (
	"fmt"
	"strings"

	"makalu/internal/core"
	"makalu/internal/netmodel"
	"makalu/internal/spectral"
)

// roundTracer tallies per-round protocol actions so convergence can
// be read off the decay of topology churn.
type roundTracer struct {
	connects, disconnects int
}

func (r *roundTracer) Connect(u, v int)            { r.connects++ }
func (r *roundTracer) Disconnect(u, v int)         { r.disconnects++ }
func (r *roundTracer) ViewExchange(u, v, size int) {}
func (r *roundTracer) WalkProbe(from, to int)      {}

// ConvergenceRound is one management round's churn and quality.
type ConvergenceRound struct {
	Round       int
	Connects    int     // new links formed this round
	Disconnects int     // links pruned this round
	MeanDegree  float64 // after the round
	Lambda1     float64 // algebraic connectivity after the round
}

// ConvergenceResult is the E15 output: evidence that the Manage()
// loop reaches a steady state — the property that makes Makalu cheap
// to maintain where k-regular constructions need global coordination
// (§6's argument against Law–Siu).
type ConvergenceResult struct {
	N      int
	Rounds []ConvergenceRound
}

// RunConvergence builds an overlay with zero management rounds, then
// applies rounds one at a time, recording topology churn and overlay
// quality after each.
func RunConvergence(opt Options, rounds int) (*ConvergenceResult, error) {
	if rounds <= 0 {
		rounds = 10
	}
	net := netmodel.NewEuclidean(opt.N, 1000, opt.Seed)
	tr := &roundTracer{}
	cfg := core.DefaultConfig(net, opt.Seed)
	cfg.ManageRounds = 0
	// Probe dials add a deliberate constant churn floor (they are the
	// stand-in for live incoming connections); disable them here so
	// the measurement isolates the Manage() loop's own settling.
	cfg.ProbesPerRound = 0
	cfg.Tracer = tr
	o, err := core.Build(opt.N, cfg)
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{N: opt.N}
	for r := 1; r <= rounds; r++ {
		tr.connects, tr.disconnects = 0, 0
		o.ManageRound()
		l1, err := spectral.AlgebraicConnectivity(o.Freeze(), 200, opt.Seed+int64(r))
		if err != nil {
			return nil, err
		}
		res.Rounds = append(res.Rounds, ConvergenceRound{
			Round:       r,
			Connects:    tr.connects,
			Disconnects: tr.disconnects,
			MeanDegree:  o.MeanDegree(),
			Lambda1:     l1,
		})
	}
	return res, nil
}

// Churn returns a round's total topology changes.
func (r ConvergenceRound) Churn() int { return r.Connects + r.Disconnects }

// Render formats the E15 series.
func (r *ConvergenceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E15 (§2.2/§6, extra) Management-loop convergence — %d nodes\n", r.N)
	fmt.Fprintf(&b, "%6s %10s %12s %10s %10s\n", "round", "connects", "disconnects", "meandeg", "lambda1")
	for _, row := range r.Rounds {
		fmt.Fprintf(&b, "%6d %10d %12d %10.2f %10.3f\n",
			row.Round, row.Connects, row.Disconnects, row.MeanDegree, row.Lambda1)
	}
	return b.String()
}
