package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"makalu/internal/dht"
	"makalu/internal/search"
)

// ABFCurve is one replication ratio's success-vs-TTL curve (Figure 4).
type ABFCurve struct {
	Replication  float64
	Success      []float64 // index = TTL (hop budget), 0..MaxTTL
	MeanMessages float64   // mean messages over successful lookups at MaxTTL
}

// Figure4Result is the E8 output.
type Figure4Result struct {
	N      int
	MaxTTL int
	Curves []ABFCurve
}

// RunFigure4 reproduces Figure 4: success rate vs TTL of attenuated-
// Bloom-filter identifier search on a Makalu overlay for replication
// ratios 0.1%, 0.5% and 1%. One max-TTL batch per ratio yields the
// whole curve: a lookup succeeds at TTL t iff it used ≤ t messages.
func RunFigure4(opt Options) (*Figure4Result, error) {
	mk, err := BuildMakalu(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{N: opt.N, MaxTTL: 25}
	for _, repl := range []float64{0.001, 0.005, 0.01} {
		store, err := PlaceObjects(opt.N, 20, repl, opt.Seed+int64(repl*1e7))
		if err != nil {
			return nil, err
		}
		net, err := search.BuildABFNetwork(mk.Graph, store, search.DefaultABFConfig())
		if err != nil {
			return nil, err
		}
		br := &search.BatchRunner{Graph: mk.Graph, Workers: opt.Workers, Seed: opt.Seed + 41, Obs: opt.Obs}
		agg := br.Run(opt.Queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
			obj := store.RandomObject(rng)
			src := rng.Intn(opt.N)
			return k.ABF(net).Lookup(src, obj, res.MaxTTL, rng)
		})
		// A successful lookup's message count equals its first-match hop
		// (each hop is one message and the lookup returns on success),
		// so the whole curve falls out of the aggregate's hop counter.
		curve := ABFCurve{Replication: repl, Success: make([]float64, res.MaxTTL+1)}
		for ttl := 0; ttl <= res.MaxTTL; ttl++ {
			hits := 0
			for _, h := range agg.Hops.Values() {
				if h <= ttl {
					hits += int(agg.Hops.Count(h))
				}
			}
			curve.Success[ttl] = float64(hits) / float64(agg.Queries)
		}
		if agg.Successes > 0 {
			curve.MeanMessages = agg.Hops.Mean()
		}
		res.Curves = append(res.Curves, curve)
	}
	return res, nil
}

// Render formats the E8 curves.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E8 (Figure 4) ABF identifier search success vs TTL — %d nodes\n", r.N)
	ttls := []int{1, 2, 3, 5, 8, 10, 15, 20, 25}
	fmt.Fprintf(&b, "%-12s", "Repl \\ TTL")
	for _, t := range ttls {
		fmt.Fprintf(&b, " %6d", t)
	}
	fmt.Fprintf(&b, " %12s\n", "mean msgs")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%-12s", fmt.Sprintf("%.1f%%", c.Replication*100))
		for _, t := range ttls {
			fmt.Fprintf(&b, " %5.0f%%", 100*c.Success[t])
		}
		fmt.Fprintf(&b, " %12.2f\n", c.MeanMessages)
	}
	return b.String()
}

// ABFvsDHTResult is the E9 output: identifier search on Makalu+ABF
// against Chord and Kademlia lookups on the same population (§6
// credits Overnet's lookup speed to Kademlia, so both structured
// designs serve as reference points).
type ABFvsDHTResult struct {
	N                 int
	Replication       float64
	ABFSuccess        float64
	ABFMeanMsgs       float64 // over successful lookups
	ChordMeanHops     float64
	ChordStatePerNode float64 // mean finger count
	KadMeanHops       float64
	KadStatePerNode   float64 // mean k-bucket contacts
	ABFMemoryBytes    int64
}

// RunABFvsDHT reproduces the structured-systems comparison (§1, §4.6):
// mean message cost of ABF identifier search vs Chord lookup hops.
func RunABFvsDHT(opt Options, replication float64) (*ABFvsDHTResult, error) {
	mk, err := BuildMakalu(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	store, err := PlaceObjects(opt.N, 20, replication, opt.Seed+43)
	if err != nil {
		return nil, err
	}
	net, err := search.BuildABFNetwork(mk.Graph, store, search.DefaultABFConfig())
	if err != nil {
		return nil, err
	}
	chord, err := dht.New(opt.N, opt.Seed+47)
	if err != nil {
		return nil, err
	}
	kad, err := dht.NewKademlia(opt.N, 0, opt.Seed+49)
	if err != nil {
		return nil, err
	}
	res := &ABFvsDHTResult{
		N:                 opt.N,
		Replication:       replication,
		ChordStatePerNode: chord.MeanFingerCount(),
		KadStatePerNode:   kad.MeanContacts(),
		ABFMemoryBytes:    net.MemoryBytes(),
	}
	// ABF lookups run as a parallel batch; Chord and Kademlia lookups
	// are deterministic given (src, obj), so a cheap sequential pass
	// re-derives the same per-query (obj, src) pairs from the same
	// query seeds and routes them through both DHTs.
	br := &search.BatchRunner{Graph: mk.Graph, Workers: opt.Workers, Seed: opt.Seed + 53, Obs: opt.Obs}
	agg := br.Run(opt.Queries, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(opt.N)
		return k.ABF(net).Lookup(src, obj, 25, rng)
	})
	res.ABFSuccess = agg.SuccessRate()
	if agg.Successes > 0 {
		// One message per hop and success returns immediately, so the
		// per-success message mean is the first-match hop mean.
		res.ABFMeanMsgs = agg.Hops.Mean()
	}
	chordHops, kadHops := 0, 0
	rng := rand.New(rand.NewSource(0))
	for q := 0; q < opt.Queries; q++ {
		rng.Seed(search.QuerySeed(opt.Seed+53, q))
		obj := store.RandomObject(rng)
		src := rng.Intn(opt.N)
		_, hops := chord.Lookup(src, obj)
		chordHops += hops
		_, khops := kad.Lookup(src, obj)
		kadHops += khops
	}
	res.ChordMeanHops = float64(chordHops) / float64(opt.Queries)
	res.KadMeanHops = float64(kadHops) / float64(opt.Queries)
	return res, nil
}

// Render formats the E9 comparison.
func (r *ABFvsDHTResult) Render() string {
	return fmt.Sprintf(
		"E9 (§4.6) Identifier search: Makalu+ABF vs structured DHTs — %d nodes, %.1f%% replication\n"+
			"  ABF:      success %.1f%%, mean messages %.2f, filter memory %s bytes\n"+
			"  Chord:    success 100.0%%, mean hops %.2f, mean fingers/node %.1f\n"+
			"  Kademlia: success 100.0%%, mean hops %.2f, mean contacts/node %.1f\n",
		r.N, r.Replication*100,
		100*r.ABFSuccess, r.ABFMeanMsgs, fmtInt(r.ABFMemoryBytes),
		r.ChordMeanHops, r.ChordStatePerNode,
		r.KadMeanHops, r.KadStatePerNode)
}
