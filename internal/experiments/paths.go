package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"makalu/internal/graph"
)

// PathRow is one row of the E1 (§3.2) characteristic-path table.
type PathRow struct {
	Topology     TopologyName
	MeanHops     float64
	MeanCost     float64 // characteristic path cost (latency units)
	HopDiameter  int
	MeanDegree   float64
	Disconnected bool
}

// PathResult is the full E1 output.
type PathResult struct {
	N       int
	Sampled int // BFS/Dijkstra sources used (0 = exact)
	Rows    []PathRow
}

// RunPaths reproduces §3.2: characteristic path length/cost and graph
// diameter for the four topologies. Exact all-pairs analysis is
// O(N²·logN); sampleSources > 0 switches to sampled sources, which the
// defaults use (the paper itself caps this analysis at 10,000 nodes
// for the same reason).
func RunPaths(opt Options, sampleSources int) (*PathResult, error) {
	nets, err := BuildAll(opt.N, opt.Seed)
	if err != nil {
		return nil, err
	}
	res := &PathResult{N: opt.N, Sampled: sampleSources}
	for _, nw := range nets {
		var st graph.PathStats
		if sampleSources > 0 && sampleSources < opt.N {
			st = nw.Graph.SampledPathStats(sampleSources, rand.New(rand.NewSource(opt.Seed+99)))
		} else {
			st = nw.Graph.AllPathStats()
		}
		res.Rows = append(res.Rows, PathRow{
			Topology:     nw.Name,
			MeanHops:     st.MeanHops,
			MeanCost:     st.MeanCost,
			HopDiameter:  st.HopDiameter,
			MeanDegree:   nw.Graph.MeanDegree(),
			Disconnected: st.Disconnected,
		})
	}
	return res, nil
}

// Render formats the E1 table.
func (r *PathResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1 (§3.2) Characteristic paths and diameter — %d nodes", r.N)
	if r.Sampled > 0 {
		fmt.Fprintf(&b, " (%d sampled sources)", r.Sampled)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-15s %10s %12s %9s %8s\n", "Topology", "MeanHops", "MeanCost", "Diameter", "MeanDeg")
	for _, row := range r.Rows {
		note := ""
		if row.Disconnected {
			note = " (fragments)"
		}
		fmt.Fprintf(&b, "%-15s %10.3f %12.3f %9d %8.2f%s\n",
			row.Topology, row.MeanHops, row.MeanCost, row.HopDiameter, row.MeanDegree, note)
	}
	return b.String()
}
