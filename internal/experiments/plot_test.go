package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func countDataLines(t *testing.T, path string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(string(b), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}

func TestWriteDatValidation(t *testing.T) {
	dir := t.TempDir()
	err := writeDat(filepath.Join(dir, "x.dat"), []string{"a", "b"}, [][]float64{{1}})
	if err == nil {
		t.Fatal("column mismatch should fail")
	}
}

func TestFigurePlotExports(t *testing.T) {
	opt := Options{N: 300, Queries: 40, Seed: 41}
	dir := t.TempDir()

	f1, err := RunFigure1(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.WritePlotData(dir); err != nil {
		t.Fatal(err)
	}
	// Reference + 4 failure fractions = 5 series files + script.
	for i := 0; i < 5; i++ {
		p := filepath.Join(dir, "fig1_s"+string(rune('0'+i))+".dat")
		if lines := countDataLines(t, p); lines < 100 {
			t.Fatalf("%s has only %d points", p, lines)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1.gp")); err != nil {
		t.Fatal("fig1.gp missing")
	}

	f2, err := RunFigure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.WritePlotData(dir); err != nil {
		t.Fatal(err)
	}
	if lines := countDataLines(t, filepath.Join(dir, "fig2.dat")); lines != len(f2.Points) {
		t.Fatalf("fig2.dat has %d rows, want %d", lines, len(f2.Points))
	}

	f3, err := RunFigure3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := f3.WritePlotData(dir); err != nil {
		t.Fatal(err)
	}
	if lines := countDataLines(t, filepath.Join(dir, "fig3.dat")); lines != f3.MaxTTL+1 {
		t.Fatalf("fig3.dat has %d rows, want %d", lines, f3.MaxTTL+1)
	}

	f4, err := RunFigure4(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := f4.WritePlotData(dir); err != nil {
		t.Fatal(err)
	}
	if lines := countDataLines(t, filepath.Join(dir, "fig4.dat")); lines != f4.MaxTTL+1 {
		t.Fatalf("fig4.dat has %d rows, want %d", lines, f4.MaxTTL+1)
	}
	gp, err := os.ReadFile(filepath.Join(dir, "fig4.gp"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gp), "plot ") {
		t.Fatal("fig4.gp has no plot command")
	}
}
