package sim

import (
	"strings"
	"testing"

	"makalu/internal/core"
	"makalu/internal/netmodel"
)

func TestCostModelAccounting(t *testing.T) {
	c := &CostModel{}
	c.Connect(1, 2)
	c.Disconnect(1, 2)
	c.ViewExchange(1, 2, 10)
	c.WalkProbe(1, 2)
	if c.Messages() != 4 {
		t.Fatalf("messages = %d, want 4", c.Messages())
	}
	want := int64(connectBytes + disconnectBytes + viewHeaderBytes + 10*viewEntryBytes + walkProbeBytes)
	if c.Bytes() != want {
		t.Fatalf("bytes = %d, want %d", c.Bytes(), want)
	}
	if !strings.Contains(c.Report(5), "per node") {
		t.Fatal("report malformed")
	}
	c.Reset()
	if c.Messages() != 0 || c.Bytes() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMaintenanceTrafficOfBuild(t *testing.T) {
	n := 400
	net := netmodel.NewEuclidean(n, 1000, 1)
	cost := &CostModel{}
	cfg := core.DefaultConfig(net, 1)
	cfg.Tracer = cost
	o, err := core.Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every surviving edge took one handshake, and pruned edges too.
	if cost.Connects < int64(o.Graph().M()) {
		t.Fatalf("connects %d below final edge count %d", cost.Connects, o.Graph().M())
	}
	// Joins are O(n · capacity): maintenance must not blow up
	// quadratically. Allow a generous constant.
	if cost.Messages() > int64(n)*400 {
		t.Fatalf("maintenance messages %d not O(n·deg)", cost.Messages())
	}
	if cost.Bytes() <= 0 {
		t.Fatal("no bytes accounted")
	}
	perNode := float64(cost.Bytes()) / float64(n)
	// Sanity band: a node should spend kilobytes, not megabytes, to
	// join and settle — the paper's "no global coordination" claim.
	if perNode > 512*1024 {
		t.Fatalf("join cost %.0f bytes/node is megabyte-scale", perNode)
	}
}

func TestMaintenanceTrafficUnderChurn(t *testing.T) {
	n := 300
	net := netmodel.NewEuclidean(n, 1000, 2)
	cost := &CostModel{}
	cfg := core.DefaultConfig(net, 2)
	cfg.Tracer = cost
	o, err := core.Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cost.Reset() // measure steady-state churn only
	res, err := RunChurn(o, DefaultChurnConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Fatal("no churn happened")
	}
	if cost.Messages() == 0 {
		t.Fatal("churn maintenance not traced")
	}
	// Per-rejoin cost should be bounded: a rejoining node dials ~its
	// capacity worth of peers, plus periodic view pushes.
	perEvent := float64(cost.Messages()) / float64(res.Departures+res.Rejoins+1)
	if perEvent > 5000 {
		t.Fatalf("%.0f maintenance messages per churn event — repair is not local", perEvent)
	}
}

func TestTracerNilIsSafe(t *testing.T) {
	// Default build path with no tracer must not panic anywhere.
	n := 150
	net := netmodel.NewEuclidean(n, 1000, 4)
	o, err := core.Build(n, core.DefaultConfig(net, 4))
	if err != nil {
		t.Fatal(err)
	}
	o.FailTopDegree(10)
	o.Recover(1)
}
