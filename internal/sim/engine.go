// Package sim provides the discrete-event simulation engine the
// dynamic experiments run on: a deterministic event queue plus a node
// churn process that exercises the Makalu overlay's join, failure and
// recovery paths over simulated time (§2.2 dynamics, §3.4 failures).
package sim

import (
	"container/heap"

	"makalu/internal/obs"
)

// Engine is a deterministic discrete-event scheduler. Events fire in
// time order; ties break by scheduling order. The zero value is ready
// to use.
type Engine struct {
	pq  eventHeap
	now float64
	seq uint64
	ran uint64

	// Trace, when non-nil, receives overlay events via Emit stamped
	// with the simulated clock — the same event taxonomy the live peer
	// layer records, so one trace consumer reads both worlds.
	Trace *obs.EventLog
	// TickHook, when non-nil, runs after every executed event with the
	// post-event clock and cumulative event count — a per-tick metrics
	// hook that keeps the engine decoupled from any registry.
	TickHook func(now float64, executed uint64)
}

type event struct {
	at  float64
	seq uint64
	do  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events run so far.
func (e *Engine) Executed() uint64 { return e.ran }

// Pending returns the number of scheduled events not yet run.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs fn after the given delay of simulated time. Negative
// delays are clamped to zero (run "now", after already queued events
// at the current instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute simulated time t; times in the past
// fire at the current instant.
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.pq, event{at: t, seq: e.seq, do: fn})
	e.seq++
}

// Step runs the next event, returning false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.at
	e.ran++
	ev.do()
	if e.TickHook != nil {
		e.TickHook(e.now, e.ran)
	}
	return true
}

// Emit records an overlay event in the engine's trace, stamped with
// the current simulated time. With a nil Trace this is one branch.
func (e *Engine) Emit(t obs.EventType, node, peer string, value int64) {
	e.Trace.RecordSim(e.now, t, node, peer, value)
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run drains the event queue completely. Self-perpetuating processes
// must use RunUntil to terminate.
func (e *Engine) Run() {
	for e.Step() {
	}
}
