// Package sim provides the discrete-event simulation engine the
// dynamic experiments run on: a deterministic event queue plus a node
// churn process that exercises the Makalu overlay's join, failure and
// recovery paths over simulated time (§2.2 dynamics, §3.4 failures).
package sim

import (
	"makalu/internal/obs"
)

// Engine is a deterministic discrete-event scheduler. Events fire in
// time order; ties break by scheduling order. The zero value is ready
// to use.
type Engine struct {
	pq  eventHeap
	now float64
	seq uint64
	ran uint64

	// Trace, when non-nil, receives overlay events via Emit stamped
	// with the simulated clock — the same event taxonomy the live peer
	// layer records, so one trace consumer reads both worlds.
	Trace *obs.EventLog
	// TickHook, when non-nil, runs after every executed event with the
	// post-event clock and cumulative event count — a per-tick metrics
	// hook that keeps the engine decoupled from any registry.
	TickHook func(now float64, executed uint64)
}

type event struct {
	at  float64
	seq uint64
	do  func()
}

// eventHeap is an inlined 4-ary min-heap ordered by (at, seq). A
// 4-ary layout halves the tree height of a binary heap and keeps the
// four children of a node in one cache line of events, and inlining
// the sift loops (instead of going through container/heap's
// sort.Interface) removes the interface{} boxing allocation that the
// standard library's Push forces on every scheduled event — the
// dynamic experiments schedule millions.
type eventHeap []event

// before is the strict ordering: earlier time first, scheduling order
// breaking ties, which is what makes the engine deterministic.
func (h eventHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// push appends ev and sifts it up. Parent of i is (i-1)/4.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q.before(i, p) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// pop removes and returns the minimum event. Children of i are
// 4i+1..4i+4; the vacated tail slot's closure reference is cleared so
// executed events do not pin their captures in the heap's backing
// array.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n].do = nil
	q = q[:n]
	*h = q

	i := 0
	for {
		min := i
		c := 4*i + 1
		end := c + 4
		if end > n {
			end = n
		}
		for ; c < end; c++ {
			if q.before(c, min) {
				min = c
			}
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events run so far.
func (e *Engine) Executed() uint64 { return e.ran }

// Pending returns the number of scheduled events not yet run.
func (e *Engine) Pending() int { return len(e.pq) }

// Schedule runs fn after the given delay of simulated time. Negative
// delays are clamped to zero (run "now", after already queued events
// at the current instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at absolute simulated time t; times in the past
// fire at the current instant.
func (e *Engine) ScheduleAt(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.pq.push(event{at: t, seq: e.seq, do: fn})
	e.seq++
}

// Step runs the next event, returning false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := e.pq.pop()
	e.now = ev.at
	e.ran++
	ev.do()
	if e.TickHook != nil {
		e.TickHook(e.now, e.ran)
	}
	return true
}

// Emit records an overlay event in the engine's trace, stamped with
// the current simulated time. With a nil Trace this is one branch.
func (e *Engine) Emit(t obs.EventType, node, peer string, value int64) {
	e.Trace.RecordSim(e.now, t, node, peer, value)
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.pq) > 0 && e.pq[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// Run drains the event queue completely. Self-perpetuating processes
// must use RunUntil to terminate.
func (e *Engine) Run() {
	for e.Step() {
	}
}
