package sim

import (
	"testing"

	"makalu/internal/content"
)

func TestChurnSearchProbesValidation(t *testing.T) {
	o := buildOverlay(t, 100, 61)
	cfg := DefaultChurnConfig(62)
	cfg.SearchProbes = 10 // no store
	if _, err := RunChurn(o, cfg); err == nil {
		t.Fatal("probes without a store should fail")
	}
}

func TestSearchSuccessDisabledByDefault(t *testing.T) {
	o := buildOverlay(t, 150, 63)
	res, err := RunChurn(o, DefaultChurnConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Timeline {
		if s.SearchSuccess != -1 {
			t.Fatalf("probing off but SearchSuccess = %v", s.SearchSuccess)
		}
	}
}

func TestSearchQualitySurvivesChurn(t *testing.T) {
	n := 400
	o := buildOverlay(t, n, 65)
	store, err := content.Place(n, content.PlacementConfig{
		Objects: 20, Replication: 0.03, Seed: 66,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultChurnConfig(67)
	cfg.SearchProbes = 40
	cfg.SearchTTL = 4
	cfg.SearchStore = store
	res, err := RunChurn(o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Fatal("no churn")
	}
	for _, s := range res.Timeline {
		if s.SearchSuccess < 0 {
			t.Fatal("probing on but success not recorded")
		}
		// With ~20% of nodes down at any instant, effective
		// replication drops from 3% to ~2.4%; a TTL-4 flood on a
		// 400-node overlay still resolves nearly everything. The
		// paper's claim is that churn does not break search.
		if s.SearchSuccess < 0.85 {
			t.Fatalf("t=%.1f: search success %.2f collapsed under churn",
				s.Time, s.SearchSuccess)
		}
	}
}

func TestMeasureSearchMatchesOnlyAliveReplicas(t *testing.T) {
	n := 60
	o := buildOverlay(t, n, 68)
	store, err := content.Place(n, content.PlacementConfig{
		Objects: 1, Replication: 0, MinReplicas: 1, Seed: 69,
	})
	if err != nil {
		t.Fatal(err)
	}
	obj := store.Objects()[0]
	host := int(store.Replicas(obj)[0])
	// Kill the only replica: success must be zero.
	o.FailNodes([]int{host})
	if got := measureSearch(o, store, 30, 6, 0, 70); got != 0 {
		t.Fatalf("dead replica still found: %v", got)
	}
	// Revive it: the parallel and sequential batches must agree.
	o.Revive(host)
	seq := measureSearch(o, store, 30, 6, 1, 70)
	par := measureSearch(o, store, 30, 6, 8, 70)
	if seq != par {
		t.Fatalf("probe batch not worker-count invariant: seq %v, par %v", seq, par)
	}
}

func TestRatingSnapshotsDuringChurn(t *testing.T) {
	o := buildOverlay(t, 200, 71)
	cfg := DefaultChurnConfig(72)
	cfg.RatingSnapshots = true
	res, err := RunChurn(o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no snapshots recorded")
	}
	for i, s := range res.Timeline {
		if s.Live > 1 && s.MeanRating <= 0 {
			t.Fatalf("snapshot %d: live overlay but MeanRating = %v", i, s.MeanRating)
		}
	}

	// Off by default: the field must stay at its sentinel.
	o2 := buildOverlay(t, 200, 71)
	res2, err := RunChurn(o2, DefaultChurnConfig(72))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res2.Timeline {
		if s.MeanRating != -1 {
			t.Fatalf("snapshot %d: RatingSnapshots off but MeanRating = %v", i, s.MeanRating)
		}
	}
}
