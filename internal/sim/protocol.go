package sim

import (
	"fmt"
	"strings"
	"sync"
)

// Wire-format sizes (bytes) of the Makalu maintenance protocol,
// modelled on Gnutella 0.6 message framing: a 23-byte descriptor
// header plus payload.
const (
	connectBytes    = 64 // dial + accept handshake (both frames)
	disconnectBytes = 31 // BYE descriptor
	viewHeaderBytes = 23 // routing-table push header
	viewEntryBytes  = 6  // 4-byte address + 2-byte port per neighbor
	walkProbeBytes  = 31 // candidate-discovery probe
)

// CostModel implements core.Tracer: it accounts the maintenance
// traffic an overlay generates (joins, view exchanges, pruning,
// candidate walks). Safe for concurrent use.
type CostModel struct {
	mu            sync.Mutex
	Connects      int64
	Disconnects   int64
	ViewExchanges int64
	ViewEntries   int64
	WalkProbes    int64
}

// Connect implements core.Tracer.
func (c *CostModel) Connect(u, v int) {
	c.mu.Lock()
	c.Connects++
	c.mu.Unlock()
}

// Disconnect implements core.Tracer.
func (c *CostModel) Disconnect(u, v int) {
	c.mu.Lock()
	c.Disconnects++
	c.mu.Unlock()
}

// ViewExchange implements core.Tracer.
func (c *CostModel) ViewExchange(u, v, entries int) {
	c.mu.Lock()
	c.ViewExchanges++
	c.ViewEntries += int64(entries)
	c.mu.Unlock()
}

// WalkProbe implements core.Tracer.
func (c *CostModel) WalkProbe(from, to int) {
	c.mu.Lock()
	c.WalkProbes++
	c.mu.Unlock()
}

// Messages returns the total protocol messages recorded.
func (c *CostModel) Messages() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Connects + c.Disconnects + c.ViewExchanges + c.WalkProbes
}

// Bytes returns the total maintenance bytes under the wire-format
// model above.
func (c *CostModel) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Connects*connectBytes +
		c.Disconnects*disconnectBytes +
		c.ViewExchanges*viewHeaderBytes + c.ViewEntries*viewEntryBytes +
		c.WalkProbes*walkProbeBytes
}

// Reset zeroes all counters.
func (c *CostModel) Reset() {
	c.mu.Lock()
	c.Connects, c.Disconnects, c.ViewExchanges, c.ViewEntries, c.WalkProbes = 0, 0, 0, 0, 0
	c.mu.Unlock()
}

// Report renders per-category counts and the byte total, normalized
// per node.
func (c *CostModel) Report(nodes int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	total := c.Connects*connectBytes +
		c.Disconnects*disconnectBytes +
		c.ViewExchanges*viewHeaderBytes + c.ViewEntries*viewEntryBytes +
		c.WalkProbes*walkProbeBytes
	fmt.Fprintf(&b, "maintenance traffic (%d nodes):\n", nodes)
	fmt.Fprintf(&b, "  connects:       %10d\n", c.Connects)
	fmt.Fprintf(&b, "  disconnects:    %10d\n", c.Disconnects)
	fmt.Fprintf(&b, "  view exchanges: %10d (%d entries)\n", c.ViewExchanges, c.ViewEntries)
	fmt.Fprintf(&b, "  walk probes:    %10d\n", c.WalkProbes)
	if nodes > 0 {
		fmt.Fprintf(&b, "  total bytes:    %10d (%.1f per node)\n", total, float64(total)/float64(nodes))
	} else {
		fmt.Fprintf(&b, "  total bytes:    %10d\n", total)
	}
	return b.String()
}
