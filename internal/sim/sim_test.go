package sim

import (
	"math/rand"
	"testing"

	"makalu/internal/core"
	"makalu/internal/netmodel"
)

func TestEngineOrdering(t *testing.T) {
	e := &Engine{}
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %v, want 3", e.Now())
	}
	if e.Executed() != 3 {
		t.Fatalf("executed = %d", e.Executed())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := &Engine{}
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("ties must fire FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := &Engine{}
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.Schedule(1, tick)
		}
	}
	e.Schedule(1, tick)
	e.Run()
	if count != 5 || e.Now() != 5 {
		t.Fatalf("count=%d now=%v", count, e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := &Engine{}
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { fired++ })
	}
	e.RunUntil(4.5)
	if fired != 4 {
		t.Fatalf("fired %d events by t=4.5, want 4", fired)
	}
	if e.Now() != 4.5 {
		t.Fatalf("clock should advance to 4.5, got %v", e.Now())
	}
	if e.Pending() != 6 {
		t.Fatalf("pending = %d, want 6", e.Pending())
	}
}

func TestEngineNegativeDelayClamps(t *testing.T) {
	e := &Engine{}
	e.Schedule(5, func() {})
	e.Step()
	ran := false
	e.Schedule(-10, func() { ran = true })
	e.Step()
	if !ran || e.Now() != 5 {
		t.Fatalf("negative delay should fire now: ran=%v now=%v", ran, e.Now())
	}
	e.ScheduleAt(1, func() {}) // in the past
	e.Step()
	if e.Now() != 5 {
		t.Fatalf("past-time event must not rewind the clock: %v", e.Now())
	}
}

func buildOverlay(t *testing.T, n int, seed int64) *core.Overlay {
	t.Helper()
	net := netmodel.NewEuclidean(n, 1000, seed)
	o, err := core.Build(n, core.DefaultConfig(net, seed))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestChurnValidation(t *testing.T) {
	o := buildOverlay(t, 50, 1)
	if _, err := RunChurn(o, ChurnConfig{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestChurnKeepsOverlayHealthy(t *testing.T) {
	o := buildOverlay(t, 300, 2)
	cfg := DefaultChurnConfig(3)
	res, err := RunChurn(o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Departures == 0 {
		t.Fatal("churn produced no departures")
	}
	if len(res.Timeline) < 5 {
		t.Fatalf("timeline too short: %d snapshots", len(res.Timeline))
	}
	for _, snap := range res.Timeline {
		if snap.Live < 150 {
			t.Fatalf("t=%.1f: live=%d — churn killed the network", snap.Time, snap.Live)
		}
		if snap.GiantFraction < 0.9 {
			t.Fatalf("t=%.1f: giant fraction %.2f — overlay fragmented under churn",
				snap.Time, snap.GiantFraction)
		}
	}
}

func TestChurnRejoinsHappen(t *testing.T) {
	o := buildOverlay(t, 200, 4)
	cfg := ChurnConfig{
		Duration:         200,
		MeanSession:      20, // short sessions force many cycles
		MeanDowntime:     5,
		ManageInterval:   5,
		SnapshotInterval: 50,
		Seed:             5,
	}
	res, err := RunChurn(o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejoins == 0 {
		t.Fatal("no rejoins in a 10-session-length run")
	}
	// Live population should hover around N * uptime/(uptime+downtime).
	final := res.Timeline[len(res.Timeline)-1]
	expected := 200.0 * 20 / 25
	if float64(final.Live) < expected*0.7 || float64(final.Live) > 200 {
		t.Fatalf("final live %d far from equilibrium %.0f", final.Live, expected)
	}
}

func TestChurnDeterminism(t *testing.T) {
	a := buildOverlay(t, 150, 6)
	b := buildOverlay(t, 150, 6)
	cfg := DefaultChurnConfig(7)
	ra, err := RunChurn(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunChurn(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Departures != rb.Departures || ra.Rejoins != rb.Rejoins {
		t.Fatalf("churn runs diverged: %d/%d vs %d/%d",
			ra.Departures, ra.Rejoins, rb.Departures, rb.Rejoins)
	}
	for i := range ra.Timeline {
		if ra.Timeline[i] != rb.Timeline[i] {
			t.Fatalf("timelines diverge at %d: %+v vs %+v", i, ra.Timeline[i], rb.Timeline[i])
		}
	}
}

func TestSnapshotOfHealthyOverlay(t *testing.T) {
	o := buildOverlay(t, 100, 8)
	snap := takeSnapshot(o, 1.5)
	if snap.Time != 1.5 || snap.Live != 100 || snap.Components != 1 || snap.GiantFraction != 1 {
		t.Fatalf("%+v", snap)
	}
	if snap.MeanDegree < 4 {
		t.Fatalf("mean degree %.1f", snap.MeanDegree)
	}
}

func TestEngineHeapRandomizedOrdering(t *testing.T) {
	// Property test for the inlined 4-ary heap: any interleaving of
	// schedules (including nested re-scheduling mid-run) must fire
	// events in nondecreasing time with ties in scheduling order —
	// i.e. exactly the order of a stable sort by timestamp.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		e := &Engine{}
		nEvents := 1 + rng.Intn(400)
		type fired struct {
			at  float64
			seq int
		}
		var got []fired
		seq := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			// Coarse timestamps force plenty of ties; times in the past
			// clamp to the current clock, exactly as ScheduleAt does.
			at := float64(rng.Intn(20))
			if at < e.Now() {
				at = e.Now()
			}
			id := seq
			seq++
			e.ScheduleAt(at, func() {
				got = append(got, fired{at: at, seq: id})
				if depth < 2 && rng.Intn(4) == 0 {
					schedule(depth + 1)
				}
			})
		}
		for i := 0; i < nEvents; i++ {
			schedule(0)
		}
		e.Run()
		if len(got) != seq {
			t.Fatalf("trial %d: fired %d of %d events", trial, len(got), seq)
		}
		for i := 1; i < len(got); i++ {
			prev, cur := got[i-1], got[i]
			if cur.at < prev.at || (cur.at == prev.at && cur.seq < prev.seq) {
				t.Fatalf("trial %d: event %d (at=%v seq=%d) fired after (at=%v seq=%d)",
					trial, i, cur.at, cur.seq, prev.at, prev.seq)
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: %d events left pending", trial, e.Pending())
		}
	}
}

func TestEngineHeapClearsPoppedClosure(t *testing.T) {
	// The vacated tail slot must not keep a reference to an executed
	// event's closure (it would pin captured memory for the life of
	// the heap's backing array).
	e := &Engine{}
	for i := 0; i < 8; i++ {
		e.Schedule(float64(i), func() {})
	}
	for e.Step() {
		pq := e.pq
		if n := len(pq); n < cap(pq) {
			if tail := pq[:cap(pq)][n]; tail.do != nil {
				t.Fatal("popped heap slot retains its closure")
			}
		}
	}
}
