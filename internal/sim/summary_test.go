package sim

import (
	"math"
	"testing"
)

func TestSummarizeTimelineSkipsSentinels(t *testing.T) {
	tl := []Snapshot{
		{GiantFraction: 1.0, MeanDegree: 4, SearchSuccess: SentinelOff, MeanRating: SentinelOff},
		{GiantFraction: 0.8, MeanDegree: 3, SearchSuccess: 0.9, MeanRating: 2.5},
		{GiantFraction: 0.9, MeanDegree: 5, SearchSuccess: 0.7, MeanRating: SentinelOff},
	}
	s := SummarizeTimeline(tl)
	if s.Samples != 3 {
		t.Fatalf("samples = %d", s.Samples)
	}
	if s.MinGiant != 0.8 {
		t.Fatalf("min giant = %v", s.MinGiant)
	}
	if math.Abs(s.MeanGiant-0.9) > 1e-9 {
		t.Fatalf("mean giant = %v", s.MeanGiant)
	}
	// The sentinel snapshot must not drag the mean down: two probed
	// samples averaging 0.8, not three averaging (−1+0.9+0.7)/3.
	if s.SearchSamples != 2 || math.Abs(s.MeanSearchSuccess-0.8) > 1e-9 {
		t.Fatalf("search: %d samples mean %v", s.SearchSamples, s.MeanSearchSuccess)
	}
	if s.MinSearchSuccess != 0.7 {
		t.Fatalf("min search = %v", s.MinSearchSuccess)
	}
	if s.RatingSamples != 1 || s.MeanRating != 2.5 {
		t.Fatalf("rating: %d samples mean %v", s.RatingSamples, s.MeanRating)
	}
}

func TestSummarizeTimelineAllOff(t *testing.T) {
	tl := []Snapshot{
		{GiantFraction: 1, SearchSuccess: SentinelOff, MeanRating: SentinelOff},
		{GiantFraction: 1, SearchSuccess: SentinelOff, MeanRating: SentinelOff},
	}
	s := SummarizeTimeline(tl)
	if s.SearchSamples != 0 || s.MeanSearchSuccess != SentinelOff || s.MinSearchSuccess != SentinelOff {
		t.Fatalf("all-off search summary leaked a value: %+v", s)
	}
	if s.RatingSamples != 0 || s.MeanRating != SentinelOff {
		t.Fatalf("all-off rating summary leaked a value: %+v", s)
	}
}

func TestSummarizeTimelineEmpty(t *testing.T) {
	s := SummarizeTimeline(nil)
	if s.Samples != 0 || s.MeanSearchSuccess != SentinelOff || s.MeanRating != SentinelOff {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestFmtSentinels(t *testing.T) {
	if got := FmtPercent(SentinelOff); got != "off" {
		t.Fatalf("FmtPercent(sentinel) = %q", got)
	}
	if got := FmtPercent(0.425); got != "42.5%" {
		t.Fatalf("FmtPercent(0.425) = %q", got)
	}
	if got := FmtRating(SentinelOff); got != "off" {
		t.Fatalf("FmtRating(sentinel) = %q", got)
	}
	if got := FmtRating(1.5); got != "1.500" {
		t.Fatalf("FmtRating(1.5) = %q", got)
	}
}

// The churn runner itself must emit the documented sentinels when the
// optional metrics are disabled.
func TestChurnTimelineUsesSentinelsWhenOff(t *testing.T) {
	o := buildOverlay(t, 60, 4)
	cfg := DefaultChurnConfig(5)
	cfg.Duration = 20
	res, err := RunChurn(o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no snapshots")
	}
	for i, s := range res.Timeline {
		if s.SearchSuccess != SentinelOff || s.MeanRating != SentinelOff {
			t.Fatalf("snapshot %d: off metrics not sentinel: %+v", i, s)
		}
	}
	sum := SummarizeTimeline(res.Timeline)
	if sum.SearchSamples != 0 || sum.MeanSearchSuccess != SentinelOff {
		t.Fatalf("summary invented search data: %+v", sum)
	}
}
