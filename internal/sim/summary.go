package sim

import "fmt"

// SentinelOff marks a Snapshot metric that was not measured
// (SearchSuccess with probing disabled, MeanRating with rating
// snapshots disabled). Consumers must never average or print it as a
// real value: a timeline mean that folds in -1 silently deflates the
// statistic.
const SentinelOff = -1.0

// MetricOn reports whether a Snapshot metric carries a measurement
// rather than the off sentinel.
func MetricOn(v float64) bool { return v != SentinelOff }

// TimelineSummary aggregates a churn timeline. Optional metrics are
// averaged only over the snapshots that measured them; when none did,
// the summary fields carry SentinelOff themselves.
type TimelineSummary struct {
	Samples   int
	MinGiant  float64 // worst giant-component fraction observed
	MeanGiant float64

	MeanDegree float64

	SearchSamples     int     // snapshots that probed search
	MeanSearchSuccess float64 // SentinelOff when SearchSamples == 0
	MinSearchSuccess  float64 // SentinelOff when SearchSamples == 0

	RatingSamples int
	MeanRating    float64 // SentinelOff when RatingSamples == 0
}

// SummarizeTimeline folds a timeline into a TimelineSummary, skipping
// the SentinelOff values of unmeasured optional metrics.
func SummarizeTimeline(tl []Snapshot) TimelineSummary {
	s := TimelineSummary{
		Samples:           len(tl),
		MinGiant:          1,
		MeanSearchSuccess: SentinelOff,
		MinSearchSuccess:  SentinelOff,
		MeanRating:        SentinelOff,
	}
	if len(tl) == 0 {
		s.MinGiant = 0
		return s
	}
	var giantSum, degSum, searchSum, ratingSum float64
	for _, snap := range tl {
		giantSum += snap.GiantFraction
		degSum += snap.MeanDegree
		if snap.GiantFraction < s.MinGiant {
			s.MinGiant = snap.GiantFraction
		}
		if MetricOn(snap.SearchSuccess) {
			s.SearchSamples++
			searchSum += snap.SearchSuccess
			if s.MinSearchSuccess == SentinelOff || snap.SearchSuccess < s.MinSearchSuccess {
				s.MinSearchSuccess = snap.SearchSuccess
			}
		}
		if MetricOn(snap.MeanRating) {
			s.RatingSamples++
			ratingSum += snap.MeanRating
		}
	}
	s.MeanGiant = giantSum / float64(len(tl))
	s.MeanDegree = degSum / float64(len(tl))
	if s.SearchSamples > 0 {
		s.MeanSearchSuccess = searchSum / float64(s.SearchSamples)
	}
	if s.RatingSamples > 0 {
		s.MeanRating = ratingSum / float64(s.RatingSamples)
	}
	return s
}

// FmtPercent renders a rate metric as a percentage, or "off" for the
// unmeasured sentinel — for timeline tables.
func FmtPercent(v float64) string {
	if !MetricOn(v) {
		return "off"
	}
	return fmt.Sprintf("%.1f%%", 100*v)
}

// FmtRating renders a mean link rating, or "off" for the sentinel.
func FmtRating(v float64) string {
	if !MetricOn(v) {
		return "off"
	}
	return fmt.Sprintf("%.3f", v)
}
