package sim

import (
	"fmt"
	"math/rand"

	"makalu/internal/content"
	"makalu/internal/core"
	"makalu/internal/obs"
	"makalu/internal/search"
)

// simNodeName labels simulated node u in trace events; live events use
// transport addresses, sim events this stable synthetic form.
func simNodeName(u int) string { return fmt.Sprintf("sim:%d", u) }

// ChurnConfig drives a node churn process over a Makalu overlay:
// every alive node departs after an exponentially distributed session
// time and rejoins after an exponentially distributed downtime, while
// the overlay runs periodic management rounds — the environment the
// paper argues k-regular constructions cannot survive and Makalu can.
type ChurnConfig struct {
	Duration         float64 // simulated time to run
	MeanSession      float64 // mean node uptime between departures
	MeanDowntime     float64 // mean downtime before rejoin
	ManageInterval   float64 // period of overlay management rounds
	SnapshotInterval float64 // period of metric snapshots
	Seed             int64

	// SearchProbes, when positive, measures live search quality: each
	// snapshot issues this many TTL-SearchTTL floods from random alive
	// sources against SearchStore and records the success rate. Dead
	// replicas naturally reduce effective replication, so this is the
	// paper's fault-tolerance story measured as user experience.
	SearchProbes int
	SearchTTL    int
	SearchStore  *content.Store
	// SearchWorkers bounds the goroutines each snapshot's probe batch
	// fans out over (0 = GOMAXPROCS, 1 = sequential). The overlay is
	// quiescent while a snapshot runs — the event loop is
	// single-threaded — so concurrent probes only read shared state,
	// and per-probe seeding keeps the measured rate identical at any
	// worker count.
	SearchWorkers int

	// RatingSnapshots, when true, records the mean §2.1 link rating at
	// every snapshot via the batched RateAll pass — churn-time
	// maintenance visibility into how far the rating engine's steering
	// signal degrades between management rounds.
	RatingSnapshots bool

	// Trace, when non-nil, receives the churn process's lifecycle
	// events stamped with simulated time: a departure is an evict, a
	// rejoin is a join, and each snapshot's probe batch is one
	// query-start (value = probes issued) followed by one query-hit
	// (value = probes that succeeded). The taxonomy matches the live
	// peer layer's, so the same trace tooling reads both.
	Trace *obs.EventLog
}

// DefaultChurnConfig runs 100 time units with sessions averaging 50,
// downtimes 10, management every 5 and snapshots every 10.
func DefaultChurnConfig(seed int64) ChurnConfig {
	return ChurnConfig{
		Duration:         100,
		MeanSession:      50,
		MeanDowntime:     10,
		ManageInterval:   5,
		SnapshotInterval: 10,
		Seed:             seed,
	}
}

// Snapshot is one sample of overlay health during churn.
type Snapshot struct {
	Time          float64
	Live          int     // alive nodes
	Components    int     // connected components among alive nodes
	GiantFraction float64 // largest component size / alive nodes
	MeanDegree    float64 // mean degree over alive nodes
	SearchSuccess float64 // flood success rate (-1 when probing is off)
	MeanRating    float64 // mean link rating (-1 when RatingSnapshots is off)
}

// ChurnResult is the outcome of a churn run.
type ChurnResult struct {
	Timeline   []Snapshot
	Departures int
	Rejoins    int
}

// Churn is a churn process scheduled on an engine by StartChurn. Its
// Result fills in as the engine runs; Snapshot records one extra
// health sample on demand (RunChurn uses it for the final state).
type Churn struct {
	Result   *ChurnResult
	snapshot func()
}

// Snapshot records one health sample at the engine's current time.
func (c *Churn) Snapshot() { c.snapshot() }

// RunChurn executes the churn process on the overlay and returns the
// health timeline. The overlay is mutated in place.
func RunChurn(o *core.Overlay, cfg ChurnConfig) (*ChurnResult, error) {
	eng := &Engine{Trace: cfg.Trace}
	c, err := StartChurn(eng, o, cfg)
	if err != nil {
		return nil, err
	}
	eng.RunUntil(cfg.Duration)
	c.Snapshot() // final state
	return c.Result, nil
}

// StartChurn schedules the churn process on a caller-owned engine and
// returns without running it — the caller drives the clock, typically
// because other workloads (chunked transfers, query load) share the
// same timeline. Departure/rejoin cycles self-perpetuate indefinitely;
// management rounds and periodic snapshots stop at cfg.Duration, and
// the caller bounds the run with RunUntil. When the engine has no
// trace sink yet, cfg.Trace is installed on it.
func StartChurn(eng *Engine, o *core.Overlay, cfg ChurnConfig) (*Churn, error) {
	if cfg.Duration <= 0 || cfg.MeanSession <= 0 || cfg.MeanDowntime <= 0 {
		return nil, fmt.Errorf("sim: churn durations must be positive: %+v", cfg)
	}
	// Validate before scheduling anything: an error must leave the
	// caller's engine untouched.
	if cfg.SearchProbes > 0 && cfg.SearchStore == nil {
		return nil, fmt.Errorf("sim: SearchProbes needs a SearchStore")
	}
	if cfg.ManageInterval <= 0 {
		cfg.ManageInterval = cfg.Duration / 20
	}
	if cfg.SnapshotInterval <= 0 {
		cfg.SnapshotInterval = cfg.Duration / 10
	}
	if eng.Trace == nil {
		eng.Trace = cfg.Trace
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &ChurnResult{}

	var scheduleDeparture func(u int)
	scheduleDeparture = func(u int) {
		eng.Schedule(rng.ExpFloat64()*cfg.MeanSession, func() {
			if !o.Alive(u) {
				return
			}
			o.FailNodes([]int{u})
			res.Departures++
			eng.Emit(obs.EvEvict, simNodeName(u), "", 0)
			eng.Schedule(rng.ExpFloat64()*cfg.MeanDowntime, func() {
				if o.Revive(u) {
					res.Rejoins++
					eng.Emit(obs.EvJoin, simNodeName(u), "", 0)
					scheduleDeparture(u)
				}
			})
		})
	}
	for u := 0; u < o.N(); u++ {
		if o.Alive(u) {
			scheduleDeparture(u)
		}
	}

	var manage func()
	manage = func() {
		o.ManageRound()
		if eng.Now()+cfg.ManageInterval <= cfg.Duration {
			eng.Schedule(cfg.ManageInterval, manage)
		}
	}
	eng.Schedule(cfg.ManageInterval, manage)

	if cfg.SearchTTL <= 0 {
		cfg.SearchTTL = 4
	}
	probeRng := rand.New(rand.NewSource(cfg.Seed + 7))
	var rateBuf [][]core.RatingInfo // reused across snapshots
	snapshot := func() {
		snap := takeSnapshot(o, eng.Now())
		snap.SearchSuccess = SentinelOff
		if cfg.SearchProbes > 0 {
			// One seed per snapshot, drawn from the probe stream; the
			// batch derives per-probe seeds from it.
			eng.Emit(obs.EvQueryStart, "sim", "", int64(cfg.SearchProbes))
			snap.SearchSuccess = measureSearch(o, cfg.SearchStore, cfg.SearchProbes, cfg.SearchTTL, cfg.SearchWorkers, probeRng.Int63())
			eng.Emit(obs.EvQueryHit, "sim", "", int64(snap.SearchSuccess*float64(cfg.SearchProbes)+0.5))
		}
		snap.MeanRating = SentinelOff
		if cfg.RatingSnapshots {
			rateBuf = o.RateAll(rateBuf)
			snap.MeanRating = meanRating(rateBuf)
		}
		res.Timeline = append(res.Timeline, snap)
	}
	var snapLoop func()
	snapLoop = func() {
		snapshot()
		if eng.Now()+cfg.SnapshotInterval <= cfg.Duration {
			eng.Schedule(cfg.SnapshotInterval, snapLoop)
		}
	}
	eng.Schedule(cfg.SnapshotInterval, snapLoop)

	return &Churn{Result: res, snapshot: snapshot}, nil
}

// measureSearch floods from random alive sources for random objects,
// matching only ALIVE replicas (dead hosts cannot answer), and
// returns the success rate. Probes run as one parallel batch over the
// frozen snapshot graph; the overlay is only read, never mutated.
func measureSearch(o *core.Overlay, store *content.Store, probes, ttl, workers int, seed int64) float64 {
	if probes <= 0 {
		return 0
	}
	g := o.Freeze() // dead nodes are isolated, so floods skip them
	br := &search.BatchRunner{Graph: g, Workers: workers, Seed: seed}
	agg := br.Run(probes, func(k *search.Kernel, q int, rng *rand.Rand) search.Result {
		src := -1
		for tries := 0; tries < 100; tries++ {
			c := rng.Intn(o.N())
			if o.Alive(c) {
				src = c
				break
			}
		}
		if src < 0 {
			return search.Result{FirstMatchHop: -1} // counts as a failed probe
		}
		obj := store.RandomObject(rng)
		return k.Flooder().Flood(src, ttl, func(u int) bool { return o.Alive(u) && store.Has(u, obj) })
	})
	return agg.SuccessRate()
}

// meanRating averages the link scores of a RateAll pass; 0 when the
// overlay has no live links.
func meanRating(all [][]core.RatingInfo) float64 {
	var sum float64
	links := 0
	for _, infos := range all {
		for _, in := range infos {
			sum += in.Score
			links++
		}
	}
	if links == 0 {
		return 0
	}
	return sum / float64(links)
}

func takeSnapshot(o *core.Overlay, t float64) Snapshot {
	sub, _ := o.FreezeAlive()
	_, sizes := sub.Components()
	giant := 0
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	snap := Snapshot{
		Time:       t,
		Live:       o.LiveCount(),
		Components: len(sizes),
		MeanDegree: o.MeanDegree(),
	}
	if sub.N() > 0 {
		snap.GiantFraction = float64(giant) / float64(sub.N())
	}
	return snap
}
