package spectral

import (
	"fmt"
	"math"
	"math/rand"

	"makalu/internal/graph"
)

// AlgebraicConnectivity returns λ₁, the second-smallest eigenvalue of
// the combinatorial Laplacian of g (Fiedler value). Fiedler's bound
// λ₁(G) ≤ v(G) ≤ d_min(G) makes it the paper's expansion proxy
// (§3.3).
//
// Small graphs use the dense solver; larger graphs use Lanczos with
// full reorthogonalization on the spectrally shifted operator
// B = cI - L with the constant vector deflated, so that the largest
// Ritz value θ of B gives λ₁ = c - θ. On a disconnected graph the
// second zero eigenvalue survives deflation and the result is ≈ 0.
func AlgebraicConnectivity(g *graph.Graph, iters int, seed int64) (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("spectral: algebraic connectivity needs >= 2 nodes")
	}
	if n <= 256 {
		spec, err := Spectrum(g)
		if err != nil {
			return 0, err
		}
		return spec[1], nil
	}
	if iters <= 0 {
		iters = 160
	}
	if iters > n-1 {
		iters = n - 1
	}
	c := 2*float64(g.MaxDegree()) + 1

	// Deflation vector: normalized all-ones (the 0-eigenvector of L).
	ones := 1 / math.Sqrt(float64(n))

	rng := rand.New(rand.NewSource(seed))
	q := make([][]float64, 0, iters+1)
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	deflate(v, ones)
	if nrm := norm(v); nrm == 0 {
		return 0, fmt.Errorf("spectral: degenerate start vector")
	} else {
		scale(v, 1/nrm)
	}
	q = append(q, append([]float64(nil), v...))

	alpha := make([]float64, 0, iters)
	beta := make([]float64, 0, iters)
	w := make([]float64, n)
	for j := 0; j < iters; j++ {
		// w = B q_j = c q_j - L q_j.
		lapMatVec(g, q[j], w)
		for i := range w {
			w[i] = c*q[j][i] - w[i]
		}
		a := dot(w, q[j])
		alpha = append(alpha, a)
		// w -= a q_j + b q_{j-1}; then fully reorthogonalize.
		for i := range w {
			w[i] -= a * q[j][i]
		}
		if j > 0 {
			b := beta[j-1]
			for i := range w {
				w[i] -= b * q[j-1][i]
			}
		}
		deflate(w, ones)
		for _, qk := range q {
			d := dot(w, qk)
			for i := range w {
				w[i] -= d * qk[i]
			}
		}
		b := norm(w)
		if b < 1e-12 {
			break // Krylov space exhausted: Ritz values are exact
		}
		beta = append(beta, b)
		scale(w, 1/b)
		q = append(q, append([]float64(nil), w...))
	}

	// Eigenvalues of the Lanczos tridiagonal matrix.
	m := len(alpha)
	d := append([]float64(nil), alpha...)
	e := make([]float64, m)
	copy(e, beta)
	if err := tridiagEigen(d, e); err != nil {
		return 0, err
	}
	theta := d[0]
	for _, x := range d[1:] {
		if x > theta {
			theta = x
		}
	}
	lambda1 := c - theta
	if lambda1 < 0 && lambda1 > -1e-8 {
		lambda1 = 0 // clip roundoff
	}
	return lambda1, nil
}

// lapMatVec computes y = L x for the combinatorial Laplacian of g.
func lapMatVec(g *graph.Graph, x, y []float64) {
	for u := 0; u < g.N(); u++ {
		sum := float64(g.Degree(u)) * x[u]
		for _, v := range g.Neighbors(u) {
			sum -= x[v]
		}
		y[u] = sum
	}
}

// deflate removes the component of v along the constant vector whose
// entries are all `entry` (assumed unit-norm overall).
func deflate(v []float64, entry float64) {
	sum := 0.0
	for _, x := range v {
		sum += x * entry
	}
	for i := range v {
		v[i] -= sum * entry
	}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func scale(a []float64, f float64) {
	for i := range a {
		a[i] *= f
	}
}
