package spectral

import (
	"math"
	"sort"
	"testing"

	"makalu/internal/graph"
	"makalu/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	g := graph.NewMutable(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g.Freeze(nil)
}

func cycleGraph(n int) *graph.Graph {
	g := graph.NewMutable(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g.Freeze(nil)
}

func completeGraph(n int) *graph.Graph {
	g := graph.NewMutable(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g.Freeze(nil)
}

func starGraph(n int) *graph.Graph {
	g := graph.NewMutable(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	return g.Freeze(nil)
}

func specEq(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("spectrum length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("eigenvalue %d = %v, want %v (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestSymEigenvaluesDiagonal(t *testing.T) {
	a := []float64{
		3, 0, 0,
		0, -1, 0,
		0, 0, 2,
	}
	got, err := SymEigenvalues(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	specEq(t, got, []float64{-1, 2, 3}, 1e-12)
}

func TestSymEigenvalues2x2(t *testing.T) {
	// [[2,1],[1,2]] -> eigenvalues 1, 3.
	got, err := SymEigenvalues([]float64{2, 1, 1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	specEq(t, got, []float64{1, 3}, 1e-12)
}

func TestSymEigenvaluesSizeMismatch(t *testing.T) {
	if _, err := SymEigenvalues([]float64{1, 2}, 3); err == nil {
		t.Fatal("expected size error")
	}
}

func TestSymEigenvaluesEmpty(t *testing.T) {
	got, err := SymEigenvalues(nil, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v, %v", got, err)
	}
}

func TestSymEigenvaluesTraceAndDeterminismProperty(t *testing.T) {
	// Random symmetric matrix: eigenvalue sum must equal the trace.
	n := 40
	a := make([]float64, n*n)
	seedVal := 12345.0
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			seedVal = math.Mod(seedVal*997+13, 1000)
			v := seedVal/500 - 1
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	trace := 0.0
	for i := 0; i < n; i++ {
		trace += a[i*n+i]
	}
	b := append([]float64(nil), a...)
	got, err := SymEigenvalues(a, n)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if math.Abs(sum-trace) > 1e-9 {
		t.Fatalf("eigenvalue sum %v != trace %v", sum, trace)
	}
	got2, err := SymEigenvalues(b, n)
	if err != nil {
		t.Fatal(err)
	}
	specEq(t, got2, got, 1e-12)
}

func TestLaplacianSpectrumComplete(t *testing.T) {
	// K_n: eigenvalues {0, n×(n-1 times)}.
	n := 8
	got, err := Spectrum(completeGraph(n))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := 1; i < n; i++ {
		want[i] = float64(n)
	}
	specEq(t, got, want, 1e-9)
}

func TestLaplacianSpectrumCycle(t *testing.T) {
	n := 12
	got, err := Spectrum(cycleGraph(n))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 0, n)
	for k := 0; k < n; k++ {
		want = append(want, 2-2*math.Cos(2*math.Pi*float64(k)/float64(n)))
	}
	sort.Float64s(want)
	specEq(t, got, want, 1e-9)
}

func TestLaplacianSpectrumPath(t *testing.T) {
	n := 9
	got, err := Spectrum(pathGraph(n))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, 0, n)
	for k := 0; k < n; k++ {
		want = append(want, 2-2*math.Cos(math.Pi*float64(k)/float64(n)))
	}
	sort.Float64s(want)
	specEq(t, got, want, 1e-9)
}

func TestLaplacianSpectrumStar(t *testing.T) {
	// Star K_{1,n-1}: {0, 1 (n-2 times), n}.
	n := 10
	got, err := Spectrum(starGraph(n))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0}
	for i := 0; i < n-2; i++ {
		want = append(want, 1)
	}
	want = append(want, float64(n))
	specEq(t, got, want, 1e-9)
}

func TestNormalizedSpectrumRange(t *testing.T) {
	g := topology.ErdosRenyi(60, 180, 3).Freeze(nil)
	got, err := NormalizedSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v < -1e-9 || v > 2+1e-9 {
			t.Fatalf("normalized eigenvalue %v outside [0,2]", v)
		}
	}
}

func TestNormalizedSpectrumComplete(t *testing.T) {
	// Normalized K_n: {0, n/(n-1) with multiplicity n-1}.
	n := 7
	got, err := NormalizedSpectrum(completeGraph(n))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := 1; i < n; i++ {
		want[i] = float64(n) / float64(n-1)
	}
	specEq(t, got, want, 1e-9)
}

func TestZeroMultiplicityCountsComponents(t *testing.T) {
	// Two triangles plus one isolated vertex: 3 components.
	g := graph.NewMutable(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	f := g.Freeze(nil)
	spec, err := NormalizedSpectrum(f)
	if err != nil {
		t.Fatal(err)
	}
	if m := Multiplicity(spec, 0, 1e-8); m != 3 {
		t.Fatalf("multiplicity of 0 = %d, want 3 (components)", m)
	}
	lspec, err := Spectrum(f)
	if err != nil {
		t.Fatal(err)
	}
	if m := Multiplicity(lspec, 0, 1e-8); m != 3 {
		t.Fatalf("combinatorial multiplicity of 0 = %d, want 3", m)
	}
}

func TestEigenvalueOneMultiplicityStar(t *testing.T) {
	// Normalized star: {0, 1 (n-2 times), 2}. Eigenvalue-1 mass marks
	// the weakly connected leaves, the paper's "edge node" indicator.
	spec, err := NormalizedSpectrum(starGraph(12))
	if err != nil {
		t.Fatal(err)
	}
	if m := Multiplicity(spec, 1, 1e-8); m != 10 {
		t.Fatalf("multiplicity of 1 = %d, want 10", m)
	}
	if m := Multiplicity(spec, 2, 1e-8); m != 1 {
		t.Fatalf("multiplicity of 2 = %d, want 1 (bipartite)", m)
	}
}

func TestAlgebraicConnectivityDenseMatchesClosedForm(t *testing.T) {
	// Cycle C_n has λ₁ = 2 - 2cos(2π/n); n = 40 uses the dense path.
	n := 40
	got, err := AlgebraicConnectivity(cycleGraph(n), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 - 2*math.Cos(2*math.Pi/float64(n))
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("λ₁ = %v, want %v", got, want)
	}
}

func TestAlgebraicConnectivityLanczosMatchesClosedForm(t *testing.T) {
	// n = 400 forces the Lanczos path. Cycle λ₁ = 2 - 2cos(2π/400)
	// ≈ 2.47e-4; interior eigenvalue spacing is tiny so allow a few
	// hundred iterations.
	n := 400
	got, err := AlgebraicConnectivity(cycleGraph(n), 399, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 - 2*math.Cos(2*math.Pi/float64(n))
	if math.Abs(got-want) > want*0.05 {
		t.Fatalf("λ₁ = %v, want %v", got, want)
	}
}

func TestAlgebraicConnectivityLanczosCompleteIsh(t *testing.T) {
	// A 300-node K-regular random graph (k=10) has λ₁ in roughly
	// [k - 2√(k-1) − ε, k]; crucially it is far from 0 and below
	// d_min = k (Fiedler's bound).
	g, err := topology.KRegular(300, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AlgebraicConnectivity(g.Freeze(nil), 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 1 || got >= 10 {
		t.Fatalf("λ₁ = %v, want within (1, 10) for a 10-regular expander", got)
	}
}

func TestAlgebraicConnectivityDisconnected(t *testing.T) {
	// Two disjoint 200-node cycles: λ₁ must be ≈ 0.
	g := graph.NewMutable(400)
	for i := 0; i < 200; i++ {
		g.AddEdge(i, (i+1)%200)
		g.AddEdge(200+i, 200+(i+1)%200)
	}
	got, err := AlgebraicConnectivity(g.Freeze(nil), 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 1e-6 {
		t.Fatalf("λ₁ = %v for a disconnected graph, want ≈ 0", got)
	}
}

func TestAlgebraicConnectivityTooSmall(t *testing.T) {
	if _, err := AlgebraicConnectivity(pathGraph(1), 10, 1); err == nil {
		t.Fatal("single node should error")
	}
}

func TestFiedlerUpperBound(t *testing.T) {
	// λ₁ ≤ v(G) ≤ d_min for several graph families (paper §3.3).
	// Fiedler's theorem excludes complete graphs, where λ₁ = n > n-1.
	graphs := []*graph.Graph{
		cycleGraph(50),
		starGraph(15),
		topology.ErdosRenyi(100, 400, 1).Freeze(nil),
	}
	for i, g := range graphs {
		l1, err := AlgebraicConnectivity(g, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if l1 > float64(g.MinDegree())+1e-9 {
			t.Fatalf("graph %d: λ₁ = %v exceeds d_min = %d", i, l1, g.MinDegree())
		}
	}
}

func TestNormalizedRankPoints(t *testing.T) {
	pts := NormalizedRankPoints([]float64{0, 1, 2})
	if pts[0].X != 0 || pts[2].X != 1 || pts[1].X != 0.5 {
		t.Fatalf("x coordinates wrong: %+v", pts)
	}
	if pts[0].Y != 0 || pts[2].Y != 2 {
		t.Fatalf("y coordinates wrong: %+v", pts)
	}
	single := NormalizedRankPoints([]float64{1.5})
	if single[0].X != 0 || single[0].Y != 1.5 {
		t.Fatalf("single point wrong: %+v", single)
	}
}

func TestSpectrumDistance(t *testing.T) {
	a := []float64{0, 1, 2}
	if d := SpectrumDistance(a, a, 10); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	b := []float64{0.5, 1.5, 2.5}
	if d := SpectrumDistance(a, b, 10); math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("distance = %v, want 0.5", d)
	}
	// Different lengths are comparable by construction.
	c := []float64{0, 0.5, 1, 1.5, 2}
	if d := SpectrumDistance(a, c, 100); d > 0.05 {
		t.Fatalf("resampled identical ramps should be close, got %v", d)
	}
	if !math.IsNaN(SpectrumDistance(nil, a, 10)) {
		t.Fatal("empty input should give NaN")
	}
}

// The paper's headline comparison (§3.3): the power-law topology has
// near-zero algebraic connectivity while k-regular random graphs sit
// close to k - 2√(k-1).
func TestConnectivityOrderingAcrossTopologies(t *testing.T) {
	n := 240
	plCfg := topology.DefaultPowerLaw()
	pl := topology.PowerLaw(n, plCfg).Freeze(nil)
	kreg, err := topology.KRegular(n, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	kr := kreg.Freeze(nil)
	lPL, err := AlgebraicConnectivity(pl, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	lKR, err := AlgebraicConnectivity(kr, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lPL >= lKR {
		t.Fatalf("power-law λ₁ %v should be far below k-regular %v", lPL, lKR)
	}
	if lPL > 0.6 {
		t.Fatalf("power-law λ₁ %v unexpectedly high", lPL)
	}
	if lKR < 1.5 {
		t.Fatalf("k-regular λ₁ %v unexpectedly low", lKR)
	}
}
