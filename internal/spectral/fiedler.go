package spectral

import (
	"fmt"
	"math"
	"math/rand"

	"makalu/internal/graph"
)

// FiedlerVector computes the eigenvector of the combinatorial
// Laplacian belonging to λ₁ (the Fiedler vector) by inverse iteration
// on the deflated Laplacian: repeatedly solve L·x = b restricted to
// the subspace orthogonal to the constant vector, using conjugate
// gradients (L is positive semidefinite with nullspace = span{1} on a
// connected graph). The sign structure of the result locates the
// overlay's sparsest cut — the diagnostic behind a low λ₁ in E2.
//
// The graph must be connected; on a disconnected graph CG stalls and
// an error is returned.
func FiedlerVector(g *graph.Graph, iters int, seed int64) ([]float64, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("spectral: Fiedler vector needs >= 2 nodes")
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("spectral: Fiedler vector requires a connected graph")
	}
	if iters <= 0 {
		iters = 30
	}
	rng := rand.New(rand.NewSource(seed))
	ones := 1 / math.Sqrt(float64(n))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	deflate(x, ones)
	if nrm := norm(x); nrm == 0 {
		return nil, fmt.Errorf("spectral: degenerate start vector")
	} else {
		scale(x, 1/nrm)
	}
	b := make([]float64, n)
	for it := 0; it < iters; it++ {
		copy(b, x)
		sol, err := cgSolveLaplacian(g, b, ones, 200, 1e-10)
		if err != nil {
			return nil, err
		}
		deflate(sol, ones)
		nrm := norm(sol)
		if nrm == 0 {
			return nil, fmt.Errorf("spectral: inverse iteration collapsed")
		}
		scale(sol, 1/nrm)
		copy(x, sol)
	}
	return x, nil
}

// cgSolveLaplacian solves L·x = b by conjugate gradients in the
// subspace orthogonal to the constant vector (entry value `ones`),
// where L is g's combinatorial Laplacian. b must already be deflated.
func cgSolveLaplacian(g *graph.Graph, b []float64, ones float64, maxIter int, tol float64) ([]float64, error) {
	n := g.N()
	x := make([]float64, n)
	r := make([]float64, n)
	copy(r, b)
	p := make([]float64, n)
	copy(p, r)
	ap := make([]float64, n)
	rs := dot(r, r)
	if math.Sqrt(rs) < tol {
		return x, nil
	}
	for it := 0; it < maxIter; it++ {
		lapMatVec(g, p, ap)
		deflate(ap, ones)
		den := dot(p, ap)
		if den <= 0 {
			// L restricted to 1-perp is positive definite on a
			// connected graph; a non-positive curvature means the
			// graph is disconnected (or numerics collapsed).
			return nil, fmt.Errorf("spectral: CG breakdown (disconnected graph?)")
		}
		alpha := rs / den
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		if math.Sqrt(rsNew) < tol {
			return x, nil
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return x, nil // best effort after maxIter; inverse iteration tolerates it
}

// SpectralBisection partitions a connected graph by the sign of its
// Fiedler vector and returns the node mask of the non-negative side
// together with the number of edges crossing the cut. On overlays
// with a thin-cut cluster, the smaller side IS that cluster.
func SpectralBisection(g *graph.Graph, seed int64) (side []bool, cutEdges int, err error) {
	v, err := FiedlerVector(g, 30, seed)
	if err != nil {
		return nil, 0, err
	}
	side = make([]bool, g.N())
	for i, x := range v {
		side[i] = x >= 0
	}
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u && side[u] != side[w] {
				cutEdges++
			}
		}
	}
	return side, cutEdges, nil
}
