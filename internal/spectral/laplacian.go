package spectral

import (
	"math"

	"makalu/internal/graph"
)

// LaplacianDense materializes the combinatorial Laplacian L = D - A of
// g as a dense row-major matrix. Intended for graphs small enough for
// the dense eigensolver.
func LaplacianDense(g *graph.Graph) []float64 {
	n := g.N()
	a := make([]float64, n*n)
	for u := 0; u < n; u++ {
		a[u*n+u] = float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			a[u*n+int(v)] = -1
		}
	}
	return a
}

// NormalizedLaplacianDense materializes the normalized Laplacian
// 𝓛 = I - D^{-1/2} A D^{-1/2}. Isolated vertices contribute a zero
// row/column, i.e. eigenvalue 0, following Chung's convention — which
// is what makes the multiplicity of eigenvalue 0 count connected
// components (isolated vertices are components).
func NormalizedLaplacianDense(g *graph.Graph) []float64 {
	n := g.N()
	a := make([]float64, n*n)
	invSqrt := make([]float64, n)
	for u := 0; u < n; u++ {
		if d := g.Degree(u); d > 0 {
			invSqrt[u] = 1 / math.Sqrt(float64(d))
		}
	}
	for u := 0; u < n; u++ {
		if g.Degree(u) > 0 {
			a[u*n+u] = 1
		}
		for _, v := range g.Neighbors(u) {
			a[u*n+int(v)] = -invSqrt[u] * invSqrt[v]
		}
	}
	return a
}

// Spectrum returns the ascending eigenvalues of the combinatorial
// Laplacian of g (dense computation).
func Spectrum(g *graph.Graph) ([]float64, error) {
	return SymEigenvalues(LaplacianDense(g), g.N())
}

// NormalizedSpectrum returns the ascending eigenvalues of the
// normalized Laplacian of g, all within [0, 2] up to roundoff.
func NormalizedSpectrum(g *graph.Graph) ([]float64, error) {
	return SymEigenvalues(NormalizedLaplacianDense(g), g.N())
}

// Multiplicity counts eigenvalues within tol of target in an
// ascending spectrum. The paper reads the multiplicity of eigenvalue
// 0 (connected components) and of eigenvalue 1 (weakly connected
// "edge" nodes) off the normalized spectrum.
func Multiplicity(spectrum []float64, target, tol float64) int {
	count := 0
	for _, v := range spectrum {
		if math.Abs(v-target) <= tol {
			count++
		}
	}
	return count
}

// SpectrumPoint is one point of the normalized-rank spectrum plot of
// Figure 1: X is the normalized rank r_i/(n-1) in [0,1], Y the
// eigenvalue in [0,2].
type SpectrumPoint struct {
	X, Y float64
}

// NormalizedRankPoints converts an ascending spectrum to the (x, y)
// series the paper plots: x_i = i/(n-1), y_i = λ_i.
func NormalizedRankPoints(spectrum []float64) []SpectrumPoint {
	n := len(spectrum)
	pts := make([]SpectrumPoint, n)
	den := float64(n - 1)
	if n == 1 {
		den = 1
	}
	for i, v := range spectrum {
		pts[i] = SpectrumPoint{X: float64(i) / den, Y: v}
	}
	return pts
}

// SpectrumDistance returns the mean absolute difference between two
// normalized-rank spectra, comparing them as step functions sampled
// at `samples` evenly spaced ranks. It quantifies the paper's visual
// claim that the failed-Makalu spectrum "remained similar" to the
// ideal k-regular spectrum even though the graphs have different
// sizes.
func SpectrumDistance(a, b []float64, samples int) float64 {
	if len(a) == 0 || len(b) == 0 || samples <= 0 {
		return math.NaN()
	}
	sum := 0.0
	for s := 0; s < samples; s++ {
		x := float64(s) / float64(samples-1+boolToInt(samples == 1))
		sum += math.Abs(sampleSpectrum(a, x) - sampleSpectrum(b, x))
	}
	return sum / float64(samples)
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// sampleSpectrum evaluates an ascending spectrum at normalized rank
// x ∈ [0,1] with linear interpolation.
func sampleSpectrum(spec []float64, x float64) float64 {
	n := len(spec)
	if n == 1 {
		return spec[0]
	}
	pos := x * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return spec[n-1]
	}
	frac := pos - float64(lo)
	return spec[lo]*(1-frac) + spec[lo+1]*frac
}
