package spectral

import (
	"math"
	"testing"

	"makalu/internal/graph"
)

func TestFiedlerVectorPathIsMonotone(t *testing.T) {
	// The path graph's Fiedler vector is cos(π(i+0.5)/n): strictly
	// monotone along the path.
	n := 24
	v, err := FiedlerVector(pathGraph(n), 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Orient so it increases.
	if v[0] > v[n-1] {
		for i := range v {
			v[i] = -v[i]
		}
	}
	for i := 1; i < n; i++ {
		if v[i] <= v[i-1] {
			t.Fatalf("path Fiedler vector not monotone at %d: %v <= %v", i, v[i], v[i-1])
		}
	}
	// Rayleigh quotient must approximate λ₁ = 2 - 2cos(π/n).
	want := 2 - 2*math.Cos(math.Pi/float64(n))
	if got := rayleigh(pathGraph(n), v); math.Abs(got-want) > 1e-6 {
		t.Fatalf("Rayleigh quotient %v, want %v", got, want)
	}
}

func rayleigh(g *graph.Graph, v []float64) float64 {
	lv := make([]float64, len(v))
	lapMatVec(g, v, lv)
	return dot(v, lv) / dot(v, v)
}

func TestFiedlerVectorOrthogonalToOnes(t *testing.T) {
	v, err := FiedlerVector(cycleGraph(30), 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum) > 1e-8 {
		t.Fatalf("Fiedler vector not orthogonal to 1: sum = %v", sum)
	}
	if math.Abs(norm(v)-1) > 1e-9 {
		t.Fatalf("Fiedler vector not normalized: %v", norm(v))
	}
}

func TestFiedlerVectorValidation(t *testing.T) {
	if _, err := FiedlerVector(pathGraph(1), 10, 1); err == nil {
		t.Fatal("single node accepted")
	}
	g := graph.NewMutable(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if _, err := FiedlerVector(g.Freeze(nil), 10, 1); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestSpectralBisectionFindsBridge(t *testing.T) {
	// Two K6 cliques joined by a single bridge edge: the sparsest cut
	// is that bridge, and bisection must recover it exactly.
	g := graph.NewMutable(12)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(i, j)
			g.AddEdge(6+i, 6+j)
		}
	}
	g.AddEdge(0, 6)
	side, cut, err := SpectralBisection(g.Freeze(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Fatalf("cut = %d edges, want 1 (the bridge)", cut)
	}
	// Each clique must land entirely on one side.
	for i := 1; i < 6; i++ {
		if side[i] != side[0] {
			t.Fatal("first clique split across sides")
		}
		if side[6+i] != side[6] {
			t.Fatal("second clique split across sides")
		}
	}
	if side[0] == side[6] {
		t.Fatal("cliques not separated")
	}
}

func TestSpectralBisectionBalancedOnCycle(t *testing.T) {
	// A cycle's Fiedler cut is two edges splitting it into two arcs of
	// near-equal length.
	side, cut, err := SpectralBisection(cycleGraph(40), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 2 {
		t.Fatalf("cycle cut = %d edges, want 2", cut)
	}
	count := 0
	for _, s := range side {
		if s {
			count++
		}
	}
	if count < 15 || count > 25 {
		t.Fatalf("unbalanced bisection: %d vs %d", count, 40-count)
	}
}
