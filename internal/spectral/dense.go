// Package spectral implements the spectral graph analysis of §3.3–3.4:
// Laplacian and normalized-Laplacian eigenvalue spectra (dense
// Householder tridiagonalization + implicit-shift QL) and a sparse
// Lanczos estimator for the algebraic connectivity λ₁ of large
// overlays. Everything is stdlib-only and deterministic.
package spectral

import (
	"fmt"
	"math"
	"sort"
)

// SymEigenvalues returns all eigenvalues of the dense symmetric n×n
// matrix a (row-major), in ascending order. The input slice is
// consumed as scratch and left in an unspecified state. Complexity is
// O(n³); intended for matrices up to a few thousand rows.
func SymEigenvalues(a []float64, n int) ([]float64, error) {
	if len(a) != n*n {
		return nil, fmt.Errorf("spectral: matrix needs %d entries, got %d", n*n, len(a))
	}
	if n == 0 {
		return nil, nil
	}
	d, e := tridiagonalize(a, n)
	if err := tridiagEigen(d, e); err != nil {
		return nil, err
	}
	sort.Float64s(d)
	return d, nil
}

// tridiagonalize reduces the symmetric matrix a (row-major n×n, which
// it destroys) to tridiagonal form via Householder similarity
// transforms, returning the diagonal d and subdiagonal e
// (e[i] couples d[i] and d[i+1]; e[n-1] is zero).
func tridiagonalize(a []float64, n int) (d, e []float64) {
	d = make([]float64, n)
	e = make([]float64, n)
	if n == 1 {
		d[0] = a[0]
		return d, e
	}
	v := make([]float64, n)
	p := make([]float64, n)
	for i := 0; i < n-2; i++ {
		m := n - i - 1 // size of the trailing block below row i
		// Column segment x = a[i+1..n-1][i].
		norm2 := 0.0
		for k := 0; k < m; k++ {
			x := a[(i+1+k)*n+i]
			v[k] = x
			norm2 += x * x
		}
		norm := math.Sqrt(norm2)
		if norm == 0 {
			e[i] = 0
			continue
		}
		alpha := -norm
		if v[0] < 0 {
			alpha = norm
		}
		// v = x - alpha*e1, normalized.
		v[0] -= alpha
		vn2 := 0.0
		for k := 0; k < m; k++ {
			vn2 += v[k] * v[k]
		}
		if vn2 == 0 {
			e[i] = alpha
			continue
		}
		inv := 1 / math.Sqrt(vn2)
		for k := 0; k < m; k++ {
			v[k] *= inv
		}
		// p = A_sub * v over the trailing (m×m) block.
		for r := 0; r < m; r++ {
			sum := 0.0
			row := (i + 1 + r) * n
			for k := 0; k < m; k++ {
				sum += a[row+i+1+k] * v[k]
			}
			p[r] = sum
		}
		beta := 0.0
		for k := 0; k < m; k++ {
			beta += v[k] * p[k]
		}
		// q = p - beta*v ; A_sub -= 2 v qᵀ + 2 q vᵀ.
		for k := 0; k < m; k++ {
			p[k] -= beta * v[k]
		}
		for r := 0; r < m; r++ {
			row := (i + 1 + r) * n
			vr, qr := v[r], p[r]
			for k := 0; k < m; k++ {
				a[row+i+1+k] -= 2 * (vr*p[k] + qr*v[k])
			}
		}
		// Column i now reduces to a single subdiagonal entry alpha.
		e[i] = alpha
	}
	e[n-2] = a[(n-1)*n+n-2]
	for i := 0; i < n; i++ {
		d[i] = a[i*n+i]
	}
	return d, e
}

// tridiagEigen computes, in place, the eigenvalues of the symmetric
// tridiagonal matrix with diagonal d and subdiagonal e (e[i] couples
// rows i and i+1; e[len-1] ignored) using the implicit-shift QL
// algorithm. On return d holds the (unsorted) eigenvalues.
func tridiagEigen(d, e []float64) error {
	n := len(d)
	if n == 0 {
		return nil
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			var m int
			for m = l; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= machEps*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > 50 {
				return fmt.Errorf("spectral: QL failed to converge at row %d", l)
			}
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			i := m - 1
			for ; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && i >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// machEps is the relative tolerance used for off-diagonal negligibility.
const machEps = 2.3e-16
