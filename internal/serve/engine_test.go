package serve

import (
	"fmt"
	"sync"
	"testing"

	"makalu/internal/content"
	"makalu/internal/graph"
	"makalu/internal/search"
	"makalu/internal/trace"
)

// testOverlay builds a small deterministic ring-with-chords graph and
// a content placement over it — enough structure for flood/walk/ABF to
// find things without building a real Makalu overlay in a unit test.
func testOverlay(t testing.TB, n, objects int) (*graph.Graph, *content.Store) {
	t.Helper()
	m := graph.NewMutable(n)
	for i := 0; i < n; i++ {
		m.AddEdge(i, (i+1)%n)
		m.AddEdge(i, (i+7)%n)
		m.AddEdge(i, (i+31)%n)
	}
	g := m.Freeze(nil)
	store, err := content.Place(n, content.PlacementConfig{
		Objects: objects, Replication: 0.02, MinReplicas: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, store
}

func testABF(t testing.TB, g *graph.Graph, store *content.Store) *search.ABFNetwork {
	t.Helper()
	net, err := search.BuildABFNetwork(g, store, search.DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// zipfRequests derives a request workload from the trace model's Zipf
// stream: the exact popularity skew the cache is designed for.
func zipfRequests(t testing.TB, store *content.Store, count int, seed int64) []Request {
	t.Helper()
	objs := store.Objects()
	s, err := trace.NewStream(trace.StreamConfig{
		Duration: float64(count), Rate: 1.2, Objects: len(objs), ZipfExp: 1.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	mechs := []Mechanism{MechFlood, MechWalk, MechABF}
	reqs := make([]Request, 0, count)
	for len(reqs) < count {
		ev, ok := s.Next()
		if !ok {
			t.Fatal("trace stream exhausted early")
		}
		mech := mechs[len(reqs)%len(mechs)]
		ttl := 4
		if mech != MechFlood {
			ttl = 256
		}
		reqs = append(reqs, Request{Mech: mech, Object: objs[ev.Object], TTL: ttl})
	}
	return reqs
}

// TestCacheEquivalence is the tentpole determinism pin: serving with
// the cache on returns bit-identical results to serving with it off,
// for the same seed and overlay epoch, under concurrent clients (run
// with -race in CI). The cache is a pure memo or this fails.
func TestCacheEquivalence(t *testing.T) {
	g, store := testOverlay(t, 600, 80)
	abf := testABF(t, g, store)
	mk := func(cacheCap int) *Engine {
		e, err := New(Config{
			Graph: g, Store: store, ABF: abf,
			Shards: 4, Seed: 42, CacheCapacity: cacheCap,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	cached := mk(512)
	uncached := mk(0)
	defer cached.Close()
	defer uncached.Close()

	reqs := zipfRequests(t, store, 1200, 7)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	per := len(reqs) / clients
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				a, err := cached.Lookup(reqs[i])
				if err != nil {
					errs <- fmt.Errorf("cached lookup %d: %w", i, err)
					return
				}
				b, err := uncached.Lookup(reqs[i])
				if err != nil {
					errs <- fmt.Errorf("uncached lookup %d: %w", i, err)
					return
				}
				if a.Result != b.Result {
					errs <- fmt.Errorf("req %d (%+v): cached %+v != uncached %+v",
						i, reqs[i], a.Result, b.Result)
					return
				}
			}
		}(c*per, (c+1)*per)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cached.CacheSize() == 0 {
		t.Fatal("cache never filled — the equivalence test proved nothing")
	}
	// The Zipf head must actually be hitting: re-serve the workload and
	// demand a hit rate (every repeated request is now resident or
	// promoted).
	hits := 0
	for _, r := range reqs[:300] {
		resp, err := cached.Lookup(r)
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit {
			hits++
		}
	}
	if hits < 150 {
		t.Fatalf("replay hit only %d/300 — popularity caching is not engaging", hits)
	}
}

// TestServingDeterminismAcrossRestart pins that a fresh engine with
// the same seed serves the same results — the property that makes
// BENCH_serve rows reproducible.
func TestServingDeterminismAcrossRestart(t *testing.T) {
	g, store := testOverlay(t, 400, 50)
	abf := testABF(t, g, store)
	reqs := zipfRequests(t, store, 200, 9)
	serveAll := func(shards int) []search.Result {
		e, err := New(Config{Graph: g, Store: store, ABF: abf, Shards: shards, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		out := make([]search.Result, len(reqs))
		for i, r := range reqs {
			resp, err := e.Lookup(r)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = resp.Result
		}
		return out
	}
	a := serveAll(4)
	b := serveAll(1) // different shard count must not matter
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("req %d: %+v != %+v across restart/shard-count", i, a[i], b[i])
		}
	}
}

// TestEpochInvalidation proves a snapshot swap makes stale cached
// results unservable: after UpdateSnapshot the epoch changes, the
// cache purges, and answers come from the new placement.
func TestEpochInvalidation(t *testing.T) {
	g, store := testOverlay(t, 400, 50)
	e, err := New(Config{Graph: g, Store: store, Shards: 2, Seed: 5, CacheCapacity: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	req := Request{Mech: MechFlood, Object: store.Objects()[0], TTL: 4}
	first, err := e.Lookup(req)
	if err != nil {
		t.Fatal(err)
	}
	again, err := e.Lookup(req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Result != first.Result {
		t.Fatalf("second lookup should hit with the identical memo: %+v vs %+v", again, first)
	}

	// New placement, new epoch: same object ids, different replicas.
	store2, err := content.Place(g.N(), content.PlacementConfig{
		Objects: 50, Replication: 0.02, MinReplicas: 2, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UpdateSnapshot(g, store2, nil); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", e.Epoch())
	}
	if e.CacheSize() != 0 {
		t.Fatalf("cache holds %d entries across an epoch change", e.CacheSize())
	}
	post, err := e.Lookup(req)
	if err != nil {
		t.Fatal(err)
	}
	if post.CacheHit {
		t.Fatal("first lookup after an epoch change served from cache")
	}
	if post.Epoch != 1 {
		t.Fatalf("response epoch = %d, want 1", post.Epoch)
	}
}

func TestLookupValidation(t *testing.T) {
	g, store := testOverlay(t, 200, 20)
	e, err := New(Config{Graph: g, Store: store, Shards: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Lookup(Request{Mech: MechFlood, Object: 1, TTL: 0}); err == nil {
		t.Fatal("TTL 0 must be rejected")
	}
	if _, err := e.Lookup(Request{Mech: MechABF, Object: 1, TTL: 4}); err != ErrNoABF {
		t.Fatalf("ABF without an index: err = %v, want ErrNoABF", err)
	}
	if _, err := e.Lookup(Request{Mech: Mechanism(9), Object: 1, TTL: 4}); err == nil {
		t.Fatal("unknown mechanism must be rejected")
	}
	// Over-budget TTLs clamp rather than fail, and the clamp is part of
	// the key (the request that ran is the request that was cached).
	r := Request{Mech: MechFlood, Object: store.Objects()[0], TTL: 1 << 20}
	if _, err := e.Lookup(r); err != nil {
		t.Fatalf("over-budget TTL should clamp, got %v", err)
	}
}

func TestEngineClose(t *testing.T) {
	g, store := testOverlay(t, 200, 20)
	e, err := New(Config{Graph: g, Store: store, Shards: 2, Seed: 1, CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Mech: MechFlood, Object: store.Objects()[0], TTL: 4}
	if _, err := e.Lookup(req); err != nil {
		t.Fatal(err)
	}
	if resp, err := e.Lookup(req); err != nil || !resp.CacheHit {
		t.Fatalf("second lookup should be a cache hit, got %+v err %v", resp, err)
	}
	e.Close()
	e.Close() // idempotent
	// ErrClosed covers the cache-hit fast path too: a request whose
	// result is resident must still be refused after Close.
	if _, err := e.Lookup(req); err != ErrClosed {
		t.Fatalf("cached lookup after close: err = %v, want ErrClosed", err)
	}
	if _, err := e.Lookup(Request{Mech: MechFlood, Object: store.Objects()[1], TTL: 4}); err != ErrClosed {
		t.Fatalf("lookup after close: err = %v, want ErrClosed", err)
	}
}

// TestConcurrentSnapshotUpdates pins that racing UpdateSnapshot calls
// never install the same epoch for different snapshots — a shared
// epoch would let one topology's cached results pass the other's
// epoch check.
func TestConcurrentSnapshotUpdates(t *testing.T) {
	g, store := testOverlay(t, 200, 20)
	e, err := New(Config{Graph: g, Store: store, Shards: 2, Seed: 1, CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	const updaters, rounds = 4, 25
	var wg sync.WaitGroup
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := e.UpdateSnapshot(g, store, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := e.Epoch(); got != updaters*rounds {
		t.Fatalf("epoch = %d after %d updates — epochs were reused", got, updaters*rounds)
	}
}

func TestRequestKeyStability(t *testing.T) {
	a := Request{Mech: MechFlood, Object: 0xdead, TTL: 4}
	if a.Key() != (Request{Mech: MechFlood, Object: 0xdead, TTL: 4}).Key() {
		t.Fatal("equal requests must share a key")
	}
	distinct := map[uint64]Request{}
	for _, r := range []Request{
		a,
		{Mech: MechWalk, Object: 0xdead, TTL: 4},
		{Mech: MechABF, Object: 0xdead, TTL: 4},
		{Mech: MechFlood, Object: 0xbeef, TTL: 4},
		{Mech: MechFlood, Object: 0xdead, TTL: 5},
		// Regression: a raw-XOR key let small fields cancel — obj^mech
		// (4^0 == 5^1) and obj bits >= 8 aliasing against TTL<<8
		// (obj=0x200,ttl=1 == obj=0,ttl=3) collided, serving one
		// request the other's cached result.
		{Mech: MechFlood, Object: 4, TTL: 7},
		{Mech: MechWalk, Object: 5, TTL: 7},
		{Mech: MechFlood, Object: 0x200, TTL: 1},
		{Mech: MechFlood, Object: 0, TTL: 3},
	} {
		if prev, dup := distinct[r.Key()]; dup {
			t.Fatalf("key collision between %+v and %+v", prev, r)
		}
		distinct[r.Key()] = r
	}
}
