// Package serve turns a built Makalu overlay into a query-serving
// daemon: an HTTP/JSON and raw-TCP lookup API over the identifier
// index and the flood/walk engines, a sharded popularity-aware result
// cache, per-client token-bucket rate limiting, and bounded-queue
// backpressure that sheds load instead of collapsing.
//
// The serving kernel is the batch engine's: each shard worker owns one
// search.Kernel (the reusable per-worker scratch bundle BatchRunner
// gives its workers) and requests are micro-batched per shard — the
// worker drains whatever has queued inside the admission window and
// runs it back to back on the kernel, so steady-state misses pay the
// same near-zero dispatch cost as a batch query.
//
// Determinism is the load-bearing property: a query's randomness
// derives from (service seed, overlay epoch, request key), never from
// arrival order, worker identity, or cache state. Identical requests
// are identical queries, which is what makes the result cache a pure
// memo — serving with the cache on returns bit-identical results to
// serving with it off, pinned by TestCacheEquivalence.
package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"makalu/internal/content"
	"makalu/internal/graph"
	"makalu/internal/obs"
	"makalu/internal/search"
)

// Mechanism selects the search engine a request runs on.
type Mechanism uint8

const (
	// MechFlood is TTL-controlled flooding (Request.TTL = hop budget).
	MechFlood Mechanism = iota
	// MechWalk is the k-walker random walk (Request.TTL = per-walker
	// step budget).
	MechWalk
	// MechABF is attenuated-Bloom-filter identifier routing
	// (Request.TTL = message budget); requires Config.ABF.
	MechABF
)

// String names the mechanism as the wire protocols spell it.
func (m Mechanism) String() string {
	switch m {
	case MechFlood:
		return "flood"
	case MechWalk:
		return "walk"
	case MechABF:
		return "abf"
	}
	return fmt.Sprintf("mech(%d)", uint8(m))
}

// ParseMechanism inverts String.
func ParseMechanism(s string) (Mechanism, error) {
	switch s {
	case "flood":
		return MechFlood, nil
	case "walk":
		return MechWalk, nil
	case "abf":
		return MechABF, nil
	}
	return 0, fmt.Errorf("serve: unknown mechanism %q (want flood|walk|abf)", s)
}

// Request is one lookup: find Object with the given mechanism and
// budget. The source node is not a parameter — the daemon is the
// network's entry point, and deriving the source from the request key
// keeps identical requests identical queries (the cache contract).
type Request struct {
	Mech   Mechanism
	Object uint64
	TTL    int
}

// Key hashes the request to its cache/shard key (chained splitmix64
// finalizers; stable across processes). Each field is mixed before the
// next is folded in — XORing raw fields first would let small-integer
// object ids alias against TTL and mechanism bits, and a colliding
// request would be served the other request's cached Result.
func (r Request) Key() uint64 {
	h := mix64(r.Object ^ 0x51ab7df2c1e3a9b5)
	h = mix64(h ^ uint64(r.TTL))
	return mix64(h ^ uint64(r.Mech))
}

// Response reports one served lookup.
type Response struct {
	Result   search.Result
	CacheHit bool
	Epoch    uint64
}

// Errors the serving path returns. ErrOverloaded is the shed signal:
// the frontends translate it to 429 + Retry-After.
var (
	ErrOverloaded = errors.New("serve: shard queue full, request shed")
	ErrClosed     = errors.New("serve: engine closed")
	ErrNoABF      = errors.New("serve: no identifier index loaded (start with ABF routing state for mech=abf)")
)

// Config configures an Engine. Graph and Store are required; ABF is
// needed only for MechABF requests.
type Config struct {
	Graph *graph.Graph
	Store *content.Store
	ABF   *search.ABFNetwork

	// Shards is the worker/queue/cache-partition count (default
	// GOMAXPROCS). Requests hash to a shard by key, so one key always
	// lands on one worker and one cache partition.
	Shards int
	// QueueDepth bounds each shard's admission queue; a request
	// arriving at a full queue is shed with ErrOverloaded. The default
	// (4× the window) keeps worst-case queue wait within a few
	// micro-batches — the shed-vs-queue policy is "queue briefly, then
	// refuse", never "queue unboundedly" (see DESIGN).
	QueueDepth int
	// Window is the micro-batch admission window: the most queued
	// requests one worker drains and runs back to back on its kernel
	// (default 32).
	Window int

	// CacheCapacity is the total result-cache entry budget, split
	// evenly across shards; 0 disables the cache.
	CacheCapacity int
	// CacheProtectedFrac is the protected-segment fraction of each
	// cache shard (default 0.8).
	CacheProtectedFrac float64

	// Seed drives all per-query randomness (with the epoch and request
	// key); equal seeds serve bit-identical results.
	Seed int64

	// Walkers is the walker count for MechWalk (default 16).
	Walkers int
	// MaxFloodTTL, MaxWalkSteps and MaxABFTTL clamp request budgets
	// (defaults 8, 4096, 1024).
	MaxFloodTTL  int
	MaxWalkSteps int
	MaxABFTTL    int

	// Metrics receives request counters and latency histograms; nil
	// disables instrumentation at the usual one-branch cost.
	Metrics *obs.Registry

	// testDelay throttles every computed (non-cached) query by this
	// much inside the worker. Test hook: makes saturation deterministic
	// for the load-shed tests without relying on machine speed.
	testDelay time.Duration
	// testOnExecute is called inside the shard worker immediately
	// before a kernel execution. Test hook: the singleflight test uses
	// it to count kernel calls and to hold the worker at a known point.
	testOnExecute func(Request)
}

// snapshot is the immutable serving state one epoch runs over; a
// topology or placement change installs a new snapshot (and epoch)
// atomically.
type snapshot struct {
	epoch uint64
	g     *graph.Graph
	store *content.Store
	abf   *search.ABFNetwork
}

// pending is one admitted request waiting for its shard worker.
type pending struct {
	req      Request
	key      uint64
	enqueued time.Time // zero unless queue-wait observation is on
	done     chan Response
}

var pendingPool = sync.Pool{
	New: func() any { return &pending{done: make(chan Response, 1)} },
}

// flight is one in-progress kernel execution a group of identical-key
// lookups shares: the first miss (the leader) enqueues the work, later
// misses for the same key park on done instead of enqueuing a
// duplicate. Safe because a response is a pure function of
// (seed, epoch, key) — every waiter would have computed the identical
// result, so handing them the leader's answer is value-neutral.
type flight struct {
	done chan struct{} // closed by the leader once resp/err are set
	resp Response
	err  error
}

// shard is one serving lane: a bounded queue, a worker-owned kernel
// (created inside the worker goroutine), a cache partition, and the
// in-flight table for miss coalescing.
type shard struct {
	queue   chan *pending
	mu      sync.Mutex         // guards cache and flights
	cache   *slru              // nil when caching is off
	flights map[uint64]*flight // key -> in-progress computation
}

// Engine is the query-serving core. Frontends (HTTP, TCP line
// protocol, in-process tests and benchmarks) call Lookup from any
// number of goroutines.
type Engine struct {
	cfg    Config
	snap   atomic.Pointer[snapshot]
	snapMu sync.Mutex // serializes UpdateSnapshot's epoch bump
	shards []*shard

	mu     sync.RWMutex // guards closed vs in-flight enqueues
	closed bool
	wg     sync.WaitGroup

	requests  *obs.Counter
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	shed      *obs.Counter
	errs      *obs.Counter
	latency   *obs.Histogram
	queueWait *obs.Histogram
	batchSize *obs.Histogram
	epochG    *obs.Gauge
	cacheLen  *obs.Gauge
}

// New validates cfg, starts the shard workers, and returns the engine
// at epoch 0.
func New(cfg Config) (*Engine, error) {
	if cfg.Graph == nil || cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Graph and Config.Store are required")
	}
	if cfg.Graph.N() != cfg.Store.N() {
		return nil, fmt.Errorf("serve: graph has %d nodes, store %d", cfg.Graph.N(), cfg.Store.N())
	}
	if cfg.Graph.N() == 0 {
		return nil, fmt.Errorf("serve: empty overlay")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards()
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Window
	}
	if cfg.Walkers <= 0 {
		cfg.Walkers = 16
	}
	if cfg.MaxFloodTTL <= 0 {
		cfg.MaxFloodTTL = 8
	}
	if cfg.MaxWalkSteps <= 0 {
		cfg.MaxWalkSteps = 4096
	}
	if cfg.MaxABFTTL <= 0 {
		cfg.MaxABFTTL = 1024
	}
	e := &Engine{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	if reg := cfg.Metrics; reg != nil {
		e.requests = reg.Counter("serve.requests")
		e.hits = reg.Counter("serve.cache_hits")
		e.misses = reg.Counter("serve.cache_misses")
		e.coalesced = reg.Counter("serve.coalesced")
		e.shed = reg.Counter("serve.shed")
		e.errs = reg.Counter("serve.errors")
		e.latency = reg.Histogram("serve.latency_ns")
		e.queueWait = reg.Histogram("serve.queue_wait_ns")
		e.batchSize = reg.Histogram("serve.batch_size")
		e.epochG = reg.Gauge("serve.epoch")
		e.cacheLen = reg.Gauge("serve.cache_entries")
	}
	perShard := 0
	if cfg.CacheCapacity > 0 {
		perShard = cfg.CacheCapacity / cfg.Shards
		if perShard < 8 {
			perShard = 8
		}
	}
	for i := range e.shards {
		sh := &shard{queue: make(chan *pending, cfg.QueueDepth), flights: make(map[uint64]*flight)}
		if perShard > 0 {
			sh.cache = newSLRU(perShard, cfg.CacheProtectedFrac)
		}
		e.shards[i] = sh
	}
	e.snap.Store(&snapshot{epoch: 0, g: cfg.Graph, store: cfg.Store, abf: cfg.ABF})
	for i, sh := range e.shards {
		e.wg.Add(1)
		go e.worker(i, sh)
	}
	return e, nil
}

// Epoch returns the current overlay epoch.
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// Shards returns the shard count (frontends size client pools off it).
func (e *Engine) Shards() int { return len(e.shards) }

// Objects returns the servable object catalog from the current
// snapshot — what /objects hands to load generators.
func (e *Engine) Objects() []uint64 { return e.snap.Load().store.Objects() }

// CacheSize returns the resident entry count across all cache shards.
func (e *Engine) CacheSize() int {
	total := 0
	for _, sh := range e.shards {
		if sh.cache != nil {
			sh.mu.Lock()
			total += sh.cache.size()
			sh.mu.Unlock()
		}
	}
	return total
}

// UpdateSnapshot installs a new serving snapshot — the overlay changed
// (churn, heal, re-placement) — and bumps the epoch, which invalidates
// every cached result: entries are epoch-stamped, so stale hits are
// impossible the instant the pointer swaps, and each shard's stale
// entries are purged as its worker notices the new epoch. Safe to call
// from any number of goroutines: updates are serialized so every
// snapshot gets a distinct epoch (a shared epoch across two graphs
// would let one graph's cached results pass the other's epoch check).
func (e *Engine) UpdateSnapshot(g *graph.Graph, store *content.Store, abf *search.ABFNetwork) error {
	if g == nil || store == nil {
		return fmt.Errorf("serve: nil snapshot")
	}
	if g.N() != store.N() {
		return fmt.Errorf("serve: graph has %d nodes, store %d", g.N(), store.N())
	}
	e.snapMu.Lock()
	old := e.snap.Load()
	e.snap.Store(&snapshot{epoch: old.epoch + 1, g: g, store: store, abf: abf})
	e.snapMu.Unlock()
	e.epochG.Set(int64(old.epoch + 1))
	// Explicit invalidation: return the memory now instead of letting
	// stale entries age out through the lazy epoch check.
	for _, sh := range e.shards {
		if sh.cache != nil {
			sh.mu.Lock()
			sh.cache.purge()
			sh.mu.Unlock()
		}
	}
	e.syncCacheLen()
	return nil
}

// Lookup serves one request: validate, consult the shard's cache, and
// on a miss run it through the shard worker's kernel — unless an
// identical-key miss is already in flight, in which case this call
// parks on it and shares the one kernel execution (singleflight miss
// coalescing). Blocks until the result is ready; sheds with
// ErrOverloaded when the shard queue is full. A coalesced group sheds
// together: if the leader's enqueue is refused, every waiter gets
// ErrOverloaded too.
func (e *Engine) Lookup(req Request) (Response, error) {
	snap := e.snap.Load()
	if err := e.validate(&req, snap); err != nil {
		e.errs.Inc()
		return Response{}, err
	}
	e.requests.Inc()
	start := time.Time{}
	if e.latency != nil {
		start = time.Now()
	}
	key := req.Key()
	sh := e.shards[key%uint64(len(e.shards))]
	// The closed check guards the cache probe too: after Close every
	// path out of Lookup is ErrClosed, cached or not, as documented.
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return Response{}, ErrClosed
	}
	// Cache probe and flight join/create are one critical section: a
	// request can never miss both the cache fill and the flight that
	// produced it.
	sh.mu.Lock()
	if sh.cache != nil {
		if res, ok := sh.cache.get(key, snap.epoch); ok {
			sh.mu.Unlock()
			e.mu.RUnlock()
			e.hits.Inc()
			if e.latency != nil {
				e.latency.Since(start)
			}
			return Response{Result: res, CacheHit: true, Epoch: snap.epoch}, nil
		}
		e.misses.Inc()
	}
	if f, ok := sh.flights[key]; ok {
		// Join the in-flight computation. The response carries the
		// epoch the leader's execution ran under, which (as for any
		// request racing a snapshot swap) may trail the epoch this
		// caller observed.
		sh.mu.Unlock()
		e.mu.RUnlock()
		e.coalesced.Inc()
		<-f.done
		if e.latency != nil {
			e.latency.Since(start)
		}
		return f.resp, f.err
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	p := pendingPool.Get().(*pending)
	p.req = req
	p.key = key
	if e.queueWait != nil {
		p.enqueued = time.Now()
	} else {
		p.enqueued = time.Time{}
	}
	select {
	case sh.queue <- p:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		pendingPool.Put(p)
		e.shed.Inc()
		sh.mu.Lock()
		delete(sh.flights, key)
		sh.mu.Unlock()
		f.err = ErrOverloaded
		close(f.done)
		return Response{}, ErrOverloaded
	}
	resp := <-p.done
	pendingPool.Put(p)
	// Publish to waiters: drop the flight first (the result is already
	// in the cache, so late arrivals hit), then release them.
	sh.mu.Lock()
	delete(sh.flights, key)
	sh.mu.Unlock()
	f.resp = resp
	close(f.done)
	if e.latency != nil {
		e.latency.Since(start)
	}
	return resp, nil
}

// QueueDepth returns the total number of admitted-but-unserved
// requests across all shard queues — the saturation signal /healthz
// and the TCP Z status line expose to the gateway health checker.
func (e *Engine) QueueDepth() int {
	total := 0
	for _, sh := range e.shards {
		total += len(sh.queue)
	}
	return total
}

// validate clamps budgets and checks the mechanism is servable.
func (e *Engine) validate(req *Request, snap *snapshot) error {
	if req.TTL < 1 {
		return fmt.Errorf("serve: TTL must be >= 1, got %d", req.TTL)
	}
	switch req.Mech {
	case MechFlood:
		if req.TTL > e.cfg.MaxFloodTTL {
			req.TTL = e.cfg.MaxFloodTTL
		}
	case MechWalk:
		if req.TTL > e.cfg.MaxWalkSteps {
			req.TTL = e.cfg.MaxWalkSteps
		}
	case MechABF:
		if snap.abf == nil {
			return ErrNoABF
		}
		if req.TTL > e.cfg.MaxABFTTL {
			req.TTL = e.cfg.MaxABFTTL
		}
	default:
		return fmt.Errorf("serve: unknown mechanism %d", req.Mech)
	}
	return nil
}

// worker is one shard's serving loop: take one request, drain the
// admission window, execute the micro-batch on the shard kernel, fill
// the cache, reply. The kernel is rebuilt whenever the snapshot
// changed since the last batch.
func (e *Engine) worker(index int, sh *shard) {
	defer e.wg.Done()
	var (
		kern     *search.Kernel
		lastSnap *snapshot
		rng      = rand.New(rand.NewSource(0))
		batch    = make([]*pending, 0, e.cfg.Window)
	)
	for {
		p, ok := <-sh.queue
		if !ok {
			return
		}
		batch = append(batch[:0], p)
	drain:
		for len(batch) < e.cfg.Window {
			select {
			case p2, ok := <-sh.queue:
				if !ok {
					break drain
				}
				batch = append(batch, p2)
			default:
				break drain
			}
		}
		snap := e.snap.Load()
		if snap != lastSnap {
			kern = search.NewKernel(snap.g, index)
			lastSnap = snap
		}
		e.batchSize.Observe(int64(len(batch)))
		for _, p := range batch {
			if e.queueWait != nil && !p.enqueued.IsZero() {
				e.queueWait.Since(p.enqueued)
			}
			res := e.execute(kern, snap, p.req, p.key, rng)
			if e.cfg.testDelay > 0 {
				time.Sleep(e.cfg.testDelay)
			}
			if sh.cache != nil {
				sh.mu.Lock()
				sh.cache.put(p.key, snap.epoch, res)
				sh.mu.Unlock()
			}
			p.done <- Response{Result: res, CacheHit: false, Epoch: snap.epoch}
		}
	}
}

// execute runs one query on the shard kernel. The source node and the
// rng stream derive from (seed, epoch, key) only, so the result is a
// pure function of the request and the overlay epoch — the property
// every cache guarantee rests on.
func (e *Engine) execute(kern *search.Kernel, snap *snapshot, req Request, key uint64, rng *rand.Rand) search.Result {
	if e.cfg.testOnExecute != nil {
		e.cfg.testOnExecute(req)
	}
	rng.Seed(keySeed(e.cfg.Seed, snap.epoch, key))
	src := int(mix64(key^0x9e3779b97f4a7c15) % uint64(snap.g.N()))
	obj := req.Object
	store := snap.store
	match := func(u int) bool { return store.Has(u, obj) }
	switch req.Mech {
	case MechFlood:
		return kern.Flooder().Flood(src, req.TTL, match)
	case MechWalk:
		cfg := search.WalkConfig{Walkers: e.cfg.Walkers, MaxSteps: req.TTL, CheckInterval: 4}
		return kern.Walker().Random(src, cfg, match, rng)
	case MechABF:
		return kern.ABF(snap.abf).Lookup(src, req.Object, req.TTL, rng)
	}
	return search.Result{FirstMatchHop: -1}
}

// syncCacheLen publishes the total resident entry count. Called off
// the hot path (snapshot swaps, the debug metrics handler) so serving
// never pays the all-shards walk.
func (e *Engine) syncCacheLen() {
	if e.cacheLen == nil {
		return
	}
	e.cacheLen.Set(int64(e.CacheSize()))
}

// defaultShards resolves the shard count to GOMAXPROCS.
func defaultShards() int { return runtime.GOMAXPROCS(0) }

// Close drains and stops the shard workers. In-flight requests get
// real responses; Lookup calls after Close fail with ErrClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for _, sh := range e.shards {
		close(sh.queue)
	}
	e.mu.Unlock()
	e.wg.Wait()
}

// mix64 is the splitmix64 finalizer — the repo's standard bit mixer
// (wave construction, testnet schedules) reused for request keys.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// keySeed derives the rng seed of a request: the serving analogue of
// search.QuerySeed, keyed by the request instead of a batch index so
// identical requests draw identical streams at any arrival order.
func keySeed(seed int64, epoch, key uint64) int64 {
	return int64(mix64(uint64(seed) ^ mix64(epoch+0x632be59bd9b4e019) ^ key))
}
