package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"makalu/internal/obs"
)

// HTTPConfig wires the HTTP frontend.
type HTTPConfig struct {
	Engine  *Engine
	Limiter *Limiter      // nil = unlimited
	Metrics *obs.Registry // backs /debug/metrics; nil disables the endpoint body
	// Debug exposes /debug/metrics and /debug/pprof. Leave false when
	// the daemon faces untrusted clients.
	Debug bool
	// MaxBodyBytes caps a request body; every endpoint is GET-shaped,
	// so bodies buy a client nothing and an oversized one is refused
	// with 413 before any handler reads it. Default 64 KiB.
	MaxBodyBytes int64
}

// DefaultMaxBodyBytes caps request bodies when HTTPConfig.MaxBodyBytes
// is zero.
const DefaultMaxBodyBytes = 64 << 10

// LookupReply is the JSON document /lookup returns.
type LookupReply struct {
	Found         bool   `json:"found"`
	FirstMatchHop int    `json:"first_match_hop"`
	Messages      int    `json:"messages"`
	Visited       int    `json:"visited"`
	Matches       int    `json:"matches"`
	CacheHit      bool   `json:"cache_hit"`
	Epoch         uint64 `json:"epoch"`
	Mech          string `json:"mech"`
	Object        string `json:"object"`
	TTL           int    `json:"ttl"`
}

// errorReply is the JSON error document; Reason distinguishes the two
// 429 causes (rate limit vs load shed).
type errorReply struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// NewHTTPHandler builds the daemon's HTTP mux:
//
//	GET /lookup?obj=<id>&mech=flood|walk|abf&ttl=<n>  serve one query
//	GET /objects                                      the servable object catalog
//	GET /healthz                                      liveness probe
//	GET /debug/metrics                                obs registry JSON (Debug only)
//	GET /debug/pprof/...                              live profiling  (Debug only)
//
// Rate-limited and shed requests get 429 with a Retry-After header;
// the JSON body's reason field says which path refused.
func NewHTTPHandler(cfg HTTPConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/lookup", func(w http.ResponseWriter, r *http.Request) {
		serveLookup(cfg, w, r)
	})
	mux.HandleFunc("/objects", func(w http.ResponseWriter, r *http.Request) {
		objs := cfg.Engine.Objects()
		ids := make([]string, len(objs))
		for i, o := range objs {
			ids[i] = "0x" + strconv.FormatUint(o, 16)
		}
		writeJSON(w, http.StatusOK, struct {
			Epoch   uint64   `json:"epoch"`
			Objects []string `json:"objects"`
		}{cfg.Engine.Epoch(), ids})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// epoch + queue_depth let a gateway health checker tell a
		// stale-epoch or saturated backend from a merely up one.
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"epoch":%d,"shards":%d,"queue_depth":%d}`+"\n",
			cfg.Engine.Epoch(), cfg.Engine.Shards(), cfg.Engine.QueueDepth())
	})
	if cfg.Debug {
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
			cfg.Engine.syncCacheLen()
			w.Header().Set("Content-Type", "application/json")
			if cfg.Metrics == nil {
				fmt.Fprintln(w, "{}")
				return
			}
			if err := cfg.Metrics.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	return limitBody(mux, maxBody)
}

// limitBody rejects requests whose declared Content-Length exceeds max
// with 413, and caps chunked/undeclared bodies with http.MaxBytesReader
// so no handler (present or future) can be made to buffer an unbounded
// POST.
func limitBody(next http.Handler, max int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.ContentLength > max {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorReply{Error: fmt.Sprintf("request body exceeds %d bytes", max)})
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
		next.ServeHTTP(w, r)
	})
}

// NewHTTPServer wraps handler in an http.Server with the slow-client
// protections the stdlib leaves off by default: without
// ReadHeaderTimeout a slowloris client dripping header bytes pins a
// goroutine (and its buffers) indefinitely, and without write/idle
// timeouts a stalled reader does the same on the response side.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// clientID identifies the caller for rate limiting: the X-Makalu-Client
// header when present (so load generators can model client
// populations), else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Makalu-Client"); id != "" {
		return id
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	return host
}

// retryAfterHeader formats a Retry-After value: whole seconds, rounded
// up, at least 1 — the header has no sub-second resolution.
func retryAfterHeader(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func serveLookup(cfg HTTPConfig, w http.ResponseWriter, r *http.Request) {
	if ok, retry := cfg.Limiter.Allow(clientID(r)); !ok {
		w.Header().Set("Retry-After", retryAfterHeader(retry))
		writeJSON(w, http.StatusTooManyRequests,
			errorReply{Error: "rate limit exceeded", Reason: "rate"})
		return
	}
	q := r.URL.Query()
	objStr := q.Get("obj")
	if objStr == "" {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "missing obj parameter"})
		return
	}
	obj, err := parseObjectID(objStr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: fmt.Sprintf("bad obj: %v", err)})
		return
	}
	mech := MechFlood
	if ms := q.Get("mech"); ms != "" {
		mech, err = ParseMechanism(ms)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorReply{Error: err.Error()})
			return
		}
	}
	ttl := 4
	if ts := q.Get("ttl"); ts != "" {
		ttl, err = strconv.Atoi(ts)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorReply{Error: fmt.Sprintf("bad ttl: %v", err)})
			return
		}
	}
	req := Request{Mech: mech, Object: obj, TTL: ttl}
	resp, err := cfg.Engine.Lookup(req)
	switch {
	case err == nil:
	case err == ErrOverloaded:
		// Shed: the queue-bound policy refused so accepted requests keep
		// their latency. One second is the "come back after the burst"
		// hint; the client-side backoff does the real pacing.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			errorReply{Error: err.Error(), Reason: "shed"})
		return
	case err == ErrClosed:
		writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: err.Error()})
		return
	default:
		writeJSON(w, http.StatusBadRequest, errorReply{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, LookupReply{
		Found:         resp.Result.Success,
		FirstMatchHop: resp.Result.FirstMatchHop,
		Messages:      resp.Result.Messages,
		Visited:       resp.Result.Visited,
		Matches:       resp.Result.MatchesFound,
		CacheHit:      resp.CacheHit,
		Epoch:         resp.Epoch,
		Mech:          req.Mech.String(),
		Object:        "0x" + strconv.FormatUint(obj, 16),
		TTL:           req.TTL,
	})
}

// parseObjectID accepts decimal or 0x-prefixed hex object ids, the
// same forms makalu-node's -store flag takes.
func parseObjectID(s string) (uint64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}
