package serve

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TCPServer speaks the raw line protocol — the low-overhead path the
// load generator uses to push millions of queries through persistent
// connections without HTTP parsing on either side.
//
// Request line:   Q <mech> <object> <ttl>\n    (object decimal or 0x hex)
// Responses:      H <found> <hop> <messages> <visited> <cachehit>\n
//
//	S <retry_ms>\n   (shed: queue full)
//	R <retry_ms>\n   (rate limited)
//	E <message>\n    (bad request)
//
// A bare "Z\n" is the status probe: the server replies
// "Z <epoch> <queue_depth>\n" so a gateway health checker can detect
// stale-epoch or saturated backends over the same pooled connection it
// forwards queries on.
//
// One connection is one rate-limit client (keyed by remote address).
// Replies are written in request order per connection; the writer is
// flushed only when no further request is buffered, so a pipelined
// client amortizes syscalls the same way the engine amortizes kernel
// dispatch.
type TCPServer struct {
	eng *Engine
	lim *Limiter
	ln  net.Listener
	cfg TCPConfig

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// TCPConfig bounds a connection's resource use. The zero value gets
// production defaults.
type TCPConfig struct {
	// MaxLine caps one request line in bytes, terminator included; a
	// client exceeding it gets an E response and the connection is
	// closed. Without the cap, one endless unterminated line grows the
	// read buffer without bound. Default 1024 — generous for
	// "Q <mech> <object> <ttl>".
	MaxLine int
	// IdleTimeout is the per-read deadline: a connection with no
	// complete request for this long is closed, so idle or half-open
	// clients cannot pin goroutines forever. Default 2m.
	IdleTimeout time.Duration
}

func (cfg TCPConfig) withDefaults() TCPConfig {
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = 1024
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	return cfg
}

// NewTCPServer starts listening on addr (e.g. "127.0.0.1:0") with
// default connection bounds.
func NewTCPServer(addr string, eng *Engine, lim *Limiter) (*TCPServer, error) {
	return NewTCPServerConfig(addr, eng, lim, TCPConfig{})
}

// NewTCPServerConfig starts listening on addr with explicit connection
// bounds.
func NewTCPServerConfig(addr string, eng *Engine, lim *Limiter, cfg TCPConfig) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{eng: eng, lim: lim, ln: ln, cfg: cfg.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	client := conn.RemoteAddr().String()
	// The read buffer IS the line cap: ReadSlice fails with
	// ErrBufferFull exactly when a line exceeds it, so an endless
	// unterminated line costs a fixed buffer, not unbounded growth.
	r := bufio.NewReaderSize(conn, s.cfg.MaxLine)
	w := bufio.NewWriterSize(conn, 16<<10)
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		line, err := r.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			fmt.Fprintf(w, "E line too long (max %d bytes)\n", s.cfg.MaxLine)
			w.Flush()
			return
		}
		if err != nil {
			return // EOF, deadline expired, or closed
		}
		s.serveLine(w, client, strings.TrimRight(string(line), "\r\n"))
		// Flush only when the read side has no pipelined request
		// waiting: batch replies to a batch of requests in one write.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// ParseQueryLine parses one protocol line into a Request. ok=false
// with a nil error means a blank line (ignored by the server); an
// error describes the malformation for the E response. The function is
// pure — the fuzz harness drives it with arbitrary bytes. Exported so
// the gateway frontend speaks the exact same grammar (and therefore
// derives the exact same Request.Key the backends shard and cache on).
func ParseQueryLine(line string) (req Request, ok bool, err error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Request{}, false, nil // blank line: ignore
	}
	if fields[0] != "Q" || len(fields) != 4 {
		return Request{}, false, fmt.Errorf("bad request line (want: Q <mech> <object> <ttl>)")
	}
	mech, err := ParseMechanism(fields[1])
	if err != nil {
		return Request{}, false, err
	}
	obj, err := parseObjectID(fields[2])
	if err != nil {
		return Request{}, false, fmt.Errorf("bad object id: %s", err)
	}
	ttl, err := strconv.Atoi(fields[3])
	if err != nil {
		return Request{}, false, fmt.Errorf("bad ttl: %s", err)
	}
	return Request{Mech: mech, Object: obj, TTL: ttl}, true, nil
}

func (s *TCPServer) serveLine(w *bufio.Writer, client, line string) {
	if strings.TrimSpace(line) == "Z" {
		fmt.Fprintf(w, "Z %d %d\n", s.eng.Epoch(), s.eng.QueueDepth())
		return
	}
	req, ok, perr := ParseQueryLine(line)
	if perr != nil {
		fmt.Fprintf(w, "E %s\n", perr)
		return
	}
	if !ok {
		return // blank line
	}
	if ok, retry := s.lim.Allow(client); !ok {
		fmt.Fprintf(w, "R %d\n", retryMillis(retry))
		return
	}
	resp, err := s.eng.Lookup(req)
	switch {
	case err == nil:
	case err == ErrOverloaded:
		fmt.Fprintf(w, "S %d\n", retryMillis(time.Millisecond))
		return
	case err == ErrClosed:
		fmt.Fprintf(w, "E %s\n", err)
		return
	default:
		fmt.Fprintf(w, "E %s\n", err)
		return
	}
	found, hit := 0, 0
	if resp.Result.Success {
		found = 1
	}
	if resp.CacheHit {
		hit = 1
	}
	fmt.Fprintf(w, "H %d %d %d %d %d\n",
		found, resp.Result.FirstMatchHop, resp.Result.Messages, resp.Result.Visited, hit)
}

// retryMillis renders a retry hint in whole milliseconds, at least 1.
func retryMillis(d time.Duration) int64 {
	ms := int64((d + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Close stops accepting, closes every live connection, and waits for
// the connection goroutines.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
