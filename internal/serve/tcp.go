package serve

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TCPServer speaks the raw line protocol — the low-overhead path the
// load generator uses to push millions of queries through persistent
// connections without HTTP parsing on either side.
//
// Request line:   Q <mech> <object> <ttl>\n    (object decimal or 0x hex)
// Responses:      H <found> <hop> <messages> <visited> <cachehit>\n
//
//	S <retry_ms>\n   (shed: queue full)
//	R <retry_ms>\n   (rate limited)
//	E <message>\n    (bad request)
//
// One connection is one rate-limit client (keyed by remote address).
// Replies are written in request order per connection; the writer is
// flushed only when no further request is buffered, so a pipelined
// client amortizes syscalls the same way the engine amortizes kernel
// dispatch.
type TCPServer struct {
	eng *Engine
	lim *Limiter
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewTCPServer starts listening on addr (e.g. "127.0.0.1:0") and
// serving connections.
func NewTCPServer(addr string, eng *Engine, lim *Limiter) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{eng: eng, lim: lim, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	client := conn.RemoteAddr().String()
	r := bufio.NewReaderSize(conn, 16<<10)
	w := bufio.NewWriterSize(conn, 16<<10)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return // EOF or closed
		}
		s.serveLine(w, client, strings.TrimRight(line, "\r\n"))
		// Flush only when the read side has no pipelined request
		// waiting: batch replies to a batch of requests in one write.
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

func (s *TCPServer) serveLine(w *bufio.Writer, client, line string) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return // blank line: ignore
	}
	if fields[0] != "Q" || len(fields) != 4 {
		fmt.Fprintf(w, "E bad request line (want: Q <mech> <object> <ttl>)\n")
		return
	}
	if ok, retry := s.lim.Allow(client); !ok {
		fmt.Fprintf(w, "R %d\n", retryMillis(retry))
		return
	}
	mech, err := ParseMechanism(fields[1])
	if err != nil {
		fmt.Fprintf(w, "E %s\n", err)
		return
	}
	obj, err := parseObjectID(fields[2])
	if err != nil {
		fmt.Fprintf(w, "E bad object id: %s\n", err)
		return
	}
	ttl, err := strconv.Atoi(fields[3])
	if err != nil {
		fmt.Fprintf(w, "E bad ttl: %s\n", err)
		return
	}
	resp, err := s.eng.Lookup(Request{Mech: mech, Object: obj, TTL: ttl})
	switch {
	case err == nil:
	case err == ErrOverloaded:
		fmt.Fprintf(w, "S %d\n", retryMillis(time.Millisecond))
		return
	case err == ErrClosed:
		fmt.Fprintf(w, "E %s\n", err)
		return
	default:
		fmt.Fprintf(w, "E %s\n", err)
		return
	}
	found, hit := 0, 0
	if resp.Result.Success {
		found = 1
	}
	if resp.CacheHit {
		hit = 1
	}
	fmt.Fprintf(w, "H %d %d %d %d %d\n",
		found, resp.Result.FirstMatchHop, resp.Result.Messages, resp.Result.Visited, hit)
}

// retryMillis renders a retry hint in whole milliseconds, at least 1.
func retryMillis(d time.Duration) int64 {
	ms := int64((d + time.Millisecond - 1) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Close stops accepting, closes every live connection, and waits for
// the connection goroutines.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
