package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func hardenedTCP(t *testing.T, cfg TCPConfig) (*TCPServer, *Engine) {
	t.Helper()
	g, store := testOverlay(t, 300, 30)
	e, err := New(Config{Graph: g, Store: store, Shards: 2, Seed: 21, CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewTCPServerConfig("127.0.0.1:0", e, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); e.Close() })
	return srv, e
}

// TestTCPLineCap pins the unbounded-line fix: an endless unterminated
// request line must get an E response and a closed connection, not an
// ever-growing buffer.
func TestTCPLineCap(t *testing.T) {
	srv, _ := hardenedTCP(t, TCPConfig{MaxLine: 64})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// 4 KiB with no terminator — far past the 64-byte cap.
	if _, err := conn.Write([]byte(strings.Repeat("A", 4096))); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	reply, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("no overflow response: %v", err)
	}
	if !strings.HasPrefix(reply, "E line too long") {
		t.Fatalf("reply = %q, want E line too long", reply)
	}
	// The server must close the connection after the overflow (EOF, or
	// RST when our unread junk was still in its receive buffer).
	if _, err := r.ReadByte(); err == nil {
		t.Fatal("connection still serving data after overflow")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("connection never closed after overflow")
	}
}

// TestTCPLineCapSurvivesValidTraffic: lines under the cap keep working
// on a capped server, including pipelined batches.
func TestTCPLineCapSurvivesValidTraffic(t *testing.T) {
	srv, e := hardenedTCP(t, TCPConfig{MaxLine: 128})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	obj := e.Objects()[0]
	// Pipeline three requests in one write.
	line := fmt.Sprintf("Q flood 0x%x 6\n", obj)
	if _, err := conn.Write([]byte(line + line + line)); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < 3; i++ {
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if !strings.HasPrefix(reply, "H 1 ") {
			t.Fatalf("reply %d = %q, want a hit", i, reply)
		}
	}
}

// TestTCPIdleReaped pins the missing-read-deadline fix: a connection
// that sends nothing must be closed by the server, not pin a goroutine
// forever.
func TestTCPIdleReaped(t *testing.T) {
	srv, _ := hardenedTCP(t, TCPConfig{IdleTimeout: 150 * time.Millisecond})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	start := time.Now()
	_, rerr := conn.Read(buf)
	if rerr == nil {
		t.Fatal("read returned data from an idle connection")
	}
	if nerr, ok := rerr.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server never reaped the idle connection (client read timed out)")
	}
	if waited := time.Since(start); waited > 4*time.Second {
		t.Fatalf("idle reap took %v", waited)
	}
	// A mid-line stall counts as idle too: the deadline is per read,
	// not per line.
	conn2, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("Q flo")); err != nil { // partial line, then silence
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, rerr := conn2.Read(buf); rerr == nil {
		t.Fatal("read returned data from a half-line connection")
	} else if nerr, ok := rerr.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server never reaped the half-line connection")
	}
}

// TestHTTPBodyLimit pins the unbounded-body fix: a request declaring
// an oversized body is refused with 413 before any handler runs.
func TestHTTPBodyLimit(t *testing.T) {
	g, store := testOverlay(t, 300, 30)
	e, err := New(Config{Graph: g, Store: store, Shards: 2, Seed: 5, CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	h := NewHTTPHandler(HTTPConfig{Engine: e, MaxBodyBytes: 1024})
	ts := httptest.NewServer(h)
	defer ts.Close()

	big := strings.NewReader(strings.Repeat("x", 4096))
	resp, err := http.Post(ts.URL+"/lookup", "application/octet-stream", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// Within the cap the endpoint behaves normally.
	obj := e.Objects()[0]
	resp2, err := http.Get(fmt.Sprintf("%s/lookup?obj=0x%x&mech=flood&ttl=6", ts.URL, obj))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("normal lookup: status %d", resp2.StatusCode)
	}
}

// TestNewHTTPServerTimeouts pins the slowloris protections on the
// server makalu-node now starts.
func TestNewHTTPServerTimeouts(t *testing.T) {
	s := NewHTTPServer("127.0.0.1:0", http.NewServeMux())
	if s.ReadHeaderTimeout <= 0 {
		t.Fatal("ReadHeaderTimeout unset: slowloris headers unbounded")
	}
	if s.ReadTimeout <= 0 || s.WriteTimeout <= 0 || s.IdleTimeout <= 0 {
		t.Fatalf("timeouts unset: read=%v write=%v idle=%v", s.ReadTimeout, s.WriteTimeout, s.IdleTimeout)
	}
}

// TestParseQueryLine covers the pure parser the fuzz harness drives.
func TestParseQueryLine(t *testing.T) {
	req, ok, err := ParseQueryLine("Q flood 0x2a 6")
	if err != nil || !ok || req.Object != 0x2a || req.TTL != 6 || req.Mech != MechFlood {
		t.Fatalf("valid line: %+v ok=%v err=%v", req, ok, err)
	}
	if _, ok, err := ParseQueryLine("   "); ok || err != nil {
		t.Fatalf("blank line: ok=%v err=%v", ok, err)
	}
	for _, bad := range []string{
		"Z flood 1 2",
		"Q flood 1",
		"Q flood 1 2 3",
		"Q teleport 1 2",
		"Q notanumber 2",              // three fields, bad mech position
		"Q flood 0xzz 2",              // bad object
		"Q flood 1 tomorrow",          // bad ttl
		"Q flood 1 2\nQ walk",         // embedded newline is not a pipeline here
		strings.Repeat("Q ", 9) + "1", // field spray
	} {
		if _, ok, err := ParseQueryLine(bad); ok || err == nil {
			t.Fatalf("malformed line %q parsed: ok=%v err=%v", bad, ok, err)
		}
	}
}
