package serve

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock drives a Limiter deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time               { return c.t }
func (c *fakeClock) advance(d time.Duration)      { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                    { return &fakeClock{t: time.Unix(1000, 0)} }
func withClock(l *Limiter, c *fakeClock) *Limiter { l.now = c.now; return l }

func TestLimiterNilAdmitsEverything(t *testing.T) {
	var l *Limiter
	for i := 0; i < 100; i++ {
		if ok, retry := l.Allow("anyone"); !ok || retry != 0 {
			t.Fatal("nil limiter must admit everything")
		}
	}
	if l.Clients() != 0 {
		t.Fatal("nil limiter tracks no clients")
	}
	if NewLimiter(0, 10) != nil || NewLimiter(10, 0) != nil {
		t.Fatal("non-positive rate/burst must yield the nil (off) limiter")
	}
}

func TestLimiterBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	l := withClock(NewLimiter(10, 3), clk) // 10 tokens/s, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c"); !ok {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	ok, retry := l.Allow("c")
	if ok {
		t.Fatal("request past burst admitted")
	}
	// Empty bucket at 10 tokens/s: next token in 100ms.
	if retry != 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 100ms", retry)
	}
	clk.advance(50 * time.Millisecond) // half a token: still dry
	if ok, retry := l.Allow("c"); ok || retry != 50*time.Millisecond {
		t.Fatalf("after 50ms: ok=%v retry=%v, want refused/50ms", ok, retry)
	}
	clk.advance(60 * time.Millisecond) // >1 token accrued
	if ok, _ := l.Allow("c"); !ok {
		t.Fatal("token accrued but request refused")
	}
	// Refill caps at burst: a long sleep buys 3 requests, not 30.
	clk.advance(time.Hour)
	granted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("c"); ok {
			granted++
		}
	}
	if granted != 3 {
		t.Fatalf("after idle: granted %d, want burst cap 3", granted)
	}
}

func TestLimiterIsolatesClients(t *testing.T) {
	clk := newFakeClock()
	l := withClock(NewLimiter(1, 1), clk)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("fresh client a refused")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("client a admitted past its budget")
	}
	// a's exhaustion must not charge b.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("client b charged for a's traffic")
	}
	if l.Clients() != 2 {
		t.Fatalf("tracking %d clients, want 2", l.Clients())
	}
}

func TestLimiterSweepBoundsClientMap(t *testing.T) {
	clk := newFakeClock()
	l := withClock(NewLimiter(10, 2), clk)
	l.sweepAt = 64
	for i := 0; i < 64; i++ {
		l.Allow(fmt.Sprintf("old-%d", i))
	}
	// All 64 fully refill (burst/rate = 200ms); the 65th client's
	// arrival triggers the sweep.
	clk.advance(time.Second)
	l.Allow("fresh")
	if n := l.Clients(); n != 1 {
		t.Fatalf("sweep left %d clients, want 1", n)
	}
	// A sweep must never drop a client mid-refill.
	l.Allow("active") // spends 1 of burst 2
	for i := 0; i < 63; i++ {
		l.Allow(fmt.Sprintf("new-%d", i))
	}
	clk.advance(100 * time.Millisecond) // active has refilled only half
	l.Allow("trigger")
	found := false
	l.mu.Lock()
	_, found = l.clients["active"]
	l.mu.Unlock()
	if !found {
		t.Fatal("sweep dropped a partially-refilled bucket")
	}
}

// TestLimiterHardCap pins the memory bound against an adversary who
// keeps every client id active: the idle sweep frees nothing (no
// bucket ever refills), so the hard cap must force-evict instead of
// letting the map grow without limit. Client ids are caller-chosen
// (X-Makalu-Client), so this is the public-endpoint exhaustion case.
func TestLimiterHardCap(t *testing.T) {
	clk := newFakeClock()
	l := withClock(NewLimiter(10, 2), clk)
	l.sweepAt = 16
	l.maxClients = 32
	for i := 0; i < 10*l.maxClients; i++ {
		l.Allow(fmt.Sprintf("attacker-%d", i))
		clk.advance(time.Millisecond) // active traffic: nothing goes idle
	}
	if n := l.Clients(); n > l.maxClients {
		t.Fatalf("client map grew to %d, cap is %d", n, l.maxClients)
	}
	// The cap must not lock out service: a new client is still admitted.
	if ok, _ := l.Allow("legit"); !ok {
		t.Fatal("new client refused at the hard cap")
	}
}
