package serve

import (
	"sync"
	"time"
)

// Limiter is a per-client token-bucket rate limiter: each client id
// owns a bucket refilled at Rate tokens/second up to Burst. A request
// spends one token; when the bucket is dry, Allow refuses and reports
// how long until the next token — the Retry-After the frontends hand
// back with the 429.
//
// A nil *Limiter admits everything, so rate limiting off costs one nil
// check, matching the obs convention.
type Limiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	clients map[string]*bucket
	now     func() time.Time // injectable for deterministic tests

	// sweepAt is the soft bound on the client map: when it grows past
	// this, buckets idle long enough to have refilled completely are
	// dropped (their state is indistinguishable from a fresh bucket, so
	// eviction is semantically free).
	sweepAt int

	// maxClients is the hard bound: client ids are caller-chosen (the
	// X-Makalu-Client header), so an adversary can keep arbitrarily
	// many ids active and the idle sweep alone would let the map grow
	// without limit. At the cap, admitting a new id force-evicts the
	// stalest bucket from a random sample. A forced-out client returns
	// with a fresh burst — a bounded courtesy we accept to keep memory
	// bounded.
	maxClients int
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter creates a limiter granting rate tokens/second with the
// given burst capacity per client. rate and burst must be positive.
func NewLimiter(rate, burst float64) *Limiter {
	if rate <= 0 || burst <= 0 {
		return nil
	}
	return &Limiter{
		rate:       rate,
		burst:      burst,
		clients:    make(map[string]*bucket),
		now:        time.Now,
		sweepAt:    4096,
		maxClients: 16384,
	}
}

// Allow charges one token to client, reporting whether the request is
// admitted; when refused, retryAfter is the wait until a token
// accrues.
func (l *Limiter) Allow(client string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, exists := l.clients[client]
	if !exists {
		if len(l.clients) >= l.sweepAt {
			l.sweep(now)
		}
		for len(l.clients) >= l.maxClients {
			l.evictStalest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / l.rate * float64(time.Second))
}

// sweep drops buckets that have fully refilled — a client absent for
// burst/rate seconds is indistinguishable from a new one. Called with
// the lock held.
func (l *Limiter) sweep(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for id, b := range l.clients {
		if now.Sub(b.last) >= idle {
			delete(l.clients, id)
		}
	}
}

// evictStalest drops the least-recently-seen bucket from a bounded
// sample of the client map (Go map iteration starts at a random
// position, so the sample is effectively random — Redis-style sampled
// LRU). O(sample) regardless of map size; called with the lock held,
// only when the map is at maxClients.
func (l *Limiter) evictStalest() {
	const sample = 64
	var (
		victim string
		oldest time.Time
		seen   int
	)
	for id, b := range l.clients {
		if seen == 0 || b.last.Before(oldest) {
			victim, oldest = id, b.last
		}
		seen++
		if seen >= sample {
			break
		}
	}
	if seen > 0 {
		delete(l.clients, victim)
	}
}

// Clients returns the tracked client count (tests, debug metrics).
func (l *Limiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.clients)
}
