package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"makalu/internal/obs"
)

// TestSingleflightCoalescing pins the miss-coalescing contract: N
// concurrent lookups for the same key on a cache miss run EXACTLY one
// kernel execution, and every waiter receives a bit-identical
// response. Run under -race in CI.
//
// Determinism scheme: a blocker request on a different key holds the
// single shard worker inside execute (the testOnExecute hook blocks on
// a channel), the N same-key lookups are fired and observed to have
// coalesced via the serve.coalesced counter, and only then is the
// worker released — so all N provably arrived while the key was
// un-cached and at most one could have enqueued.
func TestSingleflightCoalescing(t *testing.T) {
	g, store := testOverlay(t, 300, 30)
	objs := store.Objects()
	blockerObj, targetObj := objs[0], objs[1]

	reg := obs.NewRegistry()
	var (
		execs         sync.Map // object -> *atomic.Int64
		blockerunning = make(chan struct{})
		release       = make(chan struct{})
	)
	countExec := func(req Request) {
		c, _ := execs.LoadOrStore(req.Object, new(atomic.Int64))
		if c.(*atomic.Int64).Add(1) == 1 && req.Object == blockerObj {
			close(blockerunning)
			<-release
		}
	}
	e, err := New(Config{
		Graph: g, Store: store,
		Shards: 1, Window: 1, QueueDepth: 64,
		CacheCapacity: 64, Seed: 17,
		Metrics:       reg,
		testOnExecute: countExec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Registered after the Close defer so it runs first: Close waits for
	// the shard worker, which is parked on release — a t.Fatal below
	// would otherwise wedge the deferred Close until the package
	// timeout instead of failing cleanly.
	var relOnce sync.Once
	releaseWorker := func() { relOnce.Do(func() { close(release) }) }
	defer releaseWorker()

	blocker := Request{Mech: MechFlood, Object: blockerObj, TTL: 4}
	target := Request{Mech: MechFlood, Object: targetObj, TTL: 4}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := e.Lookup(blocker); err != nil {
			t.Errorf("blocker: %v", err)
		}
	}()
	select {
	case <-blockerunning: // worker is now parked inside execute
	case <-time.After(30 * time.Second):
		t.Fatal("worker never reached execute")
	}

	const waiters = 16
	responses := make([]Response, waiters)
	errs := make([]error, waiters)
	var tg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		tg.Add(1)
		go func(i int) {
			defer tg.Done()
			responses[i], errs[i] = e.Lookup(target)
		}(i)
	}

	// Wait until waiters-1 lookups have joined the leader's flight —
	// then every one of the N is past the cache probe with the key
	// still uncomputed.
	coalesced := reg.Counter("serve.coalesced")
	deadline := time.Now().Add(10 * time.Second)
	for coalesced.Value() < waiters-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d lookups coalesced before the deadline", coalesced.Value(), waiters-1)
		}
		time.Sleep(time.Millisecond)
	}
	releaseWorker()
	tg.Wait()
	wg.Wait()

	c, ok := execs.Load(targetObj)
	if !ok {
		t.Fatal("target key never executed")
	}
	if n := c.(*atomic.Int64).Load(); n != 1 {
		t.Fatalf("target key ran %d kernel executions, want exactly 1", n)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if responses[i].Result != responses[0].Result || responses[i].Epoch != responses[0].Epoch {
			t.Fatalf("waiter %d response %+v != waiter 0 %+v — coalesced results must be bit-identical",
				i, responses[i], responses[0])
		}
	}
	// The shared execution is a real memo: a later lookup hits the cache.
	resp, err := e.Lookup(target)
	if err != nil || !resp.CacheHit {
		t.Fatalf("post-flight lookup: resp %+v err %v, want cache hit", resp, err)
	}
}

// TestSingleflightShedCleanup pins the shed interaction: a leader
// whose enqueue is refused fails its flight with ErrOverloaded and
// removes it — a retry after the shed must start a fresh computation,
// never park on a flight that will never run.
func TestSingleflightShedCleanup(t *testing.T) {
	g, store := testOverlay(t, 300, 30)
	objs := store.Objects()

	blockerunning := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	e, err := New(Config{
		Graph: g, Store: store,
		Shards: 1, Window: 1, QueueDepth: 1,
		Seed: 17,
		testOnExecute: func(req Request) {
			once.Do(func() {
				close(blockerunning)
				<-release
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	// Runs before the deferred Close (LIFO): Close waits for the shard
	// worker, which is parked on release — without this a t.Fatal below
	// would wedge until the package timeout instead of failing cleanly.
	var relOnce sync.Once
	releaseWorker := func() { relOnce.Do(func() { close(release) }) }
	defer releaseWorker()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Lookup(Request{Mech: MechFlood, Object: objs[0], TTL: 4}) // occupies the worker
	}()
	select {
	case <-blockerunning:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never reached execute")
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Lookup(Request{Mech: MechFlood, Object: objs[1], TTL: 4}) // occupies the queue slot
	}()
	deadline := time.Now().Add(10 * time.Second)
	for e.QueueDepth() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled — shed path not reachable")
		}
		time.Sleep(time.Millisecond)
	}
	shedReq := Request{Mech: MechFlood, Object: objs[2], TTL: 4}
	if _, err := e.Lookup(shedReq); err != ErrOverloaded {
		t.Fatalf("full-queue lookup: err = %v, want ErrOverloaded", err)
	}
	// The failed flight must be gone: a stale entry here would make the
	// post-release retry below hang on a done channel nobody closes.
	// Two flights legitimately remain live — the blocker's (executing)
	// and the queued request's.
	sh := e.shards[0]
	sh.mu.Lock()
	_, stale := sh.flights[shedReq.Key()]
	leaked := len(sh.flights)
	sh.mu.Unlock()
	if stale {
		t.Fatal("shed flight still registered — a retry would park on a done channel nobody closes")
	}
	if leaked != 2 {
		t.Fatalf("%d flights registered after shed, want 2 (the blocker's and the queued request's)", leaked)
	}
	releaseWorker()
	wg.Wait()
	if _, err := e.Lookup(shedReq); err != nil {
		t.Fatalf("retry after shed: %v", err)
	}
}
