package serve

import (
	"testing"

	"makalu/internal/search"
)

func res(v int) search.Result { return search.Result{Visited: v, FirstMatchHop: -1} }

func TestSLRUPromotionAndLookup(t *testing.T) {
	c := newSLRU(4, 0.5) // protected cap 2
	c.put(1, 0, res(1))
	c.put(2, 0, res(2))
	if got, ok := c.get(1, 0); !ok || got.Visited != 1 {
		t.Fatalf("get(1) = %+v, %v", got, ok)
	}
	// 1 is now protected; 2 still probationary.
	if !c.entries[1].protected {
		t.Fatal("first re-access must promote to the protected segment")
	}
	if c.entries[2].protected {
		t.Fatal("single-access key must stay probationary")
	}
	if c.size() != 2 {
		t.Fatalf("size = %d, want 2", c.size())
	}
}

func TestSLRUEvictionPrefersProbation(t *testing.T) {
	c := newSLRU(3, 0.5) // protected cap 1
	c.put(1, 0, res(1))
	c.get(1, 0) // protect 1
	c.put(2, 0, res(2))
	c.put(3, 0, res(3))
	// Insert a fourth: the probationary LRU (2) must go, never the
	// protected hot key.
	ev, did := c.put(4, 0, res(4))
	if !did || ev != 2 {
		t.Fatalf("evicted %d (did=%v), want probationary LRU 2", ev, did)
	}
	if _, ok := c.get(1, 0); !ok {
		t.Fatal("protected key evicted by tail churn")
	}
}

// TestSLRUEvictionDeterminism pins the exact eviction sequence of a
// fixed op trace: the policy (probation-first, LRU within segment,
// promotion demotes the protected LRU back to probation) is part of
// the serving contract — BENCH_serve hit rates are only reproducible
// if eviction order is.
func TestSLRUEvictionDeterminism(t *testing.T) {
	run := func() []uint64 {
		c := newSLRU(4, 0.5) // protected cap 2
		var evictions []uint64
		access := func(key uint64) {
			if _, ok := c.get(key, 0); !ok {
				if ev, did := c.put(key, 0, res(int(key))); did {
					evictions = append(evictions, ev)
				}
			}
		}
		// Zipf-head keys 1,2 re-accessed between tail one-shots.
		for _, k := range []uint64{1, 2, 1, 2, 10, 11, 1, 12, 2, 13, 14, 10, 1, 15, 16, 17, 2} {
			access(k)
		}
		return evictions
	}
	first := run()
	want := []uint64{10, 11, 12, 13, 14, 10, 15}
	if len(first) != len(want) {
		t.Fatalf("eviction sequence %v, want %v", first, want)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("eviction sequence %v, want %v", first, want)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("eviction order not deterministic: %v vs %v", first, second)
		}
	}
}

func TestSLRUEpochInvalidation(t *testing.T) {
	c := newSLRU(8, 0.5)
	c.put(1, 0, res(1))
	if _, ok := c.get(1, 1); ok {
		t.Fatal("entry from epoch 0 served at epoch 1")
	}
	if c.size() != 0 {
		t.Fatal("stale entry must be dropped on mismatch")
	}
	c.put(2, 1, res(2))
	c.put(2, 2, res(99)) // refresh at the new epoch
	if got, ok := c.get(2, 2); !ok || got.Visited != 99 {
		t.Fatalf("refreshed entry = %+v, %v", got, ok)
	}
}

func TestSLRUPurge(t *testing.T) {
	c := newSLRU(8, 0.5)
	for k := uint64(0); k < 6; k++ {
		c.put(k, 0, res(int(k)))
	}
	c.get(3, 0)
	c.purge()
	if c.size() != 0 || c.prob.len != 0 || c.prot.len != 0 {
		t.Fatalf("purge left %d entries (prob %d, prot %d)", c.size(), c.prob.len, c.prot.len)
	}
	// The cache must be fully usable after a purge.
	c.put(7, 1, res(7))
	if _, ok := c.get(7, 1); !ok {
		t.Fatal("cache broken after purge")
	}
}

func TestSLRUCapacityBound(t *testing.T) {
	c := newSLRU(16, 0.8)
	for k := uint64(0); k < 1000; k++ {
		c.put(k, 0, res(int(k)))
		if k%3 == 0 {
			c.get(k, 0)
		}
		if c.size() > 16 {
			t.Fatalf("cache grew to %d entries, cap 16", c.size())
		}
	}
}
