package serve

import "makalu/internal/search"

// This file is the popularity-aware result cache: a segmented LRU
// (SLRU) in which a key must prove popularity before it earns
// protection. New keys enter a probationary segment; a second access
// promotes them to the protected segment, and eviction always takes
// the probationary LRU first. Under the Zipf-skewed query popularity
// the trace model generates, the head of the distribution is re-hit
// within a short window, earns protection, and stays resident, while
// the long uniform tail churns through probation without ever
// displacing a hot entry — the scan-resistance that plain LRU lacks.
//
// Every entry is stamped with the overlay epoch it was computed under:
// a lookup whose stamp mismatches the current epoch is a miss and the
// stale entry is dropped on the spot, so a topology change invalidates
// the whole cache in O(1) (Engine.bumpEpoch) without a stop-the-world
// sweep. Results are pure memos — the engine derives every query's
// randomness from (service seed, epoch, key), so a cached Result is
// bit-identical to recomputation; the equivalence test pins this.
//
// The cache is sharded by the engine (one slru per shard, guarded by
// the shard mutex); a single slru is not safe for concurrent use.

// cacheEntry is one resident result, threaded on its segment's
// doubly-linked list.
type cacheEntry struct {
	key        uint64
	epoch      uint64
	res        search.Result
	protected  bool
	prev, next *cacheEntry
}

// lruList is an intrusive doubly-linked list with a sentinel;
// front = MRU, back = LRU.
type lruList struct {
	root cacheEntry
	len  int
}

func (l *lruList) init() {
	l.root.prev = &l.root
	l.root.next = &l.root
	l.len = 0
}

func (l *lruList) pushFront(e *cacheEntry) {
	e.prev = &l.root
	e.next = l.root.next
	e.prev.next = e
	e.next.prev = e
	l.len++
}

func (l *lruList) remove(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	l.len--
}

func (l *lruList) back() *cacheEntry {
	if l.len == 0 {
		return nil
	}
	return l.root.prev
}

// slru is one shard's segmented LRU. capacity bounds the total entry
// count across both segments; protCap bounds the protected segment.
type slru struct {
	capacity int
	protCap  int
	entries  map[uint64]*cacheEntry
	prob     lruList // probationary segment
	prot     lruList // protected segment
}

// newSLRU sizes a cache shard. protFrac is the fraction of capacity
// reserved for the protected segment (clamped to [0, 1); the paper-ish
// default 0.8 leaves 20% of the shard as probation).
func newSLRU(capacity int, protFrac float64) *slru {
	if capacity < 1 {
		capacity = 1
	}
	if protFrac < 0 || protFrac >= 1 {
		protFrac = 0.8
	}
	protCap := int(protFrac * float64(capacity))
	if protCap >= capacity {
		protCap = capacity - 1
	}
	c := &slru{
		capacity: capacity,
		protCap:  protCap,
		entries:  make(map[uint64]*cacheEntry, capacity+1),
	}
	c.prob.init()
	c.prot.init()
	return c
}

// get returns the cached result for key at the given epoch. An entry
// from an older epoch is removed and reported as a miss. A probation
// hit promotes the entry to the protected segment (demoting the
// protected LRU back to probation when the segment is full) — the
// frequency-promotion step that separates the Zipf head from the tail.
func (c *slru) get(key, epoch uint64) (search.Result, bool) {
	e, ok := c.entries[key]
	if !ok {
		return search.Result{}, false
	}
	if e.epoch != epoch {
		c.removeEntry(e)
		return search.Result{}, false
	}
	if e.protected {
		c.prot.remove(e)
		c.prot.pushFront(e)
		return e.res, true
	}
	// Second access: promote.
	c.prob.remove(e)
	if c.prot.len >= c.protCap {
		if lru := c.prot.back(); lru != nil {
			c.prot.remove(lru)
			lru.protected = false
			c.prob.pushFront(lru)
		}
	}
	e.protected = true
	c.prot.pushFront(e)
	return e.res, true
}

// put inserts (or refreshes) a computed result. The return values name
// the evicted key, if the insert pushed the cache over capacity —
// exposed so the eviction-determinism test can pin the exact policy.
func (c *slru) put(key, epoch uint64, res search.Result) (evicted uint64, didEvict bool) {
	if e, ok := c.entries[key]; ok {
		// Concurrent duplicate miss or epoch refresh: results are pure
		// memos, so overwriting in place is value-neutral; the entry
		// keeps its current segment position.
		e.res = res
		e.epoch = epoch
		return 0, false
	}
	e := &cacheEntry{key: key, epoch: epoch, res: res}
	c.entries[key] = e
	c.prob.pushFront(e)
	if len(c.entries) <= c.capacity {
		return 0, false
	}
	// Over capacity: evict the probationary LRU; if probation is empty
	// (protCap ~ capacity and a burst of promotions), fall back to the
	// protected LRU so the bound always holds.
	victim := c.prob.back()
	if victim == nil {
		victim = c.prot.back()
	}
	c.removeEntry(victim)
	return victim.key, true
}

// removeEntry unlinks e from its segment and the index.
func (c *slru) removeEntry(e *cacheEntry) {
	if e.protected {
		c.prot.remove(e)
	} else {
		c.prob.remove(e)
	}
	delete(c.entries, e.key)
}

// purge drops every entry (explicit invalidation; the lazy epoch check
// already guarantees correctness, purge just returns the memory).
func (c *slru) purge() {
	c.prob.init()
	c.prot.init()
	clear(c.entries)
}

// size returns the resident entry count.
func (c *slru) size() int { return len(c.entries) }
