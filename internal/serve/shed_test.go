package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// shedFixture builds an engine with a deliberately slow, deterministic
// service time (testDelay) so saturation is a known constant:
// 2 shards x 1 request per 20ms = 100 req/s, queue depth 1, no
// batching, no cache. Load-shedding math is then exact rather than
// hardware-dependent.
const shedServiceTime = 20 * time.Millisecond

func shedFixture(t *testing.T) *Engine {
	t.Helper()
	g, store := testOverlay(t, 200, 20)
	e, err := New(Config{
		Graph: g, Store: store,
		Shards: 2, QueueDepth: 1, Window: 1,
		Seed:      11,
		testDelay: shedServiceTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// runPhase fires the given schedule open-loop (one goroutine per
// request, launched at its offset regardless of completions) and
// returns the sorted accepted-request latencies plus the shed count.
func runPhase(t *testing.T, e *Engine, offsets []time.Duration, keys []uint64) ([]time.Duration, int) {
	t.Helper()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		lats  []time.Duration
		sheds atomic.Int64
	)
	start := time.Now()
	for i := range offsets {
		wg.Add(1)
		go func(at time.Duration, obj uint64) {
			defer wg.Done()
			if d := time.Until(start.Add(at)); d > 0 {
				time.Sleep(d)
			}
			t0 := time.Now()
			_, err := e.Lookup(Request{Mech: MechFlood, Object: obj, TTL: 2})
			switch err {
			case nil:
				mu.Lock()
				lats = append(lats, time.Since(t0))
				mu.Unlock()
			case ErrOverloaded:
				sheds.Add(1)
			default:
				t.Errorf("lookup: %v", err)
			}
		}(offsets[i], keys[i])
	}
	wg.Wait()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, int(sheds.Load())
}

// sameShardDistinctKey finds an object id != obj whose flood request
// hashes to the same shard as obj's — queued behind it, but not
// coalesced with it.
func sameShardDistinctKey(obj uint64, shards int) uint64 {
	want := (Request{Mech: MechFlood, Object: obj, TTL: 2}).Key() % uint64(shards)
	for cand := obj + 100000; ; cand++ {
		if (Request{Mech: MechFlood, Object: cand, TTL: 2}).Key()%uint64(shards) == want {
			return cand
		}
	}
}

func p99(lats []time.Duration) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	return lats[len(lats)*99/100]
}

// TestLoadShedding is the overload-behavior acceptance test: at 2x the
// saturation rate the engine sheds (the client sees ErrOverloaded,
// which the HTTP front end maps to 429 — see http_test.go) and the p99
// of ACCEPTED requests stays within 2x the unloaded p99. Bounded
// queues mean overload degrades admission, not latency.
func TestLoadShedding(t *testing.T) {
	e := shedFixture(t)
	defer e.Close()

	// Unloaded phase: ~25% of the 100 req/s capacity. Every 10th
	// request is fired back-to-back with its predecessor on a DISTINCT
	// key that hashes to the same shard, so the unloaded sample honestly
	// includes the queue-behind-one-request case that defines its p99.
	// (An identical key would no longer queue at all — singleflight
	// coalescing hands it the predecessor's result in one service time.)
	const unloadedN = 160
	offs := make([]time.Duration, unloadedN)
	keys := make([]uint64, unloadedN)
	gap := 2 * shedServiceTime // 40ms: 2 shards => 25% utilization
	for i := range offs {
		offs[i] = time.Duration(i) * gap
		keys[i] = uint64(i)
		if i%10 == 9 {
			offs[i] = offs[i-1]
			keys[i] = sameShardDistinctKey(keys[i-1], len(e.shards))
		}
	}
	unloaded, shedU := runPhase(t, e, offs, keys)
	if shedU > unloadedN/50 {
		t.Fatalf("unloaded phase shed %d/%d requests", shedU, unloadedN)
	}
	p99u := p99(unloaded)
	if p99u < shedServiceTime {
		t.Fatalf("unloaded p99 %v below the service time %v — clock is lying", p99u, shedServiceTime)
	}

	// Overload phase: 2x saturation (200 req/s, capacity 100 req/s).
	const overloadN = 400
	offs = make([]time.Duration, overloadN)
	keys = make([]uint64, overloadN)
	for i := range offs {
		offs[i] = time.Duration(i) * shedServiceTime / 4 // 5ms spacing
		keys[i] = uint64(1000 + i)
	}
	accepted, shedO := runPhase(t, e, offs, keys)

	// The engine must actually shed: at 2x offered load, steady state
	// rejects about half. Demand at least 20%.
	if shedO < overloadN/5 {
		t.Fatalf("overload shed only %d/%d requests (want >= %d)", shedO, overloadN, overloadN/5)
	}
	if len(accepted) == 0 {
		t.Fatal("overload accepted nothing — shedding collapsed into unavailability")
	}
	p99o := p99(accepted)
	if p99o > 2*p99u {
		t.Fatalf("accepted p99 %v exceeds 2x unloaded p99 %v — backpressure is not protecting latency", p99o, p99u)
	}
	// Structural ceiling independent of the measured baseline: an
	// accepted request waits for at most one in-flight plus one queued
	// service, plus generous 1-CPU scheduler slop.
	if limit := 3*shedServiceTime + 50*time.Millisecond; p99o > limit {
		t.Fatalf("accepted p99 %v above structural ceiling %v", p99o, limit)
	}
	t.Logf("unloaded p99 %v; overload shed %d/%d, accepted p99 %v", p99u, shedO, overloadN, p99o)
}
