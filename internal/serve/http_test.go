package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"makalu/internal/obs"
)

func httpFixture(t *testing.T, lim *Limiter, reg *obs.Registry) (*Engine, *httptest.Server) {
	t.Helper()
	g, store := testOverlay(t, 300, 30)
	e, err := New(Config{
		Graph: g, Store: store,
		Shards: 2, Seed: 17, CacheCapacity: 128, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(HTTPConfig{
		Engine: e, Limiter: lim, Metrics: reg, Debug: reg != nil,
	}))
	t.Cleanup(func() { srv.Close(); e.Close() })
	return e, srv
}

func TestHTTPLookupRoundTrip(t *testing.T) {
	e, srv := httpFixture(t, nil, nil)
	obj := fmt.Sprintf("0x%x", objForTest(t, e))

	get := func(url string) (*http.Response, LookupReply) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var reply LookupReply
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
				t.Fatal(err)
			}
		}
		return resp, reply
	}

	resp, first := get(srv.URL + "/lookup?obj=" + obj + "&mech=flood&ttl=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !first.Found || first.Mech != "flood" || first.TTL != 4 || first.Object != obj {
		t.Fatalf("reply %+v", first)
	}
	if first.CacheHit {
		t.Fatal("first lookup must be computed, not cached")
	}
	resp, second := get(srv.URL + "/lookup?obj=" + obj + "&mech=flood&ttl=4")
	if resp.StatusCode != http.StatusOK || !second.CacheHit {
		t.Fatalf("repeat lookup: status %d, reply %+v", resp.StatusCode, second)
	}
	if second.Visited != first.Visited || second.Messages != first.Messages {
		t.Fatalf("cached reply diverged: %+v vs %+v", second, first)
	}

	// Decimal and 0x forms are the same object.
	var dec uint64
	fmt.Sscanf(obj, "0x%x", &dec)
	resp, third := get(fmt.Sprintf("%s/lookup?obj=%d&mech=flood&ttl=4", srv.URL, dec))
	if resp.StatusCode != http.StatusOK || !third.CacheHit {
		t.Fatalf("decimal form missed the cache: status %d, %+v", resp.StatusCode, third)
	}

	for _, bad := range []string{
		"/lookup",                      // missing obj
		"/lookup?obj=zzz",              // bad id
		"/lookup?obj=1&mech=quantum",   // unknown mechanism
		"/lookup?obj=1&ttl=none",       // bad ttl
		"/lookup?obj=1&mech=abf&ttl=4", // no ABF index loaded
	} {
		if resp, _ := get(srv.URL + bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// objForTest returns an object id that exists in the engine's store.
func objForTest(t *testing.T, e *Engine) uint64 {
	t.Helper()
	objs := e.snap.Load().store.Objects()
	if len(objs) == 0 {
		t.Fatal("no objects placed")
	}
	return objs[0]
}

func TestHTTPRateLimit429(t *testing.T) {
	clk := newFakeClock()
	lim := withClock(NewLimiter(1, 2), clk)
	e, srv := httpFixture(t, lim, nil)
	url := fmt.Sprintf("%s/lookup?obj=%d", srv.URL, objForTest(t, e))
	do := func(client string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, url, nil)
		req.Header.Set("X-Makalu-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	for i := 0; i < 2; i++ {
		if resp := do("alice"); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status %d", i, resp.StatusCode)
		}
	}
	resp := do("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Another client is unaffected; the header is the client identity.
	if resp := do("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob caught alice's 429: status %d", resp.StatusCode)
	}
	clk.advance(2 * time.Second)
	if resp := do("alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice still limited after refill: status %d", resp.StatusCode)
	}
}

func TestHTTPShed429(t *testing.T) {
	g, store := testOverlay(t, 200, 20)
	e, err := New(Config{
		Graph: g, Store: store,
		Shards: 1, QueueDepth: 1, Window: 1, Seed: 3,
		testDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHTTPHandler(HTTPConfig{Engine: e}))
	defer func() { srv.Close(); e.Close() }()

	// Distinct objects so nothing is served from cache; with one shard,
	// one queue slot, and 50ms service, a burst of 8 must shed.
	type out struct {
		status int
		retry  string
	}
	results := make(chan out, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			resp, err := http.Get(fmt.Sprintf("%s/lookup?obj=%d&ttl=2", srv.URL, 5000+i))
			if err != nil {
				results <- out{status: -1}
				return
			}
			resp.Body.Close()
			results <- out{resp.StatusCode, resp.Header.Get("Retry-After")}
		}(i)
	}
	ok, shed := 0, 0
	for i := 0; i < 8; i++ {
		r := <-results
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if r.retry == "" {
				t.Fatal("shed 429 without Retry-After")
			}
		default:
			t.Fatalf("unexpected status %d", r.status)
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst of 8: %d served, %d shed — want both paths exercised", ok, shed)
	}
}

func TestHTTPHealthAndDebugEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	e, srv := httpFixture(t, nil, reg)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		OK     bool   `json:"ok"`
		Epoch  uint64 `json:"epoch"`
		Shards int    `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.Shards != 2 {
		t.Fatalf("healthz %+v", health)
	}

	// Serve a couple of queries so metrics are non-trivial.
	obj := objForTest(t, e)
	for i := 0; i < 3; i++ {
		r, err := http.Get(fmt.Sprintf("%s/lookup?obj=%d", srv.URL, obj))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	mresp, err := http.Get(srv.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics struct {
		Counters   map[string]json.RawMessage `json:"counters"`
		Gauges     map[string]json.RawMessage `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			P99   float64 `json:"p99"`
			P999  float64 `json:"p999"`
		} `json:"histograms"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"serve.requests", "serve.cache_hits"} {
		if _, found := metrics.Counters[want]; !found {
			t.Fatalf("/debug/metrics missing counter %q (got %v)", want, keysOf(metrics.Counters))
		}
	}
	if _, found := metrics.Gauges["serve.cache_entries"]; !found {
		t.Fatalf("/debug/metrics missing gauge serve.cache_entries (got %v)", keysOf(metrics.Gauges))
	}
	lat, found := metrics.Histograms["serve.latency_ns"]
	if !found {
		t.Fatal("/debug/metrics missing histogram serve.latency_ns")
	}
	if lat.Count == 0 || lat.P999 < lat.P99 || lat.P999 == 0 {
		t.Fatalf("latency histogram %+v — p999 export is broken", lat)
	}
	presp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", presp.StatusCode)
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestTCPLineProtocol(t *testing.T) {
	g, store := testOverlay(t, 300, 30)
	abf := testABF(t, g, store)
	e, err := New(Config{Graph: g, Store: store, ABF: abf, Shards: 2, Seed: 21, CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewTCPServer("127.0.0.1:0", e, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); e.Close() }()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	obj := store.Objects()[0]

	send := func(line string) string {
		if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
			t.Fatal(err)
		}
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(reply, "\n")
	}

	first := send(fmt.Sprintf("Q flood %d 4", obj))
	if !strings.HasPrefix(first, "H 1 ") || !strings.HasSuffix(first, " 0") {
		t.Fatalf("first reply %q: want hit=found, cachehit=0", first)
	}
	second := send(fmt.Sprintf("Q flood %d 4", obj))
	if !strings.HasSuffix(second, " 1") {
		t.Fatalf("repeat reply %q: want cachehit=1", second)
	}
	// Same result fields either way (strip the trailing cachehit flag).
	if first[:len(first)-1] != second[:len(second)-1] {
		t.Fatalf("cached TCP reply diverged: %q vs %q", first, second)
	}
	if rep := send(fmt.Sprintf("Q walk 0x%x 128", obj)); !strings.HasPrefix(rep, "H ") {
		t.Fatalf("walk reply %q", rep)
	}
	if rep := send(fmt.Sprintf("Q abf %d 64", obj)); !strings.HasPrefix(rep, "H ") {
		t.Fatalf("abf reply %q", rep)
	}
	for _, bad := range []string{"HELLO", "Q flood 1", "Q quantum 1 4", "Q flood zzz 4", "Q flood 1 none"} {
		if rep := send(bad); !strings.HasPrefix(rep, "E ") {
			t.Fatalf("%q got %q, want E", bad, rep)
		}
	}

	// Pipelining: several requests in one write, replies in order.
	var batch strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&batch, "Q flood %d 4\n", obj)
	}
	if _, err := conn.Write([]byte(batch.String())); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("pipelined reply %d: %v", i, err)
		}
		if !strings.HasPrefix(reply, "H ") {
			t.Fatalf("pipelined reply %d = %q", i, reply)
		}
	}
}

func TestTCPRateLimit(t *testing.T) {
	g, store := testOverlay(t, 200, 20)
	e, err := New(Config{Graph: g, Store: store, Shards: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	lim := withClock(NewLimiter(1, 2), clk)
	srv, err := NewTCPServer("127.0.0.1:0", e, lim)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); e.Close() }()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	obj := store.Objects()[0]
	for i := 0; i < 3; i++ {
		fmt.Fprintf(conn, "Q flood %d 4\n", obj)
		reply, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		want := "H "
		if i >= 2 {
			want = "R " // burst of 2 exhausted
		}
		if !strings.HasPrefix(reply, want) {
			t.Fatalf("request %d reply %q, want prefix %q", i, reply, want)
		}
	}
}
