package serve

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzParseQueryLine drives the TCP line parser with arbitrary bytes —
// oversized, partial, pipelined and malformed Q lines — and checks its
// invariants: it never panics, its (ok, err) results are mutually
// exclusive, and anything it accepts round-trips through the canonical
// rendering to the identical request.
func FuzzParseQueryLine(f *testing.F) {
	// The satellite shapes: valid, oversized, partial, pipelined,
	// malformed.
	f.Add("Q flood 0x2a 6")
	f.Add("Q walk 12345 32")
	f.Add("Q abf 0xdeadbeef 12")
	f.Add("")
	f.Add("   \t  ")
	f.Add("Q flood " + strings.Repeat("9", 4096) + " 6") // oversized object
	f.Add(strings.Repeat("A", 8192))                     // oversized junk
	f.Add("Q flo")                                       // partial
	f.Add("Q flood 1")                                   // missing ttl
	f.Add("Q flood 1 2\nQ walk 3 4")                     // pipelined into one line
	f.Add("Q flood 1 2\r")
	f.Add("Z flood 1 2")
	f.Add("Q teleport 1 2")
	f.Add("Q flood 0xzz 2")
	f.Add("Q flood 1 -3")
	f.Add("Q flood -1 3")
	f.Add("Q\x00flood\x001\x002")
	f.Add("Q flood 18446744073709551615 255")
	f.Add("Q flood 18446744073709551616 255") // uint64 overflow

	f.Fuzz(func(t *testing.T, line string) {
		req, ok, err := ParseQueryLine(line)
		if ok && err != nil {
			t.Fatalf("ok with error: %v", err)
		}
		if !ok && err == nil && len(strings.Fields(line)) != 0 {
			t.Fatalf("silent rejection of non-blank line %q", line)
		}
		if !ok {
			return
		}
		// Accepted requests round-trip through the canonical form.
		canon := fmt.Sprintf("Q %s %d %d", req.Mech, req.Object, req.TTL)
		req2, ok2, err2 := ParseQueryLine(canon)
		if !ok2 || err2 != nil || req2 != req {
			t.Fatalf("round trip failed: %q -> %+v -> %q -> %+v (%v)", line, req, canon, req2, err2)
		}
	})
}
