// Package bloom implements the Bloom filters behind Makalu's indexed
// identifier search (§4.6): a plain bit-vector Bloom filter with
// double hashing, and the attenuated Bloom filter of Rhea and
// Kubiatowicz — a hierarchy of filters where level i summarizes the
// content hosted exactly i hops away.
package bloom

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
)

// Filter is a fixed-size Bloom filter over 64-bit keys. The zero
// value is unusable; construct with New or NewOptimal.
type Filter struct {
	words []uint64
	m     uint64 // number of bits
	k     int    // hash functions
	n     uint64 // insertions (for fill-rate estimates)
}

// New returns a filter with m bits and k hash functions.
func New(m, k int) *Filter {
	if m <= 0 || k <= 0 {
		panic("bloom: m and k must be positive")
	}
	return &Filter{words: make([]uint64, (m+63)/64), m: uint64(m), k: k}
}

// NewOptimal sizes a filter for the expected number of items at the
// target false-positive rate using the standard formulas
// m = -n·ln(p)/ln(2)², k = (m/n)·ln(2).
func NewOptimal(expected int, fpRate float64) *Filter {
	if expected <= 0 {
		expected = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		panic("bloom: false-positive rate must be in (0, 1)")
	}
	m := int(math.Ceil(-float64(expected) * math.Log(fpRate) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(expected) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return New(m, k)
}

// Bits returns the filter size in bits.
func (f *Filter) Bits() int { return int(f.m) }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return f.k }

// Insertions returns the number of Add calls (duplicates included).
func (f *Filter) Insertions() int { return int(f.n) }

// mix is splitmix64: the double-hashing basis for 64-bit keys.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// indexes derives the k bit positions of key via double hashing:
// position_i = (h1 + i*h2) mod m with h2 forced odd.
func (f *Filter) index(key uint64, i int) uint64 {
	h1 := mix(key)
	h2 := mix(key^0xabcdef1234567890) | 1
	return (h1 + uint64(i)*h2) % f.m
}

// Add inserts a key.
func (f *Filter) Add(key uint64) {
	for i := 0; i < f.k; i++ {
		p := f.index(key, i)
		f.words[p/64] |= 1 << (p % 64)
	}
	f.n++
}

// AddString inserts a string key (FNV-1a hashed to 64 bits).
func (f *Filter) AddString(s string) { f.Add(HashString(s)) }

// Contains reports whether key may have been inserted. False
// positives occur at the filter's fill-dependent rate; false
// negatives never.
func (f *Filter) Contains(key uint64) bool {
	for i := 0; i < f.k; i++ {
		p := f.index(key, i)
		if f.words[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// ContainsString is Contains for string keys.
func (f *Filter) ContainsString(s string) bool { return f.Contains(HashString(s)) }

// HashString maps a string to the 64-bit key space via FNV-1a.
func HashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Union ORs other into f. Both filters must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: union of mismatched filters (%d/%d bits, %d/%d hashes)",
			f.m, other.m, f.k, other.k)
	}
	for i, w := range other.words {
		f.words[i] |= w
	}
	f.n += other.n
	return nil
}

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.words {
		f.words[i] = 0
	}
	f.n = 0
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	c := &Filter{words: append([]uint64(nil), f.words...), m: f.m, k: f.k, n: f.n}
	return c
}

// PopCount returns the number of set bits.
func (f *Filter) PopCount() int {
	total := 0
	for _, w := range f.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	return float64(f.PopCount()) / float64(f.m)
}

// EstimatedFPRate estimates the current false-positive probability as
// fill^k.
func (f *Filter) EstimatedFPRate() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Empty reports whether no bits are set.
func (f *Filter) Empty() bool {
	for _, w := range f.words {
		if w != 0 {
			return false
		}
	}
	return true
}
