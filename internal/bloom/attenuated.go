package bloom

import "fmt"

// Attenuated is an attenuated Bloom filter (Rhea–Kubiatowicz): a
// stack of Bloom filters where Levels[i] summarizes the identifiers
// hosted exactly i hops away from the owning node (level 0 = the
// node's own content). Deeper levels aggregate exponentially more
// nodes, so they use larger filters and their matches carry less
// weight during routing (§4.6: "results from Bloom filters near the
// top of the hierarchy are given more weight").
type Attenuated struct {
	Levels []*Filter
}

// NewAttenuated builds a filter hierarchy. bitsPerLevel[i] sizes
// level i; k is the shared hash count (sharing k lets levels be
// unioned across nodes level-by-level).
func NewAttenuated(bitsPerLevel []int, k int) *Attenuated {
	if len(bitsPerLevel) == 0 {
		panic("bloom: attenuated filter needs at least one level")
	}
	a := &Attenuated{Levels: make([]*Filter, len(bitsPerLevel))}
	for i, m := range bitsPerLevel {
		a.Levels[i] = New(m, k)
	}
	return a
}

// DefaultLevelBits returns the per-level filter sizes used by the
// experiments for the given depth: sizes grow geometrically
// (base<<(2i)) because level i covers ~degreeⁱ more nodes.
func DefaultLevelBits(depth, base int) []int {
	if depth <= 0 {
		panic("bloom: depth must be positive")
	}
	if base <= 0 {
		base = 512
	}
	sizes := make([]int, depth)
	for i := range sizes {
		sizes[i] = base << (2 * uint(i))
	}
	return sizes
}

// Depth returns the number of levels.
func (a *Attenuated) Depth() int { return len(a.Levels) }

// Add inserts key at the given level.
func (a *Attenuated) Add(level int, key uint64) { a.Levels[level].Add(key) }

// UnionLevel ORs a plain filter into level i. Geometry must match.
func (a *Attenuated) UnionLevel(level int, f *Filter) error {
	return a.Levels[level].Union(f)
}

// MatchLevel returns the shallowest level whose filter contains key,
// or -1 when no level matches. A shallow match means the content is
// likely close, so routing prefers low return values.
func (a *Attenuated) MatchLevel(key uint64) int {
	for i, f := range a.Levels {
		if f.Contains(key) {
			return i
		}
	}
	return -1
}

// Score is the potential function that ranks neighbors during
// identifier routing: each matching level i contributes decay^i, so a
// level-0 match dominates and deeper (noisier) levels act as
// tie-breakers. decay must be in (0, 1).
func (a *Attenuated) Score(key uint64, decay float64) float64 {
	score := 0.0
	w := 1.0
	for _, f := range a.Levels {
		if f.Contains(key) {
			score += w
		}
		w *= decay
	}
	return score
}

// Clone deep-copies the hierarchy.
func (a *Attenuated) Clone() *Attenuated {
	c := &Attenuated{Levels: make([]*Filter, len(a.Levels))}
	for i, f := range a.Levels {
		c.Levels[i] = f.Clone()
	}
	return c
}

// Reset clears every level.
func (a *Attenuated) Reset() {
	for _, f := range a.Levels {
		f.Reset()
	}
}

// Shifted returns a copy of a with every level pushed one hop deeper:
// level i of the result is level i-1 of a, level 0 empty, and the
// deepest level of a dropped. This is the aggregation step when a
// neighbor publishes its hierarchy to us: content i hops from the
// neighbor is i+1 hops from us. Geometry mismatches between adjacent
// levels are reported as an error.
func (a *Attenuated) Shifted() (*Attenuated, error) {
	c := &Attenuated{Levels: make([]*Filter, len(a.Levels))}
	c.Levels[0] = New(a.Levels[0].Bits(), a.Levels[0].Hashes())
	for i := 1; i < len(a.Levels); i++ {
		src := a.Levels[i-1]
		if src.Bits() != a.Levels[i].Bits() || src.Hashes() != a.Levels[i].Hashes() {
			return nil, fmt.Errorf("bloom: Shifted needs uniform level geometry (level %d: %d vs %d bits)",
				i, src.Bits(), a.Levels[i].Bits())
		}
		c.Levels[i] = src.Clone()
	}
	return c, nil
}

// MemoryBits returns the total bit footprint of the hierarchy,
// reported by the experiments that size 100k-node networks.
func (a *Attenuated) MemoryBits() int {
	total := 0
	for _, f := range a.Levels {
		total += f.Bits()
	}
	return total
}
