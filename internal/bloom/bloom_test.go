package bloom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		bf := New(4096, 5)
		for _, k := range keys {
			bf.Add(k)
		}
		for _, k := range keys {
			if !bf.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	bf := New(1024, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if bf.Contains(rng.Uint64()) {
			t.Fatal("empty filter reported membership")
		}
	}
	if !bf.Empty() {
		t.Fatal("Empty() should be true")
	}
}

func TestFalsePositiveRateNearTarget(t *testing.T) {
	n := 1000
	bf := NewOptimal(n, 0.01)
	rng := rand.New(rand.NewSource(2))
	inserted := make(map[uint64]bool, n)
	for len(inserted) < n {
		k := rng.Uint64()
		inserted[k] = true
		bf.Add(k)
	}
	fp, trials := 0, 100000
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if inserted[k] {
			continue
		}
		if bf.Contains(k) {
			fp++
		}
	}
	rate := float64(fp) / float64(trials)
	if rate > 0.03 {
		t.Fatalf("false-positive rate %.4f far above 0.01 target", rate)
	}
	if est := bf.EstimatedFPRate(); math.Abs(est-rate) > 0.02 {
		t.Fatalf("estimate %.4f far from measured %.4f", est, rate)
	}
}

func TestNewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 3) },
		func() { New(64, 0) },
		func() { NewOptimal(10, 0) },
		func() { NewOptimal(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNewOptimalGeometry(t *testing.T) {
	bf := NewOptimal(1000, 0.01)
	// Optimal: m ≈ 9.59 bits/item, k ≈ 7.
	if bf.Bits() < 9000 || bf.Bits() > 11000 {
		t.Fatalf("m = %d, want ≈ 9600", bf.Bits())
	}
	if bf.Hashes() < 6 || bf.Hashes() > 8 {
		t.Fatalf("k = %d, want ≈ 7", bf.Hashes())
	}
	tiny := NewOptimal(0, 0.5)
	if tiny.Bits() < 64 || tiny.Hashes() < 1 {
		t.Fatal("degenerate sizing should clamp sanely")
	}
}

func TestStringKeys(t *testing.T) {
	bf := New(2048, 4)
	bf.AddString("ubuntu-22.04.iso")
	if !bf.ContainsString("ubuntu-22.04.iso") {
		t.Fatal("string key lost")
	}
	if bf.ContainsString("debian-12.iso") && bf.ContainsString("arch.iso") && bf.ContainsString("fedora.iso") {
		t.Fatal("suspiciously many string false positives")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("trivial hash collision")
	}
}

func TestUnion(t *testing.T) {
	a := New(512, 3)
	b := New(512, 3)
	a.Add(1)
	b.Add(2)
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains(1) || !a.Contains(2) {
		t.Fatal("union lost keys")
	}
	if a.Insertions() != 2 {
		t.Fatalf("insertions = %d, want 2", a.Insertions())
	}
}

func TestUnionMismatch(t *testing.T) {
	if err := New(512, 3).Union(New(256, 3)); err == nil {
		t.Fatal("bit mismatch should fail")
	}
	if err := New(512, 3).Union(New(512, 4)); err == nil {
		t.Fatal("hash-count mismatch should fail")
	}
}

func TestUnionSupersetProperty(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		a, b := New(2048, 4), New(2048, 4)
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		u := a.Clone()
		if err := u.Union(b); err != nil {
			return false
		}
		for _, x := range xs {
			if !u.Contains(x) {
				return false
			}
		}
		for _, y := range ys {
			if !u.Contains(y) {
				return false
			}
		}
		// Union never clears bits: everything a contained, u contains.
		return u.PopCount() >= a.PopCount() && u.PopCount() >= b.PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResetAndClone(t *testing.T) {
	a := New(256, 3)
	a.Add(42)
	c := a.Clone()
	a.Reset()
	if a.Contains(42) || a.PopCount() != 0 || a.Insertions() != 0 {
		t.Fatal("reset incomplete")
	}
	if !c.Contains(42) {
		t.Fatal("clone should be independent of reset")
	}
}

func TestFillRatioMonotone(t *testing.T) {
	bf := New(1024, 3)
	prev := bf.FillRatio()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		bf.Add(rng.Uint64())
		cur := bf.FillRatio()
		if cur < prev {
			t.Fatal("fill ratio decreased on insert")
		}
		prev = cur
	}
	if prev <= 0 || prev > 1 {
		t.Fatalf("fill ratio %v out of range", prev)
	}
}

func TestAttenuatedBasics(t *testing.T) {
	a := NewAttenuated([]int{256, 1024, 4096}, 4)
	if a.Depth() != 3 {
		t.Fatalf("depth = %d", a.Depth())
	}
	a.Add(0, 100)
	a.Add(2, 200)
	if got := a.MatchLevel(100); got != 0 {
		t.Fatalf("MatchLevel(100) = %d, want 0", got)
	}
	if got := a.MatchLevel(200); got != 2 {
		t.Fatalf("MatchLevel(200) = %d, want 2", got)
	}
	if got := a.MatchLevel(999); got != -1 {
		t.Fatalf("MatchLevel(miss) = %d, want -1", got)
	}
}

func TestAttenuatedScoreWeighting(t *testing.T) {
	a := NewAttenuated([]int{256, 256, 256}, 4)
	a.Add(0, 7)
	b := NewAttenuated([]int{256, 256, 256}, 4)
	b.Add(2, 7)
	sa, sb := a.Score(7, 0.5), b.Score(7, 0.5)
	if sa <= sb {
		t.Fatalf("shallow match %v should outscore deep match %v", sa, sb)
	}
	if sb != 0.25 {
		t.Fatalf("deep score = %v, want 0.25", sb)
	}
	// Matching at several levels accumulates.
	a.Add(1, 7)
	if got := a.Score(7, 0.5); got != 1.5 {
		t.Fatalf("multi-level score = %v, want 1.5", got)
	}
}

func TestAttenuatedValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewAttenuated(nil, 4) },
		func() { DefaultLevelBits(0, 512) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDefaultLevelBits(t *testing.T) {
	sizes := DefaultLevelBits(3, 512)
	want := []int{512, 2048, 8192}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	if s := DefaultLevelBits(2, 0); s[0] != 512 {
		t.Fatalf("zero base should default to 512, got %v", s)
	}
}

func TestAttenuatedShifted(t *testing.T) {
	a := NewAttenuated([]int{256, 256, 256}, 4)
	a.Add(0, 11) // own content
	a.Add(1, 22) // one hop away
	a.Add(2, 33) // two hops away: falls off after shift
	s, err := a.Shifted()
	if err != nil {
		t.Fatal(err)
	}
	if !s.Levels[0].Empty() {
		t.Fatal("shifted level 0 should be empty")
	}
	if s.MatchLevel(11) != 1 {
		t.Fatalf("own content should move to level 1, got %d", s.MatchLevel(11))
	}
	if s.MatchLevel(22) != 2 {
		t.Fatalf("one-hop content should move to level 2, got %d", s.MatchLevel(22))
	}
	if s.MatchLevel(33) != -1 {
		t.Fatal("deepest level should fall off the hierarchy")
	}
}

func TestAttenuatedShiftedGeometryMismatch(t *testing.T) {
	a := NewAttenuated([]int{256, 1024}, 4)
	if _, err := a.Shifted(); err == nil {
		t.Fatal("non-uniform levels cannot shift")
	}
}

func TestAttenuatedUnionLevelAndClone(t *testing.T) {
	a := NewAttenuated([]int{512, 512}, 3)
	f := New(512, 3)
	f.Add(5)
	if err := a.UnionLevel(1, f); err != nil {
		t.Fatal(err)
	}
	if a.MatchLevel(5) != 1 {
		t.Fatal("union level lost the key")
	}
	c := a.Clone()
	a.Reset()
	if a.MatchLevel(5) != -1 {
		t.Fatal("reset incomplete")
	}
	if c.MatchLevel(5) != 1 {
		t.Fatal("clone should survive reset")
	}
	if err := a.UnionLevel(0, New(128, 3)); err == nil {
		t.Fatal("geometry mismatch should fail")
	}
}

func TestAttenuatedMemoryBits(t *testing.T) {
	a := NewAttenuated([]int{512, 2048}, 3)
	if a.MemoryBits() != 2560 {
		t.Fatalf("memory = %d bits", a.MemoryBits())
	}
}

func TestAttenuatedDeepLevelsFalsePositives(t *testing.T) {
	// The paper's premise: deeper levels hold more items, so their
	// false-positive rate rises — which is why shallow matches get
	// more weight. Fill level sizes equally and observe the FPR gap.
	a := NewAttenuated([]int{2048, 2048, 2048}, 4)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		a.Add(0, rng.Uint64())
	}
	for i := 0; i < 100; i++ {
		a.Add(1, rng.Uint64())
	}
	for i := 0; i < 1000; i++ {
		a.Add(2, rng.Uint64())
	}
	if a.Levels[0].EstimatedFPRate() >= a.Levels[2].EstimatedFPRate() {
		t.Fatal("deeper levels should have higher estimated FPR")
	}
}
