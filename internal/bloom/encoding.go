package bloom

import (
	"encoding/binary"
	"fmt"
)

// Wire format of a Filter:
//
//	magic   uint32  "MBF1"
//	m       uint64  bits
//	k       uint32  hash functions
//	n       uint64  insertions
//	words   []uint64 (little endian, ceil(m/64) entries)
//
// An Attenuated hierarchy is a uint32 level count followed by each
// level's filter. Peers exchange these blobs when they establish a
// connection (§4.6: "they exchanged routing tables and their
// corresponding attenuated Bloom filters").

const filterMagic = 0x4d424631 // "MBF1"

// MarshalBinary encodes the filter in the wire format above.
func (f *Filter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 4+8+4+8+8*len(f.words))
	binary.LittleEndian.PutUint32(buf[0:], filterMagic)
	binary.LittleEndian.PutUint64(buf[4:], f.m)
	binary.LittleEndian.PutUint32(buf[12:], uint32(f.k))
	binary.LittleEndian.PutUint64(buf[16:], f.n)
	off := 24
	for _, w := range f.words {
		binary.LittleEndian.PutUint64(buf[off:], w)
		off += 8
	}
	return buf, nil
}

// UnmarshalBinary decodes a filter encoded by MarshalBinary,
// replacing the receiver's state. It validates the header and length
// so corrupt frames are rejected rather than misread.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return fmt.Errorf("bloom: frame too short (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data[0:]) != filterMagic {
		return fmt.Errorf("bloom: bad magic")
	}
	m := binary.LittleEndian.Uint64(data[4:])
	k := binary.LittleEndian.Uint32(data[12:])
	n := binary.LittleEndian.Uint64(data[16:])
	if m == 0 || k == 0 || k > 64 {
		return fmt.Errorf("bloom: invalid geometry m=%d k=%d", m, k)
	}
	words := int((m + 63) / 64)
	if len(data) != 24+8*words {
		return fmt.Errorf("bloom: frame length %d does not match m=%d", len(data), m)
	}
	f.m = m
	f.k = int(k)
	f.n = n
	f.words = make([]uint64, words)
	off := 24
	for i := range f.words {
		f.words[i] = binary.LittleEndian.Uint64(data[off:])
		off += 8
	}
	// Bits beyond m in the last word must be zero, or Union/Contains
	// invariants break after decode.
	if rem := m % 64; rem != 0 {
		if f.words[words-1]>>rem != 0 {
			return fmt.Errorf("bloom: set bits beyond filter size")
		}
	}
	return nil
}

// MarshalBinary encodes the hierarchy: level count then each level.
func (a *Attenuated) MarshalBinary() ([]byte, error) {
	out := make([]byte, 4)
	binary.LittleEndian.PutUint32(out, uint32(len(a.Levels)))
	for _, f := range a.Levels {
		b, err := f.MarshalBinary()
		if err != nil {
			return nil, err
		}
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(b)))
		out = append(out, lenBuf[:]...)
		out = append(out, b...)
	}
	return out, nil
}

// UnmarshalBinary decodes a hierarchy encoded by MarshalBinary.
func (a *Attenuated) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("bloom: attenuated frame too short")
	}
	levels := binary.LittleEndian.Uint32(data)
	if levels == 0 || levels > 64 {
		return fmt.Errorf("bloom: implausible level count %d", levels)
	}
	data = data[4:]
	decoded := make([]*Filter, 0, levels)
	for i := uint32(0); i < levels; i++ {
		if len(data) < 4 {
			return fmt.Errorf("bloom: truncated at level %d", i)
		}
		n := binary.LittleEndian.Uint32(data)
		data = data[4:]
		if uint32(len(data)) < n {
			return fmt.Errorf("bloom: level %d truncated", i)
		}
		f := &Filter{}
		if err := f.UnmarshalBinary(data[:n]); err != nil {
			return fmt.Errorf("bloom: level %d: %w", i, err)
		}
		decoded = append(decoded, f)
		data = data[n:]
	}
	if len(data) != 0 {
		return fmt.Errorf("bloom: %d trailing bytes", len(data))
	}
	a.Levels = decoded
	return nil
}
