package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFilterRoundTrip(t *testing.T) {
	f := New(1000, 5) // deliberately not a multiple of 64
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	b, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if g.Bits() != f.Bits() || g.Hashes() != f.Hashes() || g.Insertions() != f.Insertions() {
		t.Fatalf("geometry lost: %d/%d/%d vs %d/%d/%d",
			g.Bits(), g.Hashes(), g.Insertions(), f.Bits(), f.Hashes(), f.Insertions())
	}
	for _, k := range keys {
		if !g.Contains(k) {
			t.Fatal("key lost in round trip")
		}
	}
	if g.PopCount() != f.PopCount() {
		t.Fatal("bit pattern changed")
	}
}

func TestFilterRoundTripProperty(t *testing.T) {
	prop := func(keys []uint64, mRaw uint16, kRaw uint8) bool {
		m := int(mRaw)%4096 + 64
		k := int(kRaw)%8 + 1
		f := New(m, k)
		for _, key := range keys {
			f.Add(key)
		}
		b, err := f.MarshalBinary()
		if err != nil {
			return false
		}
		var g Filter
		if err := g.UnmarshalBinary(b); err != nil {
			return false
		}
		for _, key := range keys {
			if !g.Contains(key) {
				return false
			}
		}
		return g.PopCount() == f.PopCount()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterUnmarshalRejectsCorruption(t *testing.T) {
	f := New(256, 3)
	f.Add(7)
	good, _ := f.MarshalBinary()

	cases := map[string][]byte{
		"short":     good[:10],
		"bad magic": append([]byte{9, 9, 9, 9}, good[4:]...),
		"truncated": good[:len(good)-8],
		"trailing":  append(append([]byte{}, good...), 0),
	}
	for name, data := range cases {
		var g Filter
		if err := g.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s frame accepted", name)
		}
	}

	// Zero geometry.
	bad := append([]byte{}, good...)
	bad[12], bad[13], bad[14], bad[15] = 0, 0, 0, 0 // k = 0
	var g Filter
	if err := g.UnmarshalBinary(bad); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFilterUnmarshalRejectsOutOfRangeBits(t *testing.T) {
	// A 100-bit filter occupies 2 words; bits 100..127 must be clear.
	f := New(100, 2)
	good, _ := f.MarshalBinary()
	bad := append([]byte{}, good...)
	bad[len(bad)-1] |= 0x80 // set bit 127
	var g Filter
	if err := g.UnmarshalBinary(bad); err == nil {
		t.Fatal("out-of-range bit accepted")
	}
}

func TestAttenuatedRoundTrip(t *testing.T) {
	a := NewAttenuated([]int{256, 1024, 4096}, 4)
	a.Add(0, 11)
	a.Add(1, 22)
	a.Add(2, 33)
	b, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var c Attenuated
	if err := c.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if c.Depth() != 3 {
		t.Fatalf("depth = %d", c.Depth())
	}
	if c.MatchLevel(11) != 0 || c.MatchLevel(22) != 1 || c.MatchLevel(33) != 2 {
		t.Fatal("levels scrambled in round trip")
	}
}

func TestAttenuatedUnmarshalRejectsCorruption(t *testing.T) {
	a := NewAttenuated([]int{128, 128}, 3)
	good, _ := a.MarshalBinary()
	for name, data := range map[string][]byte{
		"empty":     {},
		"zero lvls": {0, 0, 0, 0},
		"truncated": good[:len(good)-4],
		"trailing":  append(append([]byte{}, good...), 1, 2, 3),
	} {
		var c Attenuated
		if err := c.UnmarshalBinary(data); err == nil {
			t.Fatalf("%s frame accepted", name)
		}
	}
}

func TestEncodedSizeMatchesMemoryModel(t *testing.T) {
	// The wire size is what the paper's feasibility argument meters:
	// header + bits/8 per level.
	a := NewAttenuated([]int{512, 2048}, 4)
	b, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want := 4 + 2*(4+24) + (512+2048)/8
	if len(b) != want {
		t.Fatalf("encoded size %d, want %d", len(b), want)
	}
}
