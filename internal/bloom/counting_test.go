package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCountingAddRemove(t *testing.T) {
	f := NewCounting(1024, 4)
	f.Add(42)
	if !f.Contains(42) {
		t.Fatal("added key missing")
	}
	if err := f.Remove(42); err != nil {
		t.Fatal(err)
	}
	if f.Contains(42) {
		t.Fatal("removed key still present")
	}
	if f.Insertions() != 0 {
		t.Fatalf("net insertions = %d", f.Insertions())
	}
}

func TestCountingRemoveAbsentRejected(t *testing.T) {
	f := NewCounting(1024, 4)
	f.Add(1)
	if err := f.Remove(2); err == nil {
		t.Fatal("removing an absent key should error")
	}
	if !f.Contains(1) {
		t.Fatal("failed remove corrupted other keys")
	}
}

func TestCountingNoFalseNegativesUnderChurnProperty(t *testing.T) {
	prop := func(addsRaw []uint16, removeMask uint64) bool {
		f := NewCounting(4096, 4)
		// Deduplicate adds so each key is inserted exactly once.
		adds := map[uint64]bool{}
		for _, a := range addsRaw {
			adds[uint64(a)+1] = true
		}
		for k := range adds {
			f.Add(k)
		}
		// Remove a subset.
		removed := map[uint64]bool{}
		i := 0
		for k := range adds {
			if removeMask&(1<<(uint(i)%64)) != 0 {
				if err := f.Remove(k); err != nil {
					return false
				}
				removed[k] = true
			}
			i++
		}
		// Every surviving key must still be present.
		for k := range adds {
			if !removed[k] && !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingDuplicateInsertions(t *testing.T) {
	f := NewCounting(512, 3)
	f.Add(7)
	f.Add(7)
	if err := f.Remove(7); err != nil {
		t.Fatal(err)
	}
	if !f.Contains(7) {
		t.Fatal("one removal of a doubly-added key must leave it present")
	}
	if err := f.Remove(7); err != nil {
		t.Fatal(err)
	}
	if f.Contains(7) {
		t.Fatal("both copies removed; key should be gone")
	}
}

func TestCountingSaturation(t *testing.T) {
	f := NewCounting(64, 1)
	// Saturate one counter far past 255.
	for i := 0; i < 300; i++ {
		f.Add(9)
	}
	// Removing at saturation must not clear the counter (no false
	// negatives ever).
	for i := 0; i < 300; i++ {
		if err := f.Remove(9); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Contains(9) {
		t.Fatal("saturated counter decremented to zero: false negative risk")
	}
}

func TestCountingSnapshotMatchesMembership(t *testing.T) {
	f := NewCounting(2048, 4)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 100)
	for i := range keys {
		keys[i] = rng.Uint64()
		f.Add(keys[i])
	}
	for _, k := range keys[:50] {
		if err := f.Remove(k); err != nil {
			t.Fatal(err)
		}
	}
	snap := f.Snapshot()
	if snap.Bits() != f.Bits() || snap.Hashes() != f.Hashes() {
		t.Fatal("snapshot geometry mismatch")
	}
	for _, k := range keys[50:] {
		if !snap.Contains(k) {
			t.Fatal("snapshot lost a surviving key")
		}
	}
	// A snapshot is a plain filter: it unions with same-geometry peers.
	other := New(2048, 4)
	if err := other.Union(snap); err != nil {
		t.Fatal(err)
	}
}

func TestCountingValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCounting(0, 2)
}

func TestCountingReset(t *testing.T) {
	f := NewCounting(64, 2)
	f.Add(5)
	f.Reset()
	if f.Contains(5) || f.Insertions() != 0 {
		t.Fatal("reset incomplete")
	}
}
