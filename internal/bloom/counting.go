package bloom

import (
	"fmt"
	"math"
)

// CountingFilter is a Bloom filter with 8-bit counters instead of
// bits, supporting Remove — the building block for keeping attenuated
// filters current when content leaves a node or a neighbor departs
// (churn), where a plain filter would need a full rebuild. A plain
// Filter snapshot can be exported for the wire at any time.
type CountingFilter struct {
	counts []uint8
	m      uint64
	k      int
	n      uint64
}

// NewCounting returns a counting filter with m counters and k hashes.
func NewCounting(m, k int) *CountingFilter {
	if m <= 0 || k <= 0 {
		panic("bloom: m and k must be positive")
	}
	return &CountingFilter{counts: make([]uint8, m), m: uint64(m), k: k}
}

// Bits returns the counter count (the m parameter).
func (f *CountingFilter) Bits() int { return int(f.m) }

// Hashes returns the number of hash functions.
func (f *CountingFilter) Hashes() int { return f.k }

// Insertions returns the net insertion count (adds minus removes).
func (f *CountingFilter) Insertions() int { return int(f.n) }

func (f *CountingFilter) index(key uint64, i int) uint64 {
	h1 := mix(key)
	h2 := mix(key^0xabcdef1234567890) | 1
	return (h1 + uint64(i)*h2) % f.m
}

// Add inserts a key. Counters saturate at 255 rather than wrapping —
// a saturated counter can no longer be decremented reliably, so a
// Remove against it leaves the counter untouched (erring towards
// false positives, never false negatives).
func (f *CountingFilter) Add(key uint64) {
	for i := 0; i < f.k; i++ {
		p := f.index(key, i)
		if f.counts[p] < math.MaxUint8 {
			f.counts[p]++
		}
	}
	f.n++
}

// Remove deletes one insertion of key. Removing a key that was never
// added corrupts the filter (as with every counting Bloom filter), so
// callers must only remove what they added; it returns an error when
// the key is definitely absent, as a guard against that misuse.
func (f *CountingFilter) Remove(key uint64) error {
	// Verify presence first so an absent key cannot underflow others.
	for i := 0; i < f.k; i++ {
		if f.counts[f.index(key, i)] == 0 {
			return fmt.Errorf("bloom: removing absent key %#x", key)
		}
	}
	for i := 0; i < f.k; i++ {
		p := f.index(key, i)
		if f.counts[p] > 0 && f.counts[p] < math.MaxUint8 {
			f.counts[p]--
		}
	}
	if f.n > 0 {
		f.n--
	}
	return nil
}

// Contains reports whether key may be present.
func (f *CountingFilter) Contains(key uint64) bool {
	for i := 0; i < f.k; i++ {
		if f.counts[f.index(key, i)] == 0 {
			return false
		}
	}
	return true
}

// Snapshot exports the current membership as a plain Filter with the
// same geometry — the form peers exchange on the wire.
func (f *CountingFilter) Snapshot() *Filter {
	out := New(int(f.m), f.k)
	for p, c := range f.counts {
		if c > 0 {
			out.words[p/64] |= 1 << (uint(p) % 64)
		}
	}
	out.n = f.n
	return out
}

// Reset clears all counters.
func (f *CountingFilter) Reset() {
	for i := range f.counts {
		f.counts[i] = 0
	}
	f.n = 0
}
