package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"makalu/internal/obs"
)

// BackendSpec names one serve backend: the TCP line-protocol address
// requests forward to, and optionally the HTTP address whose /healthz
// the checker probes (epoch + queue depth). With no HTTP address the
// checker probes over TCP with the Z status line instead.
type BackendSpec struct {
	Addr string // host:port of the backend's -serve-tcp listener
	HTTP string // host:port of the backend's -serve-http listener ("" = probe via TCP Z)
}

// Config wires a Gateway.
type Config struct {
	Backends []BackendSpec

	// Route picks the routing policy: RouteHash (consistent-hash key
	// affinity, the default) or RouteRandom (uniform spray — the
	// baseline BENCH_gateway's affinity experiment compares against).
	Route string

	// VNodes is the ring's virtual-node count per backend (default
	// DefaultVNodes).
	VNodes int
	// PoolSize is the pipelined connection count per backend (default 4).
	PoolSize int

	// NoHedge disables hedged requests; by default a request that has
	// not answered within the hedge delay is re-issued to the next ring
	// replica and the first reply wins (safe: answers are bit-identical
	// by the serve purity contract).
	NoHedge bool
	// HedgeMin/HedgeMax clamp the p99-derived hedge delay (defaults
	// 1ms / 50ms). Until enough latency samples exist the delay is
	// HedgeMax.
	HedgeMin time.Duration
	HedgeMax time.Duration

	// HealthInterval is the probe period (default 500ms); FailThreshold
	// is the consecutive-failure count (probes or forwards) that evicts
	// a backend from the ring (default 2). An evicted backend rejoins
	// after one successful probe.
	HealthInterval time.Duration
	FailThreshold  int
	// MaxQueueDepth evicts a backend whose reported queue depth exceeds
	// it (0 = saturation never evicts, depth is still exported).
	MaxQueueDepth int
	// StaleEpochEvicts evicts a backend whose reported overlay epoch
	// trails the newest healthy backend's — it would serve bit-different
	// (pre-update) answers.
	StaleEpochEvicts bool

	// DialTimeout / ReadTimeout bound one backend connection attempt
	// and one reply wait (defaults 2s / 30s).
	DialTimeout time.Duration
	ReadTimeout time.Duration

	// Metrics receives gateway counters and latency histograms; nil
	// disables instrumentation.
	Metrics *obs.Registry
}

// Routing policies.
const (
	RouteHash   = "hash"
	RouteRandom = "random"
)

// ErrNoBackends is returned when no healthy backend remains.
var ErrNoBackends = errors.New("gateway: no healthy backends")

// Backend is one serve process behind the gateway.
type Backend struct {
	spec BackendSpec
	pool *Pool

	up          atomic.Bool
	epoch       atomic.Uint64
	queueDepth  atomic.Int64
	failStreak  atomic.Int64
	evictionsN  atomic.Int64
	rejoinsN    atomic.Int64
	forwardsC   *obs.Counter
	failuresC   *obs.Counter
	inflightG   *obs.Gauge
	lastProbeMu sync.Mutex
	lastProbe   error
}

// Addr returns the backend's forwarding (TCP) address.
func (b *Backend) Addr() string { return b.spec.Addr }

// Up reports ring membership.
func (b *Backend) Up() bool { return b.up.Load() }

// Epoch returns the backend's last reported overlay epoch.
func (b *Backend) Epoch() uint64 { return b.epoch.Load() }

// QueueDepth returns the backend's last reported engine queue depth.
func (b *Backend) QueueDepth() int64 { return b.queueDepth.Load() }

// Gateway routes line-protocol lookups over the backend set.
type Gateway struct {
	cfg      Config
	backends []*Backend
	byID     map[string]*Backend

	mu   sync.RWMutex // guards ring membership
	ring *Ring

	randCtr      atomic.Uint64 // RouteRandom pick stream
	hedgeDelayNs atomic.Int64
	fwdCount     atomic.Uint64 // triggers periodic p99 refresh

	forwards  *obs.Counter
	retries   *obs.Counter
	hedges    *obs.Counter
	hedgeWins *obs.Counter
	errs      *obs.Counter
	evictions *obs.Counter
	rejoins   *obs.Counter
	latency   *obs.Histogram

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New validates cfg, dials nothing (pools are lazy), marks every
// backend up, and starts the health checker.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("gateway: at least one backend required")
	}
	switch cfg.Route {
	case "":
		cfg.Route = RouteHash
	case RouteHash, RouteRandom:
	default:
		return nil, fmt.Errorf("gateway: unknown route policy %q (want %s|%s)", cfg.Route, RouteHash, RouteRandom)
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	if cfg.HedgeMin <= 0 {
		cfg.HedgeMin = time.Millisecond
	}
	if cfg.HedgeMax < cfg.HedgeMin {
		cfg.HedgeMax = 50 * time.Millisecond
		if cfg.HedgeMax < cfg.HedgeMin {
			cfg.HedgeMax = cfg.HedgeMin
		}
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	g := &Gateway{
		cfg:  cfg,
		byID: make(map[string]*Backend, len(cfg.Backends)),
		ring: NewRing(cfg.VNodes),
		stop: make(chan struct{}),
	}
	g.hedgeDelayNs.Store(int64(cfg.HedgeMax))
	if reg := cfg.Metrics; reg != nil {
		g.forwards = reg.Counter("gw.forwards")
		g.retries = reg.Counter("gw.retries")
		g.hedges = reg.Counter("gw.hedges")
		g.hedgeWins = reg.Counter("gw.hedge_wins")
		g.errs = reg.Counter("gw.errors")
		g.evictions = reg.Counter("gw.evictions")
		g.rejoins = reg.Counter("gw.rejoins")
		g.latency = reg.Histogram("gw.forward_latency_ns")
	}
	for _, spec := range cfg.Backends {
		if spec.Addr == "" {
			return nil, errors.New("gateway: backend with empty Addr")
		}
		if _, dup := g.byID[spec.Addr]; dup {
			return nil, fmt.Errorf("gateway: duplicate backend %s", spec.Addr)
		}
		b := &Backend{
			spec: spec,
			pool: NewPool(spec.Addr, cfg.PoolSize, cfg.DialTimeout, cfg.ReadTimeout),
		}
		if reg := cfg.Metrics; reg != nil {
			b.forwardsC = reg.Counter("gw.backend." + spec.Addr + ".forwards")
			b.failuresC = reg.Counter("gw.backend." + spec.Addr + ".failures")
			b.inflightG = reg.Gauge("gw.backend." + spec.Addr + ".inflight")
		}
		b.up.Store(true)
		g.backends = append(g.backends, b)
		g.byID[spec.Addr] = b
		g.ring.Add(spec.Addr)
	}
	g.wg.Add(1)
	go g.healthLoop()
	return g, nil
}

// Backends returns the backend set (fixed at construction; health
// state changes, membership of the slice does not).
func (g *Gateway) Backends() []*Backend { return g.backends }

// Healthy returns the number of backends currently in the ring.
func (g *Gateway) Healthy() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ring.Len()
}

// Epoch returns the highest overlay epoch reported by an up backend —
// the serving tier's current epoch from the client's point of view.
func (g *Gateway) Epoch() uint64 {
	var max uint64
	for _, b := range g.backends {
		if b.Up() && b.Epoch() > max {
			max = b.Epoch()
		}
	}
	return max
}

// Inflight totals the in-flight forwarded requests across backends.
func (g *Gateway) Inflight() int64 {
	var n int64
	for _, b := range g.backends {
		n += b.pool.Inflight()
	}
	return n
}

// targets resolves the attempt order for a key: under RouteHash the
// ring successors (primary owns the key; later entries are the hedge/
// failover chain in inheritance order), under RouteRandom a uniform
// pick with the remaining healthy backends as fallbacks.
func (g *Gateway) targets(key uint64) []*Backend {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := g.ring.Len()
	if n == 0 {
		return nil
	}
	var ids []string
	if g.cfg.Route == RouteRandom {
		members := g.ring.Members()
		first := int(mix64(g.randCtr.Add(1)) % uint64(len(members)))
		ids = append(ids, members[first])
		ids = append(ids, members[first+1:]...)
		ids = append(ids, members[:first]...)
	} else {
		ids = g.ring.Successors(key, n)
	}
	out := make([]*Backend, len(ids))
	for i, id := range ids {
		out[i] = g.byID[id]
	}
	return out
}

type fwdRes struct {
	line   string
	err    error
	b      *Backend
	hedged bool
}

// Forward routes one request line (complete, '\n'-terminated) by key
// and returns the winning reply line. Failures fail over to the next
// target; a slow primary is hedged after the p99-derived delay and the
// first reply wins — bit-identical answers (purity contract) make the
// race safe. Returns ErrNoBackends when no healthy backend remains,
// else the last attempt's error once every target has failed.
func (g *Gateway) Forward(key uint64, line string) (string, error) {
	targets := g.targets(key)
	if len(targets) == 0 {
		g.errs.Inc()
		return "", ErrNoBackends
	}
	g.forwards.Inc()
	start := time.Now()
	resCh := make(chan fwdRes, len(targets))
	issued, outstanding := 0, 0
	issue := func(hedged bool) {
		b := targets[issued]
		issued++
		outstanding++
		b.forwardsC.Inc()
		if b.inflightG != nil {
			b.inflightG.Set(b.pool.Inflight() + 1)
		}
		go func() {
			reply, err := b.pool.Do(line)
			if b.inflightG != nil {
				b.inflightG.Set(b.pool.Inflight())
			}
			resCh <- fwdRes{line: reply, err: err, b: b, hedged: hedged}
		}()
	}
	issue(false)
	var hedgeC <-chan time.Time
	if !g.cfg.NoHedge && issued < len(targets) {
		t := time.NewTimer(g.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	for {
		select {
		case r := <-resCh:
			outstanding--
			if r.err == nil {
				g.observeLatency(time.Since(start))
				if r.hedged {
					g.hedgeWins.Inc()
				}
				return r.line, nil
			}
			lastErr = r.err
			g.onForwardFailure(r.b)
			if issued < len(targets) {
				g.retries.Inc()
				issue(false)
			} else if outstanding == 0 {
				g.errs.Inc()
				return "", lastErr
			}
		case <-hedgeC:
			hedgeC = nil
			if issued < len(targets) {
				g.hedges.Inc()
				issue(true)
			}
		}
	}
}

// hedgeDelay returns the current hedge trigger: the p99 of observed
// forward latency clamped to [HedgeMin, HedgeMax].
func (g *Gateway) hedgeDelay() time.Duration {
	return time.Duration(g.hedgeDelayNs.Load())
}

// observeLatency records a successful forward and periodically
// re-derives the hedge delay from the latency histogram's p99.
func (g *Gateway) observeLatency(d time.Duration) {
	if g.latency == nil {
		return
	}
	g.latency.ObserveDuration(d)
	if g.fwdCount.Add(1)%128 != 0 {
		return
	}
	p99 := time.Duration(g.latency.Quantile(0.99))
	if p99 < g.cfg.HedgeMin {
		p99 = g.cfg.HedgeMin
	}
	if p99 > g.cfg.HedgeMax {
		p99 = g.cfg.HedgeMax
	}
	g.hedgeDelayNs.Store(int64(p99))
}

// onForwardFailure counts a forward error against the backend and
// evicts it at the failure threshold — faster than waiting out a
// health interval when a backend dies with requests in flight.
func (g *Gateway) onForwardFailure(b *Backend) {
	b.failuresC.Inc()
	if b.failStreak.Add(1) >= int64(g.cfg.FailThreshold) {
		g.setDown(b, fmt.Errorf("forward failures reached threshold"))
	}
}

func (g *Gateway) setDown(b *Backend, cause error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !b.up.Load() {
		return
	}
	b.up.Store(false)
	b.evictionsN.Add(1)
	g.evictions.Inc()
	g.ring.Remove(b.spec.Addr)
	b.lastProbeMu.Lock()
	b.lastProbe = cause
	b.lastProbeMu.Unlock()
}

func (g *Gateway) setUp(b *Backend) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if b.up.Load() {
		return
	}
	b.up.Store(true)
	b.rejoinsN.Add(1)
	g.rejoins.Inc()
	g.ring.Add(b.spec.Addr)
}

// healthLoop probes every backend each interval, then applies the
// verdicts: probe failures accumulate toward eviction, success heals
// the streak (and rejoins an evicted backend), a saturated queue
// (MaxQueueDepth) or a stale epoch (StaleEpochEvicts) counts as
// unhealthy even though the process is up.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	tick := time.NewTicker(g.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-tick.C:
			g.probeAll()
		}
	}
}

func (g *Gateway) probeAll() {
	type verdict struct {
		b     *Backend
		ok    bool
		err   error
		epoch uint64
		depth int64
	}
	verdicts := make([]verdict, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			epoch, depth, err := g.probe(b)
			verdicts[i] = verdict{b: b, ok: err == nil, err: err, epoch: epoch, depth: depth}
		}(i, b)
	}
	wg.Wait()
	// Newest epoch among reachable backends defines "current".
	var maxEpoch uint64
	for _, v := range verdicts {
		if v.ok && v.epoch > maxEpoch {
			maxEpoch = v.epoch
		}
	}
	for _, v := range verdicts {
		b := v.b
		if !v.ok {
			b.lastProbeMu.Lock()
			b.lastProbe = v.err
			b.lastProbeMu.Unlock()
			if b.failStreak.Add(1) >= int64(g.cfg.FailThreshold) {
				g.setDown(b, v.err)
			}
			continue
		}
		b.epoch.Store(v.epoch)
		b.queueDepth.Store(v.depth)
		switch {
		case g.cfg.MaxQueueDepth > 0 && v.depth > int64(g.cfg.MaxQueueDepth):
			g.setDown(b, fmt.Errorf("saturated: queue depth %d > %d", v.depth, g.cfg.MaxQueueDepth))
		case g.cfg.StaleEpochEvicts && v.epoch < maxEpoch:
			g.setDown(b, fmt.Errorf("stale epoch %d < %d", v.epoch, maxEpoch))
		default:
			b.failStreak.Store(0)
			b.lastProbeMu.Lock()
			b.lastProbe = nil
			b.lastProbeMu.Unlock()
			g.setUp(b)
		}
	}
}

// probe asks one backend for (epoch, queue depth): GET /healthz when
// the spec names an HTTP address, else the TCP Z status line over the
// forwarding pool.
func (g *Gateway) probe(b *Backend) (epoch uint64, depth int64, err error) {
	if b.spec.HTTP != "" {
		client := http.Client{Timeout: g.cfg.HealthInterval + 2*time.Second}
		resp, err := client.Get("http://" + b.spec.HTTP + "/healthz")
		if err != nil {
			return 0, 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, 0, fmt.Errorf("healthz status %d", resp.StatusCode)
		}
		var doc struct {
			OK         bool   `json:"ok"`
			Epoch      uint64 `json:"epoch"`
			QueueDepth int64  `json:"queue_depth"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			return 0, 0, err
		}
		if !doc.OK {
			return 0, 0, errors.New("healthz ok=false")
		}
		return doc.Epoch, doc.QueueDepth, nil
	}
	reply, err := b.pool.Do("Z\n")
	if err != nil {
		return 0, 0, err
	}
	fields := strings.Fields(strings.TrimSpace(reply))
	if len(fields) != 3 || fields[0] != "Z" {
		return 0, 0, fmt.Errorf("bad Z reply %q", reply)
	}
	if epoch, err = strconv.ParseUint(fields[1], 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad Z epoch: %v", err)
	}
	if depth, err = strconv.ParseInt(fields[2], 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad Z depth: %v", err)
	}
	return epoch, depth, nil
}

// Close stops the health checker and tears down every pool.
func (g *Gateway) Close() {
	if !g.closed.CompareAndSwap(false, true) {
		return
	}
	close(g.stop)
	g.wg.Wait()
	for _, b := range g.backends {
		b.pool.Close()
	}
}
