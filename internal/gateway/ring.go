// Package gateway is the replicated serving tier's front door: a TCP
// line-protocol proxy that routes lookup requests over N makalu-node
// serve backends by consistent hash of the request key — the same
// chained-splitmix64 key the serve engine shards and caches on — so
// each backend's SLRU cache only ever sees ~1/N of the keyspace. At a
// fixed total cache budget, key-affinity routing multiplies effective
// cache capacity, which is the throughput win BENCH_gateway.json pins
// against random routing.
//
// Fault tolerance leans on the serve determinism contract: a response
// is a pure function of (seed, epoch, key), so any backend answering a
// key produces bit-identical results. That makes failover a retry,
// hedging a race whose first answer is always right, and the whole
// tier testable against equality — the overlay-level analogue of the
// paper's fault-tolerant routing, where queries keep resolving while
// individual routes die.
package gateway

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes. Each member owns
// Vnodes points on the uint64 circle; a key belongs to the member
// owning the first point at or clockwise of the key's hash. Removing a
// member only reassigns the arcs its own points covered (~1/N of the
// keyspace, pinned by TestRingRemovalRemapBound); every other key
// keeps its owner, which is what keeps the surviving backends' caches
// warm through membership churn.
//
// Ring is not safe for concurrent use; the Gateway guards it with its
// membership lock. Membership changes are health transitions — rare —
// so Add/Remove simply rebuild the sorted point array.
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint
}

type ringPoint struct {
	hash uint64
	id   string
}

// DefaultVNodes balances arc-length variance (remap bound tightness)
// against point-array size; 128 points per member keeps the expected
// remapped fraction within a few percent of the ideal 1/N.
const DefaultVNodes = 128

// NewRing builds an empty ring; vnodes <= 0 gets DefaultVNodes.
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes}
}

// Add inserts a member (no-op if present).
func (r *Ring) Add(id string) {
	for _, m := range r.members {
		if m == id {
			return
		}
	}
	r.members = append(r.members, id)
	sort.Strings(r.members)
	r.rebuild()
}

// Remove drops a member (no-op if absent).
func (r *Ring) Remove(id string) {
	for i, m := range r.members {
		if m == id {
			r.members = append(r.members[:i], r.members[i+1:]...)
			r.rebuild()
			return
		}
	}
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the members in sorted order (a copy).
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for _, id := range r.members {
		base := fnv64a(id)
		for v := 0; v < r.vnodes; v++ {
			// Chain the member hash through the splitmix64 finalizer per
			// vnode index: points are stable across processes and spread
			// independently of the id's own bit structure.
			r.points = append(r.points, ringPoint{
				hash: mix64(base ^ mix64(uint64(v)+0x632be59bd9b4e019)),
				id:   id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
}

// Lookup returns the member owning key, or "" on an empty ring. The
// key is expected to be well mixed already (serve.Request.Key is); it
// is finalized once more so arbitrary callers are safe too.
func (r *Ring) Lookup(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(mix64(key))].id
}

// Successors returns up to k distinct members in ring order starting
// at key's owner — the primary first, then the hedge/failover targets
// in the order a membership change would inherit the key.
func (r *Ring) Successors(key uint64, k int) []string {
	if len(r.points) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.members) {
		k = len(r.members)
	}
	out := make([]string, 0, k)
	start := r.search(mix64(key))
	for i := 0; len(out) < k && i < len(r.points); i++ {
		id := r.points[(start+i)%len(r.points)].id
		dup := false
		for _, have := range out {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	return out
}

// search returns the index of the first point with hash >= h, wrapping
// to 0 past the last point.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// String renders the membership for health/debug output.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d vnodes)", len(r.members), r.vnodes)
}

// mix64 is the splitmix64 finalizer — the repo's standard bit mixer,
// matching serve.Request.Key's chaining so gateway and backends agree
// on key identity.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv64a hashes a member id (FNV-1a, the testnet schedule hasher's
// choice) to seed its vnode point stream.
func fnv64a(s string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
