package gateway

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// pool errors. errBusy means every pipeline slot on the picked
// connection is occupied — the caller treats it like any other forward
// failure and tries the next ring target.
var (
	errBusy   = errors.New("gateway: connection pipeline full")
	errClosed = errors.New("gateway: pool closed")
)

// Pool is a fixed-size set of pipelined line-protocol connections to
// one backend. The protocol answers in request order per connection,
// so a connection carries many in-flight requests at once: a sender
// appends its call to the connection's FIFO and writes its line under
// the same lock (order therefore matches), and the connection's reader
// goroutine delivers reply lines to the FIFO head. One pool services
// every gateway client goroutine hitting that backend — the syscall
// and connection cost is O(pool size), not O(concurrent clients).
//
// Connections dial lazily and are replaced lazily after failure, so an
// unreachable backend costs each attempt one dial error and nothing
// else (the health checker stops routing there after FailThreshold).
type Pool struct {
	addr        string
	size        int
	dialTimeout time.Duration
	readTimeout time.Duration

	mu     sync.Mutex
	conns  []*pconn
	closed bool

	inflight atomic.Int64 // across all conns; exported via gateway metrics
}

// pipelineDepth bounds the in-flight calls one connection carries.
// Full slots shed to errBusy rather than blocking, so a stalled
// backend can never wedge a sender holding the write lock.
const pipelineDepth = 512

type call struct {
	line string // complete request line, '\n' included
	ch   chan callResult
}

type callResult struct {
	line string
	err  error
}

// pconn is one pipelined connection: writers append to inflight and
// write under wmu; readLoop pops in FIFO order and delivers replies.
type pconn struct {
	nc       net.Conn
	w        *bufio.Writer
	wmu      sync.Mutex
	inflight chan *call
	n        atomic.Int64 // calls awaiting replies on this connection
	dead     atomic.Bool
	quit     chan struct{}
}

// NewPool sizes a pool for one backend address. size <= 0 gets 4
// connections; timeouts <= 0 get 2s dial / 30s read defaults.
func NewPool(addr string, size int, dialTimeout, readTimeout time.Duration) *Pool {
	if size <= 0 {
		size = 4
	}
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	if readTimeout <= 0 {
		readTimeout = 30 * time.Second
	}
	return &Pool{
		addr: addr, size: size,
		dialTimeout: dialTimeout, readTimeout: readTimeout,
		conns: make([]*pconn, size),
	}
}

// Addr returns the backend address the pool dials.
func (p *Pool) Addr() string { return p.addr }

// Inflight returns the calls currently awaiting replies.
func (p *Pool) Inflight() int64 { return p.inflight.Load() }

// Do sends one request line and blocks for its reply line. The line
// must be a complete protocol line ending in '\n' that elicits exactly
// one reply line (Q and Z both do). Connection failures fail every
// call in flight on that connection; the caller retries elsewhere.
func (p *Pool) Do(line string) (string, error) {
	c, err := p.pick()
	if err != nil {
		return "", err
	}
	cl := &call{line: line, ch: make(chan callResult, 1)}
	c.wmu.Lock()
	if c.dead.Load() {
		c.wmu.Unlock()
		return "", errors.New("gateway: connection lost")
	}
	select {
	case c.inflight <- cl:
	default:
		c.wmu.Unlock()
		return "", errBusy
	}
	c.n.Add(1)
	p.inflight.Add(1)
	_, werr := c.w.WriteString(line)
	if werr == nil {
		werr = c.w.Flush()
	}
	c.wmu.Unlock()
	if werr != nil {
		// The reply can never arrive; kill the connection, which drains
		// the FIFO (including this call) with the error.
		c.kill(werr)
	}
	res := <-cl.ch
	c.n.Add(-1)
	p.inflight.Add(-1)
	return res.line, res.err
}

// pick returns the live connection with the fewest calls in flight,
// dialing an empty slot when every live connection is already busy.
// Least-loaded matters, not just balance: the backend frontend serves
// each connection's lines in sequence, so two concurrent calls sharing
// a connection serialize behind each other's full service time even
// while other connections sit idle. With in-flight calls <= pool size,
// least-loaded gives every call a private connection and the backend
// sees the same concurrency a direct client would offer.
func (p *Pool) pick() (*pconn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errClosed
	}
	var best *pconn
	empty := -1
	for i, c := range p.conns {
		if c == nil || c.dead.Load() {
			if empty < 0 {
				empty = i
			}
			continue
		}
		if best == nil || c.n.Load() < best.n.Load() {
			best = c
		}
	}
	if best != nil && (best.n.Load() == 0 || empty < 0) {
		return best, nil
	}
	if empty < 0 {
		return best, nil
	}
	nc, err := net.DialTimeout("tcp", p.addr, p.dialTimeout)
	if err != nil {
		return nil, err
	}
	c := &pconn{
		nc:       nc,
		w:        bufio.NewWriterSize(nc, 16<<10),
		inflight: make(chan *call, pipelineDepth),
		quit:     make(chan struct{}),
	}
	p.conns[empty] = c
	go c.readLoop(p.readTimeout)
	return c, nil
}

func (c *pconn) readLoop(readTimeout time.Duration) {
	r := bufio.NewReaderSize(c.nc, 32<<10)
	for {
		select {
		case <-c.quit:
			return
		case cl := <-c.inflight:
			c.nc.SetReadDeadline(time.Now().Add(readTimeout))
			line, err := r.ReadString('\n')
			if err != nil {
				cl.ch <- callResult{err: err}
				c.kill(err)
				return
			}
			cl.ch <- callResult{line: line}
		}
	}
}

// kill marks the connection dead, closes the socket, and fails every
// queued call. Setting dead before taking wmu guarantees no sender can
// append after the drain: senders check dead under wmu, and the drain
// runs under wmu too.
func (c *pconn) kill(err error) {
	if !c.dead.CompareAndSwap(false, true) {
		return
	}
	c.nc.Close()
	close(c.quit)
	c.wmu.Lock()
	for {
		select {
		case cl := <-c.inflight:
			cl.ch <- callResult{err: err}
		default:
			c.wmu.Unlock()
			return
		}
	}
}

// Close kills every connection; subsequent Do calls fail.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	conns := append([]*pconn(nil), p.conns...)
	p.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			c.kill(errClosed)
		}
	}
}
