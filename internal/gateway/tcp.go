package gateway

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"makalu/internal/serve"
)

// TCPServer is the gateway's client-facing line-protocol listener. It
// speaks the exact grammar of the backend TCP frontend (Q lookups, Z
// status, H/S/R/E replies), so the load generator drives a direct
// backend and the gateway with the same code path — the property the
// overhead row in BENCH_gateway.json depends on.
//
// Each request line is parsed (malformed lines are answered locally
// with E and never forwarded), re-serialized canonically, routed by
// serve.Request.Key, and its backend reply relayed verbatim — the
// gateway never rewrites an H line, so cache-hit bits and result
// fields are exactly what the backend produced. Lines on one client
// connection are served sequentially, preserving reply order for
// pipelined clients; concurrency comes from serving many connections.
type TCPServer struct {
	gw  *Gateway
	ln  net.Listener
	cfg TCPConfig

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// TCPConfig bounds a client connection's resource use; the zero value
// gets the backend frontend's defaults (1 KiB lines, 2m idle).
type TCPConfig struct {
	MaxLine     int
	IdleTimeout time.Duration
}

func (cfg TCPConfig) withDefaults() TCPConfig {
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = 1024
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	return cfg
}

// NewTCPServer starts the gateway frontend on addr.
func NewTCPServer(addr string, gw *Gateway, cfg TCPConfig) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPServer{gw: gw, ln: ln, cfg: cfg.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	r := bufio.NewReaderSize(conn, s.cfg.MaxLine)
	w := bufio.NewWriterSize(conn, 16<<10)
	for {
		conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		line, err := r.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			fmt.Fprintf(w, "E line too long (max %d bytes)\n", s.cfg.MaxLine)
			w.Flush()
			return
		}
		if err != nil {
			return
		}
		s.serveLine(w, strings.TrimRight(string(line), "\r\n"))
		if r.Buffered() == 0 {
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

func (s *TCPServer) serveLine(w *bufio.Writer, line string) {
	if strings.TrimSpace(line) == "Z" {
		// The gateway's own status: the tier's epoch and its total
		// in-flight forwards stand in for the single-engine fields.
		fmt.Fprintf(w, "Z %d %d\n", s.gw.Epoch(), s.gw.Inflight())
		return
	}
	req, ok, perr := serve.ParseQueryLine(line)
	if perr != nil {
		fmt.Fprintf(w, "E %s\n", perr)
		return
	}
	if !ok {
		return // blank line
	}
	// Canonical re-serialization: the backend parses exactly what the
	// gateway keyed on, so gateway and backend agree on Request.Key.
	fwd := fmt.Sprintf("Q %s %d %d\n", req.Mech, req.Object, req.TTL)
	reply, err := s.gw.Forward(req.Key(), fwd)
	if err != nil {
		fmt.Fprintf(w, "E gateway: %s\n", err)
		return
	}
	w.WriteString(reply)
}

// Close stops accepting, closes live client connections, and waits.
func (s *TCPServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ln.Close()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}
