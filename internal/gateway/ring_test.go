package gateway

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingGoldenMapping pins the exact key->backend assignment for a
// fixed membership. The mapping is part of the serving tier's
// stability contract: a gateway restart (or a second gateway in front
// of the same backends) must route every key identically, or each
// backend's cache working set is silently invalidated. Any change to
// the point-hash derivation breaks this test on purpose.
func TestRingGoldenMapping(t *testing.T) {
	r := NewRing(128)
	for _, id := range []string{"10.0.0.1:9001", "10.0.0.2:9001", "10.0.0.3:9001"} {
		r.Add(id)
	}
	golden := map[uint64]string{
		0:                  "10.0.0.1:9001",
		1:                  "10.0.0.3:9001",
		2:                  "10.0.0.1:9001",
		3:                  "10.0.0.3:9001",
		4:                  "10.0.0.3:9001",
		1 << 32:            "10.0.0.1:9001",
		0xdeadbeef:         "10.0.0.1:9001",
		0x9e3779b97f4a7c15: "10.0.0.2:9001",
		^uint64(0):         "10.0.0.3:9001",
	}
	for key, want := range golden {
		if got := r.Lookup(key); got != want {
			t.Errorf("Lookup(%#x) = %q, want %q", key, got, want)
		}
	}
}

// TestRingAddRemoveRoundTrip pins that membership changes are
// history-free: removing a member and adding it back restores the
// exact original mapping (the ring has no incremental state to drift).
func TestRingAddRemoveRoundTrip(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	r := NewRing(64)
	for _, m := range members {
		r.Add(m)
	}
	keys := make([]uint64, 2000)
	rng := rand.New(rand.NewSource(7))
	before := make([]string, len(keys))
	for i := range keys {
		keys[i] = rng.Uint64()
		before[i] = r.Lookup(keys[i])
	}
	r.Remove("b:1")
	r.Add("b:1")
	for i, key := range keys {
		if got := r.Lookup(key); got != before[i] {
			t.Fatalf("key %#x: owner %q after remove+add, want %q", key, got, before[i])
		}
	}
}

// TestRingRemovalRemapBound is the stability property test: removing
// one of N members must remap only the removed member's own share of
// the keyspace — every key it did not own keeps its owner exactly, and
// the remapped fraction stays within epsilon of the ideal 1/N. This is
// the property that makes backend eviction cheap: N-1 caches stay
// warm, only the dead backend's share redistributes.
func TestRingRemovalRemapBound(t *testing.T) {
	const (
		keyCount = 20000
		vnodes   = 128
		epsilon  = 0.10
	)
	for _, n := range []int{3, 5, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			members := make([]string, n)
			for i := range members {
				members[i] = fmt.Sprintf("10.1.%d.%d:9001", seed, i)
			}
			r := NewRing(vnodes)
			for _, m := range members {
				r.Add(m)
			}
			rng := rand.New(rand.NewSource(seed))
			keys := make([]uint64, keyCount)
			before := make([]string, keyCount)
			for i := range keys {
				keys[i] = rng.Uint64()
				before[i] = r.Lookup(keys[i])
			}
			victim := members[int(rng.Int31n(int32(n)))]
			r.Remove(victim)
			remapped := 0
			for i, key := range keys {
				after := r.Lookup(key)
				if before[i] == victim {
					remapped++
					if after == victim {
						t.Fatalf("n=%d seed=%d: key %#x still owned by removed member", n, seed, key)
					}
					continue
				}
				if after != before[i] {
					t.Fatalf("n=%d seed=%d: key %#x moved %q -> %q though %q was removed — "+
						"consistent hashing must only remap the victim's keys",
						n, seed, key, before[i], after, victim)
				}
			}
			frac := float64(remapped) / float64(keyCount)
			if limit := 1.0/float64(n) + epsilon; frac > limit {
				t.Errorf("n=%d seed=%d: removal remapped %.3f of keys, want <= %.3f", n, seed, frac, limit)
			}
		}
	}
}

// TestRingSuccessors pins the hedge/failover chain: distinct members,
// primary first, and the second entry is who inherits the key when the
// primary is removed.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(64)
	for _, id := range []string{"a:1", "b:1", "c:1"} {
		r.Add(id)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		key := rng.Uint64()
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("key %#x: %d successors, want 3", key, len(succ))
		}
		seen := map[string]bool{}
		for _, id := range succ {
			if seen[id] {
				t.Fatalf("key %#x: duplicate successor %q", key, id)
			}
			seen[id] = true
		}
		if succ[0] != r.Lookup(key) {
			t.Fatalf("key %#x: successors[0] %q != owner %q", key, succ[0], r.Lookup(key))
		}
		r.Remove(succ[0])
		if got := r.Lookup(key); got != succ[1] {
			t.Fatalf("key %#x: after removing owner, key went to %q, want successors[1] %q", key, got, succ[1])
		}
		r.Add(succ[0])
	}
	if got := r.Successors(12345, 10); len(got) != 3 {
		t.Fatalf("k beyond membership: %d successors, want 3", len(got))
	}
	empty := NewRing(8)
	if got := empty.Lookup(1); got != "" {
		t.Fatalf("empty ring Lookup = %q, want empty", got)
	}
	if got := empty.Successors(1, 2); got != nil {
		t.Fatalf("empty ring Successors = %v, want nil", got)
	}
}
