package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"makalu/internal/obs"
)

// HTTPConfig wires the gateway's HTTP endpoints.
type HTTPConfig struct {
	Gateway *Gateway
	Metrics *obs.Registry // backs /debug/metrics; nil disables the body
	// Debug exposes /debug/metrics and /debug/pprof.
	Debug bool
}

// backendHealth is one backend's row in the gateway /healthz document.
type backendHealth struct {
	Addr       string `json:"addr"`
	Up         bool   `json:"up"`
	Epoch      uint64 `json:"epoch"`
	QueueDepth int64  `json:"queue_depth"`
	Error      string `json:"error,omitempty"`
}

// NewHTTPHandler builds the gateway mux:
//
//	GET /healthz   ring membership + per-backend epoch/queue state
//	GET /objects   the object catalog, proxied from a healthy backend
//	GET /debug/... metrics and pprof (Debug only)
//
// /objects keeps the load generator's contract — it fetches the
// catalog from whatever address it benchmarks — without the gateway
// owning any content state.
func NewHTTPHandler(cfg HTTPConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		g := cfg.Gateway
		rows := make([]backendHealth, 0, len(g.Backends()))
		for _, b := range g.Backends() {
			row := backendHealth{
				Addr: b.Addr(), Up: b.Up(),
				Epoch: b.Epoch(), QueueDepth: b.QueueDepth(),
			}
			b.lastProbeMu.Lock()
			if b.lastProbe != nil {
				row.Error = b.lastProbe.Error()
			}
			b.lastProbeMu.Unlock()
			rows = append(rows, row)
		}
		writeJSON(w, http.StatusOK, struct {
			OK       bool            `json:"ok"`
			Route    string          `json:"route"`
			Epoch    uint64          `json:"epoch"`
			Healthy  int             `json:"healthy"`
			Backends []backendHealth `json:"backends"`
		}{g.Healthy() > 0, g.cfg.Route, g.Epoch(), g.Healthy(), rows})
	})
	mux.HandleFunc("/objects", func(w http.ResponseWriter, r *http.Request) {
		g := cfg.Gateway
		for _, b := range g.Backends() {
			if !b.Up() || b.spec.HTTP == "" {
				continue
			}
			resp, err := http.Get("http://" + b.spec.HTTP + "/objects")
			if err != nil {
				continue
			}
			defer resp.Body.Close()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
			return
		}
		http.Error(w, `{"error":"no healthy backend with an HTTP address"}`, http.StatusServiceUnavailable)
	})
	if cfg.Debug {
		mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if cfg.Metrics == nil {
				fmt.Fprintln(w, "{}")
				return
			}
			if err := cfg.Metrics.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// NewHTTPServer wraps handler with the same slow-client protections
// the backend frontend uses.
func NewHTTPServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
