package gateway

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"makalu/internal/content"
	"makalu/internal/graph"
	"makalu/internal/serve"
)

// testBackends builds k in-process serve backends over the SAME graph,
// store, and seed — replicas in the exact sense the serving tier
// assumes: any of them answers any key with bit-identical results
// (serve's purity contract). Returns the line-protocol addrs.
func testBackends(t *testing.T, k int) (addrs []string, engines []*serve.Engine, servers []*serve.TCPServer) {
	t.Helper()
	const n = 400
	m := graph.NewMutable(n)
	for i := 0; i < n; i++ {
		m.AddEdge(i, (i+1)%n)
		m.AddEdge(i, (i+7)%n)
		m.AddEdge(i, (i+31)%n)
	}
	g := m.Freeze(nil)
	store, err := content.Place(n, content.PlacementConfig{
		Objects: 60, Replication: 0.02, MinReplicas: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		eng, err := serve.New(serve.Config{
			Graph: g, Store: store, Shards: 2, Seed: 42, CacheCapacity: 512,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.NewTCPServer("127.0.0.1:0", eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, eng)
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	t.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
		for _, e := range engines {
			e.Close()
		}
	})
	return addrs, engines, servers
}

// lineClient is a minimal synchronous client for the line protocol.
type lineClient struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialLine(t *testing.T, addr string) *lineClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &lineClient{conn: conn, r: bufio.NewReader(conn)}
}

func (c *lineClient) do(t *testing.T, line string) string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", line); err != nil {
		t.Fatalf("write %q: %v", line, err)
	}
	reply, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read reply to %q: %v", line, err)
	}
	return strings.TrimRight(reply, "\n")
}

// stripCacheBit drops the trailing cache-hit field of an H reply —
// the only field that legitimately differs between backends serving
// the same pure result.
func stripCacheBit(t *testing.T, reply string) string {
	t.Helper()
	fields := strings.Fields(reply)
	if len(fields) != 6 || fields[0] != "H" {
		t.Fatalf("not an H reply: %q", reply)
	}
	return strings.Join(fields[:5], " ")
}

// TestGatewayBitIdenticalAndAffinity is the tier's core contract in
// one pass: every reply through the gateway matches a direct backend's
// answer bit-for-bit (sans cache metadata), and key-affinity routing
// means a repeated request lands on the same backend's now-warm cache.
func TestGatewayBitIdenticalAndAffinity(t *testing.T) {
	addrs, engines, _ := testBackends(t, 3)
	specs := make([]BackendSpec, len(addrs))
	for i, a := range addrs {
		specs[i] = BackendSpec{Addr: a}
	}
	gw, err := New(Config{Backends: specs, Route: RouteHash, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	front, err := NewTCPServer("127.0.0.1:0", gw, TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	cli := dialLine(t, front.Addr())
	objs := engines[0].Objects()
	hits := 0
	for _, obj := range objs {
		line := fmt.Sprintf("Q flood %d 4", obj)
		first := cli.do(t, line)
		direct, err := engines[0].Lookup(serve.Request{Mech: serve.MechFlood, Object: obj, TTL: 4})
		if err != nil {
			t.Fatal(err)
		}
		found := 0
		if direct.Result.Success {
			found = 1
		}
		want := fmt.Sprintf("H %d %d %d %d", found, direct.Result.FirstMatchHop,
			direct.Result.Messages, direct.Result.Visited)
		if got := stripCacheBit(t, first); got != want {
			t.Fatalf("obj %d: gateway reply %q != direct %q — purity contract broken", obj, got, want)
		}
		second := cli.do(t, line)
		if stripCacheBit(t, second) != want {
			t.Fatalf("obj %d: second gateway reply %q != %q", obj, second, want)
		}
		if strings.HasSuffix(second, " 1") {
			hits++
		}
	}
	// Affinity: the second request for a key routes to the same backend,
	// whose cache now holds it. Demand near-total hit coverage.
	if hits < len(objs)*9/10 {
		t.Fatalf("only %d/%d repeated requests hit a warm cache — affinity routing is not sticking", hits, len(objs))
	}
	// A Z probe through the gateway reports tier status.
	if z := cli.do(t, "Z"); !strings.HasPrefix(z, "Z ") {
		t.Fatalf("gateway Z reply %q", z)
	}
	// Malformed lines are refused locally.
	if e := cli.do(t, "Q bogus 1 2"); !strings.HasPrefix(e, "E ") {
		t.Fatalf("bad mech reply %q, want E", e)
	}
}

// TestGatewayFailover kills one of three backends mid-stream and
// demands zero client-visible errors: in-flight forwards retry on the
// next ring replica (pool failure -> fail over), the health path
// evicts the dead backend, and answers stay bit-identical throughout.
func TestGatewayFailover(t *testing.T) {
	addrs, engines, servers := testBackends(t, 3)
	specs := make([]BackendSpec, len(addrs))
	for i, a := range addrs {
		specs[i] = BackendSpec{Addr: a}
	}
	gw, err := New(Config{
		Backends: specs, Route: RouteHash,
		HealthInterval: 25 * time.Millisecond, FailThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	front, err := NewTCPServer("127.0.0.1:0", gw, TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()

	// Expected answers, computed directly against a replica.
	objs := engines[0].Objects()
	want := make(map[uint64]string, len(objs))
	for _, obj := range objs {
		direct, err := engines[0].Lookup(serve.Request{Mech: serve.MechFlood, Object: obj, TTL: 4})
		if err != nil {
			t.Fatal(err)
		}
		found := 0
		if direct.Result.Success {
			found = 1
		}
		want[obj] = fmt.Sprintf("H %d %d %d %d", found, direct.Result.FirstMatchHop,
			direct.Result.Messages, direct.Result.Visited)
	}

	cli := dialLine(t, front.Addr())
	const rounds = 12
	for r := 0; r < rounds; r++ {
		if r == 3 {
			// SIGKILL-equivalent for an in-process backend: connections
			// die without protocol goodbyes, then the engine goes away.
			servers[1].Close()
			engines[1].Close()
		}
		for _, obj := range objs {
			reply := cli.do(t, fmt.Sprintf("Q flood %d 4", obj))
			if strings.HasPrefix(reply, "E ") {
				t.Fatalf("round %d obj %d: client saw error %q — failover must hide a dead backend", r, obj, reply)
			}
			if got := stripCacheBit(t, reply); got != want[obj] {
				t.Fatalf("round %d obj %d: %q != %q after failover", r, obj, got, want[obj])
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for gw.Healthy() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("healthy = %d, want 2 after killing one backend", gw.Healthy())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fakeBackend is a minimal line server answering every Q with a canned
// H after an optional delay, and Z with "Z 0 0" — just enough protocol
// for hedging and pool tests to control timing exactly.
func fakeBackend(t *testing.T, delay time.Duration) (addr string, served *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served = new(atomic.Int64)
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				r := bufio.NewReader(conn)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					fields := strings.Fields(line)
					if len(fields) == 0 {
						continue
					}
					if fields[0] == "Z" {
						fmt.Fprint(conn, "Z 0 0\n")
						continue
					}
					if delay > 0 {
						time.Sleep(delay)
					}
					served.Add(1)
					// Echo the object id back so callers can match
					// replies to requests.
					obj := "?"
					if len(fields) >= 3 {
						obj = fields[2]
					}
					fmt.Fprintf(conn, "H 1 1 %s 1 0\n", obj)
				}
			}(conn)
		}
	}()
	return ln.Addr().String(), served
}

// TestPoolPipelining drives many concurrent calls through a single
// pipelined connection and checks every caller gets its own reply —
// the FIFO write-order/read-order pairing the pool depends on.
func TestPoolPipelining(t *testing.T) {
	addr, served := fakeBackend(t, 0)
	p := NewPool(addr, 1, 0, 0)
	defer p.Close()
	const calls = 200
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := p.Do(fmt.Sprintf("Q flood %d 4\n", i))
			if err != nil {
				errs <- err
				return
			}
			want := fmt.Sprintf("H 1 1 %d 1 0\n", i)
			if reply != want {
				errs <- fmt.Errorf("call %d got %q, want %q — pipelined replies crossed", i, reply, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if served.Load() != calls {
		t.Fatalf("backend served %d calls, want %d", served.Load(), calls)
	}
}

// TestGatewayHedging pins tail tolerance: a key whose primary is slow
// gets re-issued to the next ring replica after the hedge delay, and
// the fast replica's (bit-identical) answer wins well before the
// primary would have replied.
func TestGatewayHedging(t *testing.T) {
	slowAddr, _ := fakeBackend(t, 300*time.Millisecond)
	fastAddr, fastServed := fakeBackend(t, 0)
	gw, err := New(Config{
		Backends:       []BackendSpec{{Addr: slowAddr}, {Addr: fastAddr}},
		Route:          RouteHash,
		HedgeMin:       5 * time.Millisecond,
		HedgeMax:       5 * time.Millisecond,
		HealthInterval: time.Hour,
		FailThreshold:  1000, // keep eviction out of this test
		Metrics:        nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	// Find a key the ring assigns to the SLOW backend.
	key := uint64(0)
	for gw.targets(key)[0].Addr() != slowAddr {
		key++
	}
	start := time.Now()
	reply, err := gw.Forward(key, "Q flood 1 4\n")
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if reply != "H 1 1 1 1 0\n" {
		t.Fatalf("reply %q", reply)
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("hedge did not rescue the request: took %v (primary delay is 300ms)", elapsed)
	}
	if fastServed.Load() == 0 {
		t.Fatal("fast replica never served — the winning answer came from nowhere")
	}
}

// TestGatewayHealthEvictRejoin flips a backend's /healthz between
// healthy and failing and pins the ring membership lifecycle: evicted
// after FailThreshold consecutive bad probes, rejoined after one good
// probe. Also pins stale-epoch eviction: a backend reporting an older
// overlay epoch than its peers is unhealthy even though it is up.
func TestGatewayHealthEvictRejoin(t *testing.T) {
	tcpA, _ := fakeBackend(t, 0)
	tcpB, _ := fakeBackend(t, 0)
	var healthyB, epochB atomic.Int64
	healthyB.Store(1)
	mkHealth := func(healthy *atomic.Int64, epoch *atomic.Int64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if healthy != nil && healthy.Load() == 0 {
				http.Error(w, "down", http.StatusServiceUnavailable)
				return
			}
			var e int64
			if epoch != nil {
				e = epoch.Load()
			}
			fmt.Fprintf(w, `{"ok":true,"epoch":%d,"shards":2,"queue_depth":0}`, e)
		}))
	}
	srvA := mkHealth(nil, nil)
	defer srvA.Close()
	srvB := mkHealth(&healthyB, &epochB)
	defer srvB.Close()
	strip := func(u string) string { return strings.TrimPrefix(u, "http://") }
	gw, err := New(Config{
		Backends: []BackendSpec{
			{Addr: tcpA, HTTP: strip(srvA.URL)},
			{Addr: tcpB, HTTP: strip(srvB.URL)},
		},
		HealthInterval:   10 * time.Millisecond,
		FailThreshold:    2,
		StaleEpochEvicts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	waitHealthy := func(want int, why string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for gw.Healthy() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: healthy = %d, want %d", why, gw.Healthy(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitHealthy(2, "startup")
	healthyB.Store(0)
	waitHealthy(1, "after B starts failing probes")
	healthyB.Store(1)
	waitHealthy(2, "after B recovers")

	// Stale epoch: A moves to epoch 1 (fake always reports 0)... flip
	// roles: B reports epoch 1, A stays at 0 -> A is stale and evicted.
	epochB.Store(1)
	waitHealthy(1, "after B advances the epoch (A stale)")
	backA := gw.Backends()[0]
	if backA.Up() {
		t.Fatal("stale-epoch backend still in the ring")
	}
	epochB.Store(0)
	waitHealthy(2, "after epochs re-agree")
}
