package stream

import (
	"math/rand"

	"makalu/internal/content"
	"makalu/internal/obs"
	"makalu/internal/search"
)

// Obs bundles the scheduler's instrumentation handles. The zero value
// is valid — internal/obs instruments are nil-safe no-ops — so the
// swarm never checks for presence before recording.
type Obs struct {
	TransfersStarted   *obs.Counter
	TransfersCompleted *obs.Counter
	TransfersFailed    *obs.Counter
	ChunksRequested    *obs.Counter
	ChunksDelivered    *obs.Counter
	ChunkTimeouts      *obs.Counter
	ReRequests         *obs.Counter
	Rediscoveries      *obs.Counter
	SourceEvictions    *obs.Counter

	// Durations are recorded in integer microseconds of simulated
	// time, goodput in bytes per simulated second.
	ChunkLatency *obs.Histogram
	TTFB         *obs.Histogram
	TransferTime *obs.Histogram
	GoodputBps   *obs.Histogram
}

// NewObs registers the full instrument set under "stream." names in
// reg. A nil registry yields the zero (no-op) Obs.
func NewObs(reg *obs.Registry) Obs {
	if reg == nil {
		return Obs{}
	}
	return Obs{
		TransfersStarted:   reg.Counter("stream.transfers.started"),
		TransfersCompleted: reg.Counter("stream.transfers.completed"),
		TransfersFailed:    reg.Counter("stream.transfers.failed"),
		ChunksRequested:    reg.Counter("stream.chunks.requested"),
		ChunksDelivered:    reg.Counter("stream.chunks.delivered"),
		ChunkTimeouts:      reg.Counter("stream.chunks.timeouts"),
		ReRequests:         reg.Counter("stream.chunks.rerequests"),
		Rediscoveries:      reg.Counter("stream.rediscoveries"),
		SourceEvictions:    reg.Counter("stream.sources.evicted"),
		ChunkLatency:       reg.Histogram("stream.chunk.latency_us"),
		TTFB:               reg.Histogram("stream.ttfb_us"),
		TransferTime:       reg.Histogram("stream.transfer.time_us"),
		GoodputBps:         reg.Histogram("stream.goodput_bps"),
	}
}

// StoreLocator is the oracle locator: it reads replica holders straight
// out of the content store's placement index. Tests and baselines use
// it to isolate scheduler behavior from routing behavior.
type StoreLocator struct {
	Store *content.Store
}

// Locate returns the first k eligible replicas in placement order.
func (l StoreLocator) Locate(client int, obj uint64, k int, skip map[int]bool) []int {
	var out []int
	for _, h := range l.Store.Replicas(obj) {
		u := int(h)
		if u == client || skip[u] {
			continue
		}
		out = append(out, u)
		if len(out) >= k {
			break
		}
	}
	return out
}

// ABFLocator discovers replicas with attenuated-Bloom identifier
// routing (search.ABFRouter.LookupNode): each probe walks the filter
// gradient and reports the node the route terminated on. The first
// probe starts at the client; further probes start at random vantage
// points so successive lookups can surface different replicas of the
// same object. The underlying index is the one built at overlay
// construction — deliberately stale under churn, so Locate can return
// dead nodes; the swarm's timeout path deals with those.
type ABFLocator struct {
	router *search.ABFRouter
	n      int
	ttl    int
	tries  int // probe budget per requested replica
	rng    *rand.Rand
}

// NewABFLocator builds a locator over net. ttl is the per-probe hop
// budget; triesPerReplica (<=0 means 4) bounds how many probes are
// spent per requested replica before giving up.
func NewABFLocator(net *search.ABFNetwork, n, ttl, triesPerReplica int, seed int64) *ABFLocator {
	if triesPerReplica <= 0 {
		triesPerReplica = 4
	}
	return &ABFLocator{
		router: search.NewABFRouter(net),
		n:      n,
		ttl:    ttl,
		tries:  triesPerReplica,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Locate runs up to k*tries identifier lookups and returns the
// distinct holders they terminate on.
func (l *ABFLocator) Locate(client int, obj uint64, k int, skip map[int]bool) []int {
	var out []int
	seen := map[int]bool{client: true}
	src := client
	for t := 0; t < k*l.tries && len(out) < k; t++ {
		_, node := l.router.LookupNode(src, obj, l.ttl, l.rng)
		if node >= 0 && !seen[node] && !skip[node] {
			seen[node] = true
			out = append(out, node)
		}
		src = l.rng.Intn(l.n)
	}
	return out
}
