package stream

import (
	"makalu/internal/content"
	"makalu/internal/netmodel"
	"makalu/internal/sim"
)

// A Swarm runs chunked transfers on a shared discrete-event engine.
// It owns the per-source upload queues (a replica serializes its
// uploads across every transfer pulling from it), the per-chunk
// timeout machinery, and the stall accounting. All state changes
// happen inside engine events, so a Swarm needs no locking and a run
// is deterministic given the engine's event order.
type Swarm struct {
	eng  *sim.Engine
	net  netmodel.Model
	live Liveness
	loc  Locator
	cfg  Config
	obs  Obs

	// busy[u] is the time node u's upload link is committed through;
	// a new chunk cannot start transmitting before it.
	busy map[int]float64

	active  map[*Transfer]struct{}
	results []TransferResult
	lastNow float64
}

// NewSwarm creates a swarm on eng. The swarm chains itself onto the
// engine's TickHook to integrate stall time, preserving any hook
// already installed. ob may be the zero Obs for no instrumentation.
func NewSwarm(eng *sim.Engine, net netmodel.Model, live Liveness, loc Locator, cfg Config, ob Obs) *Swarm {
	s := &Swarm{
		eng:    eng,
		net:    net,
		live:   live,
		loc:    loc,
		cfg:    cfg.withDefaults(),
		obs:    ob,
		busy:   make(map[int]float64),
		active: make(map[*Transfer]struct{}),
	}
	prev := eng.TickHook
	eng.TickHook = func(now float64, executed uint64) {
		if prev != nil {
			prev(now, executed)
		}
		s.reconcile(now)
	}
	return s
}

// Results returns the outcomes of every finished transfer, in finish
// order.
func (s *Swarm) Results() []TransferResult { return s.results }

// Active returns the transfers still in flight, in start order.
func (s *Swarm) Active() []*Transfer {
	out := make([]*Transfer, 0, len(s.active))
	for tr := range s.active {
		out = append(out, tr)
	}
	// Map order is random; sort by start time then object for
	// deterministic callers (kill waves pick victims from this list).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b *Transfer) bool {
	if a.res.Start != b.res.Start {
		return a.res.Start < b.res.Start
	}
	if a.res.Object != b.res.Object {
		return a.res.Object < b.res.Object
	}
	return a.res.Client < b.res.Client
}

// AbortActive fails every in-flight transfer at the current time.
// Bounded experiment runs call it after their horizon so partial
// transfers are reported instead of leaking.
func (s *Swarm) AbortActive() {
	for _, tr := range s.Active() {
		s.fail(tr)
	}
}

func (s *Swarm) bandwidth(u int) float64 {
	if s.cfg.Bandwidth != nil {
		if b := s.cfg.Bandwidth(u); b > 0 {
			return b
		}
	}
	return DefaultBandwidth
}

// A Transfer is one in-flight chunked download.
type Transfer struct {
	client int
	man    content.Manifest
	onDone func(TransferResult)

	delivered []bool
	assigned  []int // chunk -> current source, -1 when unassigned
	attempt   []int // per-chunk attempt epoch; stale events carry an old value
	pending   []int // unassigned, undelivered chunk indices (FIFO)
	remaining int

	sources  []int        // active sources, in discovery order
	evicted  map[int]bool // sources dropped for missing a deadline
	inflight map[int]int  // source -> outstanding chunk count

	rediscovering bool
	stalled       bool
	done          bool
	res           TransferResult
}

// Client returns the downloading node.
func (tr *Transfer) Client() int { return tr.client }

// Object returns the object being fetched.
func (tr *Transfer) Object() uint64 { return tr.man.Object }

// Done reports whether the transfer has finished (either way).
func (tr *Transfer) Done() bool { return tr.done }

// Result returns the outcome; only meaningful once Done.
func (tr *Transfer) Result() TransferResult { return tr.res }

// ActiveSources returns the replicas the transfer is currently pulling
// from, in discovery order. Kill-wave experiments use it to remove a
// source that is verifiably mid-transfer.
func (tr *Transfer) ActiveSources() []int {
	return append([]int(nil), tr.sources...)
}

// Start begins a transfer of man at client. onDone (may be nil) fires
// once, inside the engine event that finishes or fails the transfer.
func (s *Swarm) Start(client int, man content.Manifest, onDone func(TransferResult)) *Transfer {
	n := man.NumChunks()
	tr := &Transfer{
		client:    client,
		man:       man,
		onDone:    onDone,
		delivered: make([]bool, n),
		assigned:  make([]int, n),
		attempt:   make([]int, n),
		pending:   make([]int, n),
		remaining: n,
		evicted:   make(map[int]bool),
		inflight:  make(map[int]int),
	}
	for i := range tr.assigned {
		tr.assigned[i] = -1
		tr.pending[i] = i
	}
	tr.res = TransferResult{
		Object: man.Object,
		Client: client,
		Chunks: n,
		Start:  s.eng.Now(),
		TTFB:   -1,
	}
	s.obs.TransfersStarted.Inc()
	s.active[tr] = struct{}{}
	if s.cfg.Deadline > 0 {
		s.eng.Schedule(s.cfg.Deadline, func() {
			if !tr.done {
				s.fail(tr)
			}
		})
	}
	for _, u := range s.loc.Locate(client, man.Object, s.cfg.MaxSources, tr.skipSet()) {
		s.addSource(tr, u)
	}
	if len(tr.sources) == 0 {
		s.scheduleRediscover(tr)
	} else {
		s.grant(tr)
	}
	return tr
}

// skipSet is the exclusion list handed to the locator: the client,
// current sources, and everything already evicted.
func (tr *Transfer) skipSet() map[int]bool {
	skip := make(map[int]bool, len(tr.evicted)+len(tr.sources)+1)
	skip[tr.client] = true
	for u := range tr.evicted {
		skip[u] = true
	}
	for _, u := range tr.sources {
		skip[u] = true
	}
	return skip
}

func (s *Swarm) addSource(tr *Transfer, u int) {
	if u == tr.client || tr.evicted[u] {
		return
	}
	for _, v := range tr.sources {
		if v == u {
			return
		}
	}
	tr.sources = append(tr.sources, u)
}

// grant fills every source's window with pending chunks.
func (s *Swarm) grant(tr *Transfer) {
	if tr.done {
		return
	}
	for _, src := range tr.sources {
		for tr.inflight[src] < s.cfg.PerSourceWindow && len(tr.pending) > 0 {
			c := tr.pending[0]
			tr.pending = tr.pending[1:]
			if tr.delivered[c] || tr.assigned[c] >= 0 {
				continue
			}
			s.request(tr, src, c)
		}
	}
}

// request sends chunk c to src: the request propagates one latency,
// queues behind src's earlier uploads, transmits at src's bandwidth,
// and the payload propagates back. A timeout event guards the attempt.
func (s *Swarm) request(tr *Transfer, src, c int) {
	tr.assigned[c] = src
	tr.attempt[c]++
	att := tr.attempt[c]
	tr.inflight[src]++
	s.obs.ChunksRequested.Inc()

	now := s.eng.Now()
	lat := s.net.Latency(tr.client, src)
	startTx := now + lat
	if b := s.busy[src]; b > startTx {
		startTx = b
	}
	doneTx := startTx + float64(tr.man.ChunkLen(c))/s.bandwidth(src)
	s.busy[src] = doneTx
	arrive := doneTx + lat

	s.eng.ScheduleAt(arrive, func() {
		s.deliver(tr, src, c, att, arrive-now)
	})
	s.eng.Schedule(s.cfg.ChunkTimeout, func() {
		s.timeout(tr, c, att)
	})
}

// deliver lands chunk c from src, unless the attempt is stale or src
// died in flight (a dead source's bytes never arrive; the timeout
// recovers the chunk).
func (s *Swarm) deliver(tr *Transfer, src, c, att int, rtt float64) {
	if tr.done || tr.delivered[c] || tr.attempt[c] != att {
		return
	}
	if !s.live.Alive(src) {
		return
	}
	tr.delivered[c] = true
	tr.assigned[c] = -1
	tr.inflight[src]--
	tr.remaining--
	tr.res.Delivered++
	tr.res.Bytes += int64(tr.man.ChunkLen(c))
	s.obs.ChunksDelivered.Inc()
	s.obs.ChunkLatency.Observe(toMicros(rtt))
	if tr.res.TTFB < 0 {
		tr.res.TTFB = s.eng.Now() - tr.res.Start
		s.obs.TTFB.Observe(toMicros(tr.res.TTFB))
	}
	if tr.remaining == 0 {
		s.finish(tr)
		return
	}
	s.grant(tr)
}

// timeout fires when chunk c's attempt att missed its deadline: evict
// the source, re-queue everything that was in flight there, and refill
// from the survivors — or fall back to re-discovery when the source
// set drained.
func (s *Swarm) timeout(tr *Transfer, c, att int) {
	if tr.done || tr.delivered[c] || tr.attempt[c] != att {
		return
	}
	src := tr.assigned[c]
	if src < 0 {
		return
	}
	tr.res.Timeouts++
	s.obs.ChunkTimeouts.Inc()
	s.evictSource(tr, src)
	s.grant(tr)
	if len(tr.sources) == 0 {
		s.scheduleRediscover(tr)
	}
}

// evictSource drops src from the transfer and re-queues its chunks.
func (s *Swarm) evictSource(tr *Transfer, src int) {
	if tr.evicted[src] {
		return
	}
	tr.evicted[src] = true
	for i, v := range tr.sources {
		if v == src {
			tr.sources = append(tr.sources[:i], tr.sources[i+1:]...)
			break
		}
	}
	delete(tr.inflight, src)
	tr.res.SourcesEvicted++
	s.obs.SourceEvictions.Inc()
	if !s.live.Alive(src) {
		tr.res.SourcesKilled++
	}
	for c, a := range tr.assigned {
		if a != src || tr.delivered[c] {
			continue
		}
		tr.assigned[c] = -1
		tr.attempt[c]++ // invalidate the in-flight delivery and timeout
		tr.pending = append(tr.pending, c)
		tr.res.ReRequests++
		s.obs.ReRequests.Inc()
	}
}

// scheduleRediscover charges one discovery round and asks the locator
// for fresh replicas, excluding everything already evicted. Discovery
// may well return nodes that are currently dead — the index is stale
// by design — in which case their chunks time out and the next round
// runs; MaxRediscoveries bounds the spiral.
func (s *Swarm) scheduleRediscover(tr *Transfer) {
	if tr.done || tr.rediscovering {
		return
	}
	if tr.res.Rediscoveries >= s.cfg.MaxRediscoveries {
		s.fail(tr)
		return
	}
	tr.rediscovering = true
	tr.res.Rediscoveries++
	s.obs.Rediscoveries.Inc()
	s.eng.Schedule(s.cfg.RediscoverDelay, func() {
		if tr.done {
			return
		}
		tr.rediscovering = false
		want := s.cfg.MaxSources - len(tr.sources)
		if want <= 0 {
			s.grant(tr)
			return
		}
		srcs := s.loc.Locate(tr.client, tr.man.Object, want, tr.skipSet())
		if len(srcs) == 0 && len(tr.evicted) > 0 {
			// Nothing new to be found: forgive prior evictions and
			// retry them. An evicted replica may have been a false
			// positive (a slow but live source) or may have rejoined
			// since — permanently banning every replica would turn one
			// bad round into a guaranteed failure.
			forgive := make(map[int]bool, len(tr.sources)+1)
			forgive[tr.client] = true
			for _, u := range tr.sources {
				forgive[u] = true
			}
			srcs = s.loc.Locate(tr.client, tr.man.Object, want, forgive)
			for _, u := range srcs {
				delete(tr.evicted, u)
			}
		}
		for _, u := range srcs {
			s.addSource(tr, u)
		}
		if len(tr.sources) == 0 {
			s.scheduleRediscover(tr)
			return
		}
		s.grant(tr)
	})
}

// settleStall integrates the open stall interval ending now. finish
// and fail must call it because they remove the transfer from the
// active set before the post-event tick hook would account it (and an
// out-of-event AbortActive never gets a tick hook at all).
func (s *Swarm) settleStall(tr *Transfer) {
	if dt := s.eng.Now() - s.lastNow; dt > 0 && tr.stalled {
		tr.res.StallTime += dt
	}
}

func (s *Swarm) finish(tr *Transfer) {
	s.settleStall(tr)
	tr.done = true
	tr.res.Completed = true
	tr.res.End = s.eng.Now()
	delete(s.active, tr)
	s.obs.TransfersCompleted.Inc()
	s.obs.TransferTime.Observe(toMicros(tr.res.Elapsed()))
	s.obs.GoodputBps.Observe(int64(tr.res.Goodput() * 1000)) // bytes/ms -> bytes/s
	s.results = append(s.results, tr.res)
	if tr.onDone != nil {
		tr.onDone(tr.res)
	}
}

func (s *Swarm) fail(tr *Transfer) {
	if tr.done {
		return
	}
	s.settleStall(tr)
	tr.done = true
	tr.res.Completed = false
	tr.res.End = s.eng.Now()
	delete(s.active, tr)
	s.obs.TransfersFailed.Inc()
	s.results = append(s.results, tr.res)
	if tr.onDone != nil {
		tr.onDone(tr.res)
	}
}

// reconcile runs after every engine event: it integrates stall time
// over the interval since the previous event for transfers that were
// stalled across it, then re-evaluates each transfer's stall state. A
// transfer is stalled when it is incomplete and no chunk is in flight
// on a live source — every outstanding byte is owed by a dead replica
// or the transfer is waiting out a re-discovery round.
func (s *Swarm) reconcile(now float64) {
	dt := now - s.lastNow
	if dt > 0 {
		for tr := range s.active {
			if tr.stalled {
				tr.res.StallTime += dt
			}
		}
	}
	s.lastNow = now
	for tr := range s.active {
		tr.stalled = !s.liveProgress(tr)
	}
}

// liveProgress reports whether any chunk is in flight on a live
// source.
func (s *Swarm) liveProgress(tr *Transfer) bool {
	for src, n := range tr.inflight {
		if n > 0 && s.live.Alive(src) {
			return true
		}
	}
	return false
}

// toMicros converts a simulated-ms duration to integer microseconds
// for histogram recording.
func toMicros(ms float64) int64 {
	if ms <= 0 {
		return 0
	}
	return int64(ms * 1000)
}
