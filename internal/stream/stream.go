// Package stream implements chunked content transfer over the Makalu
// overlay — the first workload whose unit of work outlives individual
// peers. An object is split into a fixed-size chunk manifest
// (internal/content), replicas are located with the attenuated-Bloom
// identifier routing of internal/search, and a transfer pulls chunks
// in parallel from several replicas at once with a per-chunk timeout,
// re-requesting from surviving replicas when a source dies and
// re-running replica discovery when the source set drains. Transfers
// run on the deterministic discrete-event engine (internal/sim) with
// the netmodel latency models supplying propagation delay and a
// per-source upload-bandwidth model supplying transmission delay, so
// every run yields exact goodput, stall-time and time-to-first-byte
// figures that are bit-reproducible across machines.
//
// One-shot queries measure whether the overlay can find things; a
// chunked transfer measures whether it can keep delivering while the
// nodes serving it churn away — the fault-tolerance claim of the paper
// exercised as sustained work rather than a point probe.
package stream

import (
	"fmt"
)

// Liveness answers whether a node is currently alive. *core.Overlay
// satisfies it; churn runs mutate liveness while transfers are in
// flight.
type Liveness interface {
	Alive(u int) bool
}

// AllAlive is the degenerate liveness model with no failures.
type AllAlive struct{}

// Alive always reports true.
func (AllAlive) Alive(int) bool { return true }

// Locator discovers replica holders of an object. Implementations may
// return stale or dead nodes — discovery is routing, not liveness; the
// transfer scheduler evicts dead sources through chunk timeouts, the
// same way a live peer learns of a silent death.
type Locator interface {
	// Locate returns up to k distinct holders of obj as seen from
	// client, never the client itself and never a node in skip (the
	// transfer's already-known and already-evicted sources). A nil skip
	// map means no exclusions.
	Locate(client int, obj uint64, k int, skip map[int]bool) []int
}

// Config parameterizes the chunk scheduler. Times are in the simulated
// clock's units (the netmodel latencies are abstract milliseconds, so
// so are these).
type Config struct {
	// PerSourceWindow is the number of chunks kept in flight on each
	// active source (default 4): deep enough to hide the request RTT
	// behind the previous chunk's transmission, shallow enough that a
	// source death strands little work.
	PerSourceWindow int
	// MaxSources bounds the active replica set a transfer pulls from in
	// parallel (default 4).
	MaxSources int
	// ChunkTimeout is the per-chunk deadline: a requested chunk not
	// delivered within it evicts its source (presumed dead — the
	// scheduler's analogue of the live layer's EvictMisses) and
	// re-requests every chunk that was in flight there (default 1000).
	ChunkTimeout float64
	// RediscoverDelay is the cost of one replica re-discovery round
	// when the active source set drains (default 100) — the identifier
	// lookup's round trips collapsed to one configurable charge.
	RediscoverDelay float64
	// MaxRediscoveries bounds consecutive empty discovery rounds before
	// the transfer fails (default 16).
	MaxRediscoveries int
	// Deadline, when positive, fails any transfer still incomplete this
	// long after its start.
	Deadline float64
	// Bandwidth returns a node's upload bandwidth in bytes per time
	// unit; nil means a uniform 1250 bytes/ms (10 Mbit/s). A source
	// serializes its uploads — concurrent chunks queue behind each
	// other — which is the trace model's bandwidth accounting applied
	// per node.
	Bandwidth func(node int) float64
}

// withDefaults fills zero-valued knobs.
func (cfg Config) withDefaults() Config {
	if cfg.PerSourceWindow <= 0 {
		cfg.PerSourceWindow = 4
	}
	if cfg.MaxSources <= 0 {
		cfg.MaxSources = 4
	}
	if cfg.ChunkTimeout <= 0 {
		cfg.ChunkTimeout = 1000
	}
	if cfg.RediscoverDelay <= 0 {
		cfg.RediscoverDelay = 100
	}
	if cfg.MaxRediscoveries <= 0 {
		cfg.MaxRediscoveries = 16
	}
	return cfg
}

// DefaultBandwidth is the uniform upload rate used when Config.Bandwidth
// is nil: 1250 bytes per simulated millisecond = 10 Mbit/s.
const DefaultBandwidth = 1250.0

// TransferResult is the outcome of one chunked transfer.
type TransferResult struct {
	Object    uint64  `json:"object"`
	Client    int     `json:"client"`
	Chunks    int     `json:"chunks"`
	Delivered int     `json:"delivered"`
	Bytes     int64   `json:"bytes"`
	Completed bool    `json:"completed"`
	Start     float64 `json:"start"`
	End       float64 `json:"end"`
	// TTFB is the time from start to the first delivered chunk
	// (-1 when no chunk ever arrived).
	TTFB float64 `json:"ttfb"`
	// StallTime is the cumulative time during which the transfer was
	// incomplete and had no chunk in flight on a live source — dead
	// time spent waiting out timeouts on dead replicas or waiting for
	// re-discovery, the interval a media player would spend buffering.
	StallTime     float64 `json:"stall_time"`
	Timeouts      int     `json:"timeouts"`
	ReRequests    int     `json:"re_requests"`
	Rediscoveries int     `json:"rediscoveries"`
	// SourcesEvicted counts replicas dropped for missing a chunk
	// deadline; SourcesKilled counts evicted sources that really were
	// dead when evicted (the rest were false positives).
	SourcesEvicted int `json:"sources_evicted"`
	SourcesKilled  int `json:"sources_killed"`
}

// Elapsed returns the transfer's wall time on the simulated clock.
func (r TransferResult) Elapsed() float64 { return r.End - r.Start }

// Goodput returns delivered payload bytes per time unit (bytes/ms
// under the standard models), 0 for an instant or empty transfer.
func (r TransferResult) Goodput() float64 {
	el := r.Elapsed()
	if el <= 0 {
		return 0
	}
	return float64(r.Bytes) / el
}

// StallRate returns the stalled fraction of the transfer's lifetime.
func (r TransferResult) StallRate() float64 {
	el := r.Elapsed()
	if el <= 0 {
		return 0
	}
	return r.StallTime / el
}

// String renders a one-line summary for logs and examples.
func (r TransferResult) String() string {
	state := "completed"
	if !r.Completed {
		state = "FAILED"
	}
	return fmt.Sprintf("transfer obj %016x: %s, %d/%d chunks, %.0f bytes/ms goodput, ttfb %.1f, stall %.1f%%, %d re-requests, %d rediscoveries",
		r.Object, state, r.Delivered, r.Chunks, r.Goodput(), r.TTFB, 100*r.StallRate(), r.ReRequests, r.Rediscoveries)
}
