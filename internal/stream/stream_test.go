package stream

import (
	"reflect"
	"testing"

	"makalu/internal/content"
	"makalu/internal/netmodel"
	"makalu/internal/obs"
	"makalu/internal/sim"
)

// fixedLocator serves a static replica list, honoring skip/k — the
// oracle form, with none of routing's noise.
type fixedLocator struct {
	replicas map[uint64][]int
}

func (l fixedLocator) Locate(client int, obj uint64, k int, skip map[int]bool) []int {
	var out []int
	for _, u := range l.replicas[obj] {
		if u == client || skip[u] {
			continue
		}
		out = append(out, u)
		if len(out) >= k {
			break
		}
	}
	return out
}

// setLive marks explicit nodes dead.
type setLive struct {
	dead map[int]bool
}

func (s *setLive) Alive(u int) bool { return !s.dead[u] }

func mustManifest(t *testing.T, obj uint64, size int64, chunk int) content.Manifest {
	t.Helper()
	m, err := content.BuildManifest(obj, size, chunk)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSteadyTransferCompletes(t *testing.T) {
	eng := &sim.Engine{}
	loc := fixedLocator{replicas: map[uint64][]int{7: {1, 2}}}
	reg := obs.NewRegistry()
	ob := NewObs(reg)
	sw := NewSwarm(eng, netmodel.Uniform{Nodes: 3, Cost: 10}, AllAlive{}, loc, Config{}, ob)

	man := mustManifest(t, 7, 256<<10, 32<<10) // 8 chunks
	var got TransferResult
	sw.Start(0, man, func(r TransferResult) { got = r })
	eng.Run()

	if !got.Completed {
		t.Fatalf("transfer did not complete: %+v", got)
	}
	if got.Delivered != 8 || got.Bytes != 256<<10 {
		t.Fatalf("delivered %d chunks / %d bytes", got.Delivered, got.Bytes)
	}
	if got.TTFB <= 0 || got.Elapsed() <= 0 || got.Goodput() <= 0 {
		t.Fatalf("bad timing: ttfb=%v elapsed=%v goodput=%v", got.TTFB, got.Elapsed(), got.Goodput())
	}
	if got.StallTime != 0 || got.ReRequests != 0 || got.Rediscoveries != 0 {
		t.Fatalf("steady run saw churn artifacts: %+v", got)
	}
	if n := ob.ChunksDelivered.Value(); n != 8 {
		t.Fatalf("obs delivered = %d, want 8", n)
	}
	if ob.TransfersCompleted.Value() != 1 || ob.TTFB.Count() != 1 {
		t.Fatal("obs transfer counters not threaded")
	}
	if len(sw.Results()) != 1 {
		t.Fatalf("results len = %d", len(sw.Results()))
	}
}

// TestUploadSerialization pins the bandwidth model: one source at
// 1000 bytes/ms serving four 1000-byte chunks back to back must take
// exactly 4 time units with zero latency.
func TestUploadSerialization(t *testing.T) {
	eng := &sim.Engine{}
	loc := fixedLocator{replicas: map[uint64][]int{1: {1}}}
	cfg := Config{
		Bandwidth: func(int) float64 { return 1000 },
	}
	sw := NewSwarm(eng, netmodel.Uniform{Nodes: 2, Cost: 0}, AllAlive{}, loc, cfg, Obs{})

	man := mustManifest(t, 1, 4000, 1000)
	var got TransferResult
	sw.Start(0, man, func(r TransferResult) { got = r })
	eng.Run()

	if !got.Completed {
		t.Fatal("transfer did not complete")
	}
	if got.Elapsed() != 4 {
		t.Fatalf("elapsed = %v, want exactly 4 (serialized uploads)", got.Elapsed())
	}
	if got.Goodput() != 1000 {
		t.Fatalf("goodput = %v, want 1000 bytes/unit", got.Goodput())
	}
}

// TestSourceDeathRecovers kills one of two active sources mid-transfer
// and requires completion from the survivor via timeout, eviction and
// re-request.
func TestSourceDeathRecovers(t *testing.T) {
	eng := &sim.Engine{}
	loc := fixedLocator{replicas: map[uint64][]int{9: {1, 2}}}
	live := &setLive{dead: make(map[int]bool)}
	cfg := Config{ChunkTimeout: 100}
	sw := NewSwarm(eng, netmodel.Uniform{Nodes: 3, Cost: 5}, live, loc, cfg, Obs{})

	man := mustManifest(t, 9, 512<<10, 16<<10) // 32 chunks
	var got TransferResult
	sw.Start(0, man, func(r TransferResult) { got = r })
	// Kill source 1 while its window is full and bytes are moving.
	eng.Schedule(20, func() { live.dead[1] = true })
	eng.Run()

	if !got.Completed {
		t.Fatalf("transfer did not survive source death: %+v", got)
	}
	if got.Delivered != 32 {
		t.Fatalf("delivered %d/32 chunks", got.Delivered)
	}
	if got.SourcesEvicted < 1 || got.SourcesKilled < 1 {
		t.Fatalf("dead source not evicted: %+v", got)
	}
	if got.Timeouts < 1 || got.ReRequests < 1 {
		t.Fatalf("no re-request happened: %+v", got)
	}
}

// TestRediscoveryAndStall drains the whole source set (MaxSources=1,
// source killed) and requires a re-discovery round to find the second
// replica, with stall time covering the dead interval.
func TestRediscoveryAndStall(t *testing.T) {
	eng := &sim.Engine{}
	loc := fixedLocator{replicas: map[uint64][]int{5: {1, 2}}}
	live := &setLive{dead: make(map[int]bool)}
	// ChunkTimeout must exceed window·tx+RTT (4·13.1+10 ≈ 62) or a
	// healthy source's queued chunks get it falsely evicted.
	cfg := Config{MaxSources: 1, ChunkTimeout: 100, RediscoverDelay: 25}
	sw := NewSwarm(eng, netmodel.Uniform{Nodes: 3, Cost: 5}, live, loc, cfg, Obs{})

	man := mustManifest(t, 5, 256<<10, 16<<10) // 16 chunks
	var got TransferResult
	sw.Start(0, man, func(r TransferResult) { got = r })
	eng.Schedule(10, func() { live.dead[1] = true })
	eng.Run()

	if !got.Completed {
		t.Fatalf("transfer did not complete after rediscovery: %+v", got)
	}
	if got.Rediscoveries < 1 {
		t.Fatalf("no rediscovery recorded: %+v", got)
	}
	if got.StallTime <= 0 {
		t.Fatalf("stall time not accounted: %+v", got)
	}
	if got.StallRate() <= 0 || got.StallRate() >= 1 {
		t.Fatalf("stall rate %v out of range", got.StallRate())
	}
}

// TestNoReplicasFails bounds the rediscovery spiral.
func TestNoReplicasFails(t *testing.T) {
	eng := &sim.Engine{}
	loc := fixedLocator{replicas: map[uint64][]int{}}
	cfg := Config{MaxRediscoveries: 3, RediscoverDelay: 10}
	sw := NewSwarm(eng, netmodel.Uniform{Nodes: 2, Cost: 1}, AllAlive{}, loc, cfg, Obs{})

	var got TransferResult
	done := false
	sw.Start(0, mustManifest(t, 1, 1000, 100), func(r TransferResult) { got = r; done = true })
	eng.Run()

	if !done || got.Completed {
		t.Fatalf("transfer should have failed: done=%v %+v", done, got)
	}
	if got.Rediscoveries != 3 {
		t.Fatalf("rediscoveries = %d, want 3", got.Rediscoveries)
	}
	if got.Delivered != 0 || got.Bytes != 0 {
		t.Fatalf("phantom delivery: %+v", got)
	}
}

// TestDeadlineAborts pins Config.Deadline.
func TestDeadlineAborts(t *testing.T) {
	eng := &sim.Engine{}
	loc := fixedLocator{replicas: map[uint64][]int{}}
	cfg := Config{Deadline: 42, RediscoverDelay: 5, MaxRediscoveries: 1 << 20}
	sw := NewSwarm(eng, netmodel.Uniform{Nodes: 2, Cost: 1}, AllAlive{}, loc, cfg, Obs{})

	var got TransferResult
	sw.Start(0, mustManifest(t, 1, 1000, 100), func(r TransferResult) { got = r })
	eng.Run()

	if got.Completed || got.End != 42 {
		t.Fatalf("deadline abort missing: %+v", got)
	}
}

// TestDeterministicReplay runs the same churn scenario twice and
// requires bit-identical results.
func TestDeterministicReplay(t *testing.T) {
	run := func() []TransferResult {
		eng := &sim.Engine{}
		loc := fixedLocator{replicas: map[uint64][]int{
			3: {1, 2, 3},
			4: {2, 4, 5},
		}}
		live := &setLive{dead: make(map[int]bool)}
		sw := NewSwarm(eng, netmodel.NewEuclidean(6, 100, 11), live, loc,
			Config{ChunkTimeout: 200, MaxSources: 2}, Obs{})
		sw.Start(0, mustManifest(t, 3, 300<<10, 32<<10), nil)
		sw.Start(5, mustManifest(t, 4, 200<<10, 32<<10), nil)
		eng.Schedule(15, func() { live.dead[2] = true })
		eng.Run()
		return sw.Results()
	}
	a, b := run(), run()
	if len(a) != 2 {
		t.Fatalf("results len = %d", len(a))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%+v\n%+v", a, b)
	}
}

// TestAbortActive reports partial transfers at a horizon.
func TestAbortActive(t *testing.T) {
	eng := &sim.Engine{}
	loc := fixedLocator{replicas: map[uint64][]int{1: {1}}}
	live := &setLive{dead: map[int]bool{1: true}} // sole replica already dead
	cfg := Config{ChunkTimeout: 1 << 20, RediscoverDelay: 1 << 20}
	sw := NewSwarm(eng, netmodel.Uniform{Nodes: 2, Cost: 1}, live, loc, cfg, Obs{})

	tr := sw.Start(0, mustManifest(t, 1, 1000, 100), nil)
	eng.RunUntil(50)
	if tr.Done() {
		t.Fatal("transfer finished against a dead replica")
	}
	if len(tr.ActiveSources()) != 1 || tr.ActiveSources()[0] != 1 {
		t.Fatalf("active sources = %v", tr.ActiveSources())
	}
	sw.AbortActive()
	if !tr.Done() || tr.Result().Completed {
		t.Fatalf("abort did not fail the transfer: %+v", tr.Result())
	}
	// Stalled from the first (dropped) delivery event through the
	// abort at t=50; only the short pre-first-event window is exempt.
	if got := tr.Result().StallTime; got < 40 || got > 50 {
		t.Fatalf("stall time = %v, want ~(50 - first delivery)", got)
	}
}

// TestStoreLocator exercises the oracle locator against a placed
// store.
func TestStoreLocator(t *testing.T) {
	st, err := content.Place(50, content.PlacementConfig{Objects: 4, Replication: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	obj := st.Objects()[0]
	loc := StoreLocator{Store: st}
	reps := st.Replicas(obj)
	got := loc.Locate(int(reps[0]), obj, 3, nil)
	if len(got) != 3 {
		t.Fatalf("Locate returned %d sources, want 3", len(got))
	}
	for _, u := range got {
		if u == int(reps[0]) {
			t.Fatal("locator returned the client")
		}
		if !st.Has(u, obj) {
			t.Fatalf("node %d does not host the object", u)
		}
	}
	skip := map[int]bool{got[0]: true}
	for _, u := range loc.Locate(int(reps[0]), obj, 3, skip) {
		if skip[u] {
			t.Fatal("skip set ignored")
		}
	}
}
