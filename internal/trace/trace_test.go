package trace

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestProfilesMatchPaperNumbers(t *testing.T) {
	p06 := Gnutella2006()
	// §5 / Table 2: 3.23 q/s × 38.439 fanout = 124.16 outgoing msgs/s.
	if math.Abs(p06.OutgoingMessagesPerSecond()-124.16) > 0.1 {
		t.Fatalf("2006 outgoing msgs/s = %v, want ≈ 124.16", p06.OutgoingMessagesPerSecond())
	}
	// Computed bandwidth should land near the measured 103.4 kbps.
	if math.Abs(p06.OutgoingKbps()-p06.MeasuredKbps) > 5 {
		t.Fatalf("2006 computed kbps %v too far from measured %v",
			p06.OutgoingKbps(), p06.MeasuredKbps)
	}
	p03 := Gnutella2003()
	if p03.QueriesPerSecond <= p06.QueriesPerSecond {
		t.Fatal("2003 had far higher incoming query rates than 2006")
	}
	if p03.MeanFanout >= p06.MeanFanout {
		t.Fatal("2006 ultrapeers fan out to many more peers than 2003")
	}
	if p03.SuccessRate != 0.035 || p06.SuccessRate != 0.069 {
		t.Fatal("success rates must match the paper (3.5% → 6.9%)")
	}
}

func TestTable2GnutellaRow(t *testing.T) {
	rows := Table2(Gnutella2006(), 8.5, 0.36, 9.5)
	if len(rows) != 2 {
		t.Fatalf("table has %d rows", len(rows))
	}
	g := rows[0]
	if math.Abs(g.MsgsPerQuery-38.439) > 1e-9 || math.Abs(g.MsgsPerSecond-124.16) > 0.1 {
		t.Fatalf("gnutella row wrong: %+v", g)
	}
	if g.OutgoingKbps != 103.4 || g.SuccessRate != 0.069 {
		t.Fatalf("gnutella row wrong: %+v", g)
	}
}

func TestTable2MakaluRow(t *testing.T) {
	rows := Table2(Gnutella2006(), 8.5, 0.36, 9.5)
	m := rows[1]
	// Paper: 8.5 msgs/query → 27.45 msgs/s → ≈23 kbps.
	if math.Abs(m.MsgsPerSecond-27.455) > 0.01 {
		t.Fatalf("makalu msgs/s = %v, want 27.455", m.MsgsPerSecond)
	}
	if math.Abs(m.OutgoingKbps-23.28) > 0.5 {
		t.Fatalf("makalu kbps = %v, want ≈ 23.3", m.OutgoingKbps)
	}
	if m.SuccessRate != 0.36 || m.NeighborsRequired != 9.5 {
		t.Fatalf("makalu row wrong: %+v", m)
	}
	// Headline claims: ~75% less bandwidth, ~5x the success rate,
	// <25% of the neighbors.
	g := rows[0]
	if m.OutgoingKbps > 0.3*g.OutgoingKbps {
		t.Fatalf("bandwidth reduction below 70%%: %v vs %v", m.OutgoingKbps, g.OutgoingKbps)
	}
	if m.SuccessRate < 4*g.SuccessRate {
		t.Fatalf("success improvement below 4x: %v vs %v", m.SuccessRate, g.SuccessRate)
	}
	if m.NeighborsRequired > 0.25*g.NeighborsRequired {
		t.Fatalf("neighbor reduction insufficient: %v vs %v", m.NeighborsRequired, g.NeighborsRequired)
	}
}

func TestGenerateStreamValidation(t *testing.T) {
	if _, err := GenerateStream(StreamConfig{Duration: 0, Rate: 1, Objects: 1}); err == nil {
		t.Fatal("zero duration should fail")
	}
	if _, err := GenerateStream(StreamConfig{Duration: 1, Rate: 0, Objects: 1}); err == nil {
		t.Fatal("zero rate should fail")
	}
	if _, err := GenerateStream(StreamConfig{Duration: 1, Rate: 1, Objects: 0}); err == nil {
		t.Fatal("zero objects should fail")
	}
}

func TestGenerateStreamPoissonRate(t *testing.T) {
	cfg := StreamConfig{Duration: 1000, Rate: 3.23, Objects: 100, Seed: 1}
	events, err := GenerateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(events)) / cfg.Duration
	if math.Abs(got-cfg.Rate) > 0.3 {
		t.Fatalf("empirical rate %v, want ≈ %v", got, cfg.Rate)
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].At < events[j].At }) {
		t.Fatal("events must be time ordered")
	}
	for _, ev := range events {
		if ev.At < 0 || ev.At > cfg.Duration {
			t.Fatalf("event time %v out of range", ev.At)
		}
		if ev.Object < 0 || ev.Object >= cfg.Objects {
			t.Fatalf("object %d out of range", ev.Object)
		}
	}
}

func TestGenerateStreamZipfSkew(t *testing.T) {
	uniform, err := GenerateStream(StreamConfig{Duration: 2000, Rate: 5, Objects: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := GenerateStream(StreamConfig{Duration: 2000, Rate: 5, Objects: 50, ZipfExp: 1.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	top := func(events []QueryEvent) float64 {
		counts := make([]int, 50)
		for _, ev := range events {
			counts[ev.Object]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(len(events))
	}
	if top(skewed) < 2*top(uniform) {
		t.Fatalf("zipf stream not skewed: top share %v vs uniform %v", top(skewed), top(uniform))
	}
}

func TestStreamMatchesGenerateStream(t *testing.T) {
	// The iterator must yield exactly the events GenerateStream
	// materializes — and both must match the original generator's draw
	// order (exp inter-arrival first, then the object), pinned here
	// inline so a refactor of either path can't silently reseed the
	// workload every consumer replays.
	for _, zipf := range []float64{0, 1.2} {
		cfg := StreamConfig{Duration: 50, Rate: 8, Objects: 64, ZipfExp: zipf, Seed: 11}
		events, err := GenerateStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range events {
			got, ok := s.Next()
			if !ok {
				t.Fatalf("stream ended at event %d of %d", i, len(events))
			}
			if got != want {
				t.Fatalf("event %d: stream %+v != slice %+v", i, got, want)
			}
		}
		if ev, ok := s.Next(); ok {
			t.Fatalf("stream yields %+v past the slice's end", ev)
		}
		if _, ok := s.Next(); ok {
			t.Fatal("exhausted stream must stay exhausted")
		}

		rng := rand.New(rand.NewSource(cfg.Seed))
		var z *rand.Zipf
		if cfg.ZipfExp > 1 {
			z = rand.NewZipf(rng, cfg.ZipfExp, 1, uint64(cfg.Objects-1))
		}
		tt := 0.0
		for i := 0; ; i++ {
			tt += rng.ExpFloat64() / cfg.Rate
			if tt > cfg.Duration {
				if i != len(events) {
					t.Fatalf("reference generator has %d events, stream %d", i, len(events))
				}
				break
			}
			obj := 0
			if z != nil {
				obj = int(z.Uint64())
			} else {
				obj = rng.Intn(cfg.Objects)
			}
			if events[i] != (QueryEvent{At: tt, Object: obj}) {
				t.Fatalf("event %d diverges from the original draw order", i)
			}
		}
	}
}

func TestStreamSteadyStateAllocFree(t *testing.T) {
	// The load generator iterates multi-million-query traces; Next must
	// not allocate once the Stream exists, or the heap would scale with
	// the trace instead of staying O(1).
	s, err := NewStream(StreamConfig{Duration: 1e12, Rate: 1000, Objects: 4096, ZipfExp: 1.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sink QueryEvent
	allocs := testing.AllocsPerRun(10000, func() {
		ev, ok := s.Next()
		if !ok {
			t.Fatal("stream exhausted mid-test")
		}
		sink = ev
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("Stream.Next allocates %v per event, want 0", allocs)
	}
}

func TestGenerateStreamDeterminism(t *testing.T) {
	cfg := StreamConfig{Duration: 100, Rate: 2, Objects: 10, ZipfExp: 1.2, Seed: 3}
	a, err := GenerateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("stream lengths differ for equal seeds")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("streams diverge for equal seeds")
		}
	}
}
