// Package trace encodes the Gnutella traffic measurements the paper
// validates against (§5, drawn from the authors' PAM'07 trace study of
// 2003 and 2006 Gnutella), and generates synthetic query streams with
// the same aggregate statistics to drive the simulator: the original
// packet traces are not redistributable, but every number the paper
// uses from them is an aggregate reproduced here.
package trace

import (
	"fmt"
	"math/rand"
)

// TrafficProfile captures the aggregate client-side traffic statistics
// of a Gnutella measurement epoch.
type TrafficProfile struct {
	Year               int
	QueriesPerSecond   float64 // incoming query rate at the measured peer
	MeanQuerySizeBytes float64 // mean query message size
	MeanFanout         float64 // outgoing copies per incoming query
	SuccessRate        float64 // query success rate seen by the peer
	MeasuredKbps       float64 // outgoing query bandwidth as measured
	NeighborCount      int     // typical neighbor count of the measured peer
}

// Gnutella2003 is the v0.4-era profile: ~60 queries/s (>400k per two
// hours), fanout ≈ 4, >130 kbps outgoing, 3.5% success.
func Gnutella2003() TrafficProfile {
	return TrafficProfile{
		Year:               2003,
		QueriesPerSecond:   60,
		MeanQuerySizeBytes: 106,
		MeanFanout:         4,
		SuccessRate:        0.035,
		MeasuredKbps:       130,
		NeighborCount:      8,
	}
}

// Gnutella2006 is the v0.6 two-tier profile: 3.23 queries/s (23k per
// two hours), fanout 38.439, 103.4 kbps outgoing, 6.9% success, up to
// ~40 active ultrapeer neighbors.
func Gnutella2006() TrafficProfile {
	return TrafficProfile{
		Year:               2006,
		QueriesPerSecond:   3.23,
		MeanQuerySizeBytes: 106,
		MeanFanout:         38.439,
		SuccessRate:        0.069,
		MeasuredKbps:       103.4,
		NeighborCount:      38,
	}
}

// OutgoingMessagesPerSecond returns fanout × query rate.
func (p TrafficProfile) OutgoingMessagesPerSecond() float64 {
	return p.QueriesPerSecond * p.MeanFanout
}

// OutgoingKbps computes outgoing query bandwidth from the rate, fanout
// and message size (kilobits per second, 1 kbit = 1000 bits).
func (p TrafficProfile) OutgoingKbps() float64 {
	return p.OutgoingMessagesPerSecond() * p.MeanQuerySizeBytes * 8 / 1000
}

// BandwidthRow is one row of the paper's Table 2.
type BandwidthRow struct {
	System            string
	MsgsPerQuery      float64
	MsgsPerSecond     float64
	OutgoingKbps      float64
	SuccessRate       float64
	NeighborsRequired float64
}

// Table2 builds the traffic-comparison table: the Gnutella row comes
// straight from the 2006 profile; the Makalu row applies the same
// incoming query rate and query size to the simulator-measured
// messages/query, success rate and mean degree.
func Table2(p TrafficProfile, makaluMsgsPerQuery, makaluSuccess, makaluMeanDegree float64) []BandwidthRow {
	return []BandwidthRow{
		{
			System:            fmt.Sprintf("Gnutella %d", p.Year),
			MsgsPerQuery:      p.MeanFanout,
			MsgsPerSecond:     p.OutgoingMessagesPerSecond(),
			OutgoingKbps:      p.MeasuredKbps,
			SuccessRate:       p.SuccessRate,
			NeighborsRequired: float64(p.NeighborCount),
		},
		{
			System:            "Makalu",
			MsgsPerQuery:      makaluMsgsPerQuery,
			MsgsPerSecond:     p.QueriesPerSecond * makaluMsgsPerQuery,
			OutgoingKbps:      p.QueriesPerSecond * makaluMsgsPerQuery * p.MeanQuerySizeBytes * 8 / 1000,
			SuccessRate:       makaluSuccess,
			NeighborsRequired: makaluMeanDegree,
		},
	}
}

// QueryEvent is one synthetic query: its arrival time and the index
// of the catalog object it asks for.
type QueryEvent struct {
	At     float64
	Object int
}

// StreamConfig drives the synthetic query-stream generator.
type StreamConfig struct {
	Duration float64 // seconds of trace to generate
	Rate     float64 // queries per second (Poisson arrivals)
	Objects  int     // catalog size queries are drawn from
	ZipfExp  float64 // popularity skew (>1); 0 = uniform popularity
	Seed     int64
}

// Stream yields the events of a synthetic query trace one at a time,
// so multi-million-query workloads (the load generator's regime) never
// materialize an event slice: the iterator's steady state is
// allocation-free and its heap footprint is the rng state, independent
// of Duration×Rate. Draw order is identical to GenerateStream's, so a
// Stream and a materialized trace with equal configs yield the same
// events.
type Stream struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	cfg  StreamConfig
	t    float64
}

// NewStream validates cfg and positions an iterator at the start of
// the trace.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if cfg.Duration <= 0 || cfg.Rate <= 0 {
		return nil, fmt.Errorf("trace: duration and rate must be positive")
	}
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("trace: need a positive catalog size")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Stream{rng: rng, cfg: cfg}
	if cfg.ZipfExp > 1 {
		s.zipf = rand.NewZipf(rng, cfg.ZipfExp, 1, uint64(cfg.Objects-1))
	}
	return s, nil
}

// Next returns the next event in time order; ok is false once the
// trace duration is exhausted (and stays false).
func (s *Stream) Next() (ev QueryEvent, ok bool) {
	t := s.t + s.rng.ExpFloat64()/s.cfg.Rate
	if t > s.cfg.Duration {
		s.t = t
		return QueryEvent{}, false
	}
	s.t = t
	obj := 0
	if s.zipf != nil {
		obj = int(s.zipf.Uint64())
	} else {
		obj = s.rng.Intn(s.cfg.Objects)
	}
	return QueryEvent{At: t, Object: obj}, true
}

// GenerateStream produces a Poisson query stream with (optionally)
// Zipf-skewed object popularity, as file-sharing query traces exhibit.
// Events are returned in time order. It materializes the whole trace;
// callers that only need one pass should iterate a Stream instead.
func GenerateStream(cfg StreamConfig) ([]QueryEvent, error) {
	s, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	var events []QueryEvent
	for {
		ev, ok := s.Next()
		if !ok {
			return events, nil
		}
		events = append(events, ev)
	}
}
