package content

import (
	"fmt"
)

// A Manifest splits one object into fixed-size chunks so a transfer
// can fetch it piecewise from several replicas at once and re-request
// individual chunks when a source dies mid-download. The manifest is
// derivable by every replica from (object id, size, chunk size) alone
// — chunk payloads and hashes are synthesized deterministically from
// the object id — so locating any replica of the object is enough to
// start the transfer; no separate manifest fetch is needed.
type Manifest struct {
	Object    uint64 // object identifier (ObjectID space)
	Size      int64  // total payload bytes
	ChunkSize int    // bytes per chunk (last chunk may be short)
	Hashes    []uint64
}

// DefaultChunkSize is the transfer unit the streaming workload uses:
// large enough to amortize per-chunk round trips, small enough that a
// re-request after a source death wastes little progress, and well
// under the peer layer's 1 MiB frame cap.
const DefaultChunkSize = 64 << 10

// BuildManifest derives the chunk manifest of an object. Chunk hashes
// are computed from the synthetic chunk payloads, so VerifyChunk can
// check delivered data end to end.
func BuildManifest(obj uint64, size int64, chunkSize int) (Manifest, error) {
	if size <= 0 {
		return Manifest{}, fmt.Errorf("content: manifest needs positive size, got %d", size)
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	m := Manifest{Object: obj, Size: size, ChunkSize: chunkSize}
	n := m.NumChunks()
	m.Hashes = make([]uint64, n)
	for i := 0; i < n; i++ {
		m.Hashes[i] = chunkHash(ChunkPayload(obj, i, m.ChunkLen(i)))
	}
	return m, nil
}

// NumChunks returns the chunk count: ceil(Size / ChunkSize).
func (m Manifest) NumChunks() int {
	return int((m.Size + int64(m.ChunkSize) - 1) / int64(m.ChunkSize))
}

// ChunkLen returns the payload length of chunk i (the last chunk
// carries the remainder).
func (m Manifest) ChunkLen(i int) int {
	off := int64(i) * int64(m.ChunkSize)
	rem := m.Size - off
	if rem < 0 {
		return 0
	}
	if rem > int64(m.ChunkSize) {
		return m.ChunkSize
	}
	return int(rem)
}

// ChunkOffset returns the byte offset of chunk i within the object.
func (m Manifest) ChunkOffset(i int) int64 { return int64(i) * int64(m.ChunkSize) }

// VerifyChunk reports whether data is the authentic payload of chunk i.
func (m Manifest) VerifyChunk(i int, data []byte) bool {
	if i < 0 || i >= len(m.Hashes) {
		return false
	}
	if len(data) != m.ChunkLen(i) {
		return false
	}
	return chunkHash(data) == m.Hashes[i]
}

// ChunkPayload synthesizes the deterministic payload of chunk i: a
// splitmix64 keystream seeded by (object, chunk). Every replica
// generates identical bytes, which stands in for on-disk file content
// without shipping real files through the repo.
func ChunkPayload(obj uint64, i, length int) []byte {
	out := make([]byte, length)
	x := chunkSeed(obj, i)
	for o := 0; o < length; o += 8 {
		x += 0x9e3779b97f4a7c15
		v := mixSplit(x)
		for b := 0; b < 8 && o+b < length; b++ {
			out[o+b] = byte(v >> (8 * b))
		}
	}
	return out
}

// ObjectPayload synthesizes the whole object (tests and the live blob
// store use it; the simulator never materializes payloads).
func ObjectPayload(obj uint64, size int64, chunkSize int) []byte {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	out := make([]byte, 0, size)
	m := Manifest{Object: obj, Size: size, ChunkSize: chunkSize}
	for i := 0; i < m.NumChunks(); i++ {
		out = append(out, ChunkPayload(obj, i, m.ChunkLen(i))...)
	}
	return out
}

// chunkSeed mixes the object id and chunk index into the keystream
// origin.
func chunkSeed(obj uint64, i int) uint64 {
	return mixSplit(obj ^ mixSplit(uint64(i)+0x632be59bd9b4e019))
}

// chunkHash is an FNV-1a-then-mix digest of a chunk payload: cheap,
// stable across processes, and strong enough to catch truncation or
// corruption in tests (this is an integrity check, not a security
// boundary).
func chunkHash(data []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return mixSplit(h)
}

// mixSplit is the splitmix64 finalizer used across the repo.
func mixSplit(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
