package content

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlaceValidation(t *testing.T) {
	if _, err := Place(0, PlacementConfig{Objects: 1}); err == nil {
		t.Fatal("zero nodes should fail")
	}
	if _, err := Place(10, PlacementConfig{Objects: 0}); err == nil {
		t.Fatal("zero objects should fail")
	}
	if _, err := Place(10, PlacementConfig{Objects: 1, Replication: 1.5}); err == nil {
		t.Fatal("replication > 1 should fail")
	}
	if _, err := Place(10, PlacementConfig{Objects: 1, Replication: -0.1}); err == nil {
		t.Fatal("negative replication should fail")
	}
}

func TestPlaceReplicaCounts(t *testing.T) {
	n := 1000
	s, err := Place(n, PlacementConfig{Objects: 50, Replication: 0.01, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range s.Objects() {
		if got := s.ReplicaCount(obj); got != 10 {
			t.Fatalf("object %x has %d replicas, want 10", obj, got)
		}
	}
}

func TestPlaceMinReplicasFloor(t *testing.T) {
	s, err := Place(100, PlacementConfig{Objects: 5, Replication: 0.0001, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range s.Objects() {
		if s.ReplicaCount(obj) != 1 {
			t.Fatalf("replica floor violated: %d", s.ReplicaCount(obj))
		}
	}
	// Explicit higher floor.
	s2, err := Place(100, PlacementConfig{Objects: 5, Replication: 0, MinReplicas: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range s2.Objects() {
		if s2.ReplicaCount(obj) != 3 {
			t.Fatalf("MinReplicas not honored: %d", s2.ReplicaCount(obj))
		}
	}
}

func TestPlaceReplicationClampsToN(t *testing.T) {
	s, err := Place(10, PlacementConfig{Objects: 2, Replication: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range s.Objects() {
		if s.ReplicaCount(obj) != 10 {
			t.Fatalf("full replication should hit every node, got %d", s.ReplicaCount(obj))
		}
	}
}

func TestPlaceConsistency(t *testing.T) {
	n := 500
	s, err := Place(n, PlacementConfig{Objects: 40, Replication: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Has() agrees with Replicas() and NodeObjects() both ways.
	for _, obj := range s.Objects() {
		for _, h := range s.Replicas(obj) {
			if !s.Has(int(h), obj) {
				t.Fatalf("replica list says node %d hosts %x but Has disagrees", h, obj)
			}
		}
	}
	total := 0
	for u := 0; u < n; u++ {
		for _, obj := range s.NodeObjects(u) {
			total++
			found := false
			for _, h := range s.Replicas(obj) {
				if int(h) == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d hosts %x but is missing from replica list", u, obj)
			}
		}
	}
	if total != 40*10 {
		t.Fatalf("total placements = %d, want 400", total)
	}
}

func TestPlaceDistinctHosts(t *testing.T) {
	s, err := Place(50, PlacementConfig{Objects: 20, Replication: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range s.Objects() {
		hosts := s.Replicas(obj)
		for i := 1; i < len(hosts); i++ {
			if hosts[i] == hosts[i-1] {
				t.Fatalf("duplicate host %d for object %x", hosts[i], obj)
			}
		}
	}
}

func TestPlaceUniformity(t *testing.T) {
	// With many objects, per-node load should concentrate around the
	// mean (binomial): no node wildly over- or under-loaded.
	n := 200
	s, err := Place(n, PlacementConfig{Objects: 2000, Replication: 0.05, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	mean := 2000.0 * 10.0 / 200.0 // copies per object = 10
	for u := 0; u < n; u++ {
		load := float64(len(s.NodeObjects(u)))
		if math.Abs(load-mean) > 5*math.Sqrt(mean) {
			t.Fatalf("node %d load %v, mean %v: placement not uniform", u, load, mean)
		}
	}
}

func TestObjectIDStability(t *testing.T) {
	if ObjectID(1, 0) != ObjectID(1, 0) {
		t.Fatal("ObjectID must be deterministic")
	}
	if ObjectID(1, 0) == ObjectID(1, 1) || ObjectID(1, 0) == ObjectID(2, 0) {
		t.Fatal("ObjectID collisions across index/seed")
	}
}

func TestRandomObject(t *testing.T) {
	s, err := Place(50, PlacementConfig{Objects: 10, Replication: 0.1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		obj := s.RandomObject(rng)
		if s.ReplicaCount(obj) == 0 {
			t.Fatal("random object has no replicas")
		}
	}
}

func TestQRPTable(t *testing.T) {
	s, err := Place(100, PlacementConfig{Objects: 30, Replication: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	node := int(s.Replicas(s.Objects()[0])[0])
	q := BuildQRPTable(s, node, 4096, 4)
	for _, obj := range s.NodeObjects(node) {
		if !q.MayMatch(obj) {
			t.Fatalf("QRP table false negative for hosted object %x", obj)
		}
	}
}

func TestGenerateCatalog(t *testing.T) {
	c, err := GenerateCatalog(500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumObjects() != 500 {
		t.Fatalf("catalog size %d", c.NumObjects())
	}
	for i := 0; i < 500; i++ {
		if c.Names[i] == "" || len(c.Keywords(i)) != 4 {
			t.Fatalf("object %d malformed: %q %v", i, c.Names[i], c.Keywords(i))
		}
	}
	if _, err := GenerateCatalog(0, 1); err == nil {
		t.Fatal("empty catalog should fail")
	}
}

func TestCatalogIDsMatchStore(t *testing.T) {
	seed := int64(13)
	c, err := GenerateCatalog(20, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Place(100, PlacementConfig{Objects: 20, Replication: 0.05, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range c.IDs {
		if s.Objects()[i] != id {
			t.Fatalf("catalog/store id mismatch at %d", i)
		}
	}
}

func TestQueryForFullySpecific(t *testing.T) {
	c, err := GenerateCatalog(300, 15)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(16))
	q := c.QueryFor(7, 4, rng)
	if len(q.Terms) != 4 {
		t.Fatalf("full query has %d terms", len(q.Terms))
	}
	if !c.Matches(7, q) {
		t.Fatal("object must match its own full query")
	}
	// The 4-term query includes the unique serial keyword, so only
	// objects sharing all four keywords match — nearly always just
	// object 7 itself.
	matches := c.MatchingObjects(q)
	found := false
	for _, m := range matches {
		if m == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("MatchingObjects must include the source object")
	}
}

func TestQueryForWildcardMatchesMore(t *testing.T) {
	c, err := GenerateCatalog(2000, 17)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	// A 1-term query is a broad wildcard: it should usually match
	// many objects.
	broad, narrow := 0, 0
	for i := 0; i < 20; i++ {
		q1 := c.QueryFor(i, 1, rng)
		q4 := c.QueryFor(i, 4, rng)
		broad += len(c.MatchingObjects(q1))
		narrow += len(c.MatchingObjects(q4))
	}
	if broad <= narrow {
		t.Fatalf("wildcard queries should match more objects: %d vs %d", broad, narrow)
	}
}

func TestQueryForClamping(t *testing.T) {
	c, err := GenerateCatalog(10, 19)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20))
	if got := len(c.QueryFor(0, 99, rng).Terms); got != 4 {
		t.Fatalf("over-asking should clamp to 4, got %d", got)
	}
	if got := len(c.QueryFor(0, 0, rng).Terms); got != 1 {
		t.Fatalf("under-asking should clamp to 1, got %d", got)
	}
}

func TestMatchingNodes(t *testing.T) {
	seed := int64(21)
	c, err := GenerateCatalog(30, seed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Place(200, PlacementConfig{Objects: 30, Replication: 0.05, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	q := c.QueryFor(3, 4, rng)
	nodes := c.MatchingNodes(q, s)
	if len(nodes) == 0 {
		t.Fatal("a full query must match the source object's replicas")
	}
	// Every replica of object 3 must be in the node set.
	for _, h := range s.Replicas(c.IDs[3]) {
		found := false
		for _, x := range nodes {
			if x == h {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("replica %d missing from matching nodes", h)
		}
	}
	// Sorted and deduplicated.
	for i := 1; i < len(nodes); i++ {
		if nodes[i] <= nodes[i-1] {
			t.Fatal("matching nodes not sorted/deduplicated")
		}
	}
}

func TestMatchesProperty(t *testing.T) {
	c, err := GenerateCatalog(100, 23)
	if err != nil {
		t.Fatal(err)
	}
	f := func(objRaw uint8, termsRaw uint8, seed int64) bool {
		obj := int(objRaw) % 100
		terms := int(termsRaw)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		q := c.QueryFor(obj, terms, rng)
		// An object always matches a query built from its own terms.
		return c.Matches(obj, q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
