package content

import (
	"fmt"
	"math/rand"
	"sort"

	"makalu/internal/bloom"
)

// Catalog gives objects human-style names and keyword sets so the
// flooding experiments can model wildcard/attribute searches (§1:
// "wild card searches using flooding"), not just exact lookups. A
// query carries a subset of an object's keywords; any object whose
// keyword set contains all query terms matches.
type Catalog struct {
	Names    []string
	IDs      []uint64
	keywords [][]uint64 // sorted keyword hashes per object
}

var (
	nameAdjectives = []string{
		"red", "blue", "fast", "live", "remix", "classic", "deluxe",
		"ultimate", "original", "extended", "acoustic", "digital",
	}
	nameNouns = []string{
		"song", "album", "movie", "clip", "track", "mix", "show",
		"episode", "demo", "session", "concert", "single",
	}
	nameArtists = []string{
		"aurora", "nebula", "quartz", "ember", "willow", "falcon",
		"harbor", "juniper", "lumen", "meridian", "onyx", "prairie",
	}
)

// GenerateCatalog synthesizes numObjects named objects. Names look
// like "ember classic track 0042"; keywords are the lowercase tokens
// plus the numeric suffix, hashed to 64 bits.
func GenerateCatalog(numObjects int, seed int64) (*Catalog, error) {
	if numObjects <= 0 {
		return nil, fmt.Errorf("content: catalog needs positive object count")
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Catalog{
		Names:    make([]string, numObjects),
		IDs:      make([]uint64, numObjects),
		keywords: make([][]uint64, numObjects),
	}
	for i := 0; i < numObjects; i++ {
		artist := nameArtists[rng.Intn(len(nameArtists))]
		adj := nameAdjectives[rng.Intn(len(nameAdjectives))]
		noun := nameNouns[rng.Intn(len(nameNouns))]
		serial := fmt.Sprintf("%04d", i)
		c.Names[i] = artist + " " + adj + " " + noun + " " + serial
		c.IDs[i] = ObjectID(seed, i)
		kws := []uint64{
			bloom.HashString(artist),
			bloom.HashString(adj),
			bloom.HashString(noun),
			bloom.HashString(serial),
		}
		sort.Slice(kws, func(a, b int) bool { return kws[a] < kws[b] })
		c.keywords[i] = kws
	}
	return c, nil
}

// NumObjects returns the catalog size.
func (c *Catalog) NumObjects() int { return len(c.IDs) }

// Keywords returns the sorted keyword hashes of object i.
func (c *Catalog) Keywords(i int) []uint64 { return c.keywords[i] }

// Query is a wildcard search: a set of keyword terms that must all
// appear in a matching object's keyword set.
type Query struct {
	Terms []uint64 // sorted keyword hashes
}

// QueryFor builds a query for object i using nTerms of its keywords
// (clamped to the keyword count), drawn without replacement. With all
// four keywords the query is fully specific; with fewer it behaves
// like a wildcard search that may match several objects.
func (c *Catalog) QueryFor(i, nTerms int, rng *rand.Rand) Query {
	kws := c.keywords[i]
	if nTerms >= len(kws) {
		return Query{Terms: append([]uint64(nil), kws...)}
	}
	if nTerms < 1 {
		nTerms = 1
	}
	perm := rng.Perm(len(kws))
	terms := make([]uint64, 0, nTerms)
	for _, p := range perm[:nTerms] {
		terms = append(terms, kws[p])
	}
	sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
	return Query{Terms: terms}
}

// Matches reports whether object i satisfies the query (all terms
// present in the object's keyword set).
func (c *Catalog) Matches(i int, q Query) bool {
	kws := c.keywords[i]
	for _, t := range q.Terms {
		j := sort.Search(len(kws), func(j int) bool { return kws[j] >= t })
		if j >= len(kws) || kws[j] != t {
			return false
		}
	}
	return true
}

// MatchingObjects returns the indexes of every catalog object that
// satisfies the query.
func (c *Catalog) MatchingObjects(q Query) []int {
	var out []int
	for i := range c.keywords {
		if c.Matches(i, q) {
			out = append(out, i)
		}
	}
	return out
}

// MatchingNodes returns the sorted, deduplicated set of nodes that
// host at least one object matching the query, given the placement in
// s (object i in the catalog corresponds to s.Objects()[i]; the
// catalog and store must be built with the same size and seed).
func (c *Catalog) MatchingNodes(q Query, s *Store) []int32 {
	seen := map[int32]bool{}
	for _, i := range c.MatchingObjects(q) {
		for _, h := range s.Replicas(c.IDs[i]) {
			seen[h] = true
		}
	}
	out := make([]int32, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
