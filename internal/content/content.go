// Package content models the shared-object workload of the paper's
// search experiments (§4.1): a catalog of objects with keyword names,
// uniform-random replica placement at a configurable replication
// ratio, wildcard (keyword) and exact-identifier queries, and the
// QRP-style routing tables Gnutella v0.6 ultrapeers keep for their
// leaves.
package content

import (
	"fmt"
	"math/rand"
	"sort"

	"makalu/internal/bloom"
)

// Store maps nodes to the objects they host. Replication ratio r on n
// nodes places max(MinReplicas, round(r*n)) copies of each object on
// distinct uniform-random nodes, exactly as in §4.1.
type Store struct {
	n        int
	perNode  [][]uint64         // sorted object ids per node
	replicas map[uint64][]int32 // object id -> hosting nodes (sorted)
	objects  []uint64           // all object ids, placement order
}

// PlacementConfig drives Place.
type PlacementConfig struct {
	Objects     int     // number of distinct objects
	Replication float64 // fraction of nodes hosting each object, e.g. 0.001 = 0.1%
	MinReplicas int     // floor on copies per object (>= 1; paper's worst case is 1)
	Seed        int64
}

// Place distributes objects over n nodes uniformly at random.
func Place(n int, cfg PlacementConfig) (*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("content: need positive node count, got %d", n)
	}
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("content: need positive object count, got %d", cfg.Objects)
	}
	if cfg.Replication < 0 || cfg.Replication > 1 {
		return nil, fmt.Errorf("content: replication ratio %v outside [0,1]", cfg.Replication)
	}
	minRep := cfg.MinReplicas
	if minRep < 1 {
		minRep = 1
	}
	copies := int(cfg.Replication*float64(n) + 0.5)
	if copies < minRep {
		copies = minRep
	}
	if copies > n {
		copies = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Store{
		n:        n,
		perNode:  make([][]uint64, n),
		replicas: make(map[uint64][]int32, cfg.Objects),
		objects:  make([]uint64, cfg.Objects),
	}
	hosts := make([]int32, 0, copies)
	for i := 0; i < cfg.Objects; i++ {
		id := ObjectID(cfg.Seed, i)
		s.objects[i] = id
		hosts = hosts[:0]
		// Sample `copies` distinct hosts. For small counts rejection
		// sampling is fastest; for large ones do a partial shuffle.
		if copies*4 < n {
			seen := make(map[int32]bool, copies)
			for len(hosts) < copies {
				h := int32(rng.Intn(n))
				if !seen[h] {
					seen[h] = true
					hosts = append(hosts, h)
				}
			}
		} else {
			perm := rng.Perm(n)
			for _, h := range perm[:copies] {
				hosts = append(hosts, int32(h))
			}
		}
		sorted := append([]int32(nil), hosts...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		s.replicas[id] = sorted
		for _, h := range sorted {
			s.perNode[h] = append(s.perNode[h], id)
		}
	}
	for _, objs := range s.perNode {
		sort.Slice(objs, func(a, b int) bool { return objs[a] < objs[b] })
	}
	return s, nil
}

// ObjectID derives the stable 64-bit identifier of the i-th object
// under a seed (a splitmix-style mix, so ids look hash-like).
func ObjectID(seed int64, i int) uint64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i) + 1
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// N returns the node count the store covers.
func (s *Store) N() int { return s.n }

// NumObjects returns the catalog size.
func (s *Store) NumObjects() int { return len(s.objects) }

// Objects returns all object ids in placement order. Callers must not
// modify the slice.
func (s *Store) Objects() []uint64 { return s.objects }

// NodeObjects returns the sorted object ids hosted by node u.
func (s *Store) NodeObjects(u int) []uint64 { return s.perNode[u] }

// Has reports whether node u hosts the object.
func (s *Store) Has(u int, obj uint64) bool {
	objs := s.perNode[u]
	i := sort.Search(len(objs), func(i int) bool { return objs[i] >= obj })
	return i < len(objs) && objs[i] == obj
}

// Replicas returns the sorted hosting nodes of an object (nil for an
// unknown id). Callers must not modify the slice.
func (s *Store) Replicas(obj uint64) []int32 { return s.replicas[obj] }

// ReplicaCount returns how many nodes host the object.
func (s *Store) ReplicaCount(obj uint64) int { return len(s.replicas[obj]) }

// RandomObject returns a uniformly random object id.
func (s *Store) RandomObject(rng *rand.Rand) uint64 {
	return s.objects[rng.Intn(len(s.objects))]
}

// QRPTable is the query-routing table a Gnutella v0.6 leaf uploads to
// its ultrapeers: a Bloom filter over the identifiers (keyword hashes)
// of the leaf's content. Ultrapeers forward a query to a leaf only
// when the leaf's table matches, which is what keeps leaf bandwidth
// low in the modern protocol.
type QRPTable struct {
	filter *bloom.Filter
}

// BuildQRPTable summarizes a node's content from the store.
func BuildQRPTable(s *Store, node int, bits, hashes int) *QRPTable {
	f := bloom.New(bits, hashes)
	for _, obj := range s.NodeObjects(node) {
		f.Add(obj)
	}
	return &QRPTable{filter: f}
}

// MayMatch reports whether the leaf may host the object (false
// positives possible, false negatives not).
func (q *QRPTable) MayMatch(obj uint64) bool { return q.filter.Contains(obj) }
