package content

import (
	"bytes"
	"testing"
)

func TestManifestGeometry(t *testing.T) {
	m, err := BuildManifest(42, 100, 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumChunks(); got != 4 {
		t.Fatalf("NumChunks = %d, want 4", got)
	}
	wantLens := []int{32, 32, 32, 4}
	for i, w := range wantLens {
		if got := m.ChunkLen(i); got != w {
			t.Fatalf("ChunkLen(%d) = %d, want %d", i, got, w)
		}
		if got := m.ChunkOffset(i); got != int64(i*32) {
			t.Fatalf("ChunkOffset(%d) = %d", i, got)
		}
	}
	if len(m.Hashes) != 4 {
		t.Fatalf("Hashes len = %d", len(m.Hashes))
	}
	// Exact multiple: no short tail chunk.
	m2, err := BuildManifest(42, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumChunks() != 2 || m2.ChunkLen(1) != 32 {
		t.Fatalf("exact multiple: chunks=%d tail=%d", m2.NumChunks(), m2.ChunkLen(1))
	}
	if _, err := BuildManifest(1, 0, 32); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestManifestVerifyChunk(t *testing.T) {
	const obj = uint64(0xdeadbeefcafe)
	m, err := BuildManifest(obj, 5000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumChunks(); i++ {
		data := ChunkPayload(obj, i, m.ChunkLen(i))
		if !m.VerifyChunk(i, data) {
			t.Fatalf("authentic chunk %d rejected", i)
		}
	}
	// Corruption, truncation, wrong index, out of range.
	good := ChunkPayload(obj, 0, m.ChunkLen(0))
	bad := append([]byte(nil), good...)
	bad[17] ^= 1
	if m.VerifyChunk(0, bad) {
		t.Fatal("corrupt chunk accepted")
	}
	if m.VerifyChunk(0, good[:100]) {
		t.Fatal("truncated chunk accepted")
	}
	if m.VerifyChunk(1, good) {
		t.Fatal("chunk accepted under wrong index")
	}
	if m.VerifyChunk(-1, good) || m.VerifyChunk(m.NumChunks(), good) {
		t.Fatal("out-of-range index accepted")
	}
}

func TestObjectPayloadMatchesChunks(t *testing.T) {
	const obj = uint64(7)
	whole := ObjectPayload(obj, 2500, 1000)
	if len(whole) != 2500 {
		t.Fatalf("ObjectPayload len = %d", len(whole))
	}
	m, _ := BuildManifest(obj, 2500, 1000)
	var assembled []byte
	for i := 0; i < m.NumChunks(); i++ {
		assembled = append(assembled, ChunkPayload(obj, i, m.ChunkLen(i))...)
	}
	if !bytes.Equal(whole, assembled) {
		t.Fatal("ObjectPayload differs from concatenated chunks")
	}
	// Payloads are deterministic and object-keyed.
	if !bytes.Equal(ChunkPayload(obj, 1, 100), ChunkPayload(obj, 1, 100)) {
		t.Fatal("payload not deterministic")
	}
	if bytes.Equal(ChunkPayload(obj, 1, 100), ChunkPayload(obj+1, 1, 100)) {
		t.Fatal("distinct objects share a payload")
	}
}
