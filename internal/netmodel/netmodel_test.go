package netmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// checkModelInvariants verifies symmetry, zero diagonal and
// non-negativity over sampled pairs.
func checkModelInvariants(t *testing.T, m Model) {
	t.Helper()
	n := m.N()
	step := n/37 + 1
	for u := 0; u < n; u += step {
		if d := m.Latency(u, u); d != 0 {
			t.Fatalf("Latency(%d,%d) = %v, want 0", u, u, d)
		}
		for v := 0; v < n; v += step {
			duv, dvu := m.Latency(u, v), m.Latency(v, u)
			if duv != dvu {
				t.Fatalf("asymmetric: d(%d,%d)=%v d(%d,%d)=%v", u, v, duv, v, u, dvu)
			}
			if duv < 0 || math.IsNaN(duv) {
				t.Fatalf("invalid latency d(%d,%d)=%v", u, v, duv)
			}
		}
	}
}

func TestEuclideanInvariants(t *testing.T) {
	checkModelInvariants(t, NewEuclidean(300, 1000, 42))
}

func TestEuclideanBounds(t *testing.T) {
	e := NewEuclidean(100, 50, 1)
	maxDist := 50 * math.Sqrt2
	for u := 0; u < 100; u++ {
		for v := 0; v < 100; v++ {
			if d := e.Latency(u, v); d > maxDist {
				t.Fatalf("distance %v exceeds plane diagonal %v", d, maxDist)
			}
		}
	}
}

func TestEuclideanDeterminism(t *testing.T) {
	a := NewEuclidean(50, 100, 7)
	b := NewEuclidean(50, 100, 7)
	for u := 0; u < 50; u++ {
		for v := 0; v < 50; v++ {
			if a.Latency(u, v) != b.Latency(u, v) {
				t.Fatal("same seed must give same latencies")
			}
		}
	}
	c := NewEuclidean(50, 100, 8)
	same := true
	for u := 0; u < 50 && same; u++ {
		if a.X[u] != c.X[u] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different coordinates")
	}
}

func TestEuclideanTriangleInequality(t *testing.T) {
	e := NewEuclidean(40, 100, 3)
	for u := 0; u < 40; u++ {
		for v := 0; v < 40; v++ {
			for w := 0; w < 40; w += 7 {
				if e.Latency(u, v) > e.Latency(u, w)+e.Latency(w, v)+1e-9 {
					t.Fatalf("triangle inequality violated at (%d,%d,%d)", u, v, w)
				}
			}
		}
	}
}

func TestEuclideanNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEuclidean(-1, 10, 1)
}

func TestTransitStubInvariants(t *testing.T) {
	checkModelInvariants(t, NewTransitStub(500, DefaultTransitStub()))
}

func TestTransitStubHierarchy(t *testing.T) {
	cfg := DefaultTransitStub()
	ts := NewTransitStub(2000, cfg)
	// Hosts in the same stub should be much closer than hosts in
	// different transit domains, on average.
	var sameStub, crossStub []float64
	for u := 0; u < 500; u++ {
		for v := u + 1; v < 500; v++ {
			d := ts.Latency(u, v)
			if ts.Stub(u) == ts.Stub(v) {
				sameStub = append(sameStub, d)
			} else {
				crossStub = append(crossStub, d)
			}
		}
	}
	if len(sameStub) == 0 || len(crossStub) == 0 {
		t.Fatal("test workload should produce both kinds of pairs")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(sameStub) >= mean(crossStub) {
		t.Fatalf("intra-stub mean %v should be below cross-stub mean %v",
			mean(sameStub), mean(crossStub))
	}
	// Intra-stub latency is bounded by two LAN hops.
	for _, d := range sameStub {
		if d > 2*cfg.LANLatency {
			t.Fatalf("intra-stub latency %v exceeds 2*LAN %v", d, 2*cfg.LANLatency)
		}
	}
}

func TestTransitStubBalancedStubs(t *testing.T) {
	cfg := DefaultTransitStub()
	n := 960
	ts := NewTransitStub(n, cfg)
	numStubs := cfg.TransitDomains * cfg.TransitPerDomain * cfg.StubsPerTransit
	counts := make([]int, numStubs)
	for h := 0; h < n; h++ {
		counts[ts.Stub(h)]++
	}
	want := n / numStubs
	for s, c := range counts {
		if c < want || c > want+1 {
			t.Fatalf("stub %d has %d hosts, want ~%d", s, c, want)
		}
	}
}

func TestTransitStubBadConfigPanics(t *testing.T) {
	cfg := DefaultTransitStub()
	cfg.TransitDomains = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTransitStub(10, cfg)
}

func TestPlanetLabInvariants(t *testing.T) {
	checkModelInvariants(t, NewPlanetLab(400, DefaultPlanetLab()))
}

func TestPlanetLabClusterStructure(t *testing.T) {
	cfg := DefaultPlanetLab()
	pl := NewPlanetLab(3000, cfg)
	var sameSite, crossSite []float64
	for u := 0; u < 300; u++ {
		for v := u + 1; v < 300; v++ {
			d := pl.Latency(u, v)
			if pl.Site(u) == pl.Site(v) {
				sameSite = append(sameSite, d)
			} else {
				crossSite = append(crossSite, d)
			}
		}
	}
	if len(sameSite) == 0 {
		t.Skip("no same-site pairs in sample")
	}
	for _, d := range sameSite {
		if d > 2*cfg.SiteLAN {
			t.Fatalf("same-site latency %v exceeds 2*LAN", d)
		}
	}
	// Cross-site latencies must be at least the intra-cluster base.
	for _, d := range crossSite {
		if d < cfg.IntraCluster {
			t.Fatalf("cross-site latency %v below intra-cluster base %v", d, cfg.IntraCluster)
		}
	}
}

func TestPlanetLabHeavyTail(t *testing.T) {
	pl := NewPlanetLab(1000, DefaultPlanetLab())
	var max, sum float64
	count := 0
	for u := 0; u < 200; u++ {
		for v := u + 1; v < 200; v++ {
			d := pl.Latency(u, v)
			sum += d
			count++
			if d > max {
				max = d
			}
		}
	}
	mean := sum / float64(count)
	if max < 2*mean {
		t.Fatalf("expected heavy tail: max %v should be well above mean %v", max, mean)
	}
}

func TestPlanetLabBadConfigPanics(t *testing.T) {
	cfg := DefaultPlanetLab()
	cfg.Clusters = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPlanetLab(10, cfg)
}

func TestMatrixValidation(t *testing.T) {
	if _, err := NewMatrix(2, []float64{0, 1, 1}); err == nil {
		t.Fatal("short matrix should fail")
	}
	if _, err := NewMatrix(2, []float64{0, 1, 2, 0}); err == nil {
		t.Fatal("asymmetric matrix should fail")
	}
	if _, err := NewMatrix(2, []float64{5, 1, 1, 0}); err == nil {
		t.Fatal("nonzero diagonal should fail")
	}
	m, err := NewMatrix(2, []float64{0, 3, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 2 || m.Latency(0, 1) != 3 || m.Latency(1, 0) != 3 {
		t.Fatal("matrix lookups wrong")
	}
}

func TestUniformModel(t *testing.T) {
	u := Uniform{Nodes: 5, Cost: 7}
	checkModelInvariants(t, u)
	if u.Latency(1, 2) != 7 {
		t.Fatal("uniform latency wrong")
	}
}

func TestModelsSymmetryProperty(t *testing.T) {
	models := []Model{
		NewEuclidean(64, 100, 11),
		NewTransitStub(64, DefaultTransitStub()),
		NewPlanetLab(64, DefaultPlanetLab()),
	}
	f := func(a, b uint8) bool {
		u, v := int(a)%64, int(b)%64
		for _, m := range models {
			if m.Latency(u, v) != m.Latency(v, u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
