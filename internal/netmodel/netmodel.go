// Package netmodel implements the physical-network latency models the
// paper uses to validate Makalu (§3.1): a synthetic Euclidean plane, a
// GT-ITM-style transit-stub hierarchy and a PlanetLab-like RTT matrix.
//
// All models are deterministic given their seed, symmetric
// (Latency(u,v) == Latency(v,u)) and cheap to query, so the overlay
// algorithms can probe arbitrary pairs without precomputing an O(n²)
// matrix.
package netmodel

import (
	"fmt"
	"math"
	"math/rand"
)

// Model supplies pairwise latency between nodes of a simulated
// physical network. Latencies are in abstract milliseconds.
type Model interface {
	// N returns the number of nodes the model covers.
	N() int
	// Latency returns the symmetric latency between u and v.
	// Latency(u, u) is 0.
	Latency(u, v int) float64
}

// Euclidean places nodes uniformly at random on a square plane; the
// latency between two nodes is their Euclidean distance. This is the
// paper's first synthetic model.
type Euclidean struct {
	X, Y []float64

	// p mirrors the coordinates interleaved as [x0,y0, x1,y1, ...].
	// Latency is the innermost random-access call of overlay
	// construction; with split X/Y arrays each query costs two cache
	// misses per endpoint, with the interleaved pair exactly one.
	// Models built literally (&Euclidean{X: ..., Y: ...}, some tests
	// do) have no mirror and fall back to the split arrays.
	p []float64
}

// NewEuclidean creates an Euclidean model of n nodes on a side×side
// plane using the given seed.
func NewEuclidean(n int, side float64, seed int64) *Euclidean {
	if n < 0 {
		panic("netmodel: negative node count")
	}
	rng := rand.New(rand.NewSource(seed))
	e := &Euclidean{X: make([]float64, n), Y: make([]float64, n), p: make([]float64, 2*n)}
	for i := 0; i < n; i++ {
		e.X[i] = rng.Float64() * side
		e.Y[i] = rng.Float64() * side
		e.p[2*i] = e.X[i]
		e.p[2*i+1] = e.Y[i]
	}
	return e
}

// N returns the number of nodes.
func (e *Euclidean) N() int { return len(e.X) }

// Latency returns the Euclidean distance between u and v.
func (e *Euclidean) Latency(u, v int) float64 {
	if p := e.p; p != nil {
		ux, uy := p[2*u], p[2*u+1]
		vx, vy := p[2*v], p[2*v+1]
		dx, dy := ux-vx, uy-vy
		return math.Sqrt(dx*dx + dy*dy)
	}
	dx := e.X[u] - e.X[v]
	dy := e.Y[u] - e.Y[v]
	return math.Sqrt(dx*dx + dy*dy)
}

// TransitStubConfig parameterizes the GT-ITM-style hierarchy.
type TransitStubConfig struct {
	TransitDomains   int     // number of transit (backbone) domains
	TransitPerDomain int     // transit routers per transit domain
	StubsPerTransit  int     // stub domains hanging off each transit router
	LANLatency       float64 // max latency from a host to its stub router
	StubUplink       float64 // mean latency of the stub→transit uplink
	TransitSide      float64 // side of the plane transit routers live on
	Seed             int64
}

// DefaultTransitStub returns parameters that yield realistic
// wide-area latencies (LAN ≈ 1–5 ms, uplinks ≈ 10–30 ms, backbone up
// to ~120 ms).
func DefaultTransitStub() TransitStubConfig {
	return TransitStubConfig{
		TransitDomains:   4,
		TransitPerDomain: 4,
		StubsPerTransit:  3,
		LANLatency:       5,
		StubUplink:       20,
		TransitSide:      100,
		Seed:             1,
	}
}

// TransitStub is a closed-form transit-stub latency model: every host
// belongs to a stub domain attached to a transit router; transit
// routers are placed on a plane whose Euclidean distances form the
// backbone latency. The latency between two hosts is
//
//	local(u) + uplink(stub(u)) + backbone + uplink(stub(v)) + local(v)
//
// with the intra-stub case collapsing to local(u)+local(v). This
// reproduces the hierarchical latency structure of GT-ITM topologies
// without shelling out to the original generator.
type TransitStub struct {
	cfg       TransitStubConfig
	n         int
	stubOf    []int32   // host -> stub domain
	local     []float64 // host -> latency to its stub router
	transitOf []int32   // stub -> transit router
	uplink    []float64 // stub -> uplink latency
	tx, ty    []float64 // transit router coordinates
}

// NewTransitStub builds a transit-stub model covering n hosts. Hosts
// are assigned to stub domains round-robin so domain sizes are
// balanced.
func NewTransitStub(n int, cfg TransitStubConfig) *TransitStub {
	if cfg.TransitDomains <= 0 || cfg.TransitPerDomain <= 0 || cfg.StubsPerTransit <= 0 {
		panic("netmodel: transit-stub config must have positive counts")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numTransit := cfg.TransitDomains * cfg.TransitPerDomain
	numStubs := numTransit * cfg.StubsPerTransit
	ts := &TransitStub{
		cfg:       cfg,
		n:         n,
		stubOf:    make([]int32, n),
		local:     make([]float64, n),
		transitOf: make([]int32, numStubs),
		uplink:    make([]float64, numStubs),
		tx:        make([]float64, numTransit),
		ty:        make([]float64, numTransit),
	}
	// Transit routers cluster per domain: each domain gets a random
	// center, routers scatter near it.
	for d := 0; d < cfg.TransitDomains; d++ {
		cx := rng.Float64() * cfg.TransitSide
		cy := rng.Float64() * cfg.TransitSide
		for r := 0; r < cfg.TransitPerDomain; r++ {
			i := d*cfg.TransitPerDomain + r
			ts.tx[i] = cx + (rng.Float64()-0.5)*cfg.TransitSide/5
			ts.ty[i] = cy + (rng.Float64()-0.5)*cfg.TransitSide/5
		}
	}
	for s := 0; s < numStubs; s++ {
		ts.transitOf[s] = int32(s / cfg.StubsPerTransit)
		ts.uplink[s] = cfg.StubUplink * (0.5 + rng.Float64())
	}
	for h := 0; h < n; h++ {
		ts.stubOf[h] = int32(h % numStubs)
		ts.local[h] = cfg.LANLatency * rng.Float64()
	}
	return ts
}

// N returns the number of hosts.
func (ts *TransitStub) N() int { return ts.n }

// Stub returns the stub-domain id of host u (exported for tests and
// workload generators that want locality-aware placement).
func (ts *TransitStub) Stub(u int) int { return int(ts.stubOf[u]) }

// Latency returns the hierarchical latency between hosts u and v.
func (ts *TransitStub) Latency(u, v int) float64 {
	if u == v {
		return 0
	}
	su, sv := ts.stubOf[u], ts.stubOf[v]
	if su == sv {
		return ts.local[u] + ts.local[v]
	}
	tu, tv := ts.transitOf[su], ts.transitOf[sv]
	backbone := 0.0
	if tu != tv {
		dx := ts.tx[tu] - ts.tx[tv]
		dy := ts.ty[tu] - ts.ty[tv]
		backbone = math.Sqrt(dx*dx + dy*dy)
	}
	// Group the terms so the sum is bit-identical in both directions.
	return (ts.local[u] + ts.local[v]) + (ts.uplink[su] + ts.uplink[sv]) + backbone
}

// PlanetLabConfig parameterizes the synthetic PlanetLab-style matrix.
type PlanetLabConfig struct {
	Sites        int     // number of measurement sites (paper: ~200)
	Clusters     int     // geographic clusters (continents)
	IntraCluster float64 // mean RTT between sites in a cluster
	InterCluster float64 // mean RTT between sites in different clusters
	SiteLAN      float64 // max node-to-site latency
	JitterFrac   float64 // relative jitter applied per site pair
	Seed         int64
}

// DefaultPlanetLab mirrors the gross statistics of the Stribling
// all-pairs ping dataset: ~200 sites in a handful of continental
// clusters, intra-continent RTTs of tens of ms and intercontinental
// RTTs of 100–300 ms with heavy jitter.
func DefaultPlanetLab() PlanetLabConfig {
	return PlanetLabConfig{
		Sites:        200,
		Clusters:     5,
		IntraCluster: 30,
		InterCluster: 160,
		SiteLAN:      3,
		JitterFrac:   0.4,
		Seed:         1,
	}
}

// PlanetLab synthesizes an all-pairs RTT matrix over a fixed set of
// sites and expands it to n nodes by assigning each node to a site —
// the same expansion the paper applies to the measured PlanetLab
// matrix. Site-to-site RTTs are drawn once; node latency adds a small
// LAN component on each side.
type PlanetLab struct {
	cfg    PlanetLabConfig
	siteOf []int32
	lan    []float64
	rtt    []float64 // sites × sites, row-major
	sites  int
}

// NewPlanetLab builds the synthetic matrix and assigns n nodes to
// sites uniformly at random.
func NewPlanetLab(n int, cfg PlanetLabConfig) *PlanetLab {
	if cfg.Sites <= 0 || cfg.Clusters <= 0 {
		panic("netmodel: planetlab config must have positive sites and clusters")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pl := &PlanetLab{
		cfg:    cfg,
		siteOf: make([]int32, n),
		lan:    make([]float64, n),
		rtt:    make([]float64, cfg.Sites*cfg.Sites),
		sites:  cfg.Sites,
	}
	cluster := make([]int, cfg.Sites)
	for s := range cluster {
		cluster[s] = rng.Intn(cfg.Clusters)
	}
	for a := 0; a < cfg.Sites; a++ {
		for b := a + 1; b < cfg.Sites; b++ {
			base := cfg.InterCluster
			if cluster[a] == cluster[b] {
				base = cfg.IntraCluster
			}
			// Heavy-ish tail: exponential-like multiplier so a few
			// pairs are much slower, as in real ping data.
			mult := 1 + cfg.JitterFrac*rng.ExpFloat64()
			v := base * mult
			pl.rtt[a*cfg.Sites+b] = v
			pl.rtt[b*cfg.Sites+a] = v
		}
	}
	for i := 0; i < n; i++ {
		pl.siteOf[i] = int32(rng.Intn(cfg.Sites))
		pl.lan[i] = rng.Float64() * cfg.SiteLAN
	}
	return pl
}

// N returns the number of nodes.
func (pl *PlanetLab) N() int { return len(pl.siteOf) }

// Site returns the site id node u is attached to.
func (pl *PlanetLab) Site(u int) int { return int(pl.siteOf[u]) }

// Latency returns the RTT-derived latency between nodes u and v.
func (pl *PlanetLab) Latency(u, v int) float64 {
	if u == v {
		return 0
	}
	su, sv := pl.siteOf[u], pl.siteOf[v]
	if su == sv {
		return pl.lan[u] + pl.lan[v]
	}
	// Group the LAN terms so the sum is bit-identical in both directions.
	return (pl.lan[u] + pl.lan[v]) + pl.rtt[int(su)*pl.sites+int(sv)]
}

// Matrix is an explicit latency matrix, mainly for tests and tiny
// hand-built scenarios.
type Matrix struct {
	n int
	d []float64
}

// NewMatrix wraps a dense row-major n×n latency matrix. It validates
// symmetry and zero diagonal.
func NewMatrix(n int, d []float64) (*Matrix, error) {
	if len(d) != n*n {
		return nil, fmt.Errorf("netmodel: matrix needs %d entries, got %d", n*n, len(d))
	}
	for i := 0; i < n; i++ {
		if d[i*n+i] != 0 {
			return nil, fmt.Errorf("netmodel: diagonal entry %d is %v, want 0", i, d[i*n+i])
		}
		for j := i + 1; j < n; j++ {
			if d[i*n+j] != d[j*n+i] {
				return nil, fmt.Errorf("netmodel: matrix asymmetric at (%d,%d)", i, j)
			}
		}
	}
	return &Matrix{n: n, d: d}, nil
}

// N returns the matrix dimension.
func (m *Matrix) N() int { return m.n }

// Latency returns the stored latency.
func (m *Matrix) Latency(u, v int) float64 { return m.d[u*m.n+v] }

// Uniform is a degenerate model where every distinct pair has the same
// latency. It isolates the connectivity term of the Makalu rating
// function in ablation experiments (beta becomes irrelevant).
type Uniform struct {
	Nodes int
	Cost  float64
}

// N returns the number of nodes.
func (u Uniform) N() int { return u.Nodes }

// Latency returns Cost for distinct nodes and 0 on the diagonal.
func (u Uniform) Latency(a, b int) float64 {
	if a == b {
		return 0
	}
	return u.Cost
}
