package topology

import (
	"math"
	"math/rand"

	"makalu/internal/graph"
)

// PowerLawConfig parameterizes the Gnutella v0.4 style power-law
// topology. Defaults follow the measurement studies the paper cites
// (Saroiu et al., Ripeanu et al.): degree exponent ≈ 2.3 with a short
// minimum degree and a cutoff around sqrt(n).
type PowerLawConfig struct {
	Exponent  float64 // power-law exponent tau (> 1)
	MinDegree int     // smallest node degree
	MaxDegree int     // largest node degree; 0 means ~2*sqrt(n)
	Connect   bool    // patch components together afterwards
	Seed      int64
}

// DefaultPowerLaw returns the Gnutella v0.4 parameters used throughout
// the paper's comparisons.
func DefaultPowerLaw() PowerLawConfig {
	return PowerLawConfig{Exponent: 2.3, MinDegree: 1, Connect: true, Seed: 1}
}

// PowerLaw builds a power-law random graph on n nodes with the
// configuration model: degrees are drawn from a discrete power law,
// half-edge stubs are shuffled and paired, and self-loops/duplicate
// edges are discarded (which perturbs high degrees only slightly).
// When cfg.Connect is set, stray components are patched into the
// giant component with single random edges, matching how Gnutella
// bootstrap servers keep the network nominally connected.
func PowerLaw(n int, cfg PowerLawConfig) *graph.Mutable {
	if cfg.Exponent <= 1 {
		panic("topology: power-law exponent must be > 1")
	}
	if cfg.MinDegree < 1 {
		panic("topology: power-law min degree must be >= 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxDeg := cfg.MaxDegree
	if maxDeg == 0 {
		maxDeg = int(2 * math.Sqrt(float64(n)))
	}
	if maxDeg >= n {
		maxDeg = n - 1
	}
	if maxDeg < cfg.MinDegree {
		maxDeg = cfg.MinDegree
	}
	degrees := samplePowerLawDegrees(rng, n, cfg.Exponent, cfg.MinDegree, maxDeg)

	// Configuration model: one stub per degree unit.
	total := 0
	for _, d := range degrees {
		total += d
	}
	if total%2 == 1 {
		// Make the stub count even by bumping a random node.
		degrees[rng.Intn(n)]++
		total++
	}
	stubs := make([]int32, 0, total)
	for u, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(u))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	g := graph.NewMutable(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		g.AddEdge(int(stubs[i]), int(stubs[i+1])) // silently drops conflicts
	}
	if cfg.Connect {
		EnsureConnected(g, rng)
	}
	return g
}

// samplePowerLawDegrees draws n degrees from P(k) proportional to
// k^-tau over [min, max] by inverting the discrete CDF.
func samplePowerLawDegrees(rng *rand.Rand, n int, tau float64, min, max int) []int {
	weights := make([]float64, max-min+1)
	cum := 0.0
	for k := min; k <= max; k++ {
		cum += math.Pow(float64(k), -tau)
		weights[k-min] = cum
	}
	degrees := make([]int, n)
	for i := range degrees {
		r := rng.Float64() * cum
		// Binary search the CDF.
		lo, hi := 0, len(weights)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if weights[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		degrees[i] = min + lo
	}
	return degrees
}
