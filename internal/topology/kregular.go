package topology

import (
	"fmt"
	"math/rand"

	"makalu/internal/graph"
)

// KRegular generates a k-regular random (simple) graph on n nodes with
// the pairing/configuration model plus double-edge-swap repair, in the
// spirit of the Kim–Vu generator the paper uses: pair random half-edge
// stubs, then fix the handful of self-loops and duplicate pairs by
// swapping them against random existing edges. n*k must be even and
// k < n. The result is a uniform-ish k-regular graph, which the paper
// treats as the theoretically optimal expander baseline.
func KRegular(n, k int, seed int64) (*graph.Mutable, error) {
	if k < 0 || n < 0 {
		return nil, fmt.Errorf("topology: negative parameters n=%d k=%d", n, k)
	}
	if k >= n && n > 0 {
		return nil, fmt.Errorf("topology: k=%d must be < n=%d", k, n)
	}
	if n*k%2 == 1 {
		return nil, fmt.Errorf("topology: n*k must be even, got n=%d k=%d", n, k)
	}
	rng := rand.New(rand.NewSource(seed))

	const maxRestarts = 50
	for attempt := 0; attempt < maxRestarts; attempt++ {
		g, ok := tryPairing(n, k, rng)
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: failed to build %d-regular graph on %d nodes", k, n)
}

// tryPairing makes one pairing attempt followed by swap repair.
func tryPairing(n, k int, rng *rand.Rand) (*graph.Mutable, bool) {
	stubs := make([]int32, 0, n*k)
	for u := 0; u < n; u++ {
		for i := 0; i < k; i++ {
			stubs = append(stubs, int32(u))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	g := graph.NewMutable(n)
	type pair struct{ u, v int32 }
	var conflicts []pair
	for i := 0; i+1 < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v || !g.AddEdge(int(u), int(v)) {
			conflicts = append(conflicts, pair{u, v})
		}
	}

	// Repair each conflicted stub pair with a double-edge swap: pick a
	// random existing edge (x, y) and replace it with (u, x), (v, y)
	// when both are insertable. This preserves all degrees.
	for _, c := range conflicts {
		fixed := false
		for try := 0; try < 200 && !fixed; try++ {
			es := g.M()
			if es == 0 {
				break
			}
			// Pick a random edge by picking a random endpoint weighted
			// by degree: choose random stub owner then random neighbor.
			x := int32(rng.Intn(n))
			nb := g.Neighbors(int(x))
			if len(nb) == 0 {
				continue
			}
			y := nb[rng.Intn(len(nb))]
			u, v := c.u, c.v
			if x == u || x == v || y == u || y == v {
				continue
			}
			if g.HasEdge(int(u), int(x)) || g.HasEdge(int(v), int(y)) {
				continue
			}
			g.RemoveEdge(int(x), int(y))
			g.AddEdge(int(u), int(x))
			g.AddEdge(int(v), int(y))
			fixed = true
		}
		if !fixed {
			return nil, false
		}
	}

	// Verify regularity; a failed repair chain would break it.
	for u := 0; u < n; u++ {
		if g.Degree(u) != k {
			return nil, false
		}
	}
	return g, true
}
