package topology

import (
	"math/rand"

	"makalu/internal/graph"
)

// TwoTierConfig parameterizes the modern Gnutella v0.6 ultrapeer/leaf
// topology. Defaults follow Stutzbach et al. and Rasti et al. as
// cited by the paper: roughly 15% of peers are ultrapeers, ultrapeers
// hold ~30 connections to other ultrapeers, and each leaf attaches to
// ~3 ultrapeers.
type TwoTierConfig struct {
	UltraFraction float64 // fraction of nodes promoted to ultrapeer
	UltraDegree   int     // target ultrapeer-to-ultrapeer connections
	// LeafDegree is the MEAN number of ultrapeers each leaf attaches
	// to. Crawl studies report a spread down to a single connection,
	// so per-leaf degrees are drawn uniformly from [1, 2*LeafDegree-1]
	// — which is also what gives the two-tier topology its measured
	// near-1 algebraic connectivity (pendant leaves bound λ₁ ≤ 1).
	LeafDegree int
	Seed       int64
}

// DefaultTwoTier returns the Gnutella v0.6 parameters used in the
// paper's comparisons.
func DefaultTwoTier() TwoTierConfig {
	return TwoTierConfig{UltraFraction: 0.15, UltraDegree: 30, LeafDegree: 3, Seed: 1}
}

// TwoTier is a generated two-tier topology: the overlay graph plus
// the role of every node, which the v0.6 flooding search needs (leaves
// do not forward queries).
type TwoTier struct {
	Graph      *graph.Mutable
	IsUltra    []bool
	Ultras     []int32 // node ids of the ultrapeers
	LeafCount  int
	UltraCount int
}

// NewTwoTier builds a two-tier overlay on n nodes. Ultrapeers are the
// first ceil(n*UltraFraction) node ids (callers that need randomized
// role placement can permute ids); they form an approximately
// UltraDegree-regular random graph, and every leaf picks LeafDegree
// distinct random ultrapeers. The ultrapeer core is patched to a
// single component.
func NewTwoTier(n int, cfg TwoTierConfig) *TwoTier {
	if cfg.UltraFraction <= 0 || cfg.UltraFraction > 1 {
		panic("topology: ultra fraction must be in (0, 1]")
	}
	if cfg.UltraDegree < 1 || cfg.LeafDegree < 1 {
		panic("topology: degrees must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	numUltra := int(float64(n)*cfg.UltraFraction + 0.999999)
	if numUltra < 1 {
		numUltra = 1
	}
	if numUltra > n {
		numUltra = n
	}
	tt := &TwoTier{
		Graph:      graph.NewMutable(n),
		IsUltra:    make([]bool, n),
		Ultras:     make([]int32, numUltra),
		UltraCount: numUltra,
		LeafCount:  n - numUltra,
	}
	for i := 0; i < numUltra; i++ {
		tt.IsUltra[i] = true
		tt.Ultras[i] = int32(i)
	}

	// Ultrapeer core: each ultrapeer initiates connections to random
	// ultrapeers until it reaches the target degree or runs out of
	// candidates. Real ultrapeers do the same: keep dialing peers from
	// their host cache until their slot budget is full.
	ultraDeg := cfg.UltraDegree
	if ultraDeg >= numUltra {
		ultraDeg = numUltra - 1
	}
	if ultraDeg > 0 {
		for u := 0; u < numUltra; u++ {
			attempts := 0
			for tt.Graph.Degree(u) < ultraDeg && attempts < 20*ultraDeg {
				v := rng.Intn(numUltra)
				if v != u {
					tt.Graph.AddEdge(u, v)
				}
				attempts++
			}
		}
		// Patch the core into one component before attaching leaves.
		connectWithin(tt.Graph, numUltra, rng)
	}

	// Leaves attach to a variable number of distinct ultrapeers:
	// uniform in [1, 2*LeafDegree-1], mean LeafDegree.
	maxLeafDeg := 2*cfg.LeafDegree - 1
	scratch := make([]int32, 0, maxLeafDeg)
	for leaf := numUltra; leaf < n; leaf++ {
		leafDeg := 1 + rng.Intn(maxLeafDeg)
		if leafDeg > numUltra {
			leafDeg = numUltra
		}
		scratch = sampleDistinct(rng, numUltra, leafDeg, nil, scratch)
		for _, up := range scratch {
			tt.Graph.AddEdge(leaf, int(up))
		}
	}
	return tt
}

// connectWithin patches components among nodes [0, limit) into one,
// leaving nodes >= limit untouched. Used for the ultrapeer core.
func connectWithin(g *graph.Mutable, limit int, rng *rand.Rand) {
	if limit <= 1 {
		return
	}
	// BFS over the first `limit` nodes only.
	label := make([]int32, limit)
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	var compReps []int32
	for s := 0; s < limit; s++ {
		if label[s] != -1 {
			continue
		}
		id := int32(len(compReps))
		compReps = append(compReps, int32(s))
		label[s] = id
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(int(u)) {
				if int(v) < limit && label[v] == -1 {
					label[v] = id
					queue = append(queue, v)
				}
			}
		}
	}
	for i := 1; i < len(compReps); i++ {
		g.AddEdge(int(compReps[0]), int(compReps[i]))
	}
}
