package topology

import (
	"math"
	"math/rand"
	"testing"

	"makalu/internal/graph"
)

func TestEnsureConnectedPatchesFragments(t *testing.T) {
	g := graph.NewMutable(9)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	// 6, 7, 8 isolated: 6 components total.
	rng := rand.New(rand.NewSource(1))
	added := EnsureConnected(g, rng)
	if added != 5 {
		t.Fatalf("added %d edges, want 5", added)
	}
	if !g.Freeze(nil).IsConnected() {
		t.Fatal("graph should be connected afterwards")
	}
}

func TestEnsureConnectedNoOpWhenConnected(t *testing.T) {
	g := graph.NewMutable(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if added := EnsureConnected(g, rand.New(rand.NewSource(1))); added != 0 {
		t.Fatalf("added %d edges to a connected graph", added)
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	out := sampleDistinct(rng, 10, 5, []int32{0, 1, 2}, nil)
	if len(out) != 5 {
		t.Fatalf("got %d samples", len(out))
	}
	seen := map[int32]bool{}
	for _, v := range out {
		if v < 3 {
			t.Fatalf("taboo value %d sampled", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestPowerLawBasicShape(t *testing.T) {
	cfg := DefaultPowerLaw()
	g := PowerLaw(3000, cfg)
	f := g.Freeze(nil)
	if !f.IsConnected() {
		t.Fatal("Connect=true should yield a connected graph")
	}
	// Power-law: many low-degree nodes, a few hubs.
	hist := f.DegreeHistogram()
	low := 0
	for d := 1; d <= 3 && d < len(hist); d++ {
		low += hist[d]
	}
	if float64(low) < 0.6*3000 {
		t.Fatalf("power-law graph should be dominated by low-degree nodes, got %d/3000", low)
	}
	if f.MaxDegree() < 10 {
		t.Fatalf("expected hubs, max degree = %d", f.MaxDegree())
	}
	// Skew check: max degree far above mean.
	if float64(f.MaxDegree()) < 4*f.MeanDegree() {
		t.Fatalf("max degree %d not skewed vs mean %.2f", f.MaxDegree(), f.MeanDegree())
	}
}

func TestPowerLawDeterminism(t *testing.T) {
	cfg := DefaultPowerLaw()
	a := PowerLaw(500, cfg).Freeze(nil)
	b := PowerLaw(500, cfg).Freeze(nil)
	if a.M() != b.M() {
		t.Fatalf("same seed different edge counts: %d vs %d", a.M(), b.M())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed should give identical graphs")
		}
	}
}

func TestPowerLawUnconnectedOption(t *testing.T) {
	cfg := DefaultPowerLaw()
	cfg.Connect = false
	g := PowerLaw(2000, cfg)
	// With min degree 1 the configuration model essentially always
	// leaves fragments at this size.
	if g.Freeze(nil).IsConnected() {
		t.Log("unexpectedly connected; acceptable but rare")
	}
}

func TestPowerLawValidation(t *testing.T) {
	for _, cfg := range []PowerLawConfig{
		{Exponent: 1.0, MinDegree: 1},
		{Exponent: 2.3, MinDegree: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v should panic", cfg)
				}
			}()
			PowerLaw(10, cfg)
		}()
	}
}

func TestPowerLawRespectsMaxDegree(t *testing.T) {
	cfg := DefaultPowerLaw()
	cfg.MaxDegree = 8
	cfg.Connect = false
	g := PowerLaw(1000, cfg).Freeze(nil)
	if g.MaxDegree() > 8 {
		t.Fatalf("max degree %d exceeds configured cap 8", g.MaxDegree())
	}
}

func TestTwoTierStructure(t *testing.T) {
	cfg := DefaultTwoTier()
	tt := NewTwoTier(2000, cfg)
	if tt.UltraCount != 300 {
		t.Fatalf("ultra count = %d, want 300", tt.UltraCount)
	}
	if tt.LeafCount != 1700 {
		t.Fatalf("leaf count = %d", tt.LeafCount)
	}
	f := tt.Graph.Freeze(nil)
	if !f.IsConnected() {
		t.Fatal("two-tier graph should be connected")
	}
	// Leaves connect only to ultrapeers, with degree in
	// [1, 2*LeafDegree-1] and mean ≈ LeafDegree.
	leafDegSum := 0
	for leaf := tt.UltraCount; leaf < 2000; leaf++ {
		d := f.Degree(leaf)
		if d < 1 || d > 2*cfg.LeafDegree-1 {
			t.Fatalf("leaf %d degree = %d outside [1, %d]", leaf, d, 2*cfg.LeafDegree-1)
		}
		leafDegSum += d
		for _, v := range f.Neighbors(leaf) {
			if !tt.IsUltra[v] {
				t.Fatalf("leaf %d connected to leaf %d", leaf, v)
			}
		}
	}
	meanLeafDeg := float64(leafDegSum) / float64(tt.LeafCount)
	if math.Abs(meanLeafDeg-float64(cfg.LeafDegree)) > 0.3 {
		t.Fatalf("mean leaf degree %.2f, want ≈ %d", meanLeafDeg, cfg.LeafDegree)
	}
	// Ultrapeers should be near the target ultra degree plus leaf load.
	var ultraUltraDeg float64
	for _, u := range tt.Ultras {
		uu := 0
		for _, v := range f.Neighbors(int(u)) {
			if tt.IsUltra[v] {
				uu++
			}
		}
		ultraUltraDeg += float64(uu)
	}
	ultraUltraDeg /= float64(tt.UltraCount)
	if ultraUltraDeg < float64(cfg.UltraDegree)*0.9 {
		t.Fatalf("mean ultra-ultra degree %.1f below target %d", ultraUltraDeg, cfg.UltraDegree)
	}
}

func TestTwoTierSmallNetwork(t *testing.T) {
	tt := NewTwoTier(10, TwoTierConfig{UltraFraction: 0.3, UltraDegree: 5, LeafDegree: 2, Seed: 3})
	if tt.UltraCount < 1 {
		t.Fatal("need at least one ultrapeer")
	}
	if !tt.Graph.Freeze(nil).IsConnected() {
		t.Fatal("small two-tier should be connected")
	}
}

func TestTwoTierAllUltra(t *testing.T) {
	tt := NewTwoTier(20, TwoTierConfig{UltraFraction: 1, UltraDegree: 4, LeafDegree: 1, Seed: 1})
	if tt.UltraCount != 20 || tt.LeafCount != 0 {
		t.Fatalf("counts: %d ultra %d leaf", tt.UltraCount, tt.LeafCount)
	}
}

func TestTwoTierValidation(t *testing.T) {
	for _, cfg := range []TwoTierConfig{
		{UltraFraction: 0, UltraDegree: 3, LeafDegree: 1},
		{UltraFraction: 0.5, UltraDegree: 0, LeafDegree: 1},
		{UltraFraction: 0.5, UltraDegree: 3, LeafDegree: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("config %+v should panic", cfg)
				}
			}()
			NewTwoTier(10, cfg)
		}()
	}
}

func TestKRegularExact(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{100, 4}, {101, 4}, {50, 9} /* odd k, even n */, {200, 10},
	} {
		g, err := KRegular(tc.n, tc.k, 5)
		if err != nil {
			t.Fatalf("KRegular(%d,%d): %v", tc.n, tc.k, err)
		}
		for u := 0; u < tc.n; u++ {
			if g.Degree(u) != tc.k {
				t.Fatalf("n=%d k=%d: node %d degree %d", tc.n, tc.k, u, g.Degree(u))
			}
		}
	}
}

func TestKRegularConnectedAndCompact(t *testing.T) {
	g, err := KRegular(1000, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := g.Freeze(nil)
	if !f.IsConnected() {
		t.Fatal("random 10-regular graph on 1000 nodes should be connected")
	}
	// Random regular graphs have diameter ~ log_k-1(n); allow slack.
	if d := f.HopDiameter(); d > 8 {
		t.Fatalf("diameter %d too large for an expander", d)
	}
}

func TestKRegularErrors(t *testing.T) {
	if _, err := KRegular(5, 5, 1); err == nil {
		t.Fatal("k >= n should fail")
	}
	if _, err := KRegular(5, 3, 1); err == nil {
		t.Fatal("odd n*k should fail")
	}
	if _, err := KRegular(-1, 2, 1); err == nil {
		t.Fatal("negative n should fail")
	}
}

func TestKRegularZero(t *testing.T) {
	g, err := KRegular(6, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 {
		t.Fatal("0-regular graph should have no edges")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 300, 9)
	if g.M() != 300 {
		t.Fatalf("M = %d, want 300", g.M())
	}
	// Clamping.
	g2 := ErdosRenyi(5, 100, 9)
	if g2.M() != 10 {
		t.Fatalf("clamped M = %d, want 10", g2.M())
	}
}

func TestDegreeCapacities(t *testing.T) {
	caps := DegreeCapacities(10000, 6, 16, 3)
	sum := 0
	for _, c := range caps {
		if c < 6 || c > 16 {
			t.Fatalf("capacity %d out of range", c)
		}
		sum += c
	}
	mean := float64(sum) / float64(len(caps))
	if math.Abs(mean-11) > 0.2 {
		t.Fatalf("mean capacity %.2f, want ~11", mean)
	}
}

func TestDegreeCapacitiesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DegreeCapacities(5, 3, 2, 1)
}

func TestDefaultCapacitiesMeanMatchesPaper(t *testing.T) {
	caps := DefaultCapacities(50000, 4)
	sum := 0
	for _, c := range caps {
		sum += c
	}
	mean := float64(sum) / float64(len(caps))
	if mean < 10 || mean > 12 {
		t.Fatalf("mean capacity %.2f outside the paper's 10-12 band", mean)
	}
}

// Structural comparison the paper leans on: the two-tier topology has
// far better connectivity than the v0.4 power law at equal size.
func TestTwoTierBeatsPowerLawDiameter(t *testing.T) {
	n := 2000
	pl := PowerLaw(n, DefaultPowerLaw()).Freeze(nil)
	tt := NewTwoTier(n, DefaultTwoTier()).Graph.Freeze(nil)
	dPL := pl.HopDiameter()
	dTT := tt.HopDiameter()
	if dTT >= dPL {
		t.Fatalf("two-tier diameter %d should beat power-law %d", dTT, dPL)
	}
}
