// Package topology generates the baseline overlay topologies the
// paper compares Makalu against (§3.1): the Gnutella v0.4 power-law
// graph, the Gnutella v0.6 two-tier ultrapeer/leaf graph, the
// k-regular random graph used as a theoretical optimum, and an
// Erdős–Rényi control. Generator parameters default to the values the
// paper extracts from published Gnutella measurement studies.
package topology

import (
	"math/rand"

	"makalu/internal/graph"
)

// EnsureConnected adds the minimum number of random inter-component
// edges needed to make g a single connected component: every
// non-giant component gets one edge from a random member to a random
// member of the component accumulated so far. It returns the number
// of edges added. Configuration-model generators use it so that path
// and search experiments are not dominated by stray fragments.
func EnsureConnected(g *graph.Mutable, rng *rand.Rand) int {
	frozen := g.Freeze(nil)
	labels, sizes := frozen.Components()
	if len(sizes) <= 1 {
		return 0
	}
	// Collect the members of each component.
	members := make([][]int32, len(sizes))
	for i := range members {
		members[i] = make([]int32, 0, sizes[i])
	}
	for u, l := range labels {
		members[l] = append(members[l], int32(u))
	}
	// Attach every other component to the largest one (or, on edge
	// rejection because the chosen pair is already linked, retry with
	// a different pair).
	giant := 0
	for i, s := range sizes {
		if s > sizes[giant] {
			giant = i
		}
	}
	added := 0
	attached := members[giant]
	for i := range members {
		if i == giant {
			continue
		}
		for {
			u := int(members[i][rng.Intn(len(members[i]))])
			v := int(attached[rng.Intn(len(attached))])
			if g.AddEdge(u, v) {
				added++
				break
			}
		}
		attached = append(attached, members[i]...)
	}
	return added
}

// sampleDistinct fills out with k distinct values drawn uniformly from
// [0, n) excluding the values in taboo. It panics if k exceeds the
// number of eligible values. The taboo set is expected to be tiny
// (existing neighbor lists), so membership is a linear scan.
func sampleDistinct(rng *rand.Rand, n, k int, taboo []int32, out []int32) []int32 {
	out = out[:0]
	for len(out) < k {
		c := int32(rng.Intn(n))
		dup := false
		for _, t := range taboo {
			if t == c {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for _, t := range out {
			if t == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}
