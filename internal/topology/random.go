package topology

import (
	"math/rand"

	"makalu/internal/graph"
)

// ErdosRenyi builds a G(n, m) random graph: m distinct uniformly
// random edges on n nodes. It serves as an unstructured control in
// ablation experiments. m is clamped to the number of possible edges.
func ErdosRenyi(n, m int, seed int64) *graph.Mutable {
	g := graph.NewMutable(n)
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	rng := rand.New(rand.NewSource(seed))
	for g.M() < m {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}

// DegreeCapacities draws per-node connection capacities uniformly in
// [min, max], modelling hosts with heterogeneous access bandwidth.
// The paper assigns node degrees randomly with a mean of 10–12, so
// DefaultCapacities uses [8, 14].
func DegreeCapacities(n, min, max int, seed int64) []int {
	if min < 1 || max < min {
		panic("topology: capacity range must satisfy 1 <= min <= max")
	}
	rng := rand.New(rand.NewSource(seed))
	caps := make([]int, n)
	for i := range caps {
		caps[i] = min + rng.Intn(max-min+1)
	}
	return caps
}

// DefaultCapacities returns capacities uniform in [8, 14] (mean 11),
// matching the paper's "mean node degree of 10 to 12".
func DefaultCapacities(n int, seed int64) []int {
	return DegreeCapacities(n, 8, 14, seed)
}
