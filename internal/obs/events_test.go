package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func TestEventTypeNames(t *testing.T) {
	cases := map[EventType]string{
		EvJoin:        "join",
		EvPrune:       "prune",
		EvSuspect:     "suspect",
		EvEvict:       "evict",
		EvDialBackoff: "dial-backoff",
		EvQueryStart:  "query-start",
		EvQueryHit:    "query-hit",
		EventType(0):  "unknown",
		EventType(99): "unknown",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Fatalf("EventType(%d).String() = %q, want %q", ty, got, want)
		}
	}
}

func TestEventLogRingSemantics(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Record(EvJoin, fmt.Sprintf("n%d", i), "", int64(i))
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", l.Len())
	}
	if l.Total() != 10 || l.Overwritten() != 6 {
		t.Fatalf("total/overwritten = %d/%d, want 10/6", l.Total(), l.Overwritten())
	}
	evs := l.Snapshot()
	// Newest-window semantics: events 6..9 retained, oldest first.
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
		if e.Sim != LiveSim {
			t.Fatalf("live event carries Sim=%v, want %v", e.Sim, LiveSim)
		}
	}
}

func TestEventLogPartialFill(t *testing.T) {
	l := NewEventLog(8)
	l.Record(EvSuspect, "a", "b", 1)
	l.RecordSim(3.5, EvEvict, "a", "b", 2)
	evs := l.Snapshot()
	if len(evs) != 2 || evs[0].Type != EvSuspect || evs[1].Type != EvEvict {
		t.Fatalf("snapshot = %+v", evs)
	}
	if evs[1].Sim != 3.5 {
		t.Fatalf("sim time = %v, want 3.5", evs[1].Sim)
	}
	if l.CountType(EvEvict) != 1 || l.CountType(EvQueryHit) != 0 {
		t.Fatal("CountType miscounts")
	}
}

func TestEventLogDefaultCapacity(t *testing.T) {
	l := NewEventLog(0)
	if got := cap(l.buf); got != DefaultEventLogSize {
		t.Fatalf("default capacity = %d, want %d", got, DefaultEventLogSize)
	}
}

func TestWriteJSONL(t *testing.T) {
	l := NewEventLog(16)
	l.Record(EvQueryStart, "127.0.0.1:9", "", 4)
	l.RecordSim(7, EvQueryHit, "127.0.0.1:9", "127.0.0.1:10", 2)
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	types := []string{"query-start", "query-hit"}
	for sc.Scan() {
		var doc map[string]interface{}
		if err := json.Unmarshal(sc.Bytes(), &doc); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if doc["type"] != types[lines] {
			t.Fatalf("line %d type = %v, want %s", lines, doc["type"], types[lines])
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2", lines)
	}
}
