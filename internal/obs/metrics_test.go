package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *EventLog
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	h.ObserveDuration(time.Second)
	l.Record(EvJoin, "a", "b", 0)
	l.RecordSim(1, EvEvict, "a", "b", 0)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || l.Len() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	if s := r.Snapshot(); s.Counters != nil || s.Histograms != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 7, 8, 1000, -5} {
		h.Observe(v)
	}
	if h.Count() != 9 {
		t.Fatalf("count = %d, want 9", h.Count())
	}
	// -5 clamps to 0, so sum = 0+1+2+3+4+7+8+1000.
	if h.Sum() != 1025 {
		t.Fatalf("sum = %d, want 1025", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %d, want 1000", h.Max())
	}
	// Quantile is a power-of-two upper bound, never past the true max.
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("q100 = %v, want capped at max 1000", q)
	}
	if q := h.Quantile(0.5); q > 8 {
		t.Fatalf("q50 = %v, want <= 8", q)
	}
	// Empty histogram must read as zero everywhere (finite JSON).
	var empty Histogram
	snap := empty.Snapshot()
	if snap.Count != 0 || snap.Mean != 0 || snap.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
	out, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("empty snapshot must marshal: %v", err)
	}
	if !json.Valid(out) {
		t.Fatal("invalid JSON from empty snapshot")
	}
}

func TestHistogramP999(t *testing.T) {
	// 1000 small samples plus one huge one: p99 must stay in the small
	// band while p999 reaches for the tail — the distinction the serve
	// benchmarks report.
	var h Histogram
	for i := 0; i < 998; i++ {
		h.Observe(10)
	}
	h.Observe(1 << 20)
	h.Observe(1 << 20)
	snap := h.Snapshot()
	if snap.P999 != 1<<20 {
		t.Fatalf("p999 = %v, want %d (the tail sample)", snap.P999, 1<<20)
	}
	if snap.P99 > 16 {
		t.Fatalf("p99 = %v, want within the small-sample bucket", snap.P99)
	}
	if snap.P999 < snap.P99 {
		t.Fatalf("p999 %v < p99 %v", snap.P999, snap.P99)
	}
	if empty := (&Histogram{}).Snapshot(); empty.P999 != 0 {
		t.Fatalf("empty p999 = %v, want 0", empty.P999)
	}
}

// TestHistogramMergeMatchesSequential pins the determinism contract
// the batch kernels rely on: sharding samples over several histograms
// and merging them (in any fixed order) reproduces the sequential
// histogram's state exactly.
func TestHistogramMergeMatchesSequential(t *testing.T) {
	samples := make([]int64, 1000)
	x := uint64(12345)
	for i := range samples {
		x = x*6364136223846793005 + 1442695040888963407
		samples[i] = int64(x % 1_000_000)
	}
	var seq Histogram
	for _, v := range samples {
		seq.Observe(v)
	}
	for _, shards := range []int{1, 2, 3, 7, 16} {
		parts := make([]Histogram, shards)
		for i, v := range samples {
			parts[i%shards].Observe(v)
		}
		var merged Histogram
		for i := range parts {
			merged.Merge(&parts[i])
		}
		if merged.Snapshot() != seq.Snapshot() {
			t.Fatalf("%d shards: merged %+v != sequential %+v", shards, merged.Snapshot(), seq.Snapshot())
		}
		for i := 0; i < histBuckets; i++ {
			if merged.buckets[i].Load() != seq.buckets[i].Load() {
				t.Fatalf("%d shards: bucket %d diverged", shards, i)
			}
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	if h.Max() != goroutines*per-1 {
		t.Fatalf("max = %d, want %d", h.Max(), goroutines*per-1)
	}
}

func TestBucketUpperMonotone(t *testing.T) {
	prev := 0.0
	for i := 0; i < histBuckets; i++ {
		u := BucketUpper(i)
		if math.IsInf(u, 0) || u <= prev && i > 0 {
			t.Fatalf("bucket %d upper %v not finite/increasing", i, u)
		}
		prev = u
	}
}

// TestFastPathAllocationFree is the CI benchmark guard from the issue:
// the metrics fast path — counter increment plus histogram observe —
// must not allocate, or per-frame instrumentation would thrash the GC
// on the wire hot paths.
func TestFastPathAllocationFree(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("frames_in")
	h := reg.Histogram("rtt_ns")
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(17)
		h.Observe(1234)
	}); allocs != 0 {
		t.Fatalf("metrics fast path allocates %.1f times/op, want 0", allocs)
	}
	// The disabled path (nil instruments) must be free too.
	var nc *Counter
	var nh *Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		nh.Observe(1)
	}); allocs != 0 {
		t.Fatalf("disabled fast path allocates %.1f times/op, want 0", allocs)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkEventLogRecord(b *testing.B) {
	l := NewEventLog(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Record(EvQueryStart, "127.0.0.1:1", "127.0.0.1:2", 4)
	}
}

func TestRegistryHandlesAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	reg.Counter("a").Add(3)
	reg.Gauge("g").Set(-2)
	reg.Histogram("h").Observe(100)
	snap := reg.Snapshot()
	if snap.Counters["a"] != 3 || snap.Gauges["g"] != -2 || snap.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("WriteJSON output must round-trip: %v", err)
	}
	if back.Counters["a"] != 3 {
		t.Fatalf("round-trip lost counter: %+v", back)
	}
	buf.Reset()
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"a 3", "g -2", "h count=1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text dump missing %q:\n%s", want, text)
		}
	}
}
