package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// EventType labels one kind of overlay lifecycle event. The taxonomy
// covers the transitions the paper's dynamics depend on: membership
// (join), capacity management (prune), failure detection (suspect,
// evict), recovery throttling (dial-backoff) and search activity
// (query-start, query-hit).
type EventType uint8

const (
	// EvJoin: a link/neighbor was established, or a churned node
	// rejoined the overlay.
	EvJoin EventType = iota + 1
	// EvPrune: the rating function dropped the lowest-rated neighbor
	// while over capacity (§2.1 management).
	EvPrune
	// EvSuspect: a link crossed SuspectMisses consecutive missed
	// pongs — first stage of the failure detector.
	EvSuspect
	// EvEvict: a link was dropped as dead (liveness sweep, read error
	// or idle stall), or a churned node departed.
	EvEvict
	// EvDialBackoff: a dial failure pushed an address into (or deeper
	// into) its exponential re-dial backoff window.
	EvDialBackoff
	// EvQueryStart: a query was issued by the local node.
	EvQueryStart
	// EvQueryHit: a query result reached the originator.
	EvQueryHit
)

var eventNames = [...]string{
	EvJoin:        "join",
	EvPrune:       "prune",
	EvSuspect:     "suspect",
	EvEvict:       "evict",
	EvDialBackoff: "dial-backoff",
	EvQueryStart:  "query-start",
	EvQueryHit:    "query-hit",
}

// String returns the event type's wire name.
func (t EventType) String() string {
	if int(t) < len(eventNames) && eventNames[t] != "" {
		return eventNames[t]
	}
	return "unknown"
}

// Event is one overlay lifecycle event. Wall is real time (UnixNano);
// Sim carries the simulated clock for events emitted by the
// discrete-event engine (-1 for live events, where no simulated time
// exists). Value is type-specific: consecutive failures for
// dial-backoff, TTL for query-start, hop/free-form payload elsewhere.
type Event struct {
	Seq   uint64    `json:"seq"`
	Wall  int64     `json:"wall"`
	Sim   float64   `json:"sim"`
	Type  EventType `json:"-"`
	Node  string    `json:"node,omitempty"`
	Peer  string    `json:"peer,omitempty"`
	Value int64     `json:"value,omitempty"`
}

// eventJSON is the marshaled form: the type goes out by name so traces
// are greppable.
type eventJSON struct {
	Seq   uint64  `json:"seq"`
	Wall  int64   `json:"wall"`
	Sim   float64 `json:"sim"`
	Type  string  `json:"type"`
	Node  string  `json:"node,omitempty"`
	Peer  string  `json:"peer,omitempty"`
	Value int64   `json:"value,omitempty"`
}

// MarshalJSON renders the event with its type name.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Seq: e.Seq, Wall: e.Wall, Sim: e.Sim,
		Type: e.Type.String(), Node: e.Node, Peer: e.Peer, Value: e.Value,
	})
}

// LiveSim is the Sim field of events recorded from live (wall-clock)
// code paths, where no simulated time exists.
const LiveSim = -1.0

// EventLog is a bounded ring buffer of Events. When full, the oldest
// events are overwritten and counted in Overwritten — bounded memory
// under arbitrarily long runs, newest-window semantics for traces.
// Record is a mutex-guarded value copy: no allocation, a few tens of
// nanoseconds, off every per-frame hot path (events fire on state
// transitions, not per message).
type EventLog struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // total events ever recorded; buf[(next-1) % cap] is newest
	dropped uint64
}

// DefaultEventLogSize bounds an event log when callers do not care:
// large enough for a full experiment run's transition events, small
// enough (~64k events × ~96 B) to be negligible.
const DefaultEventLogSize = 1 << 16

// NewEventLog returns a ring buffer holding the most recent capacity
// events (DefaultEventLogSize when capacity <= 0).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogSize
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Record appends a live event (Sim = LiveSim).
func (l *EventLog) Record(t EventType, node, peer string, value int64) {
	if l == nil {
		return
	}
	l.record(Event{Wall: time.Now().UnixNano(), Sim: LiveSim, Type: t, Node: node, Peer: peer, Value: value})
}

// RecordSim appends an event stamped with simulated time.
func (l *EventLog) RecordSim(simTime float64, t EventType, node, peer string, value int64) {
	if l == nil {
		return
	}
	l.record(Event{Wall: time.Now().UnixNano(), Sim: simTime, Type: t, Node: node, Peer: peer, Value: value})
}

func (l *EventLog) record(e Event) {
	l.mu.Lock()
	e.Seq = l.next
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.next%uint64(cap(l.buf))] = e
		l.dropped++
	}
	l.next++
	l.mu.Unlock()
}

// Len returns the number of events currently held.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Total returns the number of events ever recorded.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Overwritten returns how many old events the ring has discarded.
func (l *EventLog) Overwritten() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Snapshot returns the retained events oldest-first.
func (l *EventLog) Snapshot() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.buf))
	if len(l.buf) < cap(l.buf) || len(l.buf) == 0 {
		return append(out, l.buf...)
	}
	// Ring wrapped: oldest sits at next % cap.
	start := int(l.next % uint64(cap(l.buf)))
	out = append(out, l.buf[start:]...)
	out = append(out, l.buf[:start]...)
	return out
}

// CountType tallies retained events of one type — the consistency
// handle tests use to compare traces against counters.
func (l *EventLog) CountType(t EventType) int {
	if l == nil {
		return 0
	}
	n := 0
	for _, e := range l.Snapshot() {
		if e.Type == t {
			n++
		}
	}
	return n
}

// WriteJSONL writes the retained events as JSON lines, oldest first.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	for _, e := range l.Snapshot() {
		out, err := json.Marshal(e)
		if err != nil {
			return err
		}
		out = append(out, '\n')
		if _, err := w.Write(out); err != nil {
			return err
		}
	}
	return nil
}
