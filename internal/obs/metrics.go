// Package obs is the zero-dependency observability layer: an atomic
// counter/gauge registry, lock-free power-of-two-bucket histograms and
// a bounded ring-buffer log of typed overlay events. The live peer
// layer, the discrete-event simulator and the batch search kernels all
// report through it, so the paper's measurements — rating convergence,
// eviction behavior under churn (§2.2), flood/walk message costs (§4)
// — are observable at runtime instead of only through post-hoc
// experiment aggregates.
//
// Every instrument is nil-safe: a nil *Counter, *Gauge, *Histogram or
// *EventLog ignores writes and reads as zero, so instrumentation
// points cost a single predictable branch when observability is
// disabled, and the hot paths (counter increment, histogram observe)
// are allocation-free when it is enabled — pinned by the AllocsPerRun
// guard in metrics_test.go.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (degree, backoff entries,
// queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket i
// holds samples v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// 64 buckets cover the whole non-negative int64 range (bits.Len64 of
// a positive int64 is at most 63), so nanosecond latencies from
// single digits to hours land without configuration.
const histBuckets = 64

// Histogram is a lock-free power-of-two-bucket histogram. Observe is
// two atomic adds and one atomic increment — safe from any number of
// goroutines, allocation-free, and mergeable (Merge adds counts, so
// merging per-worker histograms in worker order is deterministic in
// structure regardless of scheduling).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps a sample to its power-of-two bucket index.
func bucketOf(v int64) int { return bits.Len64(uint64(v)) }

// BucketUpper returns the exclusive upper bound of bucket i (2^i);
// bucket 0 holds only zeros and reports 1.
func BucketUpper(i int) float64 { return math.Ldexp(1, i) }

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Since records the elapsed time from start in nanoseconds.
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the mean sample, 0 when empty (never NaN/Inf, so the
// value is always safe to marshal).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound for the q-th quantile (0 <= q <= 1):
// the exclusive upper edge of the bucket where the cumulative count
// crosses q. Resolution is a factor of two — adequate for latency
// monitoring, free of per-sample storage. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q * float64(total)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= need {
			upper := BucketUpper(i)
			if m := float64(h.max.Load()); m < upper {
				return m // never report beyond the observed max
			}
			return upper
		}
	}
	return float64(h.max.Load())
}

// Merge folds o's samples into h. Counts add, so merging a set of
// histograms in a fixed order yields identical state regardless of how
// the samples were sharded.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time plain-value view of a
// Histogram, safe to marshal (no NaN/Inf fields ever).
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   int64   `json:"max"`
}

// Snapshot captures the histogram's current summary.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}
