package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Registry is a named collection of instruments. Lookup/creation takes
// a mutex; the returned handles are lock-free, so callers resolve
// their instruments once (at node/engine construction) and record
// through the raw atomics afterwards.
//
// A nil *Registry is valid: every lookup returns a nil instrument,
// which ignores writes — observability off costs one nil check per
// instrumentation point.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is a point-in-time plain-value view of a whole
// registry — the -metrics-json document.
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value. All fields are
// finite, so the snapshot always marshals cleanly.
func (r *Registry) Snapshot() MetricsSnapshot {
	snap := MetricsSnapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			snap.Histograms[name] = h.Snapshot()
		}
	}
	return snap
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// WriteText writes an expvar-style plain-text dump: one sorted
// "name value" line per counter/gauge, one summary line per histogram.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	var names []string
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, snap.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		if _, err := fmt.Fprintf(w, "%s count=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f p999=%.0f max=%d\n",
			name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.P999, h.Max); err != nil {
			return err
		}
	}
	return nil
}
