package search

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"makalu/internal/content"
	"makalu/internal/graph"
	"makalu/internal/obs"
)

// This file is the parallel query-batch engine: a BatchRunner shards a
// batch of N independent queries across a fixed worker pool, each
// worker owning one reusable scratch Kernel, and merges the per-worker
// aggregates in worker order. Per-query randomness is derived
// deterministically from (batch seed, query index), so the aggregate a
// batch produces is *identical* at any worker count — Workers=1 is the
// sequential oracle, Workers=8 the parallel run, and the golden tests
// in batch_test.go pin their equality for every search mechanism.

// QuerySeed derives the rng seed of query q in a batch seeded with
// batchSeed. The mix is splitmix64-style so adjacent query indices get
// statistically independent streams; crucially the seed depends only
// on (batchSeed, q), never on which worker runs the query or how many
// workers exist.
func QuerySeed(batchSeed int64, q int) int64 {
	x := uint64(batchSeed) + (uint64(q)+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// Kernel is one worker's bundle of reusable per-query scratch engines.
// Every engine is created lazily on first use and reused for the rest
// of the batch, so steady-state queries allocate nothing. A Kernel is
// confined to its worker goroutine and must not be shared.
type Kernel struct {
	// Index is the worker's position in [0, workers); batch callers
	// use it to address per-worker side state (e.g. load tallies)
	// without synchronization.
	Index int

	g       *graph.Graph
	flooder *Flooder
	gossip  *GossipFlooder
	walker  *Walker
	twoTier *TwoTierFlooder
	abf     map[*ABFNetwork]*ABFRouter
	perEdge map[*PerEdgeABFNetwork]*PerEdgeABFRouter
}

// NewKernel creates a standalone kernel over g for callers outside
// BatchRunner.Run — the serving frontend holds one Kernel per shard
// worker and reuses it across micro-batches exactly as a batch worker
// reuses it across its query range.
func NewKernel(g *graph.Graph, index int) *Kernel {
	return &Kernel{Index: index, g: g}
}

// Graph returns the frozen graph the kernel's engines run over.
func (k *Kernel) Graph() *graph.Graph { return k.g }

// Flooder returns the worker's reusable flooding kernel. The same
// instance also backs expanding-ring batches (ExpandingRing takes a
// *Flooder), so ring state reuses the flood scratch.
func (k *Kernel) Flooder() *Flooder {
	if k.flooder == nil {
		k.flooder = NewFlooder(k.g)
	}
	return k.flooder
}

// Gossip returns the worker's reusable flood-then-gossip kernel.
func (k *Kernel) Gossip() *GossipFlooder {
	if k.gossip == nil {
		k.gossip = NewGossipFlooder(k.g)
	}
	return k.gossip
}

// Walker returns the worker's reusable random/degree-biased walk
// kernel (epoch-stamped seen sets, zero allocations per walk).
func (k *Kernel) Walker() *Walker {
	if k.walker == nil {
		k.walker = NewWalker(k.g)
	}
	return k.walker
}

// TwoTier returns the worker's reusable v0.6 two-tier flooding kernel
// for the given role/QRP layout. The layout is validated and cached on
// first use; a batch runs one layout, so later calls reuse it.
func (k *Kernel) TwoTier(isUltra []bool, qrp []*content.QRPTable) (*TwoTierFlooder, error) {
	if k.twoTier == nil {
		tt, err := NewTwoTierFlooder(k.g, isUltra, qrp)
		if err != nil {
			return nil, err
		}
		k.twoTier = tt
	}
	return k.twoTier, nil
}

// ABF returns the worker's reusable router over the shared-hierarchy
// filter network, keyed by network so one kernel can serve batches
// over several placements.
func (k *Kernel) ABF(net *ABFNetwork) *ABFRouter {
	if k.abf == nil {
		k.abf = make(map[*ABFNetwork]*ABFRouter, 1)
	}
	r, ok := k.abf[net]
	if !ok {
		r = NewABFRouter(net)
		k.abf[net] = r
	}
	return r
}

// PerEdgeABF returns the worker's reusable router over the per-edge
// filter network.
func (k *Kernel) PerEdgeABF(net *PerEdgeABFNetwork) *PerEdgeABFRouter {
	if k.perEdge == nil {
		k.perEdge = make(map[*PerEdgeABFNetwork]*PerEdgeABFRouter, 1)
	}
	r, ok := k.perEdge[net]
	if !ok {
		r = NewPerEdgeABFRouter(net)
		k.perEdge[net] = r
	}
	return r
}

// QueryFunc executes query q with the worker-local kernel and the
// query's deterministic rng, returning its Result. Implementations
// must draw all randomness from rng and touch only the kernel plus
// read-only shared state (or per-worker state addressed by
// kern.Index).
type QueryFunc func(kern *Kernel, q int, rng *rand.Rand) Result

// BatchObs collects per-query distribution metrics for batch runs.
// It lives entirely outside the Aggregate: each worker observes into
// private histograms which Run merges into these targets in worker
// order after the batch, so the Aggregate — and with it the
// bit-identical-at-any-worker-count guarantee — is untouched. Hops and
// Messages are derived from deterministic Results and therefore land
// identically at any worker count; Latency is wall time and is not.
// Any field may be nil to skip that dimension; targets may come from
// an obs.Registry, accumulating across batches.
type BatchObs struct {
	Latency  *obs.Histogram // per-query wall time, nanoseconds
	Hops     *obs.Histogram // first-match hop of successful queries
	Messages *obs.Histogram // messages sent per query
}

// NewBatchObs returns a BatchObs with all dimensions enabled, backed
// by fresh histograms.
func NewBatchObs() *BatchObs {
	return &BatchObs{Latency: new(obs.Histogram), Hops: new(obs.Histogram), Messages: new(obs.Histogram)}
}

// workerObs is one worker's private observation scratch. The zero
// value (nil histograms, produced for a nil BatchObs) makes every
// method a branch and nothing more.
type workerObs struct {
	latency, hops, messages *obs.Histogram
}

func (b *BatchObs) worker() workerObs {
	if b == nil {
		return workerObs{}
	}
	return workerObs{latency: new(obs.Histogram), hops: new(obs.Histogram), messages: new(obs.Histogram)}
}

// start stamps the query start; the zero time means "not observing"
// and keeps time.Now() off the uninstrumented path.
func (o *workerObs) start() time.Time {
	if o.latency == nil {
		return time.Time{}
	}
	return time.Now()
}

func (o *workerObs) observe(start time.Time, r Result) {
	if o.latency == nil {
		return
	}
	o.latency.Since(start)
	o.messages.Observe(int64(r.Messages))
	if r.Success {
		o.hops.Observe(int64(r.FirstMatchHop))
	}
}

// merge folds one worker's histograms into the batch targets. Run
// calls it in worker order; histogram merges commute regardless, so
// the merged counts are scheduling-independent either way.
func (b *BatchObs) merge(o workerObs) {
	if b == nil || o.latency == nil {
		return
	}
	b.Latency.Merge(o.latency)
	b.Hops.Merge(o.hops)
	b.Messages.Merge(o.messages)
}

// BatchRunner runs batches of independent queries over one frozen
// graph. The zero value of Workers selects GOMAXPROCS.
type BatchRunner struct {
	Graph   *graph.Graph
	Workers int       // goroutines; <= 0 means GOMAXPROCS, 1 is sequential
	Seed    int64     // batch seed; per-query seeds derive from (Seed, q)
	Obs     *BatchObs // optional per-query metrics; nil = zero overhead
}

// WorkerCount resolves the effective worker count for a batch of the
// given size: the configured Workers (or GOMAXPROCS), never more than
// the query count, never less than 1. Exposed so callers can size
// per-worker side state before Run.
func (br *BatchRunner) WorkerCount(queries int) int {
	w := br.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > queries {
		w = queries
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes queries 0..queries-1 via fn, sharding contiguous index
// ranges over the worker pool, and returns the merged aggregate.
// Per-worker aggregates are merged in worker order; together with the
// per-query seed derivation this makes the output independent of the
// worker count and of goroutine scheduling.
func (br *BatchRunner) Run(queries int, fn QueryFunc) *Aggregate {
	if queries <= 0 {
		return NewAggregate()
	}
	workers := br.WorkerCount(queries)
	if workers == 1 {
		kern := &Kernel{g: br.Graph}
		rng := rand.New(rand.NewSource(0))
		agg := NewAggregate()
		o := br.Obs.worker()
		for q := 0; q < queries; q++ {
			rng.Seed(QuerySeed(br.Seed, q))
			start := o.start()
			r := fn(kern, q, rng)
			o.observe(start, r)
			agg.Add(r)
		}
		br.Obs.merge(o)
		return agg
	}
	aggs := make([]*Aggregate, workers)
	wobs := make([]workerObs, workers)
	per := (queries + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > queries {
			hi = queries
		}
		if lo >= hi {
			aggs[w] = NewAggregate()
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			kern := &Kernel{Index: w, g: br.Graph}
			rng := rand.New(rand.NewSource(0))
			agg := NewAggregate()
			o := br.Obs.worker()
			for q := lo; q < hi; q++ {
				rng.Seed(QuerySeed(br.Seed, q))
				start := o.start()
				r := fn(kern, q, rng)
				o.observe(start, r)
				agg.Add(r)
			}
			aggs[w] = agg
			wobs[w] = o
		}(w, lo, hi)
	}
	wg.Wait()
	total := NewAggregate()
	for _, a := range aggs {
		if a != nil {
			total.Merge(a)
		}
	}
	// Worker-order merge of the side histograms, after the aggregate:
	// determinism of the Aggregate is enforced by construction (it
	// never sees the histograms at all).
	for w := range wobs {
		br.Obs.merge(wobs[w])
	}
	return total
}
