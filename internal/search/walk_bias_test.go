package search

import (
	"math/rand"
	"testing"

	"makalu/internal/graph"
	"makalu/internal/topology"
)

func TestDegreeBiasedWalkSeeksHub(t *testing.T) {
	// Star-with-path: 0-1-2-hub(3), hub carries leaves 4..9. From 0,
	// the walk must march straight to the hub and find objects there.
	g := graph.NewMutable(10)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	for leaf := 4; leaf < 10; leaf++ {
		g.AddEdge(3, leaf)
	}
	fr := g.Freeze(nil)
	rng := rand.New(rand.NewSource(1))
	r := DegreeBiasedWalk(fr, 0, 20, func(u int) bool { return u == 3 }, rng)
	if !r.Success || r.FirstMatchHop != 3 || r.Messages != 3 {
		t.Fatalf("hub-seeking walk: %+v", r)
	}
}

func TestDegreeBiasedWalkSourceMatch(t *testing.T) {
	r := DegreeBiasedWalk(cycle(5), 2, 10, func(u int) bool { return u == 2 }, rand.New(rand.NewSource(2)))
	if !r.Success || r.FirstMatchHop != 0 || r.Messages != 0 {
		t.Fatalf("%+v", r)
	}
}

func TestDegreeBiasedWalkRespectsBudget(t *testing.T) {
	g := cycle(100)
	r := DegreeBiasedWalk(g, 0, 10, func(u int) bool { return u == 50 }, rand.New(rand.NewSource(3)))
	if r.Success || r.Messages > 10 {
		t.Fatalf("budget violated: %+v", r)
	}
}

func TestDegreeBiasedWalkIsolatedSource(t *testing.T) {
	g := graph.NewMutable(3)
	g.AddEdge(1, 2)
	r := DegreeBiasedWalk(g.Freeze(nil), 0, 10, noMatch, rand.New(rand.NewSource(4)))
	if r.Success || r.Messages != 0 {
		t.Fatalf("isolated walk: %+v", r)
	}
}

func TestDegreeBiasedWalkEscapesSaturation(t *testing.T) {
	// On a tiny complete graph every neighbor is visited quickly; the
	// walk must keep moving via random fallback rather than stall.
	g := complete(4)
	r := DegreeBiasedWalk(g, 0, 50, func(u int) bool { return false }, rand.New(rand.NewSource(5)))
	if r.Messages != 50 {
		t.Fatalf("walk stalled at %d messages", r.Messages)
	}
	if r.Visited != 4 {
		t.Fatalf("visited %d of 4", r.Visited)
	}
}

func TestDegreeBiasedWalkEffectiveOnPowerLaw(t *testing.T) {
	// Adamic's observation: on power-law graphs the hub-seeking walk
	// finds popular content quickly because hubs see everything.
	cfg := topology.DefaultPowerLaw()
	cfg.Seed = 6
	g := topology.PowerLaw(3000, cfg).Freeze(nil)
	top := g.TopDegreeNodes(30) // objects on the hubs' neighbors
	targets := map[int]bool{}
	for _, h := range top[:10] {
		targets[h] = true
	}
	rng := rand.New(rand.NewSource(7))
	succ := 0
	for q := 0; q < 50; q++ {
		r := DegreeBiasedWalk(g, rng.Intn(3000), 200, func(u int) bool { return targets[u] }, rng)
		if r.Success {
			succ++
		}
	}
	if succ < 40 {
		t.Fatalf("hub-seeking walk found hub content only %d/50 times", succ)
	}
}
