package search

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAggregateMergePropertyQuantiles is the property test for the
// batch engine's merge path: splitting any stream of Results into
// shards, aggregating each shard and merging in shard order must
// reproduce the sequential aggregate exactly — every scalar counter
// and every hop/message quantile. This is the algebraic half of the
// PR 3 bit-identical guarantee (the other half is deterministic
// per-query seeding).
func TestAggregateMergePropertyQuantiles(t *testing.T) {
	f := func(seed int64, nQueries uint8, nShards uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		queries := int(nQueries)%200 + 1
		shards := int(nShards)%8 + 1

		results := make([]Result, queries)
		for i := range results {
			r := Result{
				Messages:   rng.Intn(500),
				Duplicates: rng.Intn(50),
				Visited:    rng.Intn(300),
			}
			if rng.Intn(3) > 0 {
				r.Success = true
				r.FirstMatchHop = rng.Intn(8)
				// Small integers sum exactly in float64 regardless of
				// association, so the shard split cannot introduce
				// rounding differences the property is not about.
				r.FirstMatchLatency = float64(rng.Intn(1000))
			}
			results[i] = r
		}

		seq := NewAggregate()
		for _, r := range results {
			seq.Add(r)
		}

		merged := NewAggregate()
		per := (queries + shards - 1) / shards
		for s := 0; s < shards; s++ {
			lo, hi := s*per, (s+1)*per
			if lo > queries {
				lo = queries
			}
			if hi > queries {
				hi = queries
			}
			shard := NewAggregate()
			for _, r := range results[lo:hi] {
				shard.Add(r)
			}
			merged.Merge(shard)
		}

		if merged.Queries != seq.Queries ||
			merged.Successes != seq.Successes ||
			merged.TotalMessages != seq.TotalMessages ||
			merged.TotalDuplicates != seq.TotalDuplicates ||
			merged.TotalVisited != seq.TotalVisited ||
			merged.TotalLatency != seq.TotalLatency {
			return false
		}
		for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
			if merged.Hops.Quantile(q) != seq.Hops.Quantile(q) {
				return false
			}
			if merged.Msgs.Quantile(q) != seq.Msgs.Quantile(q) {
				return false
			}
		}
		return merged.MeanHops() == seq.MeanHops() && merged.MeanMessages() == seq.MeanMessages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchObsDeterministicDimensions pins that the hop and message
// histograms a batch run collects are identical at any worker count
// (latency is wall time and exempt), and that enabling them does not
// perturb the Aggregate.
func TestBatchObsDeterministicDimensions(t *testing.T) {
	g := testGraph(64)
	fn := func(k *Kernel, q int, rng *rand.Rand) Result {
		src := rng.Intn(k.Graph().N())
		target := rng.Intn(k.Graph().N())
		return k.Flooder().Flood(src, 3, func(u int) bool { return u == target })
	}
	base := (&BatchRunner{Graph: g, Workers: 1, Seed: 5}).Run(100, fn)

	var ref *BatchObs
	for _, workers := range []int{1, 3, 8} {
		o := NewBatchObs()
		agg := (&BatchRunner{Graph: g, Workers: workers, Seed: 5, Obs: o}).Run(100, fn)
		if agg.String() != base.String() {
			t.Fatalf("workers=%d: enabling BatchObs changed the aggregate: %s vs %s", workers, agg, base)
		}
		if o.Latency.Count() != 100 || o.Messages.Count() != 100 {
			t.Fatalf("workers=%d: histogram counts %d/%d, want 100/100", workers, o.Latency.Count(), o.Messages.Count())
		}
		if ref == nil {
			ref = o
			continue
		}
		if o.Hops.Snapshot() != ref.Hops.Snapshot() {
			t.Fatalf("workers=%d: hop histogram diverged: %+v vs %+v", workers, o.Hops.Snapshot(), ref.Hops.Snapshot())
		}
		if o.Messages.Snapshot() != ref.Messages.Snapshot() {
			t.Fatalf("workers=%d: message histogram diverged: %+v vs %+v", workers, o.Messages.Snapshot(), ref.Messages.Snapshot())
		}
	}
}
