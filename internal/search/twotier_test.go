package search

import (
	"math/rand"
	"testing"

	"makalu/internal/content"
	"makalu/internal/graph"
	"makalu/internal/topology"
)

// buildTwoTierFixture wires a tiny two-tier network by hand:
//
//	ultrapeers: 0 - 1 (linked)
//	leaves:     2, 3 on ultrapeer 0; 4 on ultrapeer 1
//
// and a store with a single object placed on one random node.
func buildTwoTierFixture(t *testing.T) (*TwoTierFlooder, *content.Store, uint64) {
	t.Helper()
	g := graph.NewMutable(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 4)
	isUltra := []bool{true, true, false, false, false}
	st, err := content.Place(5, content.PlacementConfig{Objects: 1, Replication: 0, MinReplicas: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	obj := st.Objects()[0]
	fr := g.Freeze(nil)
	qrp := make([]*content.QRPTable, 5)
	for u := 0; u < 5; u++ {
		if !isUltra[u] {
			qrp[u] = content.BuildQRPTable(st, u, 512, 3)
		}
	}
	tt, err := NewTwoTierFlooder(fr, isUltra, qrp)
	if err != nil {
		t.Fatal(err)
	}
	return tt, st, obj
}

func TestTwoTierValidation(t *testing.T) {
	g := graph.NewMutable(2)
	g.AddEdge(0, 1)
	fr := g.Freeze(nil)
	if _, err := NewTwoTierFlooder(fr, []bool{true}, make([]*content.QRPTable, 2)); err == nil {
		t.Fatal("short role slice should fail")
	}
	// An ultrapeer carrying a QRP table must fail; a leaf without one
	// is legal (ungated delivery, the paper's measured behaviour).
	st, _ := content.Place(2, content.PlacementConfig{Objects: 1, Seed: 1})
	qrp := []*content.QRPTable{content.BuildQRPTable(st, 0, 64, 2), nil}
	if _, err := NewTwoTierFlooder(fr, []bool{true, false}, qrp); err == nil {
		t.Fatal("ultrapeer with QRP table should fail")
	}
	if _, err := NewTwoTierFlooder(fr, []bool{true, false}, make([]*content.QRPTable, 2)); err != nil {
		t.Fatalf("ungated leaves should be accepted: %v", err)
	}
}

func TestTwoTierLeafInjection(t *testing.T) {
	tt, st, obj := buildTwoTierFixture(t)
	// Query from leaf 2: injection to UP 0 (1 msg), UP0 -> UP1 (1 msg),
	// plus QRP-gated leaf deliveries.
	r := tt.Flood(2, 2, obj, func(u int) bool { return st.Has(u, obj) })
	if r.Messages < 2 {
		t.Fatalf("expected at least injection + core flood, got %+v", r)
	}
	// The single replica must be found: every node is within reach.
	if !r.Success {
		t.Fatalf("query failed: %+v (replicas at %v)", r, st.Replicas(obj))
	}
}

func TestTwoTierLeavesDoNotForward(t *testing.T) {
	// Query from ultrapeer 1 with TTL 1: UP1 floods UP0; UP0 delivers
	// to matching leaves. Leaf 4 gets the query from UP1 directly but
	// never forwards anywhere.
	tt, st, obj := buildTwoTierFixture(t)
	r := tt.Flood(1, 1, obj, func(u int) bool { return st.Has(u, obj) })
	// Upper bound: UP1->UP0, UP1->leaf4, UP0->leaf2, UP0->leaf3 = 4.
	if r.Messages > 4 {
		t.Fatalf("too many messages (%d): leaves must not forward", r.Messages)
	}
}

func TestTwoTierQRPShieldsLeaves(t *testing.T) {
	tt, st, obj := buildTwoTierFixture(t)
	// Query an identifier no one hosts: QRP tables should suppress
	// almost all leaf deliveries (false positives aside, with 512-bit
	// tables and 1 insertion they are essentially impossible).
	missing := obj ^ 0xdeadbeef
	r := tt.Flood(0, 2, missing, func(u int) bool { return st.Has(u, missing) })
	if r.Success {
		t.Fatal("missing object cannot be found")
	}
	// Messages: UP0->UP1 core flood only (leaf deliveries gated).
	if r.Messages > 2 {
		t.Fatalf("QRP should shield leaves, got %d messages", r.Messages)
	}
}

func TestTwoTierTTLBoundsCore(t *testing.T) {
	// Chain of ultrapeers: 0-1-2-3, no leaves. TTL limits core hops.
	g := graph.NewMutable(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	isUltra := []bool{true, true, true, true}
	qrp := make([]*content.QRPTable, 4)
	tt, err := NewTwoTierFlooder(g.Freeze(nil), isUltra, qrp)
	if err != nil {
		t.Fatal(err)
	}
	r := tt.Flood(0, 2, 0, func(u int) bool { return u == 3 })
	if r.Success {
		t.Fatal("TTL 2 cannot reach UP 3 hops away")
	}
	r = tt.Flood(0, 3, 0, func(u int) bool { return u == 3 })
	if !r.Success || r.FirstMatchHop != 3 {
		t.Fatalf("TTL 3 should reach: %+v", r)
	}
}

func TestTwoTierOnGeneratedTopology(t *testing.T) {
	n := 1500
	tt := topology.NewTwoTier(n, topology.DefaultTwoTier())
	st, err := content.Place(n, content.PlacementConfig{Objects: 20, Replication: 0.01, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	fr := tt.Graph.Freeze(nil)
	qrp := make([]*content.QRPTable, n)
	for u := 0; u < n; u++ {
		if !tt.IsUltra[u] {
			qrp[u] = content.BuildQRPTable(st, u, 1024, 3)
		}
	}
	fl, err := NewTwoTierFlooder(fr, tt.IsUltra, qrp)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	agg := NewAggregate()
	for q := 0; q < 100; q++ {
		obj := st.RandomObject(rng)
		src := rng.Intn(n)
		agg.Add(fl.Flood(src, 3, obj, func(u int) bool { return st.Has(u, obj) }))
	}
	// 1% replication with TTL 3 over a 30-degree ultrapeer core should
	// resolve essentially everything.
	if agg.SuccessRate() < 0.95 {
		t.Fatalf("two-tier success rate %.2f too low", agg.SuccessRate())
	}
	if agg.MeanMessages() <= 0 {
		t.Fatal("message accounting broken")
	}
}
