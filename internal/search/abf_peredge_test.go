package search

import (
	"math/rand"
	"testing"

	"makalu/internal/content"
	"makalu/internal/graph"
	"makalu/internal/topology"
)

func TestPerEdgeValidation(t *testing.T) {
	g := path(5)
	st4, _ := content.Place(4, content.PlacementConfig{Objects: 1, Seed: 1})
	if _, err := BuildPerEdgeABFNetwork(g, st4, DefaultABFConfig()); err == nil {
		t.Fatal("size mismatch should fail")
	}
	st5, _ := content.Place(5, content.PlacementConfig{Objects: 1, Seed: 1})
	cfg := DefaultABFConfig()
	cfg.Depth = 0
	if _, err := BuildPerEdgeABFNetwork(g, st5, cfg); err == nil {
		t.Fatal("zero depth should fail")
	}
}

func TestPerEdgeBackEdgeExclusion(t *testing.T) {
	// Path 0-1-2. Object on node 0. The filter node 1 keeps for
	// neighbor 2 must NOT advertise node 0's object: the only path
	// 1→2→...→0 would double back through 1.
	g := path(3)
	st, err := content.Place(3, content.PlacementConfig{Objects: 3, Replication: 0, MinReplicas: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildPerEdgeABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, obj := range st.Objects() {
		host := int(st.Replicas(obj)[0])
		f12 := net.EdgeFilter(1, 2)
		f10 := net.EdgeFilter(1, 0)
		switch host {
		case 0:
			if f12.MatchLevel(obj) != -1 {
				t.Fatal("filter (1→2) advertises content behind node 1")
			}
			if f10.MatchLevel(obj) != 1 {
				t.Fatalf("filter (1→0) should place node 0's object at level 1, got %d", f10.MatchLevel(obj))
			}
		case 2:
			if f10.MatchLevel(obj) != -1 {
				t.Fatal("filter (1→0) advertises content behind node 1")
			}
			if f12.MatchLevel(obj) != 1 {
				t.Fatalf("filter (1→2) level = %d, want 1", f12.MatchLevel(obj))
			}
		}
	}
	if net.EdgeFilter(0, 2) != nil {
		t.Fatal("non-edge should have no filter")
	}
}

func TestPerEdgeLevelsEncodeDistance(t *testing.T) {
	// Path 0-1-2-3-4, unique object per node. Filter (0→1) sees node
	// d's object at level d (distance from 0 through 1).
	g := path(5)
	st, err := content.Place(5, content.PlacementConfig{Objects: 5, Replication: 0, MinReplicas: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildPerEdgeABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	f01 := net.EdgeFilter(0, 1)
	for _, obj := range st.Objects() {
		host := int(st.Replicas(obj)[0])
		got := f01.MatchLevel(obj)
		switch {
		case host == 0:
			if got != -1 {
				t.Fatalf("own content must not appear in an outgoing edge filter, got level %d", got)
			}
		case host <= 3:
			if got != host {
				t.Fatalf("object at node %d matched level %d", host, got)
			}
		default:
			if got != -1 {
				t.Fatalf("object beyond horizon matched level %d", got)
			}
		}
	}
}

func TestPerEdgeLookupGradient(t *testing.T) {
	g := path(8)
	st, err := content.Place(8, content.PlacementConfig{Objects: 8, Replication: 0, MinReplicas: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildPerEdgeABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewPerEdgeABFRouter(net)
	rng := rand.New(rand.NewSource(8))
	dist := make([]int32, 8)
	g.BFS(0, dist, nil)
	for _, obj := range st.Objects() {
		host := int(st.Replicas(obj)[0])
		d := int(dist[host])
		if d == 0 || d > 3 {
			continue
		}
		res := r.Lookup(0, obj, 20, rng)
		if !res.Success || res.Messages != d {
			t.Fatalf("object at distance %d: %+v", d, res)
		}
	}
}

func TestPerEdgeLookupOnExpander(t *testing.T) {
	n := 1200
	gm, err := topology.KRegular(n, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	g := gm.Freeze(nil)
	st, err := content.Place(n, content.PlacementConfig{Objects: 30, Replication: 0.01, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildPerEdgeABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewPerEdgeABFRouter(net)
	rng := rand.New(rand.NewSource(11))
	agg := NewAggregate()
	for q := 0; q < 200; q++ {
		obj := st.RandomObject(rng)
		agg.Add(r.Lookup(rng.Intn(n), obj, 25, rng))
	}
	if agg.SuccessRate() < 0.9 {
		t.Fatalf("per-edge ABF success %.2f too low", agg.SuccessRate())
	}
}

// Per-edge filters cost strictly more memory than the shared
// published hierarchies (O(edges) vs O(nodes) filter sets).
func TestPerEdgeMemoryExceedsShared(t *testing.T) {
	n := 300
	gm, err := topology.KRegular(n, 8, 12)
	if err != nil {
		t.Fatal(err)
	}
	g := gm.Freeze(nil)
	st, err := content.Place(n, content.PlacementConfig{Objects: 10, Replication: 0.02, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := BuildABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	perEdge, err := BuildPerEdgeABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	if perEdge.MemoryBytes() <= shared.MemoryBytes() {
		t.Fatalf("per-edge memory %d should exceed shared %d",
			perEdge.MemoryBytes(), shared.MemoryBytes())
	}
	ratio := float64(perEdge.MemoryBytes()) / float64(shared.MemoryBytes())
	if ratio < 4 { // mean degree 8 → expect ≈ 8x
		t.Fatalf("memory ratio %.1f suspiciously low for degree-8", ratio)
	}
}

func TestPerEdgeRouterGraphWithDeadEnd(t *testing.T) {
	// Star with tail (same fixture as the shared-router test).
	g := graph.NewMutable(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(3, 5)
	g.AddEdge(3, 6)
	fr := g.Freeze(nil)
	st, err := content.Place(7, content.PlacementConfig{Objects: 7, Replication: 0, MinReplicas: 1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildPerEdgeABFNetwork(fr, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewPerEdgeABFRouter(net)
	rng := rand.New(rand.NewSource(15))
	for _, obj := range st.Objects() {
		if !r.Lookup(0, obj, 30, rng).Success {
			t.Fatalf("lookup failed for object at %v", st.Replicas(obj))
		}
	}
}
