// Package search implements every search mechanism the paper
// evaluates (§4): TTL-controlled flooding with query-ID duplicate
// suppression, the Gnutella v0.6 two-tier flooding with QRP leaf
// tables, k-walker random walks, expanding-ring TTL selection, and
// attenuated-Bloom-filter identifier routing.
package search

import "makalu/internal/graph"

// Result describes one query execution, whatever the mechanism.
type Result struct {
	Messages      int  // transmissions on overlay links
	Duplicates    int  // messages that arrived at an already-visited node
	Visited       int  // distinct nodes reached (including the source)
	Success       bool // at least one matching node reached
	FirstMatchHop int  // hop count of the first match; -1 when none
	MatchesFound  int  // matching nodes reached
	// FirstMatchLatency is the accumulated link latency along the
	// flood tree to the first match — the query's one-way response
	// time on the physical network. Zero unless the graph carries
	// edge weights and the query succeeded beyond the source.
	FirstMatchLatency float64
}

// Matcher decides whether a node satisfies the query. Implementations
// are usually closures over a content.Store.
type Matcher func(node int) bool

// Flooder runs TTL floods over a frozen graph, reusing visit-epoch
// scratch between queries so large batches stay allocation-free.
// It is not safe for concurrent use; create one Flooder per worker.
type Flooder struct {
	g       *graph.Graph
	epoch   int32
	visited []int32   // epoch when node was first reached
	hop     []int32   // hop at which node was first reached
	parent  []int32   // node the query arrived from
	lat     []float64 // accumulated latency along the flood tree
	queue   []int32
}

// NewFlooder creates a Flooder for g.
func NewFlooder(g *graph.Graph) *Flooder {
	n := g.N()
	f := &Flooder{
		g:       g,
		visited: make([]int32, n),
		hop:     make([]int32, n),
		parent:  make([]int32, n),
		queue:   make([]int32, 0, 1024),
	}
	if g.Weights != nil {
		f.lat = make([]float64, n)
	}
	return f
}

// Flood issues a query from src with the given TTL and returns its
// Result. Semantics follow Gnutella flooding: the source checks its
// own store, then sends the query to every neighbor; a node receiving
// the query for the first time checks its store and, while TTL
// remains, forwards to every neighbor except the one it came from.
// Re-received queries are recognized by their cached query ID, counted
// as duplicates, and suppressed.
func (f *Flooder) Flood(src, ttl int, match Matcher) Result {
	f.epoch++
	ep := f.epoch
	res := Result{FirstMatchHop: -1}

	f.visited[src] = ep
	f.hop[src] = 0
	f.parent[src] = -1
	if f.lat != nil {
		f.lat[src] = 0
	}
	res.Visited = 1
	if match(src) {
		res.Success = true
		res.FirstMatchHop = 0
		res.MatchesFound++
	}
	if ttl <= 0 {
		return res
	}

	queue := f.queue[:0]
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		hu := f.hop[u]
		if int(hu) >= ttl {
			continue // TTL exhausted: do not forward
		}
		pu := f.parent[u]
		for i := f.g.Offsets[u]; i < f.g.Offsets[u+1]; i++ {
			v := f.g.Edges[i]
			if v == pu {
				continue // never echo back to the sender
			}
			res.Messages++
			if f.visited[v] == ep {
				res.Duplicates++
				continue
			}
			f.visited[v] = ep
			f.hop[v] = hu + 1
			f.parent[v] = u
			if f.lat != nil {
				f.lat[v] = f.lat[u] + f.g.Weights[i]
			}
			res.Visited++
			if match(int(v)) {
				res.MatchesFound++
				if !res.Success {
					res.Success = true
					res.FirstMatchHop = int(hu + 1)
					if f.lat != nil {
						res.FirstMatchLatency = f.lat[v]
					}
				}
			}
			queue = append(queue, v)
		}
	}
	f.queue = queue
	return res
}

// Coverage returns how many distinct nodes a TTL-bounded flood from
// src reaches, without any matching; used by the convergence-boundary
// analysis of §4.4.
func (f *Flooder) Coverage(src, ttl int) int {
	r := f.Flood(src, ttl, func(int) bool { return false })
	return r.Visited
}
