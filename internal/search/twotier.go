package search

import (
	"fmt"

	"makalu/internal/content"
	"makalu/internal/graph"
)

// TwoTierFlooder simulates the modern Gnutella v0.6 query routing the
// paper compares against (§4.2, "a modified flooding algorithm that
// simulates the behavior of current Gnutella query routing"):
//
//   - a leaf sends its query to every ultrapeer it is attached to;
//   - ultrapeers flood among themselves under the TTL;
//   - each ultrapeer consults the QRP tables its leaves uploaded and
//     forwards the query only to leaves that may match;
//   - leaves never forward.
type TwoTierFlooder struct {
	g       *graph.Graph
	isUltra []bool
	qrp     []*content.QRPTable // per node; nil for ultrapeers

	epoch   int32
	visited []int32
	hop     []int32
	parent  []int32
	queue   []int32
}

// NewTwoTierFlooder wires a flooder over the full two-tier graph.
// qrp[u], when non-nil for a leaf, gates deliveries to that leaf; a
// nil entry means the ultrapeer forwards to the leaf unconditionally.
// The paper's measured 2006 traffic (fan-out 38.4 including leaf
// forwards) corresponds to no gating; QRP gating is the ablation.
// Ultrapeers must not carry tables.
func NewTwoTierFlooder(g *graph.Graph, isUltra []bool, qrp []*content.QRPTable) (*TwoTierFlooder, error) {
	n := g.N()
	if len(isUltra) != n || len(qrp) != n {
		return nil, fmt.Errorf("search: role/QRP slices must cover all %d nodes", n)
	}
	for u := 0; u < n; u++ {
		if isUltra[u] && qrp[u] != nil {
			return nil, fmt.Errorf("search: ultrapeer %d must not carry a QRP table", u)
		}
	}
	return &TwoTierFlooder{
		g:       g,
		isUltra: isUltra,
		qrp:     qrp,
		visited: make([]int32, n),
		hop:     make([]int32, n),
		parent:  make([]int32, n),
		queue:   make([]int32, 0, 1024),
	}, nil
}

// Flood issues a query for object obj from src. ttl bounds the
// ultrapeer-to-ultrapeer hops; the leaf→ultrapeer injection and
// ultrapeer→leaf delivery do not consume TTL, matching deployed
// Gnutella. match decides actual content hits (QRP tables only gate
// which leaves are bothered).
func (t *TwoTierFlooder) Flood(src, ttl int, obj uint64, match Matcher) Result {
	t.epoch++
	ep := t.epoch
	res := Result{FirstMatchHop: -1}

	visit := func(node int32, hop int32, parent int32) {
		t.visited[node] = ep
		t.hop[node] = hop
		t.parent[node] = parent
		res.Visited++
		if match(int(node)) {
			res.MatchesFound++
			if !res.Success {
				res.Success = true
				res.FirstMatchHop = int(hop)
			}
		}
	}

	visit(int32(src), 0, -1)

	queue := t.queue[:0] // ultrapeers pending expansion
	if t.isUltra[src] {
		queue = append(queue, int32(src))
	} else {
		// Leaf injection: hand the query to every attached ultrapeer.
		for _, up := range t.g.Neighbors(src) {
			if !t.isUltra[up] {
				continue
			}
			res.Messages++
			if t.visited[up] == ep {
				res.Duplicates++
				continue
			}
			visit(up, 1, int32(src))
			queue = append(queue, up)
		}
	}

	for head := 0; head < len(queue); head++ {
		u := queue[head]
		hu := t.hop[u]
		pu := t.parent[u]

		// Deliver to candidate leaves via their QRP tables.
		for _, v := range t.g.Neighbors(int(u)) {
			if t.isUltra[v] || v == pu {
				continue
			}
			if t.qrp[v] != nil && !t.qrp[v].MayMatch(obj) {
				continue // QRP shields non-matching leaves
			}
			res.Messages++
			if t.visited[v] == ep {
				res.Duplicates++
				continue
			}
			visit(v, hu+1, u)
		}

		// Flood onward through the ultrapeer core while TTL remains.
		// The injection hop (leaf→UP) does not count against TTL, so
		// compare against UP-to-UP hops only.
		upHops := hu
		if !t.isUltra[src] {
			upHops-- // discount the injection hop
		}
		if int(upHops) >= ttl {
			continue
		}
		for _, v := range t.g.Neighbors(int(u)) {
			if !t.isUltra[v] || v == pu {
				continue
			}
			res.Messages++
			if t.visited[v] == ep {
				res.Duplicates++
				continue
			}
			visit(v, hu+1, u)
			queue = append(queue, v)
		}
	}
	t.queue = queue
	return res
}
