package search

import (
	"math/rand"
	"testing"

	"makalu/internal/content"
	"makalu/internal/graph"
	"makalu/internal/topology"
)

// abfFixture builds an ABF network over the given frozen graph with
// one store. Returns the network and store.
func abfFixture(t *testing.T, g *graph.Graph, objects int, replication float64, seed int64) (*ABFNetwork, *content.Store) {
	t.Helper()
	st, err := content.Place(g.N(), content.PlacementConfig{
		Objects: objects, Replication: replication, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	return net, st
}

func TestBuildABFValidation(t *testing.T) {
	g := path(5)
	st, err := content.Place(4, content.PlacementConfig{Objects: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildABFNetwork(g, st, DefaultABFConfig()); err == nil {
		t.Fatal("size mismatch should fail")
	}
	st5, _ := content.Place(5, content.PlacementConfig{Objects: 1, Seed: 1})
	cfg := DefaultABFConfig()
	cfg.Depth = 0
	if _, err := BuildABFNetwork(g, st5, cfg); err == nil {
		t.Fatal("zero depth should fail")
	}
	cfg = DefaultABFConfig()
	cfg.LevelBits = []int{64} // depth 3 needs 4 levels
	if _, err := BuildABFNetwork(g, st5, cfg); err == nil {
		t.Fatal("wrong level-size count should fail")
	}
}

func TestABFLevelsEncodeDistance(t *testing.T) {
	// Path 0-1-2-3-4 with every node hosting a unique object.
	g := path(5)
	st, err := content.Place(5, content.PlacementConfig{Objects: 5, Replication: 0, MinReplicas: 1, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	// For node 0's published hierarchy: an object hosted at node d (on
	// the path, distance d) must appear at level d for d <= depth.
	dist := make([]int32, 5)
	g.BFS(0, dist, nil)
	for _, obj := range st.Objects() {
		host := int(st.Replicas(obj)[0])
		d := int(dist[host])
		got := net.Filter(0).MatchLevel(obj)
		if d <= 3 {
			if got > d {
				t.Fatalf("object at distance %d matched at level %d (false negative impossible)", d, got)
			}
			if got != d {
				// Shallower match can only be a false positive; with
				// tiny filters holding one item each it must not occur.
				t.Fatalf("object at distance %d matched at level %d", d, got)
			}
		} else if got != -1 {
			t.Fatalf("object beyond the horizon matched at level %d", got)
		}
	}
}

func TestABFLookupDescendsGradient(t *testing.T) {
	// On a path with the object 3 hops away, the router must walk
	// straight to it: hops == distance, no wandering.
	g := path(8)
	st, err := content.Place(8, content.PlacementConfig{Objects: 8, Replication: 0, MinReplicas: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewABFRouter(net)
	rng := rand.New(rand.NewSource(6))
	for _, obj := range st.Objects() {
		host := int(st.Replicas(obj)[0])
		dist := make([]int32, 8)
		g.BFS(0, dist, nil)
		d := int(dist[host])
		if d == 0 || d > 3 {
			continue // outside the deterministic gradient zone
		}
		res := r.Lookup(0, obj, 20, rng)
		if !res.Success {
			t.Fatalf("lookup for object at distance %d failed", d)
		}
		if res.FirstMatchHop != d || res.Messages != d {
			t.Fatalf("object at distance %d took %d hops / %d messages", d, res.FirstMatchHop, res.Messages)
		}
	}
}

func TestABFLookupAtSource(t *testing.T) {
	g := cycle(10)
	net, st := abfFixture(t, g, 3, 0.5, 9)
	r := NewABFRouter(net)
	obj := st.Objects()[0]
	src := int(st.Replicas(obj)[0])
	res := r.Lookup(src, obj, 10, rand.New(rand.NewSource(10)))
	if !res.Success || res.FirstMatchHop != 0 || res.Messages != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestABFLookupMissingObjectFailsWithinTTL(t *testing.T) {
	g := cycle(30)
	net, _ := abfFixture(t, g, 3, 0.1, 11)
	r := NewABFRouter(net)
	res := r.Lookup(0, 0xfeedfacecafebeef, 12, rand.New(rand.NewSource(12)))
	if res.Success {
		t.Fatal("nonexistent object reported found")
	}
	if res.Messages > 12 {
		t.Fatalf("TTL exceeded: %d messages", res.Messages)
	}
}

func TestABFLookupBacktracksOutOfDeadEnd(t *testing.T) {
	// Star-with-tail: source at the end of a tail; object on a leaf of
	// the star. Router must backtrack out of wrong leaves.
	//
	//	0-1-2-hub(3); leaves 4,5,6 on the hub.
	g := graph.NewMutable(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(3, 5)
	g.AddEdge(3, 6)
	fr := g.Freeze(nil)
	st, err := content.Place(7, content.PlacementConfig{Objects: 7, Replication: 0, MinReplicas: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildABFNetwork(fr, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewABFRouter(net)
	rng := rand.New(rand.NewSource(14))
	for _, obj := range st.Objects() {
		res := r.Lookup(0, obj, 30, rng)
		if !res.Success {
			t.Fatalf("lookup failed on 7-node graph: %+v (host %v)", res, st.Replicas(obj))
		}
	}
}

func TestABFAutoSizingGrowsWithDepth(t *testing.T) {
	g := cycle(100)
	st, err := content.Place(100, content.PlacementConfig{Objects: 50, Replication: 0.05, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := net.Filter(0)
	for i := 1; i < f.Depth(); i++ {
		if f.Levels[i].Bits() < f.Levels[i-1].Bits() {
			t.Fatalf("level %d smaller than level %d", i, i-1)
		}
	}
	if net.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
}

func TestABFLookupOnExpanderResolvesMostQueries(t *testing.T) {
	// The paper's claim (§4.6): on well-connected overlays identifier
	// search resolves most queries within ~10 hops at 1% replication.
	n := 2000
	gm, err := topology.KRegular(n, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	g := gm.Freeze(nil)
	st, err := content.Place(n, content.PlacementConfig{Objects: 50, Replication: 0.01, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildABFNetwork(g, st, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := NewABFRouter(net)
	rng := rand.New(rand.NewSource(18))
	agg := NewAggregate()
	for q := 0; q < 300; q++ {
		obj := st.RandomObject(rng)
		agg.Add(r.Lookup(rng.Intn(n), obj, 25, rng))
	}
	if agg.SuccessRate() < 0.9 {
		t.Fatalf("ABF success rate %.2f below 0.9", agg.SuccessRate())
	}
	if agg.MeanMessages() > 15 {
		t.Fatalf("mean messages %.1f too high for 1%% replication", agg.MeanMessages())
	}
}

func TestABFRouterEpochReuse(t *testing.T) {
	g := cycle(50)
	net, st := abfFixture(t, g, 5, 0.1, 19)
	r := NewABFRouter(net)
	rng := rand.New(rand.NewSource(20))
	obj := st.Objects()[0]
	first := r.Lookup(0, obj, 30, rand.New(rand.NewSource(21)))
	for i := 0; i < 50; i++ {
		r.Lookup(i, st.RandomObject(rng), 30, rng)
	}
	again := r.Lookup(0, obj, 30, rand.New(rand.NewSource(21)))
	if first.Success != again.Success || first.Messages != again.Messages {
		t.Fatalf("router state leaked across lookups: %+v vs %+v", first, again)
	}
}
