package search

import "math/rand"

// RingConfig parameterizes expanding-ring TTL selection (§6 cites
// Chang & Liu's TTL-control work; expanding ring is the classic
// instance and RandomizedStart the randomized variant they propose
// when the object-location distribution is unknown).
type RingConfig struct {
	StartTTL        int  // first flood's TTL
	Step            int  // TTL increment between attempts
	MaxTTL          int  // give up beyond this TTL
	RandomizedStart bool // draw the first TTL uniformly from [1, StartTTL]
}

// DefaultRingConfig starts at TTL 1 and doubles coverage gently.
func DefaultRingConfig() RingConfig {
	return RingConfig{StartTTL: 1, Step: 1, MaxTTL: 8}
}

// ExpandingRing repeatedly floods from src with growing TTL until the
// query resolves or MaxTTL is exceeded. Messages accumulate across
// attempts (each re-flood re-sends the query), which is exactly the
// trade-off the TTL-selection literature optimizes.
func ExpandingRing(f *Flooder, src int, cfg RingConfig, match Matcher, rng *rand.Rand) Result {
	total := Result{FirstMatchHop: -1}
	if cfg.StartTTL < 1 {
		cfg.StartTTL = 1
	}
	if cfg.Step < 1 {
		cfg.Step = 1
	}
	if cfg.MaxTTL < cfg.StartTTL {
		cfg.MaxTTL = cfg.StartTTL
	}
	ttl := cfg.StartTTL
	if cfg.RandomizedStart && cfg.StartTTL > 1 {
		ttl = 1 + rng.Intn(cfg.StartTTL)
	}
	for {
		r := f.Flood(src, ttl, match)
		total.Messages += r.Messages
		total.Duplicates += r.Duplicates
		if r.Visited > total.Visited {
			total.Visited = r.Visited // rings revisit; report widest ring
		}
		if r.Success {
			total.Success = true
			total.FirstMatchHop = r.FirstMatchHop
			total.MatchesFound = r.MatchesFound
			return total
		}
		if ttl >= cfg.MaxTTL {
			return total
		}
		ttl += cfg.Step
		if ttl > cfg.MaxTTL {
			ttl = cfg.MaxTTL
		}
	}
}
