package search

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"makalu/internal/bloom"
	"makalu/internal/content"
	"makalu/internal/graph"
)

// ABFConfig parameterizes attenuated-Bloom-filter identifier search
// (§4.6). Depth is the hop horizon: each node publishes a hierarchy
// with Depth+1 levels, level h summarizing the identifiers hosted
// exactly h hops away (level 0 = the node's own store). The paper
// uses depth 3.
type ABFConfig struct {
	Depth     int     // hop horizon (levels = Depth+1)
	LevelBits []int   // optional per-level filter sizes; nil = auto-size
	Hashes    int     // hash functions per filter (0 = 4)
	Decay     float64 // per-level weight decay of the routing potential (0 = 0.5)
	TargetFPR float64 // per-level false-positive target for auto-sizing (0 = 0.01)
}

// DefaultABFConfig returns the paper's depth-3 configuration.
func DefaultABFConfig() ABFConfig {
	return ABFConfig{Depth: 3, Hashes: 4, Decay: 0.5, TargetFPR: 0.01}
}

// ABFNetwork holds the published filter hierarchy of every node. The
// implementation stores one self-rooted hierarchy per node that all
// neighbors consult (see DESIGN.md: per-edge filters without
// back-edge exclusion), which keeps 100k-node networks in memory.
type ABFNetwork struct {
	g       *graph.Graph
	store   *content.Store
	cfg     ABFConfig
	filters []*bloom.Attenuated
}

// BuildABFNetwork computes every node's hierarchy with an exact
// distance-limited BFS: node u inserts, at level h, the identifiers
// hosted by each node exactly h hops away. Construction parallelizes
// across nodes.
func BuildABFNetwork(g *graph.Graph, store *content.Store, cfg ABFConfig) (*ABFNetwork, error) {
	if g.N() != store.N() {
		return nil, fmt.Errorf("search: graph has %d nodes, store %d", g.N(), store.N())
	}
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("search: ABF depth must be >= 1, got %d", cfg.Depth)
	}
	if cfg.Hashes <= 0 {
		cfg.Hashes = 4
	}
	if cfg.Decay <= 0 || cfg.Decay >= 1 {
		cfg.Decay = 0.5
	}
	if cfg.TargetFPR <= 0 || cfg.TargetFPR >= 1 {
		cfg.TargetFPR = 0.01
	}
	levels := cfg.Depth + 1
	if cfg.LevelBits == nil {
		cfg.LevelBits = autoLevelBits(g, store, levels, cfg.TargetFPR)
	}
	if len(cfg.LevelBits) != levels {
		return nil, fmt.Errorf("search: need %d level sizes, got %d", levels, len(cfg.LevelBits))
	}

	net := &ABFNetwork{
		g:       g,
		store:   store,
		cfg:     cfg,
		filters: make([]*bloom.Attenuated, g.N()),
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (g.N() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > g.N() {
			hi = g.N()
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			dist := make([]int32, g.N())
			for i := range dist {
				dist[i] = -1
			}
			queue := make([]int32, 0, 4096)
			var touched []int32
			for u := lo; u < hi; u++ {
				a := bloom.NewAttenuated(cfg.LevelBits, cfg.Hashes)
				// Distance-limited BFS with manual reset of only the
				// touched entries (dist is shared per worker).
				queue = queue[:0]
				touched = touched[:0]
				dist[u] = 0
				queue = append(queue, int32(u))
				touched = append(touched, int32(u))
				for head := 0; head < len(queue); head++ {
					x := queue[head]
					dx := dist[x]
					for _, obj := range store.NodeObjects(int(x)) {
						a.Add(int(dx), obj)
					}
					if int(dx) >= cfg.Depth {
						continue
					}
					for _, v := range g.Neighbors(int(x)) {
						if dist[v] == -1 {
							dist[v] = dx + 1
							queue = append(queue, v)
							touched = append(touched, v)
						}
					}
				}
				for _, x := range touched {
					dist[x] = -1
				}
				net.filters[u] = a
			}
		}(lo, hi)
	}
	wg.Wait()
	return net, nil
}

// autoLevelBits sizes level filters for the expected identifier count
// at each hop distance: roughly meanObjects · meanDegree^h items.
func autoLevelBits(g *graph.Graph, store *content.Store, levels int, fpr float64) []int {
	meanObjs := 0.0
	for u := 0; u < store.N(); u++ {
		meanObjs += float64(len(store.NodeObjects(u)))
	}
	if store.N() > 0 {
		meanObjs /= float64(store.N())
	}
	if meanObjs < 1 {
		meanObjs = 1
	}
	deg := g.MeanDegree()
	if deg < 2 {
		deg = 2
	}
	sizes := make([]int, levels)
	reach := 1.0
	for h := 0; h < levels; h++ {
		expected := int(meanObjs * reach)
		if expected < 8 {
			expected = 8
		}
		ref := bloom.NewOptimal(expected, fpr)
		sizes[h] = nextPow2(ref.Bits())
		reach *= deg
		if reach > float64(g.N()) {
			reach = float64(g.N())
		}
	}
	return sizes
}

func nextPow2(x int) int {
	p := 64
	for p < x {
		p <<= 1
	}
	return p
}

// Filter returns node u's published hierarchy (for tests/inspection).
func (n *ABFNetwork) Filter(u int) *bloom.Attenuated { return n.filters[u] }

// MemoryBytes returns the total filter footprint, the figure the
// paper's feasibility argument rests on.
func (n *ABFNetwork) MemoryBytes() int64 {
	var total int64
	for _, f := range n.filters {
		total += int64(f.MemoryBits() / 8)
	}
	return total
}

// ABFRouter performs identifier lookups over an ABFNetwork. Not safe
// for concurrent use; create one per worker.
type ABFRouter struct {
	net     *ABFNetwork
	epoch   int32
	visited []int32
	path    []int32 // current route, for backtracking
}

// NewABFRouter creates a router over net.
func NewABFRouter(net *ABFNetwork) *ABFRouter {
	return &ABFRouter{net: net, visited: make([]int32, net.g.N())}
}

// Lookup routes a query for identifier obj from src with a hop budget
// of ttl. At every node the router scores each unvisited neighbor by
// the potential function over the neighbor's published hierarchy —
// shallow matches dominate (§4.6) — and forwards to the best. When no
// neighbor's filter matches, it explores a random unvisited neighbor;
// when stuck, it backtracks (both cost a message, as they would on the
// wire). Success means reaching a node whose store holds obj.
func (r *ABFRouter) Lookup(src int, obj uint64, ttl int, rng *rand.Rand) Result {
	res, _ := r.LookupNode(src, obj, ttl, rng)
	return res
}

// LookupNode is Lookup plus the identity of the node the route ended
// on: the replica that answered when the lookup succeeded, or -1. The
// streaming workload uses it to turn identifier routing into replica
// discovery — a chunk transfer needs an address to pull from, not just
// the fact that one exists.
func (r *ABFRouter) LookupNode(src int, obj uint64, ttl int, rng *rand.Rand) (Result, int) {
	r.epoch++
	ep := r.epoch
	res := Result{FirstMatchHop: -1}
	res.Visited = 1
	r.visited[src] = ep
	if r.net.store.Has(src, obj) {
		res.Success = true
		res.FirstMatchHop = 0
		res.MatchesFound = 1
		return res, src
	}
	r.path = append(r.path[:0], int32(src))
	cur := src
	hops := 0
	for res.Messages < ttl {
		next := r.pickNext(cur, obj, rng)
		if next < 0 {
			// Dead end: backtrack one hop if possible.
			if len(r.path) <= 1 {
				return res, -1 // nowhere left to go
			}
			r.path = r.path[:len(r.path)-1]
			cur = int(r.path[len(r.path)-1])
			res.Messages++
			hops++
			continue
		}
		res.Messages++
		hops++
		r.visited[next] = ep
		res.Visited++
		r.path = append(r.path, int32(next))
		cur = next
		if r.net.store.Has(cur, obj) {
			res.Success = true
			res.FirstMatchHop = hops
			res.MatchesFound = 1
			return res, cur
		}
	}
	return res, -1
}

// pickNext scores unvisited neighbors of u and returns the best, a
// random unvisited one when no filter matches, or -1 at a dead end.
func (r *ABFRouter) pickNext(u int, obj uint64, rng *rand.Rand) int {
	best := -1
	bestScore := 0.0
	nUnvisited := 0
	var fallback int = -1
	for _, v := range r.net.g.Neighbors(u) {
		if r.visited[v] == r.epoch {
			continue
		}
		nUnvisited++
		// Reservoir-sample a uniform fallback candidate.
		if rng.Intn(nUnvisited) == 0 {
			fallback = int(v)
		}
		s := r.net.filters[v].Score(obj, r.net.cfg.Decay)
		if s > bestScore {
			bestScore = s
			best = int(v)
		}
	}
	if best >= 0 {
		return best
	}
	return fallback
}
