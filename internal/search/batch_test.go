package search

import (
	"math/rand"
	"reflect"
	"testing"

	"makalu/internal/content"
	"makalu/internal/graph"
	"makalu/internal/topology"
)

// testGraph builds a connected ring-plus-chords graph: deterministic,
// mean degree ≈ 6, small-world enough that every mechanism exercises
// its interesting paths (duplicates, backtracking, walker collisions).
func testGraph(n int) *graph.Graph {
	g := graph.NewMutable(n)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
		for c := 0; c < 2; c++ {
			j := rng.Intn(n)
			if j != i {
				g.AddEdge(i, j)
			}
		}
	}
	return g.Freeze(nil)
}

func testStore(t testing.TB, n int) *content.Store {
	t.Helper()
	store, err := content.Place(n, content.PlacementConfig{
		Objects: 10, Replication: 0.02, MinReplicas: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// runBoth executes the same batch sequentially (Workers=1) and in
// parallel (Workers=8) and asserts the aggregates are identical —
// including the full hop and message distributions.
func runBoth(t *testing.T, g *graph.Graph, queries int, fn QueryFunc) {
	t.Helper()
	seq := (&BatchRunner{Graph: g, Workers: 1, Seed: 42}).Run(queries, fn)
	par := (&BatchRunner{Graph: g, Workers: 8, Seed: 42}).Run(queries, fn)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel aggregate diverged from sequential:\n  seq: %v\n  par: %v", seq, par)
	}
	if seq.Queries != queries {
		t.Fatalf("aggregate covers %d queries, want %d", seq.Queries, queries)
	}
}

func TestBatchFloodParallelMatchesSequential(t *testing.T) {
	const n = 600
	g := testGraph(n)
	store := testStore(t, n)
	runBoth(t, g, 200, func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return k.Flooder().Flood(src, 4, func(u int) bool { return store.Has(u, obj) })
	})
}

func TestBatchWalkParallelMatchesSequential(t *testing.T) {
	const n = 600
	g := testGraph(n)
	store := testStore(t, n)
	cfg := WalkConfig{Walkers: 8, MaxSteps: 256, CheckInterval: 4}
	runBoth(t, g, 200, func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return k.Walker().Random(src, cfg, func(u int) bool { return store.Has(u, obj) }, rng)
	})
}

func TestBatchDegreeBiasedParallelMatchesSequential(t *testing.T) {
	const n = 600
	g := testGraph(n)
	store := testStore(t, n)
	runBoth(t, g, 200, func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return k.Walker().DegreeBiased(src, 256, func(u int) bool { return store.Has(u, obj) }, rng)
	})
}

func TestBatchExpandingRingParallelMatchesSequential(t *testing.T) {
	const n = 600
	g := testGraph(n)
	store := testStore(t, n)
	cfg := RingConfig{StartTTL: 1, Step: 1, MaxTTL: 6, RandomizedStart: true}
	runBoth(t, g, 200, func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return ExpandingRing(k.Flooder(), src, cfg, func(u int) bool { return store.Has(u, obj) }, rng)
	})
}

func TestBatchTwoTierParallelMatchesSequential(t *testing.T) {
	const n = 600
	cfg := topology.DefaultTwoTier()
	cfg.Seed = 5
	tt := topology.NewTwoTier(n, cfg)
	g := tt.Graph.Freeze(nil)
	store := testStore(t, n)
	qrp := make([]*content.QRPTable, n)
	for u := 0; u < n; u++ {
		if !tt.IsUltra[u] {
			qrp[u] = content.BuildQRPTable(store, u, 1024, 3)
		}
	}
	runBoth(t, g, 150, func(k *Kernel, q int, rng *rand.Rand) Result {
		fl, err := k.TwoTier(tt.IsUltra, qrp)
		if err != nil {
			t.Error(err)
			return Result{FirstMatchHop: -1}
		}
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return fl.Flood(src, 3, obj, func(u int) bool { return store.Has(u, obj) })
	})
}

func TestBatchABFLookupParallelMatchesSequential(t *testing.T) {
	const n = 400
	g := testGraph(n)
	store := testStore(t, n)
	net, err := BuildABFNetwork(g, store, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, g, 150, func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return k.ABF(net).Lookup(src, obj, 25, rng)
	})
}

func TestBatchPerEdgeABFLookupParallelMatchesSequential(t *testing.T) {
	const n = 200
	g := testGraph(n)
	store := testStore(t, n)
	net, err := BuildPerEdgeABFNetwork(g, store, DefaultABFConfig())
	if err != nil {
		t.Fatal(err)
	}
	runBoth(t, g, 100, func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return k.PerEdgeABF(net).Lookup(src, obj, 25, rng)
	})
}

func TestBatchGossipParallelMatchesSequential(t *testing.T) {
	const n = 600
	g := testGraph(n)
	store := testStore(t, n)
	cfg := DefaultGossipConfig()
	runBoth(t, g, 150, func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return k.Gossip().Flood(src, 4, cfg, func(u int) bool { return store.Has(u, obj) }, rng)
	})
}

// The worker count must never change the aggregate, not just 1-vs-8.
func TestBatchWorkerCountInvariance(t *testing.T) {
	const n = 400
	g := testGraph(n)
	store := testStore(t, n)
	fn := func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return k.Flooder().Flood(src, 3, func(u int) bool { return store.Has(u, obj) })
	}
	ref := (&BatchRunner{Graph: g, Workers: 1, Seed: 9}).Run(137, fn)
	for _, w := range []int{2, 3, 5, 16, 1000} {
		got := (&BatchRunner{Graph: g, Workers: w, Seed: 9}).Run(137, fn)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Workers=%d diverged from sequential", w)
		}
	}
}

func TestBatchSeedChangesResults(t *testing.T) {
	const n = 400
	g := testGraph(n)
	store := testStore(t, n)
	fn := func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return k.Flooder().Flood(src, 3, func(u int) bool { return store.Has(u, obj) })
	}
	a := (&BatchRunner{Graph: g, Seed: 1}).Run(100, fn)
	b := (&BatchRunner{Graph: g, Seed: 2}).Run(100, fn)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different batch seeds produced identical aggregates")
	}
}

func TestBatchEmptyAndTiny(t *testing.T) {
	g := testGraph(50)
	fn := func(k *Kernel, q int, rng *rand.Rand) Result {
		return k.Flooder().Flood(rng.Intn(50), 2, func(int) bool { return false })
	}
	if agg := (&BatchRunner{Graph: g, Workers: 8}).Run(0, fn); agg.Queries != 0 {
		t.Fatalf("empty batch recorded %d queries", agg.Queries)
	}
	if agg := (&BatchRunner{Graph: g, Workers: 8}).Run(1, fn); agg.Queries != 1 {
		t.Fatalf("singleton batch recorded %d queries", agg.Queries)
	}
}

func TestQuerySeedDistinct(t *testing.T) {
	seen := make(map[int64]int, 4096)
	for q := 0; q < 4096; q++ {
		s := QuerySeed(1, q)
		if prev, dup := seen[s]; dup {
			t.Fatalf("queries %d and %d share seed %d", prev, q, s)
		}
		seen[s] = q
	}
	if QuerySeed(1, 0) == QuerySeed(2, 0) {
		t.Fatal("batch seed does not influence query seeds")
	}
}

// The walk kernels must be allocation-free in steady state — this is
// the regression gate for the map[int32]bool → epoch-array conversion.
func TestWalkerZeroAllocSteadyState(t *testing.T) {
	const n = 2000
	g := testGraph(n)
	w := NewWalker(g)
	rng := rand.New(rand.NewSource(3))
	cfg := WalkConfig{Walkers: 16, MaxSteps: 128, CheckInterval: 4}
	match := func(int) bool { return false }
	// Warm up so the walker-state slice reaches capacity.
	w.Random(0, cfg, match, rng)
	if avg := testing.AllocsPerRun(20, func() {
		w.Random(rng.Intn(n), cfg, match, rng)
	}); avg != 0 {
		t.Fatalf("Walker.Random allocates %.1f/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(20, func() {
		w.DegreeBiased(rng.Intn(n), 128, match, rng)
	}); avg != 0 {
		t.Fatalf("Walker.DegreeBiased allocates %.1f/op in steady state, want 0", avg)
	}
}

// Free-function wrappers must behave exactly like a fresh kernel.
func TestWalkWrappersMatchKernel(t *testing.T) {
	const n = 500
	g := testGraph(n)
	store := testStore(t, n)
	cfg := WalkConfig{Walkers: 8, MaxSteps: 200, CheckInterval: 4}
	obj := store.Objects()[0]
	match := func(u int) bool { return store.Has(u, obj) }
	a := RandomWalk(g, 3, cfg, match, rand.New(rand.NewSource(11)))
	b := NewWalker(g).Random(3, cfg, match, rand.New(rand.NewSource(11)))
	if a != b {
		t.Fatalf("RandomWalk wrapper diverged: %+v vs %+v", a, b)
	}
	c := DegreeBiasedWalk(g, 3, 200, match, rand.New(rand.NewSource(12)))
	d := NewWalker(g).DegreeBiased(3, 200, match, rand.New(rand.NewSource(12)))
	if c != d {
		t.Fatalf("DegreeBiasedWalk wrapper diverged: %+v vs %+v", c, d)
	}
}

// BenchmarkWalkerRandomWalk is the allocation regression benchmark the
// kernel conversion is gated on: 0 allocs/op in steady state.
func BenchmarkWalkerRandomWalk(b *testing.B) {
	const n = 2000
	g := testGraph(n)
	w := NewWalker(g)
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultWalkConfig()
	cfg.MaxSteps = 256
	match := func(int) bool { return false }
	w.Random(0, cfg, match, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Random(i%n, cfg, match, rng)
	}
}

// BenchmarkWalkerDegreeBiased tracks the single-walker variant.
func BenchmarkWalkerDegreeBiased(b *testing.B) {
	const n = 2000
	g := testGraph(n)
	w := NewWalker(g)
	rng := rand.New(rand.NewSource(3))
	match := func(int) bool { return false }
	w.DegreeBiased(0, 256, match, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.DegreeBiased(i%n, 256, match, rng)
	}
}

// BenchmarkBatchFlood measures the batch engine end to end at both
// worker settings (the BENCH_search.json scenarios run the same pair
// through the command; see cmd/makalu-experiments).
func BenchmarkBatchFlood(b *testing.B) {
	const n = 2000
	g := testGraph(n)
	store, err := content.Place(n, content.PlacementConfig{
		Objects: 20, Replication: 0.01, MinReplicas: 1, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	fn := func(k *Kernel, q int, rng *rand.Rand) Result {
		obj := store.RandomObject(rng)
		src := rng.Intn(n)
		return k.Flooder().Flood(src, 4, func(u int) bool { return store.Has(u, obj) })
	}
	for _, workers := range []int{1, 8} {
		name := "sequential"
		if workers > 1 {
			name = "parallel-8"
		}
		b.Run(name, func(b *testing.B) {
			br := &BatchRunner{Graph: g, Workers: workers, Seed: 42}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				br.Run(200, fn)
			}
		})
	}
}
