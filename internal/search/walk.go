package search

import (
	"math/rand"

	"makalu/internal/graph"
)

// WalkConfig parameterizes the k-walker random-walk search of Lv et
// al., the related-work baseline the paper discusses (§6): k walkers
// leave the source, each taking up to MaxSteps steps, checking every
// visited node; walkers coordinate with the source every
// CheckInterval steps and stop once the query is resolved.
type WalkConfig struct {
	Walkers       int // parallel walkers (k)
	MaxSteps      int // per-walker step budget (TTL analogue)
	CheckInterval int // steps between success checks with the source
}

// DefaultWalkConfig mirrors the common 16-walker, check-every-4 setup.
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{Walkers: 16, MaxSteps: 1024, CheckInterval: 4}
}

// Walker runs random-walk searches over a frozen graph, reusing
// epoch-stamped scratch between queries so large batches stay
// allocation-free (the seed implementation kept per-query
// map[int32]bool visited sets; the epoch array replaces them the same
// way Flooder's visited array works). Not safe for concurrent use;
// create one Walker per worker.
type Walker struct {
	g     *graph.Graph
	epoch int32
	seen  []int32 // epoch when node was first seen by any walker
	ws    []walkerState
}

type walkerState struct {
	at, prev int32
	alive    bool
}

// NewWalker creates a Walker for g.
func NewWalker(g *graph.Graph) *Walker {
	return &Walker{g: g, seen: make([]int32, g.N())}
}

// Random runs a k-walker search for a match from src. Each step moves
// a walker to a uniformly random neighbor, avoiding an immediate
// U-turn when the node has another choice. Messages count one per
// step. Walkers run in lockstep rounds; when a walker succeeds, the
// others keep walking until their next checkpoint, as the checking
// protocol implies.
func (w *Walker) Random(src int, cfg WalkConfig, match Matcher, rng *rand.Rand) Result {
	res := Result{FirstMatchHop: -1}
	if cfg.Walkers <= 0 || cfg.MaxSteps <= 0 {
		return res
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 4
	}
	res.Visited = 1
	if match(src) {
		res.Success = true
		res.FirstMatchHop = 0
		res.MatchesFound = 1
		return res
	}
	w.epoch++
	ep := w.epoch
	if cap(w.ws) < cfg.Walkers {
		w.ws = make([]walkerState, cfg.Walkers)
	}
	ws := w.ws[:cfg.Walkers]
	for i := range ws {
		ws[i] = walkerState{at: int32(src), prev: -1, alive: true}
	}
	w.seen[src] = ep
	g := w.g
	stopAt := -1 // round at which all walkers stop (set at success checkpoint)
	for step := 1; step <= cfg.MaxSteps; step++ {
		if stopAt >= 0 && step > stopAt {
			break
		}
		anyAlive := false
		for i := range ws {
			wk := &ws[i]
			if !wk.alive {
				continue
			}
			nb := g.Neighbors(int(wk.at))
			if len(nb) == 0 {
				wk.alive = false
				continue
			}
			next := nb[rng.Intn(len(nb))]
			if next == wk.prev && len(nb) > 1 {
				// avoid the immediate U-turn; one retry keeps the walk
				// uniform enough without biasing long loops
				next = nb[rng.Intn(len(nb))]
			}
			wk.prev = wk.at
			wk.at = next
			res.Messages++
			anyAlive = true
			if w.seen[next] != ep {
				w.seen[next] = ep
				res.Visited++
			}
			if match(int(next)) {
				res.MatchesFound++
				wk.alive = false // this walker is done
				if !res.Success {
					res.Success = true
					res.FirstMatchHop = step
					// Everyone else stops at the next checkpoint.
					stopAt = step + (cfg.CheckInterval - step%cfg.CheckInterval)
				}
			}
		}
		if !anyAlive {
			break
		}
	}
	return res
}

// DegreeBiased is the high-degree-seeking search of Adamic et al.
// that §6 discusses: a single walker always moves to the
// highest-degree unvisited neighbor (falling back to random when all
// are visited), checking every node it passes. It exploits power-law
// hubs — and concentrates query load on them, which is the burden the
// paper's related-work section calls out. Messages count one per
// step; the walk gives up after maxSteps.
func (w *Walker) DegreeBiased(src, maxSteps int, match Matcher, rng *rand.Rand) Result {
	res := Result{FirstMatchHop: -1}
	res.Visited = 1
	if match(src) {
		res.Success = true
		res.FirstMatchHop = 0
		res.MatchesFound = 1
		return res
	}
	w.epoch++
	ep := w.epoch
	w.seen[src] = ep
	g := w.g
	cur := src
	for step := 1; step <= maxSteps; step++ {
		nb := g.Neighbors(cur)
		if len(nb) == 0 {
			return res
		}
		next := int32(-1)
		bestDeg := -1
		for _, v := range nb {
			if w.seen[v] == ep {
				continue
			}
			if d := g.Degree(int(v)); d > bestDeg {
				bestDeg = d
				next = v
			}
		}
		if next == -1 {
			// All neighbors visited: take a uniformly random step so
			// the walk can escape local saturation.
			next = nb[rng.Intn(len(nb))]
		}
		cur = int(next)
		res.Messages++
		if w.seen[next] != ep {
			w.seen[next] = ep
			res.Visited++
		}
		if match(cur) {
			res.Success = true
			res.FirstMatchHop = step
			res.MatchesFound = 1
			return res
		}
	}
	return res
}

// RandomWalk runs a one-off k-walker search, allocating a fresh
// Walker. Batch callers should hold a Walker (or use a Kernel) so the
// scratch is reused.
func RandomWalk(g *graph.Graph, src int, cfg WalkConfig, match Matcher, rng *rand.Rand) Result {
	return NewWalker(g).Random(src, cfg, match, rng)
}

// DegreeBiasedWalk runs a one-off degree-biased walk, allocating a
// fresh Walker.
func DegreeBiasedWalk(g *graph.Graph, src, maxSteps int, match Matcher, rng *rand.Rand) Result {
	return NewWalker(g).DegreeBiased(src, maxSteps, match, rng)
}
