package search

import (
	"math"
	"testing"

	"makalu/internal/graph"
)

func weightedPath(n int, w float64) *graph.Graph {
	g := graph.NewMutable(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g.Freeze(func(u, v int) float64 { return w })
}

func TestFloodFirstMatchLatency(t *testing.T) {
	g := weightedPath(10, 7.5)
	f := NewFlooder(g)
	r := f.Flood(0, 9, func(u int) bool { return u == 4 })
	if !r.Success {
		t.Fatal("flood failed")
	}
	if math.Abs(r.FirstMatchLatency-4*7.5) > 1e-12 {
		t.Fatalf("latency = %v, want 30", r.FirstMatchLatency)
	}
}

func TestFloodLatencyZeroWithoutWeights(t *testing.T) {
	f := NewFlooder(path(10))
	r := f.Flood(0, 9, func(u int) bool { return u == 4 })
	if r.FirstMatchLatency != 0 {
		t.Fatalf("unweighted graph should give 0 latency, got %v", r.FirstMatchLatency)
	}
}

func TestFloodLatencyFollowsShortestTree(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3 with different edge costs. BFS reaches
	// 3 at hop 2 through whichever branch is enumerated first; the
	// reported latency must match a real flood-tree path (either 3 or
	// 30), never a mixture.
	g := graph.NewMutable(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	fr := g.Freeze(func(u, v int) float64 {
		if u == 1 || v == 1 {
			return 1.5
		}
		return 15
	})
	f := NewFlooder(fr)
	r := f.Flood(0, 3, func(u int) bool { return u == 3 })
	if !r.Success {
		t.Fatal("flood failed")
	}
	via1 := 3.0  // 1.5 + 1.5
	via2 := 30.0 // 15 + 15
	if math.Abs(r.FirstMatchLatency-via1) > 1e-9 && math.Abs(r.FirstMatchLatency-via2) > 1e-9 {
		t.Fatalf("latency %v matches no flood-tree path (want %v or %v)",
			r.FirstMatchLatency, via1, via2)
	}
}

func TestAggregateMeanLatency(t *testing.T) {
	a := NewAggregate()
	a.Add(Result{Success: true, FirstMatchHop: 1, FirstMatchLatency: 10})
	a.Add(Result{Success: true, FirstMatchHop: 2, FirstMatchLatency: 30})
	a.Add(Result{FirstMatchHop: -1}) // failure: no latency contribution
	if got := a.MeanLatency(); got != 20 {
		t.Fatalf("mean latency = %v, want 20", got)
	}
	b := NewAggregate()
	b.Add(Result{Success: true, FirstMatchHop: 1, FirstMatchLatency: 50})
	a.Merge(b)
	if got := a.MeanLatency(); got != 30 {
		t.Fatalf("merged mean latency = %v, want 30", got)
	}
	if NewAggregate().MeanLatency() != 0 {
		t.Fatal("empty aggregate should report 0 latency")
	}
}
