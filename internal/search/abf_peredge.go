package search

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"makalu/internal/bloom"
	"makalu/internal/content"
	"makalu/internal/graph"
)

// PerEdgeABFNetwork is the exact Rhea–Kubiatowicz filter layout: node
// u keeps one attenuated filter per neighbor v, whose level h
// summarizes the identifiers reachable exactly h hops from u when the
// first hop is v — computed with u excluded from the BFS, so content
// whose only route doubles back through u is not advertised (the
// "back-edge exclusion" the shared-hierarchy default trades away; see
// DESIGN.md item 3). Memory is O(edges × levels) instead of O(nodes ×
// levels), which is why this variant is reserved for moderate sizes
// and the ablation benchmarks.
type PerEdgeABFNetwork struct {
	g     *graph.Graph
	store *content.Store
	cfg   ABFConfig
	// filters is indexed by CSR half-edge position: filters[i] is the
	// filter kept by node u for neighbor g.Edges[i], where i lies in
	// [g.Offsets[u], g.Offsets[u+1]).
	filters []*bloom.Attenuated
}

// BuildPerEdgeABFNetwork computes all per-edge hierarchies. Level
// geometry and auto-sizing match BuildABFNetwork so the two variants
// are directly comparable.
func BuildPerEdgeABFNetwork(g *graph.Graph, store *content.Store, cfg ABFConfig) (*PerEdgeABFNetwork, error) {
	if g.N() != store.N() {
		return nil, fmt.Errorf("search: graph has %d nodes, store %d", g.N(), store.N())
	}
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("search: ABF depth must be >= 1, got %d", cfg.Depth)
	}
	if cfg.Hashes <= 0 {
		cfg.Hashes = 4
	}
	if cfg.Decay <= 0 || cfg.Decay >= 1 {
		cfg.Decay = 0.5
	}
	if cfg.TargetFPR <= 0 || cfg.TargetFPR >= 1 {
		cfg.TargetFPR = 0.01
	}
	levels := cfg.Depth + 1
	if cfg.LevelBits == nil {
		cfg.LevelBits = autoLevelBits(g, store, levels, cfg.TargetFPR)
	}
	if len(cfg.LevelBits) != levels {
		return nil, fmt.Errorf("search: need %d level sizes, got %d", levels, len(cfg.LevelBits))
	}
	net := &PerEdgeABFNetwork{
		g:       g,
		store:   store,
		cfg:     cfg,
		filters: make([]*bloom.Attenuated, len(g.Edges)),
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (g.N() + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > g.N() {
			hi = g.N()
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			dist := make([]int32, g.N())
			for i := range dist {
				dist[i] = -1
			}
			queue := make([]int32, 0, 4096)
			var touched []int32
			for u := lo; u < hi; u++ {
				for ei := g.Offsets[u]; ei < g.Offsets[u+1]; ei++ {
					v := g.Edges[ei]
					a := bloom.NewAttenuated(cfg.LevelBits, cfg.Hashes)
					// BFS from v with u excluded; node x at distance
					// d from v is d+1 hops from u through v.
					queue = queue[:0]
					touched = touched[:0]
					dist[u] = -2 // sentinel: never enter u
					touched = append(touched, int32(u))
					dist[v] = 0
					queue = append(queue, v)
					touched = append(touched, v)
					for head := 0; head < len(queue); head++ {
						x := queue[head]
						dx := dist[x]
						level := int(dx) + 1 // hops from u
						if level <= cfg.Depth {
							for _, obj := range store.NodeObjects(int(x)) {
								a.Add(level, obj)
							}
						}
						if level >= cfg.Depth {
							continue
						}
						for _, y := range g.Neighbors(int(x)) {
							if dist[y] == -1 {
								dist[y] = dx + 1
								queue = append(queue, y)
								touched = append(touched, y)
							}
						}
					}
					for _, x := range touched {
						dist[x] = -1
					}
					net.filters[ei] = a
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return net, nil
}

// EdgeFilter returns the filter node u keeps for its neighbor v, or
// nil when (u, v) is not an edge.
func (n *PerEdgeABFNetwork) EdgeFilter(u, v int) *bloom.Attenuated {
	for i := n.g.Offsets[u]; i < n.g.Offsets[u+1]; i++ {
		if int(n.g.Edges[i]) == v {
			return n.filters[i]
		}
	}
	return nil
}

// MemoryBytes returns the total filter footprint.
func (n *PerEdgeABFNetwork) MemoryBytes() int64 {
	var total int64
	for _, f := range n.filters {
		if f != nil {
			total += int64(f.MemoryBits() / 8)
		}
	}
	return total
}

// PerEdgeABFRouter routes identifier lookups over per-edge filters.
// Not safe for concurrent use.
type PerEdgeABFRouter struct {
	net     *PerEdgeABFNetwork
	epoch   int32
	visited []int32
	path    []int32
}

// NewPerEdgeABFRouter creates a router over net.
func NewPerEdgeABFRouter(net *PerEdgeABFNetwork) *PerEdgeABFRouter {
	return &PerEdgeABFRouter{net: net, visited: make([]int32, net.g.N())}
}

// Lookup mirrors ABFRouter.Lookup but scores each candidate neighbor
// v with the filter the CURRENT node keeps for v, so advertised
// content never includes routes doubling back through the current
// node.
func (r *PerEdgeABFRouter) Lookup(src int, obj uint64, ttl int, rng *rand.Rand) Result {
	r.epoch++
	ep := r.epoch
	res := Result{FirstMatchHop: -1}
	res.Visited = 1
	r.visited[src] = ep
	if r.net.store.Has(src, obj) {
		res.Success = true
		res.FirstMatchHop = 0
		res.MatchesFound = 1
		return res
	}
	r.path = append(r.path[:0], int32(src))
	cur := src
	hops := 0
	for res.Messages < ttl {
		next := r.pickNext(cur, obj, rng)
		if next < 0 {
			if len(r.path) <= 1 {
				return res
			}
			r.path = r.path[:len(r.path)-1]
			cur = int(r.path[len(r.path)-1])
			res.Messages++
			hops++
			continue
		}
		res.Messages++
		hops++
		r.visited[next] = ep
		res.Visited++
		r.path = append(r.path, int32(next))
		cur = next
		if r.net.store.Has(cur, obj) {
			res.Success = true
			res.FirstMatchHop = hops
			res.MatchesFound = 1
			return res
		}
	}
	return res
}

func (r *PerEdgeABFRouter) pickNext(u int, obj uint64, rng *rand.Rand) int {
	best := -1
	bestScore := 0.0
	nUnvisited := 0
	fallback := -1
	g := r.net.g
	for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
		v := g.Edges[i]
		if r.visited[v] == r.epoch {
			continue
		}
		nUnvisited++
		if rng.Intn(nUnvisited) == 0 {
			fallback = int(v)
		}
		s := r.net.filters[i].Score(obj, r.net.cfg.Decay)
		if s > bestScore {
			bestScore = s
			best = int(v)
		}
	}
	if best >= 0 {
		return best
	}
	return fallback
}
