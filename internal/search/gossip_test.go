package search

import (
	"math/rand"
	"testing"

	"makalu/internal/content"
	"makalu/internal/topology"
)

func TestGossipDegeneratesToFloodAtP1(t *testing.T) {
	g := cycle(20)
	gf := NewGossipFlooder(g)
	fl := NewFlooder(g)
	cfg := GossipConfig{BoundaryHops: 0, Probability: 1}
	rng := rand.New(rand.NewSource(1))
	for ttl := 0; ttl <= 6; ttl++ {
		a := gf.Flood(0, ttl, cfg, noMatch, rng)
		b := fl.Flood(0, ttl, noMatch)
		if a != b {
			t.Fatalf("ttl %d: gossip@p=1 %+v != flood %+v", ttl, a, b)
		}
	}
}

func TestGossipInvalidProbabilityClamps(t *testing.T) {
	g := cycle(10)
	gf := NewGossipFlooder(g)
	rng := rand.New(rand.NewSource(2))
	a := gf.Flood(0, 3, GossipConfig{BoundaryHops: 0, Probability: -1}, noMatch, rng)
	b := NewFlooder(g).Flood(0, 3, noMatch)
	if a != b {
		t.Fatalf("invalid p should clamp to 1: %+v vs %+v", a, b)
	}
}

func TestGossipMatchAtSourceAndZeroTTL(t *testing.T) {
	g := cycle(10)
	gf := NewGossipFlooder(g)
	rng := rand.New(rand.NewSource(3))
	r := gf.Flood(4, 0, DefaultGossipConfig(), func(u int) bool { return u == 4 }, rng)
	if !r.Success || r.FirstMatchHop != 0 || r.Messages != 0 {
		t.Fatalf("%+v", r)
	}
}

func TestGossipReducesDuplicatesPastBoundary(t *testing.T) {
	// On a dense expander flooded past its convergence boundary,
	// gossip at p=0.5 must cut duplicates while keeping most coverage.
	gm, err := topology.KRegular(2000, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := gm.Freeze(nil)
	st, err := content.Place(2000, content.PlacementConfig{Objects: 10, Replication: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFlooder(g)
	gf := NewGossipFlooder(g)
	cfg := GossipConfig{BoundaryHops: 2, Probability: 0.5}
	rng := rand.New(rand.NewSource(6))
	flood := NewAggregate()
	gossip := NewAggregate()
	for q := 0; q < 100; q++ {
		obj := st.RandomObject(rng)
		src := rng.Intn(2000)
		match := func(u int) bool { return st.Has(u, obj) }
		flood.Add(fl.Flood(src, 4, match))
		gossip.Add(gf.Flood(src, 4, cfg, match, rng))
	}
	if gossip.TotalDuplicates >= flood.TotalDuplicates/2 {
		t.Fatalf("gossip duplicates %d should be well below flood's %d",
			gossip.TotalDuplicates, flood.TotalDuplicates)
	}
	if gossip.MeanMessages() >= flood.MeanMessages() {
		t.Fatal("gossip should send fewer messages")
	}
	if gossip.SuccessRate() < 0.9*flood.SuccessRate() {
		t.Fatalf("gossip success %.2f lost too much vs flood %.2f",
			gossip.SuccessRate(), flood.SuccessRate())
	}
}

func TestGossipEpochReuse(t *testing.T) {
	g := cycle(30)
	gf := NewGossipFlooder(g)
	cfg := GossipConfig{BoundaryHops: 10, Probability: 1} // deterministic
	rng := rand.New(rand.NewSource(7))
	first := gf.Flood(0, 5, cfg, noMatch, rng)
	for i := 0; i < 40; i++ {
		gf.Flood(i%30, 5, cfg, noMatch, rng)
	}
	again := gf.Flood(0, 5, cfg, noMatch, rng)
	if first != again {
		t.Fatalf("state leaked: %+v vs %+v", first, again)
	}
}

func TestConvergenceBoundary(t *testing.T) {
	// Path: half the nodes are within n/2 hops of an endpoint.
	g := path(21)
	if b := ConvergenceBoundary(g, 0); b < 8 || b > 12 {
		t.Fatalf("path boundary from end = %d, want ≈ 10", b)
	}
	// Expander: boundary ≈ half the diameter, which is ~log n.
	gm, err := topology.KRegular(1000, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := gm.Freeze(nil)
	b := ConvergenceBoundary(f, 0)
	diam := f.HopDiameter()
	if b < 1 || b > diam {
		t.Fatalf("boundary %d outside (0, diameter %d]", b, diam)
	}
	if b > (diam+2)/2+1 {
		t.Fatalf("expander boundary %d should be ≈ half the diameter %d", b, diam)
	}
}

func TestConvergenceBoundaryTinyGraph(t *testing.T) {
	g := path(2)
	if b := ConvergenceBoundary(g, 0); b < 0 || b > 1 {
		t.Fatalf("boundary on K2 = %d", b)
	}
}
