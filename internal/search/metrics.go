package search

import (
	"fmt"

	"makalu/internal/stats"
)

// Aggregate accumulates Results over a batch of queries and exposes
// the metrics the paper reports: success rate, mean messages per
// query, duplicate ratio and the hop distribution of first matches.
type Aggregate struct {
	Queries         int
	Successes       int
	TotalMessages   int64
	TotalDuplicates int64
	TotalVisited    int64
	TotalLatency    float64        // summed first-match latency over successes
	Hops            *stats.Counter // first-match hops over successful queries
	Msgs            *stats.Counter // messages per query (for quantiles)
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{Hops: stats.NewCounter(), Msgs: stats.NewCounter()}
}

// Add records one query result.
func (a *Aggregate) Add(r Result) {
	a.Queries++
	a.TotalMessages += int64(r.Messages)
	a.TotalDuplicates += int64(r.Duplicates)
	a.TotalVisited += int64(r.Visited)
	a.Msgs.Add(r.Messages)
	if r.Success {
		a.Successes++
		a.Hops.Add(r.FirstMatchHop)
		a.TotalLatency += r.FirstMatchLatency
	}
}

// Merge folds another aggregate into a (for parallel query batches).
func (a *Aggregate) Merge(b *Aggregate) {
	a.Queries += b.Queries
	a.Successes += b.Successes
	a.TotalMessages += b.TotalMessages
	a.TotalDuplicates += b.TotalDuplicates
	a.TotalVisited += b.TotalVisited
	a.TotalLatency += b.TotalLatency
	for _, v := range b.Hops.Values() {
		a.Hops.AddN(v, b.Hops.Count(v))
	}
	for _, v := range b.Msgs.Values() {
		a.Msgs.AddN(v, b.Msgs.Count(v))
	}
}

// SuccessRate returns the fraction of queries that found a match.
func (a *Aggregate) SuccessRate() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.Successes) / float64(a.Queries)
}

// MeanMessages returns the mean messages per query.
func (a *Aggregate) MeanMessages() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.TotalMessages) / float64(a.Queries)
}

// MeanVisited returns the mean distinct nodes visited per query.
func (a *Aggregate) MeanVisited() float64 {
	if a.Queries == 0 {
		return 0
	}
	return float64(a.TotalVisited) / float64(a.Queries)
}

// DuplicateRatio returns duplicates / messages, the paper's flooding
// efficiency metric (§4.3: "only 2.7% were duplicates").
func (a *Aggregate) DuplicateRatio() float64 {
	if a.TotalMessages == 0 {
		return 0
	}
	return float64(a.TotalDuplicates) / float64(a.TotalMessages)
}

// MeanHops returns the mean hop count of first matches over
// successful queries.
func (a *Aggregate) MeanHops() float64 { return a.Hops.Mean() }

// MeanLatency returns the mean physical-network latency to the first
// match over successful queries (0 when the graph carried no weights
// or nothing succeeded) — the query response-time proxy the paper's
// introduction motivates.
func (a *Aggregate) MeanLatency() float64 {
	if a.Successes == 0 {
		return 0
	}
	return a.TotalLatency / float64(a.Successes)
}

// String renders the aggregate on one line.
func (a *Aggregate) String() string {
	return fmt.Sprintf("queries=%d success=%.1f%% msgs/query=%.1f dup=%.2f%% hops(mean)=%.2f",
		a.Queries, 100*a.SuccessRate(), a.MeanMessages(), 100*a.DuplicateRatio(), a.MeanHops())
}
