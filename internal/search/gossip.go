package search

import (
	"math/rand"

	"makalu/internal/graph"
)

// GossipConfig parameterizes hybrid flood-then-gossip search, the
// §4.4 extension the paper sketches: pure flooding is duplicate-free
// while paths are disjoint (the expanding phase), but once the flood
// crosses the Convergence Boundary — roughly half the reachable nodes,
// at about half the diameter — converging paths make duplicates
// explode. Beyond the boundary an epidemic forwarding rule (forward
// to each eligible neighbor with probability p) trades a little
// coverage for a large cut in duplicate messages.
type GossipConfig struct {
	BoundaryHops int     // hops of deterministic flooding before gossip
	Probability  float64 // per-link forwarding probability past the boundary
}

// DefaultGossipConfig floods two hops (within the expanding phase of
// the paper's TTL-4 operating point) and gossips at p = 0.5 beyond.
func DefaultGossipConfig() GossipConfig {
	return GossipConfig{BoundaryHops: 2, Probability: 0.5}
}

// GossipFlooder runs hybrid flood/gossip queries. Like Flooder it
// reuses scratch; not safe for concurrent use.
type GossipFlooder struct {
	g       *graph.Graph
	epoch   int32
	visited []int32
	hop     []int32
	parent  []int32
	queue   []int32
}

// NewGossipFlooder creates a GossipFlooder over g.
func NewGossipFlooder(g *graph.Graph) *GossipFlooder {
	n := g.N()
	return &GossipFlooder{
		g:       g,
		visited: make([]int32, n),
		hop:     make([]int32, n),
		parent:  make([]int32, n),
		queue:   make([]int32, 0, 1024),
	}
}

// Flood issues a query from src with the given TTL: deterministic
// flooding for cfg.BoundaryHops hops, epidemic forwarding with
// probability cfg.Probability afterwards. Message and duplicate
// accounting matches Flooder, so results are directly comparable.
func (f *GossipFlooder) Flood(src, ttl int, cfg GossipConfig, match Matcher, rng *rand.Rand) Result {
	f.epoch++
	ep := f.epoch
	res := Result{FirstMatchHop: -1}
	prob := cfg.Probability
	if prob <= 0 || prob > 1 {
		prob = 1
	}

	f.visited[src] = ep
	f.hop[src] = 0
	f.parent[src] = -1
	res.Visited = 1
	if match(src) {
		res.Success = true
		res.FirstMatchHop = 0
		res.MatchesFound++
	}
	if ttl <= 0 {
		return res
	}
	queue := f.queue[:0]
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		hu := f.hop[u]
		if int(hu) >= ttl {
			continue
		}
		pu := f.parent[u]
		gossiping := int(hu) >= cfg.BoundaryHops
		for _, v := range f.g.Neighbors(int(u)) {
			if v == pu {
				continue
			}
			if gossiping && rng.Float64() >= prob {
				continue // epidemic rule: probabilistically skip
			}
			res.Messages++
			if f.visited[v] == ep {
				res.Duplicates++
				continue
			}
			f.visited[v] = ep
			f.hop[v] = hu + 1
			f.parent[v] = u
			res.Visited++
			if match(int(v)) {
				res.MatchesFound++
				if !res.Success {
					res.Success = true
					res.FirstMatchHop = int(hu + 1)
				}
			}
			queue = append(queue, v)
		}
	}
	f.queue = queue
	return res
}

// ConvergenceBoundary estimates the hop count at which a flood from
// src has visited roughly half the nodes it can reach — the point the
// paper identifies with the onset of the converging phase (§4.4).
func ConvergenceBoundary(g *graph.Graph, src int) int {
	dist := make([]int32, g.N())
	queue := make([]int32, 0, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	reachable := len(queue)
	half := reachable / 2
	seen := 0
	for _, u := range queue {
		seen++
		if seen >= half {
			return int(dist[u])
		}
	}
	return 0
}
