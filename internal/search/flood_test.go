package search

import (
	"math/rand"
	"testing"

	"makalu/internal/graph"
)

func cycle(n int) *graph.Graph {
	g := graph.NewMutable(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	return g.Freeze(nil)
}

func complete(n int) *graph.Graph {
	g := graph.NewMutable(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g.Freeze(nil)
}

func path(n int) *graph.Graph {
	g := graph.NewMutable(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g.Freeze(nil)
}

func noMatch(int) bool { return false }

func TestFloodCycleExactCounts(t *testing.T) {
	f := NewFlooder(cycle(6))
	// TTL 2 from node 0: 0 -> {1,5}, then 1 -> 2 and 5 -> 4.
	r := f.Flood(0, 2, noMatch)
	if r.Messages != 4 || r.Duplicates != 0 || r.Visited != 5 {
		t.Fatalf("TTL2: msgs=%d dup=%d visited=%d, want 4/0/5", r.Messages, r.Duplicates, r.Visited)
	}
	// TTL 3 adds 2 -> 3 and 4 -> 3: node 3 receives twice.
	r = f.Flood(0, 3, noMatch)
	if r.Messages != 6 || r.Duplicates != 1 || r.Visited != 6 {
		t.Fatalf("TTL3: msgs=%d dup=%d visited=%d, want 6/1/6", r.Messages, r.Duplicates, r.Visited)
	}
}

func TestFloodCompleteGraphDuplicates(t *testing.T) {
	f := NewFlooder(complete(4))
	r := f.Flood(0, 1, noMatch)
	if r.Messages != 3 || r.Duplicates != 0 || r.Visited != 4 {
		t.Fatalf("TTL1: %+v", r)
	}
	// TTL 2: each of 1,2,3 forwards to the two non-parents: all dups.
	r = f.Flood(0, 2, noMatch)
	if r.Messages != 9 || r.Duplicates != 6 || r.Visited != 4 {
		t.Fatalf("TTL2: msgs=%d dup=%d visited=%d, want 9/6/4", r.Messages, r.Duplicates, r.Visited)
	}
}

func TestFloodZeroTTL(t *testing.T) {
	f := NewFlooder(cycle(5))
	r := f.Flood(2, 0, func(u int) bool { return u == 2 })
	if r.Messages != 0 || !r.Success || r.FirstMatchHop != 0 || r.Visited != 1 {
		t.Fatalf("zero TTL: %+v", r)
	}
}

func TestFloodMatchAtSource(t *testing.T) {
	f := NewFlooder(cycle(8))
	r := f.Flood(3, 4, func(u int) bool { return u == 3 })
	if !r.Success || r.FirstMatchHop != 0 || r.MatchesFound != 1 {
		t.Fatalf("%+v", r)
	}
}

func TestFloodFirstMatchHop(t *testing.T) {
	f := NewFlooder(path(10))
	r := f.Flood(0, 9, func(u int) bool { return u == 4 })
	if !r.Success || r.FirstMatchHop != 4 {
		t.Fatalf("match hop = %d, want 4 (%+v)", r.FirstMatchHop, r)
	}
	// TTL shorter than the distance: flood fails.
	r = f.Flood(0, 3, func(u int) bool { return u == 4 })
	if r.Success {
		t.Fatal("TTL 3 should not reach node 4")
	}
}

func TestFloodCountsAllReplicas(t *testing.T) {
	f := NewFlooder(complete(6))
	targets := map[int]bool{1: true, 3: true, 5: true}
	r := f.Flood(0, 1, func(u int) bool { return targets[u] })
	if r.MatchesFound != 3 {
		t.Fatalf("found %d replicas, want 3", r.MatchesFound)
	}
	if r.FirstMatchHop != 1 {
		t.Fatalf("first match hop = %d", r.FirstMatchHop)
	}
}

func TestFloodEpochReuse(t *testing.T) {
	// Running many floods on the same Flooder must not leak state.
	f := NewFlooder(cycle(12))
	r1 := f.Flood(0, 3, noMatch)
	for i := 0; i < 100; i++ {
		f.Flood(i%12, 3, noMatch)
	}
	r2 := f.Flood(0, 3, noMatch)
	if r1 != r2 {
		t.Fatalf("flood results drifted: %+v vs %+v", r1, r2)
	}
}

func TestFloodCoverage(t *testing.T) {
	f := NewFlooder(cycle(10))
	if got := f.Coverage(0, 2); got != 5 {
		t.Fatalf("coverage TTL2 on cycle = %d, want 5", got)
	}
	if got := f.Coverage(0, 100); got != 10 {
		t.Fatalf("full coverage = %d, want 10", got)
	}
}

func TestFloodNeverEchoesToSender(t *testing.T) {
	// On a path, no duplicates can ever occur: every node has exactly
	// one non-parent neighbor.
	f := NewFlooder(path(20))
	r := f.Flood(0, 19, noMatch)
	if r.Duplicates != 0 {
		t.Fatalf("path flood generated %d duplicates", r.Duplicates)
	}
	if r.Messages != 19 || r.Visited != 20 {
		t.Fatalf("path flood msgs=%d visited=%d", r.Messages, r.Visited)
	}
}

func TestAggregateMetrics(t *testing.T) {
	a := NewAggregate()
	a.Add(Result{Messages: 10, Duplicates: 1, Visited: 8, Success: true, FirstMatchHop: 2})
	a.Add(Result{Messages: 20, Duplicates: 3, Visited: 15, Success: false, FirstMatchHop: -1})
	if a.Queries != 2 || a.Successes != 1 {
		t.Fatalf("counts wrong: %+v", a)
	}
	if a.SuccessRate() != 0.5 {
		t.Fatalf("success rate %v", a.SuccessRate())
	}
	if a.MeanMessages() != 15 {
		t.Fatalf("mean messages %v", a.MeanMessages())
	}
	if a.DuplicateRatio() != 4.0/30.0 {
		t.Fatalf("dup ratio %v", a.DuplicateRatio())
	}
	if a.MeanHops() != 2 {
		t.Fatalf("mean hops %v", a.MeanHops())
	}
	if a.MeanVisited() != 11.5 {
		t.Fatalf("mean visited %v", a.MeanVisited())
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAggregateMerge(t *testing.T) {
	a, b := NewAggregate(), NewAggregate()
	a.Add(Result{Messages: 10, Success: true, FirstMatchHop: 1, Visited: 3})
	b.Add(Result{Messages: 30, Success: true, FirstMatchHop: 3, Visited: 5})
	b.Add(Result{Messages: 50, Visited: 9, FirstMatchHop: -1})
	a.Merge(b)
	if a.Queries != 3 || a.Successes != 2 {
		t.Fatalf("merged counts wrong: %+v", a)
	}
	if a.MeanMessages() != 30 {
		t.Fatalf("merged mean messages %v", a.MeanMessages())
	}
	if a.MeanHops() != 2 {
		t.Fatalf("merged mean hops %v", a.MeanHops())
	}
}

func TestAggregateEmpty(t *testing.T) {
	a := NewAggregate()
	if a.SuccessRate() != 0 || a.MeanMessages() != 0 || a.DuplicateRatio() != 0 || a.MeanVisited() != 0 {
		t.Fatal("empty aggregate should be all zeros")
	}
}

func TestRandomWalkFindsNearbyMatch(t *testing.T) {
	g := cycle(30)
	rng := rand.New(rand.NewSource(1))
	cfg := WalkConfig{Walkers: 4, MaxSteps: 200, CheckInterval: 4}
	r := RandomWalk(g, 0, cfg, func(u int) bool { return u == 5 || u == 25 }, rng)
	if !r.Success {
		t.Fatalf("walk failed: %+v", r)
	}
	if r.Messages <= 0 {
		t.Fatal("walk should cost messages")
	}
}

func TestRandomWalkRespectsBudget(t *testing.T) {
	g := cycle(1000)
	rng := rand.New(rand.NewSource(2))
	cfg := WalkConfig{Walkers: 2, MaxSteps: 10, CheckInterval: 4}
	r := RandomWalk(g, 0, cfg, func(u int) bool { return u == 500 }, rng)
	if r.Success {
		t.Fatal("cannot reach node 500 in 10 steps")
	}
	if r.Messages > 2*10 {
		t.Fatalf("messages %d exceed walker budget", r.Messages)
	}
}

func TestRandomWalkSourceMatch(t *testing.T) {
	r := RandomWalk(cycle(5), 2, DefaultWalkConfig(), func(u int) bool { return u == 2 }, rand.New(rand.NewSource(3)))
	if !r.Success || r.FirstMatchHop != 0 || r.Messages != 0 {
		t.Fatalf("%+v", r)
	}
}

func TestRandomWalkDegenerateConfig(t *testing.T) {
	r := RandomWalk(cycle(5), 0, WalkConfig{}, noMatch, rand.New(rand.NewSource(4)))
	if r.Success || r.Messages != 0 {
		t.Fatalf("%+v", r)
	}
}

func TestRandomWalkStopsAfterCheckpoint(t *testing.T) {
	// After success, remaining walkers stop at the next checkpoint, so
	// messages stay far below the full budget.
	g := complete(50)
	rng := rand.New(rand.NewSource(5))
	cfg := WalkConfig{Walkers: 8, MaxSteps: 10000, CheckInterval: 4}
	r := RandomWalk(g, 0, cfg, func(u int) bool { return u == 7 }, rng)
	if !r.Success {
		t.Fatal("walk should find node 7 on K50")
	}
	if r.Messages >= 8*10000/10 {
		t.Fatalf("walkers did not stop early: %d messages", r.Messages)
	}
}

func TestExpandingRingStopsEarly(t *testing.T) {
	f := NewFlooder(path(30))
	rng := rand.New(rand.NewSource(6))
	cfg := RingConfig{StartTTL: 1, Step: 1, MaxTTL: 10}
	r := ExpandingRing(f, 0, cfg, func(u int) bool { return u == 3 }, rng)
	if !r.Success || r.FirstMatchHop != 3 {
		t.Fatalf("%+v", r)
	}
	// Messages: TTL1 flood (1) + TTL2 (2) + TTL3 (3) = 6 on a path.
	if r.Messages != 6 {
		t.Fatalf("cumulative messages = %d, want 6", r.Messages)
	}
}

func TestExpandingRingGivesUp(t *testing.T) {
	f := NewFlooder(path(30))
	rng := rand.New(rand.NewSource(7))
	cfg := RingConfig{StartTTL: 1, Step: 2, MaxTTL: 5}
	r := ExpandingRing(f, 0, cfg, func(u int) bool { return u == 20 }, rng)
	if r.Success {
		t.Fatal("target beyond MaxTTL should fail")
	}
	// Attempts at TTL 1, 3, 5: messages 1+3+5 = 9.
	if r.Messages != 9 {
		t.Fatalf("messages = %d, want 9", r.Messages)
	}
}

func TestExpandingRingRandomizedStart(t *testing.T) {
	f := NewFlooder(path(30))
	cfg := RingConfig{StartTTL: 4, Step: 1, MaxTTL: 10, RandomizedStart: true}
	// Whatever TTL it starts from, it must still succeed.
	for seed := int64(0); seed < 10; seed++ {
		r := ExpandingRing(f, 0, cfg, func(u int) bool { return u == 6 }, rand.New(rand.NewSource(seed)))
		if !r.Success {
			t.Fatalf("seed %d: randomized ring failed: %+v", seed, r)
		}
	}
}

func TestExpandingRingDegenerateConfig(t *testing.T) {
	f := NewFlooder(path(5))
	r := ExpandingRing(f, 0, RingConfig{StartTTL: -3, Step: 0, MaxTTL: -1}, func(u int) bool { return u == 1 }, rand.New(rand.NewSource(8)))
	if !r.Success {
		t.Fatalf("clamped config should still flood once: %+v", r)
	}
}
