package core

import (
	"testing"

	"makalu/internal/netmodel"
)

func TestLeaveGraceful(t *testing.T) {
	o := buildSmall(t, 300, 41)
	u := 5
	neighbors := append([]int32(nil), o.Graph().Neighbors(u)...)
	if len(neighbors) == 0 {
		t.Skip("node 5 has no neighbors at this seed")
	}
	if !o.Leave(u) {
		t.Fatal("leave failed")
	}
	if o.Alive(u) || o.Graph().Degree(u) != 0 {
		t.Fatal("left node should be dead and isolated")
	}
	if o.LiveCount() != 299 {
		t.Fatalf("live count = %d", o.LiveCount())
	}
	// Former neighbors refilled immediately: none should sit far
	// below capacity just because u left.
	for _, v := range neighbors {
		if o.Graph().Degree(int(v)) < o.Capacity(int(v))-1 {
			t.Fatalf("neighbor %d left with degree %d of capacity %d",
				v, o.Graph().Degree(int(v)), o.Capacity(int(v)))
		}
	}
	// Double-leave and out-of-range are no-ops.
	if o.Leave(u) || o.Leave(-1) || o.Leave(99999) {
		t.Fatal("invalid leaves should return false")
	}
}

func TestLeaveKeepsOverlayConnected(t *testing.T) {
	o := buildSmall(t, 200, 43)
	for u := 0; u < 60; u += 3 {
		o.Leave(u)
	}
	sub, _ := o.FreezeAlive()
	_, sizes := sub.Components()
	giant := 0
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	if float64(giant) < 0.97*float64(sub.N()) {
		t.Fatalf("graceful departures fragmented the overlay: giant %d of %d", giant, sub.N())
	}
}

func TestLeaveTracesDisconnects(t *testing.T) {
	n := 100
	net := netmodel.NewEuclidean(n, 1000, 45)
	tr := &countingTracer{}
	cfg := DefaultConfig(net, 45)
	cfg.Tracer = tr
	o, err := Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.disconnects
	deg := o.Graph().Degree(7)
	o.Leave(7)
	if tr.disconnects < before+deg {
		t.Fatalf("leave of a degree-%d node traced %d disconnects", deg, tr.disconnects-before)
	}
}

// countingTracer is a minimal Tracer for tests.
type countingTracer struct {
	connects, disconnects, views, probes int
}

func (c *countingTracer) Connect(u, v int)            { c.connects++ }
func (c *countingTracer) Disconnect(u, v int)         { c.disconnects++ }
func (c *countingTracer) ViewExchange(u, v, size int) { c.views++ }
func (c *countingTracer) WalkProbe(from, to int)      { c.probes++ }

func TestRejoinFragmentsNoOpWhenConnected(t *testing.T) {
	o := buildSmall(t, 150, 47)
	if !o.RejoinFragments(2) {
		t.Fatal("connected overlay should report success")
	}
}

func TestRejoinFragmentsRepairsManualSplit(t *testing.T) {
	o := buildSmall(t, 200, 49)
	// Manually carve off nodes 0..9 into an island.
	g := o.Graph()
	island := map[int]bool{}
	for u := 0; u < 10; u++ {
		island[u] = true
	}
	for u := 0; u < 10; u++ {
		for _, v := range append([]int32(nil), g.Neighbors(u)...) {
			if !island[int(v)] {
				g.RemoveEdge(u, int(v))
			}
		}
	}
	// Wire the island internally so it is a component, not dust.
	for u := 0; u < 9; u++ {
		g.AddEdge(u, u+1)
	}
	if o.Freeze().IsConnected() {
		t.Skip("seed left island attached; skip")
	}
	if !o.RejoinFragments(3) {
		t.Fatal("rejoin failed")
	}
	sub, _ := o.FreezeAlive()
	if !sub.IsConnected() {
		t.Fatal("overlay still fragmented after rejoin")
	}
}

func TestProtocolViewsStaleness(t *testing.T) {
	// In ProtocolViews mode, a node's exchanged view does not track
	// live changes until the next refresh event.
	n := 60
	net := netmodel.NewEuclidean(n, 1000, 51)
	cfg := DefaultConfig(net, 51)
	cfg.Views = ProtocolViews
	o, err := Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := 3
	nb := o.Graph().Neighbors(u)
	if len(nb) == 0 {
		t.Skip("no neighbors")
	}
	v := int(nb[0])
	// Mutate v's adjacency behind the protocol's back.
	o.Graph().AddEdge(v, (v+17)%n)
	view := o.neighborView(v)
	for _, x := range view {
		if int(x) == (v+17)%n && !contained(o.views[v], int32((v+17)%n)) {
			t.Fatal("stale view leaked a live edge")
		}
	}
	// After refresh the view catches up.
	o.refreshView(v)
	if !contained(o.views[v], int32((v+17)%n)) && o.Graph().HasEdge(v, (v+17)%n) {
		t.Fatal("refresh did not update the view")
	}
}

func contained(s []int32, x int32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
