package core

import (
	"math/rand"
	"reflect"
	"testing"

	"makalu/internal/netmodel"
)

// edgeSet flattens the overlay's live topology into a canonical sorted
// edge list for exact comparison between construction paths.
func edgeSet(o *Overlay) [][2]int32 {
	var edges [][2]int32
	for u := 0; u < o.g.N(); u++ {
		for _, v := range o.g.Neighbors(u) {
			if int(v) > u {
				edges = append(edges, [2]int32{int32(u), v})
			}
		}
	}
	// Adjacency order is already deterministic but not sorted; sort for
	// a canonical form.
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && less(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
	return edges
}

func less(a, b [2]int32) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// TestGoldenIncrementalPruneBuild asserts the tentpole's core
// guarantee: for a fixed seed, a build running the incremental rating
// engine produces an edge set identical to one running the
// full-recompute oracle, across view modes and proximity variants.
func TestGoldenIncrementalPruneBuild(t *testing.T) {
	const n = 300
	for _, tc := range []struct {
		name string
		mod  func(*Config)
	}{
		{"oracle-views", func(c *Config) {}},
		{"protocol-views", func(c *Config) { c.Views = ProtocolViews }},
		{"raw-proximity", func(c *Config) { c.RawProximity = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				net := netmodel.NewEuclidean(n, 1000, seed)
				fast := DefaultConfig(net, seed)
				tc.mod(&fast)
				slow := fast
				slow.FullRecomputePrune = true
				slow.Workers = 1

				of, err := Build(n, fast)
				if err != nil {
					t.Fatal(err)
				}
				os_, err := Build(n, slow)
				if err != nil {
					t.Fatal(err)
				}
				ef, es := edgeSet(of), edgeSet(os_)
				if !reflect.DeepEqual(ef, es) {
					t.Fatalf("seed %d: incremental build diverged from full-recompute oracle (%d vs %d edges)",
						seed, len(ef), len(es))
				}
			}
		})
	}
}

// TestGoldenPruneDropSequence drives pruneToCapacity directly on
// mirrored over-capacity states and asserts the incremental engine
// drops exactly the same neighbors, in the same order, as the oracle.
func TestGoldenPruneDropSequence(t *testing.T) {
	const n = 400
	for _, views := range []ViewMode{OracleViews, ProtocolViews} {
		net := netmodel.NewEuclidean(n, 1000, 7)
		mk := func(full bool) *Overlay {
			cfg := DefaultConfig(net, 7)
			cfg.Views = views
			cfg.FullRecomputePrune = full
			o, err := Build(n, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return o
		}
		inc, oracle := mk(false), mk(true)
		if !reflect.DeepEqual(edgeSet(inc), edgeSet(oracle)) {
			t.Fatal("builds diverged before the prune comparison")
		}

		rng := rand.New(rand.NewSource(99))
		for trial := 0; trial < 50; trial++ {
			u := rng.Intn(n)
			// Mirror a burst of forced extra links on both overlays,
			// then prune the same excess on each.
			extra := 2 + rng.Intn(12)
			for e := 0; e < extra; e++ {
				v := rng.Intn(n)
				if v == u {
					continue
				}
				a := inc.g.AddEdge(u, v)
				b := oracle.g.AddEdge(u, v)
				if a != b {
					t.Fatalf("trial %d: mirrored edge insert diverged", trial)
				}
				if a && views == ProtocolViews {
					inc.refreshView(u)
					inc.refreshView(v)
					oracle.refreshView(u)
					oracle.refreshView(v)
				}
			}
			di := inc.pruneToCapacity(u, nil)
			do := oracle.pruneToCapacity(u, nil)
			if !reflect.DeepEqual(di, do) {
				t.Fatalf("trial %d (views=%v): drop sequences diverged:\nincremental: %v\noracle:      %v",
					trial, views, di, do)
			}
		}
		if !reflect.DeepEqual(edgeSet(inc), edgeSet(oracle)) {
			t.Fatal("edge sets diverged after mirrored prune trials")
		}
	}
}

// TestGoldenParallelBuild asserts the parallel phases never change the
// result: a fixed-seed build with an 8-worker pool is edge-set
// identical to the fully sequential build, in both view modes.
func TestGoldenParallelBuild(t *testing.T) {
	const n = 300
	for _, views := range []ViewMode{OracleViews, ProtocolViews} {
		net := netmodel.NewEuclidean(n, 1000, 5)
		seq := DefaultConfig(net, 5)
		seq.Views = views
		seq.Workers = 1
		par := seq
		par.Workers = 8

		a, err := Build(n, seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(n, par)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(edgeSet(a), edgeSet(b)) {
			t.Fatalf("views=%v: parallel build diverged from sequential", views)
		}
		// Management after churn must stay deterministic too.
		a.FailTopDegree(n / 10)
		b.FailTopDegree(n / 10)
		a.Recover(2)
		b.Recover(2)
		if !reflect.DeepEqual(edgeSet(a), edgeSet(b)) {
			t.Fatalf("views=%v: parallel recovery diverged from sequential", views)
		}
	}
}

// TestRateAllMatchesRateNeighbors asserts the batched parallel rating
// pass returns exactly what per-node RateNeighbors calls return, row
// by row (this is also the -race exercise for the worker pool).
func TestRateAllMatchesRateNeighbors(t *testing.T) {
	const n = 500
	net := netmodel.NewEuclidean(n, 1000, 3)
	cfg := DefaultConfig(net, 3)
	cfg.Workers = 8
	o, err := Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o.FailRandom(n / 20) // dead rows must come back empty
	all := o.RateAll(nil)
	if len(all) != n {
		t.Fatalf("RateAll returned %d rows, want %d", len(all), n)
	}
	for u := 0; u < n; u++ {
		if !o.Alive(u) {
			if len(all[u]) != 0 {
				t.Fatalf("dead node %d has %d ratings", u, len(all[u]))
			}
			continue
		}
		want := o.RateNeighbors(u, nil)
		if len(want) == 0 && len(all[u]) == 0 {
			continue
		}
		if !reflect.DeepEqual(all[u], want) {
			t.Fatalf("node %d: RateAll row differs from RateNeighbors", u)
		}
	}
	// Buffer reuse must not corrupt results.
	again := o.RateAll(all)
	for u := 0; u < n; u++ {
		want := o.RateNeighbors(u, nil)
		if len(want) == 0 && len(again[u]) == 0 {
			continue
		}
		if !reflect.DeepEqual(again[u], want) {
			t.Fatalf("node %d: reused RateAll row differs", u)
		}
	}
}

// TestRatingNoAlloc guards the satellite fix: Rating must reuse the
// scratch buffer instead of allocating a RatingInfo slice per call.
func TestRatingNoAlloc(t *testing.T) {
	const n = 200
	net := netmodel.NewEuclidean(n, 1000, 2)
	o, err := Build(n, DefaultConfig(net, 2))
	if err != nil {
		t.Fatal(err)
	}
	u := 0
	v := int(o.g.Neighbors(u)[0])
	o.Rating(u, v) // warm the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		o.Rating(u, v)
	})
	if allocs != 0 {
		t.Fatalf("Rating allocates %.1f times per call, want 0", allocs)
	}
}

// TestWalkCandidatesStillDistinct guards the mark-based rewrite of
// randomWalkCandidates: collected candidates must stay distinct,
// alive, and not already adjacent to the walker.
func TestWalkCandidatesStillDistinct(t *testing.T) {
	const n = 300
	net := netmodel.NewEuclidean(n, 1000, 11)
	o, err := Build(n, DefaultConfig(net, 11))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		u := rng.Intn(n)
		seed := rng.Intn(n)
		cands := o.randomWalkCandidates(u, seed, nil)
		seen := make(map[int32]bool, len(cands))
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("duplicate candidate %d for walker %d", c, u)
			}
			seen[c] = true
			if int(c) == u {
				t.Fatalf("walker %d offered itself", u)
			}
			if o.g.HasEdge(u, int(c)) {
				t.Fatalf("walker %d offered existing neighbor %d", u, c)
			}
			if !o.Alive(int(c)) {
				t.Fatalf("walker %d offered dead node %d", u, c)
			}
		}
	}
}
