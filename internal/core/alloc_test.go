package core

import (
	"math/rand"
	"os"
	"strconv"
	"testing"

	"makalu/internal/netmodel"
)

// These tests pin the steady-state allocation behavior of the protocol
// hot loops: once an overlay's reusable buffers are warm, rating,
// accept-then-prune and the batched rating sweep must not allocate at
// all. The default size keeps -race CI runs fast; set
// MAKALU_ALLOC_TEST_N to pin the same property at larger scales
// (the million-node runs in the -scale experiment rely on it).

func allocTestN() int {
	if v := os.Getenv("MAKALU_ALLOC_TEST_N"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 16 {
			return n
		}
	}
	return 4096
}

// buildAllocOverlay builds a sequential-worker overlay and warms every
// reusable buffer with one management round.
func buildAllocOverlay(t testing.TB, views ViewMode) *Overlay {
	t.Helper()
	n := allocTestN()
	net := netmodel.NewEuclidean(n, 1000, 7)
	cfg := DefaultConfig(net, 7)
	cfg.Views = views
	cfg.Workers = 1 // the sequential path is the alloc-free one
	o, err := Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o.ManageRound()
	return o
}

func TestRateNeighborsZeroAlloc(t *testing.T) {
	for _, views := range []ViewMode{OracleViews, ProtocolViews} {
		o := buildAllocOverlay(t, views)
		rng := rand.New(rand.NewSource(1))
		buf := o.RateNeighbors(0, nil)
		u := 0
		if avg := testing.AllocsPerRun(200, func() {
			u = rng.Intn(o.N())
			buf = o.RateNeighbors(u, buf)
		}); avg != 0 {
			t.Errorf("views=%v: RateNeighbors allocates %.1f/op; want 0", views, avg)
		}
	}
}

func TestConnectPruneZeroAlloc(t *testing.T) {
	// Connect on an at-capacity overlay is the protocol's hottest path:
	// provisional accept, view refresh, incremental prune on both
	// endpoints. Steady state must be allocation-free.
	for _, views := range []ViewMode{OracleViews, ProtocolViews} {
		o := buildAllocOverlay(t, views)
		rng := rand.New(rand.NewSource(2))
		n := o.N()
		// Warm the path once so one-time buffer growth is done.
		for i := 0; i < 32; i++ {
			o.Connect(rng.Intn(n), rng.Intn(n))
		}
		if avg := testing.AllocsPerRun(500, func() {
			o.Connect(rng.Intn(n), rng.Intn(n))
		}); avg != 0 {
			t.Errorf("views=%v: Connect+prune allocates %.1f/op; want 0", views, avg)
		}
	}
}

func TestRateAllZeroAllocSequential(t *testing.T) {
	o := buildAllocOverlay(t, OracleViews)
	out := o.RateAll(nil)
	if avg := testing.AllocsPerRun(5, func() {
		out = o.RateAll(out)
	}); avg != 0 {
		t.Errorf("RateAll allocates %.1f per sweep; want 0", avg)
	}
}

func TestManageRoundAllocsBounded(t *testing.T) {
	// A full management round includes walks, dials and slot pairing;
	// with warm buffers it must not allocate proportionally to n. A
	// small constant slack absorbs incidental growth (a node's
	// adjacency or view outgrowing its previous high-water mark).
	o := buildAllocOverlay(t, OracleViews)
	o.ManageRound() // second warm round after the builder's
	avg := testing.AllocsPerRun(3, func() { o.ManageRound() })
	if avg > 16 {
		t.Errorf("ManageRound allocates %.1f/round on n=%d; want <= 16", avg, o.N())
	}
}
