package core

import "sort"

// This file implements the failure model of §3.4: non-recoverable,
// instantaneous node failures (worst case: all failed nodes disappear
// at once) plus the recovery path — surviving nodes re-run the
// management loop to replace lost neighbors.

// FailNodes kills the given nodes instantly and non-recoverably: all
// their connections vanish and they never rejoin. Analysis functions
// observe the topology immediately after the failure, before any
// recovery, exactly as the paper's snapshot methodology requires.
// Already-dead nodes are ignored.
func (o *Overlay) FailNodes(ids []int) {
	for _, u := range ids {
		if u < 0 || u >= o.g.N() || !o.alive[u] {
			continue
		}
		o.alive[u] = false
		o.nLive--
		o.g.IsolateNode(u)
		if o.cfg.Views == ProtocolViews {
			o.views[u] = o.views[u][:0]
		}
	}
}

// FailTopDegree kills the k highest-degree alive nodes — the paper's
// targeted worst-case failure — and returns their ids. Ties break by
// node id for determinism.
func (o *Overlay) FailTopDegree(k int) []int {
	ids := make([]int, 0, o.nLive)
	for u := 0; u < o.g.N(); u++ {
		if o.alive[u] {
			ids = append(ids, u)
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := o.g.Degree(ids[i]), o.g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	if k > len(ids) {
		k = len(ids)
	}
	ids = ids[:k]
	o.FailNodes(ids)
	return ids
}

// FailRandom kills k uniformly random alive nodes and returns their
// ids (the paper's random-failure control).
func (o *Overlay) FailRandom(k int) []int {
	alive := make([]int, 0, o.nLive)
	for u := 0; u < o.g.N(); u++ {
		if o.alive[u] {
			alive = append(alive, u)
		}
	}
	o.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	if k > len(alive) {
		k = len(alive)
	}
	ids := alive[:k]
	o.FailNodes(ids)
	return ids
}

// Leave performs a graceful departure: u notifies its neighbors (so
// each gets a Disconnect trace), its links are torn down, and the
// former neighbors immediately look for replacements — unlike the
// crash model of FailNodes, where survivors only recover at the next
// management round. It reports whether u was alive.
func (o *Overlay) Leave(u int) bool {
	if u < 0 || u >= o.g.N() || !o.alive[u] {
		return false
	}
	// Snapshot the neighbor list into a reusable buffer (the refills
	// below mutate the adjacency under us). Leave is not reentrant, so
	// one buffer per overlay suffices.
	o.leaveBuf = append(o.leaveBuf[:0], o.g.Neighbors(u)...)
	neighbors := o.leaveBuf
	if t := o.cfg.Tracer; t != nil {
		for _, v := range neighbors {
			t.Disconnect(u, int(v))
		}
	}
	o.alive[u] = false
	o.nLive--
	o.g.IsolateNode(u)
	if o.cfg.Views == ProtocolViews {
		o.views[u] = o.views[u][:0]
	}
	// The notified neighbors refill right away from their own
	// neighborhoods (they just lost one slot each).
	for _, v := range neighbors {
		if !o.alive[v] {
			continue
		}
		if seed := o.randomAliveNeighbor(int(v)); seed >= 0 {
			o.fillConnections(int(v), seed)
		} else if seed := o.randomAliveNodeExcept(int(v)); seed >= 0 {
			o.fillConnections(int(v), seed)
		}
	}
	return true
}

// Revive brings a previously failed node back online: it rejoins
// through the bootstrap path like a fresh peer (churn rejoin). It
// reports whether the node was actually dead.
func (o *Overlay) Revive(u int) bool {
	if u < 0 || u >= o.g.N() || o.alive[u] {
		return false
	}
	o.alive[u] = true
	o.nLive++
	if seed := o.randomAliveNodeExcept(u); seed >= 0 {
		o.fillConnections(u, seed)
		if o.g.Degree(u) == 0 {
			o.connect(u, seed)
		}
	}
	return true
}

// Recover runs the given number of management rounds so survivors can
// replace lost neighbors, modelling the overlay healing after a
// failure wave.
func (o *Overlay) Recover(rounds int) {
	for i := 0; i < rounds; i++ {
		o.ManageRound()
	}
}
