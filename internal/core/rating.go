package core

import "math"

// nodeCell packs the per-node epoch-stamped marks a rating evaluation
// touches for one candidate node x into a single 16-byte struct, so
// the O(deg²) random-access sweep over neighbor views costs one cache
// line per visited node instead of three (stamp, count and exclude
// used to live in separate arrays — at 10⁶+ nodes each was its own
// guaranteed miss, and the sweep is ~70% of overlay construction).
type nodeCell struct {
	stamp   int32 // epoch when count was last touched
	exclude int32 // epoch when x was marked as Γ(u) ∪ {u}
	count   int32 // how many of u's neighbors can reach x
	mark    int32 // walk-candidate membership epoch (randomWalkCandidates)
}

// ratingScratch holds the epoch-stamped counting arrays that make one
// rating evaluation O(deg²) with no allocation. The Overlay owns one
// scratch for the sequential protocol trace plus a lazily-grown pool
// with one extra scratch per worker for the parallel read-only phases
// (see parallel.go). A scratch is single-owner state: it is never
// shared between goroutines.
type ratingScratch struct {
	epoch   int32
	cells   []nodeCell // per-node stamp/exclude/count/mark, one cache line
	touched []int32    // nodes with count stamped this epoch

	// Incremental-prune state (see pruneIncremental): ownerSum[x] is
	// the sum of the neighbor ids whose views contain x, so when
	// cells[x].count == 1 it identifies the sole contributing neighbor
	// without a search; uniq[w] is the running |R(u,w)| per neighbor;
	// lat[w] caches the raw link latency d(u,w), which is invariant
	// across removals. These stay separate from the cells: they are
	// only indexed by the O(deg) current neighbors (whose lines stay
	// hot for the whole call), not by the O(deg²) swept candidates.
	ownerSum []int64
	uniq     []int32
	lat      []float64

	// markEpoch versions the mark field of the cells: a node is in the
	// current walk candidate or fallback list iff cells[x].mark equals
	// markEpoch. Separate counter so candidate gathering and rating
	// calls never invalidate each other.
	markEpoch int32

	ratingBuf []RatingInfo // reusable result buffer for pruning
	wnb       []int32      // local neighbor copy for virtual prunes (wave.go)
	rows      [][]int32    // pre-gathered view rows (gatherViews)

	// L1-resident kernels (ratehash.go): the rating hash tables
	// (single-victim, multi-victim, walk membership), their used-slot
	// lists, the position-indexed uniq/latency buffers, and the
	// multi-victim survivor permutation.
	wh     []whEntry
	whUsed []int32
	wm     []wmEntry
	wmUsed []int32
	wc     []wcEntry
	wcUsed []int32
	puniq  []int32
	plat   []float64
	pord   []int32

	touchSink int32 // keeps gatherViews' prefetch loads live
}

func (s *ratingScratch) init(n int) {
	s.cells = make([]nodeCell, n)
	s.ownerSum = make([]int64, n)
	s.uniq = make([]int32, n)
	s.lat = make([]float64, n)
	s.touched = make([]int32, 0, 256)
}

func (s *ratingScratch) grow(n int) {
	for len(s.cells) < n {
		s.cells = append(s.cells, nodeCell{})
		s.ownerSum = append(s.ownerSum, 0)
		s.uniq = append(s.uniq, 0)
		s.lat = append(s.lat, 0)
	}
}

// neighborView returns the neighbor list of v as visible to a rating
// computation: the live adjacency in OracleViews mode, the last
// exchanged snapshot in ProtocolViews mode.
func (o *Overlay) neighborView(v int) []int32 {
	if o.cfg.Views == ProtocolViews {
		return o.views[v]
	}
	return o.g.Neighbors(v)
}

// refreshView snapshots v's current adjacency as its exchanged view.
func (o *Overlay) refreshView(v int) {
	if o.cfg.Views != ProtocolViews {
		return
	}
	o.views[v] = append(o.views[v][:0], o.g.Neighbors(v)...)
}

// RatingInfo is the decomposition of one neighbor's rating, exposed
// for analysis and tests.
type RatingInfo struct {
	Neighbor     int
	Unique       int     // |R(u,v)|: nodes reachable from u only via v
	Boundary     int     // |∂Γ(u)|: node boundary of u's neighborhood
	Latency      float64 // d(u,v)
	MaxLatency   float64 // d_max over u's neighbors
	Connectivity float64 // alpha * Unique/Boundary
	Proximity    float64 // beta * MaxLatency/Latency
	Score        float64 // Connectivity + Proximity
}

// minPositiveLatency floors latencies so co-located nodes (distance 0)
// do not produce an infinite proximity score.
const minPositiveLatency = 1e-9

// scoreTerms computes the two rating terms from their ingredients.
// Both the full-recompute and the incremental paths route through this
// one function so their scores are bitwise identical — the property
// the golden determinism tests rely on.
func (o *Overlay) scoreTerms(unique, boundary int, d, dmax, dmin float64) (conn, prox float64) {
	if boundary > 0 {
		conn = o.cfg.Alpha * float64(unique) / float64(boundary)
	}
	if dmax > 0 {
		if o.cfg.RawProximity {
			prox = o.cfg.Beta * dmax / d
		} else {
			prox = o.cfg.Beta * dmin / d
		}
	}
	return conn, prox
}

// latencyExtremes returns d_max and the floored d_min over u's current
// neighbors.
func (o *Overlay) latencyExtremes(u int, nb []int32) (dmax, dmin float64) {
	dmax = 0.0
	dmin = math.Inf(1)
	for _, w := range nb {
		d := o.lat(u, int(w))
		if d > dmax {
			dmax = d
		}
		if d < dmin {
			dmin = d
		}
	}
	if dmin < minPositiveLatency {
		dmin = minPositiveLatency
	}
	return dmax, dmin
}

// RateNeighbors computes the Makalu rating of every current neighbor
// of u, in adjacency order. The slice is reused scratch owned by the
// caller via append semantics (pass nil to allocate).
//
// The computation follows §2.1: the unique reachable set R(u,v) is
// v's view minus u, minus u's own neighbors, minus anything visible
// through another neighbor; the node boundary ∂Γ(u) is the union of
// all views minus Γ(u) ∪ {u}.
func (o *Overlay) RateNeighbors(u int, out []RatingInfo) []RatingInfo {
	return o.rateNeighborsOn(&o.scratch, u, out)
}

// rateNeighborsOn is RateNeighbors on an explicit scratch, so the
// parallel RateAll workers can rate without sharing state.
func (o *Overlay) rateNeighborsOn(s *ratingScratch, u int, out []RatingInfo) []RatingInfo {
	nb := o.g.Neighbors(u)
	out = out[:0]
	if len(nb) == 0 {
		return out
	}
	s.epoch++
	ep := s.epoch
	s.touched = s.touched[:0]
	cells := s.cells

	// Mark Γ(u) ∪ {u} as excluded from boundary and unique sets.
	cells[u].exclude = ep
	for _, w := range nb {
		cells[w].exclude = ep
	}
	// Count, for every node x in some neighbor's view, the number of
	// u's neighbors whose view contains x.
	for _, w := range nb {
		for _, x := range o.neighborView(int(w)) {
			c := &cells[x]
			if c.exclude == ep {
				continue
			}
			if c.stamp != ep {
				c.stamp = ep
				c.count = 1
				s.touched = append(s.touched, x)
			} else {
				c.count++
			}
		}
	}
	boundary := len(s.touched)
	dmax, dmin := o.latencyExtremes(u, nb)

	for _, w := range nb {
		unique := 0
		for _, x := range o.neighborView(int(w)) {
			c := &cells[x]
			if c.exclude != ep && c.stamp == ep && c.count == 1 {
				unique++
			}
		}
		d := o.lat(u, int(w))
		if d < minPositiveLatency {
			d = minPositiveLatency
		}
		info := RatingInfo{
			Neighbor:   int(w),
			Unique:     unique,
			Boundary:   boundary,
			Latency:    d,
			MaxLatency: dmax,
		}
		info.Connectivity, info.Proximity = o.scoreTerms(unique, boundary, d, dmax, dmin)
		info.Score = info.Connectivity + info.Proximity
		out = append(out, info)
	}
	return out
}

// Rating returns the score of neighbor v as seen by u, or NaN when v
// is not currently a neighbor of u. The computation reuses the
// overlay's scratch rating buffer, so calls allocate nothing once the
// buffer has grown to the overlay's maximum degree.
func (o *Overlay) Rating(u, v int) float64 {
	infos := o.RateNeighbors(u, o.scratch.ratings())
	o.scratch.ratingBuf = infos // keep any growth for reuse
	for _, in := range infos {
		if in.Neighbor == v {
			return in.Score
		}
	}
	return math.NaN()
}

// pruneToCapacity implements the inner loop of Manage(): while u has
// more neighbors than its capacity, disconnect the lowest-rated one.
// The incremental engine maintains the rating state across removals
// (one O(deg²) view sweep total, O(deg) per removal); setting
// Config.FullRecomputePrune re-rates every neighbor from scratch after
// each removal, which is the paper-literal oracle the incremental path
// is tested against. Both produce identical edge sets. It returns the
// disconnected nodes.
func (o *Overlay) pruneToCapacity(u int, dropped []int32) []int32 {
	if o.g.Degree(u) <= o.caps[u] {
		return dropped
	}
	if o.cfg.FullRecomputePrune {
		return o.pruneFullRecompute(u, dropped)
	}
	return o.pruneIncremental(u, dropped)
}

// pruneFullRecompute is the seed implementation: ratings are recomputed
// after every removal because the boundary and unique sets change.
// O(k·deg²) for k removals; kept as the incremental engine's oracle.
func (o *Overlay) pruneFullRecompute(u int, dropped []int32) []int32 {
	for o.g.Degree(u) > o.caps[u] {
		infos := o.RateNeighbors(u, o.scratch.ratings())
		o.scratch.ratingBuf = infos // keep any growth for reuse
		worst := 0
		for i := 1; i < len(infos); i++ {
			if infos[i].Score < infos[worst].Score {
				worst = i
			}
		}
		v := infos[worst].Neighbor
		o.disconnect(u, v)
		dropped = append(dropped, int32(v))
	}
	return dropped
}

// pruneIncremental drains u's excess links with an incrementally
// maintained rating state. One fused sweep over the neighbor views
// builds count/ownerSum/uniq and the boundary size; each removal then
// subtracts only the dropped neighbor's view:
//
//   - count[x]--, ownerSum[x] -= v for every x in v's view; a 2→1
//     transition hands x's uniqueness to its remaining owner
//     (ownerSum[x]), a 1→0 transition shrinks the boundary;
//   - v itself stops being excluded (it left Γ(u)) and joins the
//     boundary if a surviving neighbor still sees it;
//   - d_max/d_min are recomputed in O(deg).
//
// Scores are rebuilt from the maintained integers through the same
// scoreTerms as the full recompute, so the drop sequence is identical
// to the oracle's bit for bit.
func (o *Overlay) pruneIncremental(u int, dropped []int32) []int32 {
	if o.g.Degree(u)-o.caps[u] == 1 {
		// The overwhelmingly common prune — an at-capacity node just
		// accepted one dial — drops exactly one link and never reads
		// the state again, so it takes a leaner single-removal path.
		return o.pruneSingle(u, dropped)
	}
	s := &o.scratch
	s.epoch++
	ep := s.epoch
	nb := o.g.Neighbors(u)
	cells := s.cells

	// Fused state build: one pass over all views. Unlike RateNeighbors,
	// nodes of Γ(u) ∪ {u} are counted too (with the exclude mark kept
	// separately), because a pruned neighbor leaves the excluded set
	// and its membership in the boundary is then read off count[v].
	// Link latencies are cached up front — d(u,w) never changes while
	// links are only removed.
	cells[u].exclude = ep
	for _, w := range nb {
		cells[w].exclude = ep
		s.uniq[w] = 0
		s.lat[w] = o.lat(u, int(w))
	}
	boundary := 0
	for _, w := range nb {
		wid := int64(w)
		for _, x := range o.neighborView(int(w)) {
			c := &cells[x]
			if c.stamp != ep {
				c.stamp = ep
				c.count = 1
				s.ownerSum[x] = wid
				if c.exclude != ep {
					boundary++
					s.uniq[w]++ // provisional: x unique to w so far
				}
			} else {
				if c.exclude != ep && c.count == 1 {
					s.uniq[s.ownerSum[x]]-- // second owner: no longer unique
				}
				c.count++
				s.ownerSum[x] += wid
			}
		}
	}

	for {
		nb = o.g.Neighbors(u)
		// Latency extremes from the cache: identical comparisons to
		// latencyExtremes, without re-querying the network model.
		dmax := 0.0
		dmin := math.Inf(1)
		for _, w := range nb {
			d := s.lat[w]
			if d > dmax {
				dmax = d
			}
			if d < dmin {
				dmin = d
			}
		}
		if dmin < minPositiveLatency {
			dmin = minPositiveLatency
		}
		worst := 0
		worstScore := math.Inf(1)
		for i, w := range nb {
			d := s.lat[w]
			if d < minPositiveLatency {
				d = minPositiveLatency
			}
			conn, prox := o.scoreTerms(int(s.uniq[w]), boundary, d, dmax, dmin)
			if score := conn + prox; score < worstScore {
				worst, worstScore = i, score
			}
		}
		v := int(nb[worst])
		// The final removal needs no state maintenance — nothing will
		// read the rating state afterwards. This matters because the
		// overwhelmingly common prune (an at-capacity node accepting
		// one dial) drops exactly one link.
		if last := len(nb)-1 <= o.caps[u]; last {
			o.disconnect(u, v)
			return append(dropped, int32(v))
		}

		// Subtract v's view before the edge goes away (in OracleViews
		// mode the removal would otherwise mutate the view under us).
		vid := int64(v)
		for _, x := range o.neighborView(v) {
			c := &cells[x]
			c.count--
			s.ownerSum[x] -= vid
			if c.exclude == ep {
				continue
			}
			switch c.count {
			case 1:
				s.uniq[s.ownerSum[x]]++ // sole owner again
			case 0:
				boundary--
			}
		}
		o.disconnect(u, v)
		// v left Γ(u): it is boundary material now if any surviving
		// neighbor's view still reaches it.
		cells[v].exclude = 0
		if cells[v].stamp == ep && cells[v].count > 0 {
			boundary++
			if cells[v].count == 1 {
				s.uniq[s.ownerSum[v]]++
			}
		}
		dropped = append(dropped, int32(v))
	}
}

// pruneSingle drops the one lowest-rated neighbor of u. It computes
// per-neighbor unique counts in a single fused pass over the views:
// the first (non-excluded) sighting of x credits its owner w and joins
// the boundary; a second sighting revokes the credit. The owner is
// parked in the count field (-1 once multi-owned) — no counts, owner
// sums or subtraction bookkeeping are needed because nothing reads the
// state after the removal. Scores route through scoreTerms, so the
// victim matches the full-recompute oracle's bit for bit.
func (o *Overlay) pruneSingle(u int, dropped []int32) []int32 {
	v := o.pruneSingleVictim(&o.scratch, u)
	o.disconnect(u, v)
	return append(dropped, int32(v))
}

// pruneSingleVictim picks pruneSingle's victim without mutating the
// graph, on an explicit scratch (shared by the sequential path and the
// wave builder's concurrent prune-decision pass). Calls within the L1
// kernel's volume limit take the hash path (identical victim, see
// ratehash.go); oversized neighborhoods use the global-array sweep.
func (o *Overlay) pruneSingleVictim(s *ratingScratch, u int) int {
	nb := o.g.Neighbors(u)
	if rows, vol := o.gatherViews(s, nb); vol <= whFallback {
		return o.pruneVictimHash(s, u, nb, rows)
	}
	return o.pruneSingleVictimWide(s, u)
}

// pruneSingleVictimWide is the global-array fallback kernel.
func (o *Overlay) pruneSingleVictimWide(s *ratingScratch, u int) int {
	s.epoch++
	ep := s.epoch
	nb := o.g.Neighbors(u)
	cells := s.cells

	cells[u].exclude = ep
	for _, w := range nb {
		cells[w].exclude = ep
		s.uniq[w] = 0
		s.lat[w] = o.lat(u, int(w))
	}
	boundary := 0
	for _, w := range nb {
		for _, x := range o.neighborView(int(w)) {
			c := &cells[x]
			if c.exclude == ep {
				continue
			}
			if c.stamp != ep {
				c.stamp = ep
				c.count = int32(w) // park the provisional owner
				s.uniq[w]++
				boundary++
			} else if own := c.count; own >= 0 {
				s.uniq[own]--
				c.count = -1
			}
		}
	}

	dmax := 0.0
	dmin := math.Inf(1)
	for _, w := range nb {
		d := s.lat[w]
		if d > dmax {
			dmax = d
		}
		if d < dmin {
			dmin = d
		}
	}
	if dmin < minPositiveLatency {
		dmin = minPositiveLatency
	}
	worst := 0
	worstScore := math.Inf(1)
	for i, w := range nb {
		d := s.lat[w]
		if d < minPositiveLatency {
			d = minPositiveLatency
		}
		conn, prox := o.scoreTerms(int(s.uniq[w]), boundary, d, dmax, dmin)
		if score := conn + prox; score < worstScore {
			worst, worstScore = i, score
		}
	}
	return int(nb[worst])
}

// disconnect tears down the edge (u, v) with tracing and view refresh,
// shared by both prune paths.
func (o *Overlay) disconnect(u, v int) {
	o.g.RemoveEdge(u, v)
	if t := o.cfg.Tracer; t != nil {
		t.Disconnect(u, v)
	}
	o.refreshView(u)
	o.refreshView(v)
}

// ratings returns a reusable RatingInfo slice stored on the scratch.
func (s *ratingScratch) ratings() []RatingInfo {
	if s.ratingBuf == nil {
		s.ratingBuf = make([]RatingInfo, 0, 64)
	}
	return s.ratingBuf[:0]
}
