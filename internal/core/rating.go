package core

import "math"

// ratingScratch holds the epoch-stamped counting arrays that make one
// rating evaluation O(deg²) with no allocation. A single scratch is
// owned by the Overlay; construction is single-goroutine (it models a
// sequential protocol trace), so no locking is needed.
type ratingScratch struct {
	epoch   int32
	count   []int32 // how many of u's neighbors can reach x
	stamp   []int32 // epoch when count[x] was last touched
	exclude []int32 // epoch when x was marked as Γ(u) ∪ {u}
	touched []int32 // nodes with count stamped this epoch

	ratingBuf []RatingInfo // reusable result buffer for pruning
}

func (s *ratingScratch) init(n int) {
	s.count = make([]int32, n)
	s.stamp = make([]int32, n)
	s.exclude = make([]int32, n)
	s.touched = make([]int32, 0, 256)
}

func (s *ratingScratch) grow(n int) {
	for len(s.count) < n {
		s.count = append(s.count, 0)
		s.stamp = append(s.stamp, 0)
		s.exclude = append(s.exclude, 0)
	}
}

// neighborView returns the neighbor list of v as visible to a rating
// computation: the live adjacency in OracleViews mode, the last
// exchanged snapshot in ProtocolViews mode.
func (o *Overlay) neighborView(v int) []int32 {
	if o.cfg.Views == ProtocolViews {
		return o.views[v]
	}
	return o.g.Neighbors(v)
}

// refreshView snapshots v's current adjacency as its exchanged view.
func (o *Overlay) refreshView(v int) {
	if o.cfg.Views != ProtocolViews {
		return
	}
	o.views[v] = append(o.views[v][:0], o.g.Neighbors(v)...)
}

// RatingInfo is the decomposition of one neighbor's rating, exposed
// for analysis and tests.
type RatingInfo struct {
	Neighbor     int
	Unique       int     // |R(u,v)|: nodes reachable from u only via v
	Boundary     int     // |∂Γ(u)|: node boundary of u's neighborhood
	Latency      float64 // d(u,v)
	MaxLatency   float64 // d_max over u's neighbors
	Connectivity float64 // alpha * Unique/Boundary
	Proximity    float64 // beta * MaxLatency/Latency
	Score        float64 // Connectivity + Proximity
}

// minPositiveLatency floors latencies so co-located nodes (distance 0)
// do not produce an infinite proximity score.
const minPositiveLatency = 1e-9

// RateNeighbors computes the Makalu rating of every current neighbor
// of u, in adjacency order. The slice is reused scratch owned by the
// caller via append semantics (pass nil to allocate).
//
// The computation follows §2.1: the unique reachable set R(u,v) is
// v's view minus u, minus u's own neighbors, minus anything visible
// through another neighbor; the node boundary ∂Γ(u) is the union of
// all views minus Γ(u) ∪ {u}.
func (o *Overlay) RateNeighbors(u int, out []RatingInfo) []RatingInfo {
	nb := o.g.Neighbors(u)
	out = out[:0]
	if len(nb) == 0 {
		return out
	}
	s := &o.scratch
	s.epoch++
	ep := s.epoch
	s.touched = s.touched[:0]

	// Mark Γ(u) ∪ {u} as excluded from boundary and unique sets.
	s.exclude[u] = ep
	for _, w := range nb {
		s.exclude[w] = ep
	}
	// Count, for every node x in some neighbor's view, the number of
	// u's neighbors whose view contains x.
	for _, w := range nb {
		for _, x := range o.neighborView(int(w)) {
			if s.exclude[x] == ep {
				continue
			}
			if s.stamp[x] != ep {
				s.stamp[x] = ep
				s.count[x] = 1
				s.touched = append(s.touched, x)
			} else {
				s.count[x]++
			}
		}
	}
	boundary := len(s.touched)

	// Latency extremes.
	dmax := 0.0
	dmin := math.Inf(1)
	for _, w := range nb {
		d := o.cfg.Net.Latency(u, int(w))
		if d > dmax {
			dmax = d
		}
		if d < dmin {
			dmin = d
		}
	}
	if dmin < minPositiveLatency {
		dmin = minPositiveLatency
	}

	for _, w := range nb {
		unique := 0
		for _, x := range o.neighborView(int(w)) {
			if s.exclude[x] != ep && s.stamp[x] == ep && s.count[x] == 1 {
				unique++
			}
		}
		d := o.cfg.Net.Latency(u, int(w))
		if d < minPositiveLatency {
			d = minPositiveLatency
		}
		info := RatingInfo{
			Neighbor:   int(w),
			Unique:     unique,
			Boundary:   boundary,
			Latency:    d,
			MaxLatency: dmax,
		}
		if boundary > 0 {
			info.Connectivity = o.cfg.Alpha * float64(unique) / float64(boundary)
		}
		if dmax > 0 {
			if o.cfg.RawProximity {
				info.Proximity = o.cfg.Beta * dmax / d
			} else {
				info.Proximity = o.cfg.Beta * dmin / d
			}
		}
		info.Score = info.Connectivity + info.Proximity
		out = append(out, info)
	}
	return out
}

// Rating returns the score of neighbor v as seen by u, or NaN when v
// is not currently a neighbor of u.
func (o *Overlay) Rating(u, v int) float64 {
	infos := o.RateNeighbors(u, nil)
	for _, in := range infos {
		if in.Neighbor == v {
			return in.Score
		}
	}
	return math.NaN()
}

// pruneToCapacity implements the inner loop of Manage(): while u has
// more neighbors than its capacity, disconnect the lowest-rated one.
// Ratings are recomputed after every removal because the boundary and
// unique sets change. It returns the disconnected nodes.
func (o *Overlay) pruneToCapacity(u int, dropped []int32) []int32 {
	for o.g.Degree(u) > o.caps[u] {
		infos := o.RateNeighbors(u, o.scratch.ratings())
		o.scratch.ratingBuf = infos // keep any growth for reuse
		worst := 0
		for i := 1; i < len(infos); i++ {
			if infos[i].Score < infos[worst].Score {
				worst = i
			}
		}
		v := infos[worst].Neighbor
		o.g.RemoveEdge(u, v)
		if t := o.cfg.Tracer; t != nil {
			t.Disconnect(u, v)
		}
		o.refreshView(u)
		o.refreshView(v)
		dropped = append(dropped, int32(v))
	}
	return dropped
}

// ratings returns a reusable RatingInfo slice stored on the scratch.
func (s *ratingScratch) ratings() []RatingInfo {
	if s.ratingBuf == nil {
		s.ratingBuf = make([]RatingInfo, 0, 64)
	}
	return s.ratingBuf[:0]
}
