package core

import (
	"math"
	"testing"
	"testing/quick"

	"makalu/internal/netmodel"
)

// Property suite: invariants that must hold for every overlay the
// builder can produce, across random seeds, sizes and weightings.

func TestOverlayInvariantsProperty(t *testing.T) {
	prop := func(seedRaw int16, nRaw uint8, alphaRaw, betaRaw uint8) bool {
		n := int(nRaw)%150 + 20
		seed := int64(seedRaw)
		alpha := float64(alphaRaw%3) / 2 // 0, 0.5, 1
		beta := float64(betaRaw%3) / 2
		if alpha == 0 && beta == 0 {
			alpha = 1
		}
		net := netmodel.NewEuclidean(n, 1000, seed)
		cfg := DefaultConfig(net, seed)
		cfg.Alpha, cfg.Beta = alpha, beta
		o, err := Build(n, cfg)
		if err != nil {
			return false
		}
		// I1: capacity respected everywhere.
		for u := 0; u < n; u++ {
			if o.Graph().Degree(u) > o.Capacity(u) {
				return false
			}
		}
		// I2: the overlay is one connected component.
		if !o.Freeze().IsConnected() {
			return false
		}
		// I3: adjacency is symmetric and loop-free.
		g := o.Graph()
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if int(v) == u || !g.HasEdge(int(v), u) {
					return false
				}
			}
		}
		// I4: ratings decompose and stay finite.
		for u := 0; u < n; u += 7 {
			for _, info := range o.RateNeighbors(u, nil) {
				if math.IsNaN(info.Score) || math.IsInf(info.Score, 0) {
					return false
				}
				if math.Abs(info.Score-(info.Connectivity+info.Proximity)) > 1e-9 {
					return false
				}
				if info.Unique > info.Boundary {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFailureInvariantsProperty(t *testing.T) {
	prop := func(seedRaw int16, fracRaw uint8) bool {
		n := 120
		seed := int64(seedRaw)
		frac := float64(fracRaw%31) / 100 // 0..30%
		net := netmodel.NewEuclidean(n, 1000, seed)
		o, err := Build(n, DefaultConfig(net, seed))
		if err != nil {
			return false
		}
		k := int(frac * float64(n))
		victims := o.FailTopDegree(k)
		if len(victims) != k {
			return false
		}
		// I5: live accounting is exact.
		if o.LiveCount() != n-k {
			return false
		}
		live := 0
		for u := 0; u < n; u++ {
			if o.Alive(u) {
				live++
			} else if o.Graph().Degree(u) != 0 {
				return false // dead nodes keep no edges
			}
		}
		if live != n-k {
			return false
		}
		// I6: recovery rounds never exceed capacities.
		o.Recover(1)
		for u := 0; u < n; u++ {
			if o.Alive(u) && o.Graph().Degree(u) > o.Capacity(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestChurnCycleInvariantsProperty(t *testing.T) {
	prop := func(seedRaw int16, opsRaw uint8) bool {
		n := 100
		seed := int64(seedRaw)
		net := netmodel.NewEuclidean(n, 1000, seed)
		o, err := Build(n, DefaultConfig(net, seed))
		if err != nil {
			return false
		}
		// Random interleaving of leaves, crashes and revives.
		ops := int(opsRaw)%40 + 10
		x := uint64(seed)*2654435761 + 12345
		dead := map[int]bool{}
		for i := 0; i < ops; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			u := int(x>>33) % n
			switch (x >> 13) % 3 {
			case 0:
				if o.Leave(u) == dead[u] {
					return false // Leave succeeds iff node was alive
				}
				dead[u] = true
			case 1:
				if o.Revive(u) != dead[u] {
					return false // Revive succeeds iff node was dead
				}
				dead[u] = false
			case 2:
				o.FailNodes([]int{u})
				dead[u] = true
			}
		}
		// Accounting stays exact through any interleaving.
		want := 0
		for u := 0; u < n; u++ {
			if !dead[u] {
				want++
			}
			if o.Alive(u) == dead[u] {
				return false
			}
		}
		return o.LiveCount() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
