package core

import "sync"

// This file implements batched join-wave construction, selected with
// Config.JoinWave > 1. The sequential build admits one node at a time:
// walk, dial, prune, repeat — a long dependency chain of scattered
// O(deg²) rating sweeps that is the repo's build wall. The wave build
// restructures the same §2.2 protocol into epochs:
//
//	W1  up to JoinWave joiners run their candidate walks concurrently
//	    against the wave-start overlay (the graph is not mutated
//	    between commits, so the live adjacency IS the snapshot), each
//	    with a private splitmix64-derived rng keyed by its position in
//	    the join order — the QuerySeed pattern from the search batch
//	    engine;
//	W2  accepted links commit sequentially in slot order as
//	    provisional edges (the paper's accept-freely rule), with
//	    pruning deferred;
//	W3  every node pushed over capacity computes its prune victims in
//	    parallel on per-worker scratches — a read-only "virtual prune"
//	    against the post-commit snapshot;
//	W4  victim lists apply sequentially in a fixed order, skipping
//	    edges the other endpoint already dropped;
//	W5  one management pass runs over the wave-affected nodes
//	    (batched fill walks + one more prune round).
//
// Batching is where the work reduction comes from, independent of core
// count: a node that accepts k links in a wave builds its O(deg²)
// rating state once and drops k victims incrementally, where the
// sequential protocol builds it k times (and the legacy connect() path
// builds it on both endpoints of every dial). The parallel phases
// additionally scale on multicore hosts, and because every slot owns
// its rng, every worker owns its scratch, and all mutation is
// sequential in fixed slot order, a wave build is bit-identical for a
// fixed seed at ANY worker count (asserted by the wave golden tests).
//
// A wave build is a different protocol schedule from the sequential
// build — joiners within a wave cannot see each other's links — so its
// edge sets differ from the sequential oracle's. Both satisfy the same
// invariants (capacity, connectivity, degree distribution); the golden
// oracle for wave correctness is determinism plus the invariant suite,
// while JoinWave<=1 routes through the untouched sequential path.

// intner is the minimal rng surface the candidate walk needs. It is
// satisfied by *rand.Rand (the sequential path) and by *waveRng (the
// per-slot deterministic streams of the wave builder).
type intner interface{ Intn(n int) int }

// waveRng is a splitmix64 stream: 8 bytes of state, an add and a few
// xor-shifts per draw, and O(1) seeding — re-seeding a math/rand
// rngSource costs ~607 word initializations, which would dominate a
// pass that seeds one stream per node.
type waveRng struct{ x uint64 }

// Intn returns a deterministic pseudo-random int in [0, n). The modulo
// reduction has negligible bias for the small n used here (node and
// neighbor counts) and keeps the draw branch-free.
func (r *waveRng) Intn(n int) int {
	r.x += 0x9e3779b97f4a7c15
	z := r.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// mix64 derives an independent stream seed from the build seed and a
// slot key (same finalizer as search.QuerySeed).
func mix64(seed int64, q uint64) uint64 {
	x := uint64(seed) + (q+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream salts keep the per-joiner, per-wave-management and per-round
// rng families disjoint.
const (
	saltWaveManage uint64 = 0x574d47 << 32
	saltManage     uint64 = 0x524e44 << 32
)

// waveBootstrap is how many nodes join sequentially before the first
// wave (capped at the wave size).
const waveBootstrap = 256

// wavePruneEvery is how many join waves stack up before the batched
// prune drains them. Deferring the drain is the second half of the
// amortization: dials to a popular node arrive ~2 per wave, so
// draining every wave still plans that node once per ~2 accepts;
// letting waveAcceptSlack absorb a few waves' worth of stacking plans
// it once per ~6. The overlay carries ≤ slack excess links per node
// (a few percent of mean degree) between drains, which the walks and
// ratings tolerate — every plan still judges the full neighborhood.
const wavePruneEvery = 8

// waveSlot is the per-item scratch of one wave pass: the item's node,
// its private rng stream, its chosen walk seed peer, and its gathered
// dial targets. Slots are written only by their owning worker during
// parallel phases and read only by the sequential commit.
type waveSlot struct {
	node   int32
	seed   int32 // walk seed peer, -1 when none
	rng    waveRng
	probes []int32 // management probe dials (accepted even at capacity)
	cands  []int32 // walk candidates, dialed while under capacity
	fb     []int32 // boundary-fallback scratch for the walk
}

// waveState owns the reusable buffers of the wave builder: the slot
// pool (one per in-flight item, reused across waves and chunks), the
// generation-stamped affected/over-capacity sets, and the per-node
// prune plans.
type waveState struct {
	slots  []waveSlot
	joined []int32 // committed nodes in join order (walk seed pool)

	affected []int32 // nodes whose adjacency changed this wave
	affMark  []int32
	affGen   int32

	over     []int32 // nodes that accepted links since the last prune
	overMark []int32
	overGen  int32

	plans [][]int32 // per-over-node prune victim lists
	chunk []int32   // reusable node-id list for chunked passes

	wavesSincePrune int // join waves committed since the last drain
}

func newWaveState(n, k int) *waveState {
	w := &waveState{
		slots:    make([]waveSlot, k),
		joined:   make([]int32, 0, n),
		affMark:  make([]int32, n),
		overMark: make([]int32, n),
		affGen:   1,
		overGen:  1,
	}
	return w
}

func (w *waveState) beginAffected() {
	w.affGen++
	w.affected = w.affected[:0]
}

func (w *waveState) markAffected(u int) {
	if w.affMark[u] != w.affGen {
		w.affMark[u] = w.affGen
		w.affected = append(w.affected, int32(u))
	}
}

func (w *waveState) markOver(u int) {
	if w.overMark[u] != w.overGen {
		w.overMark[u] = w.overGen
		w.over = append(w.over, int32(u))
	}
}

func (w *waveState) resetOver() {
	w.overGen++
	w.over = w.over[:0]
}

// forEachSlot runs fn(s, i) for every slot i in [0, k), sharding
// contiguous slot ranges across the worker pool; fn must only write
// state owned by slot i (and its private scratch), which makes the
// result independent of worker count and scheduling. A non-nil tracer
// forces sequential execution because walk probes trace inline.
func (o *Overlay) forEachSlot(k int, fn func(s *ratingScratch, i int)) {
	workers := o.workerCount()
	if o.cfg.Tracer != nil {
		workers = 1
	}
	if workers > k {
		workers = k
	}
	if workers <= 1 {
		s := o.scratchFor(0)
		for i := 0; i < k; i++ {
			fn(s, i)
		}
		return
	}
	chunk := (k + workers - 1) / workers
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s *ratingScratch, lo, hi int) {
			defer wg.Done()
			for j := lo; j < hi; j++ {
				fn(s, j)
			}
		}(o.scratchFor(i), lo, hi)
	}
	wg.Wait()
}

// buildWaves is the wave-mode body of Build: a sequential bootstrap
// wave (the overlay needs a walkable core before walks parallelize),
// then batched join waves, then ManageRounds batched management rounds
// over the whole overlay, then the usual fragment rejoin.
func (o *Overlay) buildWaves(n int) {
	cfg := &o.cfg
	buildStart := buildClock(cfg.Obs)
	k := cfg.JoinWave
	if k > n {
		k = n
	}
	w := newWaveState(n, k)
	o.wave = w

	order := o.perm(n)
	// Bootstrap: the first nodes join one at a time through the
	// sequential protocol — walks need an overlay to walk on, and at
	// bootstrap scale the sequential path costs nothing.
	boot := waveBootstrap
	if boot > k {
		boot = k
	}
	for _, u := range order[:boot] {
		o.join(u, w.joined)
		w.joined = append(w.joined, int32(u))
		cfg.Obs.join()
	}
	// Waves ramp up to the configured size, never admitting more
	// joiners than the overlay already holds: a wave much larger than
	// the wave-start graph concentrates every walk on the same few
	// nodes, and the collision pile-up costs more than the batching
	// saves. Doubling reaches full size by ~2·JoinWave committed nodes.
	for pos := boot; pos < n; {
		wk := len(w.joined)
		if wk > k {
			wk = k
		}
		if pos+wk > n {
			wk = n - pos
		}
		ws := buildClock(cfg.Obs)
		o.joinWave(order[pos:pos+wk], pos, pos+wk == n)
		pos += wk
		cfg.Obs.wave(ws)
	}
	for r := 0; r < cfg.ManageRounds; r++ {
		ms := buildClock(cfg.Obs)
		o.waveManageRound(r)
		cfg.Obs.managePass(ms)
	}
	o.wavePrune() // drain any undrained W5 fallout (e.g. ManageRounds=0)
	o.RejoinFragments(3)
	cfg.Obs.buildDone(buildStart, n)
}

// joinWave admits one wave of joiners: parallel walks, sequential
// commit, batched prune (every wavePruneEvery waves, and always on the
// final wave), then the wave's management pass over every node the
// wave left critically short.
func (o *Overlay) joinWave(order []int, pos int, final bool) {
	w := o.wave
	k := len(order)
	for i := 0; i < k; i++ {
		sl := &w.slots[i]
		sl.node = int32(order[i])
		// Per-joiner stream keyed by position in the global join order,
		// so the walk is a pure function of (seed, position) — not of
		// worker count, not of scheduling.
		sl.rng.x = mix64(o.cfg.Seed, uint64(pos+i))
		sl.seed = w.joined[sl.rng.Intn(len(w.joined))]
	}
	// W1: concurrent candidate walks against the wave-start overlay.
	// Nothing mutates the graph until the commit below, so the live
	// adjacency is the snapshot.
	o.forEachSlot(k, func(s *ratingScratch, i int) {
		sl := &w.slots[i]
		sl.cands, sl.fb = o.walkCandidatesOn(s, &sl.rng, int(sl.node), int(sl.seed), sl.cands[:0], sl.fb[:0])
	})
	// W2: sequential commit in slot order. Links are provisional
	// accepts — pruning is deferred to the batched pass, so a popular
	// candidate builds its rating state once for the whole wave.
	w.beginAffected()
	for i := 0; i < k; i++ {
		sl := &w.slots[i]
		u := int(sl.node)
		for _, c := range sl.cands {
			if o.g.Degree(u) >= o.caps[u] {
				break
			}
			o.waveAccept(u, int(c))
		}
		if o.g.Degree(u) == 0 {
			// Same bootstrap guarantee as the sequential join: never
			// leave a joiner isolated; the seed peer accepts directly.
			o.waveAccept(u, int(sl.seed))
		}
		w.joined = append(w.joined, sl.node)
		o.cfg.Obs.join()
	}
	// W3+W4: batched prune of everyone the commits pushed over,
	// deferred across waves so the stacking can amortize.
	w.wavesSincePrune++
	if w.wavesSincePrune >= wavePruneEvery || final {
		o.wavePrune()
		w.wavesSincePrune = 0
	}
	// W5: management pass over the wave's footprint — nodes the wave
	// left critically under capacity (heavily pruned acceptors,
	// joiners whose candidates were all refused) walk for
	// replacements. The threshold is deliberately strict: measured at
	// 2·10⁵ nodes, re-walking everything merely below capacity
	// generates ~3 accepts per walk into mostly-full nodes, each of
	// which evicts an existing link and re-opens a slot elsewhere —
	// musical chairs that more than doubled total plan count for no
	// quality gain. Mildly open slots wait for pairOpenSlots and the
	// end-of-build rounds. The affected list is captured here; fills
	// may mark further nodes, which belong to the next wave's problem.
	aff := w.affected
	m := 0
	for _, ui := range aff {
		if 2*o.g.Degree(int(ui)) < o.caps[ui] {
			aff[m] = ui
			m++
		}
	}
	aff = aff[:m]
	base := int64(mix64(o.cfg.Seed, saltWaveManage|uint64(pos)))
	for lo := 0; lo < len(aff); lo += len(w.slots) {
		hi := lo + len(w.slots)
		if hi > len(aff) {
			hi = len(aff)
		}
		o.manageChunk(aff[lo:hi], base, 0, 1)
	}
}

// waveAcceptSlack bounds how far past capacity a node's provisional
// accepts can stack up within one wave, modeling a bounded accept
// queue: past it the dial is refused and the joiner moves to its next
// candidate. The slack is what lets batching amortize — a node that
// stacks e excess links is planned ONCE per wave and drops e victims
// incrementally (O(view) each on the L1 table, see pruneVictimsHash),
// where the sequential protocol rebuilds the O(deg²) rating state for
// every single accept. Too small a slack refuses the stacking that
// amortization feeds on; unbounded slack lets one popular node absorb
// a whole wave's dials only to drop most of them. Eight ≈ the mean
// degree is the sweet spot measured at 2·10⁵.
const waveAcceptSlack = 12

// waveAccept commits the provisional edge (u, v): accept with tracing
// and view refresh, pruning deferred to the batched pass. Dials to a
// node already waveAcceptSlack past capacity are refused.
func (o *Overlay) waveAccept(u, v int) bool {
	if u == v || !o.alive[u] || !o.alive[v] {
		return false
	}
	if o.g.Degree(v) >= o.caps[v]+waveAcceptSlack {
		return false
	}
	if !o.g.AddEdge(u, v) {
		return false
	}
	if t := o.cfg.Tracer; t != nil {
		t.Connect(u, v)
		t.ViewExchange(u, v, o.g.Degree(u))
		t.ViewExchange(v, u, o.g.Degree(v))
	}
	o.refreshView(u)
	o.refreshView(v)
	w := o.wave
	w.markAffected(u)
	w.markAffected(v)
	w.markOver(u)
	w.markOver(v)
	return true
}

// wavePrune drains every node the current accept batch pushed over
// capacity. Victim lists are computed in parallel against the
// post-commit snapshot (read-only, per-worker scratches) and applied
// sequentially in accept order; an edge the other endpoint already
// dropped is skipped, and the degree guard stops each node exactly at
// capacity. This is the arrival-order-independent "simultaneous
// decision" reading of the paper's Manage() loop: every over-capacity
// node judges its neighbors against the same overlay state.
func (o *Overlay) wavePrune() {
	w := o.wave
	m := 0
	for _, ui := range w.over {
		if o.g.Degree(int(ui)) > o.caps[ui] {
			w.over[m] = ui
			m++
		}
	}
	if m == 0 {
		w.resetOver()
		return
	}
	over := w.over[:m]
	for len(w.plans) < m {
		w.plans = append(w.plans, nil)
	}
	o.forEachSlot(m, func(s *ratingScratch, i int) {
		w.plans[i] = o.pruneVictimsOn(s, int(over[i]), w.plans[i][:0])
	})
	for i, ui := range over {
		u := int(ui)
		for _, v := range w.plans[i] {
			if o.g.Degree(u) <= o.caps[u] {
				break
			}
			if !o.g.HasEdge(u, int(v)) {
				continue
			}
			o.disconnect(u, int(v))
			w.markAffected(int(v))
		}
	}
	w.resetOver()
}

// pruneVictimsOn computes the prune victims of over-capacity node u
// without mutating the graph: the incremental rating state of
// pruneIncremental, maintained over a scratch-local copy of u's
// neighbor list with swap-removal. Read-only against the overlay, so
// any number of nodes can plan concurrently against the same snapshot.
func (o *Overlay) pruneVictimsOn(s *ratingScratch, u int, out []int32) []int32 {
	if o.g.Degree(u)-o.caps[u] == 1 {
		// The dominant case (a round probe, a single surviving accept)
		// drops exactly one link and never reads the state again, so it
		// takes the owner-parking fast path — no owner sums, no
		// subtraction bookkeeping, one less array in cache.
		return append(out, int32(o.pruneSingleVictim(s, u)))
	}
	if rows, vol := o.gatherViews(s, o.g.Neighbors(u)); vol <= whFallback {
		return o.pruneVictimsHash(s, u, o.g.Neighbors(u), rows, out)
	}
	s.epoch++
	ep := s.epoch
	nb := append(s.wnb[:0], o.g.Neighbors(u)...)
	cells := s.cells

	cells[u].exclude = ep
	for _, w := range nb {
		cells[w].exclude = ep
		s.uniq[w] = 0
		s.lat[w] = o.lat(u, int(w))
	}
	boundary := 0
	for _, w := range nb {
		wid := int64(w)
		for _, x := range o.neighborView(int(w)) {
			c := &cells[x]
			if c.stamp != ep {
				c.stamp = ep
				c.count = 1
				s.ownerSum[x] = wid
				if c.exclude != ep {
					boundary++
					s.uniq[w]++
				}
			} else {
				if c.exclude != ep && c.count == 1 {
					s.uniq[s.ownerSum[x]]--
				}
				c.count++
				s.ownerSum[x] += wid
			}
		}
	}

	for {
		dmax := 0.0
		dmin := minPositiveLatency
		first := true
		for _, w := range nb {
			d := s.lat[w]
			if d > dmax {
				dmax = d
			}
			if first || d < dmin {
				dmin = d
				first = false
			}
		}
		if dmin < minPositiveLatency {
			dmin = minPositiveLatency
		}
		worst := 0
		worstScore := 0.0
		for i, w := range nb {
			d := s.lat[w]
			if d < minPositiveLatency {
				d = minPositiveLatency
			}
			conn, prox := o.scoreTerms(int(s.uniq[w]), boundary, d, dmax, dmin)
			if score := conn + prox; i == 0 || score < worstScore {
				worst, worstScore = i, score
			}
		}
		v := int(nb[worst])
		out = append(out, int32(v))
		if len(nb)-1 <= o.caps[u] {
			s.wnb = nb
			return out
		}
		// Subtract v's view from the maintained state and swap-remove v
		// from the local neighbor copy (the graph itself is untouched).
		vid := int64(v)
		for _, x := range o.neighborView(v) {
			c := &cells[x]
			c.count--
			s.ownerSum[x] -= vid
			if c.exclude == ep {
				continue
			}
			switch c.count {
			case 1:
				s.uniq[s.ownerSum[x]]++
			case 0:
				boundary--
			}
		}
		cells[v].exclude = 0
		if cells[v].stamp == ep && cells[v].count > 0 {
			boundary++
			if cells[v].count == 1 {
				s.uniq[s.ownerSum[v]]++
			}
		}
		nb[worst] = nb[len(nb)-1]
		nb = nb[:len(nb)-1]
	}
}

// slotAliveNeighbor is randomAliveNeighbor on an explicit rng stream.
func (o *Overlay) slotAliveNeighbor(rng intner, u int) int {
	nb := o.g.Neighbors(u)
	if len(nb) == 0 {
		return -1
	}
	start := rng.Intn(len(nb))
	for i := 0; i < len(nb); i++ {
		v := int(nb[(start+i)%len(nb)])
		if o.alive[v] {
			return v
		}
	}
	return -1
}

// slotAliveExcept is randomAliveNodeExcept on an explicit rng stream.
func (o *Overlay) slotAliveExcept(rng intner, u int) int {
	if o.nLive <= 1 {
		return -1
	}
	n := o.g.N()
	for {
		v := rng.Intn(n)
		if v != u && o.alive[v] {
			return v
		}
	}
}

// manageChunk runs the batched management step for one chunk of nodes:
// a parallel gather phase decides each node's probe dials and — for
// nodes at least minDeficit below capacity — walks for fill
// candidates; a sequential commit phase applies the dials in slot
// order. Draining the over-capacity fallout is the CALLER's job (one
// wavePrune per round or per wave-management pass, not per chunk), so
// accepts stack across chunks and the drain amortizes. Each node's rng
// stream is keyed by (base, node id), so chunk boundaries and worker
// counts never change a decision.
func (o *Overlay) manageChunk(nodes []int32, base int64, probes, minDeficit int) {
	w := o.wave
	k := len(nodes)
	if k == 0 {
		return
	}
	o.forEachSlot(k, func(s *ratingScratch, i int) {
		sl := &w.slots[i]
		u := int(nodes[i])
		sl.node = nodes[i]
		sl.rng.x = mix64(base, uint64(u))
		sl.probes = sl.probes[:0]
		sl.cands = sl.cands[:0]
		if !o.alive[u] {
			return
		}
		for p := 0; p < probes; p++ {
			if c := o.slotAliveExcept(&sl.rng, u); c >= 0 {
				sl.probes = append(sl.probes, int32(c))
			}
		}
		if o.caps[u]-o.g.Degree(u) >= minDeficit {
			seed := o.slotAliveNeighbor(&sl.rng, u)
			if seed < 0 {
				// Fragment island or isolated node: fall back to the
				// host-cache path and walk from a random known peer.
				seed = o.slotAliveExcept(&sl.rng, u)
			}
			if seed >= 0 {
				sl.cands, sl.fb = o.walkCandidatesOn(s, &sl.rng, u, seed, sl.cands, sl.fb[:0])
			}
		}
	})
	for i := 0; i < k; i++ {
		sl := &w.slots[i]
		u := int(sl.node)
		for _, c := range sl.probes {
			o.waveAccept(u, int(c))
		}
		for _, c := range sl.cands {
			if o.g.Degree(u) >= o.caps[u] {
				break
			}
			o.waveAccept(u, int(c))
		}
	}
}

// waveManageRound is the batched equivalent of ManageRound: the
// overlay is processed in slot-pool-sized chunks of ascending node id,
// each chunk through the gather/commit/prune pipeline with the
// configured probe dials, then open slots pair up as usual. One round
// builds each over-capacity node's rating state once — the sequential
// round builds it on both endpoints of every probe dial.
func (o *Overlay) waveManageRound(r int) {
	n := o.g.N()
	if t := o.cfg.Tracer; t != nil {
		// Periodic routing-table exchange, accounted as in ManageRound.
		for u := 0; u < n; u++ {
			if !o.alive[u] {
				continue
			}
			deg := o.g.Degree(u)
			for _, v := range o.g.Neighbors(u) {
				if o.alive[v] {
					t.ViewExchange(u, int(v), deg)
				}
			}
		}
	}
	o.refreshAllViews()
	w := o.wave
	w.beginAffected()
	base := int64(mix64(o.cfg.Seed, saltManage|uint64(r)))
	k := len(w.slots)
	for lo := 0; lo < n; lo += k {
		hi := lo + k
		if hi > n {
			hi = n
		}
		chunk := w.chunk[:0]
		for u := lo; u < hi; u++ {
			if o.alive[u] {
				chunk = append(chunk, int32(u))
			}
		}
		w.chunk = chunk
		o.manageChunk(chunk, base, o.cfg.ProbesPerRound, 1)
	}
	// Drain once per round (not per chunk): accepts stack across the
	// whole sweep and each over node is planned once. Draining less
	// often than that loses quality — the final drain would shed links
	// no later pass refills, and mean degree sags.
	o.wavePrune()
	o.pairOpenSlots()
}
