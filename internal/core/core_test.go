package core

import (
	"math"
	"testing"

	"makalu/internal/netmodel"
)

// buildSmall builds a Makalu overlay of n nodes on a Euclidean plane.
func buildSmall(t *testing.T, n int, seed int64) *Overlay {
	t.Helper()
	net := netmodel.NewEuclidean(n, 1000, seed)
	o, err := Build(n, DefaultConfig(net, seed))
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestBuildValidation(t *testing.T) {
	net := netmodel.NewEuclidean(10, 100, 1)
	if _, err := Build(10, Config{Alpha: 1, Beta: 1}); err == nil {
		t.Fatal("missing Net should fail")
	}
	if _, err := Build(20, DefaultConfig(net, 1)); err == nil {
		t.Fatal("model smaller than n should fail")
	}
	cfg := DefaultConfig(net, 1)
	cfg.Capacities = []int{5}
	if _, err := Build(10, cfg); err == nil {
		t.Fatal("capacity length mismatch should fail")
	}
	cfg = DefaultConfig(net, 1)
	cfg.Alpha, cfg.Beta = 0, 0
	if _, err := Build(10, cfg); err == nil {
		t.Fatal("zero weights should fail")
	}
	cfg = DefaultConfig(net, 1)
	cfg.Alpha = -1
	if _, err := Build(10, cfg); err == nil {
		t.Fatal("negative weight should fail")
	}
}

func TestBuildConnectedAndCapacityRespecting(t *testing.T) {
	o := buildSmall(t, 500, 42)
	f := o.Freeze()
	if !f.IsConnected() {
		t.Fatal("Makalu overlay should be a single component")
	}
	for u := 0; u < o.N(); u++ {
		if d := o.Graph().Degree(u); d > o.Capacity(u) {
			t.Fatalf("node %d degree %d exceeds capacity %d", u, d, o.Capacity(u))
		}
	}
	if md := o.MeanDegree(); md < 4 {
		t.Fatalf("mean degree %.2f suspiciously low", md)
	}
}

func TestBuildDeterminism(t *testing.T) {
	a := buildSmall(t, 200, 7).Freeze()
	b := buildSmall(t, 200, 7).Freeze()
	if a.M() != b.M() {
		t.Fatalf("edge counts differ: %d vs %d", a.M(), b.M())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed should give identical overlays")
		}
	}
}

func TestBuildDifferentSeedsDiffer(t *testing.T) {
	a := buildSmall(t, 200, 1).Freeze()
	b := buildSmall(t, 200, 2).Freeze()
	if a.M() == b.M() {
		same := true
		for i := range a.Edges {
			if i >= len(b.Edges) || a.Edges[i] != b.Edges[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds gave identical overlays")
		}
	}
}

func TestCustomCapacitiesHonored(t *testing.T) {
	n := 100
	net := netmodel.NewEuclidean(n, 100, 3)
	caps := make([]int, n)
	for i := range caps {
		caps[i] = 4
	}
	cfg := DefaultConfig(net, 3)
	cfg.Capacities = caps
	o, err := Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		if o.Graph().Degree(u) > 4 {
			t.Fatalf("node %d degree %d > capacity 4", u, o.Graph().Degree(u))
		}
	}
}

// Hand-built scenario exercising the rating decomposition.
//
//	Overlay edges: u=0 connected to v=1 and w=2.
//	v's other neighbors: 3, 4 (unique through v).
//	w's other neighbors: 4, 5 (4 shared, 5 unique through w).
//
// Boundary of u = {3,4,5}. R(u,v) = {3}, R(u,w) = {5}.
func ratingFixture(t *testing.T, alpha, beta float64, lat []float64) *Overlay {
	t.Helper()
	n := 6
	m, err := netmodel.NewMatrix(n, lat)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Alpha: alpha, Beta: beta, Net: m, Seed: 1,
		WalkLength: 1, CandidateSetSize: 1, ManageRounds: 0,
	}
	cfg.Capacities = []int{10, 10, 10, 10, 10, 10}
	o, err := Build(6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the built topology with the fixture's hand-wired edges.
	g := o.Graph()
	for u := 0; u < 6; u++ {
		g.IsolateNode(u)
	}
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 4)
	g.AddEdge(2, 5)
	return o
}

func uniformMatrix(n int, d float64) []float64 {
	lat := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				lat[i*n+j] = d
			}
		}
	}
	return lat
}

func TestRatingConnectivityTerm(t *testing.T) {
	// beta = 0 isolates the connectivity term.
	o := ratingFixture(t, 1, 0, uniformMatrix(6, 10))
	infos := o.RateNeighbors(0, nil)
	if len(infos) != 2 {
		t.Fatalf("u has %d rated neighbors, want 2", len(infos))
	}
	for _, in := range infos {
		if in.Boundary != 3 {
			t.Fatalf("boundary = %d, want 3 ({3,4,5})", in.Boundary)
		}
		if in.Unique != 1 {
			t.Fatalf("neighbor %d unique = %d, want 1", in.Neighbor, in.Unique)
		}
		wantScore := 1.0 / 3.0
		if math.Abs(in.Score-wantScore) > 1e-12 {
			t.Fatalf("score = %v, want %v", in.Score, wantScore)
		}
		if in.Proximity != 0 {
			t.Fatalf("beta=0 should zero the proximity term, got %v", in.Proximity)
		}
	}
}

func TestRatingProximityTermNormalized(t *testing.T) {
	// alpha = 0 isolates proximity. Latency u-1 = 10, u-2 = 40. The
	// default normalized form scores d_min/d: near = 10/10 = 1, far =
	// 10/40 = 0.25.
	lat := uniformMatrix(6, 10)
	lat[0*6+2], lat[2*6+0] = 40, 40
	o := ratingFixture(t, 0, 1, lat)
	infos := o.RateNeighbors(0, nil)
	var near, far RatingInfo
	for _, in := range infos {
		if in.Neighbor == 1 {
			near = in
		} else {
			far = in
		}
	}
	if near.MaxLatency != 40 || far.MaxLatency != 40 {
		t.Fatalf("dmax = %v/%v, want 40", near.MaxLatency, far.MaxLatency)
	}
	if math.Abs(near.Score-1.0) > 1e-12 {
		t.Fatalf("near score = %v, want 1", near.Score)
	}
	if math.Abs(far.Score-0.25) > 1e-12 {
		t.Fatalf("far score = %v, want 0.25", far.Score)
	}
	if near.Connectivity != 0 {
		t.Fatal("alpha=0 should zero the connectivity term")
	}
}

func TestRatingProximityTermRaw(t *testing.T) {
	// RawProximity restores the paper's literal d_max/d ratio:
	// near = 40/10 = 4, far = 40/40 = 1.
	lat := uniformMatrix(6, 10)
	lat[0*6+2], lat[2*6+0] = 40, 40
	o := ratingFixture(t, 0, 1, lat)
	o.cfg.RawProximity = true
	infos := o.RateNeighbors(0, nil)
	var near, far RatingInfo
	for _, in := range infos {
		if in.Neighbor == 1 {
			near = in
		} else {
			far = in
		}
	}
	if math.Abs(near.Score-4.0) > 1e-12 {
		t.Fatalf("near score = %v, want 4", near.Score)
	}
	if math.Abs(far.Score-1.0) > 1e-12 {
		t.Fatalf("far score = %v, want 1", far.Score)
	}
}

func TestRatingCombinedWeights(t *testing.T) {
	lat := uniformMatrix(6, 10)
	lat[0*6+2], lat[2*6+0] = 40, 40
	o := ratingFixture(t, 1, 1, lat)
	infos := o.RateNeighbors(0, nil)
	for _, in := range infos {
		want := in.Connectivity + in.Proximity
		if math.Abs(in.Score-want) > 1e-12 {
			t.Fatalf("score %v != connectivity %v + proximity %v", in.Score, in.Connectivity, in.Proximity)
		}
	}
	// Node 1 is nearer and equally connective: it must outrank node 2.
	if o.Rating(0, 1) <= o.Rating(0, 2) {
		t.Fatalf("near neighbor should outrank far one: %v vs %v", o.Rating(0, 1), o.Rating(0, 2))
	}
}

func TestRatingSharedNeighborNotUnique(t *testing.T) {
	o := ratingFixture(t, 1, 0, uniformMatrix(6, 10))
	infos := o.RateNeighbors(0, nil)
	// Node 4 is reachable through both neighbors, so it never counts
	// as unique; each neighbor contributes exactly one unique node.
	totalUnique := 0
	for _, in := range infos {
		totalUnique += in.Unique
	}
	if totalUnique != 2 {
		t.Fatalf("total unique = %d, want 2 (nodes 3 and 5)", totalUnique)
	}
}

func TestRatingOfNonNeighborIsNaN(t *testing.T) {
	o := ratingFixture(t, 1, 1, uniformMatrix(6, 10))
	if !math.IsNaN(o.Rating(0, 5)) {
		t.Fatal("rating of non-neighbor should be NaN")
	}
}

func TestRateNeighborsEmptyNode(t *testing.T) {
	o := ratingFixture(t, 1, 1, uniformMatrix(6, 10))
	o.Graph().IsolateNode(3)
	if infos := o.RateNeighbors(3, nil); len(infos) != 0 {
		t.Fatalf("isolated node rated %d neighbors", len(infos))
	}
}

func TestPruneDropsLowestRated(t *testing.T) {
	// u=0 has 3 neighbors; capacity 2 forces one drop. Make neighbor 3
	// worthless: no unique contribution and maximal latency.
	n := 7
	lat := uniformMatrix(n, 10)
	lat[0*n+3], lat[3*n+0] = 90, 90
	m, err := netmodel.NewMatrix(n, lat)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alpha: 1, Beta: 1, Net: m, Seed: 1, WalkLength: 1, CandidateSetSize: 1}
	cfg.Capacities = []int{2, 9, 9, 9, 9, 9, 9}
	o, err := Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := o.Graph()
	for u := 0; u < n; u++ {
		g.IsolateNode(u)
	}
	// Wire: 0-1 (unique reach 4), 0-2 (unique reach 5), 0-3 (reaches 4
	// and 5, both shared; higher latency).
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 5)
	g.AddEdge(3, 4)
	g.AddEdge(3, 5)
	dropped := o.pruneToCapacity(0, nil)
	if len(dropped) != 1 || dropped[0] != 3 {
		t.Fatalf("dropped %v, want [3]", dropped)
	}
	if g.Degree(0) != 2 {
		t.Fatalf("degree after prune = %d", g.Degree(0))
	}
}

func TestConnectRespectsAliveness(t *testing.T) {
	o := buildSmall(t, 50, 5)
	o.FailNodes([]int{10})
	if o.connect(10, 11) {
		t.Fatal("connecting a dead node should fail")
	}
	if o.connect(11, 11) {
		t.Fatal("self-connection should fail")
	}
}

func TestFailNodes(t *testing.T) {
	o := buildSmall(t, 300, 9)
	before := o.LiveCount()
	o.FailNodes([]int{1, 2, 3})
	if o.LiveCount() != before-3 {
		t.Fatalf("live count = %d, want %d", o.LiveCount(), before-3)
	}
	for _, u := range []int{1, 2, 3} {
		if o.Alive(u) || o.Graph().Degree(u) != 0 {
			t.Fatalf("node %d should be dead and isolated", u)
		}
	}
	// Double-kill and out-of-range are no-ops.
	o.FailNodes([]int{1, -5, 99999})
	if o.LiveCount() != before-3 {
		t.Fatal("repeated/invalid failures changed live count")
	}
}

func TestFailTopDegreeTargetsHubs(t *testing.T) {
	o := buildSmall(t, 300, 11)
	// Record the degrees before failing.
	degBefore := make([]int, o.N())
	maxDeg, argMax := 0, 0
	for u := 0; u < o.N(); u++ {
		degBefore[u] = o.Graph().Degree(u)
		if degBefore[u] > maxDeg {
			maxDeg, argMax = degBefore[u], u
		}
	}
	ids := o.FailTopDegree(10)
	if len(ids) != 10 {
		t.Fatalf("failed %d nodes, want 10", len(ids))
	}
	if ids[0] != argMax && degBefore[ids[0]] != maxDeg {
		t.Fatalf("first victim %d had degree %d, max was %d", ids[0], degBefore[ids[0]], maxDeg)
	}
	minVictimDeg := degBefore[ids[0]]
	for _, id := range ids {
		if o.Alive(id) {
			t.Fatalf("victim %d still alive", id)
		}
		if degBefore[id] < minVictimDeg {
			minVictimDeg = degBefore[id]
		}
	}
	// No survivor may have had a strictly higher pre-failure degree
	// than the weakest victim.
	for u := 0; u < o.N(); u++ {
		if o.Alive(u) && degBefore[u] > minVictimDeg {
			t.Fatalf("survivor %d had degree %d > weakest victim %d", u, degBefore[u], minVictimDeg)
		}
	}
}

func TestFailRandom(t *testing.T) {
	o := buildSmall(t, 200, 13)
	ids := o.FailRandom(50)
	if len(ids) != 50 || o.LiveCount() != 150 {
		t.Fatalf("failed %d, live %d", len(ids), o.LiveCount())
	}
}

func TestOverlayConnectedAfterTargetedFailuresPlusRecovery(t *testing.T) {
	o := buildSmall(t, 400, 17)
	o.FailTopDegree(40) // 10%
	o.Recover(2)
	sub, _ := o.FreezeAlive()
	if !sub.IsConnected() {
		t.Fatal("overlay should reconnect after recovery rounds")
	}
}

// Paper claim (§3.4/§7): the Makalu topology survives failing 30% of
// the highest-degree nodes with the remaining nodes still connected,
// even before recovery. With mean degree ~11 the survivors form one
// component (tiny stragglers allowed none here).
func TestConnectivitySurvivesTargetedFailureSnapshot(t *testing.T) {
	o := buildSmall(t, 500, 21)
	o.FailTopDegree(150) // 30%
	sub, _ := o.FreezeAlive()
	_, sizes := sub.Components()
	giant := 0
	for _, s := range sizes {
		if s > giant {
			giant = s
		}
	}
	if float64(giant) < 0.97*float64(sub.N()) {
		t.Fatalf("giant component %d of %d after 30%% targeted failure", giant, sub.N())
	}
}

func TestSetCapacityPrunes(t *testing.T) {
	o := buildSmall(t, 100, 23)
	u := 0
	if o.Graph().Degree(u) == 0 {
		t.Skip("node 0 has no neighbors in this seed")
	}
	o.SetCapacity(u, 1)
	if o.Graph().Degree(u) > 1 {
		t.Fatalf("degree %d after capacity cut to 1", o.Graph().Degree(u))
	}
	o.SetCapacity(u, -4)
	if o.Graph().Degree(u) != 0 {
		t.Fatal("negative capacity should clamp to 0 and isolate")
	}
}

func TestAddNodeJoins(t *testing.T) {
	net := netmodel.NewEuclidean(120, 1000, 25) // headroom for growth
	o, err := Build(100, DefaultConfig(net, 25))
	if err != nil {
		t.Fatal(err)
	}
	id := o.AddNode(8)
	if id != 100 {
		t.Fatalf("new node id = %d, want 100", id)
	}
	if o.N() != 101 || !o.Alive(id) {
		t.Fatal("overlay did not grow")
	}
	if o.Graph().Degree(id) == 0 {
		t.Fatal("new node should have connected")
	}
	if o.Graph().Degree(id) > 8 {
		t.Fatalf("new node degree %d exceeds capacity", o.Graph().Degree(id))
	}
}

func TestFreezeAliveDropsDead(t *testing.T) {
	o := buildSmall(t, 50, 27)
	o.FailNodes([]int{0, 1})
	sub, order := o.FreezeAlive()
	if sub.N() != 48 || len(order) != 48 {
		t.Fatalf("alive subgraph has %d nodes", sub.N())
	}
	for _, old := range order {
		if !o.Alive(int(old)) {
			t.Fatal("dead node leaked into alive subgraph")
		}
	}
}

func TestProtocolViewsBuild(t *testing.T) {
	n := 300
	net := netmodel.NewEuclidean(n, 1000, 31)
	cfg := DefaultConfig(net, 31)
	cfg.Views = ProtocolViews
	o, err := Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Freeze().IsConnected() {
		t.Fatal("protocol-view overlay should still be connected")
	}
	for u := 0; u < n; u++ {
		if o.Graph().Degree(u) > o.Capacity(u) {
			t.Fatalf("node %d over capacity", u)
		}
	}
}

// The central structural claim (§3.2): Makalu overlays are compact.
// At 500 nodes with mean degree ~11, diameter should be tiny.
func TestOverlayCompactness(t *testing.T) {
	o := buildSmall(t, 500, 33)
	d := o.Freeze().HopDiameter()
	if d > 6 {
		t.Fatalf("diameter %d too large for a 500-node Makalu overlay", d)
	}
}

// Proximity bias: with beta > 0 the overlay should prefer short links.
// Compare mean edge latency against a beta = 0 build.
func TestProximityBiasLowersEdgeLatency(t *testing.T) {
	n := 400
	net := netmodel.NewEuclidean(n, 1000, 35)
	balanced := DefaultConfig(net, 35)
	connOnly := DefaultConfig(net, 35)
	connOnly.Beta = 0
	a, err := Build(n, balanced)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(n, connOnly)
	if err != nil {
		t.Fatal(err)
	}
	meanEdge := func(o *Overlay) float64 {
		f := o.Freeze()
		sum, cnt := 0.0, 0
		for u := 0; u < f.N(); u++ {
			for i := f.Offsets[u]; i < f.Offsets[u+1]; i++ {
				sum += f.Weights[i]
				cnt++
			}
		}
		return sum / float64(cnt)
	}
	la, lb := meanEdge(a), meanEdge(b)
	if la >= lb {
		t.Fatalf("balanced build mean edge latency %v should beat connectivity-only %v", la, lb)
	}
}

func TestRandomWalkCandidatesExcludesSelfAndNeighbors(t *testing.T) {
	o := buildSmall(t, 200, 37)
	u := 5
	cands := o.randomWalkCandidates(u, 10, nil)
	for _, c := range cands {
		if int(c) == u {
			t.Fatal("walk returned the walker itself")
		}
		if o.Graph().HasEdge(u, int(c)) {
			t.Fatal("walk returned an existing neighbor")
		}
	}
	if len(cands) > o.cfg.CandidateSetSize {
		t.Fatalf("gathered %d candidates, cap %d", len(cands), o.cfg.CandidateSetSize)
	}
}
