// Package core implements Makalu, the paper's contribution: a
// distributed overlay-construction algorithm that uses only local
// information to approximate an expander graph. Each node rates its
// neighbors with
//
//	F(u,v) = alpha * |R(u,v)| / |∂Γ(u)|  +  beta * d_max / d(u,v)
//
// where R(u,v) is the set of nodes reachable from u only through v
// (v's unique contribution), ∂Γ(u) is the node boundary of u's
// neighborhood, d(u,v) the link latency and d_max the largest latency
// among u's neighbors. Nodes accept incoming connections freely and,
// when over their capacity, repeatedly disconnect the lowest-rated
// neighbor (§2 of the paper).
package core

import (
	"fmt"
	"math/rand"

	"makalu/internal/graph"
	"makalu/internal/netmodel"
)

// ViewMode selects where a node's knowledge of its neighbors'
// neighborhoods comes from when computing ratings.
type ViewMode int

const (
	// OracleViews reads neighbors' current adjacency directly. This
	// matches the paper's simulator, where routing-table exchanges are
	// assumed up to date.
	OracleViews ViewMode = iota
	// ProtocolViews uses the neighbor lists as last exchanged: on
	// connection establishment and on every management round. Views in
	// between can be stale, bounding the damage of gossip lag.
	ProtocolViews
)

// Config parameterizes overlay construction. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// Alpha and Beta weight connectivity and proximity in the rating
	// function. The paper sets both to 1.
	Alpha, Beta float64
	// Capacities holds each node's maximum connection count; length
	// must equal the node count passed to Build. Nil means
	// topology.DefaultCapacities-style uniform [8,14] drawn from Seed.
	Capacities []int
	// Net supplies pairwise latencies. Required.
	Net netmodel.Model
	// WalkLength is the length of the random walk used to gather
	// candidate peers on join (paper §2.2).
	WalkLength int
	// CandidateSetSize is how many distinct candidates a joining or
	// under-capacity node gathers before dialing.
	CandidateSetSize int
	// ManageRounds is the number of post-join management rounds in
	// which every node re-evaluates its neighbors (paper: the repeat
	// loop of Manage()).
	ManageRounds int
	// ProbesPerRound is how many random peers each node dials per
	// management round even when at capacity. The paper's Manage()
	// loop runs in a network with continuous incoming dials, and it is
	// those dials that let the rating function keep improving the
	// neighbor set (accept, rate, drop the worst); a static build has
	// no such traffic, so without probes a weak cut formed early locks
	// in forever. 0 disables probing.
	ProbesPerRound int
	// Views selects oracle or protocol neighbor views.
	Views ViewMode
	// RawProximity switches the proximity term to the paper's literal
	// d_max/d(u,v) ratio, which is unbounded below by 1 and above by
	// nothing. The default normalized form d_min/d(u,v) ∈ (0, 1] puts
	// proximity on the same scale as the connectivity term — which is
	// what "equal weight to both" (§2.1) requires for the weights to
	// mean anything, and what reproduces the paper's measured
	// connectivity and duplicate figures (see DESIGN.md).
	RawProximity bool
	// FullRecomputePrune disables the incremental rating engine inside
	// the pruning loop and re-rates every neighbor from scratch after
	// each removal, as the paper describes Manage() literally. The
	// incremental default produces bit-identical edge sets (asserted by
	// the golden determinism tests) in O(deg² + k·deg) instead of
	// O(k·deg²) for k removals; this flag keeps the slow path alive as
	// the test oracle and for benchmarking the gap.
	FullRecomputePrune bool
	// Workers bounds the worker pool used by the parallel read-only
	// phases (the ManageRound view-exchange sweep, RateAll, and the
	// wave builder's walk and prune-decision passes). 0 uses one
	// worker per CPU; 1 forces fully sequential execution. Results are
	// independent of the worker count — phases shard per node with a
	// deterministic merge order — so this only trades wall clock.
	Workers int
	// JoinWave switches construction to batched join waves: up to
	// JoinWave nodes are admitted per epoch, their candidate walks run
	// concurrently against a snapshot of the wave-start overlay with
	// per-joiner seeds, accepted links commit in a fixed merge order,
	// and one sharded management pass rebalances the wave-affected
	// nodes. 0 or 1 keeps the sequential one-node-at-a-time build
	// (the golden oracle the wave tests compare against). Wave builds
	// are deterministic for a fixed seed at any worker count, but they
	// are a different (batched) protocol schedule, so their edge sets
	// differ from the sequential build's. See wave.go and DESIGN.md.
	JoinWave int
	// Obs, when non-nil, records construction metrics (join counter,
	// wave and management-pass durations, build throughput). Nil costs
	// one predictable branch per instrumentation point.
	Obs *BuildObs
	// Seed drives all randomness in construction.
	Seed int64
	// Tracer, when non-nil, observes every protocol action the
	// overlay takes (dials, disconnects, view exchanges, walk probes)
	// so callers can account maintenance traffic. See sim.CostModel.
	Tracer Tracer
}

// Tracer observes overlay protocol actions for traffic accounting.
// Implementations must be cheap; they run inline with construction.
type Tracer interface {
	// Connect fires when u and v complete a dial+accept handshake.
	Connect(u, v int)
	// Disconnect fires when u prunes its link to v (one notification).
	Disconnect(u, v int)
	// ViewExchange fires when u pushes its neighbor list (entries
	// long) to neighbor v.
	ViewExchange(u, v, entries int)
	// WalkProbe fires for each hop of a candidate-discovery walk.
	WalkProbe(from, to int)
}

// DefaultConfig returns the configuration used for the paper's
// experiments: alpha = beta = 1, capacities uniform in [8,14]
// (mean ≈ 11), modest candidate sets and four management rounds.
func DefaultConfig(net netmodel.Model, seed int64) Config {
	return Config{
		Alpha:            1,
		Beta:             1,
		Net:              net,
		WalkLength:       24,
		CandidateSetSize: 12,
		ManageRounds:     4,
		ProbesPerRound:   1,
		Views:            OracleViews,
		Seed:             seed,
	}
}

// Overlay is a Makalu overlay under simulation. It tracks the live
// topology, per-node capacities and liveness, and exposes the rating
// function for analysis.
type Overlay struct {
	cfg   Config
	g     *graph.Mutable
	caps  []int
	alive []bool
	nLive int
	rng   *rand.Rand

	// views[u] is the neighbor list of u as known to its peers in
	// ProtocolViews mode; nil entries mean "never exchanged".
	views [][]int32

	// lat is the resolved latency function: the network model's
	// Latency method devirtualized once at Build time (with a direct
	// fast path for the Euclidean plane, the hot model). Every rating
	// computation routes through it instead of the Model interface.
	lat func(u, v int) float64

	scratch      ratingScratch
	scratchPool  []*ratingScratch // per-worker scratches for parallel phases
	candBuf      []int32          // reusable candidate buffer for walks
	fallbackBuf  []int32          // reusable boundary-fallback buffer for walks
	leaveBuf     []int32          // reusable neighbor snapshot for Leave
	droppedBuf   []int32          // reusable dropped-neighbor buffer for internal prunes
	openBuf      []int32          // reusable open-slot list for pairOpenSlots
	permBuf      []int            // reusable permutation for ManageRound ordering
	compBuf      []int32          // reusable component labels for connectivity checks
	queueBuf     []int32          // reusable BFS queue for aliveComponents
	seenBuf      []int32          // generation-stamped visited marks for fragmentLinked
	seenGen      int32
	fragQueueBuf []int32 // reusable BFS queue for fragmentLinked

	wave *waveState // batched join-wave machinery (nil until first wave build)
}

// resolveLatency devirtualizes the network model's Latency method.
// The Euclidean plane — the paper's primary model and the one every
// scale run uses — gets a direct closure over the packed coordinate
// array; anything else pays the interface call it always paid.
func resolveLatency(m netmodel.Model) func(u, v int) float64 {
	if e, ok := m.(*netmodel.Euclidean); ok {
		return e.Latency
	}
	return m.Latency
}

// perm fills the overlay's reusable permutation buffer with a random
// permutation of [0, n), drawing from the rng exactly as rand.Perm
// does — same draws, same output — without the per-round allocation.
func (o *Overlay) perm(n int) []int {
	if cap(o.permBuf) < n {
		o.permBuf = make([]int, n)
	}
	m := o.permBuf[:n]
	if n > 0 {
		m[0] = 0
	}
	for i := 1; i < n; i++ {
		j := o.rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	return m
}

// Build constructs a Makalu overlay of n nodes: nodes join one at a
// time through a random already-joined seed peer, then ManageRounds
// rounds of the management loop run over all nodes in random order.
func Build(n int, cfg Config) (*Overlay, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("core: Config.Net is required")
	}
	if cfg.Net.N() < n {
		return nil, fmt.Errorf("core: network model covers %d nodes, need %d", cfg.Net.N(), n)
	}
	if cfg.Capacities != nil && len(cfg.Capacities) != n {
		return nil, fmt.Errorf("core: got %d capacities for %d nodes", len(cfg.Capacities), n)
	}
	if cfg.Alpha < 0 || cfg.Beta < 0 || cfg.Alpha+cfg.Beta == 0 {
		return nil, fmt.Errorf("core: rating weights must be non-negative and not both zero")
	}
	if cfg.WalkLength <= 0 {
		cfg.WalkLength = 24
	}
	if cfg.CandidateSetSize <= 0 {
		cfg.CandidateSetSize = 12
	}
	o := &Overlay{
		cfg:   cfg,
		alive: make([]bool, n),
		nLive: n,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		views: make([][]int32, n),
		lat:   resolveLatency(cfg.Net),
	}
	o.scratch.init(n)
	if cfg.Capacities != nil {
		o.caps = append([]int(nil), cfg.Capacities...)
	} else {
		capRng := rand.New(rand.NewSource(cfg.Seed + 1))
		o.caps = make([]int, n)
		for i := range o.caps {
			o.caps[i] = 8 + capRng.Intn(7) // uniform [8,14], mean 11
		}
	}
	// Adjacency rows live in one contiguous slab sized from the known
	// capacities (plus headroom for provisional accepts and wave
	// bursts), so a build does not grow a million small slices and the
	// rating sweeps read cache-dense rows. A node pushed past its
	// reserved row by forced edges simply reallocates out of the slab.
	// Wave builds stack up to waveAcceptSlack provisional links per
	// node between drains, so their rows reserve that much.
	headroom := 4
	if cfg.JoinWave > 1 && headroom < waveAcceptSlack+1 {
		headroom = waveAcceptSlack + 1
	}
	o.g = graph.NewMutableSlab(n, func(u int) int { return o.caps[u] + headroom })
	for i := range o.alive {
		o.alive[i] = true
	}
	if cfg.Views == ProtocolViews {
		// Back every node's exchanged view with a slot in one flat
		// arena instead of n little slices. A view never outgrows
		// capacity+1 in the sequential build (a provisional accept
		// holds at most one excess link when refreshView runs) or
		// capacity+waveAcceptSlack in a wave build, so sizing rows
		// with the same headroom as the adjacency slab means the
		// append in refreshView never reallocates; if a capacity is
		// raised later the view falls back to its own allocation.
		vh := 2
		if cfg.JoinWave > 1 {
			vh = headroom
		}
		total := 0
		for _, c := range o.caps {
			total += c + vh
		}
		arena := make([]int32, total)
		off := 0
		for i, c := range o.caps {
			o.views[i] = arena[off : off : off+c+vh]
			off += c + vh
		}
	}

	if cfg.JoinWave > 1 {
		// Batched wave construction: K joiners admitted per epoch with
		// concurrent candidate walks, batched link commits and sharded
		// management passes. See wave.go.
		o.buildWaves(n)
		return o, nil
	}

	buildStart := buildClock(cfg.Obs)

	// Join phase: nodes join one at a time, in random order so physical
	// locality does not correlate with join time. The permutation fills
	// the reusable permBuf instead of allocating a fresh O(n) slice per
	// build, but must reproduce rand.Perm's draws bit for bit — which
	// include one Intn(1) burned at i=0 (kept in math/rand for stream
	// compatibility; the perm helper itself skips it).
	if n > 0 {
		o.rng.Intn(1)
	}
	order := o.perm(n)
	joined := make([]int32, 0, n)
	for _, u := range order {
		o.join(u, joined)
		joined = append(joined, int32(u))
		cfg.Obs.join()
	}
	// Management phase.
	for r := 0; r < cfg.ManageRounds; r++ {
		ms := buildClock(cfg.Obs)
		o.ManageRound()
		cfg.Obs.managePass(ms)
	}
	// The paper's Manage() loop runs until disconnect; emulate the
	// steady state by letting stray fragments (usually none, at most a
	// node pair that formed in the last round) bootstrap back in.
	o.RejoinFragments(3)
	cfg.Obs.buildDone(buildStart, n)
	return o, nil
}

// N returns the total node count (alive and failed).
func (o *Overlay) N() int { return o.g.N() }

// LiveCount returns the number of alive nodes.
func (o *Overlay) LiveCount() int { return o.nLive }

// Alive reports whether node u is alive.
func (o *Overlay) Alive(u int) bool { return o.alive[u] }

// Capacity returns node u's connection capacity.
func (o *Overlay) Capacity(u int) int { return o.caps[u] }

// Graph returns the live mutable topology. Callers must not mutate it.
func (o *Overlay) Graph() *graph.Mutable { return o.g }

// Freeze returns the overlay as a frozen graph with edge latencies
// from the network model. Failed nodes appear as isolated vertices;
// use FreezeAlive to drop them.
func (o *Overlay) Freeze() *graph.Graph {
	return o.g.Freeze(o.lat)
}

// FreezeAlive returns the frozen subgraph induced on alive nodes plus
// the mapping from new ids to original ids.
func (o *Overlay) FreezeAlive() (*graph.Graph, []int32) {
	return o.Freeze().InducedSubgraph(o.alive)
}

// MeanDegree returns the mean degree over alive nodes.
func (o *Overlay) MeanDegree() float64 {
	if o.nLive == 0 {
		return 0
	}
	sum := 0
	for u := 0; u < o.g.N(); u++ {
		if o.alive[u] {
			sum += o.g.Degree(u)
		}
	}
	return float64(sum) / float64(o.nLive)
}
