package core

import (
	"time"

	"makalu/internal/obs"
)

// BuildObs threads the observability layer through overlay
// construction: how many nodes have joined, how long each join wave
// and each management pass took, and the build's end-to-end node
// throughput. All fields are optional; the instruments are obs's
// nil-safe types and a nil *BuildObs is itself a no-op receiver, so an
// uninstrumented build pays one predictable branch per hook (pinned by
// the AllocsPerRun test alongside the other nil-receiver guards).
type BuildObs struct {
	// Joins counts admitted nodes (one increment per join, in both the
	// sequential and the wave build).
	Joins *obs.Counter
	// WaveNs records the wall-clock duration of each join wave in
	// nanoseconds (wave builds only; the sequential build has no wave
	// boundary to time).
	WaveNs *obs.Histogram
	// ManagePassNs records the duration of each management pass in
	// nanoseconds: ManageRound calls during a sequential build, the
	// sharded wave management passes during a wave build.
	ManagePassNs *obs.Histogram
	// NodesPerSec is set once at the end of Build to the overall
	// construction throughput (nodes joined per wall-clock second).
	NodesPerSec *obs.Gauge
}

// buildClock returns the wall-clock start of a timed section, or the
// zero time when nothing is instrumented — the time.Now call itself is
// skipped for uninstrumented builds.
func buildClock(b *BuildObs) time.Time {
	if b == nil {
		return time.Time{}
	}
	return time.Now()
}

// join records one admitted node.
func (b *BuildObs) join() {
	if b == nil {
		return
	}
	b.Joins.Inc()
}

// wave records a completed join wave started at the given clock.
func (b *BuildObs) wave(start time.Time) {
	if b == nil {
		return
	}
	b.WaveNs.Since(start)
}

// managePass records a completed management pass started at the given
// clock.
func (b *BuildObs) managePass(start time.Time) {
	if b == nil {
		return
	}
	b.ManagePassNs.Since(start)
}

// buildDone records the end-to-end throughput of a build of n nodes
// started at the given clock.
func (b *BuildObs) buildDone(start time.Time, n int) {
	if b == nil {
		return
	}
	if el := time.Since(start).Seconds(); el > 0 {
		b.NodesPerSec.Set(int64(float64(n) / el))
	}
}
