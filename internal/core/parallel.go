package core

import (
	"runtime"
	"sync"
)

// This file implements the overlay's parallel read-only phases. The
// Makalu rules are purely local — a node's rating depends only on its
// neighbors' views — so the snapshot sweeps (refreshView) and batch
// rating passes shard perfectly across workers. Mutating protocol
// steps (join, connect, prune) stay on the single construction
// goroutine; workers only ever write state indexed by their own node
// shard, which keeps fixed-seed runs bit-identical regardless of
// worker count or scheduling.

// workerCount resolves Config.Workers: 0 means one worker per CPU,
// anything else is taken literally (1 = fully sequential).
func (o *Overlay) workerCount() int {
	if w := o.cfg.Workers; w > 0 {
		return w
	}
	return runtime.NumCPU()
}

// scratchFor returns worker i's private rating scratch. Worker 0 uses
// the overlay's own scratch; higher workers get pool entries created
// (and grown) on demand.
func (o *Overlay) scratchFor(i int) *ratingScratch {
	if i == 0 {
		return &o.scratch
	}
	for len(o.scratchPool) < i {
		s := &ratingScratch{}
		s.init(len(o.scratch.cells))
		o.scratchPool = append(o.scratchPool, s)
	}
	s := o.scratchPool[i-1]
	s.grow(len(o.scratch.cells))
	return s
}

// forEachNode runs fn(s, u) for every node u in [0, N), sharding
// contiguous node ranges across the worker pool. Each worker owns a
// private scratch; fn must only write state indexed by u (views[u],
// out[u], ...), which makes the result independent of scheduling —
// the deterministic merge order the golden tests assert. With one
// worker (or tiny overlays) it degenerates to a plain loop.
func (o *Overlay) forEachNode(fn func(s *ratingScratch, u int)) {
	n := o.g.N()
	workers := o.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		s := o.scratchFor(0)
		for u := 0; u < n; u++ {
			fn(s, u)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s *ratingScratch, lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				fn(s, u)
			}
		}(o.scratchFor(i), lo, hi)
	}
	wg.Wait()
}

// RateAll rates every alive node's neighbors in one batched read-only
// pass, sharded across the worker pool. out[u] holds u's RatingInfo
// slice in adjacency order (empty for dead or isolated nodes); pass a
// previous result back in to reuse its per-node buffers. The output is
// identical to calling RateNeighbors node by node — workers write only
// their own shard's rows, so worker count never changes the result.
func (o *Overlay) RateAll(out [][]RatingInfo) [][]RatingInfo {
	n := o.g.N()
	if cap(out) < n {
		grown := make([][]RatingInfo, n)
		copy(grown, out)
		out = grown
	}
	out = out[:n]
	if w := o.workerCount(); w <= 1 || n <= 1 {
		// Sequential fast path: no closure, no goroutines — with warm
		// per-node buffers a full sweep allocates nothing (pinned by
		// the AllocsPerRun tests).
		s := o.scratchFor(0)
		for u := 0; u < n; u++ {
			if !o.alive[u] {
				out[u] = out[u][:0]
				continue
			}
			out[u] = o.rateNeighborsOn(s, u, out[u])
		}
		return out
	}
	o.forEachNode(func(s *ratingScratch, u int) {
		if !o.alive[u] {
			out[u] = out[u][:0]
			return
		}
		out[u] = o.rateNeighborsOn(s, u, out[u])
	})
	return out
}

// refreshAllViews re-snapshots every alive node's exchanged view (the
// §2.2 routing-table exchange that opens a management round), sharded
// across workers: each refreshView(u) writes only views[u].
func (o *Overlay) refreshAllViews() {
	if o.cfg.Views != ProtocolViews {
		return
	}
	o.forEachNode(func(_ *ratingScratch, u int) {
		if o.alive[u] {
			o.refreshView(u)
		}
	})
}
