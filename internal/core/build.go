package core

import (
	"makalu/internal/graph"
)

// graphUnreachable aliases the graph package's unreached marker.
const graphUnreachable = graph.Unreachable

// This file implements the connection-management protocol of §2.2:
// joining through a seeded random walk, accepting connections, and the
// Manage() loop that prunes over-capacity neighbor sets with the
// rating function.

// randomWalkCandidates performs a random walk of cfg.WalkLength steps
// starting at seed over alive nodes and collects up to
// cfg.CandidateSetSize distinct visited nodes (excluding u and u's
// current neighbors). A walk that hits a dead end (isolated node)
// restarts from the seed.
//
// Two details keep the candidate set expansion-friendly, serving the
// algorithm's stated objective of maximizing the expansion from each
// node's neighborhood (§2.1):
//
//   - samples are spaced two walk steps apart, so consecutive
//     candidates are not overlay-adjacent (connecting to adjacent
//     walk nodes would wire triangles into u's neighborhood);
//   - nodes already visible in u's node boundary ∂Γ(u) — knowledge u
//     has locally from its neighbors' exchanged views — are only
//     accepted as trailing fallbacks, preferring candidates that add
//     genuinely new reach.
func (o *Overlay) randomWalkCandidates(u, seed int, out []int32) []int32 {
	out = out[:0]
	if !o.alive[seed] {
		return out
	}
	// Membership in out/fallback is tracked with an epoch-stamped mark
	// per node instead of linear scans, so accepting a candidate is
	// O(1) rather than O(candidates collected so far). The boundary
	// membership test ("is x already visible within two hops of u?")
	// is likewise precomputed once into the stamp array — one O(deg²)
	// sweep for the whole walk instead of one per candidate. Γ(u) does
	// not change while candidates are gathered, so the set stays valid.
	out, o.fallbackBuf = o.walkCandidatesOn(&o.scratch, o.rng, u, seed, out, o.fallbackBuf[:0])
	return out
}

// walkCandidatesOn is randomWalkCandidates on an explicit scratch, rng
// and fallback buffer, so the wave builder's concurrent join walks can
// gather candidates without sharing state: the walk only reads the
// overlay (adjacency, liveness, views) and writes its own scratch. The
// rng is either the overlay's *rand.Rand (sequential trace) or a
// per-slot waveRng stream (wave builder).
func (o *Overlay) walkCandidatesOn(s *ratingScratch, rng intner, u, seed int, out, fallback []int32) (cands, fb []int32) {
	if rows, vol := o.gatherViews(s, o.g.Neighbors(u)); vol <= whFallback {
		// Small boundary: run the membership bookkeeping in the
		// L1-resident walk table (identical output, see ratehash.go).
		return o.walkCandidatesHash(s, rng, u, rows, seed, out, fallback)
	}
	s.markEpoch++
	mep := s.markEpoch
	s.epoch++
	bep := s.epoch
	cells := s.cells
	for _, w := range o.g.Neighbors(u) {
		for _, y := range o.neighborView(int(w)) {
			cells[y].stamp = bep
		}
	}
	maybeAdd := func(x int) {
		if x == u || cells[x].mark == mep || o.g.HasEdge(u, x) || !o.alive[x] {
			return
		}
		cells[x].mark = mep
		if cells[x].stamp == bep { // x ∈ Γ(u) ∪ ∂Γ(u): fallback only
			fallback = append(fallback, int32(x))
			return
		}
		out = append(out, int32(x))
	}
	cur := seed
	maybeAdd(cur)
	for step := 0; step < o.cfg.WalkLength && len(out) < o.cfg.CandidateSetSize; step++ {
		nb := o.g.Neighbors(cur)
		// Walk only over alive neighbors.
		next := -1
		for tries := 0; tries < 4 && len(nb) > 0; tries++ {
			cand := int(nb[rng.Intn(len(nb))])
			if o.alive[cand] {
				next = cand
				break
			}
		}
		if next == -1 {
			next = seed // dead end: restart from the seed peer
			if o.g.Degree(next) == 0 {
				break
			}
		}
		if t := o.cfg.Tracer; t != nil {
			t.WalkProbe(cur, next)
		}
		cur = next
		if step%2 == 1 { // sample every other step: non-adjacent candidates
			maybeAdd(cur)
		}
	}
	// Top up with boundary nodes when fresh reach was scarce.
	for _, f := range fallback {
		if len(out) >= o.cfg.CandidateSetSize {
			break
		}
		out = append(out, f)
	}
	return out, fallback
}

// connect establishes the undirected connection (u, v) and runs the
// over-capacity pruning on both endpoints, mirroring the paper's
// provisional-accept rule: the new edge is added unconditionally and
// each side keeps its best-rated neighbors. It reports whether the
// edge survived pruning on both sides.
func (o *Overlay) connect(u, v int) bool {
	if u == v || !o.alive[u] || !o.alive[v] {
		return false
	}
	if !o.g.AddEdge(u, v) {
		return false
	}
	if t := o.cfg.Tracer; t != nil {
		t.Connect(u, v)
		// Connection setup exchanges routing tables both ways (§4.6).
		t.ViewExchange(u, v, o.g.Degree(u))
		t.ViewExchange(v, u, o.g.Degree(v))
	}
	o.refreshView(u)
	o.refreshView(v)
	o.pruneDiscard(u)
	if o.g.HasEdge(u, v) {
		o.pruneDiscard(v)
	}
	return o.g.HasEdge(u, v)
}

// pruneDiscard prunes u to capacity, reusing one overlay-owned buffer
// for the dropped list the caller does not want. Every internal prune
// (connect, ManageRound, SetCapacity) routes through here so the hot
// accept-then-prune path allocates nothing.
func (o *Overlay) pruneDiscard(u int) {
	o.droppedBuf = o.pruneToCapacity(u, o.droppedBuf[:0])
}

// Connect dials v from u through the paper's provisional-accept rule:
// the edge is added unconditionally and both endpoints prune back to
// capacity, so the link survives only if it outranks each side's worst
// neighbor. It reports whether the edge survived. Exported for tools,
// simulations and benchmarks that drive the protocol from outside.
func (o *Overlay) Connect(u, v int) bool {
	return o.connect(u, v)
}

// join brings node u into the overlay: it picks a random already
// joined seed peer, walks the overlay for candidates, and dials
// candidates until it has filled its capacity or exhausted the set
// (§2.2, "connection phase").
func (o *Overlay) join(u int, joined []int32) {
	if len(joined) == 0 {
		return // first node: nothing to connect to yet
	}
	seed := int(joined[o.rng.Intn(len(joined))])
	o.fillConnections(u, seed)
	// A tiny network may leave u unconnected (e.g. the only candidate
	// rejected us); fall back to a direct link to the seed so the
	// overlay never fragments during bootstrap.
	if o.g.Degree(u) == 0 && o.alive[u] {
		o.connect(u, seed)
	}
}

// fillConnections gathers candidates by random walk from seedPeer and
// dials them until u reaches its capacity.
func (o *Overlay) fillConnections(u, seedPeer int) {
	if o.g.Degree(u) >= o.caps[u] {
		return
	}
	cands := o.randomWalkCandidates(u, seedPeer, o.candBuf)
	o.candBuf = cands
	for _, c := range cands {
		if o.g.Degree(u) >= o.caps[u] {
			break
		}
		o.connect(u, int(c))
	}
}

// ManageRound runs one round of the management loop over every alive
// node in random order: under-capacity nodes search for new peers via
// a random walk from a random neighbor, and every node prunes to
// capacity with the rating function. Exchanged views are refreshed
// first in ProtocolViews mode (the paper's routing-table exchange).
func (o *Overlay) ManageRound() {
	n := o.g.N()
	if t := o.cfg.Tracer; t != nil {
		// Each round starts with the periodic routing-table exchange:
		// every node pushes its neighbor list to each neighbor.
		for u := 0; u < n; u++ {
			if !o.alive[u] {
				continue
			}
			deg := o.g.Degree(u)
			for _, v := range o.g.Neighbors(u) {
				if o.alive[v] {
					t.ViewExchange(u, int(v), deg)
				}
			}
		}
	}
	o.refreshAllViews() // parallel snapshot sweep (ProtocolViews only)
	order := o.perm(n)
	for _, u := range order {
		if !o.alive[u] {
			continue
		}
		// Probe dials: even a node at capacity keeps receiving
		// connection attempts in a live network; each one gives the
		// rating function a chance to upgrade the neighbor set (the
		// candidate sticks only if it outranks the current worst).
		for p := 0; p < o.cfg.ProbesPerRound; p++ {
			if c := o.randomAliveNodeExcept(u); c >= 0 {
				o.connect(u, c)
			}
		}
		if o.g.Degree(u) < o.caps[u] {
			if seed := o.randomAliveNeighbor(u); seed >= 0 {
				o.fillConnections(u, seed)
			}
		}
		if o.g.Degree(u) < o.caps[u] {
			// Walks from the local neighborhood could not fill the
			// node (possibly a fragment island): fall back to the
			// bootstrap path and walk from a random known peer, as
			// real clients re-contact their host cache.
			if seed := o.randomAliveNodeExcept(u); seed >= 0 {
				o.fillConnections(u, seed)
			}
		}
		o.pruneDiscard(u)
	}
	o.pairOpenSlots()
}

// pairOpenSlots links nodes that still have open connection slots to
// one another. Deployed P2P clients advertise slot availability
// (Gnutella's X-Try headers); without this, latency-remote nodes —
// unattractive to every capacity-full peer's proximity term — stay
// under-filled and become the overlay's connectivity bottleneck.
// Mutual under-capacity connections cannot be pruned away at accept
// time, so the pairing sticks.
func (o *Overlay) pairOpenSlots() {
	open := o.openBuf[:0]
	for u := 0; u < o.g.N(); u++ {
		if o.alive[u] && o.g.Degree(u) < o.caps[u] {
			open = append(open, int32(u))
		}
	}
	o.openBuf = open
	if len(open) < 2 {
		return
	}
	o.rng.Shuffle(len(open), func(i, j int) { open[i], open[j] = open[j], open[i] })
	for i, ui := range open {
		u := int(ui)
		if o.g.Degree(u) >= o.caps[u] {
			continue
		}
		for j := i + 1; j < len(open) && o.g.Degree(u) < o.caps[u]; j++ {
			v := int(open[j])
			if o.g.Degree(v) >= o.caps[v] {
				continue
			}
			o.connect(u, v)
		}
	}
}

// randomAliveNeighbor returns a random alive neighbor of u, or -1.
func (o *Overlay) randomAliveNeighbor(u int) int {
	nb := o.g.Neighbors(u)
	if len(nb) == 0 {
		return -1
	}
	start := o.rng.Intn(len(nb))
	for i := 0; i < len(nb); i++ {
		v := int(nb[(start+i)%len(nb)])
		if o.alive[v] {
			return v
		}
	}
	return -1
}

// randomAliveNode returns a uniformly random alive node other than
// none (-1 when the overlay is empty). Rejection sampling is fine
// because experiments keep a majority of nodes alive.
func (o *Overlay) randomAliveNode() int {
	if o.nLive == 0 {
		return -1
	}
	n := o.g.N()
	for {
		u := o.rng.Intn(n)
		if o.alive[u] {
			return u
		}
	}
}

// RejoinFragments detects alive nodes outside the giant component and
// has them re-bootstrap: each fragment member gathers candidates by a
// random walk seeded at a giant-component node (the host-cache path)
// and dials them through the normal accept/prune protocol. Up to
// maxPasses detection passes run; it returns true when the alive
// subgraph ends connected. Real deployments behave the same way —
// a peer whose neighborhood went quiet re-contacts the bootstrap
// server.
func (o *Overlay) RejoinFragments(maxPasses int) bool {
	for pass := 0; pass < maxPasses; pass++ {
		labels, sizes := o.aliveComponents()
		if len(sizes) <= 1 {
			return true
		}
		giant := 0
		for i, s := range sizes {
			if s > sizes[giant] {
				giant = i
			}
		}
		// Gather one giant-component seed for the walks: the
		// lowest-numbered alive node of the giant component.
		seed := -1
		for u := 0; u < o.g.N(); u++ {
			if o.alive[u] && labels[u] == int32(giant) {
				seed = u
				break
			}
		}
		if seed < 0 {
			return false
		}
		for u := 0; u < o.g.N(); u++ {
			if !o.alive[u] || labels[u] == int32(giant) {
				continue
			}
			o.fillConnections(u, seed)
			if !o.fragmentLinked(u, seed) {
				// Last resort within the protocol: dial the seed
				// directly (bootstrap peers accept connections).
				o.connect(u, seed)
			}
		}
	}
	_, sizes := o.aliveComponents()
	return len(sizes) <= 1
}

// aliveComponents labels the connected components of the alive
// subgraph directly on the live adjacency — no CSR freeze, no latency
// weights, no induced-subgraph copy, just one BFS sweep over reusable
// buffers. Components are numbered in order of their lowest-id member
// (the discovery order of an ascending scan), exactly as
// graph.Components numbers the induced alive subgraph, so the giant
// selection and seed choice of RejoinFragments are unchanged from the
// freeze-based implementation it replaces. labels[u] is -1 for dead
// nodes; sizes[c] counts component c's members.
func (o *Overlay) aliveComponents() (labels []int32, sizes []int) {
	n := o.g.N()
	if cap(o.compBuf) < n {
		o.compBuf = make([]int32, n)
	}
	labels = o.compBuf[:n]
	for i := range labels {
		labels[i] = -1
	}
	queue := o.queueBuf[:0]
	for s := 0; s < n; s++ {
		if !o.alive[s] || labels[s] != -1 {
			continue
		}
		id := int32(len(sizes))
		labels[s] = id
		queue = append(queue[:0], int32(s))
		size := 0
		for head := 0; head < len(queue); head++ {
			u := int(queue[head])
			size++
			for _, v := range o.g.Neighbors(u) {
				if o.alive[v] && labels[v] == -1 {
					labels[v] = id
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	o.queueBuf = queue
	return labels, sizes
}

// fragmentLinked reports whether u can now reach target in the live
// overlay: an early-exit BFS over alive nodes on the live adjacency
// (the freeze-based version rebuilt a weighted CSR per call). It runs
// on its own generation-stamped visited buffer — never on compBuf,
// which still holds the component labels RejoinFragments is reading —
// so repeated calls cost O(reached), not O(n) clears.
func (o *Overlay) fragmentLinked(u, target int) bool {
	if !o.alive[u] || !o.alive[target] {
		return false
	}
	if u == target {
		return true
	}
	n := o.g.N()
	if cap(o.seenBuf) < n {
		o.seenBuf = make([]int32, n)
		o.seenGen = 0
	}
	seen := o.seenBuf[:n]
	o.seenGen++
	gen := o.seenGen
	queue := append(o.fragQueueBuf[:0], int32(u))
	seen[u] = gen
	for head := 0; head < len(queue); head++ {
		for _, v := range o.g.Neighbors(int(queue[head])) {
			if int(v) == target {
				o.fragQueueBuf = queue
				return true
			}
			if o.alive[v] && seen[v] != gen {
				seen[v] = gen
				queue = append(queue, v)
			}
		}
	}
	o.fragQueueBuf = queue
	return false
}

// SetCapacity changes node u's capacity at runtime; a reduction
// triggers the paper's pruning mechanism immediately.
func (o *Overlay) SetCapacity(u, capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	o.caps[u] = capacity
	o.pruneDiscard(u)
}

// AddNode grows the overlay by one node with the given capacity and
// immediately joins it through a random alive seed peer. It returns
// the new node's id. The network model passed at Build time must
// cover the new node (its N() bounds how far the overlay can grow).
func (o *Overlay) AddNode(capacity int) int {
	if o.g.N() >= o.cfg.Net.N() {
		panic("core: network model has no headroom for AddNode; build with a larger netmodel")
	}
	u := o.g.AddNode()
	o.caps = append(o.caps, capacity)
	o.alive = append(o.alive, true)
	if o.cfg.Views == ProtocolViews {
		o.views = append(o.views, make([]int32, 0, capacity+2))
	} else {
		o.views = append(o.views, nil)
	}
	o.nLive++
	o.scratch.grow(u + 1)
	if seed := o.randomAliveNodeExcept(u); seed >= 0 {
		o.fillConnections(u, seed)
		if o.g.Degree(u) == 0 {
			o.connect(u, seed)
		}
	}
	return u
}

func (o *Overlay) randomAliveNodeExcept(u int) int {
	if o.nLive <= 1 {
		return -1
	}
	for {
		v := o.randomAliveNode()
		if v != u {
			return v
		}
	}
}
