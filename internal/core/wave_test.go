package core

import (
	"hash/fnv"
	"testing"
	"time"

	"makalu/internal/netmodel"
	"makalu/internal/obs"
)

// buildEdgeHash is the canonical FNV-64a digest of an overlay's edge
// set (each u<v edge as six little-endian bytes), the fingerprint the
// pinned golden hashes below are expressed in.
func buildEdgeHash(o *Overlay) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	g := o.Graph()
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				buf[0] = byte(u)
				buf[1] = byte(u >> 8)
				buf[2] = byte(u >> 16)
				buf[3] = byte(v)
				buf[4] = byte(v >> 8)
				buf[5] = byte(v >> 16)
				h.Write(buf[:6])
			}
		}
	}
	return h.Sum64()
}

func buildWith(t testing.TB, n int, seed int64, views ViewMode, joinWave, workers int) *Overlay {
	t.Helper()
	net := netmodel.NewEuclidean(n, 1000, seed)
	cfg := DefaultConfig(net, seed)
	cfg.Views = views
	cfg.JoinWave = joinWave
	cfg.Workers = workers
	o, err := Build(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestGoldenPinnedBuildHashes pins the sequential build's exact edge
// sets across seeds and view modes. The hashes were captured from the
// build BEFORE this PR's kernel and wave work landed, so they prove
// the L1 hash kernels, the gathered-row sweeps and the permutation
// buffer reuse are bit-identical rewrites — and that JoinWave<=1
// really routes through the untouched sequential path.
func TestGoldenPinnedBuildHashes(t *testing.T) {
	cases := []struct {
		n     int
		seed  int64
		views ViewMode
		want  uint64
	}{
		{500, 1, OracleViews, 0xfd9a77d551ea2479},
		{500, 2, OracleViews, 0x29d7ba772205bcad},
		{500, 1, ProtocolViews, 0xfd9a77d551ea2479},
		{2000, 7, OracleViews, 0x247a4751330d9e8a},
	}
	for _, tc := range cases {
		for _, joinWave := range []int{0, 1} {
			o := buildWith(t, tc.n, tc.seed, tc.views, joinWave, 1)
			if got := buildEdgeHash(o); got != tc.want {
				t.Errorf("n=%d seed=%d views=%d joinWave=%d: edge hash 0x%016x, want pinned 0x%016x",
					tc.n, tc.seed, tc.views, joinWave, got, tc.want)
			}
		}
	}
}

// TestWaveWorkerDeterminism asserts the wave build's central
// scheduling guarantee: the edge set is a pure function of the seed —
// identical at any worker count, because every slot owns its rng
// stream, every worker owns its scratch, and all graph mutation is
// sequential in fixed slot order.
func TestWaveWorkerDeterminism(t *testing.T) {
	const n, k, seed = 4000, 256, 11
	ref := edgeSet(buildWith(t, n, seed, OracleViews, k, 1))
	for _, workers := range []int{2, 3, 7} {
		got := edgeSet(buildWith(t, n, seed, OracleViews, k, workers))
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d edges, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: edge %d = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestWaveInvariants checks that wave builds at every batch size
// satisfy the same structural invariants as the sequential oracle:
// every node within capacity, no isolated nodes, one connected
// component, and a healthy mean degree.
func TestWaveInvariants(t *testing.T) {
	const n, seed = 3000, 5
	for _, k := range []int{16, 256, 4096} {
		for _, views := range []ViewMode{OracleViews, ProtocolViews} {
			o := buildWith(t, n, seed, views, k, 2)
			g := o.Graph()
			for u := 0; u < n; u++ {
				if d := g.Degree(u); d > o.Capacity(u) {
					t.Fatalf("k=%d views=%d: node %d degree %d over capacity %d", k, views, u, d, o.Capacity(u))
				} else if d == 0 {
					t.Fatalf("k=%d views=%d: node %d isolated", k, views, u)
				}
			}
			if _, sizes := o.aliveComponents(); len(sizes) != 1 {
				t.Fatalf("k=%d views=%d: %d components, want 1", k, views, len(sizes))
			}
			if md := o.MeanDegree(); md < 8 {
				t.Fatalf("k=%d views=%d: mean degree %.2f too low", k, views, md)
			}
		}
	}
}

// TestBuildObsCounts asserts the observability hooks fire for both
// build paths: every join counted, wave and management-pass durations
// recorded, throughput gauge set.
func TestBuildObsCounts(t *testing.T) {
	const n, seed = 800, 3
	for _, joinWave := range []int{0, 64} {
		bo := &BuildObs{
			Joins:        &obs.Counter{},
			WaveNs:       &obs.Histogram{},
			ManagePassNs: &obs.Histogram{},
			NodesPerSec:  &obs.Gauge{},
		}
		net := netmodel.NewEuclidean(n, 1000, seed)
		cfg := DefaultConfig(net, seed)
		cfg.JoinWave = joinWave
		cfg.Obs = bo
		if _, err := Build(n, cfg); err != nil {
			t.Fatal(err)
		}
		if got := bo.Joins.Value(); got != n {
			t.Errorf("joinWave=%d: Joins = %d, want %d", joinWave, got, n)
		}
		if joinWave > 1 && bo.WaveNs.Count() == 0 {
			t.Errorf("joinWave=%d: no wave durations recorded", joinWave)
		}
		if bo.ManagePassNs.Count() == 0 {
			t.Errorf("joinWave=%d: no management-pass durations recorded", joinWave)
		}
		if bo.NodesPerSec.Value() <= 0 {
			t.Errorf("joinWave=%d: NodesPerSec = %d, want > 0", joinWave, bo.NodesPerSec.Value())
		}
	}
}

// TestBuildObsNilZeroAlloc pins the no-op cost of an uninstrumented
// build: every hook on a nil *BuildObs must be branch-and-return, with
// no allocation and no time.Now call.
func TestBuildObsNilZeroAlloc(t *testing.T) {
	var b *BuildObs
	start := buildClock(b)
	if !start.IsZero() {
		t.Fatal("buildClock(nil) should return the zero time")
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.join()
		b.wave(start)
		b.managePass(start)
		b.buildDone(start, 1000)
		_ = buildClock(b)
	})
	if allocs != 0 {
		t.Fatalf("nil BuildObs hooks allocated %.1f times per run, want 0", allocs)
	}
}

// TestPermReuseZeroAlloc pins the join-order permutation's buffer
// reuse: after the first fill, perm must be alloc-free, so repeated
// builds and management rounds do not regrow O(n) slices.
func TestPermReuseZeroAlloc(t *testing.T) {
	o := buildWith(t, 512, 9, OracleViews, 0, 1)
	o.perm(512) // warm (Build already warmed it; be explicit)
	allocs := testing.AllocsPerRun(50, func() {
		p := o.perm(512)
		if len(p) != 512 {
			t.Fatal("short permutation")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm perm allocated %.1f times per run, want 0", allocs)
	}
}

// TestWaveObsTimerSkipped documents that uninstrumented builds never
// read the clock: buildClock returns the zero time for a nil receiver,
// and the nil-safe hooks ignore it. (The zero time is also what the
// hooks receive in tests above — Since(zero) is never invoked on nil.)
func TestWaveObsTimerSkipped(t *testing.T) {
	if got := buildClock(nil); got != (time.Time{}) {
		t.Fatalf("buildClock(nil) = %v, want zero time", got)
	}
}
