package core

import "math"

// This file is the cache-level rewrite of the hot rating kernels. The
// original kernels count view overlaps in epoch-stamped arrays indexed
// by global node id — O(1) per access, but every access is a miss once
// the overlay outgrows the last-level cache: rating one node touches
// ~deg² random cells of an n-sized array, and that sweep is ~70% of
// construction. That is the super-linear build wall: the work per node
// is constant, the cost per access grows with n.
//
// The counting state of one rating call is tiny — a few hundred
// distinct node ids — so it fits a fixed 1024-slot open-addressing
// table (8–16 KB, L1-resident). The table keys on node id, probes
// linearly, and is wiped between calls by zeroing only the slots a
// call used. Counts, owners and boundary sizes come out identical to
// the array kernels — same integers, same scoreTerms floats, same
// victims bit for bit (the golden tests pin this) — the only thing
// that changes is which level of the cache hierarchy the sweep runs
// in. Calls whose view volume could overflow the table fall back to
// the array kernels (degrees far beyond any capacity the experiments
// use), so behavior is unchanged for pathological inputs.

// whSize is the slot count of the per-scratch rating hash table. A
// rating call touches at most whFallback view entries plus deg+1
// exclusion marks, so load stays under ~55% and linear probing stays
// short.
const whSize = 1024

// whFallback is the per-call view-volume limit above which kernels
// fall back to the array paths.
const whFallback = 512

// whEntry is one slot of the single-victim kernel's table: the node id
// (biased by +1 so the zero value means empty) and the owner tag.
type whEntry struct {
	key int32 // node id + 1; 0 = empty slot
	own int32 // >=0: owner's position in nb; whMulti / whExcluded
}

const (
	whMulti    int32 = -1 // seen through more than one neighbor
	whExcluded int32 = -2 // member of Γ(u) ∪ {u}
)

// whHash spreads a node id over the table (Fibonacci hashing).
func whHash(x int32) uint32 {
	return (uint32(x) * 0x9E3779B1) >> 22 // top 10 bits: [0, 1024)
}

// ensureHash sizes the scratch's hash table and position-indexed
// buffers for a call over deg neighbors.
func (s *ratingScratch) ensureHash(deg int) {
	if s.wh == nil {
		s.wh = make([]whEntry, whSize)
		s.whUsed = make([]int32, 0, whFallback+64)
	}
	if len(s.puniq) < deg {
		// Fully rewritten by every call, so no need to preserve.
		s.puniq = make([]int32, deg+32)
		s.plat = make([]float64, deg+32)
	}
}

// whClear wipes the slots used by the last call.
func (s *ratingScratch) whClear() {
	wh := s.wh
	for _, i := range s.whUsed {
		wh[i] = whEntry{}
	}
	s.whUsed = s.whUsed[:0]
}

// gatherViews loads the view row of every neighbor into the scratch's
// row buffer and returns the rows plus their total entry count. This
// pass exists for memory-level parallelism: at 10⁶⁺ nodes every row
// header and every coordinate pair is a last-level miss, and a kernel
// that interleaves "load row, sweep row, load next row" serializes
// those misses behind each other. Loading all headers in one
// dependence-free loop lets the core keep ~deg misses in flight at
// once, and the subsequent sweeps walk contents the prefetcher can
// follow. The total doubles as the kernel-selection volume (callers
// fall back to the array path above whFallback).
func (o *Overlay) gatherViews(s *ratingScratch, nb []int32) ([][]int32, int) {
	rows := s.rows[:0]
	total := 0
	touch := int32(0)
	if o.cfg.Views == ProtocolViews {
		for _, w := range nb {
			r := o.views[w]
			rows = append(rows, r)
			total += len(r)
			if n := len(r); n > 0 {
				touch += r[0] + r[n-1]
			}
		}
	} else {
		for _, w := range nb {
			r := o.g.Neighbors(int(w))
			rows = append(rows, r)
			total += len(r)
			if n := len(r); n > 0 {
				touch += r[0] + r[n-1]
			}
		}
	}
	// Touching the first and last element of every row starts the
	// content misses here, overlapped, instead of serially inside the
	// kernel sweep. The sink store keeps the loads from being
	// dead-code eliminated; a view row is 1–2 cache lines, so these
	// two loads cover it.
	s.touchSink = touch
	s.rows = rows
	return rows, total
}

// pruneVictimHash is the single-victim kernel on the L1 table: one
// fused pass over the pre-gathered view rows credits the first
// (non-excluded) sighting of x to its owner and revokes the credit on
// the second, exactly as pruneSingleVictim does in the global arrays.
// uniq and latency are indexed by the owner's position in nb, not by
// node id, so the only random memory the call touches outside L1 is
// the row contents and one coordinate pair per neighbor — both loaded
// with independent-miss loops.
func (o *Overlay) pruneVictimHash(s *ratingScratch, u int, nb []int32, rows [][]int32) int {
	s.ensureHash(len(nb))
	wh := s.wh
	used := s.whUsed

	insertExcluded := func(x int32) {
		h := whHash(x)
		k := x + 1
		for {
			e := &wh[h]
			if e.key == 0 {
				e.key = k
				e.own = whExcluded
				used = append(used, int32(h))
				return
			}
			if e.key == k {
				e.own = whExcluded
				return
			}
			h = (h + 1) & (whSize - 1)
		}
	}
	insertExcluded(int32(u))
	for pw, w := range nb {
		insertExcluded(w)
		s.puniq[pw] = 0
		s.plat[pw] = o.lat(u, int(w))
	}
	boundary := 0
	for pw := range nb {
		for _, x := range rows[pw] {
			h := whHash(x)
			k := x + 1
			for {
				e := &wh[h]
				if e.key == 0 {
					e.key = k
					e.own = int32(pw)
					used = append(used, int32(h))
					s.puniq[pw]++
					boundary++
					break
				}
				if e.key == k {
					if e.own >= 0 {
						s.puniq[e.own]--
						e.own = whMulti
					}
					break
				}
				h = (h + 1) & (whSize - 1)
			}
		}
	}
	s.whUsed = used
	s.whClear()

	dmax := 0.0
	dmin := math.Inf(1)
	for pw := range nb {
		d := s.plat[pw]
		if d > dmax {
			dmax = d
		}
		if d < dmin {
			dmin = d
		}
	}
	if dmin < minPositiveLatency {
		dmin = minPositiveLatency
	}
	worst := 0
	worstScore := math.Inf(1)
	for pw := range nb {
		d := s.plat[pw]
		if d < minPositiveLatency {
			d = minPositiveLatency
		}
		conn, prox := o.scoreTerms(int(s.puniq[pw]), boundary, d, dmax, dmin)
		if score := conn + prox; score < worstScore {
			worst, worstScore = pw, score
		}
	}
	return int(nb[worst])
}

// wmEntry is one slot of the multi-victim kernel's table. Unlike the
// single-victim entries, these carry the full incremental state of
// pruneVictimsOn's array machinery: the sighting count across the
// surviving neighbors' views and the sum of the sighting owners'
// positions (when count == 1 the sum IS the sole owner's position, the
// ownerSum trick at hash scale). pos marks membership in Γ(u) ∪ {u} —
// the exclusion state, mutable because a dropped victim stops being
// excluded.
type wmEntry struct {
	key   int32 // node id + 1; 0 = empty slot
	pos   int32 // position in nb; wmSelf for u; wmFree otherwise
	count int32 // sightings across surviving views
	sum   int32 // sum of sighting owners' positions
}

const (
	wmFree int32 = -1 // not (or no longer) in Γ(u) ∪ {u}
	wmSelf int32 = -2
)

// wmLookup returns the slot for x, inserting a free zero-count entry
// on first sight.
func (s *ratingScratch) wmLookup(x int32) *wmEntry {
	h := whHash(x)
	k := x + 1
	for {
		e := &s.wm[h]
		if e.key == 0 {
			e.key = k
			e.pos = wmFree
			s.wmUsed = append(s.wmUsed, int32(h))
			return e
		}
		if e.key == k {
			return e
		}
		h = (h + 1) & (whSize - 1)
	}
}

// pruneVictimsHash is pruneVictimsOn's multi-victim body on the L1
// table: build the incremental rating state once, then drop victims
// one at a time, subtracting each victim's view from the maintained
// counts — O(view) per drop instead of a fresh O(deg²) build. The
// survivor order is tracked in a position permutation with the same
// swap-removal the array path applies to its neighbor copy, so
// iteration order — and therefore score tie-breaking — matches the
// array kernel exactly. Read-only against the overlay.
func (o *Overlay) pruneVictimsHash(s *ratingScratch, u int, nb []int32, rows [][]int32, out []int32) []int32 {
	deg := len(nb)
	s.ensureHash(deg)
	if s.wm == nil {
		s.wm = make([]wmEntry, whSize)
		s.wmUsed = make([]int32, 0, whFallback+64)
	}
	if cap(s.pord) < deg {
		s.pord = make([]int32, 0, deg+32)
	}
	ord := s.pord[:0]
	s.wmLookup(int32(u)).pos = wmSelf
	for pw, w := range nb {
		s.wmLookup(w).pos = int32(pw)
		s.puniq[pw] = 0
		s.plat[pw] = o.lat(u, int(w))
		ord = append(ord, int32(pw))
	}
	boundary := 0
	for pw := range nb {
		for _, x := range rows[pw] {
			e := s.wmLookup(x)
			if e.count == 0 {
				e.count = 1
				e.sum = int32(pw)
				if e.pos == wmFree {
					boundary++
					s.puniq[pw]++
				}
			} else {
				if e.pos == wmFree && e.count == 1 {
					s.puniq[e.sum]--
				}
				e.count++
				e.sum += int32(pw)
			}
		}
	}

	for {
		dmax := 0.0
		dmin := minPositiveLatency
		first := true
		for _, pw := range ord {
			d := s.plat[pw]
			if d > dmax {
				dmax = d
			}
			if first || d < dmin {
				dmin = d
				first = false
			}
		}
		if dmin < minPositiveLatency {
			dmin = minPositiveLatency
		}
		worst := 0
		worstScore := 0.0
		for i, pw := range ord {
			d := s.plat[pw]
			if d < minPositiveLatency {
				d = minPositiveLatency
			}
			conn, prox := o.scoreTerms(int(s.puniq[pw]), boundary, d, dmax, dmin)
			if score := conn + prox; i == 0 || score < worstScore {
				worst, worstScore = i, score
			}
		}
		vp := ord[worst]
		out = append(out, nb[vp])
		if len(ord)-1 <= o.caps[u] {
			break
		}
		// Subtract the victim's view from the maintained state; the
		// victim itself stops being excluded and may join the boundary.
		for _, x := range rows[vp] {
			e := s.wmLookup(x)
			e.count--
			e.sum -= vp
			if e.pos != wmFree {
				continue
			}
			switch e.count {
			case 1:
				s.puniq[e.sum]++
			case 0:
				boundary--
			}
		}
		ev := s.wmLookup(nb[vp])
		ev.pos = wmFree
		if ev.count > 0 {
			boundary++
			if ev.count == 1 {
				s.puniq[ev.sum]++
			}
		}
		ord[worst] = ord[len(ord)-1]
		ord = ord[:len(ord)-1]
	}
	wm := s.wm
	for _, i := range s.wmUsed {
		wm[i] = wmEntry{}
	}
	s.wmUsed = s.wmUsed[:0]
	s.pord = ord[:0]
	return out
}

// wcEntry is one slot of the walk kernel's membership table.
type wcEntry struct {
	key   int32 // node id + 1; 0 = empty slot
	flags int32 // wcBoundary | wcMarked
}

const (
	wcBoundary int32 = 1 << 0 // x ∈ Γ(u) ∪ ∂Γ(u): fallback-only candidate
	wcMarked   int32 = 1 << 1 // already in the candidate or fallback list
)

// wcLookup returns the slot for x, inserting an empty entry on first
// sight. Shared by the boundary pre-pass and the walk's membership
// checks; both run on the same table within one walk.
func (s *ratingScratch) wcLookup(x int32) *wcEntry {
	h := whHash(x)
	k := x + 1
	for {
		e := &s.wc[h]
		if e.key == 0 {
			e.key = k
			s.wcUsed = append(s.wcUsed, int32(h))
			return e
		}
		if e.key == k {
			return e
		}
		h = (h + 1) & (whSize - 1)
	}
}

func (s *ratingScratch) wcClear() {
	for _, i := range s.wcUsed {
		s.wc[i] = wcEntry{}
	}
	s.wcUsed = s.wcUsed[:0]
}

// walkCandidatesHash is walkCandidatesOn's L1 kernel: the boundary
// pre-pass and the walk's membership checks run in the wc table
// instead of the global mark arrays. Same walk, same rng draws, same
// candidate and fallback lists — only the memory level changes.
func (o *Overlay) walkCandidatesHash(s *ratingScratch, rng intner, u int, rows [][]int32, seed int, out, fallback []int32) (cands, fb []int32) {
	if s.wc == nil {
		s.wc = make([]wcEntry, whSize)
		s.wcUsed = make([]int32, 0, whFallback+64)
	}
	for _, row := range rows {
		for _, y := range row {
			s.wcLookup(y).flags |= wcBoundary
		}
	}
	maybeAdd := func(x int) {
		if x == u || o.g.HasEdge(u, x) || !o.alive[x] {
			return
		}
		e := s.wcLookup(int32(x))
		if e.flags&wcMarked != 0 {
			return
		}
		e.flags |= wcMarked
		if e.flags&wcBoundary != 0 { // x ∈ Γ(u) ∪ ∂Γ(u): fallback only
			fallback = append(fallback, int32(x))
			return
		}
		out = append(out, int32(x))
	}
	cur := seed
	maybeAdd(cur)
	for step := 0; step < o.cfg.WalkLength && len(out) < o.cfg.CandidateSetSize; step++ {
		nb := o.g.Neighbors(cur)
		// Walk only over alive neighbors.
		next := -1
		for tries := 0; tries < 4 && len(nb) > 0; tries++ {
			cand := int(nb[rng.Intn(len(nb))])
			if o.alive[cand] {
				next = cand
				break
			}
		}
		if next == -1 {
			next = seed // dead end: restart from the seed peer
			if o.g.Degree(next) == 0 {
				break
			}
		}
		if t := o.cfg.Tracer; t != nil {
			t.WalkProbe(cur, next)
		}
		cur = next
		if step%2 == 1 { // sample every other step: non-adjacent candidates
			maybeAdd(cur)
		}
	}
	// Top up with boundary nodes when fresh reach was scarce.
	for _, f := range fallback {
		if len(out) >= o.cfg.CandidateSetSize {
			break
		}
		out = append(out, f)
	}
	s.wcClear()
	return out, fallback
}
