package core

import (
	"math/rand"
	"testing"

	"makalu/internal/netmodel"
)

// Micro-benchmarks for the overlay's hot paths, tracking the perf
// trajectory of the rating engine. cmd/makalu-experiments -bench-json
// reruns the same scenarios through the public API and writes
// BENCH_core.json so the numbers are versioned alongside the code.

// benchOverlay builds an overlay whose every node has capacity `deg`
// (mean degree settles just below it).
func benchOverlay(b *testing.B, n, deg int, full bool) *Overlay {
	b.Helper()
	net := netmodel.NewEuclidean(n, 1000, 1)
	cfg := DefaultConfig(net, 1)
	caps := make([]int, n)
	for i := range caps {
		caps[i] = deg
	}
	cfg.Capacities = caps
	cfg.FullRecomputePrune = full
	o, err := Build(n, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return o
}

// BenchmarkRateNeighbors measures one full rating evaluation at the
// paper's default degree band.
func BenchmarkRateNeighbors(b *testing.B) {
	net := netmodel.NewEuclidean(2000, 1000, 1)
	o, err := Build(2000, DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	var buf []RatingInfo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = o.RateNeighbors(i%2000, buf[:0])
	}
}

// BenchmarkRateAll measures the batched (parallel where cores allow)
// whole-overlay rating pass used by experiments and churn snapshots.
func BenchmarkRateAll(b *testing.B) {
	net := netmodel.NewEuclidean(2000, 1000, 1)
	o, err := Build(2000, DefaultConfig(net, 1))
	if err != nil {
		b.Fatal(err)
	}
	var buf [][]RatingInfo
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = o.RateAll(buf)
	}
}

// BenchmarkPruneToCapacity measures draining 10 excess links from a
// node at mean degree ≈ 30 — the §2.2 Manage() inner loop — on both
// prune engines. Each iteration forces the node 10 links over capacity
// (untimed) and then prunes back down (timed).
func BenchmarkPruneToCapacity(b *testing.B) {
	const (
		n      = 1000
		deg    = 30
		excess = 10
	)
	for _, mode := range []struct {
		name string
		full bool
	}{
		{"full-recompute", true},
		{"incremental", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			o := benchOverlay(b, n, deg, mode.full)
			u := 0
			for v := 1; v < n; v++ {
				if o.g.Degree(v) > o.g.Degree(u) {
					u = v
				}
			}
			rng := rand.New(rand.NewSource(42))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				o.caps[u] = deg + excess
				for o.g.Degree(u) < deg+excess {
					v := rng.Intn(n)
					if v != u {
						o.g.AddEdge(u, v)
					}
				}
				b.StartTimer()
				o.caps[u] = deg
				o.pruneToCapacity(u, nil)
			}
			b.ReportMetric(float64(excess), "links-pruned/op")
		})
	}
}

// BenchmarkBuildOverlay measures full 2000-node construction on the
// full-recompute (seed) path and on the incremental engine.
func BenchmarkBuildOverlay(b *testing.B) {
	const n = 2000
	net := netmodel.NewEuclidean(n, 1000, 1)
	for _, mode := range []struct {
		name string
		full bool
	}{
		{"full-recompute", true},
		{"incremental", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig(net, int64(i))
				cfg.FullRecomputePrune = mode.full
				if _, err := Build(n, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n), "nodes/op")
		})
	}
}
