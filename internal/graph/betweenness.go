package graph

import (
	"math/rand"
	"runtime"
	"sync"
)

// BetweennessCentrality estimates node betweenness — the fraction of
// shortest paths passing through each node — with Brandes' algorithm
// over `sources` sampled source nodes (0 or >= N means exact). The
// result is normalized by the number of sources, so sampled and exact
// runs are comparable up to sampling noise. Betweenness is the direct
// measure of the hub burden the paper's §6 critiques: in a power-law
// overlay a handful of nodes carry most shortest paths, while Makalu
// spreads them.
//
// Sources are processed in parallel across GOMAXPROCS workers.
func (g *Graph) BetweennessCentrality(sources int, rng *rand.Rand) []float64 {
	n := g.N()
	score := make([]float64, n)
	if n == 0 {
		return score
	}
	var srcList []int
	if sources <= 0 || sources >= n {
		srcList = allSources(n)
	} else {
		srcList = rng.Perm(n)[:sources]
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(srcList) {
		workers = len(srcList)
	}
	work := make(chan int, workers)
	partial := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		partial[w] = make([]float64, n)
		wg.Add(1)
		go func(acc []float64) {
			defer wg.Done()
			// Brandes per-source state, reused across sources.
			dist := make([]int32, n)
			sigma := make([]float64, n) // shortest-path counts
			delta := make([]float64, n) // dependency accumulation
			order := make([]int32, 0, n)
			for s := range work {
				brandesFromSource(g, s, dist, sigma, delta, &order, acc)
			}
		}(partial[w])
	}
	for _, s := range srcList {
		work <- s
	}
	close(work)
	wg.Wait()
	for _, p := range partial {
		for i, v := range p {
			score[i] += v
		}
	}
	// Normalize per source; undirected graphs count each path twice
	// across the source sweep, which the standard 1/2 factor absorbs
	// only in exact mode — keep the raw per-source mean so sampled and
	// exact runs agree.
	inv := 1 / float64(len(srcList))
	for i := range score {
		score[i] *= inv
	}
	return score
}

// brandesFromSource runs one BFS stage of Brandes' algorithm and adds
// the source's dependencies into acc.
func brandesFromSource(g *Graph, s int, dist []int32, sigma, delta []float64, orderBuf *[]int32, acc []float64) {
	n := g.N()
	for i := 0; i < n; i++ {
		dist[i] = -1
		sigma[i] = 0
		delta[i] = 0
	}
	order := (*orderBuf)[:0]
	dist[s] = 0
	sigma[s] = 1
	order = append(order, int32(s))
	for head := 0; head < len(order); head++ {
		u := order[head]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == -1 {
				dist[v] = du + 1
				order = append(order, v)
			}
			if dist[v] == du+1 {
				sigma[v] += sigma[u]
			}
		}
	}
	// Accumulate dependencies in reverse BFS order.
	for i := len(order) - 1; i > 0; i-- {
		w := order[i]
		dw := dist[w]
		coeff := (1 + delta[w]) / sigma[w]
		for _, v := range g.Neighbors(int(w)) {
			if dist[v] == dw-1 {
				delta[v] += sigma[v] * coeff
			}
		}
		acc[w] += delta[w]
	}
	*orderBuf = order
}
