package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// pathGraph builds the path 0-1-2-...-(n-1).
func pathGraph(n int) *Mutable {
	g := NewMutable(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// cycleGraph builds the cycle on n nodes.
func cycleGraph(n int) *Mutable {
	g := pathGraph(n)
	g.AddEdge(n-1, 0)
	return g
}

// completeGraph builds K_n.
func completeGraph(n int) *Mutable {
	g := NewMutable(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

func TestMutableBasics(t *testing.T) {
	g := NewMutable(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("empty graph N/M = %d/%d", g.N(), g.M())
	}
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) should succeed")
	}
	if g.AddEdge(1, 0) {
		t.Fatal("duplicate edge should be rejected")
	}
	if g.AddEdge(2, 2) {
		t.Fatal("self-loop should be rejected")
	}
	if g.M() != 1 || g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("after one edge: M=%d deg0=%d deg1=%d", g.M(), g.Degree(0), g.Degree(1))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge is wrong")
	}
}

func TestMutableRemoveEdge(t *testing.T) {
	g := completeGraph(4)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge should succeed")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("removing a missing edge should fail")
	}
	if g.HasEdge(0, 1) || g.M() != 5 {
		t.Fatalf("edge not removed: M=%d", g.M())
	}
}

func TestIsolateNode(t *testing.T) {
	g := completeGraph(5)
	g.IsolateNode(2)
	if g.Degree(2) != 0 {
		t.Fatalf("isolated node degree = %d", g.Degree(2))
	}
	if g.M() != 6 { // K5 has 10 edges, node had degree 4
		t.Fatalf("M after isolation = %d, want 6", g.M())
	}
	for u := 0; u < 5; u++ {
		if u != 2 && g.HasEdge(u, 2) {
			t.Fatalf("node %d still linked to isolated node", u)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := cycleGraph(5)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("clone mutation leaked into original")
	}
	if c.M() != g.M()-1 {
		t.Fatalf("clone M=%d original M=%d", c.M(), g.M())
	}
}

func TestFreezeStructure(t *testing.T) {
	g := NewMutable(4)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	f := g.Freeze(nil)
	if f.N() != 4 || f.M() != 3 {
		t.Fatalf("frozen N/M = %d/%d", f.N(), f.M())
	}
	nb := f.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors of 0 not sorted: %v", nb)
	}
	if !f.HasEdge(2, 3) || f.HasEdge(1, 3) {
		t.Fatal("frozen HasEdge wrong")
	}
}

func TestFreezeWeights(t *testing.T) {
	g := pathGraph(3)
	f := g.Freeze(func(u, v int) float64 { return float64(u + v) })
	// Edge (0,1) weight 1, edge (1,2) weight 3, symmetric.
	for u := 0; u < 3; u++ {
		for i := f.Offsets[u]; i < f.Offsets[u+1]; i++ {
			v := int(f.Edges[i])
			if f.Weights[i] != float64(u+v) {
				t.Fatalf("weight(%d,%d) = %v", u, v, f.Weights[i])
			}
		}
	}
}

func TestThawRoundTrip(t *testing.T) {
	g := cycleGraph(7)
	g.AddEdge(0, 3)
	f := g.Freeze(nil)
	back := f.Thaw()
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("thaw N/M = %d/%d, want %d/%d", back.N(), back.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if g.HasEdge(u, v) != back.HasEdge(u, v) {
				t.Fatalf("edge (%d,%d) mismatch after round trip", u, v)
			}
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := completeGraph(5).Freeze(func(u, v int) float64 { return 1 })
	keep := []bool{true, false, true, true, false}
	sub, order := g.InducedSubgraph(keep)
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("subgraph N/M = %d/%d, want 3/3 (triangle)", sub.N(), sub.M())
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if sub.Weights == nil || len(sub.Weights) != len(sub.Edges) {
		t.Fatal("weights not preserved")
	}
}

func TestInducedSubgraphBadMask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong mask length")
		}
	}()
	completeGraph(3).Freeze(nil).InducedSubgraph([]bool{true})
}

func TestDegreeStats(t *testing.T) {
	g := NewMutable(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	f := g.Freeze(nil)
	if f.MaxDegree() != 3 || f.MinDegree() != 1 {
		t.Fatalf("max/min degree = %d/%d", f.MaxDegree(), f.MinDegree())
	}
	if f.MeanDegree() != 1.5 {
		t.Fatalf("mean degree = %v, want 1.5", f.MeanDegree())
	}
	h := f.DegreeHistogram()
	if h[1] != 3 || h[3] != 1 {
		t.Fatalf("degree histogram = %v", h)
	}
}

func TestTopDegreeNodes(t *testing.T) {
	g := NewMutable(5)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	f := g.Freeze(nil)
	top := f.TopDegreeNodes(2)
	if top[0] != 0 {
		t.Fatalf("highest-degree node = %d, want 0", top[0])
	}
	if top[1] != 1 { // degree 2, tie with node 2 broken by id
		t.Fatalf("second node = %d, want 1", top[1])
	}
	if got := f.TopDegreeNodes(99); len(got) != 5 {
		t.Fatalf("k>n should clamp, got %d", len(got))
	}
}

func TestBFSPath(t *testing.T) {
	f := pathGraph(5).Freeze(nil)
	dist := make([]int32, 5)
	ecc := f.BFS(0, dist, nil)
	if ecc != 4 {
		t.Fatalf("eccentricity of path end = %d, want 4", ecc)
	}
	for i := 0; i < 5; i++ {
		if dist[i] != int32(i) {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], i)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := NewMutable(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	f := g.Freeze(nil)
	dist := make([]int32, 4)
	f.BFS(0, dist, nil)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatal("nodes in other component should be Unreachable")
	}
}

func TestBFSWithinLimitsHops(t *testing.T) {
	f := pathGraph(10).Freeze(nil)
	var visited []int
	f.BFSWithin(0, 3, func(node, hops int) {
		visited = append(visited, node)
		if hops > 3 {
			t.Fatalf("visited node %d at hop %d > 3", node, hops)
		}
	})
	if len(visited) != 4 {
		t.Fatalf("visited %d nodes, want 4", len(visited))
	}
}

func TestNeighborhoodSizesCycle(t *testing.T) {
	f := cycleGraph(8).Freeze(nil)
	sizes := f.NeighborhoodSizes(0, 4)
	want := []int{1, 2, 2, 2, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewMutable(60)
	for g.M() < 150 {
		g.AddEdge(rng.Intn(60), rng.Intn(60))
	}
	f := g.Freeze(func(u, v int) float64 { return 1 })
	hop := make([]int32, 60)
	w := make([]float64, 60)
	f.BFS(0, hop, nil)
	f.Dijkstra(0, w)
	for i := range hop {
		if hop[i] == Unreachable {
			if !math.IsInf(w[i], 1) {
				t.Fatalf("node %d: BFS unreachable but Dijkstra %v", i, w[i])
			}
			continue
		}
		if float64(hop[i]) != w[i] {
			t.Fatalf("node %d: hops %d vs weighted %v", i, hop[i], w[i])
		}
	}
}

func TestDijkstraWeightedShortcut(t *testing.T) {
	// 0-1-2 cheap (1+1), direct 0-2 expensive (10).
	g := NewMutable(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	f := g.Freeze(func(u, v int) float64 {
		if (u == 0 && v == 2) || (u == 2 && v == 0) {
			return 10
		}
		return 1
	})
	dist := make([]float64, 3)
	ecc := f.Dijkstra(0, dist)
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v, want 2 via middle node", dist[2])
	}
	if ecc != 2 {
		t.Fatalf("weighted ecc = %v, want 2", ecc)
	}
}

func TestDijkstraRequiresWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without weights")
		}
	}()
	f := pathGraph(3).Freeze(nil)
	f.Dijkstra(0, make([]float64, 3))
}

func TestComponents(t *testing.T) {
	g := NewMutable(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	// 5, 6 isolated
	f := g.Freeze(nil)
	labels, sizes := f.Components()
	if len(sizes) != 4 {
		t.Fatalf("component count = %d, want 4", len(sizes))
	}
	if labels[0] != labels[2] || labels[0] == labels[3] {
		t.Fatal("labels group wrong nodes")
	}
	if f.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if f.ComponentCount() != 4 {
		t.Fatalf("ComponentCount = %d", f.ComponentCount())
	}
}

func TestGiantComponent(t *testing.T) {
	g := NewMutable(10)
	for i := 0; i < 6; i++ { // component of 7 nodes 0..6
		g.AddEdge(i, i+1)
	}
	g.AddEdge(8, 9)
	f := g.Freeze(nil)
	giant, order := f.GiantComponent()
	if giant.N() != 7 {
		t.Fatalf("giant size = %d, want 7", giant.N())
	}
	if !giant.IsConnected() {
		t.Fatal("giant component should be connected")
	}
	if int(order[0]) != 0 {
		t.Fatalf("order[0] = %d", order[0])
	}
}

func TestEmptyGraphConnected(t *testing.T) {
	f := NewMutable(0).Freeze(nil)
	if !f.IsConnected() {
		t.Fatal("empty graph is vacuously connected")
	}
}

func TestAllPathStatsCycle(t *testing.T) {
	// Cycle of 6: mean distance = (1+1+2+2+3)/5 = 1.8, diameter 3.
	f := cycleGraph(6).Freeze(func(u, v int) float64 { return 2 })
	st := f.AllPathStats()
	if st.HopDiameter != 3 {
		t.Fatalf("diameter = %d, want 3", st.HopDiameter)
	}
	if math.Abs(st.MeanHops-1.8) > 1e-12 {
		t.Fatalf("mean hops = %v, want 1.8", st.MeanHops)
	}
	if math.Abs(st.MeanCost-3.6) > 1e-12 {
		t.Fatalf("mean cost = %v, want 3.6 (unit weight 2)", st.MeanCost)
	}
	if st.CostDiameter != 6 {
		t.Fatalf("cost diameter = %v, want 6", st.CostDiameter)
	}
	if st.Disconnected {
		t.Fatal("cycle should be connected")
	}
}

func TestAllPathStatsDisconnected(t *testing.T) {
	g := NewMutable(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	st := g.Freeze(nil).AllPathStats()
	if !st.Disconnected {
		t.Fatal("should report disconnection")
	}
	if st.UnreachedPairs != 8 { // each node misses 2 others
		t.Fatalf("unreached pairs = %d, want 8", st.UnreachedPairs)
	}
}

func TestSampledPathStatsSubsetOfExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewMutable(200)
	for g.M() < 600 {
		g.AddEdge(rng.Intn(200), rng.Intn(200))
	}
	f := g.Freeze(nil)
	exact := f.AllPathStats()
	sampled := f.SampledPathStats(50, rand.New(rand.NewSource(4)))
	if sampled.Sources != 50 {
		t.Fatalf("sampled sources = %d", sampled.Sources)
	}
	if sampled.HopDiameter > exact.HopDiameter {
		t.Fatal("sampled diameter cannot exceed exact diameter")
	}
	if math.Abs(sampled.MeanHops-exact.MeanHops) > 0.5 {
		t.Fatalf("sampled mean hops %v too far from exact %v", sampled.MeanHops, exact.MeanHops)
	}
	// k >= n degrades to exact
	full := f.SampledPathStats(1000, rng)
	if full.HopDiameter != exact.HopDiameter || full.Pairs != exact.Pairs {
		t.Fatal("oversampled stats should equal exact stats")
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	f := pathGraph(6).Freeze(nil)
	if f.Eccentricity(0) != 5 || f.Eccentricity(2) != 3 {
		t.Fatalf("eccentricities = %d, %d", f.Eccentricity(0), f.Eccentricity(2))
	}
	if f.HopDiameter() != 5 {
		t.Fatalf("diameter = %d, want 5", f.HopDiameter())
	}
}

func TestAllPathStatsEmpty(t *testing.T) {
	st := NewMutable(0).Freeze(nil).AllPathStats()
	if st.Pairs != 0 || st.MeanHops != 0 {
		t.Fatal("empty graph stats should be zero")
	}
}

// Property: for random graphs, freezing preserves edge count and
// degree sums, and BFS distances obey the triangle inequality on
// adjacent nodes (|d(u)-d(v)| <= 1 for every edge).
func TestFreezeAndBFSProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8, extra uint8) bool {
		n := int(nRaw%50) + 2
		rng := rand.New(rand.NewSource(seed))
		g := NewMutable(n)
		target := n + int(extra%100)
		for i := 0; i < target; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		fr := g.Freeze(nil)
		if fr.M() != g.M() {
			return false
		}
		degSum := 0
		for u := 0; u < n; u++ {
			degSum += fr.Degree(u)
		}
		if degSum != 2*fr.M() {
			return false
		}
		dist := make([]int32, n)
		fr.BFS(0, dist, nil)
		for u := 0; u < n; u++ {
			for _, v := range fr.Neighbors(u) {
				du, dv := dist[u], dist[v]
				if du == Unreachable || dv == Unreachable {
					if du != dv {
						return false // one side of an edge reachable, other not
					}
					continue
				}
				if du-dv > 1 || dv-du > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
