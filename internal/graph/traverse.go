package graph

import (
	"container/heap"
	"math"
)

// Unreachable marks nodes not reached by a BFS.
const Unreachable = int32(-1)

// BFS computes hop distances from src into dist, which must have
// length N. Unreached nodes get Unreachable. The frontier queue is
// supplied by the caller so repeated traversals can reuse memory; pass
// nil to allocate one. It returns the eccentricity of src restricted
// to its component (the largest finite distance).
func (g *Graph) BFS(src int, dist []int32, queue []int32) int32 {
	for i := range dist {
		dist[i] = Unreachable
	}
	if queue == nil {
		queue = make([]int32, 0, g.N())
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, int32(src))
	var ecc int32
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du > ecc {
			ecc = du
		}
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return ecc
}

// BFSWithin runs a BFS from src limited to maxHops and invokes visit
// for every reached node (including src at hop 0). Visit order is
// breadth-first. The scratch buffers are allocated internally; use
// NeighborhoodSizes for bulk workloads.
func (g *Graph) BFSWithin(src, maxHops int, visit func(node int, hops int)) {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int32, 0, 64)
	dist[src] = 0
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		visit(int(u), int(du))
		if int(du) >= maxHops {
			continue
		}
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
}

// NeighborhoodSizes returns, for the given source, the number of nodes
// at exactly hop h for h in [0, maxHops]. It measures the expansion of
// the overlay from a node's neighborhood (paper §3.3).
func (g *Graph) NeighborhoodSizes(src, maxHops int) []int {
	sizes := make([]int, maxHops+1)
	g.BFSWithin(src, maxHops, func(_, hops int) { sizes[hops]++ })
	return sizes
}

// dijkstraItem is a priority-queue entry for Dijkstra's algorithm.
type dijkstraItem struct {
	node int32
	dist float64
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int            { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x interface{}) { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes weighted shortest-path distances from src into
// dist (length N, unreached nodes get +Inf). The graph must have
// Weights; all weights must be non-negative. It returns the largest
// finite distance (the weighted eccentricity of src).
func (g *Graph) Dijkstra(src int, dist []float64) float64 {
	if g.Weights == nil {
		panic("graph: Dijkstra requires edge weights")
	}
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	h := make(dijkstraHeap, 0, 64)
	heap.Push(&h, dijkstraItem{int32(src), 0})
	var ecc float64
	for h.Len() > 0 {
		it := heap.Pop(&h).(dijkstraItem)
		u := it.node
		if it.dist > dist[u] {
			continue // stale entry
		}
		if it.dist > ecc {
			ecc = it.dist
		}
		for i := g.Offsets[u]; i < g.Offsets[u+1]; i++ {
			v := g.Edges[i]
			nd := it.dist + g.Weights[i]
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(&h, dijkstraItem{v, nd})
			}
		}
	}
	return ecc
}

// Components labels each node with a component id in [0, count) and
// returns the label slice together with the component sizes.
func (g *Graph) Components() (labels []int32, sizes []int) {
	n := g.N()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		id := int32(len(sizes))
		labels[s] = id
		queue = append(queue[:0], int32(s))
		size := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			size++
			for _, v := range g.Neighbors(int(u)) {
				if labels[v] == -1 {
					labels[v] = id
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return labels, sizes
}

// ComponentCount returns the number of connected components. Isolated
// nodes count as components of size one.
func (g *Graph) ComponentCount() int {
	_, sizes := g.Components()
	return len(sizes)
}

// IsConnected reports whether the graph is a single component.
func (g *Graph) IsConnected() bool {
	return g.N() == 0 || g.ComponentCount() == 1
}

// GiantComponent returns the induced subgraph of the largest connected
// component and the mapping from new index to original index.
func (g *Graph) GiantComponent() (*Graph, []int32) {
	labels, sizes := g.Components()
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	keep := make([]bool, g.N())
	for u, l := range labels {
		keep[u] = l == int32(best)
	}
	return g.InducedSubgraph(keep)
}
