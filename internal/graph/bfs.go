package graph

// This file implements the scratch-reusing, direction-optimizing BFS
// that the million-node analysis paths (iFUB diameter, landmark path
// sampling, parallel path statistics) are built on. A single BFSScratch
// owns the distance array and both frontier buffers, so a sweep of
// thousands of traversals allocates nothing after the first.
//
// Direction optimization follows Beamer et al. (SC'12): when the
// frontier's outgoing edge count grows past a fraction of the edges
// still unexplored, the step switches from top-down (scan the frontier,
// claim unvisited neighbors) to bottom-up (scan unvisited nodes, look
// for any parent in the frontier), and switches back once the frontier
// shrinks again. On low-diameter expanders — exactly what a Makalu
// overlay is — the middle one or two BFS levels touch almost every
// edge, and the bottom-up pass breaks out of a node's neighbor list on
// the first hit instead of testing every edge, typically cutting total
// edge inspections by 2–4×. Distances are strategy-independent, so the
// results are bit-identical to the textbook BFS.

// Beamer switching parameters: go bottom-up when the frontier has more
// than 1/bfsAlpha of the unexplored directed edges; return top-down
// when the frontier holds fewer than 1/bfsBeta of the nodes.
const (
	bfsAlpha = 14
	bfsBeta  = 24
)

// BFSScratch holds the reusable buffers for BFSStats traversals. One
// scratch serves any number of sequential traversals over graphs of up
// to its capacity (it grows as needed); it must not be shared between
// concurrent goroutines.
type BFSScratch struct {
	dist     []int32
	frontier []int32
	next     []int32
}

// NewBFSScratch returns a scratch sized for n-node graphs.
func NewBFSScratch(n int) *BFSScratch {
	return &BFSScratch{
		dist:     make([]int32, n),
		frontier: make([]int32, 0, 1024),
		next:     make([]int32, 0, 1024),
	}
}

func (s *BFSScratch) grow(n int) {
	if len(s.dist) < n {
		s.dist = make([]int32, n)
	}
}

// Dist returns the distance array of the most recent BFSStats run:
// dist[v] is the hop distance from the source, Unreachable for nodes
// outside its component. Only the first N entries are meaningful for
// an N-node graph. The slice is owned by the scratch and overwritten
// by the next traversal.
func (s *BFSScratch) Dist() []int32 { return s.dist }

// BFSStats runs a direction-optimizing BFS from src using the scratch
// buffers and returns the source's eccentricity within its component,
// the number of reached nodes (excluding src) and the sum of their hop
// distances. The full distance array remains readable via s.Dist().
func (g *Graph) BFSStats(src int, s *BFSScratch) (ecc int32, reached int64, sum int64) {
	n := g.N()
	s.grow(n)
	dist := s.dist[:n]
	for i := range dist {
		dist[i] = Unreachable
	}
	frontier := s.frontier[:0]
	next := s.next[:0]
	dist[src] = 0
	frontier = append(frontier, int32(src))

	// remEdges counts directed half-edges whose tail is still
	// unvisited: the denominator of the top-down/bottom-up switch.
	remEdges := int64(len(g.Edges)) - int64(g.Degree(src))
	bottomUp := false
	level := int32(0)
	for len(frontier) > 0 {
		if !bottomUp {
			var scout int64
			for _, u := range frontier {
				scout += int64(g.Degree(int(u)))
			}
			if scout*bfsAlpha > remEdges && len(frontier) > 1 {
				bottomUp = true
			}
		} else if int64(len(frontier))*bfsBeta < int64(n) {
			bottomUp = false
		}

		next = next[:0]
		if bottomUp {
			for v := 0; v < n; v++ {
				if dist[v] != Unreachable {
					continue
				}
				for _, w := range g.Neighbors(v) {
					if dist[w] == level {
						dist[v] = level + 1
						next = append(next, int32(v))
						break
					}
				}
			}
		} else {
			for _, u := range frontier {
				for _, v := range g.Neighbors(int(u)) {
					if dist[v] == Unreachable {
						dist[v] = level + 1
						next = append(next, v)
					}
				}
			}
		}
		if len(next) == 0 {
			break
		}
		level++
		ecc = level
		reached += int64(len(next))
		sum += int64(level) * int64(len(next))
		for _, v := range next {
			remEdges -= int64(g.Degree(int(v)))
		}
		frontier, next = next, frontier
	}
	// Persist any buffer growth for the next traversal.
	s.frontier, s.next = frontier, next
	return ecc, reached, sum
}

// farthestFrom returns the smallest node id at the given distance in
// the scratch's current distance array — the canonical "farthest node"
// pick used by the double sweep, chosen by id so results do not depend
// on traversal strategy.
func (s *BFSScratch) farthestFrom(n int, ecc int32) int {
	dist := s.dist[:n]
	for v, d := range dist {
		if d == ecc {
			return v
		}
	}
	return -1
}
