package graph

import (
	"math"
	"testing"
)

func TestAssortativityRegularGraphIsZero(t *testing.T) {
	if r := cycleGraph(20).Freeze(nil).DegreeAssortativity(); r != 0 {
		t.Fatalf("cycle (2-regular) assortativity = %v, want 0 (no variance)", r)
	}
}

func TestAssortativityStarIsNegative(t *testing.T) {
	// Star: every edge joins the hub (degree n-1) to a leaf (degree
	// 1): perfectly disassortative, r = -1.
	g := NewMutable(10)
	for i := 1; i < 10; i++ {
		g.AddEdge(0, i)
	}
	r := g.Freeze(nil).DegreeAssortativity()
	if math.Abs(r-(-1)) > 1e-9 {
		t.Fatalf("star assortativity = %v, want -1", r)
	}
}

func TestAssortativityAssortativePair(t *testing.T) {
	// Two K4 cliques joined by a path of degree-2 nodes: high-degree
	// nodes attach to high-degree nodes, low to low → r > 0.
	g := NewMutable(10)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
			g.AddEdge(4+i, 4+j)
		}
	}
	g.AddEdge(8, 9) // an isolated degree-1 pair adds matched low degrees
	r := g.Freeze(nil).DegreeAssortativity()
	if r <= 0 {
		t.Fatalf("clique-pair assortativity = %v, want > 0", r)
	}
}

func TestAssortativityEmptyGraph(t *testing.T) {
	if r := NewMutable(5).Freeze(nil).DegreeAssortativity(); r != 0 {
		t.Fatalf("empty graph assortativity = %v", r)
	}
}

func TestAssortativityBounds(t *testing.T) {
	// Any graph's r must lie in [-1, 1].
	g := NewMutable(30)
	for i := 0; i < 29; i++ {
		g.AddEdge(i, i+1)
		if i%3 == 0 && i+5 < 30 {
			g.AddEdge(i, i+5)
		}
	}
	r := g.Freeze(nil).DegreeAssortativity()
	if r < -1-1e-9 || r > 1+1e-9 {
		t.Fatalf("assortativity %v out of [-1, 1]", r)
	}
}
