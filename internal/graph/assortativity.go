package graph

import "math"

// DegreeAssortativity returns the Pearson correlation of degrees
// across edges (Newman's r). Measured Gnutella v0.4 snapshots are
// disassortative (hubs attach to leaves, r < 0); k-regular graphs
// have undefined correlation (no degree variance, reported as 0);
// Makalu overlays sit near 0 — no degree-degree structure, as an
// expander should.
func (g *Graph) DegreeAssortativity() float64 {
	var m int // directed edge endpoints counted
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	for u := 0; u < g.N(); u++ {
		du := float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			dv := float64(g.Degree(int(v)))
			sumXY += du * dv
			sumX += du
			sumY += dv
			sumX2 += du * du
			sumY2 += dv * dv
			m++
		}
	}
	if m == 0 {
		return 0
	}
	n := float64(m)
	cov := sumXY/n - (sumX/n)*(sumY/n)
	varX := sumX2/n - (sumX/n)*(sumX/n)
	varY := sumY2/n - (sumY/n)*(sumY/n)
	if varX <= 0 || varY <= 0 {
		return 0 // regular graph: no degree variance
	}
	return cov / math.Sqrt(varX*varY)
}
