package graph

// CoreNumbers computes the k-core decomposition: core[u] is the
// largest k such that u belongs to a subgraph where every node has
// degree >= k. Measurement studies characterize P2P overlays by their
// core structure — a power-law Gnutella snapshot has a small dense
// core and a huge 1-core fringe, while Makalu overlays put almost
// every node in the same deep core. Runs in O(N + M) via the
// Batagelj–Zaveršnik bucket algorithm.
func (g *Graph) CoreNumbers() []int {
	n := g.N()
	core := make([]int, n)
	if n == 0 {
		return core
	}
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	pos := make([]int, n)    // position of node in vert
	vert := make([]int32, n) // nodes in degree order
	next := append([]int(nil), bin...)
	for u := 0; u < n; u++ {
		pos[u] = next[deg[u]]
		vert[pos[u]] = int32(u)
		next[deg[u]]++
	}
	for i := 0; i < n; i++ {
		u := int(vert[i])
		core[u] = deg[u]
		for _, vv := range g.Neighbors(u) {
			v := int(vv)
			if deg[v] > deg[u] {
				// Move v one bucket down: swap it with the first node
				// of its current bucket, then shift the boundary.
				dv := deg[v]
				pw := bin[dv]
				w := int(vert[pw])
				if v != w {
					vert[pos[v]], vert[pw] = int32(w), int32(v)
					pos[w], pos[v] = pos[v], pw
				}
				bin[dv]++
				deg[v]--
			}
		}
	}
	return core
}

// Degeneracy returns the graph's degeneracy: the largest k with a
// non-empty k-core.
func (g *Graph) Degeneracy() int {
	max := 0
	for _, c := range g.CoreNumbers() {
		if c > max {
			max = c
		}
	}
	return max
}
