package graph

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// PathStats summarizes shortest-path structure over a set of source
// nodes: the characteristic path length in hops, the characteristic
// path cost in latency units (when weights are present), and the
// diameter in hops (largest eccentricity among the sources).
type PathStats struct {
	Sources        int     // number of BFS/Dijkstra sources evaluated
	Pairs          int64   // reachable (ordered) pairs counted
	MeanHops       float64 // characteristic path length
	MeanCost       float64 // characteristic path cost (0 without weights)
	HopDiameter    int     // max hop eccentricity over sources
	CostDiameter   float64 // max weighted eccentricity over sources
	Disconnected   bool    // true if any source failed to reach some node
	UnreachedPairs int64   // ordered pairs with no path
}

// AllPathStats runs BFS (and Dijkstra when the graph has weights) from
// every node in parallel and aggregates PathStats. It is exact but
// O(N*(N+M)); the paper limits this analysis to 10,000-node networks
// for the same reason (§3.2).
func (g *Graph) AllPathStats() PathStats {
	return g.pathStats(allSources(g.N()))
}

// SampledPathStats runs the same analysis from k sources chosen
// uniformly at random (without replacement) using rng. For k >= N it
// degrades to the exact computation.
func (g *Graph) SampledPathStats(k int, rng *rand.Rand) PathStats {
	n := g.N()
	if k >= n {
		return g.AllPathStats()
	}
	perm := rng.Perm(n)
	return g.pathStats(perm[:k])
}

func allSources(n int) []int {
	src := make([]int, n)
	for i := range src {
		src[i] = i
	}
	return src
}

type pathAccum struct {
	hopSum       int64
	hopPairs     int64
	costSum      float64
	costPairs    int64
	hopDiameter  int32
	costDiameter float64
	unreached    int64
}

func (a *pathAccum) merge(b *pathAccum) {
	a.hopSum += b.hopSum
	a.hopPairs += b.hopPairs
	a.costSum += b.costSum
	a.costPairs += b.costPairs
	if b.hopDiameter > a.hopDiameter {
		a.hopDiameter = b.hopDiameter
	}
	if b.costDiameter > a.costDiameter {
		a.costDiameter = b.costDiameter
	}
	a.unreached += b.unreached
}

func (g *Graph) pathStats(sources []int) PathStats {
	n := g.N()
	if n == 0 || len(sources) == 0 {
		return PathStats{}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sources) {
		workers = len(sources)
	}
	work := make(chan int, workers)
	accums := make([]pathAccum, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(acc *pathAccum) {
			defer wg.Done()
			scratch := NewBFSScratch(n)
			var costDist []float64
			if g.Weights != nil {
				costDist = make([]float64, n)
			}
			for src := range work {
				ecc, reached, sum := g.BFSStats(src, scratch)
				if ecc > acc.hopDiameter {
					acc.hopDiameter = ecc
				}
				acc.hopSum += sum
				acc.hopPairs += reached
				acc.unreached += int64(n-1) - reached
				if costDist != nil {
					wecc := g.Dijkstra(src, costDist)
					if wecc > acc.costDiameter {
						acc.costDiameter = wecc
					}
					for v, d := range costDist {
						if v != src && !math.IsInf(d, 1) {
							acc.costSum += d
							acc.costPairs++
						}
					}
				}
			}
		}(&accums[w])
	}
	for _, s := range sources {
		work <- s
	}
	close(work)
	wg.Wait()

	var total pathAccum
	for i := range accums {
		total.merge(&accums[i])
	}
	st := PathStats{
		Sources:        len(sources),
		Pairs:          total.hopPairs,
		HopDiameter:    int(total.hopDiameter),
		CostDiameter:   total.costDiameter,
		Disconnected:   total.unreached > 0,
		UnreachedPairs: total.unreached,
	}
	if total.hopPairs > 0 {
		st.MeanHops = float64(total.hopSum) / float64(total.hopPairs)
	}
	if total.costPairs > 0 {
		st.MeanCost = total.costSum / float64(total.costPairs)
	}
	return st
}

// Eccentricity returns the hop eccentricity of node u (0 when u is
// isolated or alone in its component).
func (g *Graph) Eccentricity(u int) int {
	dist := make([]int32, g.N())
	return int(g.BFS(u, dist, nil))
}

// HopDiameter computes the exact hop diameter with the double-sweep +
// iFUB path (a handful of BFS runs instead of N; see diameter.go). On
// a disconnected graph it returns the largest eccentricity within any
// component. The all-pairs AllPathStats remains the test oracle this
// is cross-checked against.
func (g *Graph) HopDiameter() int {
	return g.HopDiameterExact(nil).Diameter
}
