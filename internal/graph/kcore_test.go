package graph

import "testing"

func TestCoreNumbersClique(t *testing.T) {
	// K5: every node has core number 4.
	for u, c := range completeGraph(5).Freeze(nil).CoreNumbers() {
		if c != 4 {
			t.Fatalf("node %d core = %d, want 4", u, c)
		}
	}
}

func TestCoreNumbersPath(t *testing.T) {
	// A path is a 1-core everywhere (endpoints included).
	for u, c := range pathGraph(7).Freeze(nil).CoreNumbers() {
		if c != 1 {
			t.Fatalf("node %d core = %d, want 1", u, c)
		}
	}
}

func TestCoreNumbersCliqueWithTail(t *testing.T) {
	// K4 (nodes 0-3) with a tail 3-4-5: clique in the 3-core, tail in
	// the 1-core.
	g := NewMutable(6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j)
		}
	}
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	core := g.Freeze(nil).CoreNumbers()
	want := []int{3, 3, 3, 3, 1, 1}
	for u := range want {
		if core[u] != want[u] {
			t.Fatalf("core = %v, want %v", core, want)
		}
	}
	if d := g.Freeze(nil).Degeneracy(); d != 3 {
		t.Fatalf("degeneracy = %d, want 3", d)
	}
}

func TestCoreNumbersIsolatedAndEmpty(t *testing.T) {
	g := NewMutable(3)
	g.AddEdge(0, 1)
	core := g.Freeze(nil).CoreNumbers()
	if core[2] != 0 || core[0] != 1 {
		t.Fatalf("core = %v", core)
	}
	if got := NewMutable(0).Freeze(nil).CoreNumbers(); len(got) != 0 {
		t.Fatal("empty graph should give empty cores")
	}
}

func TestCoreNumbersMonotoneUnderEdgeAddition(t *testing.T) {
	g := cycleGraph(10)
	before := g.Freeze(nil).CoreNumbers()
	g.AddEdge(0, 5)
	after := g.Freeze(nil).CoreNumbers()
	for u := range before {
		if after[u] < before[u] {
			t.Fatalf("core number decreased at %d: %d -> %d", u, before[u], after[u])
		}
	}
}
