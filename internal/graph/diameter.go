package graph

import (
	"math/rand"

	"makalu/internal/stats"
)

// This file computes the exact hop diameter in a handful of BFS runs
// instead of N, via double-sweep lower bounds plus the iFUB algorithm
// (Crescenzi, Grossi, Habib, Lanzi, Marino: "On computing the diameter
// of real-world undirected graphs"). The paper restricts its topology
// analysis to 10,000-node networks because all-pairs BFS is O(N·(N+M))
// (§3.2); iFUB gives the same exact diameter on 10⁶-node overlays in
// seconds. Landmark-sampled path statistics replace the exact
// characteristic path length at the same scale, with a confidence
// interval instead of a point value.

// DiameterStats reports a hop-diameter computation together with the
// number of BFS traversals it needed — the quantity iFUB keeps far
// below N on graphs with spread-out eccentricities. When Exact is
// true, Diameter == UB is the exact hop diameter. Under a BFS budget
// the computation may stop early with a certified interval instead:
// the true diameter lies in [Diameter, UB] (Diameter is a witnessed
// lower bound, UB follows from the iFUB level argument plus the
// Takes–Kosters bounds of every processed node).
type DiameterStats struct {
	Diameter int  // exact diameter, or the certified lower bound
	UB       int  // certified upper bound (== Diameter when Exact)
	Exact    bool // interval closed: Diameter is the exact value
	BFSRuns  int  // BFS traversals executed
}

// HopDiameterExact computes the exact hop diameter with double-sweep
// lower bounds + iFUB, per connected component. On a disconnected
// graph it returns the largest eccentricity within any component,
// matching AllPathStats.HopDiameter. Pass a scratch to reuse buffers
// across calls, or nil to allocate one.
func (g *Graph) HopDiameterExact(s *BFSScratch) DiameterStats {
	return g.HopDiameterBudget(-1, s)
}

// HopDiameterBudget is HopDiameterExact under a BFS budget: at most
// budget traversals beyond the per-component double sweeps (negative
// means unlimited). On near-regular overlays — where almost every
// node's eccentricity equals the diameter and no bound-based exact
// method can beat Θ(N) traversals — the budget caps the cost and the
// result degrades to a certified [Diameter, UB] interval, typically
// one or two hops wide. Components are always double-swept in full,
// so every component contributes real bounds even at budget 0.
func (g *Graph) HopDiameterBudget(budget int, s *BFSScratch) DiameterStats {
	n := g.N()
	if n == 0 {
		return DiameterStats{Exact: true}
	}
	if s == nil {
		s = NewBFSScratch(n)
	}
	s.grow(n)
	labels, sizes := g.Components()

	// Start each component's double sweep from its max-degree node:
	// high-degree nodes sit near the core, so their BFS tree is shallow
	// and the level buckets iFUB processes stay small.
	start := make([]int32, len(sizes))
	for i := range start {
		start[i] = -1
	}
	for v := 0; v < n; v++ {
		l := labels[v]
		if start[l] == -1 || g.Degree(v) > g.Degree(int(start[l])) {
			start[l] = int32(v)
		}
	}

	res := DiameterStats{Exact: true}
	var distA, levels, eccUp []int32
	var order []int32
	for c, size := range sizes {
		switch {
		case size <= 1:
			// Isolated node: eccentricity 0.
		case size == 2:
			if res.Diameter < 1 {
				res.Diameter = 1
			}
			if res.UB < 1 {
				res.UB = 1
			}
		default:
			if distA == nil {
				distA = make([]int32, n)
				levels = make([]int32, n)
				eccUp = make([]int32, n)
				order = make([]int32, 0, n)
			}
			lb, ub, runs := g.ifubComponent(int(start[c]), s, distA, levels, eccUp, &order, &budget)
			res.BFSRuns += runs
			if lb > res.Diameter {
				res.Diameter = lb
			}
			if ub > res.UB {
				res.UB = ub
			}
			if lb != ub {
				res.Exact = false
			}
			if res.Exact && res.Diameter >= n-1 {
				res.UB = res.Diameter
				return res // a path graph's diameter cannot be beaten
			}
		}
	}
	if res.UB < res.Diameter {
		res.UB = res.Diameter
	}
	return res
}

// maxEccUp is the "unknown" sentinel for per-node eccentricity upper
// bounds (far above any real eccentricity, safe to add levels to).
const maxEccUp = int32(1) << 30

// ifubComponent runs double sweep + iFUB, with Takes–Kosters-style
// eccentricity upper bounds pruning the level scan, inside the
// component of start. distA, levels and eccUp are caller-owned
// n-length scratch arrays; order is a reusable level-bucket buffer.
// budget is the shared remaining level-loop BFS allowance (negative =
// unlimited); on exhaustion the component returns a certified
// [lb, ub] interval instead of the exact diameter.
func (g *Graph) ifubComponent(start int, s *BFSScratch, distA, levels, eccUp []int32, order *[]int32, budget *int) (lb, ub, runs int) {
	n := g.N()
	for v := 0; v < n; v++ {
		eccUp[v] = maxEccUp
	}
	// tighten folds one finished BFS (source ecc e, distances in
	// s.dist) into the per-node upper bounds: ecc(v) <= e + d(src, v)
	// by the triangle inequality. Nodes whose bound drops to the lower
	// bound are certified — they can never raise the diameter, so the
	// level scan skips their BFS entirely (Takes & Kosters 2011). On
	// graphs with spread-out eccentricities this is what keeps the
	// processed-level tail from degenerating to N traversals.
	tighten := func(e int32) {
		dist := s.dist[:n]
		for v, d := range dist {
			if d == Unreachable {
				continue
			}
			if ub := e + d; ub < eccUp[v] {
				eccUp[v] = ub
			}
		}
	}

	// Double sweep: farthest node a from start, farthest b from a.
	// ecc(a) is already a strong lower bound; dist(a,·) is kept to
	// locate a midpoint of the a–b path.
	eccS, _, _ := g.BFSStats(start, s)
	runs++
	if eccS == 0 {
		return 0, 0, runs
	}
	tighten(eccS)
	a := s.farthestFrom(n, eccS)
	eccA, _, _ := g.BFSStats(a, s)
	runs++
	tighten(eccA)
	copy(distA, s.dist[:n])
	b := s.farthestFrom(n, eccA)
	lb = int(eccA)

	// BFS from b: another lower bound, and together with distA the
	// midpoint r of the a–b shortest path — the node on the path
	// (distA[x] + distB[x] == d(a,b)) whose distance from a is closest
	// to half. Rooting iFUB at a path midpoint keeps the BFS tree's
	// eccentricity (the upper-bound ladder) near diameter/2, which is
	// what makes the processed-level count small.
	eccB, _, _ := g.BFSStats(b, s)
	runs++
	tighten(eccB)
	if int(eccB) > lb {
		lb = int(eccB)
	}
	distB := s.dist[:n]
	dab := distA[b]
	r, best := a, maxEccUp
	for x := 0; x < n; x++ {
		if distA[x] == Unreachable || distA[x]+distB[x] != dab {
			continue
		}
		gap := 2*distA[x] - dab // signed distance from the midpoint, ×2
		if gap < 0 {
			gap = -gap
		}
		if gap < best {
			r, best = x, gap
		}
	}

	// Root BFS: levels[] buckets the component by distance from r.
	eccR, _, _ := g.BFSStats(r, s)
	runs++
	tighten(eccR)
	if int(eccR) > lb {
		lb = int(eccR)
	}
	copy(levels, s.dist[:n])

	// Counting-sort the component's nodes by descending level.
	counts := make([]int32, int(eccR)+2)
	for v := 0; v < n; v++ {
		if levels[v] != Unreachable {
			counts[levels[v]]++
		}
	}
	offset := make([]int32, int(eccR)+2)
	for l := int(eccR); l >= 0; l-- {
		offset[l] = offset[l+1] + counts[l+1]
	}
	total := offset[0] + counts[0]
	if cap(*order) < int(total) {
		*order = make([]int32, total)
	}
	ord := (*order)[:total]
	cursor := make([]int32, int(eccR)+1)
	copy(cursor, offset[:int(eccR)+1])
	for v := 0; v < n; v++ {
		if l := levels[v]; l != Unreachable {
			ord[cursor[l]] = int32(v)
			cursor[l]++
		}
	}

	// iFUB: process levels top-down. Once every node above level i has
	// been processed — by BFS or by a Takes–Kosters certificate — any
	// pair of nodes both at level <= i is within 2i hops via the root,
	// so the diameter is at most max(lb, 2i); lb >= 2i closes the
	// interval and certifies lb as exact. Stopping mid-level i (budget
	// exhausted) still leaves every node above level i processed, so
	// max(lb, 2i) remains a certified upper bound.
	idx := 0
	for i := int(eccR); i >= 1; i-- {
		if lb >= 2*i {
			break
		}
		for ; idx < len(ord) && levels[ord[idx]] == int32(i); idx++ {
			v := int(ord[idx])
			if int(eccUp[v]) <= lb {
				continue // certified: ecc(v) cannot raise the diameter
			}
			if *budget == 0 {
				// Two independent certificates, take the tighter: any
				// pair below level i is within 2i hops via the root,
				// and no node's eccentricity exceeds its Takes–Kosters
				// bound, so diameter <= max_v eccUp[v] as well.
				ub = 2 * i
				maxUp := 0
				for x := 0; x < n; x++ {
					if levels[x] != Unreachable && int(eccUp[x]) > maxUp {
						maxUp = int(eccUp[x])
					}
				}
				if maxUp < ub {
					ub = maxUp
				}
				if lb > ub {
					ub = lb
				}
				return lb, ub, runs
			}
			if *budget > 0 {
				*budget--
			}
			ecc, _, _ := g.BFSStats(v, s)
			runs++
			tighten(ecc)
			if int(ecc) > lb {
				lb = int(ecc)
			}
		}
	}
	return lb, lb, runs
}

// SampledPathStats is the landmark estimate of the characteristic path
// length: BFS from k uniformly sampled sources, each contributing its
// mean hop distance to the nodes it reaches, averaged with a Student-t
// 95% confidence interval over the per-source means. On a connected
// graph each per-source mean is an unbiased estimate of the exact
// characteristic path length, so the interval covers
// AllPathStats.MeanHops at the nominal rate (pinned by tests).
type SampledPathStats struct {
	Sources      int     // landmarks actually contributing pairs
	Pairs        int64   // ordered reachable pairs observed
	MeanHops     float64 // mean of the per-source mean hop distances
	MeanHopsCI   float64 // 95% CI half-width over per-source means
	HopDiameter  int     // max eccentricity among the landmarks (a lower bound)
	Disconnected bool    // some landmark failed to reach every node
}

// LandmarkPathStats estimates path-length statistics from k landmark
// BFS runs with sources drawn uniformly without replacement from rng.
// Pass a scratch to reuse buffers, or nil to allocate one. k >= N
// degrades to every node as a landmark (the exact mean, CI over the
// per-source spread).
func (g *Graph) LandmarkPathStats(k int, rng *rand.Rand, s *BFSScratch) SampledPathStats {
	n := g.N()
	if n == 0 || k <= 0 {
		return SampledPathStats{}
	}
	if s == nil {
		s = NewBFSScratch(n)
	}
	var sources []int
	if k >= n {
		sources = allSources(n)
	} else {
		sources = rng.Perm(n)[:k]
	}
	res := SampledPathStats{}
	means := make([]float64, 0, len(sources))
	for _, src := range sources {
		ecc, reached, sum := g.BFSStats(src, s)
		if int(ecc) > res.HopDiameter {
			res.HopDiameter = int(ecc)
		}
		if reached < int64(n-1) {
			res.Disconnected = true
		}
		if reached == 0 {
			continue // isolated landmark: no pairs, same as the oracle
		}
		means = append(means, float64(sum)/float64(reached))
		res.Pairs += reached
	}
	res.Sources = len(means)
	res.MeanHops, res.MeanHopsCI = stats.MeanCI(means)
	return res
}
