// Package graph provides the compact undirected-graph substrate used
// by every Makalu topology and analysis: a mutable adjacency structure
// for overlay construction, a frozen CSR representation for traversal,
// parallel all-pairs shortest-path statistics, connected components
// and degree statistics.
//
// Node identifiers are dense ints in [0, N). Graphs are simple and
// undirected: self-loops and duplicate edges are rejected at insert.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// sortedDegreeThreshold is the adjacency length above which a node's
// neighbor list is kept sorted, turning the duplicate-edge check in
// AddEdge from an O(deg) scan into an O(log deg) binary search.
// Power-law hubs (degree ~2·sqrt(n)) would otherwise make topology
// generation quadratic in hub degree. Below the threshold lists stay
// in insertion order — the overlay protocol's walks and tie-breaks
// read that order, and every capacity the core experiments use sits
// well under it, so small-degree behavior is bit-for-bit unchanged.
const sortedDegreeThreshold = 64

// Mutable is an undirected simple graph under construction. The zero
// value is unusable; create one with NewMutable.
type Mutable struct {
	adj    [][]int32
	sorted []bool // adj[u] is maintained in ascending order
	m      int    // number of undirected edges
}

// NewMutable returns an empty graph on n nodes (0..n-1).
func NewMutable(n int) *Mutable {
	return &Mutable{adj: make([][]int32, n), sorted: make([]bool, n)}
}

// NewMutableSlab returns an empty graph on n nodes whose adjacency
// rows are carved out of one contiguous arena: row u starts empty with
// capacity rowCap(u). Callers that know per-node degree bounds up
// front (the overlay builder knows every node's connection capacity)
// avoid n incremental slice growths, and the rows sit dense in node
// order, which matters for the cache behavior of random-access
// neighbor sweeps at 10⁶⁺ nodes. Rows use full slice expressions, so
// a node that outgrows its reservation reallocates out of the arena
// instead of clobbering its successor; behavior is otherwise identical
// to NewMutable.
func NewMutableSlab(n int, rowCap func(u int) int) *Mutable {
	g := &Mutable{adj: make([][]int32, n), sorted: make([]bool, n)}
	total := 0
	for u := 0; u < n; u++ {
		c := rowCap(u)
		if c < 0 {
			c = 0
		}
		total += c
	}
	arena := make([]int32, total)
	off := 0
	for u := 0; u < n; u++ {
		c := rowCap(u)
		if c < 0 {
			c = 0
		}
		g.adj[u] = arena[off : off : off+c]
		off += c
	}
	return g
}

// N returns the number of nodes.
func (g *Mutable) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Mutable) M() int { return g.m }

// Degree returns the degree of node u.
func (g *Mutable) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the adjacency slice of u. The slice is owned by
// the graph and must not be modified by the caller.
func (g *Mutable) Neighbors(u int) []int32 { return g.adj[u] }

// HasEdge reports whether the undirected edge (u, v) exists. A sorted
// endpoint is checked by binary search; otherwise the shorter list is
// scanned.
func (g *Mutable) HasEdge(u, v int) bool {
	if g.sorted[u] {
		_, ok := slices.BinarySearch(g.adj[u], int32(v))
		return ok
	}
	if g.sorted[v] {
		_, ok := slices.BinarySearch(g.adj[v], int32(u))
		return ok
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, v = g.adj[v], u
	}
	for _, w := range a {
		if int(w) == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge (u, v). It returns false when
// the edge is a self-loop or already present.
func (g *Mutable) AddEdge(u, v int) bool {
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.insertArc(u, int32(v))
	g.insertArc(v, int32(u))
	g.m++
	return true
}

// insertArc appends v to u's adjacency, keeping it sorted once the
// list has crossed sortedDegreeThreshold. The caller guarantees v is
// not already present.
func (g *Mutable) insertArc(u int, v int32) {
	a := g.adj[u]
	if g.sorted[u] {
		i, _ := slices.BinarySearch(a, v)
		a = append(a, 0)
		copy(a[i+1:], a[i:])
		a[i] = v
		g.adj[u] = a
		return
	}
	a = append(a, v)
	g.adj[u] = a
	if len(a) > sortedDegreeThreshold {
		slices.Sort(a)
		g.sorted[u] = true
	}
}

// removeArc deletes v from u's adjacency and reports whether it was
// present. Sorted lists shift-delete to stay sorted; unsorted lists
// swap-remove.
func (g *Mutable) removeArc(u int, v int32) bool {
	a := g.adj[u]
	if g.sorted[u] {
		i, ok := slices.BinarySearch(a, v)
		if !ok {
			return false
		}
		copy(a[i:], a[i+1:])
		g.adj[u] = a[:len(a)-1]
		return true
	}
	for i, w := range a {
		if w == v {
			a[i] = a[len(a)-1]
			g.adj[u] = a[:len(a)-1]
			return true
		}
	}
	return false
}

// RemoveEdge deletes the undirected edge (u, v) and reports whether it
// was present.
func (g *Mutable) RemoveEdge(u, v int) bool {
	if !g.removeArc(u, int32(v)) {
		return false
	}
	g.removeArc(v, int32(u))
	g.m--
	return true
}

// IsolateNode removes every edge incident to u.
func (g *Mutable) IsolateNode(u int) {
	for _, v := range g.adj[u] {
		g.removeArc(int(v), int32(u))
		g.m--
	}
	g.adj[u] = g.adj[u][:0]
	g.sorted[u] = false // an emptied node reverts to insertion order
}

// AddNode appends a new isolated node and returns its id.
func (g *Mutable) AddNode() int {
	g.adj = append(g.adj, nil)
	g.sorted = append(g.sorted, false)
	return len(g.adj) - 1
}

// Clone returns a deep copy of the graph.
func (g *Mutable) Clone() *Mutable {
	c := &Mutable{
		adj:    make([][]int32, len(g.adj)),
		sorted: append([]bool(nil), g.sorted...),
		m:      g.m,
	}
	for i, a := range g.adj {
		c.adj[i] = append([]int32(nil), a...)
	}
	return c
}

// Graph is a frozen CSR (compressed sparse row) view of an undirected
// graph, optimized for traversal. Edge weights, when present, are
// aligned with the Edges slice.
type Graph struct {
	Offsets []int32   // len N+1; neighbors of u are Edges[Offsets[u]:Offsets[u+1]]
	Edges   []int32   // 2*M directed half-edges
	Weights []float64 // nil, or len(Edges): weight of each half-edge
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.Offsets) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.Edges) / 2 }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return int(g.Offsets[u+1] - g.Offsets[u]) }

// Neighbors returns the (sorted) neighbor slice of u. The slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int32 {
	return g.Edges[g.Offsets[u]:g.Offsets[u+1]]
}

// HasEdge reports whether the undirected edge (u, v) exists, using
// binary search over the sorted neighbor list.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// WeightFunc supplies the latency (cost) of an edge.
type WeightFunc func(u, v int) float64

// Freeze converts the mutable graph to CSR form: one shared arena of
// half-edges plus per-node offsets. Rows come out sorted without any
// per-node sort — because node ids are visited in ascending order and
// each arc (v ∈ adj[u] ⟺ u ∈ adj[v]) is placed into its endpoint's row
// exactly once, every row fills in ascending neighbor order. The whole
// freeze is O(N+M), which is what makes freezing a 10⁶-node overlay a
// sub-second operation instead of a million small sorts.
//
// When latency is non-nil, per-half-edge weights are recorded; they
// must be symmetric (latency(u,v) == latency(v,u)) for shortest-path
// results to be meaningful on an undirected graph.
func (g *Mutable) Freeze(latency WeightFunc) *Graph {
	n := g.N()
	offsets := make([]int32, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + int32(len(g.adj[u]))
	}
	edges := make([]int32, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	fg := &Graph{Offsets: offsets, Edges: edges}
	if latency == nil {
		for v := 0; v < n; v++ {
			for _, u := range g.adj[v] {
				edges[cursor[u]] = int32(v)
				cursor[u]++
			}
		}
		return fg
	}
	fg.Weights = make([]float64, len(edges))
	for v := 0; v < n; v++ {
		for _, u := range g.adj[v] {
			c := cursor[u]
			edges[c] = int32(v)
			fg.Weights[c] = latency(int(u), v)
			cursor[u]++
		}
	}
	return fg
}

// Thaw converts a frozen graph back to a mutable one.
func (g *Graph) Thaw() *Mutable {
	n := g.N()
	m := NewMutable(n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				m.AddEdge(u, int(v))
			}
		}
	}
	return m
}

// InducedSubgraph returns the subgraph on the nodes where keep[u] is
// true, with nodes renumbered densely, plus the mapping from new index
// to original index. Weights are preserved when present.
func (g *Graph) InducedSubgraph(keep []bool) (*Graph, []int32) {
	if len(keep) != g.N() {
		panic(fmt.Sprintf("graph: keep mask has %d entries for %d nodes", len(keep), g.N()))
	}
	newID := make([]int32, g.N())
	var order []int32
	for u := range keep {
		if keep[u] {
			newID[u] = int32(len(order))
			order = append(order, int32(u))
		} else {
			newID[u] = -1
		}
	}
	offsets := make([]int32, len(order)+1)
	var edges []int32
	var weights []float64
	for i, old := range order {
		for j := g.Offsets[old]; j < g.Offsets[old+1]; j++ {
			v := g.Edges[j]
			if keep[v] {
				edges = append(edges, newID[v])
				if g.Weights != nil {
					weights = append(weights, g.Weights[j])
				}
			}
		}
		offsets[i+1] = int32(len(edges))
	}
	sub := &Graph{Offsets: offsets, Edges: edges}
	if g.Weights != nil {
		sub.Weights = weights
	}
	return sub, order
}

// MeanDegree returns the average node degree.
func (g *Graph) MeanDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(len(g.Edges)) / float64(g.N())
}

// MaxDegree returns the largest node degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the smallest node degree (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	min := g.Degree(0)
	for u := 1; u < g.N(); u++ {
		if d := g.Degree(u); d < min {
			min = d
		}
	}
	return min
}

// DegreeHistogram returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for u := 0; u < g.N(); u++ {
		counts[g.Degree(u)]++
	}
	return counts
}

// TopDegreeNodes returns the k nodes with the highest degree,
// descending (ties broken by node id). It is used by the targeted
// failure experiments, which remove the best-connected nodes first.
func (g *Graph) TopDegreeNodes(k int) []int {
	n := g.N()
	if k > n {
		k = n
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	return ids[:k]
}
