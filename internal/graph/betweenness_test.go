package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestBetweennessPathExact(t *testing.T) {
	// Path 0-1-2-3-4, exact (all sources). With per-source averaging,
	// node u's score is (sum over sources s of dependency δ_s(u)) / n.
	// For the middle node 2: δ from sources 0,1,3,4 is 2 each (two
	// targets lie beyond node 2 from every non-central source), δ
	// from source 2 is 0 → total 8, /5 = 1.6.
	g := pathGraph(5).Freeze(nil)
	b := g.BetweennessCentrality(0, nil)
	if math.Abs(b[2]-8.0/5.0) > 1e-9 {
		t.Fatalf("middle node betweenness = %v, want 1.6", b[2])
	}
	if b[0] != 0 || b[4] != 0 {
		t.Fatalf("endpoints must carry no paths: %v", b)
	}
	if b[1] <= b[0] || b[1] >= b[2] {
		t.Fatalf("ordering broken: %v", b)
	}
}

func TestBetweennessStarHub(t *testing.T) {
	// Star: all paths between leaves cross the hub. From each leaf
	// source, the hub's dependency is (n-2); from the hub, 0.
	n := 8
	g := NewMutable(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i)
	}
	f := g.Freeze(nil)
	b := f.BetweennessCentrality(0, nil)
	want := float64((n-1)*(n-2)) / float64(n)
	if math.Abs(b[0]-want) > 1e-9 {
		t.Fatalf("hub betweenness = %v, want %v", b[0], want)
	}
	for i := 1; i < n; i++ {
		if b[i] != 0 {
			t.Fatalf("leaf %d has betweenness %v", i, b[i])
		}
	}
}

func TestBetweennessCycleUniform(t *testing.T) {
	g := cycleGraph(9).Freeze(nil)
	b := g.BetweennessCentrality(0, nil)
	for i := 1; i < 9; i++ {
		if math.Abs(b[i]-b[0]) > 1e-9 {
			t.Fatalf("cycle betweenness not uniform: %v", b)
		}
	}
}

func TestBetweennessSampledApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewMutable(300)
	for g.M() < 900 {
		g.AddEdge(rng.Intn(300), rng.Intn(300))
	}
	f := g.Freeze(nil)
	exact := f.BetweennessCentrality(0, nil)
	sampled := f.BetweennessCentrality(150, rand.New(rand.NewSource(2)))
	// Compare the two rankings on the top node: the heaviest exact
	// node should be near the top of the sampled ranking too.
	argmax := func(xs []float64) int {
		best := 0
		for i, x := range xs {
			if x > xs[best] {
				best = i
			}
		}
		return best
	}
	top := argmax(exact)
	higher := 0
	for _, v := range sampled {
		if v > sampled[top] {
			higher++
		}
	}
	if higher > 15 {
		t.Fatalf("exact top node ranks %d-th in sampled scores", higher+1)
	}
}

func TestBetweennessEmptyGraph(t *testing.T) {
	if got := NewMutable(0).Freeze(nil).BetweennessCentrality(0, nil); len(got) != 0 {
		t.Fatal("empty graph should give empty scores")
	}
}
