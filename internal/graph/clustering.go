package graph

// GlobalClusteringCoefficient returns the transitivity of the graph:
// closed triplets / all triplets (3·triangles / paths of length two).
// Makalu overlays should be locally tree-like (coefficient ≈ 0) — a
// high value means candidate selection wired triangles into
// neighborhoods, which destroys flooding expansion and inflates
// duplicate messages (see §4.3/§4.4 of the paper).
func (g *Graph) GlobalClusteringCoefficient() float64 {
	closed, triplets := 0, 0
	for u := 0; u < g.N(); u++ {
		nb := g.Neighbors(u)
		d := len(nb)
		triplets += d * (d - 1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(nb[i]), int(nb[j])) {
					closed++
				}
			}
		}
	}
	if triplets == 0 {
		return 0
	}
	return float64(closed) / float64(triplets)
}

// LocalClusteringCoefficient returns node u's clustering coefficient:
// the fraction of its neighbor pairs that are themselves connected
// (0 for degree < 2).
func (g *Graph) LocalClusteringCoefficient(u int) float64 {
	nb := g.Neighbors(u)
	d := len(nb)
	if d < 2 {
		return 0
	}
	closed := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(int(nb[i]), int(nb[j])) {
				closed++
			}
		}
	}
	return float64(closed) / float64(d*(d-1)/2)
}
