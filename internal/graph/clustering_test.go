package graph

import (
	"math"
	"testing"
)

func TestClusteringCompleteGraph(t *testing.T) {
	g := completeGraph(6).Freeze(nil)
	if c := g.GlobalClusteringCoefficient(); c != 1 {
		t.Fatalf("K6 clustering = %v, want 1", c)
	}
	if c := g.LocalClusteringCoefficient(0); c != 1 {
		t.Fatalf("K6 local clustering = %v, want 1", c)
	}
}

func TestClusteringTreeIsZero(t *testing.T) {
	g := pathGraph(20).Freeze(nil)
	if c := g.GlobalClusteringCoefficient(); c != 0 {
		t.Fatalf("path clustering = %v, want 0", c)
	}
}

func TestClusteringTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus tail 2-3.
	g := NewMutable(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	f := g.Freeze(nil)
	// Triplets: deg(0)=2→1, deg(1)=2→1, deg(2)=3→3, deg(3)=1→0 = 5.
	// Closed: the triangle closes one triplet at each of 0, 1, 2 = 3.
	want := 3.0 / 5.0
	if c := f.GlobalClusteringCoefficient(); math.Abs(c-want) > 1e-12 {
		t.Fatalf("clustering = %v, want %v", c, want)
	}
	// Node 2: neighbors {0,1,3}; only pair (0,1) connected: 1/3.
	if c := f.LocalClusteringCoefficient(2); math.Abs(c-1.0/3.0) > 1e-12 {
		t.Fatalf("local(2) = %v, want 1/3", c)
	}
	if c := f.LocalClusteringCoefficient(3); c != 0 {
		t.Fatalf("degree-1 node local clustering = %v, want 0", c)
	}
}

func TestClusteringEmptyGraph(t *testing.T) {
	if c := NewMutable(3).Freeze(nil).GlobalClusteringCoefficient(); c != 0 {
		t.Fatalf("empty graph clustering = %v", c)
	}
}
